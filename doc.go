// Package ethselfish reproduces "Selfish Mining in Ethereum" (Jianyu Niu
// and Chen Feng, ICDCS 2019): a 2-D Markov analysis and an event-driven
// simulation of an Eyal-Sirer-style selfish-mining strategy under
// Ethereum's uncle and nephew rewards.
//
// The package is a facade over the full implementation:
//
//   - Analyze solves the closed-form model for one (alpha, gamma, schedule)
//     configuration and reports long-run revenues under both
//     difficulty-adjustment scenarios the paper studies.
//   - Simulate runs Algorithm 1 on a real block tree with a Poisson mining
//     race and settles rewards over the resulting chain.
//   - ProfitThreshold computes alpha*, the minimum hash-power share at
//     which deviating becomes profitable; BitcoinThreshold gives the
//     Eyal-Sirer baseline (1-gamma)/(3-2*gamma).
//
// Reward schedules are first-class: the Ethereum Byzantium schedule
// (Ku(l) = (8-l)/8, Kn = 1/32, depth <= 6), flat schedules (Fig. 9 and the
// Sec. VI redesign), and the degenerate Bitcoin schedule that reduces the
// model to Eyal and Sirer's analysis.
//
// The experiment harness regenerating every table and figure of the paper
// lives in cmd/ethselfish; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// # K-pool races
//
// The simulator generalizes the paper's two-party race to K competing
// pools. Miners carry a pool label (mining.PoolID, 0 = honest); each pool
// mines a private branch over the shared block tree, runs its own
// sim.Strategy consulted only on its own race frame (Ls, Lh, published,
// measured from the pool's fork point), and honest miners follow the
// longest public branch, splitting the tie-break probability gamma across
// whichever published pool branches tie for the lead. Rewards settle
// per pool (sim.Result.ByPool); experiments.PoolWars sweeps an
// alpha1 x alpha2 grid of two Algorithm-1 pools plus heterogeneous
// attacker-vs-honest-control rows. The paper's setting is the K = 1
// special case and is bit-identical to the pre-generalization engine.
//
// # The strategy space
//
// Strategies form a parameterized space named by specs — strings of the
// grammar
//
//	name
//	name:key=value,key=value,...
//
// parsed by sim.ParseStrategySpec and constructed through a registry of
// sim.StrategyDefs (sim.RegisterStrategy adds new families; `ethselfish
// -list` enumerates the space with parameter ranges). The built-in space:
//
//	algorithm1                              the paper's Algorithm 1 (Sec. III-C)
//	honest                                  protocol-following control
//	eager-publish:lead=k                    commit as soon as the private lead reaches k (k >= 2)
//	stubborn:lead=L,fork=F,trail=T          the stubborn-mining family (Nayak et al.)
//
// The stubborn family composes three independent axes over Algorithm 1:
// lead=1 declines the sure win at Ls = Lh + 1 (publishes only up to Lh and
// races on), fork=1 keeps the tie-breaking block private instead of
// committing it, and trail=T keeps mining while behind by at most T blocks
// instead of adopting. The zero point of the family is exactly Algorithm 1.
// The legacy names "trail-stubborn" (= stubborn:lead=1) and
// "eager-publish-<k>" still parse as aliases.
//
// Every spec-built strategy passes the same validateReaction protocol gate
// as the hand-written ones: committing without a longer branch, publishing
// nonexistent blocks, or retracting announced blocks fails the run loudly.
// For the registry families this validation is a compile-time guarantee
// rather than a per-event check: the simulator compiles each pure strategy
// into a sim.DecisionTable whose every entry was validated when the table
// was built, so the hot loop performs no per-event reaction validation at
// all — a frame whose compiled reaction was rejected routes back to the
// live strategy call and fails exactly where it always did.
//
// On top of the registry, two engines explore the space at scale:
// experiments.Tournament plays every pair of specs as two equal-power
// competing pools over an alpha grid (per-pool relative-revenue matrix,
// round-robin scores), and experiments.BestResponse grid-searches the
// stubborn family per (alpha, gamma) point under Fig. 8's schedule,
// reporting the arg-max spec, the profitability thresholds, and the
// dominance region where a stubborn variant strictly beats Algorithm 1
// (empirically: high alpha with gamma >= 0.5, widening as gamma grows to 1;
// at gamma = 0 Algorithm 1 is the best response everywhere).
//
// # Absolute vs relative revenue: the time axis
//
// The block-count experiments measure relative revenue — the pool's share
// of settled rewards. A share above alpha is not yet profit: selfish
// mining discards work, so before the protocol reacts the pool earns fewer
// rewards per second than honest mining would, and the attack only starts
// to pay once difficulty adjustment compresses the time axis (Grunspan &
// Pérez-Marco, arXiv:1904.13330; Ritz & Zugenmaier, arXiv:1805.08832).
//
// sim.Config.Time enables a continuous-time axis over the same engine:
// block events arrive with exponential inter-arrival times at rate
// 1/difficulty, every block carries a timestamp (chain.Tree.TimeOf), and
// an optional difficulty.Controller closes the feedback loop inside the
// engine — every block the consensus floor settles is fed back with its
// real timestamp and its actually referenced uncles, counted off the tree.
// Three regimes: Static (constant difficulty), BitcoinStyle (uncle-blind
// epoch retargeting, pre-Byzantium), and EIP100 (per-block adjustment on
// the regular-plus-uncle rate, Byzantium). sim.Result reports elapsed and
// settled time, the difficulty trajectory, per-pool absolute reward rates
// (RateOf, rewards per unit time), and two windows of the settled chain —
// Early (before the first adjustment) and Steady (the converged trailing
// half) — whose comparison is exactly the profitability crossover
// experiments.Profitability sweeps over (alpha, gamma) x rule.
//
// The time axis is an overlay: it draws from a dedicated second RNG
// stream, so a timed run's block tree is bit-identical to the timeless run
// at the same seed, and the timeless path is pinned bit-for-bit against
// the pre-time engine. difficulty.PredictedRewardRate remains the
// closed-form steady-state oracle the engine loop is cross-validated
// against (the diffablation experiment).
//
// # Performance
//
// Paper-scale regeneration is embarrassingly parallel (10 independent runs
// at every grid point), and the implementation exploits that: sim.RunMany
// fans runs across a worker pool, and internal/experiments schedules every
// driver's (grid-point × run) work items on a shared engine. Both expose a
// Parallelism knob (default: one worker per CPU) that never changes
// results — per-run seeds are derived from the base seed alone and results
// are collected in run order, so parallel output is bit-identical to
// sequential.
//
// The simulator's per-event cost is O(1) in the population size (and O(K)
// in the pool count): miner draws go through a precomputed Walker alias
// table (one Uint64 plus one Float64 per event, whatever the number of
// miners) with dense pool-label lookups, state occupancy is a dense
// (Ls, Lh) grid increment per pool with a rare-overflow map, uncle
// candidates are tracked as one incrementally maintained fork-child set
// (visibility filtered per viewing pool) rather than rescanned, strategy
// decisions resolve through compiled decision tables (sim.DecisionTable —
// one table load per event instead of interface dispatch plus validation;
// sim.Config.NoDecisionTables restores the live path, bit-identically),
// and reward settlement tallies into dense per-miner slices indexed by
// MinerID with the schedule's Ku/Kn pre-expanded into lookup tables. The hot path is
// also allocation-free in steady state — including across run restarts:
// each worker reuses one simulator (block tree, uncle arena, candidate
// window, per-pool branches and occupancy grids, scratch buffers) for
// every run it executes, resetting rather than re-allocating.
// cmd/ethbench emits machine-readable benchmark results, a -baseline
// compare mode (gating ns/op, bytes/op, and allocs/op), a -record mode
// appending dated entries to the committed benchmark history, and
// -cpuprofile/-memprofile for pprof output.
//
// # Streaming settlement
//
// sim.Config.Streaming bounds the event loop's memory by the active race
// window instead of the run length, for multi-million-block horizons. The
// contract:
//
//   - As the consensus floor advances, the decided prefix — every block at
//     or below floor height minus (uncle window + 1) — is folded into
//     dense per-miner reward tallies by an incremental chain.StreamSettler,
//     and the settled records are evicted from the block tree by
//     base-offset compaction (surviving chain.BlockIDs stay stable).
//   - Results are bit-identical to one-shot settlement: reward values are
//     dyadic rationals well inside float64's exact-integer range, so the
//     per-miner sums are order-independent. A golden equivalence suite,
//     a fuzz property over random legal strategies, and the sampled
//     conservation audit (replayed against a cloned settler mid-run) pin
//     this.
//   - The one approximation is the Result.Steady window boundary on runs
//     past 2048 settled blocks: cumulative snapshots live on a
//     doubling-granularity ring, so the early/steady split may round down
//     by O(blocks/2048) heights. Reward totals, counts, occupancy, and
//     audits are exact regardless.
//   - Streaming composes with the time axis, fast-forward, audits, and
//     Runner reuse; it rejects only trace recording (which needs the full
//     tree at the end of the run).
//
// # Fast-forward and variance reduction
//
// Two opt-in accelerations trade bit-identical random streams for
// statistically identical results. sim.Config.FastForward collapses
// uneventful stretches analytically: at the race origin (every private
// branch empty, the public tip childless) each event is honest with
// probability 1-alpha and deterministically extends the tip, so the
// engine samples the stretch length in one Geometric(alpha) draw,
// bulk-appends the blocks (bulk-sampling the stretch duration as a
// Gamma(k) variate on the timed axis), and resumes event-by-event at the
// next selfish find — about a 2x speedup on 100k-block runs at small
// alpha. It engages only when every pool's strategy plainly adopts at the
// (0, 1, 0) frame (probed at init; otherwise the plain loop runs) and is
// rejected with feedback difficulty rules. Results agree with the plain
// engine in distribution — pinned by revenue, occupancy, and
// conservation-audit agreement tests — not bit-for-bit; each mode is
// bit-deterministic given (seed, mode), and checkpoint journals hash the
// mode so one never resumes the other.
//
// For sweep precision, internal/stats.Paired implements online
// control-variate estimation against the engine's closed-form oracles
// (the selfish event share has known mean alpha), and
// sim.Config.Antithetic mirrors every uniform draw for negatively
// correlated run pairs. experiments.Precision (CLI: `ethselfish
// precision`) runs the adaptive runs-to-target-CI study per (alpha,
// estimator) and reports realized radius, variance reduction factors, and
// projected run counts; cmd/ethbench's precision benches report the same
// as wall-clock time to a fixed target precision.
package ethselfish
