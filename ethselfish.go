package ethselfish

import (
	"errors"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/eyalsirer"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Scenario selects the difficulty-adjustment normalization (Sec. IV-E2 of
// the paper).
type Scenario int

// The two difficulty scenarios.
const (
	// Scenario1 pins the regular-block rate to 1 (uncle-blind
	// difficulty: Bitcoin, pre-Byzantium Ethereum).
	Scenario1 Scenario = iota + 1

	// Scenario2 pins the regular-plus-uncle rate to 1 (EIP100).
	Scenario2
)

func (s Scenario) internal() core.Scenario {
	if s == Scenario2 {
		return core.Scenario2
	}
	return core.Scenario1
}

// String implements fmt.Stringer.
func (s Scenario) String() string { return s.internal().String() }

// NoDepthLimit marks a schedule that can reference uncles at any distance.
const NoDepthLimit = rewards.NoDepthLimit

// Schedule is an uncle/nephew reward schedule.
type Schedule struct {
	inner rewards.Schedule
}

// EthereumSchedule returns the Byzantium schedule used throughout the
// paper: Ku(l) = (8-l)/8 for distances 1..6, Kn = 1/32.
func EthereumSchedule() Schedule {
	return Schedule{inner: rewards.Ethereum()}
}

// ConstantSchedule returns a flat uncle reward ku (as a fraction of the
// static reward) at every referenceable distance up to maxDepth, with
// Ethereum's 1/32 nephew reward. Use NoDepthLimit for an unbounded depth.
func ConstantSchedule(ku float64, maxDepth int) (Schedule, error) {
	inner, err := rewards.Constant(ku, maxDepth)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{inner: inner}, nil
}

// BitcoinSchedule returns the schedule with no uncle or nephew rewards;
// under it the analysis reduces to Eyal and Sirer's (Remark 4).
func BitcoinSchedule() Schedule {
	return Schedule{inner: rewards.Bitcoin()}
}

// UncleReward returns Ku(distance) under the schedule.
func (s Schedule) UncleReward(distance int) float64 { return s.inner.Uncle(distance) }

// NephewReward returns Kn(distance) under the schedule.
func (s Schedule) NephewReward(distance int) float64 { return s.inner.Nephew(distance) }

// Option customizes Analyze, Simulate, and ProfitThreshold.
type Option interface {
	apply(*options)
}

type options struct {
	schedule   rewards.Schedule
	scenario   Scenario
	runs       int
	seed       uint64
	uncleLimit int
	miners     int
	strategy   sim.Strategy
}

func defaultOptions() options {
	return options{
		schedule: rewards.Ethereum(),
		scenario: Scenario1,
		runs:     1,
	}
}

// ErrUnknownStrategy is returned by WithStrategy for unrecognized names.
var ErrUnknownStrategy = errors.New("ethselfish: unknown strategy")

// ParseStrategy resolves a strategy spec for Simulate through the sim
// registry: "algorithm1" (the paper's Algorithm 1), "honest" (control), the
// parametric stubborn family ("stubborn:lead=1,trail=2"), "eager-publish"
// with its lead trigger, plus the legacy aliases "trail-stubborn"
// (= stubborn:lead=1) and "eager-publish-<k>". The empty string is
// Algorithm 1.
func ParseStrategy(name string) (sim.Strategy, error) {
	if name == "" {
		return sim.Algorithm1{}, nil
	}
	s, err := sim.ParseStrategy(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownStrategy, name, err)
	}
	return s, nil
}

type strategyOption struct{ s sim.Strategy }

func (o strategyOption) apply(opts *options) { opts.strategy = o.s }

// WithStrategy selects the pool's mining strategy by name (see
// ParseStrategy); Simulate fails with ErrUnknownStrategy for bad names.
// The default is the paper's Algorithm 1. The analytic model covers only
// Algorithm 1; variants are simulation-only.
func WithStrategy(name string) Option {
	s, err := ParseStrategy(name)
	if err != nil {
		// Defer the error to Simulate by recording a nil strategy
		// alongside the name; simplest is a sentinel option.
		return badStrategyOption(name)
	}
	return strategyOption{s: s}
}

type badStrategyOption string

func (o badStrategyOption) apply(opts *options) { opts.strategy = badStrategy(o) }

// badStrategy is a sentinel that makes Simulate fail with a useful error.
type badStrategy string

func (badStrategy) Name() string                             { return "invalid" }
func (badStrategy) ReactToPool(ls, lh, p int) sim.Reaction   { return sim.Reaction{} }
func (badStrategy) ReactToHonest(ls, lh, p int) sim.Reaction { return sim.Reaction{} }

type scheduleOption struct{ s rewards.Schedule }

func (o scheduleOption) apply(opts *options) { opts.schedule = o.s }

// WithSchedule selects the reward schedule (default: Ethereum Byzantium).
func WithSchedule(s Schedule) Option { return scheduleOption{s: s.inner} }

type scenarioOption Scenario

func (o scenarioOption) apply(opts *options) { opts.scenario = Scenario(o) }

// WithScenario selects the difficulty scenario for threshold searches
// (default: Scenario1).
func WithScenario(s Scenario) Option { return scenarioOption(s) }

type seedOption uint64

func (o seedOption) apply(opts *options) { opts.seed = uint64(o) }

// WithSeed fixes the simulation seed (default: 0).
func WithSeed(seed uint64) Option { return seedOption(seed) }

type runsOption int

func (o runsOption) apply(opts *options) { opts.runs = int(o) }

// WithRuns averages simulations over the given number of independent runs
// (default: 1; the paper uses 10).
func WithRuns(runs int) Option { return runsOption(runs) }

type uncleLimitOption int

func (o uncleLimitOption) apply(opts *options) { opts.uncleLimit = int(o) }

// WithUncleLimit caps uncle references per block in simulations (default:
// unlimited, matching the paper's model; Ethereum uses 2).
func WithUncleLimit(limit int) Option { return uncleLimitOption(limit) }

type minersOption int

func (o minersOption) apply(opts *options) { opts.miners = int(o) }

// WithMiners simulates a population of n equal-power miners (the paper's
// n = 1000 setup) instead of the two-agent abstraction. The selfish pool
// receives floor(n*alpha) miners, so alpha is realized up to 1/n.
func WithMiners(n int) Option { return minersOption(n) }

// Revenue reports the long-run reward rates of one configuration, in units
// of the static block reward.
type Revenue struct {
	// PoolStatic, PoolUncle and PoolNephew are the pool's reward rates;
	// the Honest fields are the honest miners'.
	PoolStatic, PoolUncle, PoolNephew       float64
	HonestStatic, HonestUncle, HonestNephew float64

	// RegularRate and UncleRate are the block-production rates used by
	// the two scenario normalizations.
	RegularRate, UncleRate float64

	inner core.Revenue
}

// Pool returns the pool's absolute revenue under the scenario — U_s in the
// paper, directly comparable to alpha.
func (r Revenue) Pool(s Scenario) float64 { return r.inner.PoolAbsolute(s.internal()) }

// Honest returns the honest miners' absolute revenue under the scenario.
func (r Revenue) Honest(s Scenario) float64 { return r.inner.HonestAbsolute(s.internal()) }

// Total returns the system-wide absolute revenue under the scenario.
func (r Revenue) Total(s Scenario) float64 { return r.inner.TotalAbsolute(s.internal()) }

// PoolShare returns the pool's relative share of all rewards (R_s).
func (r Revenue) PoolShare() float64 { return r.inner.PoolShare() }

// UncleDistances returns the probability that an honest miner's uncle is
// referenced at distance d (index d-1), normalized over 1..max — Table II
// of the paper.
func (r Revenue) UncleDistances(max int) []float64 {
	return r.inner.HonestUncleDistribution(max).P
}

// Analysis is the solved closed-form model.
type Analysis struct {
	model *core.Model
}

// Analyze solves the model for a pool with hash-power share alpha and
// network capability gamma. Accepted options: WithSchedule.
func Analyze(alpha, gamma float64, opts ...Option) (Analysis, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	model, err := core.New(core.Params{Alpha: alpha, Gamma: gamma, Schedule: o.schedule})
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{model: model}, nil
}

// Revenue returns the model's long-run reward rates.
func (a Analysis) Revenue() Revenue {
	rev := a.model.Revenue()
	return Revenue{
		PoolStatic:   rev.PoolStatic,
		PoolUncle:    rev.PoolUncle,
		PoolNephew:   rev.PoolNephew,
		HonestStatic: rev.HonestStatic,
		HonestUncle:  rev.HonestUncle,
		HonestNephew: rev.HonestNephew,
		RegularRate:  rev.RegularRate,
		UncleRate:    rev.UncleRate,
		inner:        rev,
	}
}

// StateProbability returns the stationary probability of the race state
// (privateLen, publicLen) — pi(i,j) in the paper.
func (a Analysis) StateProbability(privateLen, publicLen int) float64 {
	return a.model.Pi(core.State{S: privateLen, H: publicLen})
}

// Profitable reports whether selfish mining beats honest mining under the
// scenario.
func (a Analysis) Profitable(s Scenario) bool {
	return a.Revenue().Pool(s) > a.model.Params().Alpha
}

// ProfitThreshold returns alpha*, the smallest hash-power share at which
// selfish mining is profitable. Accepted options: WithSchedule,
// WithScenario. It returns core.ErrNoThreshold (via errors.Is) when no
// alpha below 0.5 profits.
func ProfitThreshold(gamma float64, opts ...Option) (float64, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	return core.Threshold(core.ThresholdParams{
		Gamma:    gamma,
		Schedule: o.schedule,
		Scenario: o.scenario.internal(),
	})
}

// BitcoinThreshold returns the Eyal-Sirer baseline threshold
// (1-gamma)/(3-2*gamma).
func BitcoinThreshold(gamma float64) (float64, error) {
	return eyalsirer.Threshold(gamma)
}

// SimResult summarizes a simulation (averaged over runs when WithRuns > 1).
type SimResult struct {
	// Alpha is the realized selfish hash-power share.
	Alpha float64

	// Runs and BlocksPerRun record the effort.
	Runs, BlocksPerRun int

	// PoolRevenue and HonestRevenue are scenario-1 absolute revenues;
	// use the Scenario2 fields for the EIP100 normalization.
	PoolRevenue, HonestRevenue                   float64
	PoolRevenueScenario2, HonestRevenueScenario2 float64

	// PoolRevenueStdErr is the standard error across runs (0 for a
	// single run).
	PoolRevenueStdErr float64

	// RegularBlocks, UncleBlocks and StaleBlocks count settled blocks
	// across all runs.
	RegularBlocks, UncleBlocks, StaleBlocks int

	// UncleDistances is the honest uncle distance distribution over
	// 1..6, as in Table II.
	UncleDistances []float64
}

// Simulate runs the event-driven simulator for the given number of block
// events. Accepted options: WithSchedule, WithSeed, WithRuns,
// WithUncleLimit, WithMiners.
func Simulate(alpha, gamma float64, blocks int, opts ...Option) (SimResult, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	var (
		pop *mining.Population
		err error
	)
	if o.miners > 0 {
		pop, err = mining.Equal(o.miners, int(float64(o.miners)*alpha))
	} else {
		pop, err = mining.TwoAgent(alpha)
	}
	if err != nil {
		return SimResult{}, fmt.Errorf("ethselfish: %w", err)
	}
	if bad, isBad := o.strategy.(badStrategy); isBad {
		return SimResult{}, fmt.Errorf("%w: %q", ErrUnknownStrategy, string(bad))
	}
	series, err := sim.RunMany(sim.Config{
		Population:        pop,
		Gamma:             gamma,
		Schedule:          o.schedule,
		Blocks:            blocks,
		Seed:              o.seed,
		MaxUnclesPerBlock: o.uncleLimit,
		Strategy:          o.strategy,
	}, o.runs)
	if err != nil {
		return SimResult{}, err
	}

	result := SimResult{
		Alpha:          pop.Alpha(),
		Runs:           o.runs,
		BlocksPerRun:   blocks,
		UncleDistances: series.HonestUncleDistribution(6).P,
	}
	pool1 := series.PoolAbsolute(core.Scenario1)
	result.PoolRevenue = pool1.Mean()
	result.PoolRevenueStdErr = pool1.StdErr()
	result.HonestRevenue = series.HonestAbsolute(core.Scenario1).Mean()
	result.PoolRevenueScenario2 = series.PoolAbsolute(core.Scenario2).Mean()
	result.HonestRevenueScenario2 = series.HonestAbsolute(core.Scenario2).Mean()
	for _, run := range series.Runs {
		result.RegularBlocks += run.RegularCount
		result.UncleBlocks += run.UncleCount
		result.StaleBlocks += run.StaleCount
	}
	return result, nil
}
