// rewarddesign explores the Sec. VI question: how should the uncle-reward
// function be chosen to make selfish mining as unattractive as possible?
// It sweeps flat Ku values, reports the profitability thresholds each
// induces, and reproduces the paper's 4/8 recommendation.
//
// Run with:
//
//	go run ./examples/rewarddesign
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const gamma = 0.5

	// Baseline: Ethereum's distance-decaying Ku.
	base1, err := ethselfish.ProfitThreshold(gamma)
	if err != nil {
		return err
	}
	base2, err := ethselfish.ProfitThreshold(gamma, ethselfish.WithScenario(ethselfish.Scenario2))
	if err != nil {
		return err
	}
	fmt.Printf("Ethereum Ku(.)=(8-l)/8:  threshold %.3f (scenario 1), %.3f (scenario 2)\n\n",
		base1, base2)
	fmt.Printf("%-10s %22s %22s\n", "flat Ku", "threshold (scenario 1)", "threshold (scenario 2)")

	var (
		bestKu, bestThreshold float64
		paperProposal         float64 // threshold under the Sec. VI flat 4/8
	)
	for eighths := 1; eighths <= 7; eighths++ {
		ku := float64(eighths) / 8
		schedule, err := ethselfish.ConstantSchedule(ku, 6)
		if err != nil {
			return err
		}
		t1, err := ethselfish.ProfitThreshold(gamma, ethselfish.WithSchedule(schedule))
		if err != nil {
			return err
		}
		t2, err := ethselfish.ProfitThreshold(gamma,
			ethselfish.WithSchedule(schedule), ethselfish.WithScenario(ethselfish.Scenario2))
		if err != nil {
			return err
		}
		fmt.Printf("%d/8        %22.3f %22.3f\n", eighths, t1, t2)
		if t1 > bestThreshold {
			bestKu, bestThreshold = ku, t1
		}
		if eighths == 4 {
			paperProposal = t1
		}
	}

	fmt.Printf("\nthe paper's Sec. VI proposal (flat 4/8) raises the scenario-1 threshold\n")
	fmt.Printf("from %.3f to %.3f. sweeping further shows smaller flat rewards deter even\n",
		base1, paperProposal)
	fmt.Printf("more (best here: Ku = %.3f with threshold %.3f) — a flat reward stops\n",
		bestKu, bestThreshold)
	fmt.Println("subsidizing the pool's distance-1 uncles, and the lower it is, the less")
	fmt.Println("the attack's forked blocks earn back.")
	return nil
}
