// tournament pits the whole registered strategy space against itself: a
// round-robin where every pair of specs races as two equal-power pools on
// the same chain, followed by a best-response readout for the biggest pool
// size. It is the N-pool engine the paper's future work points at, driven
// entirely by strategy spec strings.
//
// Run with:
//
//	go run ./examples/tournament
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Any point of the strategy space enters by spec string; parameters
	// compose ("stubborn:fork=1,lead=1" is Nayak et al.'s strongest
	// variant at high gamma).
	var entrants []sim.StrategySpec
	for _, spec := range []string{
		"honest",
		"algorithm1",
		"eager-publish:lead=2",
		"stubborn:lead=1",
		"stubborn:trail=1",
		"stubborn:fork=1,lead=1",
	} {
		parsed, err := sim.ParseStrategySpec(spec)
		if err != nil {
			return err
		}
		entrants = append(entrants, parsed)
	}

	opts := experiments.Options{Runs: 4, Blocks: 50000, Seed: 2026}
	result, err := experiments.Tournament(opts, entrants...)
	if err != nil {
		return err
	}
	if err := result.Table().Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nround-robin winner: %s\n", result.Winner())

	fmt.Println("\nwhy: pairwise shares only reward strategies that survive contact")
	fmt.Println("with other attackers — a spec that farms the honest crowd can still")
	fmt.Println("bleed out against a rival pool. The best response search")
	fmt.Println("(`ethselfish bestresponse`) gives the complementary single-pool view.")
	return nil
}
