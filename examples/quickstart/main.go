// Quickstart: analyze and simulate one selfish-mining configuration.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		alpha  = 0.30 // the pool controls 30% of hash power
		gamma  = 0.5  // uniform tie-breaking
		blocks = 100000
	)

	// Closed-form analysis (the paper's Markov model).
	analysis, err := ethselfish.Analyze(alpha, gamma)
	if err != nil {
		return err
	}
	rev := analysis.Revenue()
	fmt.Printf("analytic pool revenue:   %.4f (honest mining would earn %.4f)\n",
		rev.Pool(ethselfish.Scenario1), alpha)
	fmt.Printf("analytic honest revenue: %.4f\n", rev.Honest(ethselfish.Scenario1))
	fmt.Printf("profitable under pre-EIP100 difficulty:  %v\n", analysis.Profitable(ethselfish.Scenario1))
	fmt.Printf("profitable under EIP100-style difficulty: %v\n", analysis.Profitable(ethselfish.Scenario2))

	// Event-driven simulation of the same configuration.
	result, err := ethselfish.Simulate(alpha, gamma, blocks,
		ethselfish.WithRuns(3), ethselfish.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Printf("simulated pool revenue:  %.4f +/- %.4f (%d runs x %d blocks)\n",
		result.PoolRevenue, result.PoolRevenueStdErr, result.Runs, result.BlocksPerRun)
	fmt.Printf("settled blocks: %d regular, %d uncles, %d stale\n",
		result.RegularBlocks, result.UncleBlocks, result.StaleBlocks)

	// The profitability threshold this alpha clears (paper: 0.054).
	threshold, err := ethselfish.ProfitThreshold(gamma)
	if err != nil {
		return err
	}
	fmt.Printf("profitability threshold at gamma=%.1f: %.3f\n", gamma, threshold)
	return nil
}
