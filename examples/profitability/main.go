// Profitability: does selfish mining actually pay, in rewards per second?
//
// Relative revenue above alpha is not profit — it only becomes profit once
// difficulty adjustment compresses the time axis. This example puts an
// alpha = 0.33 pool on the continuous-time engine and compares its
// absolute reward rate before and after the difficulty rule reacts, under
// the pre-Byzantium (uncle-blind, Bitcoin-style) rule and Byzantium's
// EIP100 (uncle-counting) rule.
//
// Run with:
//
//	go run ./examples/profitability
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		alpha  = 1.0 / 3 // the pool's hash-power share
		gamma  = 0.5     // uniform tie-breaking
		blocks = 100000
		runs   = 8
	)
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		return err
	}

	fmt.Printf("alpha=%.3f pool; honest mining would earn %.4f rewards per unit time\n\n", alpha, alpha)
	fmt.Printf("%-14s %16s %16s %16s %10s\n",
		"rule", "early (pre-adj)", "steady (adj'd)", "final difficulty", "pays?")
	for _, rule := range []difficulty.Rule{difficulty.BitcoinStyle, difficulty.EIP100} {
		series, err := sim.RunMany(sim.Config{
			Population: pop,
			Gamma:      gamma,
			Blocks:     blocks,
			Seed:       7,
			Time: sim.TimeConfig{
				Enabled:    true,
				Difficulty: difficulty.Params{Rule: rule},
			},
		}, runs)
		if err != nil {
			return err
		}
		early := series.EarlyRateOf(1)
		steady := series.SteadyRateOf(1)
		diff := series.Mean(func(r *sim.Result) float64 { return r.FinalDifficulty })
		pays := "no"
		if steady.Mean() > alpha {
			pays = "yes"
		}
		fmt.Printf("%-14v %8.4f+-%.4f %8.4f+-%.4f %16.4f %10s\n",
			rule, early.Mean(), early.StdErr(), steady.Mean(), steady.StdErr(), diff.Mean(), pays)
	}

	fmt.Println()
	fmt.Println("Before the first retarget the pool earns less than its honest-")
	fmt.Println("equivalent rate: orphaned blocks repay at most uncle rewards.")
	fmt.Println("Once the uncle-blind rule drops difficulty to restore the main-")
	fmt.Println("chain rate, the whole time axis compresses and the attack pays")
	fmt.Println("decisively; EIP100 counts the attack's own uncles against it, so")
	fmt.Println("the crossover shrinks to a sliver at this alpha.")
	return nil
}
