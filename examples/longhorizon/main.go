// longhorizon drives one selfish-mining configuration to multi-million-
// block horizons on the streaming event loop. With Streaming enabled the
// simulator folds the decided prefix into dense per-miner tallies as the
// consensus floor advances and evicts settled records from the block tree,
// so resident memory is bounded by the active race window — not the run
// length. The example quadruples the horizon twice and shows the resident
// heap staying flat, then cross-checks the converged total reward rate
// against the closed-form EIP100 steady-state oracle.
//
// Run with:
//
//	go run ./examples/longhorizon
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// residentHeap returns the live heap after a forced collection: what the
// process actually retains, as opposed to what it allocated along the way.
func residentHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

func run() error {
	const (
		alpha = 0.30 // the pool's hash-power share
		gamma = 0.5  // uniform tie-breaking
	)
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Population: pop,
		Gamma:      gamma,
		Seed:       11,
		Streaming:  true,
		Time: sim.TimeConfig{
			Enabled:    true,
			Difficulty: difficulty.Params{Rule: difficulty.EIP100},
		},
	}

	// One reused Runner: arenas and tallies are recycled across runs, so
	// the retained footprint after each run is the steady-state working
	// set, independent of how many blocks flowed through.
	rn := sim.NewRunner()
	fmt.Printf("alpha=%.2f pool, EIP100 difficulty, streaming settlement\n\n", alpha)
	fmt.Printf("%10s %14s %14s %16s\n", "blocks", "steady rate", "stale share", "resident heap")

	var last sim.Result
	for _, blocks := range []int{500000, 2000000, 4000000} {
		cfg.Blocks = blocks
		result, err := rn.Run(cfg)
		if err != nil {
			return err
		}
		stale := float64(result.StaleCount) / float64(result.RegularCount)
		fmt.Printf("%10d %14.4f %14.4f %13.2f MiB\n",
			blocks, result.Steady.TotalRate(), stale,
			float64(residentHeap())/(1<<20))
		last = result
	}

	// The engine-integrated difficulty loop should converge to the
	// closed-form steady-state issuance rate (scenario 2: EIP100 counts
	// the attack's own uncles against it).
	predicted, err := difficulty.PredictedRewardRate(
		difficulty.EIP100, 1, alpha, gamma, rewards.Ethereum())
	if err != nil {
		return err
	}
	simulated := last.Steady.TotalRate()
	fmt.Printf("\nsteady total reward rate: %.4f simulated, %.4f closed form (%.2f%% apart)\n",
		simulated, predicted, 100*math.Abs(simulated-predicted)/predicted)
	fmt.Println()
	fmt.Println("The horizon grew 8x; the resident heap did not. Settled blocks")
	fmt.Println("leave the tree as soon as they fall out of uncle range, so the")
	fmt.Println("event loop runs in O(race window) memory at any run length —")
	fmt.Println("and the streamed tallies are bit-identical to one-shot settlement.")
	return nil
}
