// pools2018 asks the question Fig. 6 of the paper raises: given the real
// September-2018 Ethereum pool landscape, which pools were large enough to
// profit from selfish mining, and by how much? It then goes one step past
// the paper with the K-pool race engine: what if the top TWO pools had
// both gone selfish at the same time?
//
// Run with:
//
//	go run ./examples/pools2018
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const gamma = 0.5 // uniform tie-breaking

	threshold1, err := ethselfish.ProfitThreshold(gamma)
	if err != nil {
		return err
	}
	threshold2, err := ethselfish.ProfitThreshold(gamma, ethselfish.WithScenario(ethselfish.Scenario2))
	if err != nil {
		return err
	}
	fmt.Printf("thresholds at gamma=%.1f: %.3f (pre-EIP100), %.3f (EIP100)\n\n",
		gamma, threshold1, threshold2)
	fmt.Printf("%-15s %7s %12s %12s %14s\n",
		"pool", "share", "honest earns", "selfish earns", "gain (EIP100)")

	// The Fig. 6 snapshot ships with the mining package as the pool-label
	// API's reference landscape; the last entry aggregates the honest
	// remainder.
	snapshot := mining.Ethereum2018Pools()
	pools := snapshot[:len(snapshot)-1]
	for _, p := range pools {
		analysis, err := ethselfish.Analyze(p.Share, gamma)
		if err != nil {
			return err
		}
		rev := analysis.Revenue()
		selfish1 := rev.Pool(ethselfish.Scenario1)
		selfish2 := rev.Pool(ethselfish.Scenario2)
		fmt.Printf("%-15s %6.2f%% %12.4f %12.4f %13.4f%%\n",
			p.Name, p.Share*100, p.Share, selfish1, (selfish2/p.Share-1)*100)
	}

	fmt.Println("\nunder pre-EIP100 difficulty every one of these pools cleared the")
	fmt.Printf("%.3f threshold; EIP100 raises the bar to %.3f, which only the top\n",
		threshold1, threshold2)
	fmt.Println("pools approach — the emendation the paper's conclusion endorses.")

	// Beyond the paper: Ethermine and SparkPool defect simultaneously.
	// The closed forms stop at one attacker; the simulator races both
	// pools' private branches (each running Algorithm 1) over one tree.
	pop, err := mining.MultiAgent(pools[0].Share, pools[1].Share)
	if err != nil {
		return err
	}
	series, err := sim.RunMany(sim.Config{
		Population: pop,
		Gamma:      gamma,
		Blocks:     100000,
		Seed:       2018,
	}, 10)
	if err != nil {
		return err
	}

	fmt.Printf("\nif %s and %s both ran Algorithm 1 (simulated, 10x100k blocks):\n\n",
		pools[0].Name, pools[1].Name)
	fmt.Printf("%-15s %7s %14s %14s\n", "pool", "share", "earns (pre-EIP)", "earns (EIP100)")
	for i, p := range pools[:2] {
		id := mining.PoolID(i + 1)
		fmt.Printf("%-15s %6.2f%% %14.4f %14.4f\n", p.Name, p.Share*100,
			series.AbsoluteOf(id, core.Scenario1).Mean(),
			series.AbsoluteOf(id, core.Scenario2).Mean())
	}
	fmt.Printf("%-15s %6.2f%% %14.4f %14.4f\n", "everyone else",
		(1-pop.Alpha())*100,
		series.AbsoluteOf(mining.HonestPool, core.Scenario1).Mean(),
		series.AbsoluteOf(mining.HonestPool, core.Scenario2).Mean())

	var stale, settled float64
	for i := range series.Runs {
		r := &series.Runs[i]
		stale += float64(r.StaleCount)
		settled += float64(r.RegularCount + r.UncleCount + r.StaleCount)
	}
	fmt.Printf("\nracing each other, the two pools stale %.1f%% of all blocks: under\n", 100*stale/settled)
	fmt.Println("uncle-blind difficulty the waste lowers the bar and pays both pools;")
	fmt.Println("under EIP100 it is priced in, and the dual attack undercuts itself.")
	return nil
}
