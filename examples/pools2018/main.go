// pools2018 asks the question Fig. 6 of the paper raises: given the real
// September-2018 Ethereum pool landscape, which pools were large enough to
// profit from selfish mining, and by how much?
//
// Run with:
//
//	go run ./examples/pools2018
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

// pool is one entry of the Fig. 6 snapshot.
type pool struct {
	name  string
	share float64
}

// fig6Pools is the etherscan snapshot the paper reproduces in Fig. 6.
var fig6Pools = []pool{
	{"Ethermine", 0.2634},
	{"SparkPool", 0.2246},
	{"F2Pool", 0.1337},
	{"Nanopool", 0.1033},
	{"MiningPoolHub", 0.0878},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const gamma = 0.5 // uniform tie-breaking

	threshold1, err := ethselfish.ProfitThreshold(gamma)
	if err != nil {
		return err
	}
	threshold2, err := ethselfish.ProfitThreshold(gamma, ethselfish.WithScenario(ethselfish.Scenario2))
	if err != nil {
		return err
	}
	fmt.Printf("thresholds at gamma=%.1f: %.3f (pre-EIP100), %.3f (EIP100)\n\n",
		gamma, threshold1, threshold2)
	fmt.Printf("%-15s %7s %12s %12s %14s\n",
		"pool", "share", "honest earns", "selfish earns", "gain (EIP100)")

	for _, p := range fig6Pools {
		analysis, err := ethselfish.Analyze(p.share, gamma)
		if err != nil {
			return err
		}
		rev := analysis.Revenue()
		selfish1 := rev.Pool(ethselfish.Scenario1)
		selfish2 := rev.Pool(ethselfish.Scenario2)
		fmt.Printf("%-15s %6.2f%% %12.4f %12.4f %13.4f%%\n",
			p.name, p.share*100, p.share, selfish1, (selfish2/p.share-1)*100)
	}

	fmt.Println("\nunder pre-EIP100 difficulty every one of these pools cleared the")
	fmt.Printf("%.3f threshold; EIP100 raises the bar to %.3f, which only the top\n",
		threshold1, threshold2)
	fmt.Println("pools approach — the emendation the paper's conclusion endorses.")
	return nil
}
