// stubborn explores the paper's stated future work — alternative mining
// strategies — by racing the paper's Algorithm 1 against points of the
// parametric stubborn family (lead-, equal-fork-, and trail-stubborn axes)
// and an eager-publishing variant, across pool sizes. Strategies are named
// by registry spec strings; `ethselfish -list` enumerates the space.
//
// Run with:
//
//	go run ./examples/stubborn
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		gamma  = 0.5
		blocks = 100000
		runs   = 4
	)
	strategies := []string{
		"honest", "algorithm1", "eager-publish:lead=2",
		"stubborn:lead=1", "stubborn:fork=1,lead=1",
	}

	fmt.Println("simulated pool revenue by strategy spec (gamma=0.5, scenario 1)")
	fmt.Printf("%-8s", "alpha")
	for _, name := range strategies {
		fmt.Printf(" %22s", name)
	}
	fmt.Println()

	for _, alpha := range []float64{0.15, 0.30, 0.45} {
		fmt.Printf("%-8.2f", alpha)
		best, bestRevenue := "", 0.0
		for _, name := range strategies {
			result, err := ethselfish.Simulate(alpha, gamma, blocks,
				ethselfish.WithStrategy(name),
				ethselfish.WithRuns(runs),
				ethselfish.WithSeed(2026))
			if err != nil {
				return err
			}
			fmt.Printf(" %22.4f", result.PoolRevenue)
			if result.PoolRevenue > bestRevenue {
				best, bestRevenue = name, result.PoolRevenue
			}
		}
		fmt.Printf("   <- best: %s\n", best)
	}

	fmt.Println("\nsmall pools should stick to Algorithm 1; large pools gain even more")
	fmt.Println("by stubbornness — declining the sure win (lead=1) and withholding the")
	fmt.Println("tie-breaker (fork=1) are repaid by the deeper races they sometimes")
	fmt.Println("win, once alpha and gamma are large enough.")
	return nil
}
