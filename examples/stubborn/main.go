// stubborn explores the paper's stated future work — alternative mining
// strategies — by racing the paper's Algorithm 1 against a trail-stubborn
// variant (which declines the "sure win" at Ls = Lh+1 and keeps racing) and
// an eager-publishing one, across pool sizes.
//
// Run with:
//
//	go run ./examples/stubborn
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		gamma  = 0.5
		blocks = 100000
		runs   = 4
	)
	strategies := []string{"honest", "algorithm1", "eager-publish-2", "trail-stubborn"}

	fmt.Println("simulated pool revenue by strategy (gamma=0.5, scenario 1)")
	fmt.Printf("%-8s", "alpha")
	for _, name := range strategies {
		fmt.Printf(" %16s", name)
	}
	fmt.Println()

	for _, alpha := range []float64{0.15, 0.30, 0.45} {
		fmt.Printf("%-8.2f", alpha)
		best, bestRevenue := "", 0.0
		for _, name := range strategies {
			result, err := ethselfish.Simulate(alpha, gamma, blocks,
				ethselfish.WithStrategy(name),
				ethselfish.WithRuns(runs),
				ethselfish.WithSeed(2026))
			if err != nil {
				return err
			}
			fmt.Printf(" %16.4f", result.PoolRevenue)
			if result.PoolRevenue > bestRevenue {
				best, bestRevenue = name, result.PoolRevenue
			}
		}
		fmt.Printf("   <- best: %s\n", best)
	}

	fmt.Println("\nsmall pools should stick to Algorithm 1; large pools gain even more")
	fmt.Println("by trail-stubbornness — the risk of losing a lead-1 race is repaid by")
	fmt.Println("the deeper races it sometimes wins, once alpha is large enough.")
	return nil
}
