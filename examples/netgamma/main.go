// netgamma studies the network-capability dimension: gamma is the fraction
// of honest hash power that ends up mining on the pool's branch during a
// tie, so an attacker that also controls block propagation (an eclipse-
// style attack) raises its effective gamma. The example sweeps gamma for a
// mid-sized pool and finds the minimum network capability that makes the
// attack pay, validating a few points against the simulator.
//
// Run with:
//
//	go run ./examples/netgamma
package main

import (
	"fmt"
	"log"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		alpha  = 0.07 // a 7% pool: below the gamma=0 threshold (~0.098)
		blocks = 50000
	)

	fmt.Printf("pool size alpha = %.2f\n\n", alpha)
	fmt.Printf("%-6s %16s %16s %10s\n", "gamma", "revenue (model)", "revenue (sim)", "profits?")

	breakEven := -1.0
	for gamma := 0.0; gamma <= 1.0001; gamma += 0.1 {
		analysis, err := ethselfish.Analyze(alpha, gamma)
		if err != nil {
			return err
		}
		model := analysis.Revenue().Pool(ethselfish.Scenario1)

		sim, err := ethselfish.Simulate(alpha, gamma, blocks,
			ethselfish.WithSeed(uint64(1000+gamma*10)), ethselfish.WithRuns(2))
		if err != nil {
			return err
		}
		profits := model > alpha
		if profits && breakEven < 0 {
			breakEven = gamma
		}
		fmt.Printf("%-6.1f %16.4f %16.4f %10v\n", gamma, model, sim.PoolRevenue, profits)
	}

	if breakEven >= 0 {
		fmt.Printf("\na %.0f%% pool profits once it controls gamma >= %.1f of tie-break\n",
			alpha*100, breakEven)
		fmt.Println("propagation. in Bitcoin no gamma below ~0.9 makes a pool this small")
		fmt.Println("profitable ((1-g)/(3-2g) = 0.07 needs g ~ 0.93) — another face of")
		fmt.Println("Ethereum's lower bar.")
	} else {
		fmt.Println("\nno profitable gamma at this pool size")
	}
	return nil
}
