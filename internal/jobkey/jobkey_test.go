package jobkey

import (
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// configFields records how the encoder treats every sim.Config field:
// "encoded" fields participate in ForConfig, the rest are excluded for the
// stated reason. TestConfigFieldCoverage diffs this map against the struct
// by reflection, so adding a config field fails the test until the encoder
// handles it (or its exclusion is argued here) — the guarantee that
// checkpoint and cache identity can never silently miss a field.
var configFields = map[string]string{
	"Population":         "encoded",
	"Gamma":              "encoded",
	"Schedule":           "encoded",
	"Blocks":             "encoded",
	"MaxUnclesPerBlock":  "encoded",
	"Strategy":           "encoded",
	"Strategies":         "encoded",
	"PoolOmitsUncleRefs": "encoded",
	"Time":               "encoded",
	"FastForward":        "encoded",
	"Antithetic":         "encoded",
	"Streaming":          "encoded",
	"Seed":               "excluded: joins per run via Key.Row",
	"NoDecisionTables":   "excluded: table and interface paths are bit-identical (pinned by the equivalence suite), so the knob is result-neutral",
	"Parallelism":        "excluded: scheduling knob, result-neutral by the RunMany contract",
	"Audit":              "excluded: observer, can only fail a run, never change it",
}

// timeFields and difficultyFields extend the coverage check into the
// nested time-axis configuration, all of whose fields are encoded.
var timeFields = map[string]string{
	"Enabled":    "encoded",
	"Difficulty": "encoded",
}

var difficultyFields = map[string]string{
	"Rule":       "encoded",
	"TargetRate": "encoded",
	"Epoch":      "encoded",
	"Initial":    "encoded",
}

func checkCoverage(t *testing.T, typ reflect.Type, fields map[string]string) {
	t.Helper()
	seen := make(map[string]bool)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		if _, ok := fields[name]; !ok {
			t.Errorf("%s.%s is not handled by the jobkey encoder: encode it in writeConfig or record why it cannot change results", typ, name)
		}
	}
	for name := range fields {
		if !seen[name] {
			t.Errorf("%s.%s no longer exists; prune it from the coverage map", typ, name)
		}
	}
}

// TestConfigFieldCoverage is the satellite guarantee: every sim.Config
// field (and every field of the nested time configuration) is either
// encoded or deliberately excluded with a recorded reason.
func TestConfigFieldCoverage(t *testing.T) {
	checkCoverage(t, reflect.TypeOf(sim.Config{}), configFields)
	checkCoverage(t, reflect.TypeOf(sim.TimeConfig{}), timeFields)
	checkCoverage(t, reflect.TypeOf(difficulty.Params{}), difficultyFields)
}

func baseConfig(t *testing.T) sim.Config {
	t.Helper()
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Population: pop, Gamma: 0.5, Blocks: 20000}
}

// TestKeySensitivity: every encoded field separates keys; every excluded
// field leaves them unchanged.
func TestKeySensitivity(t *testing.T) {
	base := ForConfig(baseConfig(t))

	mutants := map[string]func(*sim.Config){
		"Gamma":              func(c *sim.Config) { c.Gamma = 0.6 },
		"Blocks":             func(c *sim.Config) { c.Blocks = 40000 },
		"MaxUnclesPerBlock":  func(c *sim.Config) { c.MaxUnclesPerBlock = 2 },
		"PoolOmitsUncleRefs": func(c *sim.Config) { c.PoolOmitsUncleRefs = true },
		"FastForward":        func(c *sim.Config) { c.FastForward = true },
		"Antithetic":         func(c *sim.Config) { c.Antithetic = true },
		"Time":               func(c *sim.Config) { c.Time = sim.TimeConfig{Enabled: true} },
		"Time.Difficulty": func(c *sim.Config) {
			c.Time = sim.TimeConfig{Enabled: true, Difficulty: difficulty.Params{Rule: difficulty.EIP100}}
		},
		"Strategy":   func(c *sim.Config) { c.Strategy = sim.Stubborn{Lead: true} },
		"Strategies": func(c *sim.Config) { c.Strategies = []sim.Strategy{sim.Stubborn{Trail: 1}} },
		"Schedule": func(c *sim.Config) {
			sched, err := rewards.Constant(0.5, rewards.NoDepthLimit)
			if err != nil {
				t.Fatal(err)
			}
			c.Schedule = sched
		},
		"Population": func(c *sim.Config) {
			pop, err := mining.TwoAgent(0.31)
			if err != nil {
				t.Fatal(err)
			}
			c.Population = pop
		},
	}
	for name, mutate := range mutants {
		cfg := baseConfig(t)
		mutate(&cfg)
		if ForConfig(cfg) == base {
			t.Errorf("mutating %s did not change the key", name)
		}
	}

	neutral := map[string]func(*sim.Config){
		"Seed":        func(c *sim.Config) { c.Seed = 99 },
		"Parallelism": func(c *sim.Config) { c.Parallelism = 7 },
		"Audit":       func(c *sim.Config) { c.Audit = sim.AuditConfig{Enabled: true, SampleEvery: 64} },
	}
	for name, mutate := range neutral {
		cfg := baseConfig(t)
		mutate(&cfg)
		if ForConfig(cfg) != base {
			t.Errorf("result-neutral field %s changed the key", name)
		}
	}
}

// TestKeyCanonicalization: a defaulted config and its explicit spelling
// share an address exactly as they share results — the property that lets
// a Fig. 8 row (implicit Algorithm 1, zero schedule defaults) serve a
// best-response sweep's explicit [algorithm1] candidate.
func TestKeyCanonicalization(t *testing.T) {
	implicit := baseConfig(t)
	implicit.Schedule = rewards.Schedule{} // simulator default: Ethereum

	explicit := baseConfig(t)
	explicit.Schedule = rewards.Ethereum()
	explicit.Strategies = []sim.Strategy{sim.Algorithm1{}}

	if ForConfig(implicit) != ForConfig(explicit) {
		t.Error("defaulted config and its explicit spelling have different keys")
	}

	named := baseConfig(t)
	named.Strategy = sim.Algorithm1{}
	if ForConfig(implicit) != ForConfig(named) {
		t.Error("nil Strategy and explicit Algorithm1 have different keys")
	}
}

// TestRowKeys: distinct seeds get distinct row addresses under one key,
// and equal (config, seed) pairs collide exactly.
func TestRowKeys(t *testing.T) {
	k := ForConfig(baseConfig(t))
	if k.Row(1) == k.Row(2) {
		t.Error("distinct seeds share a row address")
	}
	if k.Row(7) != ForConfig(baseConfig(t)).Row(7) {
		t.Error("equal (config, seed) pairs have different row addresses")
	}
	if len(k.String()) != 64 {
		t.Errorf("key hex length = %d, want 64", len(k.String()))
	}
}

// TestSeedBaseCollisionRegression pins the fix for the old pointSeed
// derivation (opts.Seed + uint64(alpha*1e6)): grid points whose alphas
// collide at 1e-6 resolution used to share a stream family silently.
// SeedBase hashes the population's exact float bits, so they now get
// independent families.
func TestSeedBaseCollisionRegression(t *testing.T) {
	a, b := 0.2, 0.2+4e-7
	// The premise of the regression: the old truncation could not tell
	// these two grid points apart.
	if uint64(1+a*1e6) != uint64(1+b*1e6) {
		t.Fatalf("premise: alphas %v and %v no longer collide under the old derivation", a, b)
	}
	popA, err := mining.TwoAgent(a)
	if err != nil {
		t.Fatal(err)
	}
	popB, err := mining.TwoAgent(b)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := sim.Config{Population: popA, Gamma: 0.5, Blocks: 1000}
	cfgB := sim.Config{Population: popB, Gamma: 0.5, Blocks: 1000}
	if SeedBase(1, cfgA) == SeedBase(1, cfgB) {
		t.Errorf("alphas %v and %v share a stream family", a, b)
	}
	if SeedBase(1, cfgA) != SeedBase(1, cfgA) {
		t.Error("SeedBase is not deterministic")
	}
	if SeedBase(1, cfgA) == SeedBase(2, cfgA) {
		t.Error("sweep seed does not separate stream families")
	}
}

// TestSeedBasePairing pins the pairing contract: strategy assignment, run
// length, time/difficulty regime, and the statistical modes do not move a
// point's stream family, so candidates compared at one point run on
// identical event streams — and a cached point keeps its per-run seeds in
// any sweep that contains it.
func TestSeedBasePairing(t *testing.T) {
	cfg := baseConfig(t)
	base := SeedBase(11, cfg)

	variant := cfg
	variant.Strategies = []sim.Strategy{sim.Stubborn{Lead: true}}
	variant.Blocks = 12345
	variant.FastForward = true
	variant.Antithetic = true
	variant.Time = sim.TimeConfig{Enabled: true, Difficulty: difficulty.Params{Rule: difficulty.BitcoinStyle}}
	variant.Seed = 42
	variant.Parallelism = 3
	if SeedBase(11, variant) != base {
		t.Error("candidate-only fields moved the point's stream family")
	}

	moved := cfg
	moved.Gamma = 0.6
	if SeedBase(11, moved) == base {
		t.Error("gamma is part of the environment and must move the family")
	}
}
