// Package jobkey is the canonical identity of one simulation: a
// content-addressed encoding of everything that can change a run's result,
// and nothing that cannot. It is the single encoder shared by the
// checkpoint journal's sweep hash and the result cache's row addresses, so
// the two can never diverge on what "the same simulation" means.
//
// Three identities are derived here, all from the same streamed encoding:
//
//   - Key (ForConfig) addresses one fully resolved sim.Config at a fixed
//     run length: population, gamma, reward schedule, uncle cap, strategy
//     assignment, time/difficulty regime, and the statistical mode
//     (fast-forward, antithetic). Fields the simulator guarantees
//     result-neutral — Parallelism and Audit — are excluded, as is Seed,
//     which joins per run via Key.Row.
//   - Key.Row joins a Key with one exact run seed: the content address of
//     one (config, seed) row. By determinism invariant 3 a row is a pure
//     function of its address, which is what makes cached rows exact.
//   - SeedBase derives a grid point's stream-family base seed from the
//     sweep seed and the point's environment only — population, gamma,
//     schedule, uncle cap, uncle-reference policy. Candidates evaluated at
//     the same point (different strategies, difficulty rules, run lengths,
//     or statistical modes) deliberately share the family, so sweeps that
//     compare them are paired comparisons over identical event streams —
//     and so a point cached by one sweep is addressable by any other sweep
//     containing it.
//
// The encoding canonicalizes exactly as the simulator defaults: a
// zero-value schedule hashes as Ethereum and a nil strategy as Algorithm 1,
// so a defaulted and an explicit config share an address exactly when they
// share results. Every primitive is length- or tag-prefixed, so adjacent
// fields can never alias.
package jobkey

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Key is the canonical content address of one resolved simulation
// configuration (run seed excluded; see Row).
type Key [sha256.Size]byte

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ForConfig computes the canonical key of a fully resolved configuration.
// The config must carry its final Population and Blocks (the engine
// resolves both before keying); Seed, Parallelism, and Audit are ignored —
// the first joins per run via Row, the others cannot change results.
func ForConfig(cfg sim.Config) Key {
	w := getWriter()
	w.Str("ethselfish-job-v1")
	writeConfig(w, &cfg)
	return putWriter(w)
}

// Row joins the config key with one exact run seed: the content address of
// a single (config, seed) row, the unit the result cache stores.
func (k Key) Row(seed uint64) Key {
	w := getWriter()
	w.Str("ethselfish-row-v1")
	w.Bytes(k[:])
	w.U64(seed)
	return putWriter(w)
}

// SeedBase derives the stream-family base seed of one grid point from the
// sweep seed and the point's environment: population, gamma, schedule,
// uncle cap, and uncle-reference policy. Strategy assignment, run length,
// time/difficulty configuration, and the statistical modes are deliberately
// excluded — candidates compared at one point share its streams (paired
// comparisons), and a point keeps its seeds across any sweep that contains
// it (cross-sweep cache reuse). Hashing the environment's exact float bits
// replaces the old alpha*1e6 truncation, under which distinct grid points
// closer than 1e-6 silently shared a family.
func SeedBase(sweepSeed uint64, cfg sim.Config) uint64 {
	w := getWriter()
	w.Str("ethselfish-seedbase-v1")
	w.U64(sweepSeed)
	w.F64(cfg.Gamma)
	w.U64(uint64(cfg.MaxUnclesPerBlock))
	w.Bool(cfg.PoolOmitsUncleRefs)
	writeSchedule(w, cfg.Schedule)
	writePopulation(w, cfg.Population)
	sum := putWriter(w)
	return binary.LittleEndian.Uint64(sum[:8])
}

// writeConfig streams every result-relevant field of a resolved config.
// The field-coverage test in this package enumerates sim.Config by
// reflection, so adding a config field fails tests until it is either
// encoded here or explicitly recorded as result-neutral.
func writeConfig(w *Writer, cfg *sim.Config) {
	w.U64(uint64(cfg.Blocks))
	w.F64(cfg.Gamma)
	w.U64(uint64(cfg.MaxUnclesPerBlock))
	w.Bool(cfg.PoolOmitsUncleRefs)
	// The statistical modes change which draws a run consumes, so each
	// separates the address space.
	w.Bool(cfg.FastForward)
	w.Bool(cfg.Antithetic)
	// Streaming settlement is bit-identical except the Steady window's
	// snapshot-rounded start, so it separates the address space too.
	w.Bool(cfg.Streaming)
	w.Bool(cfg.Time.Enabled)
	if cfg.Time.Enabled {
		d := cfg.Time.Difficulty
		w.U64(uint64(d.Rule))
		w.F64(d.TargetRate)
		w.U64(uint64(d.Epoch))
		w.F64(d.Initial)
	}
	writeSchedule(w, cfg.Schedule)
	writePopulation(w, cfg.Population)
	writeStrategies(w, cfg)
}

// writeSchedule hashes the reward schedule: its name and depth plus probed
// reward values, so two same-named schedules with different payouts cannot
// collide. The zero schedule hashes as Ethereum, mirroring the simulator's
// default.
func writeSchedule(w *Writer, sched rewards.Schedule) {
	if sched.MaxDepth() == 0 {
		sched = rewards.Ethereum()
	}
	w.Str(sched.Name())
	w.U64(uint64(sched.MaxDepth()))
	probe := sched.MaxDepth()
	if probe > 8 {
		probe = 8
	}
	for d := 1; d <= probe; d++ {
		w.F64(sched.Uncle(d))
		w.F64(sched.Nephew(d))
	}
}

// writePopulation hashes the miner set: count, and each miner's ID, power,
// and pool label.
func writePopulation(w *Writer, pop *mining.Population) {
	w.U64(uint64(pop.Len()))
	for i := 0; i < pop.Len(); i++ {
		m := pop.Miner(i)
		w.U64(uint64(m.ID))
		w.F64(m.Power)
		w.U64(uint64(m.Pool))
	}
}

// writeStrategies hashes the resolved per-pool strategy names
// (Strategy.Name returns the canonical registry spec, so equal names mean
// equal behavior). A nil assignment hashes as the simulator's default —
// Algorithm 1 everywhere — so a defaulted config and an explicit
// [algorithm1] share an address.
func writeStrategies(w *Writer, cfg *sim.Config) {
	if cfg.Strategies != nil {
		w.U64(uint64(len(cfg.Strategies)))
		for _, s := range cfg.Strategies {
			w.Str(s.Name())
		}
		return
	}
	w.U64(1)
	if cfg.Strategy != nil {
		w.Str(cfg.Strategy.Name())
	} else {
		w.Str(sim.Algorithm1{}.Name())
	}
}

// Writer streams length-prefixed primitives into a running hash, so
// adjacent fields can never alias each other. The checkpoint's sweep hash
// builds on it directly. Primitives accumulate in a fixed chunk flushed to
// the digest in bulk — the digest sees the same byte stream either way, so
// buffering can never change an address — which keeps the per-field cost to
// a couple of stores instead of an interface call.
type Writer struct {
	h     hash.Hash
	n     int
	chunk [192]byte
	sum   [sha256.Size]byte
}

// NewWriter returns a Writer over a fresh sha256.
func NewWriter() *Writer { return &Writer{h: sha256.New()} }

// writerPool recycles Writers (and their sha256 states) across the
// package's own key derivations, which run once per row on the result
// cache's hot path.
var writerPool = sync.Pool{New: func() any { return NewWriter() }}

func getWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.h.Reset()
	w.n = 0
	return w
}

// putWriter finalizes the key and returns the Writer to the pool.
func putWriter(w *Writer) Key {
	k := w.Sum()
	writerPool.Put(w)
	return k
}

// flush drains the chunk into the digest.
func (w *Writer) flush() {
	if w.n > 0 {
		w.h.Write(w.chunk[:w.n])
		w.n = 0
	}
}

// U64 writes one little-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.n+8 > len(w.chunk) {
		w.flush()
	}
	binary.LittleEndian.PutUint64(w.chunk[w.n:], v)
	w.n += 8
}

// F64 writes a float64 by exact bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean as 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	for len(s) > 0 {
		if w.n == len(w.chunk) {
			w.flush()
		}
		c := copy(w.chunk[w.n:], s)
		w.n += c
		s = s[c:]
	}
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	for len(b) > 0 {
		if w.n == len(w.chunk) {
			w.flush()
		}
		c := copy(w.chunk[w.n:], b)
		w.n += c
		b = b[c:]
	}
}

// Sum returns the accumulated digest as a Key.
func (w *Writer) Sum() Key {
	w.flush()
	w.h.Sum(w.sum[:0])
	return Key(w.sum)
}
