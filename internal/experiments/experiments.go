// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns typed rows and can render itself
// as a text table, so the command-line harness, the benchmarks, and the
// tests all share the same code paths.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Paper-scale simulation defaults (Sec. V: averages of 10 runs, each
// generating 100,000 blocks).
const (
	// DefaultRuns is the paper's run count per data point.
	DefaultRuns = 10

	// DefaultBlocks is the paper's blocks per run.
	DefaultBlocks = 100000

	// QuickRuns and QuickBlocks trade precision for speed; used by the
	// benchmarks and tests.
	QuickRuns   = 2
	QuickBlocks = 20000
)

// ErrBadOptions is returned for invalid experiment options.
var ErrBadOptions = errors.New("experiments: invalid options")

// Options scales the simulation effort behind each experiment.
type Options struct {
	// Runs is the number of independent simulation runs per data point
	// (zero: DefaultRuns).
	Runs int

	// Blocks is the number of block events per run (zero:
	// DefaultBlocks).
	Blocks int

	// Seed derives per-run seeds (zero is a valid seed).
	Seed uint64

	// Parallelism bounds the worker goroutines the experiment engine
	// uses to schedule (grid-point × run) work items. Zero means
	// runtime.GOMAXPROCS(0); one forces sequential execution. Results
	// are identical regardless of the setting.
	Parallelism int

	// Ctx cancels a sweep early: once done, no new work items start,
	// in-flight runs finish, and the sweep returns the context's error
	// (completed rows are preserved in Checkpoint, if set). Nil means
	// no cancellation.
	Ctx context.Context

	// Checkpoint, when non-nil, journals every completed (grid-point ×
	// run) row keyed by a canonical hash of the sweep configuration, and
	// reuses journaled rows instead of recomputing them. By the engine's
	// determinism guarantees a resumed sweep is bit-identical to an
	// uninterrupted one. One open Checkpoint may serve many sweeps
	// (tournament and best-response drivers run several grids).
	Checkpoint *Checkpoint

	// Cache, when non-nil, is consulted before any simulation runs: every
	// (grid-point × run) row is content-addressed through the jobkey
	// encoder, served from the cache on a hit, and stored after a miss.
	// Because a row is a pure function of its address (determinism
	// invariant 3), cache hits are bit-identical to recomputation — any
	// sweep containing a previously cached point reuses its rows, even a
	// sweep of a different experiment. One Cache may serve many sweeps and
	// many invocations (via its disk journal; see resultcache.Open).
	Cache *resultcache.Cache

	// Audit enables the simulator's runtime invariant auditor for every
	// run in the sweep. Auditing never changes results; see
	// sim.AuditConfig.
	Audit sim.AuditConfig

	// FastForward turns on the simulator's analytic fast-forward (see
	// sim.Config.FastForward) for every run in the sweep. Fast-forwarded
	// runs agree with plain runs in distribution, not bit-for-bit, so the
	// mode participates in the sweep's checkpoint hash: journals written
	// in one mode are never resumed in the other.
	FastForward bool

	// NoDecisionTables keeps every run on the live Strategy interface
	// path instead of the compiled decision tables (see
	// sim.Config.NoDecisionTables). The knob never changes results, so it
	// does not participate in content addresses or checkpoint hashes.
	NoDecisionTables bool
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = DefaultRuns
	}
	if o.Blocks == 0 {
		o.Blocks = DefaultBlocks
	}
	return o
}

func (o Options) validate() error {
	if o.Runs < 0 || o.Blocks < 0 {
		return fmt.Errorf("%w: negative runs or blocks", ErrBadOptions)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism", ErrBadOptions)
	}
	return nil
}

// Quick returns options sized for fast regeneration (benchmarks, smoke
// tests); the shapes of all results survive the reduction.
func Quick() Options {
	return Options{Runs: QuickRuns, Blocks: QuickBlocks}
}
