// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns typed rows and can render itself
// as a text table, so the command-line harness, the benchmarks, and the
// tests all share the same code paths.
package experiments

import (
	"errors"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Paper-scale simulation defaults (Sec. V: averages of 10 runs, each
// generating 100,000 blocks).
const (
	// DefaultRuns is the paper's run count per data point.
	DefaultRuns = 10

	// DefaultBlocks is the paper's blocks per run.
	DefaultBlocks = 100000

	// QuickRuns and QuickBlocks trade precision for speed; used by the
	// benchmarks and tests.
	QuickRuns   = 2
	QuickBlocks = 20000
)

// ErrBadOptions is returned for invalid experiment options.
var ErrBadOptions = errors.New("experiments: invalid options")

// Options scales the simulation effort behind each experiment.
type Options struct {
	// Runs is the number of independent simulation runs per data point
	// (zero: DefaultRuns).
	Runs int

	// Blocks is the number of block events per run (zero:
	// DefaultBlocks).
	Blocks int

	// Seed derives per-run seeds (zero is a valid seed).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = DefaultRuns
	}
	if o.Blocks == 0 {
		o.Blocks = DefaultBlocks
	}
	return o
}

func (o Options) validate() error {
	if o.Runs < 0 || o.Blocks < 0 {
		return fmt.Errorf("%w: negative runs or blocks", ErrBadOptions)
	}
	return nil
}

// Quick returns options sized for fast regeneration (benchmarks, smoke
// tests); the shapes of all results survive the reduction.
func Quick() Options {
	return Options{Runs: QuickRuns, Blocks: QuickBlocks}
}

// simSeries runs the simulator at one (alpha, gamma) point.
func simSeries(alpha float64, opts Options, build func(pop *mining.Population) sim.Config) (sim.Series, error) {
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		return sim.Series{}, err
	}
	cfg := build(pop)
	cfg.Population = pop
	cfg.Blocks = opts.Blocks
	cfg.Seed = opts.Seed + uint64(alpha*1e6)
	return sim.RunMany(cfg, opts.Runs)
}
