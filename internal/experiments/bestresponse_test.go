package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestBestResponseRecoversFig8Threshold(t *testing.T) {
	if testing.Short() {
		t.Skip("full (gamma x alpha x candidate) grid search is heavy")
	}
	opts := Options{Runs: 2, Blocks: 20000, Seed: 17}
	result, err := BestResponse(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Specs) != 12 {
		t.Fatalf("search space has %d specs, want 12", len(result.Specs))
	}
	if want := len(bestResponseGammas) * 18; len(result.Rows) != want {
		t.Fatalf("%d rows, want %d", len(result.Rows), want)
	}

	// The algorithm1 column reproduces Fig. 8's profitability crossing
	// (paper: 0.163 at gamma = 0.5) within grid resolution and run noise.
	threshold := result.Threshold(0.5)
	if threshold < 0.125 || threshold > 0.225 {
		t.Errorf("algorithm1 threshold at gamma=0.5 = %v, want ~0.163", threshold)
	}
	// The best response can only open the profitable region earlier.
	if best := result.BestThreshold(0.5); best == 0 || best > threshold {
		t.Errorf("best-response threshold %v should not exceed algorithm1's %v", best, threshold)
	}

	// The dominance region is non-empty and sits where the literature
	// puts it: high alpha with nonzero gamma. At gamma = 0 stubbornness
	// never dominates (Algorithm 1 is the best response there).
	dominance := result.Dominance()
	if len(dominance) == 0 {
		t.Fatal("no (alpha, gamma) region where a stubborn variant beats Algorithm 1")
	}
	for _, row := range dominance {
		if row.Gamma == 0 {
			t.Errorf("dominance at gamma=0 alpha=%v (best %s); stubbornness should lose without network capability",
				row.Alpha, row.Best)
		}
	}
	// Pin one known point: at alpha = 0.45, gamma = 1 the best response
	// is a stubborn variant and clearly profitable.
	row, ok := result.At(1, 0.45)
	if !ok {
		t.Fatal("grid missing (gamma=1, alpha=0.45)")
	}
	if !strings.HasPrefix(row.Best, "stubborn") {
		t.Errorf("best response at (1, 0.45) = %q, want a stubborn variant", row.Best)
	}
	if !row.BeatsHonest() {
		t.Error("best response at (1, 0.45) should beat honest mining")
	}

	// Revenue sanity: every best response at least matches algorithm1
	// (paired streams make this exact, not just in expectation).
	for _, r := range result.Rows {
		if r.BestRevenue < r.Algorithm1Revenue {
			t.Errorf("(%v, %v): best %v below algorithm1 %v", r.Gamma, r.Alpha, r.BestRevenue, r.Algorithm1Revenue)
		}
	}
	if !strings.Contains(result.Table().String(), "Best response") {
		t.Error("table missing title")
	}
}

// TestBestResponseParallelMatchesSequential pins determinism for the grid
// search through the same bestResponse core the public driver uses; the
// reduced (gamma × alpha) grid keeps the run affordable under -race, so it
// is NOT Short-gated — the race suite must cover this path.
func TestBestResponseParallelMatchesSequential(t *testing.T) {
	base := Options{Runs: 1, Blocks: 2000, Seed: 23}
	gammas := []float64{0.5}
	alphas := []float64{0.1, 0.3, 0.45}
	specs := stubbornSearchSpace()

	seq := base
	seq.Parallelism = 1
	sequential, err := bestResponse(seq, gammas, alphas, specs)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Parallelism = 8
	parallel, err := bestResponse(par, gammas, alphas, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Error("BestResponse parallel result differs from sequential")
	}
	if len(sequential.Rows) != len(gammas)*len(alphas) {
		t.Errorf("reduced grid produced %d rows", len(sequential.Rows))
	}
}

func TestBestResponseRowHelpers(t *testing.T) {
	row := BestResponseRow{Alpha: 0.2, BestRevenue: 0.25}
	if !row.BeatsHonest() {
		t.Error("0.25 > 0.2 should beat honest mining")
	}
	if (BestResponseRow{Alpha: 0.2, BestRevenue: 0.15}).BeatsHonest() {
		t.Error("0.15 < 0.2 should not beat honest mining")
	}
	var empty BestResponseResult
	if got := empty.Threshold(0.5); got != 0 {
		t.Errorf("empty threshold = %v", got)
	}
	if _, ok := empty.At(0.5, 0.2); ok {
		t.Error("empty result should have no points")
	}
}
