package experiments

import (
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/parallel"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// This file is the experiment engine shared by every driver. Drivers
// describe their parameter grid; the engine schedules the work items across
// a worker pool and reassembles results in grid order, so a driver never
// hand-rolls a sweep loop. Two layers:
//
//   - grid evaluates an arbitrary function at every grid point (used
//     directly by the analytic drivers, whose points are closed-form
//     solves).
//   - runSimGrid flattens (grid-point × run) into individual simulation
//     work items so a sweep's total parallelism is points*runs rather than
//     whichever axis happens to be longer. Per-run seeds are derived
//     exactly as the sequential sim.RunMany would derive them, so the
//     assembled Series are bit-identical to a sequential sweep.

// grid evaluates fn at grid points 0..n-1 across at most workers
// goroutines (zero or negative workers: GOMAXPROCS) and returns the results
// in point order, reporting the lowest-index error. It is the experiment-
// facing name for the shared deterministic pool in internal/parallel.
func grid[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(workers, n, fn)
}

// simJob describes the simulation work at one grid point: the pool's hash
// power and a builder for the rest of the configuration. The builder must
// be safe to call concurrently with other builders (it normally just fills
// in literals). A nil pop means the classic two-agent population at alpha;
// multi-pool drivers supply their own population and use alpha purely as
// the point's seed key. Pool strategies are named by specs and resolved
// through the sim registry (one spec per pool, in pool order); a nil specs
// slice keeps whatever the builder configured (the engine's default is
// Algorithm 1 everywhere).
type simJob struct {
	alpha float64
	pop   *mining.Population
	specs []sim.StrategySpec
	build func(pop *mining.Population) sim.Config
}

// pointSeed derives the base seed of one grid point, keyed by alpha so
// every point gets an independent stream family regardless of sweep order.
func pointSeed(opts Options, alpha float64) uint64 {
	return opts.Seed + uint64(alpha*1e6)
}

// JobError locates a failure within a sweep: the grid point, its alpha,
// the run index, and the exact seed of the failing simulation, so a
// sweep-scale failure can be reproduced as a single sim.Run.
type JobError struct {
	// Point is the grid-point (job) index within the sweep.
	Point int

	// Alpha is the grid point's pool hash-power key.
	Alpha float64

	// Run is the run index within the point, and Seed the derived seed
	// of that run.
	Run  int
	Seed uint64

	// Err is the underlying failure.
	Err error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("experiments: grid point %d (alpha=%g) run %d (seed %d): %v",
		e.Point, e.Alpha, e.Run, e.Seed, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// runSimGrid executes every (grid-point × run) work item across the
// engine's workers and returns one Series per job, in job order with runs
// in run order — bit-identical to running sim.RunMany sequentially at each
// point. Failures carry their sweep coordinates via JobError; cancellation
// via opts.Ctx returns the context error once in-flight runs drain. With
// opts.Checkpoint set, completed rows are journaled as they finish and
// journaled rows are reused instead of recomputed.
func runSimGrid(opts Options, jobs []simJob) ([]sim.Series, error) {
	configs := make([]sim.Config, len(jobs))
	for j, job := range jobs {
		pop := job.pop
		if pop == nil {
			var err error
			pop, err = mining.TwoAgent(job.alpha)
			if err != nil {
				return nil, err
			}
		}
		cfg := job.build(pop)
		cfg.Population = pop
		cfg.Blocks = opts.Blocks
		cfg.Audit = opts.Audit
		if opts.FastForward {
			cfg.FastForward = true
		}
		if job.specs != nil {
			// Strategy instances are pure frame functions, so one
			// instance per job is safely shared by every worker that
			// picks up the job's runs.
			strategies, err := sim.NewStrategies(job.specs)
			if err != nil {
				return nil, err
			}
			cfg.Strategies = strategies
		}
		configs[j] = cfg
	}

	var header sweepHeader
	if opts.Checkpoint != nil {
		header = sweepHeader{
			Hash:   sweepHash(opts, jobs, configs),
			Jobs:   len(jobs),
			Runs:   opts.Runs,
			Blocks: opts.Blocks,
			Seed:   opts.Seed,
		}
	}

	// Each worker reuses one simulator (tree, arena, scratch) across all
	// the work items it processes; reuse never changes results, so the
	// grid stays bit-identical to sequential fresh-simulator runs.
	results, _, err := parallel.MapWithCtx(opts.Ctx, opts.Parallelism, len(jobs)*opts.Runs, sim.NewRunner,
		func(rn *sim.Runner, k int) (sim.Result, error) {
			j, r := k/opts.Runs, k%opts.Runs
			seed := sim.DeriveSeed(pointSeed(opts, jobs[j].alpha), r)
			if opts.Checkpoint != nil {
				res, ok, err := opts.Checkpoint.lookup(header.Hash, j, r, seed)
				if err != nil {
					return sim.Result{}, &JobError{Point: j, Alpha: jobs[j].alpha, Run: r, Seed: seed, Err: err}
				}
				if ok {
					return res, nil
				}
			}
			cfg := configs[j]
			cfg.Seed = seed
			res, err := rn.Run(cfg)
			if err != nil {
				return sim.Result{}, &JobError{Point: j, Alpha: jobs[j].alpha, Run: r, Seed: seed, Err: err}
			}
			if opts.Checkpoint != nil {
				// Journal before returning so a cancellation arriving
				// while later items drain still persists this row.
				if err := opts.Checkpoint.record(header, j, r, seed, res); err != nil {
					return sim.Result{}, &JobError{Point: j, Alpha: jobs[j].alpha, Run: r, Seed: seed, Err: err}
				}
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	series := make([]sim.Series, len(jobs))
	for j := range series {
		// Clamp capacity so appending to one Series can never bleed
		// into the next one's backing storage.
		series[j] = sim.Series{Runs: results[j*opts.Runs : (j+1)*opts.Runs : (j+1)*opts.Runs]}
	}
	return series, nil
}

// sweep materializes an inclusive arithmetic parameter sweep as a grid.
// The point count is computed once (floored with an epsilon against the
// representation error of (max-start)/step) and each value is an index
// multiply, so repeated-addition drift can never gain or lose an endpoint:
// a grid like 0.05..0.45 step 0.05 always has exactly 9 points and its
// last point never overshoots max.
func sweep(start, max, step float64) []float64 {
	n := 1 + int(math.Floor((max-start)/step+1e-9))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}
