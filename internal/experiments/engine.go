package experiments

import (
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/parallel"
	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// This file is the experiment engine shared by every driver. Drivers
// describe their parameter grid; the engine turns it into rows through an
// explicit pipeline — request → jobs → rows:
//
//   - grid evaluates an arbitrary function at every grid point (used
//     directly by the analytic drivers, whose points are closed-form
//     solves).
//   - runSimGrid resolves each job to a full sim.Config, derives its
//     canonical content address (jobkey.ForConfig) and stream-family base
//     seed (jobkey.SeedBase), and flattens (grid-point × run) into
//     individually addressed rows. Rows whose addresses coincide within the
//     sweep are computed once and scattered; the remaining unique rows are
//     served from the result cache or checkpoint journal when present, and
//     simulated across the worker pool otherwise. Per-run seeds are derived
//     exactly as the sequential sim.RunMany would derive them, so the
//     assembled Series are bit-identical to a sequential sweep — which is
//     also why a cached row is exact: by determinism invariant 3, a row is
//     a pure function of its content address.

// grid evaluates fn at grid points 0..n-1 across at most workers
// goroutines (zero or negative workers: GOMAXPROCS) and returns the results
// in point order, reporting the lowest-index error. It is the experiment-
// facing name for the shared deterministic pool in internal/parallel.
func grid[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(workers, n, fn)
}

// simJob describes the simulation work at one grid point: the pool's hash
// power and a builder for the rest of the configuration. The builder must
// be safe to call concurrently with other builders (it normally just fills
// in literals). A nil pop means the classic two-agent population at alpha;
// multi-pool drivers supply their own population, in which case alpha is
// purely the point's error-report label — identity and seeding both come
// from the resolved config's content address, never from alpha. Pool
// strategies are named by specs and resolved through the sim registry (one
// spec per pool, in pool order); a nil specs slice keeps whatever the
// builder configured (the engine's default is Algorithm 1 everywhere).
type simJob struct {
	alpha float64
	pop   *mining.Population
	specs []sim.StrategySpec
	build func(pop *mining.Population) sim.Config
}

// JobError locates a failure within a sweep: the grid point, its alpha,
// the run index, and the exact seed of the failing simulation, so a
// sweep-scale failure can be reproduced as a single sim.Run.
type JobError struct {
	// Point is the grid-point (job) index within the sweep.
	Point int

	// Alpha is the grid point's pool hash-power label.
	Alpha float64

	// Run is the run index within the point, and Seed the derived seed
	// of that run.
	Run  int
	Seed uint64

	// Err is the underlying failure.
	Err error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("experiments: grid point %d (alpha=%g) run %d (seed %d): %v",
		e.Point, e.Alpha, e.Run, e.Seed, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// resolveJobs turns driver jobs into fully resolved configs plus their two
// canonical identities: the content address (what the row is) and the
// stream-family base seed (which random draws its runs consume).
func resolveJobs(opts Options, jobs []simJob) (configs []sim.Config, keys []jobkey.Key, seedBases []uint64, err error) {
	configs = make([]sim.Config, len(jobs))
	keys = make([]jobkey.Key, len(jobs))
	seedBases = make([]uint64, len(jobs))
	for j, job := range jobs {
		pop := job.pop
		if pop == nil {
			pop, err = mining.TwoAgent(job.alpha)
			if err != nil {
				return nil, nil, nil, err
			}
		}
		cfg := job.build(pop)
		cfg.Population = pop
		cfg.Blocks = opts.Blocks
		cfg.Audit = opts.Audit
		if opts.FastForward {
			cfg.FastForward = true
		}
		if opts.NoDecisionTables {
			cfg.NoDecisionTables = true
		}
		if job.specs != nil {
			// Strategy instances are pure frame functions, so one
			// instance per job is safely shared by every worker that
			// picks up the job's runs.
			strategies, err := sim.NewStrategies(job.specs)
			if err != nil {
				return nil, nil, nil, err
			}
			cfg.Strategies = strategies
		}
		if !cfg.NoDecisionTables {
			// Compile each strategy's decision table once, up front, so no
			// worker pays the one-time compile inside its timed hot loop.
			sim.WarmDecisionTables(cfg.Strategies)
		}
		configs[j] = cfg
		keys[j] = jobkey.ForConfig(cfg)
		seedBases[j] = jobkey.SeedBase(opts.Seed, cfg)
	}
	return configs, keys, seedBases, nil
}

// runSimGrid executes every (grid-point × run) row of a sweep and returns
// one Series per job, in job order with runs in run order — bit-identical
// to running sim.RunMany sequentially at each point. Failures carry their
// sweep coordinates via JobError; cancellation via opts.Ctx returns the
// context error once in-flight runs drain.
//
// Rows flow through the pipeline: each is content-addressed; addresses
// repeated within the sweep are computed once and the result scattered to
// every duplicate; each unique address is looked up in opts.Cache and then
// opts.Checkpoint before any simulation runs, and whichever store missed is
// backfilled from the one that hit (or from the fresh run), so the journal
// stays complete and the cache warms even on resumed sweeps.
func runSimGrid(opts Options, jobs []simJob) ([]sim.Series, error) {
	configs, keys, seedBases, err := resolveJobs(opts, jobs)
	if err != nil {
		return nil, err
	}

	var header sweepHeader
	if opts.Checkpoint != nil {
		header = sweepHeader{
			Hash:   sweepHash(opts, keys, seedBases),
			Jobs:   len(jobs),
			Runs:   opts.Runs,
			Blocks: opts.Blocks,
			Seed:   opts.Seed,
		}
	}

	// Address every row, then deduplicate: rows sharing a content address
	// are the same pure function evaluation, so only the first occurrence
	// is dispatched and the rest alias its result. The representative
	// choice is deterministic (first in grid order), so checkpoint journals
	// written by deduplicated sweeps resume identically.
	n := len(jobs) * opts.Runs
	seeds := make([]uint64, n)
	rowKeys := make([]jobkey.Key, n)
	repOf := make([]int, n)
	firstAt := make(map[jobkey.Key]int, n)
	unique := make([]int, 0, n)
	for k := 0; k < n; k++ {
		j, r := k/opts.Runs, k%opts.Runs
		seeds[k] = sim.DeriveSeed(seedBases[j], r)
		rowKeys[k] = keys[j].Row(seeds[k])
		if first, ok := firstAt[rowKeys[k]]; ok {
			repOf[k] = first
			continue
		}
		firstAt[rowKeys[k]] = k
		repOf[k] = k
		unique = append(unique, k)
	}

	// Each worker reuses one simulator (tree, arena, scratch) across all
	// the work items it processes; reuse never changes results, so the
	// grid stays bit-identical to sequential fresh-simulator runs.
	uniqueResults, _, err := parallel.MapWithCtx(opts.Ctx, opts.Parallelism, len(unique), sim.NewRunner,
		func(rn *sim.Runner, u int) (sim.Result, error) {
			k := unique[u]
			j, r := k/opts.Runs, k%opts.Runs
			seed := seeds[k]
			fail := func(err error) (sim.Result, error) {
				return sim.Result{}, &JobError{Point: j, Alpha: jobs[j].alpha, Run: r, Seed: seed, Err: err}
			}
			if opts.Cache != nil {
				res, ok, err := opts.Cache.GetRaw(rowKeys[k], seed)
				if err != nil {
					return fail(err)
				}
				if ok {
					// Backfill the journal so a resume of this sweep is
					// complete even if the cache is gone by then.
					if opts.Checkpoint != nil {
						if err := opts.Checkpoint.record(header, j, r, seed, res); err != nil {
							return fail(err)
						}
					}
					return res, nil
				}
			}
			if opts.Checkpoint != nil {
				res, ok, err := opts.Checkpoint.lookup(header.Hash, j, r, seed)
				if err != nil {
					return fail(err)
				}
				if ok {
					if opts.Cache != nil {
						if err := opts.Cache.PutRaw(rowKeys[k], seed, res); err != nil {
							return fail(err)
						}
					}
					return res, nil
				}
			}
			cfg := configs[j]
			cfg.Seed = seed
			res, err := rn.Run(cfg)
			if err != nil {
				return fail(err)
			}
			if opts.Checkpoint != nil {
				// Journal before returning so a cancellation arriving
				// while later items drain still persists this row.
				if err := opts.Checkpoint.record(header, j, r, seed, res); err != nil {
					return fail(err)
				}
			}
			if opts.Cache != nil {
				if err := opts.Cache.PutRaw(rowKeys[k], seed, res); err != nil {
					return fail(err)
				}
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	// Scatter: place each unique result, then alias every duplicate to its
	// representative. repOf always points at an earlier (already placed)
	// index, so one forward pass suffices.
	results := make([]sim.Result, n)
	for u, k := range unique {
		results[k] = uniqueResults[u]
	}
	for k := 0; k < n; k++ {
		if repOf[k] != k {
			results[k] = results[repOf[k]]
		}
	}

	series := make([]sim.Series, len(jobs))
	for j := range series {
		// Clamp capacity so appending to one Series can never bleed
		// into the next one's backing storage.
		series[j] = sim.Series{Runs: results[j*opts.Runs : (j+1)*opts.Runs : (j+1)*opts.Runs]}
	}
	return series, nil
}

// cachedRun is the pipeline's single-row form, for drivers that adaptively
// run simulations outside a fixed grid (the precision study): one run,
// addressed under key+seed, served from cache when possible and stored
// after a miss. A nil cache degenerates to a plain run.
func cachedRun(rn *sim.Runner, cfg sim.Config, key jobkey.Key, cache *resultcache.Cache) (sim.Result, error) {
	if cache == nil {
		return rn.Run(cfg)
	}
	addr := key.Row(cfg.Seed)
	res, ok, err := cache.GetRaw(addr, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	if ok {
		return res, nil
	}
	res, err = rn.Run(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	if err := cache.PutRaw(addr, cfg.Seed, res); err != nil {
		return sim.Result{}, err
	}
	return res, nil
}

// sweep materializes an inclusive arithmetic parameter sweep as a grid.
// The point count is computed once (floored with an epsilon against the
// representation error of (max-start)/step) and each value is an index
// multiply, so repeated-addition drift can never gain or lose an endpoint:
// a grid like 0.05..0.45 step 0.05 always has exactly 9 points and its
// last point never overshoots max.
func sweep(start, max, step float64) []float64 {
	n := 1 + int(math.Floor((max-start)/step+1e-9))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}
