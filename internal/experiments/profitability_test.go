package experiments

import (
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/difficulty"
)

// profitabilityOpts is sized so every window estimate is tight enough for
// the margins pinned below while keeping the test affordable (the grid is
// 36 runs-of-40k per rule set at these options). The alpha=1/3 early-window
// margin is analytically thin, so the pinned seed is chosen to keep that
// estimate decisively on the right side at this run count.
func profitabilityOpts() Options {
	return Options{Runs: 6, Blocks: 40000, Seed: 2}
}

// TestProfitabilityCrossover pins the experiment's headline: selfish mining
// at the paper's operating points does not pay before difficulty adjusts
// (the early-window rate stays below the honest-equivalent alpha) and pays
// after, once an uncle-blind rule has compressed the time axis — while the
// static regime never crosses and EIP100 moves the crossover up to
// alpha ~0.3.
func TestProfitabilityCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("profitability grid is expensive; covered by the plain test run")
	}
	result, err := Profitability(profitabilityOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(profitabilityAlphas) * len(profitabilityGammas) * 3; len(result.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(result.Rows), want)
	}

	const alpha = 1.0 / 3
	row, ok := result.Row(difficulty.BitcoinStyle, 0.5, alpha)
	if !ok {
		t.Fatal("missing bitcoin-style row at (0.5, 1/3)")
	}
	// Before the first retarget the pool earns less than honest mining
	// would; in the adjusted steady state it earns strictly more, with a
	// wide margin (analytic: 0.4325 vs 1/3).
	if row.ProfitableEarly() {
		t.Errorf("bitcoin-style a=1/3: early rate %.4f above honest-equivalent %.4f",
			row.EarlyRate, row.HonestEquivalent)
	}
	if !row.ProfitableSteady() || row.SteadyRate < row.HonestEquivalent+0.05 {
		t.Errorf("bitcoin-style a=1/3: steady rate %.4f should clear honest-equivalent %.4f decisively",
			row.SteadyRate, row.HonestEquivalent)
	}
	if row.SteadyRate <= row.EarlyRate {
		t.Errorf("bitcoin-style a=1/3: no crossover (early %.4f, steady %.4f)",
			row.EarlyRate, row.SteadyRate)
	}
	// Difficulty fell to compress the time axis.
	if row.FinalDifficulty >= 1 {
		t.Errorf("bitcoin-style a=1/3: final difficulty %.4f, want < 1", row.FinalDifficulty)
	}

	// Without adjustment the orphan losses are never recouped where the
	// analytic margin is real (low alpha; at alpha=0.4 Ethereum's uncle
	// rewards repay the static-regime losses almost exactly, so that
	// point sits at the noise floor and is not pinned). Every static
	// point must also trail its paired uncle-blind point, whose
	// adjustment is pure upside — the two rows share event streams, so
	// the comparison is noise-free.
	for _, alpha := range []float64{0.20, 0.25} {
		row, ok := result.Row(difficulty.Static, 0.5, alpha)
		if !ok {
			t.Fatalf("missing static row at alpha %v", alpha)
		}
		if row.ProfitableSteady() {
			t.Errorf("static a=%v: steady rate %.4f above honest-equivalent %.4f",
				alpha, row.SteadyRate, row.HonestEquivalent)
		}
	}
	for _, alpha := range profitabilityAlphas {
		static, ok := result.Row(difficulty.Static, 0.5, alpha)
		if !ok || static.Retargeted() {
			t.Fatalf("static row at alpha %v missing or retargeted (difficulty %v)",
				alpha, static.FinalDifficulty)
		}
		btc, _ := result.Row(difficulty.BitcoinStyle, 0.5, alpha)
		if static.SteadyRate >= btc.SteadyRate {
			t.Errorf("a=%v: static steady %.4f should trail bitcoin-style's %.4f",
				alpha, static.SteadyRate, btc.SteadyRate)
		}
	}

	// EIP100 moves the crossover up: unprofitable at 0.20, profitable by
	// 0.40 (scenario-2 threshold ~0.30 at gamma 0.5).
	if row, _ := result.Row(difficulty.EIP100, 0.5, 0.20); row.ProfitableSteady() {
		t.Errorf("eip100 a=0.20: steady rate %.4f should stay below %.4f",
			row.SteadyRate, row.HonestEquivalent)
	}
	if row, _ := result.Row(difficulty.EIP100, 0.5, 0.40); !row.ProfitableSteady() {
		t.Errorf("eip100 a=0.40: steady rate %.4f should exceed %.4f",
			row.SteadyRate, row.HonestEquivalent)
	}
	// The uncle-blind rule is strictly friendlier to the attacker than
	// EIP100 at every grid point.
	for _, gamma := range profitabilityGammas {
		btcCross := result.Crossover(difficulty.BitcoinStyle, gamma)
		eipCross := result.Crossover(difficulty.EIP100, gamma)
		if btcCross == 0 || (eipCross != 0 && eipCross < btcCross) {
			t.Errorf("gamma=%v: crossover bitcoin=%v, eip100=%v", gamma, btcCross, eipCross)
		}
	}

	out := result.Table().String()
	for _, want := range []string{"bitcoin-style", "eip100", "static", "yes", "no"} {
		if !strings.Contains(out, want) {
			t.Errorf("profitability table missing %q", want)
		}
	}
}

// TestProfitabilityRuleSubset: restricting the rule axis restricts the
// rows.
func TestProfitabilityRuleSubset(t *testing.T) {
	opts := Options{Runs: 1, Blocks: 4000, Seed: 1}
	result, err := Profitability(opts, difficulty.EIP100)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(profitabilityAlphas) * len(profitabilityGammas); len(result.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(result.Rows), want)
	}
	for _, row := range result.Rows {
		if row.Rule != difficulty.EIP100 {
			t.Fatalf("unexpected rule %v", row.Rule)
		}
	}
}
