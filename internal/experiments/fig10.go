package experiments

import (
	"errors"
	"math"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/eyalsirer"
	"github.com/ethselfish/ethselfish/internal/table"
)

// fig10GammaStep is the gamma sweep resolution of Fig. 10.
const fig10GammaStep = 0.05

// Fig10Row is one gamma point of Fig. 10: the profitability thresholds of
// Bitcoin (Eyal-Sirer) and of Ethereum under both difficulty scenarios.
// A NaN threshold means selfish mining is never profitable below 0.5.
type Fig10Row struct {
	Gamma     float64
	Bitcoin   float64
	Scenario1 float64
	Scenario2 float64
}

// Fig10Result reproduces Fig. 10.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 sweeps gamma and computes the three threshold curves of Fig. 10
// with Ethereum's Ku function, solving the gamma grid on the experiment
// engine. The driver is analytic: only opts.Parallelism is used
// (simulation effort does not apply).
func Fig10(opts Options) (Fig10Result, error) {
	if err := opts.validate(); err != nil {
		return Fig10Result{}, err
	}
	var gammas []float64
	for gamma := 0.0; gamma <= 1+1e-9; gamma += fig10GammaStep {
		if gamma > 1 {
			gamma = 1
		}
		gammas = append(gammas, gamma)
	}
	rows, err := grid(opts.Parallelism, len(gammas), func(i int) (Fig10Row, error) {
		gamma := gammas[i]
		bitcoin, err := eyalsirer.Threshold(gamma)
		if err != nil {
			return Fig10Row{}, err
		}
		row := Fig10Row{Gamma: gamma, Bitcoin: bitcoin}
		for _, scenario := range []core.Scenario{core.Scenario1, core.Scenario2} {
			threshold, err := core.Threshold(core.ThresholdParams{
				Gamma:    gamma,
				Scenario: scenario,
			})
			switch {
			case errors.Is(err, core.ErrNoThreshold):
				threshold = math.NaN()
			case err != nil:
				return Fig10Row{}, err
			}
			if scenario == core.Scenario1 {
				row.Scenario1 = threshold
			} else {
				row.Scenario2 = threshold
			}
		}
		return row, nil
	})
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Rows: rows}, nil
}

// Crossover returns the smallest swept gamma at which the scenario-2
// threshold exceeds Bitcoin's (the paper reports ~0.39), or NaN when they
// never cross.
func (r Fig10Result) Crossover() float64 {
	for _, row := range r.Rows {
		if !math.IsNaN(row.Scenario2) && row.Scenario2 > row.Bitcoin {
			return row.Gamma
		}
	}
	return math.NaN()
}

// Table renders the three threshold curves.
func (r Fig10Result) Table() *table.Table {
	t := table.New(
		"Fig. 10 — Profitability thresholds vs gamma (Ethereum Ku function)",
		"gamma", "bitcoin (Eyal-Sirer)", "ethereum scenario 1", "ethereum scenario 2",
	)
	for _, row := range r.Rows {
		_ = t.AddNumericRow(formatAlpha(row.Gamma), 4, row.Bitcoin, row.Scenario1, row.Scenario2)
	}
	return t
}
