package experiments

import (
	"fmt"
	"sync"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// This driver explores the regime the paper leaves as future work: several
// selfish pools racing each other on the same chain. Closed forms stop at
// one attacker (Grunspan & Pérez-Marco show Ethereum's reward system
// already strains the single-pool combinatorics); the tree-based simulator
// reaches the K-pool regime directly by giving each pool its own private
// branch and strategy over the shared block tree.

// poolWarsAlphas is the hash-power grid swept for each of the two pools.
var poolWarsAlphas = []float64{0.10, 0.20, 0.30}

// poolWarsHeteroAlpha2 is the control pool's hash power in the
// heterogeneous rows: pool 1 runs Algorithm 1 while pool 2 follows the
// protocol, isolating how much of the damage needs a second attacker.
const poolWarsHeteroAlpha2 = 0.20

// PoolWarsRow is one (alpha1, alpha2) point of the two-pool race:
// per-pool and honest-crowd absolute revenues under both difficulty
// scenarios, plus the fraction of blocks lost to the rivalry.
type PoolWarsRow struct {
	Alpha1, Alpha2     float64
	Strategy1          string
	Strategy2          string
	Pool1, Pool2       float64 // scenario-1 absolute revenue
	Honest             float64
	Pool1EIP, Pool2EIP float64 // scenario-2 (EIP100) absolute revenue
	StaleFraction      float64
}

// PoolWarsResult is the two-pool race sweep: an alpha1 x alpha2 grid of
// Algorithm-1 pools followed by heterogeneous rows pairing an Algorithm-1
// attacker with an honest-control pool.
type PoolWarsResult struct {
	Rows []PoolWarsRow
}

// poolWarsPoint is one (alpha1, alpha2, strategies) grid point of the
// two-pool race.
type poolWarsPoint struct {
	alpha1, alpha2 float64
	specs          []sim.StrategySpec
	pop            *mining.Population
}

// poolWarsGrid builds the sweep's fixed grid — points and their aggregate
// populations — once per process. Populations and specs are immutable and
// shared read-only by the engine's workers, so reusing them across sweeps
// changes nothing but the per-call setup cost (the sweep is the result
// cache's hottest client, where setup used to dominate a fully warmed
// pass).
var poolWarsGrid = sync.OnceValues(func() ([]poolWarsPoint, error) {
	algorithm1 := sim.MustStrategySpec("algorithm1")
	honest := sim.MustStrategySpec("honest")
	var points []poolWarsPoint
	for _, alpha1 := range poolWarsAlphas {
		for _, alpha2 := range poolWarsAlphas {
			points = append(points, poolWarsPoint{alpha1: alpha1, alpha2: alpha2,
				specs: []sim.StrategySpec{algorithm1, algorithm1}})
		}
	}
	for _, alpha1 := range poolWarsAlphas {
		points = append(points, poolWarsPoint{alpha1: alpha1, alpha2: poolWarsHeteroAlpha2,
			specs: []sim.StrategySpec{algorithm1, honest}})
	}
	for i := range points {
		pop, err := mining.MultiAgent(points[i].alpha1, points[i].alpha2)
		if err != nil {
			return nil, err
		}
		points[i].pop = pop
	}
	return points, nil
})

// PoolWars runs the two-pool race at gamma = 0.5, scheduling the full
// (alpha1 x alpha2) x run grid — both Algorithm-1 pools, plus one
// heterogeneous row per alpha1 with an honest-control second pool — on the
// shared experiment engine.
func PoolWars(opts Options) (PoolWarsResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PoolWarsResult{}, err
	}

	points, err := poolWarsGrid()
	if err != nil {
		return PoolWarsResult{}, err
	}
	jobs := make([]simJob, len(points))
	for i := range points {
		jobs[i] = simJob{
			alpha: points[i].alpha1,
			pop:   points[i].pop,
			specs: points[i].specs,
			build: func(*mining.Population) sim.Config {
				return sim.Config{Gamma: fig8Gamma}
			},
		}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return PoolWarsResult{}, err
	}

	rows, err := grid(opts.Parallelism, len(points), func(i int) (PoolWarsRow, error) {
		pt := points[i]
		s := series[i]
		var stale, total float64
		for j := range s.Runs {
			r := &s.Runs[j]
			stale += float64(r.StaleCount)
			total += float64(r.RegularCount + r.UncleCount + r.StaleCount)
		}
		row := PoolWarsRow{
			Alpha1:    pt.alpha1,
			Alpha2:    pt.alpha2,
			Strategy1: pt.specs[0].String(),
			Strategy2: pt.specs[1].String(),
			Pool1:     s.AbsoluteOf(1, core.Scenario1).Mean(),
			Pool2:     s.AbsoluteOf(2, core.Scenario1).Mean(),
			Honest:    s.AbsoluteOf(mining.HonestPool, core.Scenario1).Mean(),
			Pool1EIP:  s.AbsoluteOf(1, core.Scenario2).Mean(),
			Pool2EIP:  s.AbsoluteOf(2, core.Scenario2).Mean(),
		}
		if total > 0 {
			row.StaleFraction = stale / total
		}
		return row, nil
	})
	if err != nil {
		return PoolWarsResult{}, err
	}
	return PoolWarsResult{Rows: rows}, nil
}

// Homogeneous returns the Algorithm-1-vs-Algorithm-1 grid rows.
func (r PoolWarsResult) Homogeneous() []PoolWarsRow {
	var out []PoolWarsRow
	for _, row := range r.Rows {
		if row.Strategy1 == row.Strategy2 {
			out = append(out, row)
		}
	}
	return out
}

// Heterogeneous returns the mixed-strategy control rows.
func (r PoolWarsResult) Heterogeneous() []PoolWarsRow {
	var out []PoolWarsRow
	for _, row := range r.Rows {
		if row.Strategy1 != row.Strategy2 {
			out = append(out, row)
		}
	}
	return out
}

// Table renders the sweep.
func (r PoolWarsResult) Table() *table.Table {
	t := table.New(
		"Pool wars — two competing pools (gamma=0.5; revenue per rescaled time unit)",
		"alpha1 x alpha2 (strategies)", "pool1", "pool2", "honest",
		"pool1(EIP100)", "pool2(EIP100)", "stale frac",
	)
	for _, row := range r.Rows {
		label := fmt.Sprintf("%.2f x %.2f (%s/%s)",
			row.Alpha1, row.Alpha2, row.Strategy1, row.Strategy2)
		_ = t.AddNumericRow(label, 4,
			row.Pool1, row.Pool2, row.Honest,
			row.Pool1EIP, row.Pool2EIP, row.StaleFraction)
	}
	return t
}
