package experiments

import (
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// TestCacheCrossSweepReuse is the acceptance test for partial-grid reuse:
// a Fig. 8 point cached by one invocation is served — not recomputed — to
// a best-response sweep that contains the same (alpha, gamma) point,
// because both resolve to the same canonical content address (Fig. 8's
// implicit Algorithm 1 and the search's explicit [algorithm1] candidate
// canonicalize identically).
func TestCacheCrossSweepReuse(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 2000, Seed: 7, Parallelism: 2}
	grid := sweep(fig8AlphaStart, fig8AlphaMax, fig8AlphaStep)
	alphas := []float64{grid[7], grid[11]} // exact Fig. 8 grid values
	gammas := []float64{fig8Gamma}
	specs := []sim.StrategySpec{sim.MustStrategySpec("algorithm1")}

	fig8Want, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	brWant, err := bestResponse(opts, gammas, alphas, specs)
	if err != nil {
		t.Fatal(err)
	}

	cache := resultcache.NewMemory(0)
	copts := opts
	copts.Cache = cache
	fig8Got, err := Fig8(copts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig8Got, fig8Want) {
		t.Fatal("cached Fig8 differs from uncached Fig8")
	}
	after := cache.Stats()
	if want := uint64(len(grid) * opts.Runs); after.Stores != want {
		t.Fatalf("Fig8 stored %d rows, want %d", after.Stores, want)
	}

	brGot, err := bestResponse(copts, gammas, alphas, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(brGot, brWant) {
		t.Error("best-response sweep served from the Fig8 cache differs from recomputation")
	}
	s := cache.Stats()
	if s.Misses != after.Misses || s.Stores != after.Stores {
		t.Errorf("best-response recomputed cached Fig8 points: misses %d -> %d, stores %d -> %d",
			after.Misses, s.Misses, after.Stores, s.Stores)
	}
	if got, want := s.Hits()-after.Hits(), uint64(len(alphas)*len(gammas)*opts.Runs); got != want {
		t.Errorf("best-response took %d cache hits, want %d", got, want)
	}
}

// TestCacheWarmRerunBitIdentical: rerunning a sweep against a warm cache —
// same process or a fresh one over the disk journal — serves every row
// from the cache and reproduces the Series bit for bit.
func TestCacheWarmRerunBitIdentical(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 2000, Seed: 5, Parallelism: 4}
	want, err := PoolWars(opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := uint64(len(want.Rows) * opts.Runs)

	dir := t.TempDir()
	c1, err := resultcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	copts := opts
	copts.Cache = c1
	got, err := PoolWars(copts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cold cached PoolWars differs from uncached")
	}
	if s := c1.Stats(); s.Misses != rows || s.Stores != rows {
		t.Fatalf("cold run stats = %+v, want %d misses and stores", s, rows)
	}

	warm, err := PoolWars(copts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Error("warm rerun differs from cold run")
	}
	if s := c1.Stats(); s.MemoryHits != rows || s.Misses != rows {
		t.Errorf("warm rerun stats = %+v, want %d memory hits and no new misses", s, rows)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh invocation over the same cache directory serves the whole
	// sweep from disk.
	c2, err := resultcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	copts.Cache = c2
	reloaded, err := PoolWars(copts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reloaded, want) {
		t.Error("disk-warm rerun differs from cold run")
	}
	if s := c2.Stats(); s.DiskHits != rows || s.Misses != 0 {
		t.Errorf("disk-warm stats = %+v, want %d disk hits and 0 misses", s, rows)
	}
}

// TestCacheDedupeWithinSweep: jobs resolving to the same content address
// within one sweep are simulated once — duplicates never even consult the
// cache; the representative's rows are scattered to them.
func TestCacheDedupeWithinSweep(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 1000, Seed: 3, Parallelism: 2}
	job := simJob{alpha: 0.3, build: func(*mining.Population) sim.Config {
		return sim.Config{Gamma: 0.5}
	}}

	single, err := runSimGrid(opts, []simJob{job})
	if err != nil {
		t.Fatal(err)
	}

	cache := resultcache.NewMemory(0)
	opts.Cache = cache
	series, err := runSimGrid(opts, []simJob{job, job, job})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(series); j++ {
		if !reflect.DeepEqual(series[j], series[0]) {
			t.Fatalf("duplicate job %d differs from its representative", j)
		}
	}
	if !reflect.DeepEqual(series[0].Runs, single[0].Runs) {
		t.Error("deduplicated sweep differs from a single-job sweep")
	}
	s := cache.Stats()
	if s.Misses != uint64(opts.Runs) || s.Stores != uint64(opts.Runs) || s.Hits() != 0 {
		t.Errorf("stats = %+v: want exactly one compute per unique row (%d misses, %d stores, 0 hits)",
			s, opts.Runs, opts.Runs)
	}
}

// TestPrecisionCacheReuse: the adaptive precision study consults the cache
// per run; a repeat of the same study against a warm cache computes
// nothing new and reproduces the result exactly.
func TestPrecisionCacheReuse(t *testing.T) {
	opts := Options{Blocks: 2000, Seed: 11}
	pc := PrecisionConfig{
		Alphas:       []float64{0.25},
		TargetRadius: 0.01,
		MaxRuns:      8,
		BatchRuns:    4,
	}
	want, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}

	cache := resultcache.NewMemory(0)
	copts := opts
	copts.Cache = cache
	got, err := Precision(copts, pc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached precision study differs from uncached")
	}
	misses := cache.Stats().Misses
	again, err := Precision(copts, pc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("warm precision study differs from cold study")
	}
	if s := cache.Stats(); s.Misses != misses {
		t.Errorf("warm precision study computed %d new rows, want 0", s.Misses-misses)
	}
}
