package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func testJobs() []simJob {
	alphas := []float64{0.2, 0.35}
	jobs := make([]simJob, len(alphas))
	for i, alpha := range alphas {
		jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: 0.5}
		}}
	}
	return jobs
}

func journalLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("journal %s does not end with a newline", path)
	}
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

// TestCheckpointResumeBitIdentical is the golden resume test: a sweep
// journaled to a checkpoint, truncated to a prefix of its rows (as an
// interrupt would leave it), then resumed, produces output bit-identical to
// an uninterrupted sweep — and the resumed journal converges to the same
// complete row set.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	opts := Options{Runs: 3, Blocks: 2000, Seed: 11, Parallelism: 4}
	jobs := testJobs()
	want, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ck
	got, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checkpointed sweep differs from plain sweep")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// 1 version + 1 header + 2 jobs * 3 runs rows.
	lines := journalLines(t, path)
	const wantLines = 2 + 2*3
	if len(lines) != wantLines {
		t.Fatalf("journal has %d lines, want %d", len(lines), wantLines)
	}

	// Interrupt mid-sweep: keep the version line, the header, and the
	// first two completed rows.
	trunc := filepath.Join(dir, "interrupted.ckpt")
	partial := strings.Join(lines[:4], "\n") + "\n"
	if err := os.WriteFile(trunc, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(trunc)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	opts.Checkpoint = ck2
	resumed, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, want) {
		t.Error("resumed sweep differs from uninterrupted sweep")
	}
	if got := len(journalLines(t, trunc)); got != wantLines {
		t.Errorf("resumed journal has %d lines, want %d", got, wantLines)
	}

	// A sweep resumed from a complete journal recomputes nothing and
	// appends nothing.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	opts.Checkpoint = ck3
	replayed, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, want) {
		t.Error("fully journaled sweep differs from plain sweep")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("replaying a complete journal modified the file")
	}
}

// TestCheckpointCancelThenResume interrupts a real sweep via context
// cancellation, then resumes it from the journal the interrupt left behind;
// the resumed sweep must match an uninterrupted one bit for bit.
func TestCheckpointCancelThenResume(t *testing.T) {
	opts := Options{Runs: 4, Blocks: 20000, Seed: 3, Parallelism: 2}
	jobs := testJobs()
	want, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	opts.Ctx = ctx
	opts.Checkpoint = ck
	if _, err := runSimGrid(opts, jobs); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted sweep err = %v, want nil or context.DeadlineExceeded", err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("journal left by a graceful cancellation must reopen cleanly: %v", err)
	}
	defer ck2.Close()
	opts.Ctx = nil
	opts.Checkpoint = ck2
	resumed, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, want) {
		t.Error("sweep resumed after cancellation differs from uninterrupted sweep")
	}
}

// TestCheckpointThroughDriver pins the Options plumbing end to end: a full
// driver run with a checkpoint is bit-identical to one without, and a
// second run against the populated journal reproduces it again.
func TestCheckpointThroughDriver(t *testing.T) {
	base := Options{Runs: 2, Blocks: 2000, Seed: 5, Parallelism: 4}
	want, err := Fig8(base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fig8.ckpt")
	for round := 0; round < 2; round++ {
		ck, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Checkpoint = ck
		got, err := Fig8(opts)
		if cerr := ck.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round %d: checkpointed Fig8 differs from plain Fig8", round)
		}
	}
}

// TestCheckpointSeedMismatchRejected: a journaled row whose seed does not
// match the seed the sweep derives for that coordinate poisons the resume
// with ErrJournal (it indicates hash collision or tampering), wrapped in a
// JobError naming the coordinate.
func TestCheckpointSeedMismatchRejected(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 1000, Seed: 7, Parallelism: 1}
	jobs := testJobs()
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ck
	if _, err := runSimGrid(opts, jobs); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Tamper with the last row's seed.
	lines := journalLines(t, path)
	var line journalLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &line); err != nil || line.Row == nil {
		t.Fatalf("last journal line is not a row: %v", err)
	}
	line.Row.Seed++
	tampered, err := json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	lines[len(lines)-1] = string(tampered)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	opts.Checkpoint = ck2
	_, err = runSimGrid(opts, jobs)
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("err = %v, want ErrJournal", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Point != 1 || je.Run != 1 {
		t.Errorf("JobError names (%d,%d), want the tampered row (1,1)", je.Point, je.Run)
	}
}

// TestJobErrorCoordinates: a failing run surfaces with its grid
// coordinates and exact seed, reproducible as a single sim.Run.
func TestJobErrorCoordinates(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 1000, Seed: 9, Parallelism: 1}
	jobs := []simJob{
		{alpha: 0.2, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: 0.5}
		}},
		{alpha: 0.3, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: 2} // invalid: gamma must be in [0,1]
		}},
	}
	_, err := runSimGrid(opts, jobs)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if !errors.Is(err, sim.ErrBadConfig) {
		t.Errorf("error chain %v lacks sim.ErrBadConfig", err)
	}
	if je.Point != 1 || je.Run != 0 || je.Alpha != 0.3 {
		t.Errorf("JobError = point %d alpha %g run %d, want point 1 alpha 0.3 run 0",
			je.Point, je.Alpha, je.Run)
	}
	pop, popErr := mining.TwoAgent(0.3)
	if popErr != nil {
		t.Fatal(popErr)
	}
	base := jobkey.SeedBase(opts.Seed, sim.Config{Population: pop, Gamma: 2})
	if want := sim.DeriveSeed(base, 0); je.Seed != want {
		t.Errorf("JobError.Seed = %d, want %d", je.Seed, want)
	}
	for _, part := range []string{"grid point 1", "alpha=0.3", "run 0"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q does not name %q", err, part)
		}
	}
}

// TestSweepHashSensitivity: the canonical hash separates sweeps whose rows
// could differ and unifies repeats of the same sweep. Per-field identity
// sensitivity lives in internal/jobkey; this pins the sweep-level layer the
// journal adds on top.
func TestSweepHashSensitivity(t *testing.T) {
	opts := Options{Runs: 3, Blocks: 2000, Seed: 11}
	gammaJobs := func(gamma float64, anti bool) []simJob {
		alphas := []float64{0.2, 0.35}
		jobs := make([]simJob, len(alphas))
		for i, alpha := range alphas {
			jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
				return sim.Config{Gamma: gamma, Antithetic: anti}
			}}
		}
		return jobs
	}
	hashOf := func(o Options, js []simJob) string {
		t.Helper()
		_, keys, seedBases, err := resolveJobs(o, js)
		if err != nil {
			t.Fatal(err)
		}
		return sweepHash(o, keys, seedBases)
	}

	base := hashOf(opts, gammaJobs(0.5, false))
	if again := hashOf(opts, gammaJobs(0.5, false)); again != base {
		t.Error("identical sweeps hash differently")
	}

	seed := opts
	seed.Seed = 12
	if hashOf(seed, gammaJobs(0.5, false)) == base {
		t.Error("seed: hash unchanged")
	}
	blocks := opts
	blocks.Blocks = 4000
	if hashOf(blocks, gammaJobs(0.5, false)) == base {
		t.Error("blocks: hash unchanged")
	}
	runs := opts
	runs.Runs = 4
	if hashOf(runs, gammaJobs(0.5, false)) == base {
		t.Error("runs: hash unchanged")
	}
	if hashOf(opts, gammaJobs(0.6, false)) == base {
		t.Error("gamma: hash unchanged")
	}

	// Engine-internal knobs that never change results must not change the
	// hash either, or every resume with different parallelism would
	// recompute from scratch.
	par := opts
	par.Parallelism = 7
	par.Audit = sim.AuditConfig{Enabled: true}
	if hashOf(par, gammaJobs(0.5, false)) != base {
		t.Error("parallelism/audit changed the sweep hash")
	}

	// The statistical modes change the draws a run consumes, so each must
	// separate the sweep.
	ff := opts
	ff.FastForward = true
	ffHash := hashOf(ff, gammaJobs(0.5, false))
	if ffHash == base {
		t.Error("fast-forward mode did not change the sweep hash")
	}
	antiHash := hashOf(opts, gammaJobs(0.5, true))
	if antiHash == base || antiHash == ffHash {
		t.Error("antithetic mode did not get its own sweep hash")
	}
}

// TestJournalDecodeStrict: malformed journals are rejected with ErrJournal
// — never silently accepted.
func TestJournalDecodeStrict(t *testing.T) {
	hash := strings.Repeat("ab", 32)
	header := `{"sweep":{"hash":"` + hash + `","jobs":2,"runs":3,"blocks":1000,"seed":7}}`
	row := `{"row":{"job":0,"run":0,"seed":1,"result":{}}}`
	version := `{"version":1}`

	tests := []struct {
		name    string
		journal string
	}{
		{"truncated final line", version + "\n" + header},
		{"unsupported version", `{"version":2}` + "\n"},
		{"garbage first line", "not json\n"},
		{"empty line", version + "\n\n"},
		{"unknown field", version + "\n" + `{"bogus":1}` + "\n"},
		{"neither sweep nor row", version + "\n" + `{}` + "\n"},
		{"row before header", version + "\n" + row + "\n"},
		{"malformed hash", version + "\n" + `{"sweep":{"hash":"xyz","jobs":1,"runs":1,"blocks":1,"seed":0}}` + "\n"},
		{"non-positive dimensions", version + "\n" + `{"sweep":{"hash":"` + hash + `","jobs":0,"runs":3,"blocks":1000,"seed":7}}` + "\n"},
		{"row out of range", version + "\n" + header + "\n" + `{"row":{"job":2,"run":0,"seed":1,"result":{}}}` + "\n"},
		{"duplicate row", version + "\n" + header + "\n" + row + "\n" + row + "\n"},
		{"re-declared header disagrees", version + "\n" + header + "\n" + `{"sweep":{"hash":"` + hash + `","jobs":2,"runs":4,"blocks":1000,"seed":7}}` + "\n"},
		{"trailing garbage on line", version + "\n" + header + ` extra` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := decodeJournal([]byte(tt.journal)); !errors.Is(err, ErrJournal) {
				t.Errorf("err = %v, want ErrJournal", err)
			}
		})
	}

	// The valid shapes those cases are mutations of must decode.
	sweeps, current, err := decodeJournal([]byte(version + "\n" + header + "\n" + row + "\n"))
	if err != nil {
		t.Fatalf("valid journal rejected: %v", err)
	}
	if current != hash || sweeps[hash] == nil || len(sweeps[hash].rows) != 1 {
		t.Error("valid journal decoded to the wrong state")
	}
	if _, err := OpenCheckpoint(filepath.Join(t.TempDir(), "missing", "nope.ckpt")); err == nil {
		t.Error("unreachable path accepted")
	}
}

// TestResultJSONRoundTrip: the Result encoding round-trips exactly (after
// RestoreAliases), which is what makes journaled rows interchangeable with
// freshly computed ones. A timed multi-pool run populates every field.
func TestResultJSONRoundTrip(t *testing.T) {
	pop, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name string
		cfg  sim.Config
	}{
		{"timeless two-agent", sim.Config{Gamma: 0.5, Blocks: 2000, Seed: 7}},
		{"timed multi-pool", sim.Config{
			Population: pop,
			Gamma:      0.3,
			Blocks:     3000,
			Seed:       9,
			Time:       sim.TimeConfig{Enabled: true},
			Strategies: []sim.Strategy{sim.Algorithm1{}, sim.Stubborn{Lead: true}},
		}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tt.cfg
			if cfg.Population == nil {
				p, err := mining.TwoAgent(0.35)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Population = p
			}
			want, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			var got sim.Result
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			got.RestoreAliases()
			if !reflect.DeepEqual(got, want) {
				t.Error("Result does not round-trip through JSON")
			}
		})
	}
}

// FuzzJournalDecode: the strict decoder never panics and never accepts a
// journal with a truncated tail, no matter the input (satellite: corrupted
// checkpoint files are rejected, never silently resumed).
func FuzzJournalDecode(f *testing.F) {
	hash := strings.Repeat("ab", 32)
	header := `{"sweep":{"hash":"` + hash + `","jobs":2,"runs":3,"blocks":1000,"seed":7}}`
	row := `{"row":{"job":0,"run":0,"seed":1,"result":{"Alpha":0.35,"Blocks":1000}}}`
	valid := `{"version":1}` + "\n" + header + "\n" + row + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)-1]))
	f.Add([]byte(`{"version":1}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"version":1}` + "\n" + header + "\n" + row + "\n" + row + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sweeps, _, err := decodeJournal(data)
		if err != nil {
			if !errors.Is(err, ErrJournal) {
				t.Errorf("error %v does not wrap ErrJournal", err)
			}
			return
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			t.Error("journal without a final newline accepted")
		}
		for _, s := range sweeps {
			for key := range s.rows {
				if key.job < 0 || key.job >= s.header.Jobs || key.run < 0 || key.run >= s.header.Runs {
					t.Errorf("accepted out-of-range row %v in %dx%d sweep", key, s.header.Jobs, s.header.Runs)
				}
			}
		}
	})
}
