package experiments

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// Tournament is the N-pool counterpart of the strategy comparison: instead
// of measuring each strategy alone against the honest crowd, it plays every
// pair of specs as two competing pools on the same chain — the regime
// Grunspan & Pérez-Marco show makes Ethereum's strategy space
// combinatorially richer than Bitcoin's — and reports a per-pool
// relative-revenue matrix over an alpha grid.

// tournamentAlphas is the per-pool hash power of each match; both pools
// receive the same alpha so the matrix is power-symmetric and cells are
// comparable across opponents.
var tournamentAlphas = []float64{0.15, 0.25, 0.33}

// defaultTournamentSpecs is the field entered when the caller names no
// specs.
func defaultTournamentSpecs() []sim.StrategySpec {
	return []sim.StrategySpec{
		sim.MustStrategySpec("honest"),
		sim.MustStrategySpec("algorithm1"),
		sim.MustStrategySpec("stubborn:lead=1"),
		sim.MustStrategySpec("stubborn:trail=1"),
	}
}

// TournamentMatch is one played pairing at one alpha point.
type TournamentMatch struct {
	Alpha          float64
	SpecA, SpecB   string
	ShareA, ShareB float64 // mean relative revenue share across runs
	StaleFraction  float64 // blocks lost to the rivalry
}

// TournamentResult is the round-robin outcome: every match, plus the
// alpha-averaged relative-revenue matrix.
type TournamentResult struct {
	// Names lists the entrant specs in matrix order.
	Names []string

	// Alphas is the per-pool hash-power grid the matches were played at.
	Alphas []float64

	// Matches holds every played (pair × alpha) cell.
	Matches []TournamentMatch

	// Share[i][j] is the mean relative revenue share entrant i earned
	// racing entrant j as two pools of equal power, averaged over the
	// alpha grid. The diagonal is self-play (mirror matches).
	Share [][]float64
}

// Tournament plays a round-robin (including self-play) among the given
// strategy specs: each pair races as two competing pools of equal hash
// power at every alpha of the grid, at gamma = 0.5, with the full
// (match × run) grid scheduled on the experiment engine. With no specs it
// plays the default field (honest, algorithm1, stubborn:lead=1,
// stubborn:trail=1).
func Tournament(opts Options, specs ...sim.StrategySpec) (TournamentResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return TournamentResult{}, err
	}
	if len(specs) == 0 {
		specs = defaultTournamentSpecs()
	}
	if len(specs) < 2 {
		return TournamentResult{}, fmt.Errorf("%w: a tournament needs at least 2 strategy specs", ErrBadOptions)
	}

	out := TournamentResult{Alphas: tournamentAlphas}
	for _, spec := range specs {
		out.Names = append(out.Names, spec.String())
	}

	// One match per unordered pair (self-play included) per alpha.
	type pairing struct{ a, b int }
	var pairs []pairing
	for i := range specs {
		for j := i; j < len(specs); j++ {
			pairs = append(pairs, pairing{i, j})
		}
	}
	jobs := make([]simJob, 0, len(pairs)*len(tournamentAlphas))
	for _, pair := range pairs {
		for _, alpha := range tournamentAlphas {
			pop, err := mining.MultiAgent(alpha, alpha)
			if err != nil {
				return TournamentResult{}, err
			}
			jobs = append(jobs, simJob{
				alpha: alpha,
				pop:   pop,
				specs: []sim.StrategySpec{specs[pair.a], specs[pair.b]},
				build: func(*mining.Population) sim.Config {
					return sim.Config{Gamma: fig8Gamma}
				},
			})
		}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return TournamentResult{}, err
	}

	share := make([][]float64, len(specs))
	for i := range share {
		share[i] = make([]float64, len(specs))
	}
	for pi, pair := range pairs {
		for ai, alpha := range tournamentAlphas {
			s := series[pi*len(tournamentAlphas)+ai]
			shareA := s.Mean(func(r *sim.Result) float64 { return r.ShareOf(1) }).Mean()
			shareB := s.Mean(func(r *sim.Result) float64 { return r.ShareOf(2) }).Mean()
			var stale, total float64
			for ri := range s.Runs {
				r := &s.Runs[ri]
				stale += float64(r.StaleCount)
				total += float64(r.RegularCount + r.UncleCount + r.StaleCount)
			}
			match := TournamentMatch{
				Alpha:  alpha,
				SpecA:  out.Names[pair.a],
				SpecB:  out.Names[pair.b],
				ShareA: shareA,
				ShareB: shareB,
			}
			if total > 0 {
				match.StaleFraction = stale / total
			}
			out.Matches = append(out.Matches, match)
			if pair.a == pair.b {
				// Self-play: both seats run the same spec, so average
				// the mirror seats into the diagonal.
				share[pair.a][pair.a] += (shareA + shareB) / 2
			} else {
				share[pair.a][pair.b] += shareA
				share[pair.b][pair.a] += shareB
			}
		}
	}
	for i := range share {
		for j := range share[i] {
			share[i][j] /= float64(len(tournamentAlphas))
		}
	}
	out.Share = share
	return out, nil
}

// Score returns entrant i's round-robin score: its mean relative revenue
// share across all opponents (self-play included).
func (r TournamentResult) Score(i int) float64 {
	var total float64
	for _, s := range r.Share[i] {
		total += s
	}
	return total / float64(len(r.Share[i]))
}

// Winner returns the name of the entrant with the highest score.
func (r TournamentResult) Winner() string {
	best := 0
	for i := range r.Names {
		if r.Score(i) > r.Score(best) {
			best = i
		}
	}
	return r.Names[best]
}

// Table renders the alpha-averaged relative-revenue matrix with round-robin
// scores.
func (r TournamentResult) Table() *table.Table {
	headers := append([]string{"strategy \\ vs"}, r.Names...)
	headers = append(headers, "score")
	t := table.New(
		fmt.Sprintf("Tournament — relative revenue vs each rival (two equal pools, gamma=%.1f, alphas %v)",
			fig8Gamma, r.Alphas),
		headers...,
	)
	for i, name := range r.Names {
		values := append(append([]float64(nil), r.Share[i]...), r.Score(i))
		_ = t.AddNumericRow(name, 4, values...)
	}
	return t
}

// MatchTable renders every played match.
func (r TournamentResult) MatchTable() *table.Table {
	t := table.New(
		"Tournament matches — per-pool relative revenue share",
		"alpha (pair)", "share A", "share B", "stale frac",
	)
	for _, m := range r.Matches {
		label := fmt.Sprintf("%.2f (%s vs %s)", m.Alpha, m.SpecA, m.SpecB)
		_ = t.AddNumericRow(label, 4, m.ShareA, m.ShareB, m.StaleFraction)
	}
	return t
}
