package experiments

import (
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// BestResponse searches the parametric stubborn strategy space for the
// best response to an honest network at every (alpha, gamma) point — the
// paper's "design of new mining strategies" future work made concrete.
// Ritz & Zugenmaier show uncle rewards shift which stubborn variant is
// optimal; this driver measures that directly on the simulator, under the
// same flat-Ku schedule and alpha sweep as Fig. 8, so its algorithm1 column
// reproduces the figure's profitability threshold and its arg-max column
// extends it to the whole family.

// bestResponseGammas is the network-capability grid of the search.
var bestResponseGammas = []float64{0, 0.5, 1}

// stubbornSearchSpace enumerates the searched specs: Algorithm 1 (the
// all-axes-off point, under its own name so results read naturally) plus
// every stubborn combination of lead in {0,1}, fork in {0,1}, trail in
// {0,1,2} with at least one axis on.
func stubbornSearchSpace() []sim.StrategySpec {
	specs := []sim.StrategySpec{sim.MustStrategySpec("algorithm1")}
	for lead := 0; lead <= 1; lead++ {
		for fork := 0; fork <= 1; fork++ {
			for trail := 0; trail <= 2; trail++ {
				if lead == 0 && fork == 0 && trail == 0 {
					continue // identical to algorithm1
				}
				params := make(map[string]int)
				if lead != 0 {
					params["lead"] = lead
				}
				if fork != 0 {
					params["fork"] = fork
				}
				if trail != 0 {
					params["trail"] = trail
				}
				specs = append(specs, sim.StrategySpec{Name: "stubborn", Params: params})
			}
		}
	}
	return specs
}

// BestResponseRow is one (gamma, alpha) point of the search.
type BestResponseRow struct {
	Gamma, Alpha float64

	// Best names the arg-max spec; BestRevenue is its simulated
	// scenario-1 absolute revenue (honest mining yields exactly Alpha).
	Best        string
	BestRevenue float64
	BestStdErr  float64

	// Algorithm1Revenue is the paper strategy's revenue at the same
	// point, on the same event streams.
	Algorithm1Revenue float64
	Algorithm1StdErr  float64
}

// BeatsHonest reports whether the best response is profitable (the
// dominance region of deviating at all).
func (r BestResponseRow) BeatsHonest() bool { return r.BestRevenue > r.Alpha }

// BestResponseResult is the grid search outcome.
type BestResponseResult struct {
	// Specs lists the searched strategy space.
	Specs []string

	// Rows holds one entry per (gamma, alpha) point, gamma-major in grid
	// order.
	Rows []BestResponseRow
}

// BestResponse runs the grid search: every candidate spec, simulated as a
// lone pool at every (alpha, gamma) point of the Fig. 8 sweep × the gamma
// grid, under Fig. 8's flat Ku = 4/8 schedule, with the whole
// (point × candidate × run) grid scheduled on the experiment engine.
func BestResponse(opts Options) (BestResponseResult, error) {
	return bestResponse(opts, bestResponseGammas,
		sweep(fig8AlphaStart, fig8AlphaMax, fig8AlphaStep), stubbornSearchSpace())
}

// bestResponse is the grid-parameterized core of BestResponse; tests use it
// with reduced grids so the search's engine path stays affordable under the
// race detector.
func bestResponse(opts Options, gammas, alphas []float64, specs []sim.StrategySpec) (BestResponseResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return BestResponseResult{}, err
	}
	schedule, err := rewards.Constant(fig8Ku, rewards.NoDepthLimit)
	if err != nil {
		return BestResponseResult{}, err
	}

	jobs := make([]simJob, 0, len(gammas)*len(alphas)*len(specs))
	for _, gamma := range gammas {
		gamma := gamma
		for _, alpha := range alphas {
			pop, err := mining.TwoAgent(alpha)
			if err != nil {
				return BestResponseResult{}, err
			}
			for _, spec := range specs {
				// Every candidate at one (gamma, alpha) point shares the
				// point's environment, hence (via jobkey.SeedBase) its
				// stream family: the arg-max is a paired comparison over
				// identical event streams.
				jobs = append(jobs, simJob{
					alpha: alpha,
					pop:   pop,
					specs: []sim.StrategySpec{spec},
					build: func(*mining.Population) sim.Config {
						return sim.Config{Gamma: gamma, Schedule: schedule}
					},
				})
			}
		}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return BestResponseResult{}, err
	}

	out := BestResponseResult{}
	for _, spec := range specs {
		out.Specs = append(out.Specs, spec.String())
	}
	for gi, gamma := range gammas {
		for ai, alpha := range alphas {
			base := (gi*len(alphas) + ai) * len(specs)
			row := BestResponseRow{Gamma: gamma, Alpha: alpha, Best: out.Specs[0]}
			for si := range specs {
				acc := series[base+si].PoolAbsolute(core.Scenario1)
				revenue := acc.Mean()
				if si == 0 {
					// specs[0] is algorithm1 by construction.
					row.Algorithm1Revenue = revenue
					row.Algorithm1StdErr = acc.StdErr()
				}
				if si == 0 || revenue > row.BestRevenue {
					row.Best = out.Specs[si]
					row.BestRevenue = revenue
					row.BestStdErr = acc.StdErr()
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Threshold returns the smallest swept alpha at which Algorithm 1's
// simulated revenue meets or exceeds honest mining's alpha at the given
// gamma — the simulated counterpart of the Fig. 8 crossing (0.163 at
// gamma = 0.5, up to grid resolution and run noise) — or 0 if none.
func (r BestResponseResult) Threshold(gamma float64) float64 {
	for _, row := range r.Rows {
		if row.Gamma == gamma && row.Algorithm1Revenue >= row.Alpha {
			return row.Alpha
		}
	}
	return 0
}

// BestThreshold returns the smallest swept alpha at which the best response
// is profitable at the given gamma, or 0 if none. Where it undercuts
// Threshold, some stubborn variant opens the profitable region earlier than
// Algorithm 1.
func (r BestResponseResult) BestThreshold(gamma float64) float64 {
	for _, row := range r.Rows {
		if row.Gamma == gamma && row.BestRevenue >= row.Alpha {
			return row.Alpha
		}
	}
	return 0
}

// Dominance returns the rows where a stubborn variant strictly beats
// Algorithm 1 by more than twice the combined standard error — the region
// where deviating from the paper's strategy pays.
func (r BestResponseResult) Dominance() []BestResponseRow {
	var out []BestResponseRow
	for _, row := range r.Rows {
		margin := 2 * (row.BestStdErr + row.Algorithm1StdErr)
		if row.Best != "algorithm1" && row.BestRevenue > row.Algorithm1Revenue+margin {
			out = append(out, row)
		}
	}
	return out
}

// At returns the row of the given grid point, or false when the point was
// not swept. Alpha is matched with a tolerance absorbing the grid's float
// representation error.
func (r BestResponseResult) At(gamma, alpha float64) (BestResponseRow, bool) {
	for _, row := range r.Rows {
		if row.Gamma == gamma && math.Abs(row.Alpha-alpha) < 1e-9 {
			return row, true
		}
	}
	return BestResponseRow{}, false
}

// Table renders the search: one row per (gamma, alpha) point.
func (r BestResponseResult) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("Best response — arg-max over the stubborn family (Ku=%g, %d candidates, scenario 1)",
			fig8Ku, len(r.Specs)),
		"gamma/alpha", "algorithm1", "best", "best spec", "profitable",
	)
	for _, row := range r.Rows {
		label := fmt.Sprintf("%.2f / %s", row.Gamma, formatAlpha(row.Alpha))
		profitable := "-"
		if row.BeatsHonest() {
			profitable = "yes"
		}
		_ = t.AddRow(label,
			fmt.Sprintf("%.4f", row.Algorithm1Revenue),
			fmt.Sprintf("%.4f", row.BestRevenue),
			row.Best, profitable)
	}
	return t
}
