package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/difficulty"
)

func TestFig8ShapeAndAnchors(t *testing.T) {
	result, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 18 {
		t.Fatalf("got %d alpha points, want 18", len(result.Rows))
	}
	// The analytic crossing sits between 0.15 and 0.175 (paper: 0.163).
	threshold := result.Threshold()
	if threshold < 0.15 || threshold > 0.18 {
		t.Errorf("threshold from sweep = %v, want ~0.163", threshold)
	}
	for _, row := range result.Rows {
		// Simulation tracks analysis within a loose quick-mode bound.
		if math.Abs(row.PoolSim-row.PoolAnalytic) > 0.03 {
			t.Errorf("alpha=%v: sim pool %.4f far from analytic %.4f",
				row.Alpha, row.PoolSim, row.PoolAnalytic)
		}
		if math.Abs(row.HonestSim-row.HonestAnalytic) > 0.03 {
			t.Errorf("alpha=%v: sim honest %.4f far from analytic %.4f",
				row.Alpha, row.HonestSim, row.HonestAnalytic)
		}
	}
	// Honest revenue decreases with alpha; pool revenue increases.
	first, last := result.Rows[0], result.Rows[len(result.Rows)-1]
	if last.PoolAnalytic <= first.PoolAnalytic {
		t.Error("pool revenue should grow with alpha")
	}
	if last.HonestAnalytic >= first.HonestAnalytic {
		t.Error("honest revenue should shrink with alpha")
	}
	if !strings.Contains(result.Table().String(), "Fig. 8") {
		t.Error("table missing title")
	}
}

func TestFig9ShapeAndAnchors(t *testing.T) {
	result, err := Fig9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Schedules) != 4 {
		t.Fatalf("got %d schedules, want 4", len(result.Schedules))
	}
	// Sec. V-B: total revenue soars to ~135% at Ku=7/8, alpha=0.45.
	if got := result.MaxTotal(); math.Abs(got-1.35) > 0.03 {
		t.Errorf("MaxTotal = %v, want ~1.35", got)
	}
	last := result.Rows[len(result.Rows)-1]
	// Higher uncle rewards give higher revenue: columns 0..2 are fixed
	// Ku = 2/8, 4/8, 7/8.
	if !(last.Pool[0] < last.Pool[1] && last.Pool[1] < last.Pool[2]) {
		t.Errorf("pool revenue not increasing in Ku: %v", last.Pool)
	}
	// Sec. V-B: Ku(.) matches flat 7/8 for the pool's revenue (its
	// uncles are always distance 1 and Ku(1) = 7/8).
	if math.Abs(last.Pool[3]-last.Pool[2]) > 0.01 {
		t.Errorf("Ku(.) pool revenue %v should track Ku=7/8's %v", last.Pool[3], last.Pool[2])
	}
	// Sec. V-B: for honest miners at large alpha, Ku(.) sits near the
	// 4/8 curve (average distances grow); it must be clearly below 7/8.
	if !(last.Honest[3] < last.Honest[2]) {
		t.Errorf("Ku(.) honest revenue %v should fall below Ku=7/8's %v",
			last.Honest[3], last.Honest[2])
	}
	if !strings.Contains(result.Table().String(), "Ku=7/8 total") {
		t.Error("table missing series header")
	}
}

func TestFig10ShapeAndAnchors(t *testing.T) {
	result, err := Fig10(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 21 {
		t.Fatalf("got %d gamma points, want 21", len(result.Rows))
	}
	// Paper: the scenario-2 curve crosses Bitcoin's near gamma = 0.39.
	crossover := result.Crossover()
	if math.IsNaN(crossover) || crossover < 0.3 || crossover > 0.5 {
		t.Errorf("crossover = %v, want ~0.39", crossover)
	}
	for _, row := range result.Rows {
		if !math.IsNaN(row.Scenario1) && row.Scenario1 >= row.Bitcoin && row.Gamma < 1 {
			t.Errorf("gamma=%v: scenario-1 threshold %.3f not below Bitcoin %.3f",
				row.Gamma, row.Scenario1, row.Bitcoin)
		}
	}
	// Anchors at gamma=0.5 from the paper.
	mid := result.Rows[10]
	if math.Abs(mid.Gamma-0.5) > 1e-9 {
		t.Fatalf("row 10 gamma = %v, want 0.5", mid.Gamma)
	}
	if math.Abs(mid.Bitcoin-0.25) > 1e-9 {
		t.Errorf("Bitcoin threshold at 0.5 = %v, want 0.25", mid.Bitcoin)
	}
	if math.Abs(mid.Scenario1-0.054) > 0.005 {
		t.Errorf("scenario-1 threshold at 0.5 = %v, want ~0.054", mid.Scenario1)
	}
	if math.Abs(mid.Scenario2-0.270) > 0.005 {
		t.Errorf("scenario-2 threshold at 0.5 = %v, want ~0.270", mid.Scenario2)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	result, err := Table2(Options{Runs: 2, Blocks: 100000})
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64][]float64{
		0.30: {0.527, 0.295, 0.111, 0.043, 0.017, 0.007},
		0.45: {0.284, 0.249, 0.171, 0.125, 0.096, 0.075},
	}
	wantMean := map[float64]float64{0.30: 1.75, 0.45: 2.72}
	if len(result.Columns) != 2 {
		t.Fatalf("got %d columns, want 2", len(result.Columns))
	}
	for _, col := range result.Columns {
		paper := want[col.Alpha]
		for d := 1; d <= 6; d++ {
			if math.Abs(col.Analytic.P[d-1]-paper[d-1]) > 0.005 {
				t.Errorf("alpha=%v d=%d: analytic %.3f, paper %.3f",
					col.Alpha, d, col.Analytic.P[d-1], paper[d-1])
			}
		}
		if math.Abs(col.Analytic.Mean()-wantMean[col.Alpha]) > 0.02 {
			t.Errorf("alpha=%v: analytic expectation %.3f, paper %.2f",
				col.Alpha, col.Analytic.Mean(), wantMean[col.Alpha])
		}
		if got := col.Sim.TotalVariation(col.Analytic); got > 0.03 {
			t.Errorf("alpha=%v: sim/analytic total variation %.3f too large", col.Alpha, got)
		}
	}
	if !strings.Contains(result.Table().String(), "Expectation") {
		t.Error("table missing expectation row")
	}
}

func TestSecVIAnchors(t *testing.T) {
	result, err := SecVI(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(result.Rows))
	}
	anchors := map[core.Scenario][2]float64{
		core.Scenario1: {0.054, 0.163},
		core.Scenario2: {0.270, 0.356},
	}
	for _, row := range result.Rows {
		want := anchors[row.Scenario]
		if math.Abs(row.Ethereum-want[0]) > 0.005 {
			t.Errorf("%v: Ethereum threshold %.3f, paper %.3f", row.Scenario, row.Ethereum, want[0])
		}
		if math.Abs(row.Redesigned-want[1]) > 0.005 {
			t.Errorf("%v: redesigned threshold %.3f, paper %.3f", row.Scenario, row.Redesigned, want[1])
		}
	}
}

func TestStaticTables(t *testing.T) {
	if got := Table1().String(); !strings.Contains(got, "Uncle Reward") {
		t.Error("Table I missing uncle reward row")
	}
	if got := Fig6().String(); !strings.Contains(got, "Ethermine") || !strings.Contains(got, "26.34%") {
		t.Error("Fig. 6 missing Ethermine share")
	}
}

func TestFig7Dump(t *testing.T) {
	tab, err := Fig7(0.3, 0.5, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, state := range []string{"(0,0)", "(1,1)", "(4,2)"} {
		if !strings.Contains(out, state) {
			t.Errorf("Fig. 7 dump missing state %s:\n%s", state, out)
		}
	}
	if _, err := Fig7(0.3, 0.5, 2, Options{}); err == nil {
		t.Error("maxLead=2 should fail")
	}
	if _, err := Fig7(0.9, 0.5, 6, Options{}); err == nil {
		t.Error("alpha=0.9 should fail")
	}
}

// TestDiffAblation is the engine-vs-oracle agreement test: the
// engine-integrated controller's steady-state reward rate must match the
// closed-form difficulty.PredictedRewardRate for both adjusting rules, and
// each rule must hold its counted rate at the target.
func TestDiffAblation(t *testing.T) {
	result, err := DiffAblation(Options{Runs: 4, Blocks: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(result.Rows))
	}
	bitcoin, eip := result.Rows[0], result.Rows[1]
	if bitcoin.Rule != difficulty.BitcoinStyle || eip.Rule != difficulty.EIP100 {
		t.Fatalf("row order = %v, %v", bitcoin.Rule, eip.Rule)
	}
	// Each rule pins its own counted rate at the target.
	if math.Abs(bitcoin.RegularRate-1) > 0.05 {
		t.Errorf("bitcoin-style regular rate %.3f, want ~1", bitcoin.RegularRate)
	}
	if got := eip.RegularRate + eip.UncleRate; math.Abs(got-1) > 0.05 {
		t.Errorf("eip100 regular+uncle rate %.3f, want ~1", got)
	}
	// The paper's point: the uncle-blind rule lets selfish mining inflate
	// issuance; EIP100 keeps it bounded.
	if bitcoin.RewardRate <= eip.RewardRate {
		t.Errorf("bitcoin-style reward rate %.3f should exceed eip100's %.3f",
			bitcoin.RewardRate, eip.RewardRate)
	}
	// Agreement with the closed-form oracle, within statistical tolerance.
	for _, row := range result.Rows {
		if math.Abs(row.RewardRate-row.Predicted) > 0.03*row.Predicted {
			t.Errorf("%v: steady reward rate %.4f far from predicted %.4f",
				row.Rule, row.RewardRate, row.Predicted)
		}
	}
	if !strings.Contains(result.Table().String(), "eip100") {
		t.Error("ablation table missing eip100 row")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Fig8(Options{Runs: -1}); err == nil {
		t.Error("negative runs should fail")
	}
	if _, err := Table2(Options{Blocks: -1}); err == nil {
		t.Error("negative blocks should fail")
	}
}

func TestStrategiesComparison(t *testing.T) {
	result, err := Strategies(Options{Runs: 2, Blocks: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Names) != 5 || len(result.Rows) != 4 {
		t.Fatalf("shape = %d names x %d rows", len(result.Names), len(result.Rows))
	}
	for _, row := range result.Rows {
		honest := row.Revenue[0]
		if math.Abs(honest-row.Alpha) > 0.01 {
			t.Errorf("alpha=%v: honest control earned %v, want ~alpha", row.Alpha, honest)
		}
		// Above the threshold (0.054) Algorithm 1 must beat the honest
		// control.
		if row.Alpha > 0.1 && row.Revenue[1] <= honest {
			t.Errorf("alpha=%v: Algorithm 1 (%v) did not beat honest (%v)",
				row.Alpha, row.Revenue[1], honest)
		}
	}
	// At the top alpha the winner should not be the honest control.
	if best := result.Best(len(result.Rows) - 1); best == "honest" {
		t.Errorf("best strategy at alpha=0.45 = %q", best)
	}
	if !strings.Contains(result.Table().String(), "stubborn:lead=1") {
		t.Error("table missing stubborn:lead=1 column")
	}
}

func TestPoolWars(t *testing.T) {
	result, err := PoolWars(Options{Runs: 2, Blocks: 40000})
	if err != nil {
		t.Fatal(err)
	}
	homo, hetero := result.Homogeneous(), result.Heterogeneous()
	if len(homo) != 9 || len(hetero) != 3 {
		t.Fatalf("shape = %d homogeneous + %d heterogeneous rows", len(homo), len(hetero))
	}
	for _, row := range result.Rows {
		if row.Pool1 <= 0 || row.Pool2 <= 0 || row.Honest <= 0 {
			t.Errorf("%.2fx%.2f (%s/%s): degenerate revenues %v/%v/%v",
				row.Alpha1, row.Alpha2, row.Strategy1, row.Strategy2,
				row.Pool1, row.Pool2, row.Honest)
		}
	}
	// Symmetric homogeneous points must treat the pools symmetrically.
	// The tolerance is wide: at 2 runs x 40k blocks the per-pool noise
	// is a few percent (at 20 x 100k the gap closes to under 1e-3).
	for _, row := range homo {
		if row.Alpha1 == row.Alpha2 && math.Abs(row.Pool1-row.Pool2) > 0.05 {
			t.Errorf("symmetric point %.2f: pool revenues %v vs %v",
				row.Alpha1, row.Pool1, row.Pool2)
		}
	}
	// Two large Algorithm-1 pools waste far more blocks than small ones.
	byKey := make(map[string]PoolWarsRow)
	for _, row := range homo {
		byKey[fmt.Sprintf("%.2f-%.2f", row.Alpha1, row.Alpha2)] = row
	}
	if small, big := byKey["0.10-0.10"], byKey["0.30-0.30"]; big.StaleFraction <= small.StaleFraction {
		t.Errorf("stale fraction %v at 0.30x0.30 vs %v at 0.10x0.10; rivalry should scale",
			big.StaleFraction, small.StaleFraction)
	}
	// In the heterogeneous rows the control pool mines honestly: its
	// per-power revenue rate matches the honest crowd's.
	for _, row := range hetero {
		if row.Strategy2 != "honest" {
			t.Fatalf("hetero row strategy2 = %q", row.Strategy2)
		}
		crowdPower := 1 - row.Alpha1 - row.Alpha2
		if math.Abs(row.Pool2/row.Alpha2-row.Honest/crowdPower) > 0.08 {
			t.Errorf("alpha1=%.2f: control rate %v differs from crowd rate %v",
				row.Alpha1, row.Pool2/row.Alpha2, row.Honest/crowdPower)
		}
	}
	if !strings.Contains(result.Table().String(), "algorithm1/honest") {
		t.Error("table missing heterogeneous rows")
	}
}
