package experiments

import (
	"fmt"
	"strconv"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/table"
)

// fig9Schedules are the uncle-reward variants of Fig. 9: fixed values
// 2/8, 4/8, 7/8 (regardless of distance) and Ethereum's distance-dependent
// Ku function.
func fig9Schedules() ([]rewards.Schedule, []string, error) {
	var (
		schedules []rewards.Schedule
		names     []string
	)
	for _, ku := range []float64{2.0 / 8, 4.0 / 8, 7.0 / 8} {
		s, err := rewards.Constant(ku, rewards.NoDepthLimit)
		if err != nil {
			return nil, nil, err
		}
		schedules = append(schedules, s)
		names = append(names, fmt.Sprintf("Ku=%d/8", int(ku*8)))
	}
	schedules = append(schedules, rewards.Ethereum())
	names = append(names, "Ku(.)")
	return schedules, names, nil
}

// Fig9Row is one alpha point of Fig. 9: selfish, honest, and total absolute
// revenue for each uncle-reward variant (scenario 1, gamma = 0.5).
type Fig9Row struct {
	Alpha float64

	// Pool, Honest and Total are indexed like Fig9Result.Schedules.
	Pool   []float64
	Honest []float64
	Total  []float64
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	// Schedules names the uncle-reward variants, in column order.
	Schedules []string
	Rows      []Fig9Row
}

// Fig9 computes the revenue curves of Fig. 9 for all four uncle-reward
// variants from the closed-form model, solving the alpha × schedule grid on
// the experiment engine. The driver is analytic: only opts.Parallelism is
// used (simulation effort does not apply).
func Fig9(opts Options) (Fig9Result, error) {
	if err := opts.validate(); err != nil {
		return Fig9Result{}, err
	}
	schedules, names, err := fig9Schedules()
	if err != nil {
		return Fig9Result{}, err
	}
	alphas := sweep(fig8AlphaStart, fig8AlphaMax, fig8AlphaStep)
	rows, err := grid(opts.Parallelism, len(alphas), func(i int) (Fig9Row, error) {
		alpha := alphas[i]
		row := Fig9Row{Alpha: alpha}
		for _, schedule := range schedules {
			m, err := core.New(core.Params{Alpha: alpha, Gamma: fig8Gamma, Schedule: schedule})
			if err != nil {
				return Fig9Row{}, err
			}
			rev := m.Revenue()
			row.Pool = append(row.Pool, rev.PoolAbsolute(core.Scenario1))
			row.Honest = append(row.Honest, rev.HonestAbsolute(core.Scenario1))
			row.Total = append(row.Total, rev.TotalAbsolute(core.Scenario1))
		}
		return row, nil
	})
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Schedules: names, Rows: rows}, nil
}

// MaxTotal returns the largest total revenue across the sweep — the "soars
// to 135%" observation of Sec. V-B.
func (r Fig9Result) MaxTotal() float64 {
	var max float64
	for _, row := range r.Rows {
		for _, total := range row.Total {
			if total > max {
				max = total
			}
		}
	}
	return max
}

// Table renders all twelve series.
func (r Fig9Result) Table() *table.Table {
	headers := []string{"alpha"}
	for _, name := range r.Schedules {
		headers = append(headers, name+" pool")
	}
	for _, name := range r.Schedules {
		headers = append(headers, name+" honest")
	}
	for _, name := range r.Schedules {
		headers = append(headers, name+" total")
	}
	t := table.New(
		"Fig. 9 — Revenue under different uncle rewards (gamma=0.5, scenario 1)",
		headers...,
	)
	for _, row := range r.Rows {
		var values []float64
		values = append(values, row.Pool...)
		values = append(values, row.Honest...)
		values = append(values, row.Total...)
		_ = t.AddNumericRow(formatAlpha(row.Alpha), 4, values...)
	}
	return t
}

func formatAlpha(alpha float64) string {
	return strconv.FormatFloat(alpha, 'f', 3, 64)
}
