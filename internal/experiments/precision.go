package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/stats"
	"github.com/ethselfish/ethselfish/internal/table"
)

// This file is the runs-to-target-precision study: instead of a fixed run
// count per grid point, each cell keeps simulating until its confidence
// interval for the pool's absolute revenue is narrower than a target
// half-width, under one of three estimators. The cells share a Fig. 8
// setting (two-agent population, gamma = 0.5, flat Ku = 4/8), where the
// closed-form chain model supplies both the ground truth to report against
// and the exact control-variate mean.
//
//   - Plain: the sample mean over independent runs.
//   - Control variate: pairs each run's revenue with its selfish event
//     share, whose exact mean is alpha (every event is an independent
//     draw of the mining race), and regresses the noise out.
//   - Antithetic: pairs each seed with its mirrored stream (every uniform
//     reflected across the lattice midpoint) and averages within pairs;
//     the negative within-pair correlation cancels first-order noise.
//
// Every cell is deterministic given (Options.Seed, alpha, estimator):
// seeds derive exactly as the fixed-run grid derives them, so a precision
// study is reproducible run for run.

// Estimator selects the statistical estimator of a precision cell.
type Estimator int

const (
	// EstimatorPlain is the sample mean over independent runs.
	EstimatorPlain Estimator = iota

	// EstimatorControlVariate regresses run revenue against the selfish
	// event share, whose exact mean is known (alpha).
	EstimatorControlVariate

	// EstimatorAntithetic averages within seed-mirrored run pairs.
	EstimatorAntithetic
)

// String returns the estimator's canonical name.
func (e Estimator) String() string {
	switch e {
	case EstimatorPlain:
		return "plain"
	case EstimatorControlVariate:
		return "control-variate"
	case EstimatorAntithetic:
		return "antithetic"
	}
	return "estimator(" + strconv.Itoa(int(e)) + ")"
}

// ParseEstimator resolves a canonical estimator name.
func ParseEstimator(name string) (Estimator, error) {
	switch name {
	case "plain":
		return EstimatorPlain, nil
	case "control-variate", "cv":
		return EstimatorControlVariate, nil
	case "antithetic":
		return EstimatorAntithetic, nil
	}
	return 0, fmt.Errorf("%w: unknown estimator %q", ErrBadOptions, name)
}

// Precision-study defaults.
const (
	// DefaultTargetRadius is the default confidence half-width target for
	// the pool's absolute revenue.
	DefaultTargetRadius = 0.002

	// DefaultPrecisionLevel is the default confidence level.
	DefaultPrecisionLevel = 0.95

	// DefaultPrecisionMaxRuns bounds a cell that cannot reach its target.
	DefaultPrecisionMaxRuns = 256

	// DefaultPrecisionBatch is the number of runs simulated between
	// interval checks (kept off the check boundary so small-sample t
	// intervals never gate on one or two runs).
	DefaultPrecisionBatch = 8
)

// defaultPrecisionAlphas spans the paper's interesting range: below the
// profitability threshold, mid-range, and the classic 1/3.
func defaultPrecisionAlphas() []float64 { return []float64{0.15, 0.25, 1.0 / 3.0} }

// allEstimators lists every estimator, in report order.
func allEstimators() []Estimator {
	return []Estimator{EstimatorPlain, EstimatorControlVariate, EstimatorAntithetic}
}

// PrecisionConfig shapes a precision study. The zero value gets defaults
// for every field.
type PrecisionConfig struct {
	// Alphas are the pool hash powers to study (nil: 0.15, 0.25, 1/3).
	Alphas []float64

	// Estimators are the estimators to compare (nil: all three).
	Estimators []Estimator

	// TargetRadius is the confidence half-width each cell runs toward
	// (zero: DefaultTargetRadius).
	TargetRadius float64

	// Level is the confidence level (zero: DefaultPrecisionLevel).
	Level float64

	// MaxRuns caps a cell's simulation runs (zero:
	// DefaultPrecisionMaxRuns). Antithetic cells count both halves of a
	// pair.
	MaxRuns int

	// BatchRuns is the number of runs between interval checks (zero:
	// DefaultPrecisionBatch).
	BatchRuns int

	// FastForward runs every simulation with the analytic fast-forward
	// enabled, compounding the two accelerations.
	FastForward bool
}

func (pc PrecisionConfig) withDefaults() PrecisionConfig {
	if pc.Alphas == nil {
		pc.Alphas = defaultPrecisionAlphas()
	}
	if pc.Estimators == nil {
		pc.Estimators = allEstimators()
	}
	if pc.TargetRadius == 0 {
		pc.TargetRadius = DefaultTargetRadius
	}
	if pc.Level == 0 {
		pc.Level = DefaultPrecisionLevel
	}
	if pc.MaxRuns == 0 {
		pc.MaxRuns = DefaultPrecisionMaxRuns
	}
	if pc.BatchRuns == 0 {
		pc.BatchRuns = DefaultPrecisionBatch
	}
	return pc
}

func (pc PrecisionConfig) validate() error {
	if pc.TargetRadius < 0 || pc.Level <= 0 || pc.Level >= 1 {
		return fmt.Errorf("%w: bad precision target or level", ErrBadOptions)
	}
	if pc.MaxRuns < 4 || pc.BatchRuns < 2 {
		return fmt.Errorf("%w: precision study needs MaxRuns >= 4 and BatchRuns >= 2", ErrBadOptions)
	}
	for _, a := range pc.Alphas {
		if a < 0 || a > 0.5 {
			return fmt.Errorf("%w: precision alpha %v outside [0, 0.5]", ErrBadOptions, a)
		}
	}
	return nil
}

// PrecisionRow is one (alpha, estimator) cell of a precision study.
type PrecisionRow struct {
	Alpha     float64
	Estimator Estimator

	// Analytic is the closed-form pool revenue (ground truth).
	Analytic float64

	// Estimate and Radius are the cell's final estimate and confidence
	// half-width at the study's level.
	Estimate float64
	Radius   float64

	// Runs is the number of simulation runs the cell consumed before its
	// interval closed under TargetRadius (or MaxRuns stopped it).
	Runs int

	// VRF is the estimator's measured variance reduction factor: how many
	// plain runs one of its runs is worth (1 for the plain estimator).
	VRF float64

	// RunsToTarget and PlainRunsToTarget project, from the cell's own
	// variance estimates, the runs needed to reach TargetRadius with this
	// estimator and with the plain mean — the study's headline comparison.
	RunsToTarget      int
	PlainRunsToTarget int
}

// PrecisionResult is a complete precision study.
type PrecisionResult struct {
	Rows []PrecisionRow

	// TargetRadius and Level echo the study's targets.
	TargetRadius float64
	Level        float64
}

// Precision runs the runs-to-target-precision study: every (alpha,
// estimator) cell simulates in batches until its confidence interval
// reaches the target half-width, and reports the measured variance
// reduction alongside projected run counts. Cells are scheduled across the
// engine's workers; within a cell, runs are sequential on one reused
// simulator (the adaptive stopping rule is inherently serial).
func Precision(opts Options, pc PrecisionConfig) (PrecisionResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PrecisionResult{}, err
	}
	pc = pc.withDefaults()
	if err := pc.validate(); err != nil {
		return PrecisionResult{}, err
	}
	schedule, err := rewards.Constant(fig8Ku, rewards.NoDepthLimit)
	if err != nil {
		return PrecisionResult{}, err
	}

	type cell struct {
		alpha float64
		est   Estimator
	}
	cells := make([]cell, 0, len(pc.Alphas)*len(pc.Estimators))
	for _, alpha := range pc.Alphas {
		for _, est := range pc.Estimators {
			cells = append(cells, cell{alpha, est})
		}
	}
	rows, err := grid(opts.Parallelism, len(cells), func(i int) (PrecisionRow, error) {
		return precisionCell(opts, pc, schedule, cells[i].alpha, cells[i].est)
	})
	if err != nil {
		return PrecisionResult{}, err
	}
	return PrecisionResult{Rows: rows, TargetRadius: pc.TargetRadius, Level: pc.Level}, nil
}

// precisionCell runs one (alpha, estimator) cell to its stopping rule.
func precisionCell(opts Options, pc PrecisionConfig, schedule rewards.Schedule, alpha float64, est Estimator) (PrecisionRow, error) {
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		return PrecisionRow{}, err
	}
	model, err := core.New(core.Params{Alpha: alpha, Gamma: fig8Gamma, Schedule: schedule})
	if err != nil {
		return PrecisionRow{}, err
	}
	analytic := model.Revenue().PoolAbsolute(core.Scenario1)

	base := sim.Config{
		Population:  pop,
		Gamma:       fig8Gamma,
		Schedule:    schedule,
		Blocks:      opts.Blocks,
		Audit:       opts.Audit,
		FastForward: pc.FastForward,
	}
	rn := sim.NewRunner()
	seedBase := jobkey.SeedBase(opts.Seed, base)
	// The cell's two row families — plain and antithetic mirror — have
	// fixed content addresses; only the per-run seed varies.
	plainKey := jobkey.ForConfig(base)
	antiBase := base
	antiBase.Antithetic = true
	antiKey := jobkey.ForConfig(antiBase)

	var acc stats.Accumulator // plain observations, or antithetic pair means
	var all stats.Accumulator // antithetic halves (the plain-variance proxy)
	var paired stats.Paired   // control-variate (revenue, event-share) pairs
	runs, idx := 0, 0
	estimate, radius := 0.0, math.Inf(1)

	for runs < pc.MaxRuns {
		for b := 0; b < pc.BatchRuns && runs < pc.MaxRuns; {
			cfg := base
			cfg.Seed = sim.DeriveSeed(seedBase, idx)
			idx++
			res, err := cachedRun(rn, cfg, plainKey, opts.Cache)
			if err != nil {
				return PrecisionRow{}, err
			}
			y := res.PoolAbsolute(core.Scenario1)
			switch est {
			case EstimatorAntithetic:
				cfg.Antithetic = true
				mirror, err := cachedRun(rn, cfg, antiKey, opts.Cache)
				if err != nil {
					return PrecisionRow{}, err
				}
				ym := mirror.PoolAbsolute(core.Scenario1)
				acc.Add((y + ym) / 2)
				all.Add(y)
				all.Add(ym)
				runs += 2
				b += 2
			case EstimatorControlVariate:
				paired.Add(y, res.SelfishEventShare())
				acc.Add(y)
				runs++
				b++
			default:
				acc.Add(y)
				runs++
				b++
			}
		}
		if est == EstimatorControlVariate {
			ci, err := paired.ControlVariateInterval(alpha, pc.Level)
			if err != nil {
				continue
			}
			estimate, radius = ci.Mean, ci.Radius
		} else {
			ci, err := acc.ConfidenceInterval(pc.Level)
			if err != nil {
				continue
			}
			estimate, radius = ci.Mean, ci.Radius
		}
		if radius <= pc.TargetRadius {
			break
		}
	}

	// Project run counts to the target from the cell's own variance
	// estimates: the effective per-run deviation of the estimator against
	// the plain per-run deviation of the same stream.
	vrf := 1.0
	var sdEff, sdPlain float64
	switch est {
	case EstimatorControlVariate:
		vrf = paired.VarianceReductionFactor()
		sdEff = math.Sqrt(paired.ResidualVariance())
		sdPlain = math.Sqrt(paired.VarianceY())
	case EstimatorAntithetic:
		// A pair costs two runs, so per-run-equivalent variance is twice
		// the pair-mean variance.
		varZ := acc.Variance()
		varY := all.Variance()
		if varZ > 0 {
			vrf = varY / (2 * varZ)
		} else if varY > 0 {
			vrf = math.Inf(1)
		}
		sdEff = math.Sqrt(2 * varZ)
		sdPlain = math.Sqrt(varY)
	default:
		sdEff = acc.StdDev()
		sdPlain = sdEff
	}
	runsTo := stats.RunsForRadius(sdEff, pc.Level, pc.TargetRadius)
	if est == EstimatorAntithetic && runsTo < math.MaxInt && runsTo%2 == 1 {
		runsTo++
	}
	return PrecisionRow{
		Alpha:             alpha,
		Estimator:         est,
		Analytic:          analytic,
		Estimate:          estimate,
		Radius:            radius,
		Runs:              runs,
		VRF:               vrf,
		RunsToTarget:      runsTo,
		PlainRunsToTarget: stats.RunsForRadius(sdPlain, pc.Level, pc.TargetRadius),
	}, nil
}

// Table renders the study as rows.
func (r PrecisionResult) Table() *table.Table {
	t := table.New(
		fmt.Sprintf("Precision — runs to a +/-%g pool-revenue CI at %g%% (gamma=0.5, Ku=4/8 Ks, scenario 1)",
			r.TargetRadius, r.Level*100),
		"alpha", "estimator", "analytic", "estimate", "radius", "runs", "VRF",
		"runs-to-target", "plain-runs-to-target",
	)
	for _, row := range r.Rows {
		_ = t.AddRow(
			formatAlpha(row.Alpha),
			row.Estimator.String(),
			strconv.FormatFloat(row.Analytic, 'f', 4, 64),
			strconv.FormatFloat(row.Estimate, 'f', 4, 64),
			strconv.FormatFloat(row.Radius, 'f', 4, 64),
			strconv.Itoa(row.Runs),
			strconv.FormatFloat(row.VRF, 'f', 2, 64),
			formatRuns(row.RunsToTarget),
			formatRuns(row.PlainRunsToTarget),
		)
	}
	return t
}

// formatRuns renders a projected run count, marking the unreachable.
func formatRuns(n int) string {
	if n == math.MaxInt {
		return "inf"
	}
	return strconv.Itoa(n)
}
