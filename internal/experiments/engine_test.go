package experiments

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Ordering, emptiness, and error-determinism of the underlying pool are
// covered in internal/parallel; the tests here pin the engine's seed and
// assembly contracts.

// TestRunSimGridMatchesRunMany pins the engine's seed contract: scheduling
// (grid-point × run) work items across workers must reproduce exactly what
// sequential sim.RunMany produces at each point.
func TestRunSimGridMatchesRunMany(t *testing.T) {
	opts := Options{Runs: 3, Blocks: 2000, Seed: 11, Parallelism: 4}
	alphas := []float64{0.2, 0.35}
	jobs := make([]simJob, len(alphas))
	for i, alpha := range alphas {
		jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: fig8Gamma}
		}}
	}
	gridSeries, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i, alpha := range alphas {
		pop, err := mining.TwoAgent(alpha)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{
			Population:  pop,
			Gamma:       fig8Gamma,
			Blocks:      opts.Blocks,
			Seed:        jobkey.SeedBase(opts.Seed, sim.Config{Population: pop, Gamma: fig8Gamma}),
			Parallelism: 1,
		}
		want, err := sim.RunMany(cfg, opts.Runs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gridSeries[i].Runs, want.Runs) {
			t.Errorf("alpha=%v: grid series differs from sequential RunMany", alpha)
		}
	}
}

// TestFig8ParallelMatchesSequential exercises a full driver through the
// engine at both parallelism settings; run with -race this doubles as the
// engine's data-race check.
func TestFig8ParallelMatchesSequential(t *testing.T) {
	base := Options{Runs: 2, Blocks: 2000, Seed: 5}

	seq := base
	seq.Parallelism = 1
	sequential, err := Fig8(seq)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Parallelism = 8
	parallel, err := Fig8(par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sequential, parallel) {
		t.Error("Fig8 parallel result differs from sequential")
	}
}

func TestOptionsRejectNegativeParallelism(t *testing.T) {
	if _, err := Fig8(Options{Parallelism: -2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("got %v, want ErrBadOptions", err)
	}
}

// TestSweepGridSizes pins sweep's point counts and endpoints: the count is
// computed once by rounding, so float-accumulation drift can never gain or
// lose a grid point.
func TestSweepGridSizes(t *testing.T) {
	tests := []struct {
		start, max, step float64
		n                int
		last             float64
	}{
		{0.05, 0.45, 0.05, 9, 0.45},
		{0.025, 0.45, 0.025, 18, 0.45},
		{0, 1, 0.05, 21, 1},
		{0, 1, 0.1, 11, 1},
		{0.1, 0.9, 0.2, 5, 0.9},
		// Non-dividing steps keep the last point at or below max.
		{0, 1, 0.3, 4, 0.9},
		{0, 1, 0.4, 3, 0.8},
		// Degenerate single-point grids.
		{0.3, 0.3, 0.1, 1, 0.3},
		{0.5, 0.4, 0.1, 1, 0.5},
	}
	for _, tt := range tests {
		got := sweep(tt.start, tt.max, tt.step)
		if len(got) != tt.n {
			t.Errorf("sweep(%v, %v, %v) has %d points, want %d: %v",
				tt.start, tt.max, tt.step, len(got), tt.n, got)
			continue
		}
		if got[0] != tt.start {
			t.Errorf("sweep(%v, %v, %v) starts at %v", tt.start, tt.max, tt.step, got[0])
		}
		if math.Abs(got[len(got)-1]-tt.last) > 1e-12 {
			t.Errorf("sweep(%v, %v, %v) ends at %v, want %v",
				tt.start, tt.max, tt.step, got[len(got)-1], tt.last)
		}
		for i, v := range got {
			if want := tt.start + float64(i)*tt.step; v != want {
				t.Errorf("sweep(%v, %v, %v)[%d] = %v, want exact index multiply %v",
					tt.start, tt.max, tt.step, i, v, want)
			}
		}
	}
}

// TestRunSimGridResolvesSpecs pins the engine's registry plumbing: a job
// carrying strategy specs must produce exactly what the same job produces
// with the strategies constructed by hand.
func TestRunSimGridResolvesSpecs(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 2000, Seed: 3, Parallelism: 2}
	pop, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	viaSpecs, err := runSimGrid(opts, []simJob{{
		alpha: 0.25,
		pop:   pop,
		specs: []sim.StrategySpec{
			sim.MustStrategySpec("stubborn:lead=1"),
			sim.MustStrategySpec("algorithm1"),
		},
		build: func(*mining.Population) sim.Config { return sim.Config{Gamma: 0.5} },
	}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runSimGrid(opts, []simJob{{
		alpha: 0.25,
		pop:   pop,
		build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: 0.5, Strategies: []sim.Strategy{
				sim.Stubborn{Lead: true}, sim.Algorithm1{},
			}}
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpecs, direct) {
		t.Error("spec-resolved grid differs from hand-constructed strategies")
	}

	if _, err := runSimGrid(opts, []simJob{{
		alpha: 0.2,
		specs: []sim.StrategySpec{{Name: "nonsense"}},
		build: func(*mining.Population) sim.Config { return sim.Config{Gamma: 0.5} },
	}}); !errors.Is(err, sim.ErrBadSpec) {
		t.Errorf("bad spec err = %v, want sim.ErrBadSpec", err)
	}
}
