package experiments

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Ordering, emptiness, and error-determinism of the underlying pool are
// covered in internal/parallel; the tests here pin the engine's seed and
// assembly contracts.

// TestRunSimGridMatchesRunMany pins the engine's seed contract: scheduling
// (grid-point × run) work items across workers must reproduce exactly what
// sequential sim.RunMany produces at each point.
func TestRunSimGridMatchesRunMany(t *testing.T) {
	opts := Options{Runs: 3, Blocks: 2000, Seed: 11, Parallelism: 4}
	alphas := []float64{0.2, 0.35}
	jobs := make([]simJob, len(alphas))
	for i, alpha := range alphas {
		jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: fig8Gamma}
		}}
	}
	gridSeries, err := runSimGrid(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i, alpha := range alphas {
		pop, err := mining.TwoAgent(alpha)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{
			Population:  pop,
			Gamma:       fig8Gamma,
			Blocks:      opts.Blocks,
			Seed:        pointSeed(opts, alpha),
			Parallelism: 1,
		}
		want, err := sim.RunMany(cfg, opts.Runs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gridSeries[i].Runs, want.Runs) {
			t.Errorf("alpha=%v: grid series differs from sequential RunMany", alpha)
		}
	}
}

// TestFig8ParallelMatchesSequential exercises a full driver through the
// engine at both parallelism settings; run with -race this doubles as the
// engine's data-race check.
func TestFig8ParallelMatchesSequential(t *testing.T) {
	base := Options{Runs: 2, Blocks: 2000, Seed: 5}

	seq := base
	seq.Parallelism = 1
	sequential, err := Fig8(seq)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Parallelism = 8
	parallel, err := Fig8(par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sequential, parallel) {
		t.Error("Fig8 parallel result differs from sequential")
	}
}

func TestOptionsRejectNegativeParallelism(t *testing.T) {
	if _, err := Fig8(Options{Parallelism: -2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("got %v, want ErrBadOptions", err)
	}
}
