package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// This file is the sweep checkpoint journal: the experiments engine records
// every completed (grid-point × run) row keyed by a canonical hash of the
// sweep's full configuration, so an interrupted sweep resumes without
// recompute — and, because per-run seeds are a pure function of the sweep
// options (determinism invariant 3), a resumed sweep's output is
// bit-identical to an uninterrupted one. The sweep hash is built from the
// same jobkey encoder that addresses rows in internal/resultcache, so the
// journal and the cache can never disagree about simulation identity.
//
// Format: JSON lines. The first line is {"version":1}; a sweep section
// starts with {"sweep":{...}} naming the config hash and grid dimensions,
// and each {"row":{...}} line attaches one completed run to the most recent
// header. One file holds many sections — multi-sweep drivers (tournament,
// best-response) and resumed sessions append sections freely, including
// repeated headers for the same sweep.
//
// The decoder is strict: a malformed line, a row without a header, a
// duplicate or out-of-range row, conflicting headers, or a truncated tail
// (any final line without its newline — the mark of a crash mid-write)
// rejects the whole journal with ErrJournal rather than silently resuming
// from corrupt state. Rows are written line-atomically under a lock, and a
// graceful cancellation (SIGINT, -timeout) only stops dispatch, so
// journals written by this engine always end cleanly; a journal torn by a
// hard kill must be deleted (or repaired to a line boundary) by hand.

// ErrJournal is returned when a checkpoint journal is malformed.
var ErrJournal = errors.New("experiments: invalid checkpoint journal")

// journalVersion identifies the journal format.
const journalVersion = 1

// sweepHeader is the journal's sweep-section header: the canonical config
// hash plus the grid dimensions, which bound the rows that may follow.
type sweepHeader struct {
	Hash   string `json:"hash"`
	Jobs   int    `json:"jobs"`
	Runs   int    `json:"runs"`
	Blocks int    `json:"blocks"`
	Seed   uint64 `json:"seed"`
}

// journalRow is one completed (grid-point × run) result.
type journalRow struct {
	Job    int        `json:"job"`
	Run    int        `json:"run"`
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// journalLine is the union shape of every line after the version line.
type journalLine struct {
	Sweep *sweepHeader `json:"sweep,omitempty"`
	Row   *journalRow  `json:"row,omitempty"`
}

// rowKey addresses one row within a sweep section.
type rowKey struct {
	job, run int
}

// savedRow is one journaled result held in memory.
type savedRow struct {
	seed   uint64
	result sim.Result
}

// sweepRows collects one sweep's journaled rows.
type sweepRows struct {
	header sweepHeader
	rows   map[rowKey]savedRow
}

// Checkpoint is an open checkpoint journal: the parsed contents of the
// file plus an append handle for new rows. It is safe for concurrent use
// by the engine's workers. Open with OpenCheckpoint; pass it to sweeps via
// Options.Checkpoint; Close it when the sweeps are done.
type Checkpoint struct {
	mu     sync.Mutex
	file   *os.File
	sweeps map[string]*sweepRows

	// current is the hash of the journal's most recent on-disk header;
	// record emits a new header line whenever the sweep changes.
	current string
}

// OpenCheckpoint opens (creating if needed) the journal at path, strictly
// validating any existing contents. A corrupt or truncated journal is
// rejected with ErrJournal — it is never silently resumed from.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("experiments: reading checkpoint: %w", err)
	}
	sweeps, current, err := decodeJournal(data)
	if err != nil {
		return nil, fmt.Errorf("%w (delete or repair %s to start over)", err, path)
	}
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: opening checkpoint: %w", err)
	}
	c := &Checkpoint{file: file, sweeps: sweeps, current: current}
	if len(data) == 0 {
		if err := c.writeLine(map[string]int{"version": journalVersion}); err != nil {
			file.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close releases the journal's append handle. Sweeps must not record to a
// closed checkpoint.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file.Close()
}

// Rows returns the number of journaled rows for the given sweep hash —
// how much of a sweep a resume will skip.
func (c *Checkpoint) Rows(hash string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sweeps[hash]; s != nil {
		return len(s.rows)
	}
	return 0
}

// lookup returns the journaled result of (job, run) under hash, verifying
// that the journaled seed matches the derived one (a mismatch means hash
// collision or tampering and poisons the whole journal).
func (c *Checkpoint) lookup(hash string, job, run int, seed uint64) (sim.Result, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sweeps[hash]
	if s == nil {
		return sim.Result{}, false, nil
	}
	row, ok := s.rows[rowKey{job, run}]
	if !ok {
		return sim.Result{}, false, nil
	}
	if row.seed != seed {
		return sim.Result{}, false, fmt.Errorf(
			"%w: sweep %.12s row (%d,%d) journaled under seed %d, derived %d",
			ErrJournal, hash, job, run, row.seed, seed)
	}
	return row.result, true, nil
}

// record journals one completed row: appends it to the file (emitting a
// sweep header first when the section changes) and indexes it in memory.
// Duplicate records of the same row are ignored — a cancelled MapWithCtx
// dispatch can legitimately re-reach rows the journal already holds.
func (c *Checkpoint) record(header sweepHeader, job, run int, seed uint64, result sim.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sweeps[header.Hash]
	if s == nil {
		s = &sweepRows{header: header, rows: make(map[rowKey]savedRow)}
		c.sweeps[header.Hash] = s
	} else if s.header != header {
		return fmt.Errorf("%w: sweep %.12s journaled with conflicting dimensions", ErrJournal, header.Hash)
	}
	if _, dup := s.rows[rowKey{job, run}]; dup {
		return nil
	}
	if c.current != header.Hash {
		if err := c.writeLine(journalLine{Sweep: &header}); err != nil {
			return err
		}
		c.current = header.Hash
	}
	if err := c.writeLine(journalLine{Row: &journalRow{Job: job, Run: run, Seed: seed, Result: result}}); err != nil {
		return err
	}
	s.rows[rowKey{job, run}] = savedRow{seed: seed, result: result}
	return nil
}

// writeLine appends one JSON line to the journal. Must be called with the
// lock held.
func (c *Checkpoint) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiments: encoding checkpoint line: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.file.Write(line); err != nil {
		return fmt.Errorf("experiments: writing checkpoint: %w", err)
	}
	return nil
}

// decodeJournal strictly parses a journal's bytes. It returns the indexed
// sweeps and the hash of the last header (the section an append would
// continue). Empty input is a fresh journal.
func decodeJournal(data []byte) (map[string]*sweepRows, string, error) {
	sweeps := make(map[string]*sweepRows)
	if len(data) == 0 {
		return sweeps, "", nil
	}
	if data[len(data)-1] != '\n' {
		return nil, "", fmt.Errorf("%w: truncated final line", ErrJournal)
	}
	lines := bytes.Split(data[:len(data)-1], []byte("\n"))
	var version struct {
		Version int `json:"version"`
	}
	if err := strictUnmarshal(lines[0], &version); err != nil {
		return nil, "", fmt.Errorf("%w: line 1: %v", ErrJournal, err)
	}
	if version.Version != journalVersion {
		return nil, "", fmt.Errorf("%w: unsupported version %d", ErrJournal, version.Version)
	}
	var current *sweepRows
	currentHash := ""
	for i, raw := range lines[1:] {
		lineNo := i + 2
		var line journalLine
		if err := strictUnmarshal(raw, &line); err != nil {
			return nil, "", fmt.Errorf("%w: line %d: %v", ErrJournal, lineNo, err)
		}
		switch {
		case line.Sweep != nil && line.Row != nil:
			return nil, "", fmt.Errorf("%w: line %d: both sweep and row", ErrJournal, lineNo)
		case line.Sweep != nil:
			h := *line.Sweep
			if len(h.Hash) != sha256.Size*2 || !isHex(h.Hash) {
				return nil, "", fmt.Errorf("%w: line %d: malformed sweep hash", ErrJournal, lineNo)
			}
			if h.Jobs <= 0 || h.Runs <= 0 || h.Blocks <= 0 {
				return nil, "", fmt.Errorf("%w: line %d: non-positive sweep dimensions", ErrJournal, lineNo)
			}
			if existing := sweeps[h.Hash]; existing != nil {
				// A resumed session repeats the header; it must agree.
				if existing.header != h {
					return nil, "", fmt.Errorf("%w: line %d: sweep %.12s re-declared with different dimensions",
						ErrJournal, lineNo, h.Hash)
				}
				current = existing
			} else {
				current = &sweepRows{header: h, rows: make(map[rowKey]savedRow)}
				sweeps[h.Hash] = current
			}
			currentHash = h.Hash
		case line.Row != nil:
			if current == nil {
				return nil, "", fmt.Errorf("%w: line %d: row before any sweep header", ErrJournal, lineNo)
			}
			r := line.Row
			if r.Job < 0 || r.Job >= current.header.Jobs || r.Run < 0 || r.Run >= current.header.Runs {
				return nil, "", fmt.Errorf("%w: line %d: row (%d,%d) outside the %dx%d grid",
					ErrJournal, lineNo, r.Job, r.Run, current.header.Jobs, current.header.Runs)
			}
			key := rowKey{r.Job, r.Run}
			if _, dup := current.rows[key]; dup {
				return nil, "", fmt.Errorf("%w: line %d: row (%d,%d) duplicated", ErrJournal, lineNo, r.Job, r.Run)
			}
			result := r.Result
			result.RestoreAliases()
			current.rows[key] = savedRow{seed: r.Seed, result: result}
		default:
			return nil, "", fmt.Errorf("%w: line %d: neither sweep nor row", ErrJournal, lineNo)
		}
	}
	return sweeps, currentHash, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// isHex reports whether s is entirely lowercase hex.
func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// sweepHash computes the canonical hash identifying one runSimGrid sweep:
// the options that shape the work (runs, blocks, seed) and, per job, the
// point's stream-family base seed plus its jobkey content address. Two
// sweeps share a hash exactly when determinism guarantees they produce
// identical rows, so journaled rows are safe to reuse across sessions. The
// v2 tag marks the move from the journal's own config fingerprint to the
// shared jobkey encoder (also used by the result cache's row addresses);
// v1 journals still load structurally but their sections no longer match
// any sweep, so they are never reused — only ignored.
func sweepHash(opts Options, keys []jobkey.Key, seedBases []uint64) string {
	w := jobkey.NewWriter()
	w.Str("ethselfish-sweep-v2")
	w.U64(uint64(opts.Runs))
	w.U64(uint64(opts.Blocks))
	w.U64(opts.Seed)
	w.U64(uint64(len(keys)))
	for j := range keys {
		w.Str("job")
		w.U64(seedBases[j])
		w.Bytes(keys[j][:])
	}
	return w.Sum().String()
}
