package experiments

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/sim"
)

func TestTournamentRoundRobin(t *testing.T) {
	opts := Options{Runs: 2, Blocks: 20000, Seed: 9}
	result, err := Tournament(opts)
	if err != nil {
		t.Fatal(err)
	}
	n := len(defaultTournamentSpecs())
	if len(result.Names) != n || len(result.Share) != n {
		t.Fatalf("matrix shape %d names x %d rows, want %d", len(result.Names), len(result.Share), n)
	}
	pairs := n * (n + 1) / 2
	if want := pairs * len(tournamentAlphas); len(result.Matches) != want {
		t.Fatalf("%d matches, want %d", len(result.Matches), want)
	}
	for i := range result.Share {
		if len(result.Share[i]) != n {
			t.Fatalf("row %d has %d cells", i, len(result.Share[i]))
		}
		for j, share := range result.Share[i] {
			if share <= 0 || share >= 1 {
				t.Errorf("share[%d][%d] = %v out of (0, 1)", i, j, share)
			}
		}
	}
	// The honest control cannot win a field that includes Algorithm 1 at
	// alphas above the profitability threshold.
	if result.Winner() == "honest" {
		t.Error("honest control won the tournament")
	}
	// Two honest pools split the chain by power: each earns its alpha as
	// relative share, within noise.
	honestIdx := -1
	for i, name := range result.Names {
		if name == "honest" {
			honestIdx = i
		}
	}
	if honestIdx < 0 {
		t.Fatal("default field lost its honest entrant")
	}
	var meanAlpha float64
	for _, a := range result.Alphas {
		meanAlpha += a
	}
	meanAlpha /= float64(len(result.Alphas))
	if got := result.Share[honestIdx][honestIdx]; math.Abs(got-meanAlpha) > 0.02 {
		t.Errorf("honest self-play share %v, want ~%v", got, meanAlpha)
	}
	if !strings.Contains(result.Table().String(), "Tournament") {
		t.Error("table missing title")
	}
	if result.MatchTable().NumRows() != len(result.Matches) {
		t.Error("match table row count mismatch")
	}
}

func TestTournamentCustomSpecsAndErrors(t *testing.T) {
	opts := Options{Runs: 1, Blocks: 5000, Seed: 2}
	result, err := Tournament(opts,
		sim.MustStrategySpec("algorithm1"),
		sim.MustStrategySpec("stubborn:lead=1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Names) != 2 || result.Names[1] != "stubborn:lead=1" {
		t.Fatalf("names = %v", result.Names)
	}
	if _, err := Tournament(opts, sim.MustStrategySpec("algorithm1")); !errors.Is(err, ErrBadOptions) {
		t.Errorf("single-entrant err = %v, want ErrBadOptions", err)
	}
	if _, err := Tournament(opts, sim.StrategySpec{Name: "nope"}, sim.StrategySpec{Name: "nope"}); !errors.Is(err, sim.ErrBadSpec) {
		t.Errorf("unknown spec err = %v, want sim.ErrBadSpec", err)
	}
}

// TestTournamentParallelMatchesSequential extends the engine's determinism
// contract to the tournament driver with parametric strategies in play;
// under -race it doubles as the data-race check for the registry path.
func TestTournamentParallelMatchesSequential(t *testing.T) {
	base := Options{Runs: 2, Blocks: 2000, Seed: 5}
	specs := []sim.StrategySpec{
		sim.MustStrategySpec("algorithm1"),
		sim.MustStrategySpec("stubborn:fork=1,lead=1"),
		sim.MustStrategySpec("stubborn:trail=2"),
	}

	seq := base
	seq.Parallelism = 1
	sequential, err := Tournament(seq, specs...)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Parallelism = 8
	parallel, err := Tournament(par, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Error("Tournament parallel result differs from sequential")
	}
}
