package experiments

import (
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// Fig. 8 parameters: gamma = 0.5, flat Ku = 4/8, alpha swept to 0.45.
const (
	fig8Gamma      = 0.5
	fig8Ku         = 0.5
	fig8AlphaMax   = 0.45
	fig8AlphaStep  = 0.025
	fig8AlphaStart = 0.025
)

// Fig8Row is one alpha point of Fig. 8: analytic and simulated absolute
// revenues for the selfish pool and the honest miners, plus the honest-
// mining baseline (the diagonal U = alpha).
type Fig8Row struct {
	Alpha          float64
	HonestMining   float64 // baseline: following the protocol yields alpha
	PoolAnalytic   float64
	PoolSim        float64
	PoolSimErr     float64 // standard error across runs
	HonestAnalytic float64
	HonestSim      float64
	HonestSimErr   float64
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 sweeps alpha and computes the revenue-rate curves of Fig. 8 from
// both the closed-form model and the simulator (scenario 1, gamma = 0.5,
// Ku = 4/8 Ks). The alpha × run simulation grid and the analytic solves
// are both scheduled on the experiment engine.
func Fig8(opts Options) (Fig8Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Fig8Result{}, err
	}
	schedule, err := rewards.Constant(fig8Ku, rewards.NoDepthLimit)
	if err != nil {
		return Fig8Result{}, err
	}

	alphas := sweep(fig8AlphaStart, fig8AlphaMax, fig8AlphaStep)
	jobs := make([]simJob, len(alphas))
	for i, alpha := range alphas {
		jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: fig8Gamma, Schedule: schedule}
		}}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return Fig8Result{}, err
	}

	rows, err := grid(opts.Parallelism, len(alphas), func(i int) (Fig8Row, error) {
		alpha := alphas[i]
		m, err := core.New(core.Params{Alpha: alpha, Gamma: fig8Gamma, Schedule: schedule})
		if err != nil {
			return Fig8Row{}, err
		}
		rev := m.Revenue()
		pool := series[i].PoolAbsolute(core.Scenario1)
		honest := series[i].HonestAbsolute(core.Scenario1)
		return Fig8Row{
			Alpha:          alpha,
			HonestMining:   alpha,
			PoolAnalytic:   rev.PoolAbsolute(core.Scenario1),
			HonestAnalytic: rev.HonestAbsolute(core.Scenario1),
			PoolSim:        pool.Mean(),
			PoolSimErr:     pool.StdErr(),
			HonestSim:      honest.Mean(),
			HonestSimErr:   honest.StdErr(),
		}, nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{Rows: rows}, nil
}

// Threshold returns the smallest swept alpha whose pool revenue meets or
// exceeds alpha (the crossing Fig. 8 highlights at 0.163), or 0 if none.
func (r Fig8Result) Threshold() float64 {
	for _, row := range r.Rows {
		if row.PoolAnalytic >= row.Alpha {
			return row.Alpha
		}
	}
	return 0
}

// Table renders the figure's series as rows.
func (r Fig8Result) Table() *table.Table {
	t := table.New(
		"Fig. 8 — Average absolute revenue vs alpha (gamma=0.5, Ku=4/8 Ks, scenario 1)",
		"alpha", "honest-mining", "pool(analytic)", "pool(sim)", "pool(sim err)",
		"honest(analytic)", "honest(sim)", "honest(sim err)",
	)
	for _, row := range r.Rows {
		// The shared AddNumericRow helper keeps formatting uniform.
		_ = t.AddNumericRow(formatAlpha(row.Alpha), 4,
			row.HonestMining, row.PoolAnalytic, row.PoolSim, row.PoolSimErr,
			row.HonestAnalytic, row.HonestSim, row.HonestSimErr)
	}
	return t
}
