package experiments

import (
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/table"
)

// DiffAblationRow is one difficulty rule's steady state under selfish
// mining.
type DiffAblationRow struct {
	Rule      difficulty.Rule
	Steady    difficulty.EpochStats
	Predicted float64 // analytic reward rate (scenario 1 or 2)
}

// DiffAblationResult is the difficulty-rule ablation: it shows that the
// paper's two normalization scenarios emerge from the two difficulty rules.
type DiffAblationResult struct {
	Alpha, Gamma float64
	Rows         []DiffAblationRow
}

// DiffAblation runs the coupled difficulty/selfish-mining simulation under
// both rules at alpha = 0.35, gamma = 0.5. The two rules are independent
// grid points on the experiment engine; epochs within a rule stay
// sequential because each epoch's difficulty depends on the last.
func DiffAblation(opts Options) (DiffAblationResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return DiffAblationResult{}, err
	}
	out := DiffAblationResult{Alpha: 0.35, Gamma: fig8Gamma}
	rules := []difficulty.Rule{difficulty.BitcoinStyle, difficulty.EIP100}
	rows, err := grid(opts.Parallelism, len(rules), func(i int) (DiffAblationRow, error) {
		rule := rules[i]
		cfg := difficulty.SimConfig{
			Alpha:          out.Alpha,
			Gamma:          out.Gamma,
			Rule:           rule,
			TargetRate:     1,
			Epochs:         opts.Runs * 3,
			BlocksPerEpoch: opts.Blocks / 4,
			Seed:           opts.Seed + uint64(rule),
		}
		epochs, err := difficulty.Simulate(cfg)
		if err != nil {
			return DiffAblationRow{}, err
		}
		predicted, err := difficulty.PredictedRewardRate(cfg)
		if err != nil {
			return DiffAblationRow{}, err
		}
		return DiffAblationRow{
			Rule:      rule,
			Steady:    difficulty.SteadyState(epochs),
			Predicted: predicted,
		}, nil
	})
	if err != nil {
		return DiffAblationResult{}, err
	}
	out.Rows = rows
	return out, nil
}

// Table renders the ablation.
func (r DiffAblationResult) Table() *table.Table {
	t := table.New(
		"Difficulty-rule ablation — issuance under selfish mining (alpha=0.35, gamma=0.5, target rate 1)",
		"rule", "regular rate", "uncle rate", "reward rate (sim)", "reward rate (analytic)",
	)
	for _, row := range r.Rows {
		_ = t.AddNumericRow(row.Rule.String(), 4,
			row.Steady.RegularRate, row.Steady.UncleRate,
			row.Steady.RewardRate, row.Predicted)
	}
	return t
}
