package experiments

import (
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// diffAblationAlpha is the attack size of the ablation (the paper's
// Sec. V centerpiece operating point).
const diffAblationAlpha = 0.35

// DiffAblationRow is one difficulty rule's steady state under selfish
// mining, measured by the engine-integrated controller: the simulator
// samples exponential inter-arrivals at the controller's difficulty and
// feeds back every settled block with its actually referenced uncles.
type DiffAblationRow struct {
	Rule difficulty.Rule

	// RegularRate and UncleRate are realized steady-state block rates per
	// unit time (means across runs).
	RegularRate, UncleRate float64

	// RewardRate is the steady-state total issuance rate (static + uncle
	// + nephew rewards per unit time) — the quantity a difficulty rule is
	// supposed to keep bounded — and RewardRateErr its standard error.
	RewardRate, RewardRateErr float64

	// Predicted is the closed-form steady-state reward rate
	// (difficulty.PredictedRewardRate), the oracle the engine loop is
	// cross-validated against.
	Predicted float64
}

// DiffAblationResult is the difficulty-rule ablation: it shows that the
// paper's two normalization scenarios emerge from the two difficulty rules
// closing the loop inside the engine.
type DiffAblationResult struct {
	Alpha, Gamma float64
	Rows         []DiffAblationRow
}

// DiffAblation runs the engine-integrated difficulty loop under both
// adjusting rules at alpha = 0.35, gamma = 0.5. Every (rule × run) work
// item is scheduled on the experiment engine; steady-state rates are read
// from each run's trailing-half window, where the controller has converged.
func DiffAblation(opts Options) (DiffAblationResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return DiffAblationResult{}, err
	}
	out := DiffAblationResult{Alpha: diffAblationAlpha, Gamma: fig8Gamma}
	rules := []difficulty.Rule{difficulty.BitcoinStyle, difficulty.EIP100}
	jobs := make([]simJob, len(rules))
	for i, rule := range rules {
		rule := rule
		jobs[i] = simJob{alpha: out.Alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{
				Gamma: out.Gamma,
				Time: sim.TimeConfig{
					Enabled:    true,
					Difficulty: difficulty.Params{Rule: rule},
				},
			}
		}}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return DiffAblationResult{}, err
	}
	for i, rule := range rules {
		predicted, err := difficulty.PredictedRewardRate(rule, 1, out.Alpha, out.Gamma, rewards.Ethereum())
		if err != nil {
			return DiffAblationResult{}, err
		}
		reward := series[i].Mean(func(r *sim.Result) float64 { return r.Steady.TotalRate() })
		out.Rows = append(out.Rows, DiffAblationRow{
			Rule:          rule,
			RegularRate:   series[i].Mean(func(r *sim.Result) float64 { return r.Steady.RegularRate() }).Mean(),
			UncleRate:     series[i].Mean(func(r *sim.Result) float64 { return r.Steady.UncleRate() }).Mean(),
			RewardRate:    reward.Mean(),
			RewardRateErr: reward.StdErr(),
			Predicted:     predicted,
		})
	}
	return out, nil
}

// Table renders the ablation.
func (r DiffAblationResult) Table() *table.Table {
	t := table.New(
		"Difficulty-rule ablation — engine-integrated controller steady state (alpha=0.35, gamma=0.5, target rate 1)",
		"rule", "regular rate", "uncle rate", "reward rate (sim)", "err", "reward rate (analytic)",
	)
	for _, row := range r.Rows {
		_ = t.AddNumericRow(row.Rule.String(), 4,
			row.RegularRate, row.UncleRate,
			row.RewardRate, row.RewardRateErr, row.Predicted)
	}
	return t
}
