package experiments

import (
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/table"
)

// SecVIRow compares the profitability thresholds before and after the
// Sec. VI uncle-reward redesign (flat Ku = 4/8 within distance 6).
type SecVIRow struct {
	Scenario   core.Scenario
	Ethereum   float64 // threshold under Ku(.) = (8-l)/8
	Redesigned float64 // threshold under flat Ku = 4/8
}

// SecVIResult reproduces the Sec. VI threshold comparison at gamma = 0.5:
// 0.054 -> 0.163 (scenario 1) and 0.270 -> 0.356 (scenario 2).
type SecVIResult struct {
	Rows []SecVIRow
}

// SecVI computes the redesign comparison, solving the two scenarios'
// threshold searches on the experiment engine. The driver is analytic:
// only opts.Parallelism is used (simulation effort does not apply).
func SecVI(opts Options) (SecVIResult, error) {
	if err := opts.validate(); err != nil {
		return SecVIResult{}, err
	}
	flat, err := rewards.Constant(0.5, rewards.EthereumMaxUncleDepth)
	if err != nil {
		return SecVIResult{}, err
	}
	scenarios := []core.Scenario{core.Scenario1, core.Scenario2}
	rows, err := grid(opts.Parallelism, len(scenarios), func(i int) (SecVIRow, error) {
		scenario := scenarios[i]
		eth, err := core.Threshold(core.ThresholdParams{
			Gamma:    fig8Gamma,
			Scenario: scenario,
		})
		if err != nil {
			return SecVIRow{}, err
		}
		redesigned, err := core.Threshold(core.ThresholdParams{
			Gamma:    fig8Gamma,
			Schedule: flat,
			Scenario: scenario,
		})
		if err != nil {
			return SecVIRow{}, err
		}
		return SecVIRow{
			Scenario:   scenario,
			Ethereum:   eth,
			Redesigned: redesigned,
		}, nil
	})
	if err != nil {
		return SecVIResult{}, err
	}
	return SecVIResult{Rows: rows}, nil
}

// Table renders the comparison.
func (r SecVIResult) Table() *table.Table {
	t := table.New(
		"Sec. VI — Thresholds under the uncle-reward redesign (gamma=0.5)",
		"scenario", "Ku(.) threshold", "flat Ku=4/8 threshold",
	)
	for _, row := range r.Rows {
		_ = t.AddNumericRow(row.Scenario.String(), 3, row.Ethereum, row.Redesigned)
	}
	return t
}
