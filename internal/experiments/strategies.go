package experiments

import (
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// strategyAlphas is the hash-power sweep for the strategy comparison.
var strategyAlphas = []float64{0.15, 0.25, 0.35, 0.45}

// defaultStrategySpecs is the comparison run when the caller names no
// specs: Algorithm 1 against an honest control, early-committing variants,
// and the lead-stubborn point of the parametric stubborn family.
func defaultStrategySpecs() []sim.StrategySpec {
	return []sim.StrategySpec{
		sim.MustStrategySpec("honest"),
		sim.MustStrategySpec("algorithm1"),
		sim.MustStrategySpec("eager-publish:lead=2"),
		sim.MustStrategySpec("eager-publish:lead=4"),
		sim.MustStrategySpec("stubborn:lead=1"),
	}
}

// StrategiesRow is one alpha point of the strategy comparison: simulated
// scenario-1 pool revenue per strategy.
type StrategiesRow struct {
	Alpha float64

	// Revenue is indexed like StrategiesResult.Names.
	Revenue []float64
}

// StrategiesResult is the mining-strategy comparison — the paper's stated
// future work ("the design of new mining strategies"), evaluated on the
// simulator over registry specs.
type StrategiesResult struct {
	Names []string
	Rows  []StrategiesRow
}

// Strategies runs the comparison at gamma = 0.5, scheduling the full
// alpha × strategy × run grid on the experiment engine. The compared
// strategies are named by registry specs; with none given it runs the
// default panel (honest, algorithm1, eager-publish leads 2 and 4,
// stubborn:lead=1).
func Strategies(opts Options, specs ...sim.StrategySpec) (StrategiesResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return StrategiesResult{}, err
	}
	if len(specs) == 0 {
		specs = defaultStrategySpecs()
	}
	var out StrategiesResult
	for _, spec := range specs {
		out.Names = append(out.Names, spec.String())
	}

	// One grid point per (alpha, variant) pair, in row-major order. All
	// variants at one alpha share the point's seed family, so the
	// comparison is paired: every strategy faces the same event streams.
	jobs := make([]simJob, 0, len(strategyAlphas)*len(specs))
	for _, alpha := range strategyAlphas {
		for _, spec := range specs {
			jobs = append(jobs, simJob{
				alpha: alpha,
				specs: []sim.StrategySpec{spec},
				build: func(*mining.Population) sim.Config {
					return sim.Config{Gamma: fig8Gamma}
				},
			})
		}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return StrategiesResult{}, err
	}
	for i, alpha := range strategyAlphas {
		row := StrategiesRow{Alpha: alpha}
		for j := range specs {
			acc := series[i*len(specs)+j].PoolAbsolute(core.Scenario1)
			row.Revenue = append(row.Revenue, acc.Mean())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Best returns the winning strategy name at the given row.
func (r StrategiesResult) Best(row int) string {
	best := 0
	for i, revenue := range r.Rows[row].Revenue {
		if revenue > r.Rows[row].Revenue[best] {
			best = i
		}
	}
	return r.Names[best]
}

// Table renders the comparison.
func (r StrategiesResult) Table() *table.Table {
	headers := append([]string{"alpha"}, r.Names...)
	t := table.New(
		"Strategy comparison — simulated pool revenue (gamma=0.5, scenario 1)",
		headers...,
	)
	for _, row := range r.Rows {
		_ = t.AddNumericRow(formatAlpha(row.Alpha), 4, row.Revenue...)
	}
	return t
}
