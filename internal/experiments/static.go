package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/table"
)

// Table1 reproduces Table I: the reward types of Ethereum and Bitcoin.
// The content is definitional; it is included so every paper artifact has a
// regenerating command.
func Table1() *table.Table {
	t := table.New(
		"Table I — Mining rewards in Ethereum and Bitcoin",
		"reward", "ethereum", "bitcoin", "purpose",
	)
	rows := [][4]string{
		{"Static Reward", "yes", "yes", "Compensate for miners' mining cost"},
		{"Uncle Reward", "yes", "no", "Reduce centralization trend of mining"},
		{"Nephew Reward", "yes", "no", "Encourage miners to reference uncle blocks"},
		{"Transaction Fee (Gas Cost)", "yes", "yes", "Transaction execution; resist network attack"},
	}
	for _, row := range rows {
		_ = t.AddRow(row[0], row[1], row[2], row[3])
	}
	return t
}

// Fig6 reproduces Fig. 6: the 2018 pool hash-power snapshot.
func Fig6() *table.Table {
	t := table.New(
		"Fig. 6 — Top mining pools' hash power in Ethereum (2018-09)",
		"pool", "share",
	)
	for _, pool := range mining.Ethereum2018Pools() {
		_ = t.AddRow(pool.Name, strconv.FormatFloat(pool.Share*100, 'f', 2, 64)+"%")
	}
	return t
}

// Fig7 dumps the structure of the selfish-mining Markov chain (the diagram
// of Fig. 7) up to the given lead: every state with its outgoing transition
// probabilities at the supplied alpha and gamma. The driver is analytic:
// only opts.Parallelism is used (simulation effort does not apply).
func Fig7(alpha, gamma float64, maxLead int, opts Options) (*table.Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if maxLead < 4 || maxLead > 64 {
		return nil, fmt.Errorf("%w: maxLead %d out of [4, 64]", ErrBadOptions, maxLead)
	}
	m, err := core.New(core.Params{Alpha: alpha, Gamma: gamma})
	if err != nil {
		return nil, err
	}
	chain := core.BuildChain(alpha, gamma, maxLead)
	states := chain.States()
	sort.Slice(states, func(i, j int) bool {
		if states[i].S != states[j].S {
			return states[i].S < states[j].S
		}
		return states[i].H < states[j].H
	})
	// Per-state rows are independent reads of the solved model, so the
	// experiment engine renders them as one grid.
	rows, err := grid(opts.Parallelism, len(states), func(i int) ([3]string, error) {
		s := states[i]
		var desc string
		for _, succ := range chain.Successors(s) {
			if desc != "" {
				desc += "  "
			}
			desc += fmt.Sprintf("%v:%.3f", succ, chain.Prob(s, succ))
		}
		return [3]string{s.String(), strconv.FormatFloat(m.Pi(s), 'f', 6, 64), desc}, nil
	})
	if err != nil {
		return nil, err
	}
	t := table.New(
		fmt.Sprintf("Fig. 7 — Markov process structure (alpha=%.2f, gamma=%.2f, truncated at lead %d)",
			alpha, gamma, maxLead),
		"state", "pi (closed form)", "transitions",
	)
	for _, row := range rows {
		if err := t.AddRow(row[0], row[1], row[2]); err != nil {
			return nil, err
		}
	}
	return t, nil
}
