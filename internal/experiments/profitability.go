package experiments

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

// The profitability experiment answers the time-domain question the
// block-count experiments cannot: does selfish mining actually *pay*, in
// rewards per second? Relative revenue above alpha only translates into
// absolute profit once difficulty adjustment compresses the time axis —
// Grunspan & Pérez-Marco (arXiv:1904.13330) make this the centerpiece of
// the Ethereum analysis and Ritz & Zugenmaier (arXiv:1805.08832) measure it
// by simulation across the adjustment boundary. The driver sweeps
// (alpha, gamma) under each difficulty regime with the engine-integrated
// controller and reports the pool's absolute reward rate in the window
// before any adjustment (difficulty still at its initial value) and in the
// converged steady state, against the honest-equivalent rate alpha *
// targetRate the pool would earn by following the protocol.

// profitabilityAlphas is the attack-size axis: below, around, and above the
// scenario-2 (EIP100) profitability threshold at gamma = 0.5 (~0.30).
var profitabilityAlphas = []float64{0.20, 0.25, 1.0 / 3, 0.40}

// profitabilityGammas is the tie-breaking axis.
var profitabilityGammas = []float64{0, 0.5, 1}

// ProfitabilityRow is one (rule, gamma, alpha) grid point.
type ProfitabilityRow struct {
	Rule         difficulty.Rule
	Alpha, Gamma float64

	// HonestEquivalent is alpha * targetRate: the absolute reward rate
	// the pool's hash power would earn mining honestly once difficulty
	// holds the all-honest network at the target (with the default
	// initial difficulty 1, also its pre-adjustment honest rate).
	HonestEquivalent float64

	// EarlyRate is the pool's mean absolute reward rate in the window
	// before the first adjustment (the run's first epoch of settled
	// blocks, mined at the initial difficulty); SteadyRate the mean over
	// the converged trailing half. Errs are standard errors across runs.
	EarlyRate, EarlyErr   float64
	SteadyRate, SteadyErr float64

	// FinalDifficulty is the mean converged difficulty — under selfish
	// mining the adjusting rules compress the time axis (difficulty
	// falls below 1) to hold their counted rate at the target.
	FinalDifficulty float64
}

// ProfitableEarly reports whether the pool out-earns honest mining before
// difficulty reacts (it should not, at any alpha: orphaned blocks repay at
// most uncle rewards).
func (r ProfitabilityRow) ProfitableEarly() bool { return r.EarlyRate > r.HonestEquivalent }

// ProfitableSteady reports whether the pool out-earns honest mining in the
// adjusted steady state.
func (r ProfitabilityRow) ProfitableSteady() bool { return r.SteadyRate > r.HonestEquivalent }

// Retargeted reports whether difficulty moved off the initial value 1
// (always false under the static regime).
func (r ProfitabilityRow) Retargeted() bool { return r.FinalDifficulty != 1 }

// ProfitabilityResult is the (rule × gamma × alpha) grid.
type ProfitabilityResult struct {
	// TargetRate is the controllers' counted-block rate target.
	TargetRate float64
	Rows       []ProfitabilityRow
}

// Profitability sweeps the profitability grid under the given difficulty
// rules (default: static, bitcoin-style, and EIP100). Every
// (grid-point × run) work item is scheduled on the experiment engine; grid
// points at the same alpha share per-run seed families, so the event/race
// streams are identical across rules and the rows differ only through the
// time axis — a paired comparison of the difficulty regimes.
func Profitability(opts Options, rules ...difficulty.Rule) (ProfitabilityResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return ProfitabilityResult{}, err
	}
	if len(rules) == 0 {
		rules = difficulty.Rules()
	}

	type point struct {
		rule         difficulty.Rule
		alpha, gamma float64
	}
	var points []point
	var jobs []simJob
	for _, rule := range rules {
		for _, gamma := range profitabilityGammas {
			for _, alpha := range profitabilityAlphas {
				rule, gamma := rule, gamma
				points = append(points, point{rule: rule, alpha: alpha, gamma: gamma})
				jobs = append(jobs, simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
					return sim.Config{
						Gamma: gamma,
						Time: sim.TimeConfig{
							Enabled:    true,
							Difficulty: difficulty.Params{Rule: rule},
						},
					}
				}})
			}
		}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return ProfitabilityResult{}, err
	}

	out := ProfitabilityResult{TargetRate: 1}
	for i, p := range points {
		early := series[i].EarlyRateOf(1)
		steady := series[i].SteadyRateOf(1)
		out.Rows = append(out.Rows, ProfitabilityRow{
			Rule:             p.rule,
			Alpha:            p.alpha,
			Gamma:            p.gamma,
			HonestEquivalent: p.alpha * out.TargetRate,
			EarlyRate:        early.Mean(),
			EarlyErr:         early.StdErr(),
			SteadyRate:       steady.Mean(),
			SteadyErr:        steady.StdErr(),
			FinalDifficulty:  series[i].Mean(func(r *sim.Result) float64 { return r.FinalDifficulty }).Mean(),
		})
	}
	return out, nil
}

// Row returns the grid point for (rule, gamma, alpha), matching alpha and
// gamma exactly.
func (r ProfitabilityResult) Row(rule difficulty.Rule, gamma, alpha float64) (ProfitabilityRow, bool) {
	for _, row := range r.Rows {
		if row.Rule == rule && row.Gamma == gamma && row.Alpha == alpha {
			return row, true
		}
	}
	return ProfitabilityRow{}, false
}

// Crossover returns the smallest swept alpha at which the rule's steady
// state out-earns honest mining at the given gamma, or 0 if none does.
func (r ProfitabilityResult) Crossover(rule difficulty.Rule, gamma float64) float64 {
	for _, alpha := range profitabilityAlphas {
		if row, ok := r.Row(rule, gamma, alpha); ok && row.ProfitableSteady() {
			return row.Alpha
		}
	}
	return 0
}

// Table renders the grid.
func (r ProfitabilityResult) Table() *table.Table {
	t := table.New(
		"Profitability — pool absolute reward rate per unit time vs honest-equivalent (Ethereum schedule, target rate 1)",
		"rule / gamma / alpha", "honest-eq", "early", "early err", "steady", "steady err",
		"final difficulty", "pays early", "pays steady",
	)
	for _, row := range r.Rows {
		label := fmt.Sprintf("%s g=%s a=%s", row.Rule, formatAlpha(row.Gamma), formatAlpha(row.Alpha))
		_ = t.AddRow(label,
			formatRate(row.HonestEquivalent), formatRate(row.EarlyRate), formatRate(row.EarlyErr),
			formatRate(row.SteadyRate), formatRate(row.SteadyErr), formatRate(row.FinalDifficulty),
			yesNo(row.ProfitableEarly()), yesNo(row.ProfitableSteady()))
	}
	return t
}

// formatRate renders one rate cell.
func formatRate(v float64) string { return fmt.Sprintf("%.4f", v) }

// yesNo renders a profitability flag.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
