package experiments

import (
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/stats"
	"github.com/ethselfish/ethselfish/internal/table"
)

// table2Distances is the largest distance Table II tabulates.
const table2Distances = 6

// Table2Column is one alpha column of Table II: the distribution of honest
// uncles' reference distances (1..6, renormalized) with its expectation,
// from both the analysis and the simulator.
type Table2Column struct {
	Alpha    float64
	Analytic stats.Distribution
	Sim      stats.Distribution
}

// Table2Result reproduces Table II (gamma = 0.5, alpha in {0.3, 0.45}).
type Table2Result struct {
	Columns []Table2Column
}

// Table2 computes the honest uncle distance distributions, scheduling the
// alpha × run simulation grid on the experiment engine.
func Table2(opts Options) (Table2Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Table2Result{}, err
	}
	alphas := []float64{0.3, 0.45}
	jobs := make([]simJob, len(alphas))
	for i, alpha := range alphas {
		jobs[i] = simJob{alpha: alpha, build: func(*mining.Population) sim.Config {
			return sim.Config{Gamma: fig8Gamma, Schedule: rewards.Ethereum()}
		}}
	}
	series, err := runSimGrid(opts, jobs)
	if err != nil {
		return Table2Result{}, err
	}
	columns, err := grid(opts.Parallelism, len(alphas), func(i int) (Table2Column, error) {
		alpha := alphas[i]
		m, err := core.New(core.Params{Alpha: alpha, Gamma: fig8Gamma})
		if err != nil {
			return Table2Column{}, err
		}
		return Table2Column{
			Alpha:    alpha,
			Analytic: m.Revenue().HonestUncleDistribution(table2Distances),
			Sim:      series[i].HonestUncleDistribution(table2Distances),
		}, nil
	})
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{Columns: columns}, nil
}

// Table renders Table II with analytic and simulated columns side by side.
func (r Table2Result) Table() *table.Table {
	headers := []string{"referencing distance"}
	for _, col := range r.Columns {
		headers = append(headers,
			"alpha="+formatAlpha(col.Alpha)+" (analytic)",
			"alpha="+formatAlpha(col.Alpha)+" (sim)",
		)
	}
	t := table.New(
		"Table II — Honest miners' uncle distance distribution (gamma=0.5)",
		headers...,
	)
	for d := 1; d <= table2Distances; d++ {
		var values []float64
		for _, col := range r.Columns {
			values = append(values, col.Analytic.P[d-1], col.Sim.P[d-1])
		}
		_ = t.AddNumericRow(formatDistance(d), 3, values...)
	}
	var expectations []float64
	for _, col := range r.Columns {
		expectations = append(expectations, col.Analytic.Mean(), col.Sim.Mean())
	}
	_ = t.AddNumericRow("Expectation", 2, expectations...)
	return t
}

func formatDistance(d int) string {
	return string(rune('0' + d))
}
