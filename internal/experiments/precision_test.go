package experiments

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// precisionTestConfig keeps the study small enough for the test suite while
// still exercising the adaptive loop: a target the cells can actually reach
// at QuickBlocks within MaxRuns.
func precisionTestConfig() (Options, PrecisionConfig) {
	opts := Options{Blocks: QuickBlocks, Seed: 505}
	pc := PrecisionConfig{
		Alphas:       []float64{0.3},
		TargetRadius: 0.0015,
		MaxRuns:      64,
		BatchRuns:    8,
	}
	return opts, pc
}

// TestPrecisionStudy runs the full three-estimator study at one alpha and
// checks its core claims: every estimate brackets the analytic truth, the
// variance-reduced estimators report VRF > 1 and a projected run count no
// worse than plain, and the estimator ordering holds (the whole point of
// the study).
func TestPrecisionStudy(t *testing.T) {
	opts, pc := precisionTestConfig()
	res, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per estimator)", len(res.Rows))
	}
	byEst := make(map[Estimator]PrecisionRow)
	for _, row := range res.Rows {
		byEst[row.Estimator] = row

		// The adaptive loop either met the target or exhausted MaxRuns.
		if row.Radius > pc.TargetRadius && row.Runs < pc.MaxRuns {
			t.Errorf("%v: stopped at %d runs with radius %v above target %v",
				row.Estimator, row.Runs, row.Radius, pc.TargetRadius)
		}
		// The estimate must sit near the closed-form truth; 5x the radius
		// leaves room for the finite-blocks bias at QuickBlocks.
		if math.Abs(row.Estimate-row.Analytic) > 5*row.Radius+0.01 {
			t.Errorf("%v: estimate %v far from analytic %v (radius %v)",
				row.Estimator, row.Estimate, row.Analytic, row.Radius)
		}
		if row.Runs < 2 || row.Runs > pc.MaxRuns {
			t.Errorf("%v: implausible run count %d", row.Estimator, row.Runs)
		}
	}

	plain := byEst[EstimatorPlain]
	if plain.VRF != 1 {
		t.Errorf("plain VRF = %v, want exactly 1", plain.VRF)
	}
	if plain.RunsToTarget != plain.PlainRunsToTarget {
		t.Errorf("plain projections disagree: %d vs %d", plain.RunsToTarget, plain.PlainRunsToTarget)
	}
	for _, est := range []Estimator{EstimatorControlVariate, EstimatorAntithetic} {
		row := byEst[est]
		if row.VRF <= 1 {
			t.Errorf("%v: VRF = %v, want > 1 on the Fig. 8 setting", est, row.VRF)
		}
		if row.RunsToTarget > row.PlainRunsToTarget {
			t.Errorf("%v: projects %d runs, worse than plain's %d",
				est, row.RunsToTarget, row.PlainRunsToTarget)
		}
	}
	// The control variate is the headline reducer here: the event share
	// absorbs the mining-race noise, so it must beat plain's realized cost.
	if cv := byEst[EstimatorControlVariate]; cv.Runs > plain.Runs {
		t.Errorf("control variate consumed %d runs, plain %d", cv.Runs, plain.Runs)
	}
}

// TestPrecisionDeterminism: the study is a pure function of its options.
func TestPrecisionDeterminism(t *testing.T) {
	opts, pc := precisionTestConfig()
	pc.MaxRuns = 16
	pc.TargetRadius = 1e-9 // force every cell to MaxRuns
	a, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical precision studies differ")
	}
	par := opts
	par.Parallelism = 4
	c, err := Precision(par, pc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("precision study differs across parallelism")
	}
}

// TestPrecisionFastForward: the study accepts the fast-forward flag and
// still lands on the analytic truth (the two accelerations compose).
func TestPrecisionFastForward(t *testing.T) {
	opts, pc := precisionTestConfig()
	pc.MaxRuns = 24
	pc.Estimators = []Estimator{EstimatorControlVariate}
	pc.FastForward = true
	res, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if math.Abs(row.Estimate-row.Analytic) > 5*row.Radius+0.01 {
		t.Errorf("fast-forward estimate %v far from analytic %v (radius %v)",
			row.Estimate, row.Analytic, row.Radius)
	}
}

// TestPrecisionValidation pins option errors and estimator parsing.
func TestPrecisionValidation(t *testing.T) {
	opts, pc := precisionTestConfig()
	bad := pc
	bad.Alphas = []float64{0.6}
	if _, err := Precision(opts, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("alpha 0.6: err = %v, want ErrBadOptions", err)
	}
	bad = pc
	bad.MaxRuns = 2
	if _, err := Precision(opts, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("MaxRuns 2: err = %v, want ErrBadOptions", err)
	}
	bad = pc
	bad.Level = 1.5
	if _, err := Precision(opts, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("level 1.5: err = %v, want ErrBadOptions", err)
	}

	for _, name := range []string{"plain", "control-variate", "cv", "antithetic"} {
		if _, err := ParseEstimator(name); err != nil {
			t.Errorf("ParseEstimator(%q): %v", name, err)
		}
	}
	if _, err := ParseEstimator("bogus"); !errors.Is(err, ErrBadOptions) {
		t.Errorf("ParseEstimator(bogus): err = %v, want ErrBadOptions", err)
	}
	for _, est := range allEstimators() {
		parsed, err := ParseEstimator(est.String())
		if err != nil || parsed != est {
			t.Errorf("round trip %v: got %v, err %v", est, parsed, err)
		}
	}
}

// TestPrecisionTable: the renderer names every estimator and the target.
func TestPrecisionTable(t *testing.T) {
	opts, pc := precisionTestConfig()
	pc.MaxRuns = 8
	pc.TargetRadius = 0.05 // one batch suffices
	res, err := Precision(opts, pc)
	if err != nil {
		t.Fatal(err)
	}
	rendered := res.Table().String()
	for _, want := range []string{"plain", "control-variate", "antithetic", "runs-to-target"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("table missing %q:\n%s", want, rendered)
		}
	}
}
