package stats

import (
	"math"
)

// This file is the variance-reduction toolkit layered over the plain
// Accumulator: a bivariate Welford accumulator for control-variate
// estimation against a statistic with a known mean, and the runs-to-target
// planning arithmetic shared by the precision harness.

// Paired computes running first and second moments of a bivariate stream
// (y, x) using Welford's algorithm: the estimand y alongside a control
// statistic x whose exact mean is known. The zero value is ready to use.
type Paired struct {
	n     int
	meanY float64
	meanX float64
	m2y   float64
	m2x   float64
	cxy   float64
}

// Add incorporates one paired observation.
func (p *Paired) Add(y, x float64) {
	p.n++
	n := float64(p.n)
	dy := y - p.meanY
	dx := x - p.meanX
	p.meanY += dy / n
	p.meanX += dx / n
	p.m2y += dy * (y - p.meanY)
	p.m2x += dx * (x - p.meanX)
	p.cxy += dx * (y - p.meanY)
}

// N returns the number of paired observations.
func (p Paired) N() int { return p.n }

// MeanY returns the sample mean of the estimand.
func (p Paired) MeanY() float64 { return p.meanY }

// MeanX returns the sample mean of the control statistic.
func (p Paired) MeanX() float64 { return p.meanX }

// VarianceY returns the unbiased sample variance of the estimand, or 0 for
// fewer than two observations.
func (p Paired) VarianceY() float64 {
	if p.n < 2 {
		return 0
	}
	return p.m2y / float64(p.n-1)
}

// VarianceX returns the unbiased sample variance of the control statistic,
// or 0 for fewer than two observations.
func (p Paired) VarianceX() float64 {
	if p.n < 2 {
		return 0
	}
	return p.m2x / float64(p.n-1)
}

// Covariance returns the unbiased sample covariance of the pair, or 0 for
// fewer than two observations.
func (p Paired) Covariance() float64 {
	if p.n < 2 {
		return 0
	}
	return p.cxy / float64(p.n-1)
}

// Correlation returns the sample correlation coefficient, or 0 when either
// marginal is degenerate. The control variate's variance reduction is
// 1/(1-rho^2), so |rho| is the single number that decides whether a control
// is worth pairing with.
func (p Paired) Correlation() float64 {
	vy, vx := p.VarianceY(), p.VarianceX()
	if vy <= 0 || vx <= 0 {
		return 0
	}
	return p.Covariance() / math.Sqrt(vy*vx)
}

// Beta returns the estimated optimal control coefficient Cov(y,x)/Var(x),
// or 0 when the control is degenerate (the estimator then falls back to the
// plain mean).
func (p Paired) Beta() float64 {
	vx := p.VarianceX()
	if vx <= 0 {
		return 0
	}
	return p.Covariance() / vx
}

// ControlVariateMean returns the control-variate point estimate
// meanY - beta*(meanX - mu), where mu is the control's exact mean. The
// estimate stays unbiased up to the O(1/n) term from estimating beta on the
// same sample, which is far below simulation noise at the run counts the
// harness uses.
func (p Paired) ControlVariateMean(mu float64) float64 {
	return p.meanY - p.Beta()*(p.meanX-mu)
}

// ResidualVariance returns the per-observation variance of the
// control-variate estimator, (1 - rho^2) * VarY.
func (p Paired) ResidualVariance() float64 {
	rho := p.Correlation()
	resid := (1 - rho*rho) * p.VarianceY()
	if resid < 0 {
		return 0
	}
	return resid
}

// VarianceReductionFactor returns VarY divided by the residual variance —
// how many plain runs one control-variate run is worth. It returns 1 with a
// degenerate control and +Inf when the control absorbs the variance
// entirely.
func (p Paired) VarianceReductionFactor() float64 {
	vy := p.VarianceY()
	if vy <= 0 {
		return 1
	}
	resid := p.ResidualVariance()
	if resid <= 0 {
		return math.Inf(1)
	}
	return vy / resid
}

// ControlVariateInterval returns a confidence interval for the
// control-variate estimate at the given level. The t critical value uses
// n-2 degrees of freedom (one lost to the mean, one to beta). It returns
// ErrNoData with fewer than three observations.
func (p Paired) ControlVariateInterval(mu, level float64) (Interval, error) {
	if p.n < 3 {
		return Interval{}, ErrNoData
	}
	se := math.Sqrt(p.ResidualVariance() / float64(p.n))
	return Interval{
		Mean:   p.ControlVariateMean(mu),
		Radius: studentT(level, p.n-2) * se,
		Level:  level,
	}, nil
}

// RunsForRadius returns the number of runs needed for a level-confidence
// interval of the given half-width, assuming the per-run standard deviation
// sd: ceil((z*sd/radius)^2), floored at 2 so the answer always admits a
// variance estimate. A non-positive radius returns math.MaxInt (the target
// is unreachable); a non-positive sd returns 2.
func RunsForRadius(sd, level, radius float64) int {
	if sd <= 0 {
		return 2
	}
	if radius <= 0 {
		return math.MaxInt
	}
	z := normalQuantile(0.5 + level/2)
	n := math.Ceil((z * sd / radius) * (z * sd / radius))
	if n < 2 {
		return 2
	}
	if n >= math.MaxInt {
		return math.MaxInt
	}
	return int(n)
}
