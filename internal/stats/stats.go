// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harness: streaming moment accumulators,
// confidence intervals over repeated runs, and discrete distributions.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by reductions over empty samples.
var ErrNoData = errors.New("stats: no data")

// Accumulator computes running mean and variance using Welford's algorithm,
// which is numerically stable for long streams. The zero value is ready to
// use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN incorporates the observation x with multiplicity n.
func (a *Accumulator) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no data.
func (a Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 with no data.
func (a Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no data.
func (a Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance. It returns 0 for fewer than
// two observations.
func (a Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Merge combines another accumulator into a (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean   float64
	Radius float64 // half-width of the interval
	Level  float64 // confidence level, e.g. 0.95
}

// Lo returns the lower bound of the interval.
func (ci Interval) Lo() float64 { return ci.Mean - ci.Radius }

// Hi returns the upper bound of the interval.
func (ci Interval) Hi() float64 { return ci.Mean + ci.Radius }

// Contains reports whether x lies within the interval.
func (ci Interval) Contains(x float64) bool {
	return x >= ci.Lo() && x <= ci.Hi()
}

// String renders the interval as "mean +/- radius".
func (ci Interval) String() string {
	return fmt.Sprintf("%.6g +/- %.3g", ci.Mean, ci.Radius)
}

// ConfidenceInterval returns a confidence interval for the mean at the given
// level using a Student-t critical value. It returns ErrNoData with fewer
// than two observations.
func (a Accumulator) ConfidenceInterval(level float64) (Interval, error) {
	if a.n < 2 {
		return Interval{}, ErrNoData
	}
	tCrit := studentT(level, a.n-1)
	return Interval{
		Mean:   a.mean,
		Radius: tCrit * a.StdErr(),
		Level:  level,
	}, nil
}

// studentT approximates the two-sided Student-t critical value for the given
// confidence level and degrees of freedom, via the normal quantile plus the
// Cornish–Fisher-style expansion (Peiser). Accuracy is better than 1% for
// df >= 3, which is ample for reporting simulation error bars.
func studentT(level float64, df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	z := normalQuantile(0.5 + level/2)
	d := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	t := z +
		(z3+z)/(4*d) +
		(5*z5+16*z3+3*z)/(96*d*d) +
		(3*z7+19*z5+17*z3-15*z)/(384*d*d*d)
	return t
}

// normalQuantile returns the inverse standard normal CDF using the
// Acklam/Wichura-style rational approximation (relative error < 1.2e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Mean returns the arithmetic mean of xs, or ErrNoData when empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
