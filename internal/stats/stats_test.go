package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if !almostEqual(a.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	if _, err := a.ConfidenceInterval(0.95); !errors.Is(err, ErrNoData) {
		t.Errorf("ConfidenceInterval on empty data: err = %v, want ErrNoData", err)
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Errorf("variance of single observation = %v, want 0", a.Variance())
	}
	if _, err := a.ConfidenceInterval(0.95); !errors.Is(err, ErrNoData) {
		t.Errorf("ConfidenceInterval with one point: err = %v, want ErrNoData", err)
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Error("AddN disagrees with repeated Add")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 8, -1, 4.5, 2}
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var left, right Accumulator
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, left.N(), whole.N())
		}
		if !almostEqual(left.Mean(), whole.Mean(), 1e-12) {
			t.Errorf("split %d: Mean = %v, want %v", split, left.Mean(), whole.Mean())
		}
		if !almostEqual(left.Variance(), whole.Variance(), 1e-12) {
			t.Errorf("split %d: Variance = %v, want %v", split, left.Variance(), whole.Variance())
		}
		if left.Min() != whole.Min() || left.Max() != whole.Max() {
			t.Errorf("split %d: Min/Max mismatch", split)
		}
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	// Inputs with magnitudes near MaxFloat64 overflow any variance
	// algorithm; restrict to a physically plausible range.
	ok := func(x float64) bool {
		return !math.IsNaN(x) && math.Abs(x) < 1e100
	}
	f := func(xs, ys []float64) bool {
		var merged, whole, b Accumulator
		for _, x := range xs {
			if !ok(x) {
				return true
			}
			merged.Add(x)
			whole.Add(x)
		}
		for _, y := range ys {
			if !ok(y) {
				return true
			}
			b.Add(y)
			whole.Add(y)
		}
		merged.Merge(&b)
		if merged.N() != whole.N() {
			return false
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return almostEqual(merged.Mean(), whole.Mean(), 1e-9*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// For normal-ish data the 95% CI of the mean should contain the true
	// mean. Deterministic construction: symmetric values around 10.
	var a Accumulator
	for i := -50; i <= 50; i++ {
		a.Add(10 + float64(i)/10)
	}
	ci, err := a.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(10) {
		t.Errorf("interval %v does not contain the true mean 10", ci)
	}
	if ci.Radius <= 0 {
		t.Errorf("radius = %v, want > 0", ci.Radius)
	}
	if ci.Lo() >= ci.Hi() {
		t.Errorf("degenerate interval [%v, %v]", ci.Lo(), ci.Hi())
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Reference critical values from standard t tables.
	tests := []struct {
		level float64
		df    int
		want  float64
		tol   float64
	}{
		{0.95, 9, 2.262, 0.01},
		{0.95, 30, 2.042, 0.01},
		{0.99, 9, 3.250, 0.03},
		{0.90, 20, 1.725, 0.01},
	}
	for _, tt := range tests {
		got := studentT(tt.level, tt.df)
		if !almostEqual(got, tt.want, tt.tol) {
			t.Errorf("studentT(%v, %d) = %v, want %v +/- %v",
				tt.level, tt.df, got, tt.want, tt.tol)
		}
	}
}

func TestStudentTLargeDFApproachesNormal(t *testing.T) {
	if got := studentT(0.95, 100000); !almostEqual(got, 1.95996, 1e-3) {
		t.Errorf("studentT(0.95, 1e5) = %v, want ~1.96", got)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // Phi(1) ~ 0.841345
	}
	for _, tt := range tests {
		got := normalQuantile(tt.p)
		if !almostEqual(got, tt.want, 1e-4) {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("normalQuantile should return infinities at 0 and 1")
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Errorf("Mean = %v, %v; want 2.5, nil", got, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Mean(nil): err = %v, want ErrNoData", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 9},
		{0.5, 3.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Error("Quantile(nil) should return ErrNoData")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) should fail")
	}
	// Input must not be mutated.
	if xs[0] != 3 || xs[5] != 9 {
		t.Error("Quantile mutated its input")
	}
}

func TestIntervalString(t *testing.T) {
	ci := Interval{Mean: 0.5, Radius: 0.01, Level: 0.95}
	if got := ci.String(); got != "0.5 +/- 0.01" {
		t.Errorf("String() = %q", got)
	}
}
