package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter tallies occurrences of small non-negative integer outcomes, such
// as uncle reference distances. The zero value is ready to use.
type Counter struct {
	counts map[int]int64
	total  int64
}

// Observe records one occurrence of outcome k.
func (c *Counter) Observe(k int) { c.ObserveN(k, 1) }

// ObserveN records n occurrences of outcome k.
func (c *Counter) ObserveN(k int, n int64) {
	if n == 0 {
		return
	}
	if c.counts == nil {
		c.counts = make(map[int]int64)
	}
	c.counts[k] += n
	c.total += n
}

// Total returns the number of recorded observations.
func (c *Counter) Total() int64 { return c.total }

// Count returns the number of occurrences of outcome k.
func (c *Counter) Count(k int) int64 { return c.counts[k] }

// Probability returns the empirical probability of outcome k.
func (c *Counter) Probability(k int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[k]) / float64(c.total)
}

// Outcomes returns the observed outcomes in increasing order.
func (c *Counter) Outcomes() []int {
	keys := make([]int, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the expectation of the empirical distribution.
func (c *Counter) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	for k, n := range c.counts {
		sum += float64(k) * float64(n)
	}
	return sum / float64(c.total)
}

// Distribution returns the normalized probability mass over outcomes
// 1..max inclusive, renormalized to sum to one over that range (outcomes
// outside the range are dropped). This mirrors how the paper reports
// Table II: distances 1-6 normalized over observed uncles in that range.
func (c *Counter) Distribution(max int) Distribution {
	d := Distribution{P: make([]float64, max)}
	var inRange int64
	for k, n := range c.counts {
		if k >= 1 && k <= max {
			inRange += n
		}
	}
	if inRange == 0 {
		return d
	}
	for k, n := range c.counts {
		if k >= 1 && k <= max {
			d.P[k-1] = float64(n) / float64(inRange)
		}
	}
	return d
}

// Merge combines another counter into c.
func (c *Counter) Merge(other *Counter) {
	for k, n := range other.counts {
		c.ObserveN(k, n)
	}
}

// MarshalJSON encodes the counter as [[outcome, count], ...] sorted by
// outcome, or null for the zero counter. The encoding round-trips exactly:
// a decoded counter is reflect.DeepEqual to the original, which the
// experiments checkpoint journal relies on for bit-identical resume.
func (c Counter) MarshalJSON() ([]byte, error) {
	if c.counts == nil {
		return []byte("null"), nil
	}
	pairs := make([][2]int64, 0, len(c.counts))
	for _, k := range c.Outcomes() {
		pairs = append(pairs, [2]int64{int64(k), c.counts[k]})
	}
	return json.Marshal(pairs)
}

// UnmarshalJSON decodes the MarshalJSON form, rejecting zero counts and
// duplicate outcomes (which could not have been produced by observations).
func (c *Counter) UnmarshalJSON(data []byte) error {
	*c = Counter{}
	var pairs [][2]int64
	if err := json.Unmarshal(data, &pairs); err != nil {
		return fmt.Errorf("stats: decoding counter: %w", err)
	}
	if pairs == nil {
		return nil
	}
	c.counts = make(map[int]int64, len(pairs))
	for _, p := range pairs {
		k, n := int(p[0]), p[1]
		if n <= 0 {
			return fmt.Errorf("stats: counter outcome %d has non-positive count %d", k, n)
		}
		if _, dup := c.counts[k]; dup {
			return fmt.Errorf("stats: counter outcome %d duplicated", k)
		}
		c.counts[k] = n
		c.total += n
	}
	return nil
}

// Distribution is a probability mass function over outcomes 1..len(P),
// with P[k-1] the probability of outcome k.
type Distribution struct {
	P []float64
}

// Mean returns the expectation of the distribution.
func (d Distribution) Mean() float64 {
	var sum float64
	for i, p := range d.P {
		sum += float64(i+1) * p
	}
	return sum
}

// Sum returns the total probability mass (1 for a proper distribution).
func (d Distribution) Sum() float64 {
	var sum float64
	for _, p := range d.P {
		sum += p
	}
	return sum
}

// Normalize returns a copy scaled so the mass sums to one. A zero-mass
// distribution is returned unchanged.
func (d Distribution) Normalize() Distribution {
	total := d.Sum()
	out := Distribution{P: make([]float64, len(d.P))}
	if total == 0 {
		copy(out.P, d.P)
		return out
	}
	for i, p := range d.P {
		out.P[i] = p / total
	}
	return out
}

// TotalVariation returns the total-variation distance to another
// distribution, 0.5 * sum |p_i - q_i|, padding the shorter with zeros.
func (d Distribution) TotalVariation(other Distribution) float64 {
	n := len(d.P)
	if len(other.P) > n {
		n = len(other.P)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var p, q float64
		if i < len(d.P) {
			p = d.P[i]
		}
		if i < len(other.P) {
			q = other.P[i]
		}
		diff := p - q
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum / 2
}

// String renders the distribution compactly, e.g. "[1:0.527 2:0.295 ...]".
func (d Distribution) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range d.P {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", i+1, p)
	}
	b.WriteByte(']')
	return b.String()
}
