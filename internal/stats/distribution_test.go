package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Observe(1)
	c.Observe(1)
	c.Observe(2)
	c.ObserveN(3, 2)

	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	if c.Count(1) != 2 || c.Count(2) != 1 || c.Count(3) != 2 {
		t.Errorf("counts = %d/%d/%d, want 2/1/2", c.Count(1), c.Count(2), c.Count(3))
	}
	if got := c.Probability(1); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("Probability(1) = %v, want 0.4", got)
	}
	if got := c.Probability(99); got != 0 {
		t.Errorf("Probability(99) = %v, want 0", got)
	}
	wantMean := (1.0*2 + 2.0*1 + 3.0*2) / 5
	if got := c.Mean(); !almostEqual(got, wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
}

func TestCounterEmpty(t *testing.T) {
	var c Counter
	if c.Total() != 0 || c.Mean() != 0 || c.Probability(1) != 0 {
		t.Error("empty counter should report zeros")
	}
	d := c.Distribution(6)
	if d.Sum() != 0 {
		t.Errorf("empty distribution sum = %v, want 0", d.Sum())
	}
}

func TestCounterOutcomesSorted(t *testing.T) {
	var c Counter
	for _, k := range []int{5, 1, 3, 1, 5, 2} {
		c.Observe(k)
	}
	got := c.Outcomes()
	want := []int{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Outcomes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Outcomes = %v, want %v", got, want)
		}
	}
}

func TestCounterDistributionRenormalizes(t *testing.T) {
	var c Counter
	c.ObserveN(1, 3)
	c.ObserveN(2, 1)
	c.ObserveN(10, 6) // outside the 1..6 window

	d := c.Distribution(6)
	if !almostEqual(d.Sum(), 1, 1e-12) {
		t.Fatalf("Sum = %v, want 1", d.Sum())
	}
	if !almostEqual(d.P[0], 0.75, 1e-12) || !almostEqual(d.P[1], 0.25, 1e-12) {
		t.Errorf("P = %v, want [0.75 0.25 0 0 0 0]", d.P)
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.ObserveN(1, 2)
	b.ObserveN(1, 3)
	b.ObserveN(4, 1)
	a.Merge(&b)
	if a.Total() != 6 || a.Count(1) != 5 || a.Count(4) != 1 {
		t.Errorf("merged counter: total %d, count(1) %d, count(4) %d",
			a.Total(), a.Count(1), a.Count(4))
	}
}

func TestDistributionMean(t *testing.T) {
	d := Distribution{P: []float64{0.5, 0.25, 0.25}}
	want := 1*0.5 + 2*0.25 + 3*0.25
	if got := d.Mean(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestDistributionNormalize(t *testing.T) {
	d := Distribution{P: []float64{2, 1, 1}}
	n := d.Normalize()
	if !almostEqual(n.Sum(), 1, 1e-12) {
		t.Errorf("normalized sum = %v", n.Sum())
	}
	if !almostEqual(n.P[0], 0.5, 1e-12) {
		t.Errorf("P[0] = %v, want 0.5", n.P[0])
	}
	// Original must be untouched.
	if d.P[0] != 2 {
		t.Error("Normalize mutated the receiver")
	}
	zero := Distribution{P: []float64{0, 0}}
	if got := zero.Normalize().Sum(); got != 0 {
		t.Errorf("zero-mass normalize sum = %v, want 0", got)
	}
}

func TestTotalVariation(t *testing.T) {
	a := Distribution{P: []float64{1, 0}}
	b := Distribution{P: []float64{0, 1}}
	if got := a.TotalVariation(b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TV(disjoint) = %v, want 1", got)
	}
	if got := a.TotalVariation(a); got != 0 {
		t.Errorf("TV(self) = %v, want 0", got)
	}
	// Different lengths pad with zeros.
	c := Distribution{P: []float64{0.5, 0.5}}
	d := Distribution{P: []float64{0.5, 0.25, 0.25}}
	if got := c.TotalVariation(d); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("TV(padded) = %v, want 0.25", got)
	}
}

func TestTotalVariationProperties(t *testing.T) {
	// TV is symmetric and within [0, 1] for probability vectors.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		p := makeDist(raw[:half])
		q := makeDist(raw[half:])
		if p.Sum() == 0 || q.Sum() == 0 {
			return true
		}
		tv1 := p.TotalVariation(q)
		tv2 := q.TotalVariation(p)
		return almostEqual(tv1, tv2, 1e-12) && tv1 >= -1e-12 && tv1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func makeDist(raw []float64) Distribution {
	p := make([]float64, len(raw))
	for i, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		p[i] = math.Abs(x)
	}
	return Distribution{P: p}.Normalize()
}

func TestDistributionString(t *testing.T) {
	d := Distribution{P: []float64{0.5, 0.5}}
	if got, want := d.String(), "[1:0.500 2:0.500]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
