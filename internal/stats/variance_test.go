package stats

import (
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rng"
)

// TestPairedMatchesTwoPass pins the streaming moments against a naive
// two-pass computation on a correlated synthetic stream.
func TestPairedMatchesTwoPass(t *testing.T) {
	r := rng.New(41)
	const n = 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	var p Paired
	for i := range xs {
		x := r.Float64()
		y := 2*x + 0.3*r.Float64() // strongly correlated
		xs[i] = x
		ys[i] = y
		p.Add(y, x)
	}

	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	mx, my := mean(xs), mean(ys)
	var vx, vy, cxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		vx += dx * dx
		vy += dy * dy
		cxy += dx * dy
	}
	vx /= float64(n - 1)
	vy /= float64(n - 1)
	cxy /= float64(n - 1)

	close := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: streaming %v vs two-pass %v", name, got, want)
		}
	}
	close("meanX", p.MeanX(), mx)
	close("meanY", p.MeanY(), my)
	close("varX", p.VarianceX(), vx)
	close("varY", p.VarianceY(), vy)
	close("cov", p.Covariance(), cxy)
	close("beta", p.Beta(), cxy/vx)
	close("rho", p.Correlation(), cxy/math.Sqrt(vx*vy))
	if p.N() != n {
		t.Errorf("N = %d, want %d", p.N(), n)
	}
}

// TestControlVariateReducesVariance checks the estimator on the textbook
// setup: y = x + noise with E[x] known exactly. The control-variate mean
// must land closer to the truth than the plain mean on average, and the
// reported variance reduction factor must match 1/(1-rho^2).
func TestControlVariateReducesVariance(t *testing.T) {
	r := rng.New(42)
	const (
		mu    = 0.5 // exact mean of x ~ U(0,1)
		truth = 1.0 // E[y] = E[x] + 0.5
	)
	var p Paired
	for i := 0; i < 500; i++ {
		x := r.Float64()
		y := x + 0.5 + 0.05*(r.Float64()-0.5)
		p.Add(y, x)
	}

	rho := p.Correlation()
	wantVRF := 1 / (1 - rho*rho)
	if vrf := p.VarianceReductionFactor(); math.Abs(vrf-wantVRF) > 1e-9*wantVRF {
		t.Errorf("VRF %v, want 1/(1-rho^2) = %v", vrf, wantVRF)
	}
	if vrf := p.VarianceReductionFactor(); vrf < 10 {
		t.Errorf("VRF %v on a near-deterministic control; want large", vrf)
	}

	cv := p.ControlVariateMean(mu)
	plainErr := math.Abs(p.MeanY() - truth)
	cvErr := math.Abs(cv - truth)
	if cvErr > plainErr {
		t.Errorf("control variate error %v exceeds plain error %v", cvErr, plainErr)
	}

	ci, err := p.ControlVariateInterval(mu, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(truth) {
		t.Errorf("interval %v does not contain the truth %v", ci, truth)
	}
	plainSE := math.Sqrt(p.VarianceY() / float64(p.N()))
	if ci.Radius >= studentT(0.95, p.N()-1)*plainSE {
		t.Errorf("control-variate radius %v not below plain radius %v",
			ci.Radius, studentT(0.95, p.N()-1)*plainSE)
	}
}

// TestPairedDegenerateControl: a constant control must fall back to the
// plain mean with no variance reduction claimed.
func TestPairedDegenerateControl(t *testing.T) {
	r := rng.New(43)
	var p Paired
	for i := 0; i < 100; i++ {
		p.Add(r.Float64(), 0.25)
	}
	if beta := p.Beta(); beta != 0 {
		t.Errorf("Beta = %v on a constant control, want 0", beta)
	}
	if cv := p.ControlVariateMean(0.25); cv != p.MeanY() {
		t.Errorf("ControlVariateMean %v, want plain mean %v", cv, p.MeanY())
	}
	if vrf := p.VarianceReductionFactor(); vrf != 1 {
		t.Errorf("VRF = %v on a constant control, want 1", vrf)
	}
	if rho := p.Correlation(); rho != 0 {
		t.Errorf("Correlation = %v on a constant control, want 0", rho)
	}
}

// TestPairedPerfectControl: y == x absorbs the variance entirely.
func TestPairedPerfectControl(t *testing.T) {
	r := rng.New(44)
	var p Paired
	for i := 0; i < 100; i++ {
		x := r.Float64()
		p.Add(x, x)
	}
	if vrf := p.VarianceReductionFactor(); !math.IsInf(vrf, 1) {
		t.Errorf("VRF = %v on a perfect control, want +Inf", vrf)
	}
	if cv := p.ControlVariateMean(0.5); math.Abs(cv-0.5) > 1e-12 {
		t.Errorf("ControlVariateMean %v, want the exact mean 0.5", cv)
	}
	if resid := p.ResidualVariance(); resid < 0 || resid > 1e-12 {
		t.Errorf("ResidualVariance = %v, want ~0", resid)
	}
}

// TestPairedEmptyAndSmall pins the guard rails at low counts.
func TestPairedEmptyAndSmall(t *testing.T) {
	var p Paired
	if p.VarianceY() != 0 || p.VarianceX() != 0 || p.Covariance() != 0 {
		t.Error("zero-value Paired reports nonzero moments")
	}
	if _, err := p.ControlVariateInterval(0, 0.95); err != ErrNoData {
		t.Errorf("interval on empty pair: err = %v, want ErrNoData", err)
	}
	p.Add(1, 2)
	p.Add(3, 4)
	if _, err := p.ControlVariateInterval(0, 0.95); err != ErrNoData {
		t.Errorf("interval with n=2: err = %v, want ErrNoData", err)
	}
	p.Add(5, 6)
	if _, err := p.ControlVariateInterval(0, 0.95); err != nil {
		t.Errorf("interval with n=3: err = %v", err)
	}
}

// TestRunsForRadius pins the planning arithmetic.
func TestRunsForRadius(t *testing.T) {
	// z(0.95) ~ 1.959964; sd=1, radius=0.1 -> ceil(384.15) = 385.
	if n := RunsForRadius(1, 0.95, 0.1); n != 385 {
		t.Errorf("RunsForRadius(1, 0.95, 0.1) = %d, want 385", n)
	}
	// Quadrupling the radius divides the runs by ~16.
	if n := RunsForRadius(1, 0.95, 0.4); n != 25 {
		t.Errorf("RunsForRadius(1, 0.95, 0.4) = %d, want 25", n)
	}
	if n := RunsForRadius(0, 0.95, 0.1); n != 2 {
		t.Errorf("zero sd: %d, want 2", n)
	}
	if n := RunsForRadius(1e-12, 0.95, 1e6); n != 2 {
		t.Errorf("tiny requirement: %d, want the floor 2", n)
	}
	if n := RunsForRadius(1, 0.95, 0); n != math.MaxInt {
		t.Errorf("zero radius: %d, want MaxInt", n)
	}
}
