// Package markov implements a sparse discrete-time Markov chain engine with
// stationary-distribution solvers.
//
// The paper's 2-D selfish-mining process is a uniformized continuous-time
// chain: every transition corresponds to one block-creation event and the
// total event rate is 1 everywhere, so stationary probabilities of the
// embedded discrete chain equal the continuous-time occupancy. The engine is
// deliberately generic (any comparable state type) so the same machinery
// drives the paper's chain, the Eyal-Sirer baseline, and the small chains
// used in tests.
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Default solver parameters.
const (
	// DefaultTolerance is the L1 convergence threshold for the iterative
	// solver.
	DefaultTolerance = 1e-13

	// DefaultMaxIterations bounds the iterative solver.
	DefaultMaxIterations = 200000

	// denseLimit is the largest state count solved by dense elimination
	// when no method is forced.
	denseLimit = 400

	// rowSumTolerance is the allowed deviation of outgoing probability
	// mass from 1 during validation.
	rowSumTolerance = 1e-9
)

// Errors reported by the solvers.
var (
	// ErrEmptyChain is returned when no states have been added.
	ErrEmptyChain = errors.New("markov: chain has no states")

	// ErrNotStochastic is returned when some row's outgoing probability
	// mass is not 1.
	ErrNotStochastic = errors.New("markov: transition probabilities do not sum to 1")

	// ErrReducible is returned when the chain is not irreducible, so the
	// stationary distribution is not unique.
	ErrReducible = errors.New("markov: chain is not irreducible")

	// ErrNoConvergence is returned when the iterative solver does not
	// reach the tolerance within the iteration budget.
	ErrNoConvergence = errors.New("markov: iteration did not converge")
)

type edge struct {
	to int
	p  float64
}

// Chain is a discrete-time Markov chain over states of type S. The zero
// value is not usable; construct with New.
type Chain[S comparable] struct {
	index map[S]int
	state []S
	out   [][]edge
}

// New returns an empty chain.
func New[S comparable]() *Chain[S] {
	return &Chain[S]{index: make(map[S]int)}
}

// AddState ensures s is a state of the chain and returns its dense index.
func (c *Chain[S]) AddState(s S) int {
	if i, seen := c.index[s]; seen {
		return i
	}
	i := len(c.state)
	c.index[s] = i
	c.state = append(c.state, s)
	c.out = append(c.out, nil)
	return i
}

// AddTransition adds probability mass p to the transition from one state to
// another, creating states as needed. Repeated calls for the same pair
// accumulate. Non-positive mass is ignored.
func (c *Chain[S]) AddTransition(from, to S, p float64) {
	if p <= 0 {
		return
	}
	fi := c.AddState(from)
	ti := c.AddState(to)
	for k := range c.out[fi] {
		if c.out[fi][k].to == ti {
			c.out[fi][k].p += p
			return
		}
	}
	c.out[fi] = append(c.out[fi], edge{to: ti, p: p})
}

// Len returns the number of states.
func (c *Chain[S]) Len() int { return len(c.state) }

// States returns a copy of the state list in insertion order.
func (c *Chain[S]) States() []S {
	out := make([]S, len(c.state))
	copy(out, c.state)
	return out
}

// Contains reports whether s is a state of the chain.
func (c *Chain[S]) Contains(s S) bool {
	_, seen := c.index[s]
	return seen
}

// Prob returns the one-step transition probability from one state to
// another, or 0 when either state is unknown.
func (c *Chain[S]) Prob(from, to S) float64 {
	fi, seenFrom := c.index[from]
	ti, seenTo := c.index[to]
	if !seenFrom || !seenTo {
		return 0
	}
	for _, e := range c.out[fi] {
		if e.to == ti {
			return e.p
		}
	}
	return 0
}

// Successors returns the states reachable in one step from s with positive
// probability, in a deterministic order.
func (c *Chain[S]) Successors(s S) []S {
	fi, seen := c.index[s]
	if !seen {
		return nil
	}
	succ := make([]S, 0, len(c.out[fi]))
	idx := make([]int, 0, len(c.out[fi]))
	for _, e := range c.out[fi] {
		idx = append(idx, e.to)
	}
	sort.Ints(idx)
	for _, i := range idx {
		succ = append(succ, c.state[i])
	}
	return succ
}

// Validate checks that every state's outgoing probability mass is 1 within
// tolerance. It wraps ErrNotStochastic with the offending state.
func (c *Chain[S]) Validate() error {
	if len(c.state) == 0 {
		return ErrEmptyChain
	}
	for i, edges := range c.out {
		var sum float64
		for _, e := range edges {
			sum += e.p
		}
		if math.Abs(sum-1) > rowSumTolerance {
			return fmt.Errorf("state %v has outgoing mass %v: %w",
				c.state[i], sum, ErrNotStochastic)
		}
	}
	return nil
}

// IsIrreducible reports whether every state can reach every other state.
// It runs one forward reachability pass from state 0 on the graph and one
// on the reversed graph; the chain is irreducible iff both passes reach all
// states.
func (c *Chain[S]) IsIrreducible() bool {
	n := len(c.state)
	if n == 0 {
		return false
	}
	forward := make([][]int, n)
	backward := make([][]int, n)
	for from, edges := range c.out {
		for _, e := range edges {
			forward[from] = append(forward[from], e.to)
			backward[e.to] = append(backward[e.to], from)
		}
	}
	return reachesAll(forward, 0) && reachesAll(backward, 0)
}

func reachesAll(adj [][]int, start int) bool {
	seen := make([]bool, len(adj))
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(adj)
}

// Method selects a stationary-distribution algorithm.
type Method int

// Solver methods. Auto picks dense elimination for small chains and the
// iterative solver otherwise.
const (
	Auto Method = iota + 1
	Dense
	Iterative
)

// Options configures Stationary.
type Options struct {
	// Method selects the algorithm; the zero value means Auto.
	Method Method

	// Tolerance is the L1 convergence threshold for the iterative
	// solver; the zero value means DefaultTolerance.
	Tolerance float64

	// MaxIterations bounds the iterative solver; the zero value means
	// DefaultMaxIterations.
	MaxIterations int

	// SkipChecks disables the stochasticity and irreducibility
	// validation, for callers that construct chains known to be valid
	// (e.g. in benchmarks).
	SkipChecks bool
}

// Stationary computes the unique stationary distribution pi with pi = pi P.
func (c *Chain[S]) Stationary(opts Options) (map[S]float64, error) {
	if len(c.state) == 0 {
		return nil, ErrEmptyChain
	}
	if !opts.SkipChecks {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if !c.IsIrreducible() {
			return nil, ErrReducible
		}
	}
	method := opts.Method
	if method == 0 || method == Auto {
		if len(c.state) <= denseLimit {
			method = Dense
		} else {
			method = Iterative
		}
	}

	var (
		pi  []float64
		err error
	)
	switch method {
	case Dense:
		pi, err = c.stationaryDense()
	case Iterative:
		pi, err = c.stationaryIterative(opts)
	default:
		return nil, fmt.Errorf("markov: unknown method %d", method)
	}
	if err != nil {
		return nil, err
	}

	result := make(map[S]float64, len(pi))
	for i, p := range pi {
		result[c.state[i]] = p
	}
	return result, nil
}

// stationaryDense solves (P^T - I) pi = 0 with the normalization
// sum(pi) = 1 by Gaussian elimination with partial pivoting. Suitable for
// chains up to a few hundred states.
func (c *Chain[S]) stationaryDense() ([]float64, error) {
	n := len(c.state)
	// Build A = P^T - I, then replace the last equation with sum(pi)=1.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		a[i][i] = -1
	}
	for from, edges := range c.out {
		for _, e := range edges {
			a[e.to][from] += e.p
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("markov: singular system at column %d: %w",
				col, ErrReducible)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= factor * a[col][k]
			}
		}
	}
	pi := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for k := i + 1; k < n; k++ {
			sum -= a[i][k] * pi[k]
		}
		pi[i] = sum / a[i][i]
	}
	clampAndNormalize(pi)
	return pi, nil
}

// stationaryIterative runs damped power iteration,
// pi <- (pi + pi P) / 2, which converges for any irreducible chain
// (the damping makes periodic chains aperiodic without changing the
// stationary distribution).
func (c *Chain[S]) stationaryIterative(opts Options) ([]float64, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	n := len(c.state)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for from, edges := range c.out {
			mass := pi[from]
			if mass == 0 {
				continue
			}
			for _, e := range edges {
				next[e.to] += mass * e.p
			}
		}
		var delta float64
		for i := range next {
			next[i] = (next[i] + pi[i]) / 2
			delta += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if delta < tol {
			clampAndNormalize(pi)
			return pi, nil
		}
	}
	return nil, fmt.Errorf("after %d iterations: %w", maxIter, ErrNoConvergence)
}

// clampAndNormalize removes tiny negative round-off and rescales to sum 1.
func clampAndNormalize(pi []float64) {
	var sum float64
	for i, p := range pi {
		if p < 0 {
			pi[i] = 0
			continue
		}
		sum += p
	}
	if sum <= 0 {
		return
	}
	for i := range pi {
		pi[i] /= sum
	}
}

// ExpectedReward computes the long-run average per-step reward
// sum_s pi(s) * reward(s) for a stationary distribution pi.
func ExpectedReward[S comparable](pi map[S]float64, reward func(S) float64) float64 {
	var total float64
	for s, p := range pi {
		total += p * reward(s)
	}
	return total
}
