package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// twoState builds the classic two-state chain with flip probabilities p and
// q; its stationary distribution is (q/(p+q), p/(p+q)).
func twoState(p, q float64) *Chain[string] {
	c := New[string]()
	c.AddTransition("a", "b", p)
	c.AddTransition("a", "a", 1-p)
	c.AddTransition("b", "a", q)
	c.AddTransition("b", "b", 1-q)
	return c
}

func TestTwoStateStationary(t *testing.T) {
	tests := []struct {
		name   string
		method Method
	}{
		{"dense", Dense},
		{"iterative", Iterative},
		{"auto", Auto},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := twoState(0.3, 0.1)
			pi, err := c.Stationary(Options{Method: tt.method})
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(pi["a"], 0.25, 1e-9) {
				t.Errorf("pi[a] = %v, want 0.25", pi["a"])
			}
			if !almostEqual(pi["b"], 0.75, 1e-9) {
				t.Errorf("pi[b] = %v, want 0.75", pi["b"])
			}
		})
	}
}

func TestPeriodicChain(t *testing.T) {
	// A deterministic 3-cycle is periodic; plain power iteration would
	// oscillate, but the damped iteration must converge to uniform.
	c := New[int]()
	c.AddTransition(0, 1, 1)
	c.AddTransition(1, 2, 1)
	c.AddTransition(2, 0, 1)
	for _, method := range []Method{Dense, Iterative} {
		pi, err := c.Stationary(Options{Method: method})
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		for s := 0; s < 3; s++ {
			if !almostEqual(pi[s], 1.0/3, 1e-9) {
				t.Errorf("method %d: pi[%d] = %v, want 1/3", method, s, pi[s])
			}
		}
	}
}

func TestBirthDeathChain(t *testing.T) {
	// Random walk on 0..n with reflecting boundaries and up-probability p
	// has stationary pi(i) proportional to (p/q)^i.
	const (
		n = 20
		p = 0.4
	)
	q := 1 - p
	c := New[int]()
	c.AddTransition(0, 1, p)
	c.AddTransition(0, 0, q)
	for i := 1; i < n; i++ {
		c.AddTransition(i, i+1, p)
		c.AddTransition(i, i-1, q)
	}
	c.AddTransition(n, n-1, q)
	c.AddTransition(n, n, p)

	pi, err := c.Stationary(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := p / q
	var norm float64
	for i := 0; i <= n; i++ {
		norm += math.Pow(ratio, float64(i))
	}
	for i := 0; i <= n; i++ {
		want := math.Pow(ratio, float64(i)) / norm
		if !almostEqual(pi[i], want, 1e-10) {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestDenseAndIterativeAgree(t *testing.T) {
	// A random-looking but fixed 5-state chain: both solvers must agree.
	c := New[int]()
	rows := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.0},
		{0.0, 0.5, 0.0, 0.25, 0.25},
		{0.3, 0.3, 0.4, 0.0, 0.0},
		{0.25, 0.25, 0.25, 0.25, 0.0},
		{0.0, 0.0, 0.5, 0.5, 0.0},
	}
	for i, row := range rows {
		for j, p := range row {
			c.AddTransition(i, j, p)
		}
	}
	dense, err := c.Stationary(Options{Method: Dense})
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.Stationary(Options{Method: Iterative})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if !almostEqual(dense[s], iter[s], 1e-9) {
			t.Errorf("state %d: dense %v vs iterative %v", s, dense[s], iter[s])
		}
	}
}

func TestStationaryIsInvariant(t *testing.T) {
	// pi P = pi must hold for the returned distribution.
	c := twoState(0.42, 0.17)
	pi, err := c.Stationary(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.States() {
		var flowIn float64
		for _, from := range c.States() {
			flowIn += pi[from] * c.Prob(from, s)
		}
		if !almostEqual(flowIn, pi[s], 1e-10) {
			t.Errorf("state %v: inflow %v != pi %v", s, flowIn, pi[s])
		}
	}
}

func TestStationaryRandomChainsProperty(t *testing.T) {
	// Any strictly positive row-normalized matrix is irreducible and
	// aperiodic; the solver must return a probability vector satisfying
	// the balance equations.
	f := func(raw [16]float64) bool {
		const n = 4
		c := New[int]()
		for i := 0; i < n; i++ {
			var row [n]float64
			var sum float64
			for j := 0; j < n; j++ {
				v := math.Abs(raw[i*n+j])
				if math.IsNaN(v) || v > 1e6 {
					// Clamp huge magnitudes: summing values near
					// MaxFloat64 overflows to +Inf.
					v = math.Mod(v, 1e6)
					if math.IsNaN(v) {
						v = 0
					}
				}
				row[j] = v + 0.01 // strictly positive
				sum += row[j]
			}
			for j := 0; j < n; j++ {
				c.AddTransition(i, j, row[j]/sum)
			}
		}
		pi, err := c.Stationary(Options{})
		if err != nil {
			return false
		}
		var total float64
		for s := 0; s < n; s++ {
			if pi[s] < 0 {
				return false
			}
			total += pi[s]
			var flowIn float64
			for from := 0; from < n; from++ {
				flowIn += pi[from] * c.Prob(from, s)
			}
			if !almostEqual(flowIn, pi[s], 1e-8) {
				return false
			}
		}
		return almostEqual(total, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsSubStochastic(t *testing.T) {
	c := New[string]()
	c.AddTransition("a", "b", 0.5)
	c.AddTransition("b", "a", 1)
	if err := c.Validate(); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("err = %v, want ErrNotStochastic", err)
	}
	if _, err := c.Stationary(Options{}); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("Stationary err = %v, want ErrNotStochastic", err)
	}
}

func TestEmptyChain(t *testing.T) {
	c := New[int]()
	if err := c.Validate(); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("Validate err = %v, want ErrEmptyChain", err)
	}
	if _, err := c.Stationary(Options{}); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("Stationary err = %v, want ErrEmptyChain", err)
	}
}

func TestReducibleChainRejected(t *testing.T) {
	// Two disconnected self-loop states.
	c := New[string]()
	c.AddTransition("a", "a", 1)
	c.AddTransition("b", "b", 1)
	if c.IsIrreducible() {
		t.Error("disconnected chain reported irreducible")
	}
	if _, err := c.Stationary(Options{}); !errors.Is(err, ErrReducible) {
		t.Errorf("Stationary err = %v, want ErrReducible", err)
	}
}

func TestAbsorbingChainRejected(t *testing.T) {
	// a -> b -> b: not irreducible (a unreachable from b).
	c := New[string]()
	c.AddTransition("a", "b", 1)
	c.AddTransition("b", "b", 1)
	if c.IsIrreducible() {
		t.Error("absorbing chain reported irreducible")
	}
}

func TestAddTransitionAccumulates(t *testing.T) {
	c := New[int]()
	c.AddTransition(1, 2, 0.25)
	c.AddTransition(1, 2, 0.25)
	if got := c.Prob(1, 2); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("Prob(1,2) = %v, want 0.5", got)
	}
}

func TestAddTransitionIgnoresNonPositive(t *testing.T) {
	c := New[int]()
	c.AddTransition(1, 2, 0)
	c.AddTransition(1, 2, -0.5)
	if c.Len() != 0 {
		t.Errorf("chain has %d states, want 0 (non-positive mass ignored)", c.Len())
	}
}

func TestSuccessorsAndContains(t *testing.T) {
	c := New[string]()
	c.AddTransition("a", "c", 0.5)
	c.AddTransition("a", "b", 0.5)
	c.AddTransition("b", "a", 1)
	c.AddTransition("c", "a", 1)

	if !c.Contains("a") || c.Contains("z") {
		t.Error("Contains misreports membership")
	}
	succ := c.Successors("a")
	if len(succ) != 2 {
		t.Fatalf("Successors(a) = %v, want two states", succ)
	}
	if c.Successors("z") != nil {
		t.Error("Successors of unknown state should be nil")
	}
}

func TestProbUnknownStates(t *testing.T) {
	c := twoState(0.5, 0.5)
	if got := c.Prob("a", "zzz"); got != 0 {
		t.Errorf("Prob to unknown = %v, want 0", got)
	}
	if got := c.Prob("zzz", "a"); got != 0 {
		t.Errorf("Prob from unknown = %v, want 0", got)
	}
}

func TestIterativeConvergenceFailure(t *testing.T) {
	c := twoState(0.3, 0.1)
	_, err := c.Stationary(Options{
		Method:        Iterative,
		Tolerance:     1e-16, // tighter than float64 allows for this chain
		MaxIterations: 3,
	})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestExpectedReward(t *testing.T) {
	pi := map[string]float64{"a": 0.25, "b": 0.75}
	got := ExpectedReward(pi, func(s string) float64 {
		if s == "a" {
			return 4
		}
		return 8
	})
	if !almostEqual(got, 7, 1e-12) {
		t.Errorf("ExpectedReward = %v, want 7", got)
	}
}

func TestLargeChainIterative(t *testing.T) {
	// A 2000-state ring with a drift home; exercises the sparse iterative
	// path (above the dense cutoff).
	const n = 2000
	c := New[int]()
	for i := 0; i < n; i++ {
		c.AddTransition(i, (i+1)%n, 0.5)
		c.AddTransition(i, 0, 0.5)
	}
	pi, err := c.Stationary(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// pi(k) = 0.5^k * pi(0) for k >= 1 (reach k only via k consecutive
	// forward steps), with pi(0) = 0.5 by normalization... verify the
	// balance equations instead of a closed form for robustness.
	if !almostEqual(pi[1], pi[0]*0.5, 1e-9) {
		t.Errorf("pi[1] = %v, want pi[0]/2 = %v", pi[1], pi[0]*0.5)
	}
	if !almostEqual(pi[2], pi[1]*0.5, 1e-9) {
		t.Errorf("pi[2] = %v, want pi[1]/2 = %v", pi[2], pi[1]*0.5)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += pi[i]
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func BenchmarkStationaryDense100(b *testing.B) {
	c := New[int]()
	for i := 0; i < 100; i++ {
		c.AddTransition(i, (i+1)%100, 0.6)
		c.AddTransition(i, 0, 0.4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stationary(Options{Method: Dense, SkipChecks: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryIterative2000(b *testing.B) {
	c := New[int]()
	for i := 0; i < 2000; i++ {
		c.AddTransition(i, (i+1)%2000, 0.6)
		c.AddTransition(i, 0, 0.4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stationary(Options{Method: Iterative, SkipChecks: true}); err != nil {
			b.Fatal(err)
		}
	}
}
