package markov

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnknownState is returned when a queried state is not in the chain.
var ErrUnknownState = errors.New("markov: unknown state")

// HittingTimes returns the expected number of steps to first reach target
// from every state (0 for the target itself). It solves
//
//	h(s) = 1 + sum_t P(s,t) h(t)   for s != target, h(target) = 0
//
// by damped fixed-point iteration, which converges for irreducible chains.
func (c *Chain[S]) HittingTimes(target S, opts Options) (map[S]float64, error) {
	ti, seen := c.index[target]
	if !seen {
		return nil, fmt.Errorf("target %v: %w", target, ErrUnknownState)
	}
	if !opts.SkipChecks {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if !c.IsIrreducible() {
			return nil, ErrReducible
		}
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	n := len(c.state)
	h := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		var delta float64
		for s := 0; s < n; s++ {
			if s == ti {
				next[s] = 0
				continue
			}
			val := 1.0
			for _, e := range c.out[s] {
				if e.to == ti {
					continue
				}
				val += e.p * h[e.to]
			}
			delta += math.Abs(val - h[s])
			next[s] = val
		}
		h, next = next, h
		if delta < tol {
			result := make(map[S]float64, n)
			for i, v := range h {
				result[c.state[i]] = v
			}
			return result, nil
		}
	}
	return nil, fmt.Errorf("after %d iterations: %w", maxIter, ErrNoConvergence)
}

// ExpectedReturnTime returns the expected number of steps for the chain to
// return to s when started there. By Kac's formula this equals
// 1/pi(s); the function computes it from first-step analysis instead
// (1 + sum of P(s,t)*h(t) over the hitting times to s), so comparing the
// two is an independent consistency check.
func (c *Chain[S]) ExpectedReturnTime(s S, opts Options) (float64, error) {
	si, seen := c.index[s]
	if !seen {
		return 0, fmt.Errorf("state %v: %w", s, ErrUnknownState)
	}
	h, err := c.HittingTimes(s, opts)
	if err != nil {
		return 0, err
	}
	val := 1.0
	for _, e := range c.out[si] {
		val += e.p * h[c.state[e.to]]
	}
	return val, nil
}
