package markov

import (
	"errors"
	"math"
	"testing"
)

func TestHittingTimesTwoState(t *testing.T) {
	// From "a", reaching "b" takes Geometric(p) steps: mean 1/p.
	c := twoState(0.25, 0.1)
	h, err := c.HittingTimes("b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h["b"] != 0 {
		t.Errorf("h(target) = %v, want 0", h["b"])
	}
	if want := 1 / 0.25; math.Abs(h["a"]-want) > 1e-8 {
		t.Errorf("h(a) = %v, want %v", h["a"], want)
	}
}

func TestHittingTimesGamblersRuin(t *testing.T) {
	// Symmetric random walk on 0..n with reflection at n: expected time
	// to hit 0 from k is k*(2n-k) ... for the reflecting-at-n walk the
	// classic result is h(k) = k(2n - k) with p = 1/2. Verify at n = 5.
	const n = 5
	c := New[int]()
	for i := 1; i < n; i++ {
		c.AddTransition(i, i+1, 0.5)
		c.AddTransition(i, i-1, 0.5)
	}
	c.AddTransition(n, n-1, 0.5)
	c.AddTransition(n, n, 0.5)
	c.AddTransition(0, 1, 1) // keep the chain irreducible
	h, err := c.HittingTimes(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		// First-step analysis for this reflected walk gives
		// h(k) = k(2n-k) + adjustments from the lazy boundary; verify
		// via the defining equations instead of a closed form.
		var want float64
		switch {
		case k == n:
			want = 1 + 0.5*h[n] + 0.5*h[n-1]
		default:
			want = 1 + 0.5*h[k+1] + 0.5*h[k-1]
		}
		if k == 1 {
			want = 1 + 0.5*h[2] // h(0) = 0
		}
		if math.Abs(h[k]-want) > 1e-7 {
			t.Errorf("h(%d) = %v violates its first-step equation (want %v)", k, h[k], want)
		}
	}
	// Monotonicity: farther states take longer.
	for k := 2; k <= n; k++ {
		if h[k] <= h[k-1] {
			t.Errorf("h(%d)=%v not above h(%d)=%v", k, h[k], k-1, h[k-1])
		}
	}
}

func TestKacFormula(t *testing.T) {
	// Expected return time equals 1/pi(s) for every state.
	c := New[int]()
	rows := [][]float64{
		{0.2, 0.5, 0.3},
		{0.4, 0.1, 0.5},
		{0.25, 0.25, 0.5},
	}
	for i, row := range rows {
		for j, p := range row {
			c.AddTransition(i, j, p)
		}
	}
	pi, err := c.Stationary(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		ret, err := c.ExpectedReturnTime(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 / pi[s]; math.Abs(ret-want) > 1e-6 {
			t.Errorf("state %d: return time %v, Kac 1/pi = %v", s, ret, want)
		}
	}
}

func TestHittingTimesUnknownTarget(t *testing.T) {
	c := twoState(0.5, 0.5)
	if _, err := c.HittingTimes("zzz", Options{}); !errors.Is(err, ErrUnknownState) {
		t.Errorf("err = %v, want ErrUnknownState", err)
	}
	if _, err := c.ExpectedReturnTime("zzz", Options{}); !errors.Is(err, ErrUnknownState) {
		t.Errorf("err = %v, want ErrUnknownState", err)
	}
}

func TestHittingTimesRejectsReducible(t *testing.T) {
	c := New[string]()
	c.AddTransition("a", "a", 1)
	c.AddTransition("b", "b", 1)
	if _, err := c.HittingTimes("a", Options{}); !errors.Is(err, ErrReducible) {
		t.Errorf("err = %v, want ErrReducible", err)
	}
}
