package chaos

// Corruptions generates deterministic malformed variants of a serialized
// document for fail-closed decoder tests. Every variant is guaranteed to be
// invalid input — not merely different — so a decoder accepting any of them
// is broken:
//
//   - an empty document,
//   - truncations that cut the document strictly before its final bytes
//     (an unterminated JSON value),
//   - digit smashes that replace one numeric digit with '}' (a guaranteed
//     syntax error in any JSON document whose strings contain no digits).
//
// Variants derive from seed alone; the same (data, seed, n) always yields
// the same corruptions.
func Corruptions(data []byte, seed uint64, n int) [][]byte {
	out := make([][]byte, 0, n)
	if n <= 0 {
		return out
	}
	out = append(out, []byte{})
	digits := digitPositions(data)
	h := mix(seed)
	for kind := 0; len(out) < n; kind++ {
		h = mix(h)
		switch {
		case kind%2 == 0 && len(data) > 2:
			// Cut in [1, len-2]: the closing brace is always lost.
			cut := 1 + int(h%uint64(len(data)-2))
			out = append(out, append([]byte{}, data[:cut]...))
		case len(digits) > 0:
			pos := digits[int(h%uint64(len(digits)))]
			smashed := append([]byte{}, data...)
			smashed[pos] = '}'
			out = append(out, smashed)
		default:
			return out // nothing left to corrupt deterministically
		}
	}
	return out
}

// digitPositions returns the offsets of all ASCII digits in data.
func digitPositions(data []byte) []int {
	var out []int
	for i, b := range data {
		if b >= '0' && b <= '9' {
			out = append(out, i)
		}
	}
	return out
}
