// Package chaos is the engine's fault-injection harness: adversarial
// strategy wrappers that emit protocol-violating reactions, deterministic
// error/panic injectors for worker pools, and a generator of corrupted
// serialized trees. The package exists to prove — in tests and in the CI
// chaos-smoke job — that the engine fails closed: every injected fault must
// surface as a typed error (sim.ErrBadReaction, parallel.ErrPanic,
// chain.ErrDecode) without crashing the process or poisoning reusable
// state.
//
// All injection is deterministic. Strategies must be pure functions of the
// race frame (instances are shared across worker goroutines), so faults
// fire from a hash of (seed, decision point, frame) rather than counters;
// likewise Injector decides per work-item index. The same seed always
// breaks the same runs in the same places.
package chaos

import (
	"errors"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/sim"
)

// ErrInjected is the error Injector-driven work items return, so tests can
// tell an injected failure from a genuine one.
var ErrInjected = errors.New("chaos: injected fault")

// ErrInjectedPanic is the value injected panics carry. parallel recovers it
// into a *parallel.PanicError, whose chain keeps it visible to errors.Is.
var ErrInjectedPanic = errors.New("chaos: injected panic")

// mix is the splitmix64 finalizer; it drives every injection decision.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// coin hashes the site coordinates under seed and compares against rate:
// the same site always lands the same way.
func coin(rate float64, seed uint64, site ...uint64) bool {
	if rate <= 0 {
		return false
	}
	h := mix(seed)
	for _, s := range site {
		h = mix(h ^ s)
	}
	return float64(h>>11)/(1<<53) < rate
}

// Fault selects which protocol violation a chaos Strategy injects.
type Fault int

const (
	// FaultUnpublish retracts already-announced blocks (PublishTo below
	// the published count).
	FaultUnpublish Fault = iota

	// FaultOverPublish announces more blocks than the private branch
	// holds (PublishTo = Ls + 1).
	FaultOverPublish

	// FaultFalseCommit commits without a strictly longer branch. It only
	// fires in frames where a commit is illegal (Ls <= Lh).
	FaultFalseCommit

	// FaultConflict returns Commit and Adopt together.
	FaultConflict

	// FaultPanic panics at the decision point with ErrInjectedPanic.
	FaultPanic
)

// String names the fault for test output and strategy names.
func (f Fault) String() string {
	switch f {
	case FaultUnpublish:
		return "unpublish"
	case FaultOverPublish:
		return "over-publish"
	case FaultFalseCommit:
		return "false-commit"
	case FaultConflict:
		return "conflict"
	case FaultPanic:
		return "panic"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Strategy wraps an inner strategy (nil: the paper's Algorithm 1) and
// replaces its reaction with the configured fault at a Rate fraction of
// decision points. Every injected reaction is guaranteed invalid, so a
// fired fault must surface as sim.ErrBadReaction (or, for FaultPanic, a
// recovered panic) — anything else is an engine bug.
type Strategy struct {
	// Inner is the strategy being sabotaged; nil means sim.Algorithm1.
	Inner sim.Strategy

	// Fault is the violation to inject.
	Fault Fault

	// Rate is the per-decision-point injection probability in [0, 1].
	Rate float64

	// Seed decorrelates injection sites between wrappers.
	Seed uint64
}

var _ sim.Strategy = Strategy{}

// inner resolves the sabotaged strategy.
func (c Strategy) inner() sim.Strategy {
	if c.Inner == nil {
		return sim.Algorithm1{}
	}
	return c.Inner
}

// Name implements sim.Strategy.
func (c Strategy) Name() string {
	return fmt.Sprintf("chaos:%s+%s@%g", c.inner().Name(), c.Fault, c.Rate)
}

// ReactToPool implements sim.Strategy.
func (c Strategy) ReactToPool(ls, lh, published int) sim.Reaction {
	return c.react(0, ls, lh, published, c.inner().ReactToPool)
}

// ReactToHonest implements sim.Strategy.
func (c Strategy) ReactToHonest(ls, lh, published int) sim.Reaction {
	return c.react(1, ls, lh, published, c.inner().ReactToHonest)
}

// react injects the configured fault at this decision point, or defers to
// the inner strategy.
func (c Strategy) react(point uint64, ls, lh, published int, inner func(ls, lh, published int) sim.Reaction) sim.Reaction {
	if !coin(c.Rate, c.Seed, point, uint64(ls), uint64(lh), uint64(published)) {
		return inner(ls, lh, published)
	}
	switch c.Fault {
	case FaultUnpublish:
		if published >= 2 {
			return sim.Reaction{PublishTo: published - 1}
		}
		// With under two announced blocks, retracting one is the
		// PublishTo zero-value no-op; a negative count is invalid in
		// every frame.
		return sim.Reaction{PublishTo: -1}
	case FaultOverPublish:
		return sim.Reaction{PublishTo: ls + 1}
	case FaultFalseCommit:
		if ls > lh {
			return inner(ls, lh, published) // a commit would be legal here
		}
		return sim.Reaction{Commit: true}
	case FaultConflict:
		return sim.Reaction{Commit: true, Adopt: true}
	case FaultPanic:
		panic(fmt.Errorf("%w: at decision point %d, frame (%d,%d,%d)",
			ErrInjectedPanic, point, ls, lh, published))
	default:
		return inner(ls, lh, published)
	}
}

// Injector deterministically injects failures into indexed work items —
// the worker-pool counterpart of Strategy. The zero value never fires.
type Injector struct {
	// Rate is the per-item injection probability in [0, 1].
	Rate float64

	// Seed decorrelates injection sites between injectors.
	Seed uint64

	// Panic makes fired items panic with ErrInjectedPanic instead of
	// returning ErrInjected.
	Panic bool
}

// Hit reports whether the injector fires at item i.
func (in Injector) Hit(i int) bool {
	return coin(in.Rate, in.Seed, uint64(i))
}

// Wrap decorates a parallel work function: at injected indices it returns
// ErrInjected (or panics with ErrInjectedPanic), elsewhere it runs fn
// untouched.
func Wrap[T any](in Injector, fn func(i int) (T, error)) func(i int) (T, error) {
	return func(i int) (T, error) {
		if in.Hit(i) {
			if in.Panic {
				panic(fmt.Errorf("%w: item %d", ErrInjectedPanic, i))
			}
			var zero T
			return zero, fmt.Errorf("%w: item %d", ErrInjected, i)
		}
		return fn(i)
	}
}
