package chaos

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/parallel"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func population(t *testing.T) *mining.Population {
	t.Helper()
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func cleanConfig(t *testing.T) sim.Config {
	return sim.Config{Population: population(t), Gamma: 0.5, Blocks: 2000, Seed: 7}
}

// faultConfig saturates every decision point with the given fault so it is
// guaranteed to fire within the run.
func faultConfig(t *testing.T, f Fault) sim.Config {
	cfg := cleanConfig(t)
	cfg.Strategy = Strategy{Fault: f, Rate: 1, Seed: 99}
	return cfg
}

// TestReactionFaultsFailClosed: every malformed-reaction fault must surface
// as sim.ErrBadReaction — the engine rejects the reaction instead of
// corrupting the race state — and the failed Runner must produce a
// bit-identical clean run afterwards.
func TestReactionFaultsFailClosed(t *testing.T) {
	clean := cleanConfig(t)
	want, err := sim.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []Fault{FaultUnpublish, FaultOverPublish, FaultFalseCommit, FaultConflict} {
		t.Run(fault.String(), func(t *testing.T) {
			rn := sim.NewRunner()
			if _, err := rn.Run(faultConfig(t, fault)); !errors.Is(err, sim.ErrBadReaction) {
				t.Fatalf("err = %v, want sim.ErrBadReaction", err)
			}
			// The Runner that just failed mid-run must be clean for reuse.
			got, err := rn.Run(clean)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("Runner reused after a failed run diverged from a fresh run")
			}
		})
	}
}

// TestSparseFaultsFailClosed: faults injected at a low per-frame rate are
// still caught with a typed error. Injection hashes the race frame (the
// only input a shared Strategy instance may depend on), so a given seed
// fires only on some frames; the test scans seeds until each fault lands on
// a frame the run actually visits.
func TestSparseFaultsFailClosed(t *testing.T) {
	for _, fault := range []Fault{FaultUnpublish, FaultOverPublish, FaultFalseCommit, FaultConflict} {
		fired := false
		for seed := uint64(1); seed <= 20 && !fired; seed++ {
			cfg := cleanConfig(t)
			cfg.Blocks = 10000
			cfg.Strategy = Strategy{Fault: fault, Rate: 0.05, Seed: seed}
			_, err := sim.Run(cfg)
			if err == nil {
				continue
			}
			if !errors.Is(err, sim.ErrBadReaction) {
				t.Errorf("%s seed %d: err = %v, want sim.ErrBadReaction", fault, seed, err)
			}
			fired = true
		}
		if !fired {
			t.Errorf("%s: never fired across 20 seeds at rate 0.05", fault)
		}
	}
}

// TestFaultDeterminism: the same seed breaks the same run with the same
// error — injection is a pure function of (seed, frame), not of scheduling.
func TestFaultDeterminism(t *testing.T) {
	cfg := cleanConfig(t)
	for seed := uint64(1); seed <= 20; seed++ {
		cfg.Strategy = Strategy{Fault: FaultConflict, Rate: 0.05, Seed: seed}
		_, errA := sim.Run(cfg)
		if errA == nil {
			continue
		}
		_, errB := sim.Run(cfg)
		if errB == nil || errA.Error() != errB.Error() {
			t.Errorf("seed %d: same seed, different failures: %v vs %v", seed, errA, errB)
		}
		return
	}
	t.Error("no seed fired at rate 0.05; cannot exercise determinism")
}

// TestInjectedPanicSurfacesIndexed: a strategy panic inside a RunMany batch
// is recovered into an indexed *parallel.PanicError instead of crashing the
// process, with the injected cause visible through the chain.
func TestInjectedPanicSurfacesIndexed(t *testing.T) {
	cfg := faultConfig(t, FaultPanic)
	cfg.Parallelism = 4
	_, err := sim.RunMany(cfg, 8)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
	if pe.Index != 0 {
		t.Errorf("panic reported at index %d, want the lowest (0)", pe.Index)
	}
	if !errors.Is(err, parallel.ErrPanic) || !errors.Is(err, ErrInjectedPanic) {
		t.Errorf("error chain %v lacks ErrPanic or ErrInjectedPanic", err)
	}
}

// TestInjectorWrap: the worker-pool injector fires deterministically, keeps
// the lowest-index-wins contract, and its panics are recovered by parallel.
func TestInjectorWrap(t *testing.T) {
	in := Injector{Rate: 0.3, Seed: 5}
	lowest := -1
	for i := 0; i < 50; i++ {
		if in.Hit(i) {
			lowest = i
			break
		}
	}
	if lowest < 0 {
		t.Fatal("injector at rate 0.3 never fired in 50 items")
	}
	_, err := parallel.Map(4, 50, Wrap(in, func(i int) (int, error) { return i, nil }))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	in.Panic = true
	_, err = parallel.Map(4, 50, Wrap(in, func(i int) (int, error) { return i, nil }))
	var pe *parallel.PanicError
	if !errors.As(err, &pe) || pe.Index != lowest {
		t.Errorf("err = %v, want *parallel.PanicError at index %d", err, lowest)
	}
	if !errors.Is(err, ErrInjectedPanic) {
		t.Errorf("error chain %v lacks ErrInjectedPanic", err)
	}
}

// TestCorruptionsRejected: every corrupted variant of a serialized tree is
// rejected by chain.Decode with chain.ErrDecode — never accepted, never a
// panic.
func TestCorruptionsRejected(t *testing.T) {
	cfg := cleanConfig(t)
	cfg.Blocks = 500
	_, tree, err := sim.RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	if _, err := chain.Decode(bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	for i, corrupt := range Corruptions(pristine, 17, 64) {
		if _, err := chain.Decode(bytes.NewReader(corrupt)); !errors.Is(err, chain.ErrDecode) {
			t.Errorf("corruption %d (%d bytes): err = %v, want chain.ErrDecode", i, len(corrupt), err)
		}
	}
}

// TestCorruptionsDeterministic: the corruption set is a pure function of
// (data, seed, n).
func TestCorruptionsDeterministic(t *testing.T) {
	data := []byte(`{"version":1,"blocks":[{"id":0,"height":0}]}`)
	a := Corruptions(data, 3, 16)
	b := Corruptions(data, 3, 16)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different corruption sets")
	}
	c := Corruptions(data, 4, 16)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical corruption sets")
	}
}
