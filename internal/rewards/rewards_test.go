package rewards

import (
	"math"
	"strings"
	"testing"
)

func TestEthereumUncleSchedule(t *testing.T) {
	s := Ethereum()
	tests := []struct {
		distance int
		want     float64
	}{
		{1, 7.0 / 8},
		{2, 6.0 / 8},
		{3, 5.0 / 8},
		{4, 4.0 / 8},
		{5, 3.0 / 8},
		{6, 2.0 / 8},
		{7, 0},
		{0, 0},
		{-1, 0},
		{100, 0},
	}
	for _, tt := range tests {
		if got := s.Uncle(tt.distance); got != tt.want {
			t.Errorf("Uncle(%d) = %v, want %v", tt.distance, got, tt.want)
		}
	}
}

func TestEthereumNephewSchedule(t *testing.T) {
	s := Ethereum()
	for l := 1; l <= 6; l++ {
		if got := s.Nephew(l); got != 1.0/32 {
			t.Errorf("Nephew(%d) = %v, want 1/32", l, got)
		}
	}
	for _, l := range []int{0, 7, 50} {
		if got := s.Nephew(l); got != 0 {
			t.Errorf("Nephew(%d) = %v, want 0 (not referenceable)", l, got)
		}
	}
}

func TestEthereumReferenceable(t *testing.T) {
	s := Ethereum()
	for l := 1; l <= 6; l++ {
		if !s.Referenceable(l) {
			t.Errorf("Referenceable(%d) = false, want true", l)
		}
	}
	for _, l := range []int{0, -3, 7} {
		if s.Referenceable(l) {
			t.Errorf("Referenceable(%d) = true, want false", l)
		}
	}
	if s.MaxDepth() != 6 {
		t.Errorf("MaxDepth = %d, want 6", s.MaxDepth())
	}
}

func TestConstantSchedule(t *testing.T) {
	s, err := Constant(0.5, NoDepthLimit)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 6, 7, 1000} {
		if got := s.Uncle(l); got != 0.5 {
			t.Errorf("Uncle(%d) = %v, want 0.5", l, got)
		}
		if got := s.Nephew(l); got != 1.0/32 {
			t.Errorf("Nephew(%d) = %v, want 1/32", l, got)
		}
	}
	if s.Uncle(0) != 0 {
		t.Error("Uncle(0) should be 0")
	}
}

func TestConstantDepthLimited(t *testing.T) {
	s, err := Constant(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Uncle(6); got != 0.5 {
		t.Errorf("Uncle(6) = %v, want 0.5", got)
	}
	if got := s.Uncle(7); got != 0 {
		t.Errorf("Uncle(7) = %v, want 0", got)
	}
	if got := s.Nephew(7); got != 0 {
		t.Errorf("Nephew(7) = %v, want 0", got)
	}
}

func TestConstantRejectsNegative(t *testing.T) {
	if _, err := Constant(-0.1, 6); err == nil {
		t.Error("Constant(-0.1) should fail")
	}
}

func TestBitcoinScheduleIsZero(t *testing.T) {
	s := Bitcoin()
	if !s.IsZero() {
		t.Error("Bitcoin schedule should be zero")
	}
	if s.Uncle(1) != 0 || s.Nephew(1) != 0 {
		t.Error("Bitcoin schedule pays rewards")
	}
	if Ethereum().IsZero() {
		t.Error("Ethereum schedule reported zero")
	}
}

func TestNewScheduleValidation(t *testing.T) {
	ok := func(int) float64 { return 0.25 }
	tests := []struct {
		name     string
		uncle    func(int) float64
		nephew   func(int) float64
		maxDepth int
		wantErr  bool
	}{
		{"valid", ok, ok, 6, false},
		{"nil uncle", nil, ok, 6, true},
		{"nil nephew", ok, nil, 6, true},
		{"zero depth", ok, ok, 0, true},
		{"negative uncle", func(int) float64 { return -1 }, ok, 6, true},
		{"nan nephew", ok, func(int) float64 { return math.NaN() }, 6, true},
		{"inf uncle", func(int) float64 { return math.Inf(1) }, ok, 6, true},
		{"unbounded ok", ok, ok, NoDepthLimit, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSchedule(tt.name, tt.uncle, tt.nephew, tt.maxDepth)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewScheduleBadValueBeyondDepthAccepted(t *testing.T) {
	// A function misbehaving only beyond maxDepth is fine: those
	// distances are never consulted.
	uncle := func(l int) float64 {
		if l > 3 {
			return math.NaN()
		}
		return 0.5
	}
	s, err := NewSchedule("partial", uncle, func(int) float64 { return 0 }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Uncle(5); got != 0 {
		t.Errorf("Uncle(5) = %v, want 0", got)
	}
}

func TestScheduleString(t *testing.T) {
	s := Ethereum()
	if got := s.String(); !strings.Contains(got, "ethereum") {
		t.Errorf("String() = %q, want it to mention the schedule name", got)
	}
	if Ethereum().Name() != "ethereum" {
		t.Errorf("Name() = %q", Ethereum().Name())
	}
}

func TestPaperKuMonotone(t *testing.T) {
	// Eq. (7): Ku decreases with distance, from 7/8 to 2/8.
	s := Ethereum()
	for l := 1; l < 6; l++ {
		if s.Uncle(l) <= s.Uncle(l+1) {
			t.Errorf("Ku(%d)=%v should exceed Ku(%d)=%v",
				l, s.Uncle(l), l+1, s.Uncle(l+1))
		}
	}
	if s.Uncle(1) != 7.0/8 || s.Uncle(6) != 2.0/8 {
		t.Error("Ku endpoints do not match Eq. (7)")
	}
}
