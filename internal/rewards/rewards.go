// Package rewards defines the block-reward schedules studied in the paper:
// the static (regular-block) reward, the distance-dependent uncle reward
// Ku(l), and the nephew reward Kn(l) paid to a regular block for referencing
// an uncle at distance l.
//
// All rewards are expressed as fractions of the static reward Ks, which is
// normalized to 1 exactly as in the paper (Sec. III-B). A Schedule also
// carries the maximum distance at which an uncle may be referenced at all:
// in Ethereum an uncle deeper than 6 generations cannot be included by any
// nephew, so it earns nothing and does not count toward uncle-rate-aware
// difficulty adjustment.
package rewards

import (
	"errors"
	"fmt"
	"math"
)

// NoDepthLimit makes a schedule reference uncles at any distance, matching
// the paper's "fixed value regardless of the distance" variants in Fig. 9.
const NoDepthLimit = math.MaxInt32

// EthereumMaxUncleDepth is the deepest generation gap at which Ethereum
// allows an uncle to be referenced.
const EthereumMaxUncleDepth = 6

// EthereumNephewReward is Ethereum's nephew reward, 1/32 of the static
// reward per referenced uncle.
const EthereumNephewReward = 1.0 / 32

var errNonFinite = errors.New("rewards: reward values must be finite and non-negative")

// tableDepth caps the pre-expanded Ku/Kn lookup tables. Settlement only
// consults distances within the simulator's reference window (64), so every
// hot-path lookup is a slice index; deeper distances of an unbounded
// schedule fall back to the defining functions.
const tableDepth = 64

// Schedule is a complete reward specification.
type Schedule struct {
	name string

	// uncle returns Ku(l) for distance l >= 1; only consulted for
	// l <= maxDepth.
	uncle func(distance int) float64

	// nephew returns Kn(l) for distance l >= 1; only consulted for
	// l <= maxDepth.
	nephew func(distance int) float64

	// maxDepth is the largest distance at which a reference is allowed.
	maxDepth int

	// ku and kn pre-expand the uncle and nephew functions over distances
	// 1..min(maxDepth, tableDepth) (index 0 unused), so settlement pays a
	// slice index instead of a closure call per reference. Built once by
	// every constructor; shared, immutable.
	ku, kn []float64
}

// buildTables fills the Ku/Kn lookup tables from the defining functions.
func (s *Schedule) buildTables() {
	depth := s.maxDepth
	if depth > tableDepth {
		depth = tableDepth
	}
	s.ku = make([]float64, depth+1)
	s.kn = make([]float64, depth+1)
	for l := 1; l <= depth; l++ {
		s.ku[l] = s.uncle(l)
		s.kn[l] = s.nephew(l)
	}
}

// NewSchedule builds a custom schedule from arbitrary Ku and Kn functions,
// as permitted by Remarks 6 and 7 of the paper. maxDepth bounds the
// referenceable distance (use NoDepthLimit for unbounded). It returns an
// error if either function yields a negative or non-finite value at any
// probed distance (1..min(maxDepth, 64)).
func NewSchedule(name string, uncle, nephew func(int) float64, maxDepth int) (Schedule, error) {
	if uncle == nil || nephew == nil {
		return Schedule{}, errors.New("rewards: uncle and nephew functions are required")
	}
	if maxDepth < 1 {
		return Schedule{}, fmt.Errorf("rewards: maxDepth %d must be >= 1", maxDepth)
	}
	probe := maxDepth
	if probe > 64 {
		probe = 64
	}
	for l := 1; l <= probe; l++ {
		for _, v := range [2]float64{uncle(l), nephew(l)} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return Schedule{}, fmt.Errorf("at distance %d: value %v: %w", l, v, errNonFinite)
			}
		}
	}
	s := Schedule{name: name, uncle: uncle, nephew: nephew, maxDepth: maxDepth}
	s.buildTables()
	return s, nil
}

// ethereumSchedule is built once; Ethereum() is called per simulation run,
// so the returned value must share prebuilt tables instead of re-expanding
// them.
var ethereumSchedule = func() Schedule {
	s := Schedule{
		name: "ethereum",
		uncle: func(l int) float64 {
			if l < 1 || l > EthereumMaxUncleDepth {
				return 0
			}
			return float64(8-l) / 8
		},
		nephew:   func(int) float64 { return EthereumNephewReward },
		maxDepth: EthereumMaxUncleDepth,
	}
	s.buildTables()
	return s
}()

// Ethereum returns the Byzantium-era schedule used throughout the paper's
// evaluation: Ku(l) = (8-l)/8 for 1 <= l <= 6 and 0 beyond, Kn = 1/32.
func Ethereum() Schedule {
	return ethereumSchedule
}

// Constant returns a schedule paying a fixed uncle reward ku at every
// referenceable distance, with Ethereum's 1/32 nephew reward. The paper uses
// these (ku in 2/8..7/8, unbounded depth) in Fig. 9 and, with depth 6, for
// the Sec. VI redesign.
func Constant(ku float64, maxDepth int) (Schedule, error) {
	return NewSchedule(
		fmt.Sprintf("constant-ku=%g", ku),
		func(int) float64 { return ku },
		func(int) float64 { return EthereumNephewReward },
		maxDepth,
	)
}

// bitcoinSchedule is built once, like ethereumSchedule.
var bitcoinSchedule = func() Schedule {
	s := Schedule{
		name:     "bitcoin",
		uncle:    func(int) float64 { return 0 },
		nephew:   func(int) float64 { return 0 },
		maxDepth: 1,
	}
	s.buildTables()
	return s
}()

// Bitcoin returns the degenerate schedule with no uncle or nephew rewards;
// under it the Ethereum model reduces to Eyal-Sirer's static-reward
// analysis (Remark 4).
func Bitcoin() Schedule {
	return bitcoinSchedule
}

// Name returns a short identifier for the schedule.
func (s Schedule) Name() string { return s.name }

// MaxDepth returns the largest referenceable uncle distance.
func (s Schedule) MaxDepth() int { return s.maxDepth }

// Referenceable reports whether an uncle at the given distance may be
// referenced by a nephew at all.
func (s Schedule) Referenceable(distance int) bool {
	return distance >= 1 && distance <= s.maxDepth
}

// Uncle returns Ku(distance), the reward earned by an uncle block referenced
// at the given distance, as a fraction of the static reward. It is zero for
// non-referenceable distances. Distances within the lookup table (all of
// them, unless the schedule is deeper than 64) cost a slice index.
func (s Schedule) Uncle(distance int) float64 {
	if !s.Referenceable(distance) {
		return 0
	}
	if distance < len(s.ku) {
		return s.ku[distance]
	}
	return s.uncle(distance)
}

// Nephew returns Kn(distance), the reward earned by a regular block for
// referencing an uncle at the given distance. It is zero for
// non-referenceable distances.
func (s Schedule) Nephew(distance int) float64 {
	if !s.Referenceable(distance) {
		return 0
	}
	if distance < len(s.kn) {
		return s.kn[distance]
	}
	return s.nephew(distance)
}

// IsZero reports whether the schedule pays no uncle or nephew rewards at any
// referenceable distance (i.e. Bitcoin-like).
func (s Schedule) IsZero() bool {
	probe := s.maxDepth
	if probe > 64 {
		probe = 64
	}
	for l := 1; l <= probe; l++ {
		if s.Uncle(l) != 0 || s.Nephew(l) != 0 {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s Schedule) String() string {
	return fmt.Sprintf("schedule(%s, maxDepth=%d)", s.name, s.maxDepth)
}
