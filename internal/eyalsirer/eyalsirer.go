// Package eyalsirer implements the Bitcoin selfish-mining baseline of Eyal
// and Sirer ("Majority is not enough", CACM 2018), which the paper compares
// against in Fig. 10.
//
// Bitcoin has no uncle or nephew rewards, so the pool's long-run absolute
// revenue equals its relative share of static rewards. The package provides
// the closed-form revenue and threshold, a 1-D Markov-chain solution for
// cross-checking, and the reduction identity to the Ethereum model with a
// zero reward schedule (Remark 4 of the paper).
package eyalsirer

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/markov"
)

// Errors returned by the baseline.
var (
	// ErrBadAlpha is returned when alpha is outside (0, 0.5).
	ErrBadAlpha = errors.New("eyalsirer: alpha must lie in (0, 0.5)")

	// ErrBadGamma is returned when gamma is outside [0, 1].
	ErrBadGamma = errors.New("eyalsirer: gamma must lie in [0, 1]")
)

// RelativeRevenue returns the selfish pool's long-run share of block
// rewards under the Eyal-Sirer strategy:
//
//	R = (a(1-a)^2 (4a + g(1-2a)) - a^3) / (1 - a(1 + (2-a)a)).
func RelativeRevenue(alpha, gamma float64) (float64, error) {
	if err := validate(alpha, gamma); err != nil {
		return 0, err
	}
	a, g := alpha, gamma
	return (a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a) /
		(1 - a*(1+(2-a)*a)), nil
}

// Threshold returns the closed-form profitability threshold
// alpha* = (1-gamma)/(3-2*gamma): for alpha above it, selfish mining beats
// honest mining in Bitcoin.
func Threshold(gamma float64) (float64, error) {
	if math.IsNaN(gamma) || gamma < 0 || gamma > 1 {
		return 0, fmt.Errorf("gamma %v: %w", gamma, ErrBadGamma)
	}
	return (1 - gamma) / (3 - 2*gamma), nil
}

// Profitable reports whether selfish mining strictly beats honest mining.
func Profitable(alpha, gamma float64) (bool, error) {
	r, err := RelativeRevenue(alpha, gamma)
	if err != nil {
		return false, err
	}
	return r > alpha, nil
}

// chainState is a state of Eyal and Sirer's 1-D chain: the pool's lead,
// with the fork race state 0' represented separately.
type chainState struct {
	Lead int
	Fork bool // the 0' state: two public branches of equal length
}

// RelativeRevenueNumeric solves Eyal and Sirer's 1-D Markov chain (states
// 0, 0', 1, 2, ... truncated at maxLead) and computes the pool's share of
// static rewards by per-transition attribution. It cross-checks
// RelativeRevenue; truncation error decays like (alpha/(1-alpha))^maxLead.
func RelativeRevenueNumeric(alpha, gamma float64, maxLead int) (float64, error) {
	if err := validate(alpha, gamma); err != nil {
		return 0, err
	}
	if maxLead < 4 {
		return 0, fmt.Errorf("eyalsirer: maxLead %d too small", maxLead)
	}
	var (
		a = alpha
		b = 1 - alpha
		g = gamma
	)
	c := markov.New[chainState]()
	zero := chainState{}
	fork := chainState{Fork: true}
	one := chainState{Lead: 1}

	// From 0: pool withholds (lead 1) or honest wins a block outright.
	c.AddTransition(zero, one, a)
	c.AddTransition(zero, zero, b)
	// From 1: pool extends to 2, or honest levels the race -> 0'.
	c.AddTransition(one, chainState{Lead: 2}, a)
	c.AddTransition(one, fork, b)
	// From 0': anyone's next block resolves the race.
	c.AddTransition(fork, zero, 1)
	// From lead >= 2: pool extends; honest shrinks the lead (at lead 2
	// the pool publishes everything and the race resets).
	for lead := 2; lead <= maxLead; lead++ {
		s := chainState{Lead: lead}
		if lead < maxLead {
			c.AddTransition(s, chainState{Lead: lead + 1}, a)
		} else {
			c.AddTransition(s, s, a)
		}
		if lead == 2 {
			c.AddTransition(s, zero, b)
		} else {
			c.AddTransition(s, chainState{Lead: lead - 1}, b)
		}
	}

	pi, err := c.Stationary(markov.Options{Method: markov.Iterative, SkipChecks: true})
	if err != nil {
		return 0, fmt.Errorf("eyalsirer: %w", err)
	}

	// Per-transition reward attribution, mirroring the original paper:
	// each event's block eventually wins the main chain or not; the
	// probabilities are fully determined at creation.
	var pool, honest float64
	for s, p := range pi {
		switch {
		case s == zero:
			// Honest block wins outright; the pool's first
			// private block wins iff the pool extends it, wins
			// the 0' race, or gamma-honest builds on it.
			honest += b * p
			pool += a * p * (a + a*b + b*b*g)
			honest += a * p * 0 // the losing branch earns nothing in Bitcoin
		case s == one:
			// Pool's second block always wins (lead 2 publishes
			// over any honest block). The honest block that forces
			// 0' wins only if (1-gamma)-honest extends it.
			pool += a * p
			honest += b * p * b * (1 - g)
		case s == fork:
			// Race resolution: winner takes the new block's
			// reward; the previously-counted branch heads were
			// settled at their own creation events.
			pool += a * p
			honest += b * p
		default:
			// Lead >= 2: every pool block eventually wins; every
			// honest block at lead 2 is orphaned, and at lead > 2
			// it is orphaned too (the pool's branch prevails).
			pool += a * p
		}
	}
	total := pool + honest
	if total == 0 {
		return 0, errors.New("eyalsirer: degenerate revenue")
	}
	return pool / total, nil
}

func validate(alpha, gamma float64) error {
	if math.IsNaN(alpha) || !(alpha > 0 && alpha < 0.5) {
		return fmt.Errorf("alpha %v: %w", alpha, ErrBadAlpha)
	}
	if math.IsNaN(gamma) || gamma < 0 || gamma > 1 {
		return fmt.Errorf("gamma %v: %w", gamma, ErrBadGamma)
	}
	return nil
}
