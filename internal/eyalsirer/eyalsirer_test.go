package eyalsirer

import (
	"errors"
	"math"
	"testing"
)

func TestThresholdKnownValues(t *testing.T) {
	tests := []struct {
		gamma float64
		want  float64
	}{
		{0, 1.0 / 3},
		{0.5, 0.25}, // the famous 25% result
		{1, 0},
	}
	for _, tt := range tests {
		got, err := Threshold(tt.gamma)
		if err != nil {
			t.Fatalf("Threshold(%v): %v", tt.gamma, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Threshold(%v) = %v, want %v", tt.gamma, got, tt.want)
		}
	}
}

func TestThresholdValidation(t *testing.T) {
	for _, gamma := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Threshold(gamma); !errors.Is(err, ErrBadGamma) {
			t.Errorf("Threshold(%v): err = %v, want ErrBadGamma", gamma, err)
		}
	}
}

func TestRelativeRevenueAtThresholdEqualsAlpha(t *testing.T) {
	// At the threshold the pool's share equals its hash power.
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75} {
		alpha, err := Threshold(gamma)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RelativeRevenue(alpha, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-alpha) > 1e-9 {
			t.Errorf("gamma=%v: R(alpha*) = %v, want alpha* = %v", gamma, r, alpha)
		}
	}
}

func TestRelativeRevenueMonotoneAboveThreshold(t *testing.T) {
	// Above the threshold, more hash power means a disproportionately
	// larger share.
	prevGain := 0.0
	for _, alpha := range []float64{0.27, 0.33, 0.40, 0.45} {
		r, err := RelativeRevenue(alpha, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		gain := r - alpha
		if gain <= prevGain {
			t.Errorf("alpha=%v: gain %v did not grow (prev %v)", alpha, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestRelativeRevenueValidation(t *testing.T) {
	if _, err := RelativeRevenue(0, 0.5); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("err = %v, want ErrBadAlpha", err)
	}
	if _, err := RelativeRevenue(0.5, 0.5); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("err = %v, want ErrBadAlpha", err)
	}
	if _, err := RelativeRevenue(0.3, -1); !errors.Is(err, ErrBadGamma) {
		t.Errorf("err = %v, want ErrBadGamma", err)
	}
}

func TestProfitable(t *testing.T) {
	tests := []struct {
		alpha, gamma float64
		want         bool
	}{
		{0.30, 0.5, true},  // above 0.25
		{0.20, 0.5, false}, // below 0.25
		{0.34, 0, true},    // above 1/3
		{0.32, 0, false},   // below 1/3
	}
	for _, tt := range tests {
		got, err := Profitable(tt.alpha, tt.gamma)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Profitable(%v, %v) = %v, want %v", tt.alpha, tt.gamma, got, tt.want)
		}
	}
}

func TestNumericMatchesClosedForm(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.25, 0.33, 0.45} {
		for _, gamma := range []float64{0, 0.5, 1} {
			closed, err := RelativeRevenue(alpha, gamma)
			if err != nil {
				t.Fatal(err)
			}
			numeric, err := RelativeRevenueNumeric(alpha, gamma, 120)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(closed-numeric) > 1e-6 {
				t.Errorf("a=%v g=%v: closed %v vs numeric %v",
					alpha, gamma, closed, numeric)
			}
		}
	}
}

func TestNumericValidation(t *testing.T) {
	if _, err := RelativeRevenueNumeric(0.3, 0.5, 2); err == nil {
		t.Error("maxLead=2 should fail")
	}
	if _, err := RelativeRevenueNumeric(0.6, 0.5, 50); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("err = %v, want ErrBadAlpha", err)
	}
}

func TestZeroGammaZeroRevenueAtSmallAlpha(t *testing.T) {
	// Far below the threshold, selfish mining strictly loses revenue.
	r, err := RelativeRevenue(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0.1 {
		t.Errorf("R(0.1, 0) = %v, want < 0.1", r)
	}
	if r < 0 {
		t.Errorf("R(0.1, 0) = %v, want >= 0", r)
	}
}
