package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got (%v, %v), want (nil, nil)", got, err)
	}
}

// TestMapWithStatePerWorker: each worker obtains exactly one state value
// and every invocation it runs sees that value, so callers can safely hang
// reusable resources off it.
func TestMapWithStatePerWorker(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var states atomic.Int32
		seen := sync.Map{}
		got, err := MapWith(workers, 40,
			func() *int32 { id := states.Add(1); return &id },
			func(state *int32, i int) (int, error) {
				seen.Store(i, *state)
				return i + int(*state), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if n := int(states.Load()); n > workers {
			t.Errorf("workers=%d: %d states created, want at most %d", workers, n, workers)
		}
		for i, v := range got {
			state, _ := seen.Load(i)
			if v != i+int(state.(int32)) {
				t.Errorf("workers=%d: result[%d] = %d inconsistent with state %d", workers, i, v, state)
			}
		}
	}
}

// TestMapWithSequentialSingleState: the workers<=1 path shares one state
// across all indices.
func TestMapWithSequentialSingleState(t *testing.T) {
	calls := 0
	_, err := MapWith(1, 10,
		func() *int { calls++; return new(int) },
		func(state *int, i int) (int, error) { *state++; return *state, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("newState called %d times, want 1", calls)
	}
}

// TestMapErrorDeterminism: whichever worker fails first in wall-clock time,
// the reported error must be the lowest-index one.
func TestMapErrorDeterminism(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Map(8, 20, func(i int) (int, error) {
		if i == 3 || i == 17 {
			return 0, fmt.Errorf("index %d: %w", i, wantErr)
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "index 3: boom" {
		t.Errorf("got error %q, want the lowest-index one", got)
	}
}

// TestMapRecoversPanic: a panicking work item surfaces as a *PanicError
// carrying its index and value instead of crashing the process, and the
// lowest-index-wins contract holds between panics and plain errors.
func TestMapRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 7 {
				panic("kaboom")
			}
			return i, nil
		})
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("workers=%d: got %v, want ErrPanic", workers, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T, want *PanicError", workers, err)
		}
		if pe.Index != 7 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = {%d %v stack:%d}, want index 7, kaboom, a stack",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}

	// A panic at a higher index loses to a plain error at a lower one, and
	// an error panic value stays visible to errors.Is through the chain.
	wantErr := errors.New("inner")
	_, err := Map(4, 20, func(i int) (int, error) {
		if i == 2 {
			return 0, fmt.Errorf("index 2: %w", wantErr)
		}
		if i == 11 {
			panic("later")
		}
		return i, nil
	})
	if errors.Is(err, ErrPanic) || !errors.Is(err, wantErr) {
		t.Errorf("got %v, want the index-2 plain error", err)
	}
	_, err = Map(1, 3, func(i int) (int, error) {
		if i == 1 {
			panic(wantErr)
		}
		return i, nil
	})
	if !errors.Is(err, ErrPanic) || !errors.Is(err, wantErr) {
		t.Errorf("got %v, want a PanicError chaining the panicked error", err)
	}
}

// TestMapCtxCancelSkipsPending: cancelling mid-batch returns promptly, the
// done mask exactly partitions finished from never-started items, and every
// finished item's result is bit-identical to an uncancelled run.
func TestMapCtxCancelSkipsPending(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		results, done, err := MapCtx(ctx, workers, 100, func(i int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return i * i, nil
		})
		cancel()
		if !errors.Is(err, ErrSkipped) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want ErrSkipped wrapping context.Canceled", workers, err)
		}
		if len(results) != 100 || len(done) != 100 {
			t.Fatalf("workers=%d: got %d results, %d done", workers, len(results), len(done))
		}
		finished := 0
		for i, ok := range done {
			if ok {
				finished++
				if results[i] != i*i {
					t.Errorf("workers=%d: finished result[%d] = %d, want %d", workers, i, results[i], i*i)
				}
			} else if results[i] != 0 {
				t.Errorf("workers=%d: skipped result[%d] = %d, want zero", workers, i, results[i])
			}
		}
		if finished == 0 || finished == 100 {
			t.Errorf("workers=%d: %d items finished, want a genuine partial batch", workers, finished)
		}
	}
}

// TestMapCtxDeadline: an already-expired deadline runs nothing and reports
// the deadline as the cause.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, done, err := MapCtx(ctx, 4, 10, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded in the chain", err)
	}
	for i, ok := range done {
		if ok {
			t.Errorf("item %d ran after the deadline", i)
		}
	}
}

// TestMapCtxComplete: with an un-cancelled context the ctx variant matches
// Map exactly and reports every item done.
func TestMapCtxComplete(t *testing.T) {
	results, done, err := MapCtx(context.Background(), 4, 30, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != i+1 || !done[i] {
			t.Fatalf("result[%d] = (%d, done=%v), want (%d, true)", i, results[i], done[i], i+1)
		}
	}
}

// TestMapCtxCancelPromptAndLeakFree: a cancelled batch with slow pending
// items returns without waiting for the full batch, and the worker
// goroutines are gone shortly after. This is the engine's graceful-drain
// guarantee: only in-flight items hold up the return.
func TestMapCtxCancelPromptAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	go func() {
		// Cancel once the pool is saturated, then release the in-flight
		// items.
		for i := 0; i < 4; i++ {
			<-started
		}
		cancel()
		close(release)
	}()
	begun := time.Now()
	_, done, err := MapCtx(ctx, 4, 1000, func(i int) (int, error) {
		started <- struct{}{}
		<-release
		return i, nil
	})
	if elapsed := time.Since(begun); elapsed > 10*time.Second {
		t.Fatalf("cancelled batch took %v, want a prompt return", elapsed)
	}
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("got %v, want ErrSkipped", err)
	}
	finished := 0
	for _, ok := range done {
		if ok {
			finished++
		}
	}
	// 4 items were in flight when the dispatcher stopped; a 5th may have
	// been handed off concurrently with the cancellation.
	if finished < 4 || finished > 8 {
		t.Errorf("%d items finished, want only the in-flight handful", finished)
	}
	// The workers must unwind: poll the goroutine count briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+1 {
		t.Errorf("%d goroutines alive after cancel, started with %d: worker leak", now, before)
	}
}

// TestMapWithCtxStateReuseMatchesSequential: per-worker state plus
// cancellation keeps the MapWith contract for every completed item.
func TestMapWithCtxStateReuseMatchesSequential(t *testing.T) {
	ctx := context.Background()
	results, done, err := MapWithCtx(ctx, 3, 25,
		func() *int { return new(int) },
		func(state *int, i int) (int, error) {
			*state++ // per-worker scratch must not influence results
			return i * 3, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if !done[i] || results[i] != i*3 {
			t.Fatalf("result[%d] = (%d, %v), want (%d, true)", i, results[i], done[i], i*3)
		}
	}
}
