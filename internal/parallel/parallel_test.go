package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got (%v, %v), want (nil, nil)", got, err)
	}
}

// TestMapWithStatePerWorker: each worker obtains exactly one state value
// and every invocation it runs sees that value, so callers can safely hang
// reusable resources off it.
func TestMapWithStatePerWorker(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var states atomic.Int32
		seen := sync.Map{}
		got, err := MapWith(workers, 40,
			func() *int32 { id := states.Add(1); return &id },
			func(state *int32, i int) (int, error) {
				seen.Store(i, *state)
				return i + int(*state), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if n := int(states.Load()); n > workers {
			t.Errorf("workers=%d: %d states created, want at most %d", workers, n, workers)
		}
		for i, v := range got {
			state, _ := seen.Load(i)
			if v != i+int(state.(int32)) {
				t.Errorf("workers=%d: result[%d] = %d inconsistent with state %d", workers, i, v, state)
			}
		}
	}
}

// TestMapWithSequentialSingleState: the workers<=1 path shares one state
// across all indices.
func TestMapWithSequentialSingleState(t *testing.T) {
	calls := 0
	_, err := MapWith(1, 10,
		func() *int { calls++; return new(int) },
		func(state *int, i int) (int, error) { *state++; return *state, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("newState called %d times, want 1", calls)
	}
}

// TestMapErrorDeterminism: whichever worker fails first in wall-clock time,
// the reported error must be the lowest-index one.
func TestMapErrorDeterminism(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Map(8, 20, func(i int) (int, error) {
		if i == 3 || i == 17 {
			return 0, fmt.Errorf("index %d: %w", i, wantErr)
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "index 3: boom" {
		t.Errorf("got error %q, want the lowest-index one", got)
	}
}
