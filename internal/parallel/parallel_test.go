package parallel

import (
	"errors"
	"fmt"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got (%v, %v), want (nil, nil)", got, err)
	}
}

// TestMapErrorDeterminism: whichever worker fails first in wall-clock time,
// the reported error must be the lowest-index one.
func TestMapErrorDeterminism(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Map(8, 20, func(i int) (int, error) {
		if i == 3 || i == 17 {
			return 0, fmt.Errorf("index %d: %w", i, wantErr)
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "index 3: boom" {
		t.Errorf("got error %q, want the lowest-index one", got)
	}
}
