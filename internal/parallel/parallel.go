// Package parallel provides the deterministic worker pool shared by the
// simulation batch runner (sim.RunMany) and the experiment grid engine.
// Work items are independent and indexed; results come back in index order
// and the lowest-index error wins, so output never depends on goroutine
// scheduling. MapWith additionally threads one reusable state value per
// worker through the items it processes, so callers can amortize large
// allocations (simulators, arenas) across a batch without affecting
// results.
package parallel

import (
	"runtime"
	"sync"
)

// Map evaluates fn at indices 0..n-1 across at most workers goroutines
// (zero or negative workers: GOMAXPROCS) and returns the results in index
// order. All indices are evaluated even when one fails; the lowest-index
// error is returned, so failures are deterministic under parallelism too.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWith is Map with per-worker state: every worker goroutine obtains one
// value from newState and hands it to each invocation it executes. The
// state exists to carry reusable resources — simulators, arenas, scratch
// buffers — across the work items a worker happens to process; it must not
// influence results, which keep the Map contract (index order, all indices
// evaluated, lowest-index error) regardless of how items land on workers.
func MapWith[S, T any](workers, n int, newState func() S, fn func(state S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		state := newState()
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(state, i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				state := newState()
				for i := range jobs {
					results[i], errs[i] = fn(state, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
