// Package parallel provides the deterministic worker pool shared by the
// simulation batch runner (sim.RunMany) and the experiment grid engine.
// Work items are independent and indexed; results come back in index order
// and the lowest-index error wins, so output never depends on goroutine
// scheduling. MapWith additionally threads one reusable state value per
// worker through the items it processes, so callers can amortize large
// allocations (simulators, arenas) across a batch without affecting
// results.
//
// The pool is hardened for service use: the context-aware variants
// (MapCtx, MapWithCtx) propagate deadlines and cancellation — in-flight
// items finish, pending items are skipped — and every variant isolates a
// panicking work item into a *PanicError instead of taking down the
// process.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// ErrPanic is the sentinel wrapped by every *PanicError, so callers can
// classify recovered worker panics with errors.Is.
var ErrPanic = errors.New("parallel: work item panicked")

// PanicError reports a work item that panicked. The pool recovers the panic
// in the worker goroutine, so one poisoned item surfaces as an indexed
// error — subject to the usual lowest-index-wins rule — instead of
// crashing the whole process.
type PanicError struct {
	// Index is the work item that panicked.
	Index int

	// Value is the recovered panic value.
	Value any

	// Stack is the panicking goroutine's stack trace, captured at
	// recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: item %d: %v", ErrPanic, e.Index, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) work. If the panic value itself was
// an error it is exposed to errors.Is/As through ErrPanic's chain too.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return fmt.Errorf("%w: %w", ErrPanic, err)
	}
	return ErrPanic
}

// ErrSkipped is the sentinel wrapped by the error MapCtx/MapWithCtx return
// when cancellation struck items from the batch before they could run. The
// context's cause is in the same chain, so errors.Is(err, context.Canceled)
// (or DeadlineExceeded) works as well.
var ErrSkipped = errors.New("parallel: items skipped by cancellation")

// Map evaluates fn at indices 0..n-1 across at most workers goroutines
// (zero or negative workers: GOMAXPROCS) and returns the results in index
// order. All indices are evaluated even when one fails; the lowest-index
// error is returned, so failures are deterministic under parallelism too.
// A panicking item is reported as a *PanicError rather than propagated.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWith is Map with per-worker state: every worker goroutine obtains one
// value from newState and hands it to each invocation it executes. The
// state exists to carry reusable resources — simulators, arenas, scratch
// buffers — across the work items a worker happens to process; it must not
// influence results, which keep the Map contract (index order, all indices
// evaluated, lowest-index error) regardless of how items land on workers.
func MapWith[S, T any](workers, n int, newState func() S, fn func(state S, i int) (T, error)) ([]T, error) {
	results, _, err := MapWithCtx(context.Background(), workers, n, newState, fn)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MapCtx is Map under a context: no new work item starts once ctx is done.
// See MapWithCtx for the cancellation contract.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, []bool, error) {
	return MapWithCtx(ctx, workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWithCtx is MapWith under a context. Cancellation (or an expired
// deadline) stops the dispatch of pending work items; items already in
// flight run to completion, so every index is either fully evaluated or
// never started — a completed item's result is bit-identical to what an
// uncancelled run would have produced for that index.
//
// It returns the results and a done mask in index order: done[i] reports
// whether fn ran for index i (true even when fn returned an error). The
// error is the lowest-index item error — including recovered panics, as
// *PanicError — or, when every executed item succeeded but cancellation
// skipped some, an error wrapping ErrSkipped and the context's cause.
// Unlike Map/MapWith, the partial results are returned alongside a non-nil
// error, so callers can checkpoint completed work.
func MapWithCtx[S, T any](ctx context.Context, workers, n int, newState func() S, fn func(state S, i int) (T, error)) ([]T, []bool, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	done := make([]bool, n)
	if workers <= 1 {
		state := newState()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			results[i], errs[i] = runItem(state, i, fn)
			done[i] = true
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				state := newState()
				for i := range jobs {
					results[i], errs[i] = runItem(state, i, fn)
					done[i] = true
				}
			}()
		}
		// The dispatcher stops feeding as soon as the context is done;
		// the unbuffered channel guarantees every index it sent was
		// picked up by a worker, so done[] exactly partitions the batch
		// into finished and never-started items.
	feed:
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, done, err
		}
	}
	for _, ok := range done {
		if !ok {
			skipped := 0
			for _, ok := range done {
				if !ok {
					skipped++
				}
			}
			return results, done, fmt.Errorf("%w: %d of %d: %w",
				ErrSkipped, skipped, n, context.Cause(ctx))
		}
	}
	return results, done, nil
}

// runItem executes one work item, converting a panic into a *PanicError so
// a poisoned item cannot take down the worker pool. The non-panicking path
// adds no allocations (the defer is open-coded and its closure stays on the
// stack).
func runItem[S, T any](state S, i int, fn func(state S, i int) (T, error)) (result T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(state, i)
}
