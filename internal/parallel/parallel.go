// Package parallel provides the deterministic worker pool shared by the
// simulation batch runner (sim.RunMany) and the experiment grid engine.
// Work items are independent and indexed; results come back in index order
// and the lowest-index error wins, so output never depends on goroutine
// scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// Map evaluates fn at indices 0..n-1 across at most workers goroutines
// (zero or negative workers: GOMAXPROCS) and returns the results in index
// order. All indices are evaluated even when one fails; the lowest-index
// error is returned, so failures are deterministic under parallelism too.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
