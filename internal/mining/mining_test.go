package mining

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/rng"
)

func TestNewPopulationNormalizes(t *testing.T) {
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 30, Pool: 1},
		{ID: 2, Power: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Alpha(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.3", got)
	}
	if got := p.Miner(0).Power; math.Abs(got-0.3) > 1e-12 {
		t.Errorf("normalized power = %v, want 0.3", got)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestNewPopulationValidation(t *testing.T) {
	tests := []struct {
		name   string
		miners []Miner
	}{
		{"empty", nil},
		{"zero power", []Miner{{ID: 1, Power: 0}}},
		{"negative power", []Miner{{ID: 1, Power: -1}}},
		{"NaN power", []Miner{{ID: 1, Power: math.NaN()}}},
		{"inf power", []Miner{{ID: 1, Power: math.Inf(1)}}},
		{"duplicate ID", []Miner{{ID: 1, Power: 1}, {ID: 1, Power: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPopulation(tt.miners); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestEqualPopulation(t *testing.T) {
	p, err := Equal(1000, 450)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Alpha(); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.45", got)
	}
	if p.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", p.Len())
	}
	// IDs 1..n, no ID 0 (reserved for genesis).
	for i, m := range p.Miners() {
		if m.ID != chain.MinerID(i+1) {
			t.Fatalf("miner %d has ID %d, want %d", i, m.ID, i+1)
		}
		if got := m.Selfish(); got != (i < 450) {
			t.Fatalf("miner %d selfish = %v", i, got)
		}
	}
}

func TestEqualPopulationValidation(t *testing.T) {
	if _, err := Equal(0, 0); !errors.Is(err, ErrNoMiners) {
		t.Errorf("Equal(0,0) err = %v, want ErrNoMiners", err)
	}
	if _, err := Equal(10, 11); err == nil {
		t.Error("Equal(10,11) should fail")
	}
	if _, err := Equal(10, -1); err == nil {
		t.Error("Equal(10,-1) should fail")
	}
}

func TestTwoAgent(t *testing.T) {
	p, err := TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Alpha(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.3", got)
	}
	for _, alpha := range []float64{0, 1, -0.1, 1.1, math.NaN()} {
		if _, err := TwoAgent(alpha); err == nil {
			t.Errorf("TwoAgent(%v) should fail", alpha)
		}
	}
}

func TestSampleFrequencies(t *testing.T) {
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 1, Pool: 1},
		{ID: 2, Power: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(101)
	const n = 100000
	selfish := 0
	for i := 0; i < n; i++ {
		if p.Sample(r).Selfish() {
			selfish++
		}
	}
	got := float64(selfish) / n
	sigma := math.Sqrt(0.25 * 0.75 / n)
	if math.Abs(got-0.25) > 5*sigma {
		t.Errorf("selfish frequency %v deviates more than 5 sigma from 0.25", got)
	}
}

func TestIsSelfishMatchesMinerFlags(t *testing.T) {
	p, err := NewPopulation([]Miner{
		{ID: 3, Power: 1, Pool: 1},
		{ID: 7, Power: 2},
		{ID: 1, Power: 1, Pool: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Miners() {
		if got := p.IsSelfish(m.ID); got != m.Selfish() {
			t.Errorf("IsSelfish(%d) = %v, want %v", m.ID, got, m.Selfish())
		}
	}
	// Unknown and out-of-range IDs are honest.
	for _, id := range []chain.MinerID{0, 2, 100} {
		if p.IsSelfish(id) {
			t.Errorf("IsSelfish(%d) = true for a miner not in the population", id)
		}
	}
}

func TestNewPopulationRejectsNegativeID(t *testing.T) {
	if _, err := NewPopulation([]Miner{{ID: -1, Power: 1}}); !errors.Is(err, ErrBadID) {
		t.Errorf("negative ID: err = %v, want ErrBadID", err)
	}
}

func TestNewPopulationRejectsSparseID(t *testing.T) {
	// A huge sparse ID would make the dense selfish index (and the dense
	// settlement tallies downstream) allocate O(maxID) memory.
	if _, err := NewPopulation([]Miner{{ID: 1 << 30, Power: 1}}); !errors.Is(err, ErrBadID) {
		t.Errorf("sparse ID: err = %v, want ErrBadID", err)
	}
	// Moderately sparse IDs stay allowed.
	if _, err := NewPopulation([]Miner{{ID: 100, Power: 1}, {ID: 7, Power: 2}}); err != nil {
		t.Errorf("moderately sparse IDs rejected: %v", err)
	}
}

func TestSampleMatchesCategoricalDistribution(t *testing.T) {
	// The alias-table sampler must reproduce the weight distribution the
	// linear categorical draw defines; compare per-miner frequencies on
	// a skewed population.
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 10, Pool: 1},
		{ID: 2, Power: 1},
		{ID: 3, Power: 5},
		{ID: 4, Power: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2024)
	const n = 200000
	counts := make(map[chain.MinerID]int)
	for i := 0; i < n; i++ {
		counts[p.Sample(r).ID]++
	}
	for _, m := range p.Miners() {
		got := float64(counts[m.ID]) / n
		want := m.Power // Miners() returns normalized powers
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 5*sigma+1e-9 {
			t.Errorf("miner %d: frequency %v, want %v +/- 5 sigma", m.ID, got, want)
		}
	}
}

func TestNextEventTiming(t *testing.T) {
	p, err := TwoAgent(0.4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const (
		n    = 100000
		rate = 2.0
	)
	var sum float64
	for i := 0; i < n; i++ {
		_, dt := p.NextEvent(r, rate)
		if dt < 0 {
			t.Fatal("negative waiting time")
		}
		sum += dt
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("mean waiting time %v, want %v", mean, 1/rate)
	}
}

func TestBernoulliDelayGeometric(t *testing.T) {
	r := rng.New(55)
	const (
		prob = 0.01
		n    = 50000
	)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(BernoulliDelay(r, prob))
	}
	mean := sum / n
	want := 1 / prob
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean trials %v, want %v +/- 5%%", mean, want)
	}
}

func TestBernoulliDelayPoissonApproximation(t *testing.T) {
	// Normalized geometric delays (trials * prob) converge to Exp(1):
	// compare the empirical survival function at a few points.
	r := rng.New(77)
	const (
		prob = 1e-3
		n    = 20000
	)
	exceed1, exceed2 := 0, 0
	for i := 0; i < n; i++ {
		x := float64(BernoulliDelay(r, prob)) * prob
		if x > 1 {
			exceed1++
		}
		if x > 2 {
			exceed2++
		}
	}
	if got, want := float64(exceed1)/n, math.Exp(-1); math.Abs(got-want) > 0.02 {
		t.Errorf("P(X>1) = %v, want %v +/- 0.02", got, want)
	}
	if got, want := float64(exceed2)/n, math.Exp(-2); math.Abs(got-want) > 0.02 {
		t.Errorf("P(X>2) = %v, want %v +/- 0.02", got, want)
	}
}

func TestBernoulliDelayPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BernoulliDelay(%v) did not panic", p)
				}
			}()
			BernoulliDelay(rng.New(1), p)
		}()
	}
}

func TestEthereum2018Pools(t *testing.T) {
	pools := Ethereum2018Pools()
	if len(pools) != 6 {
		t.Fatalf("got %d pools, want 6", len(pools))
	}
	var total float64
	for _, p := range pools {
		total += p.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", total)
	}
	if pools[0].Name != "Ethermine" || math.Abs(pools[0].Share-0.2634) > 1e-12 {
		t.Errorf("top pool = %+v, want Ethermine 26.34%%", pools[0])
	}
	// Paper: top two pools dominate 48.8% of total hash power.
	if got := pools[0].Share + pools[1].Share; math.Abs(got-0.488) > 1e-9 {
		t.Errorf("top-2 share = %v, want 0.488", got)
	}
	// Paper: top five pools have more than 81%.
	var top5 float64
	for _, p := range pools[:5] {
		top5 += p.Share
	}
	if top5 <= 0.81 {
		t.Errorf("top-5 share = %v, want > 0.81", top5)
	}
}

func TestMinersReturnsCopy(t *testing.T) {
	p, err := TwoAgent(0.25)
	if err != nil {
		t.Fatal(err)
	}
	ms := p.Miners()
	ms[0].Power = 99
	if p.Miner(0).Power == 99 {
		t.Error("Miners exposed internal state")
	}
}

func TestPoolIndexesAndPowerSums(t *testing.T) {
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 2, Pool: 1},
		{ID: 2, Power: 1, Pool: 2},
		{ID: 3, Power: 3, Pool: 1},
		{ID: 4, Power: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumPools(); got != 2 {
		t.Fatalf("NumPools = %d, want 2", got)
	}
	if got := p.PoolPower(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PoolPower(1) = %v, want 0.5", got)
	}
	if got := p.PoolPower(2); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("PoolPower(2) = %v, want 0.1", got)
	}
	if got := p.PoolPower(HonestPool); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("honest PoolPower = %v, want 0.4", got)
	}
	if got := p.PoolPower(99); got != 0 {
		t.Errorf("PoolPower(99) = %v, want 0", got)
	}
	if got := p.Alpha(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.6", got)
	}
	wantPools := map[chain.MinerID]PoolID{1: 1, 2: 2, 3: 1, 4: 0, 0: 0, 42: 0}
	for id, want := range wantPools {
		if got := p.PoolOf(id); got != want {
			t.Errorf("PoolOf(%d) = %d, want %d", id, got, want)
		}
	}
	members := p.PoolMiners(1)
	if len(members) != 2 || members[0].ID != 1 || members[1].ID != 3 {
		t.Errorf("PoolMiners(1) = %+v, want miners 1 and 3", members)
	}
	if got := p.PoolMiners(7); got != nil {
		t.Errorf("PoolMiners(7) = %+v, want nil", got)
	}
}

func TestNewPopulationRejectsBadPool(t *testing.T) {
	if _, err := NewPopulation([]Miner{{ID: 1, Power: 1, Pool: -1}}); !errors.Is(err, ErrBadPool) {
		t.Errorf("negative pool: err = %v, want ErrBadPool", err)
	}
	// Pool labels larger than the miner count would blow up the dense
	// per-pool structures.
	if _, err := NewPopulation([]Miner{{ID: 1, Power: 1, Pool: 100}}); !errors.Is(err, ErrBadPool) {
		t.Errorf("sparse pool: err = %v, want ErrBadPool", err)
	}
}

func TestMultiAgent(t *testing.T) {
	p, err := MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPools() != 2 || p.Len() != 3 {
		t.Fatalf("NumPools = %d, Len = %d, want 2 pools over 3 agents", p.NumPools(), p.Len())
	}
	if got := p.Alpha(); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.45", got)
	}
	if got := p.PoolPower(2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("PoolPower(2) = %v, want 0.2", got)
	}
	for _, alphas := range [][]float64{nil, {0}, {-0.1}, {0.6, 0.5}, {1}} {
		if _, err := MultiAgent(alphas...); err == nil {
			t.Errorf("MultiAgent(%v) should fail", alphas)
		}
	}
	// The single-pool case is exactly TwoAgent.
	multi, err := MultiAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	two, err := TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi.Miners(), two.Miners()) {
		t.Errorf("MultiAgent(0.3) miners %+v differ from TwoAgent %+v", multi.Miners(), two.Miners())
	}
}

func TestEqualPools(t *testing.T) {
	p, err := EqualPools(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPools := []PoolID{1, 1, 1, 2, 2, 0, 0, 0, 0, 0}
	for i, m := range p.Miners() {
		if m.Pool != wantPools[i] {
			t.Errorf("miner %d pool = %d, want %d", i, m.Pool, wantPools[i])
		}
	}
	if got := p.PoolPower(2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("PoolPower(2) = %v, want 0.2", got)
	}
	if _, err := EqualPools(5, 3, 3); !errors.Is(err, ErrBadPool) {
		t.Errorf("oversubscribed pools: err = %v, want ErrBadPool", err)
	}
	if _, err := EqualPools(5, -1); !errors.Is(err, ErrBadPool) {
		t.Errorf("negative pool size: err = %v, want ErrBadPool", err)
	}
}

func TestSampleMemberDistribution(t *testing.T) {
	// The per-pool alias path must reproduce the within-pool weight
	// distribution.
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 1, Pool: 1},
		{ID: 2, Power: 3, Pool: 1},
		{ID: 3, Power: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(321)
	const n = 100000
	counts := make(map[chain.MinerID]int)
	for i := 0; i < n; i++ {
		m := p.SampleMember(1, r)
		if m.Pool != 1 {
			t.Fatalf("SampleMember(1) returned miner %d of pool %d", m.ID, m.Pool)
		}
		counts[m.ID]++
	}
	for id, want := range map[chain.MinerID]float64{1: 0.25, 2: 0.75} {
		got := float64(counts[id]) / n
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("member %d frequency %v, want %v +/- 5 sigma", id, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleMember of an empty pool did not panic")
		}
	}()
	p.SampleMember(3, r)
}

func TestSampleSelfishDistribution(t *testing.T) {
	// The combined selfish alias path must reproduce the hash-power
	// distribution conditioned on the producer being selfish, across pools.
	p, err := NewPopulation([]Miner{
		{ID: 1, Power: 1, Pool: 1},
		{ID: 2, Power: 3, Pool: 2},
		{ID: 3, Power: 2, Pool: 2},
		{ID: 4, Power: 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(654)
	const n = 100000
	counts := make(map[chain.MinerID]int)
	for i := 0; i < n; i++ {
		m := p.SampleSelfish(r)
		if m.Pool == HonestPool {
			t.Fatalf("SampleSelfish returned honest miner %d", m.ID)
		}
		counts[m.ID]++
	}
	// Conditional weights: 1/6, 3/6, 2/6 of the selfish total.
	for id, want := range map[chain.MinerID]float64{1: 1.0 / 6, 2: 0.5, 3: 1.0 / 3} {
		got := float64(counts[id]) / n
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("member %d frequency %v, want %v +/- 5 sigma", id, got, want)
		}
	}
}

func TestSampleSelfishConsumesTwoDraws(t *testing.T) {
	// Like Sample, the conditional draw must consume exactly two generator
	// outputs so fast-forward mode has a fixed consumption pattern.
	p, err := TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	a := rng.New(777)
	b := rng.New(777)
	for i := 0; i < 100; i++ {
		p.SampleSelfish(a)
		b.Uint64()
		b.Float64()
	}
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatal("SampleSelfish consumption pattern is not two outputs per draw")
	}
}

func TestSampleSelfishPanicsWithoutSelfishPower(t *testing.T) {
	p, err := Equal(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleSelfish on an all-honest population did not panic")
		}
	}()
	p.SampleSelfish(rng.New(1))
}

func TestSoleMember(t *testing.T) {
	p, err := MultiAgent(0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := p.SoleMember(HonestPool)
	if !ok || m.ID != 3 || m.Pool != HonestPool {
		t.Errorf("SoleMember(honest) = %+v, %v; want the honest aggregate (ID 3)", m, ok)
	}
	if m, ok := p.SoleMember(1); !ok || m.ID != 1 {
		t.Errorf("SoleMember(1) = %+v, %v; want pool-1 agent", m, ok)
	}
	multi, err := Equal(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := multi.SoleMember(1); ok {
		t.Error("SoleMember of a 4-member pool reported a sole member")
	}
	if _, ok := multi.SoleMember(7); ok {
		t.Error("SoleMember of a nonexistent pool reported a member")
	}
}
