// Package mining models the PoW block-production process. Following
// Sec. III-A of the paper, mining is a series of Bernoulli trials whose
// success probability is small enough that block production is a Poisson
// process: the i-th miner with hash-power fraction m_i produces blocks at
// rate f*m_i. After rescaling time by the total rate f, the winner of each
// block event is simply a categorical draw weighted by hash power, and
// inter-arrival times are Exp(1).
package mining

import (
	"errors"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// Errors returned by population constructors.
var (
	// ErrNoMiners is returned for an empty population.
	ErrNoMiners = errors.New("mining: population has no miners")

	// ErrBadPower is returned when a miner's hash power is not a
	// positive finite number.
	ErrBadPower = errors.New("mining: miner hash power must be positive")

	// ErrBadID is returned when a miner's ID is negative or too sparse
	// for the population. IDs index the dense per-miner structures used
	// by sampling and reward settlement, so they must be non-negative
	// and roughly dense (the reserved genesis ID is 0 and populations
	// conventionally use 1..n); a huge sparse ID would silently turn
	// O(n) construction into an O(maxID) allocation.
	ErrBadID = errors.New("mining: miner ID negative or too sparse for the population")
)

// maxIDSlack bounds how sparse miner IDs may be: the largest ID must stay
// below maxIDSlack*len(miners) + maxIDSlack.
const maxIDSlack = 64

// Miner describes one participant.
type Miner struct {
	// ID is the miner's identifier, used for reward attribution.
	ID chain.MinerID

	// Power is the miner's hash power. Powers are relative weights;
	// the population normalizes them.
	Power float64

	// Selfish marks members of the colluding pool.
	Selfish bool
}

// Population is a fixed set of miners with normalized hash powers. All
// per-draw and per-query structures (the alias table, the selfish-ID index)
// are precomputed at construction, so sampling and pool-membership checks
// cost O(1) regardless of population size. A Population is immutable and
// safe for concurrent use (each Source must still be goroutine-local).
type Population struct {
	miners  []Miner
	weights []float64
	alpha   float64

	// alias is the Walker alias table over weights: one Uint64 plus one
	// Float64 per draw, independent of the number of miners.
	alias *rng.AliasTable

	// selfishByID indexes pool membership by MinerID, replacing the
	// per-run map the simulator used to rebuild from Miners().
	selfishByID []bool
}

// NewPopulation validates and normalizes the miner set. Miner IDs must be
// unique and non-negative. The fraction of selfish power (alpha) is computed
// from the normalized weights.
func NewPopulation(miners []Miner) (*Population, error) {
	if len(miners) == 0 {
		return nil, ErrNoMiners
	}
	var total float64
	maxID := chain.MinerID(0)
	seen := make(map[chain.MinerID]bool, len(miners))
	for _, m := range miners {
		if !(m.Power > 0) || m.Power > 1e18 {
			return nil, fmt.Errorf("miner %d power %v: %w", m.ID, m.Power, ErrBadPower)
		}
		if m.ID < 0 || int(m.ID) > maxIDSlack*(len(miners)+1) {
			return nil, fmt.Errorf("miner ID %d (population of %d): %w", m.ID, len(miners), ErrBadID)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("mining: duplicate miner ID %d", m.ID)
		}
		seen[m.ID] = true
		if m.ID > maxID {
			maxID = m.ID
		}
		total += m.Power
	}
	p := &Population{
		miners:      append([]Miner(nil), miners...),
		weights:     make([]float64, len(miners)),
		selfishByID: make([]bool, maxID+1),
	}
	for i, m := range miners {
		p.weights[i] = m.Power / total
		if m.Selfish {
			p.alpha += p.weights[i]
			p.selfishByID[m.ID] = true
		}
	}
	p.alias = rng.NewAliasTable(p.weights)
	return p, nil
}

// Equal builds the paper's simulation population: n miners with identical
// block-generation rates, the first selfishCount of them forming the
// selfish pool (Sec. V: n = 1000, selfishCount <= 450). Miner IDs are
// 1..n; ID 0 is reserved for the genesis block.
func Equal(n, selfishCount int) (*Population, error) {
	if n <= 0 {
		return nil, ErrNoMiners
	}
	if selfishCount < 0 || selfishCount > n {
		return nil, fmt.Errorf("mining: selfish count %d out of [0, %d]", selfishCount, n)
	}
	miners := make([]Miner, n)
	for i := range miners {
		miners[i] = Miner{
			ID:      chain.MinerID(i + 1),
			Power:   1,
			Selfish: i < selfishCount,
		}
	}
	return NewPopulation(miners)
}

// TwoAgent builds the aggregate two-miner population used by the analysis:
// one selfish pool with power alpha and one honest aggregate with power
// 1-alpha. alpha must lie in (0, 1).
func TwoAgent(alpha float64) (*Population, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("mining: alpha %v out of (0, 1)", alpha)
	}
	return NewPopulation([]Miner{
		{ID: 1, Power: alpha, Selfish: true},
		{ID: 2, Power: 1 - alpha},
	})
}

// Len returns the number of miners.
func (p *Population) Len() int { return len(p.miners) }

// Alpha returns the total selfish hash-power fraction.
func (p *Population) Alpha() float64 { return p.alpha }

// Miner returns the i-th miner (0-based) with its normalized power.
func (p *Population) Miner(i int) Miner {
	m := p.miners[i]
	m.Power = p.weights[i]
	return m
}

// Miners returns all miners with normalized powers.
func (p *Population) Miners() []Miner {
	out := make([]Miner, p.Len())
	for i := range out {
		out[i] = p.Miner(i)
	}
	return out
}

// IsSelfish reports whether the miner with the given ID belongs to the
// colluding pool. Unknown IDs are honest. It is an O(1) index lookup, safe
// for per-block use.
func (p *Population) IsSelfish(id chain.MinerID) bool {
	return int(id) < len(p.selfishByID) && p.selfishByID[id]
}

// Sample draws the producer of the next block, weighted by hash power. The
// draw uses the precomputed alias table: O(1) per event independent of the
// population size, consuming exactly two generator outputs.
func (p *Population) Sample(r *rng.Source) Miner {
	return p.miners[p.alias.Draw(r)]
}

// NextEvent draws the next block event under a Poisson race at the given
// total rate: the winning miner and the exponentially distributed waiting
// time since the previous event.
func (p *Population) NextEvent(r *rng.Source, totalRate float64) (Miner, float64) {
	return p.Sample(r), r.Exp(totalRate)
}

// BernoulliDelay simulates the un-approximated mining model: repeated
// Bernoulli trials with per-trial success probability prob, returning the
// number of trials until the first success (geometric, support 1,2,...).
// As prob -> 0 with trials per unit time 1/prob, the normalized delay
// converges to Exp(1) — the Poisson approximation the paper invokes.
func BernoulliDelay(r *rng.Source, prob float64) int {
	if prob <= 0 || prob > 1 {
		panic(fmt.Sprintf("mining: Bernoulli probability %v out of (0, 1]", prob))
	}
	trials := 1
	for !r.Bernoulli(prob) {
		trials++
	}
	return trials
}

// PoolShare is one entry of the 2018 Ethereum mining-pool snapshot.
type PoolShare struct {
	Name  string
	Share float64 // fraction of total hash power
}

// Ethereum2018Pools returns the top-5 pool hash-power distribution of
// Fig. 6 (etherscan snapshot, September 2018).
func Ethereum2018Pools() []PoolShare {
	return []PoolShare{
		{Name: "Ethermine", Share: 0.2634},
		{Name: "SparkPool", Share: 0.2246},
		{Name: "F2Pool", Share: 0.1337},
		{Name: "Nanopool", Share: 0.1033},
		{Name: "MiningPoolHub", Share: 0.0878},
		{Name: "Others", Share: 0.1872},
	}
}
