// Package mining models the PoW block-production process. Following
// Sec. III-A of the paper, mining is a series of Bernoulli trials whose
// success probability is small enough that block production is a Poisson
// process: the i-th miner with hash-power fraction m_i produces blocks at
// rate f*m_i. After rescaling time by the total rate f, the winner of each
// block event is simply a categorical draw weighted by hash power, and
// inter-arrival times are Exp(1).
//
// Miners carry a pool label: pool 0 is the honest crowd, pools 1..K are
// colluding groups that may each run their own (selfish) strategy. The
// paper's single-pool setting is the K = 1 special case.
package mining

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// Errors returned by population constructors.
var (
	// ErrNoMiners is returned for an empty population.
	ErrNoMiners = errors.New("mining: population has no miners")

	// ErrBadPower is returned when a miner's hash power is not a
	// positive finite number.
	ErrBadPower = errors.New("mining: miner hash power must be positive")

	// ErrBadID is returned when a miner's ID is negative or too sparse
	// for the population. IDs index the dense per-miner structures used
	// by sampling and reward settlement, so they must be non-negative
	// and roughly dense (the reserved genesis ID is 0 and populations
	// conventionally use 1..n); a huge sparse ID would silently turn
	// O(n) construction into an O(maxID) allocation.
	ErrBadID = errors.New("mining: miner ID negative or too sparse for the population")

	// ErrBadPool is returned when a miner's pool label is negative or
	// exceeds the number of miners (pool labels index dense per-pool
	// structures; a population cannot have more non-empty pools than
	// miners).
	ErrBadPool = errors.New("mining: pool label negative or too large for the population")
)

// maxIDSlack bounds how sparse miner IDs may be: the largest ID must stay
// below maxIDSlack*len(miners) + maxIDSlack.
const maxIDSlack = 64

// PoolID labels a group of colluding miners. Pool 0 is the honest crowd;
// pools 1..K are the competing (potentially selfish) pools.
type PoolID int

// HonestPool is the pool label of protocol-following miners.
const HonestPool PoolID = 0

// Miner describes one participant.
type Miner struct {
	// ID is the miner's identifier, used for reward attribution.
	ID chain.MinerID

	// Power is the miner's hash power. Powers are relative weights;
	// the population normalizes them.
	Power float64

	// Pool is the miner's pool label: 0 (HonestPool) for the honest
	// crowd, 1..K for members of a colluding pool.
	Pool PoolID
}

// Selfish reports whether the miner belongs to any colluding pool.
func (m Miner) Selfish() bool { return m.Pool != HonestPool }

// Population is a fixed set of miners with normalized hash powers. The
// query structures (the dense pool index, per-pool power sums, per-pool
// member lists) are precomputed at construction; the sampling structures
// (the Walker alias tables) are built once on first draw, so sweeps whose
// every job is served from the result cache never pay for them. Sampling,
// pool lookups, and pool-conditional sampling all cost O(1) regardless of
// population size. A Population is logically immutable and safe for
// concurrent use (each Source must still be goroutine-local).
type Population struct {
	miners  []Miner
	weights []float64
	alpha   float64

	// poolByID indexes the pool label by MinerID (dense; unknown IDs are
	// honest), replacing the per-run membership map the simulator used to
	// rebuild from Miners().
	poolByID []PoolID

	// poolPower[p] is the total normalized hash power of pool p; index 0
	// is the honest crowd.
	poolPower []float64

	// poolMembers[p] lists the miner indices of pool p in input order —
	// the dense member index backing PoolMiners and the per-pool alias
	// tables.
	poolMembers [][]int32

	// selfishMembers lists the miner indices of every pool >= 1 in input
	// order; the alias table over their weights lives in samplers.
	selfishMembers []int32

	// smp holds the lazily built sampling structures: a fully built set is
	// published once with an atomic store, so concurrent first draws are
	// safe, and every later draw is one atomic load (a plain load on
	// mainstream architectures). Deferring the build keeps fully cached
	// sweeps — which construct populations only to address results — from
	// building alias tables they never draw from.
	smp     atomic.Pointer[samplers]
	smpOnce sync.Once
}

// samplers bundles the population's alias tables, built together on first
// use: the population-wide table, the per-pool tables (nil for empty
// pools), and the table conditioned on "the producer is selfish" (nil when
// alpha is zero). Each draw costs one Uint64 plus one Float64, independent
// of the number of miners.
type samplers struct {
	alias        *rng.AliasTable
	poolAlias    []*rng.AliasTable
	selfishAlias *rng.AliasTable
}

// samplers returns the population's sampling structures, building them on
// first use. The built path is a single atomic load, small enough to inline
// into every draw.
func (p *Population) samplers() *samplers {
	if s := p.smp.Load(); s != nil {
		return s
	}
	return p.buildSamplers()
}

// buildSamplers is the cold first-draw path behind samplers.
func (p *Population) buildSamplers() *samplers {
	p.smpOnce.Do(func() {
		s := &samplers{alias: rng.NewAliasTable(p.weights)}
		s.poolAlias = make([]*rng.AliasTable, len(p.poolMembers))
		memberWeights := make([]float64, 0, len(p.miners))
		for pool, members := range p.poolMembers {
			if len(members) == 0 {
				continue
			}
			memberWeights = memberWeights[:0]
			for _, i := range members {
				memberWeights = append(memberWeights, p.weights[i])
			}
			s.poolAlias[pool] = rng.NewAliasTable(memberWeights)
		}
		if len(p.selfishMembers) > 0 {
			memberWeights = memberWeights[:0]
			for _, i := range p.selfishMembers {
				memberWeights = append(memberWeights, p.weights[i])
			}
			s.selfishAlias = rng.NewAliasTable(memberWeights)
		}
		p.smp.Store(s)
	})
	return p.smp.Load()
}

// NewPopulation validates and normalizes the miner set. Miner IDs must be
// unique and non-negative; pool labels must be non-negative and no larger
// than the miner count. The fraction of selfish power (alpha) is the total
// normalized power of all pools with label >= 1.
func NewPopulation(miners []Miner) (*Population, error) {
	if len(miners) == 0 {
		return nil, ErrNoMiners
	}
	var total float64
	maxID := chain.MinerID(0)
	maxPool := HonestPool
	for _, m := range miners {
		if !(m.Power > 0) || m.Power > 1e18 {
			return nil, fmt.Errorf("miner %d power %v: %w", m.ID, m.Power, ErrBadPower)
		}
		if m.ID < 0 || int(m.ID) > maxIDSlack*(len(miners)+1) {
			return nil, fmt.Errorf("miner ID %d (population of %d): %w", m.ID, len(miners), ErrBadID)
		}
		if m.Pool < 0 || int(m.Pool) > len(miners) {
			return nil, fmt.Errorf("miner %d pool %d (population of %d): %w",
				m.ID, m.Pool, len(miners), ErrBadPool)
		}
		if m.ID > maxID {
			maxID = m.ID
		}
		if m.Pool > maxPool {
			maxPool = m.Pool
		}
		total += m.Power
	}
	// Duplicate detection over a dense bitmap: IDs were already bounds-
	// checked above, and the small-population case (every aggregate-agent
	// sweep) stays on the stack.
	var seenArr [128]bool
	seen := seenArr[:]
	if int(maxID) >= len(seenArr) {
		seen = make([]bool, maxID+1)
	}
	for _, m := range miners {
		if seen[m.ID] {
			return nil, fmt.Errorf("mining: duplicate miner ID %d", m.ID)
		}
		seen[m.ID] = true
	}
	// One float64 block backs weights and poolPower, and one int32 block
	// backs every pool's member list plus the selfish roster: populations
	// are built per grid point on sweep hot paths, so the constructor
	// allocates a handful of blocks instead of a slice per pool. Each
	// segment's capacity is clamped, so the appends below can never bleed
	// into a neighbor.
	p := &Population{
		miners:      append([]Miner(nil), miners...),
		poolByID:    make([]PoolID, maxID+1),
		poolMembers: make([][]int32, maxPool+1),
	}
	fblock := make([]float64, len(miners)+int(maxPool)+1)
	p.weights = fblock[:len(miners):len(miners)]
	p.poolPower = fblock[len(miners):]
	var countsArr [16]int32
	counts := countsArr[:]
	if int(maxPool) >= len(countsArr) {
		counts = make([]int32, maxPool+1)
	}
	selfish := 0
	for _, m := range miners {
		counts[m.Pool]++
		if m.Pool != HonestPool {
			selfish++
		}
	}
	iblock := make([]int32, 0, len(miners)+selfish)
	off := 0
	for pool := range p.poolMembers {
		c := int(counts[pool])
		p.poolMembers[pool] = iblock[off:off : off+c]
		off += c
	}
	p.selfishMembers = iblock[off:off : off+selfish]
	for i, m := range miners {
		p.weights[i] = m.Power / total
		if m.Pool != HonestPool {
			p.alpha += p.weights[i]
		}
		p.poolByID[m.ID] = m.Pool
		p.poolPower[m.Pool] += p.weights[i]
		p.poolMembers[m.Pool] = append(p.poolMembers[m.Pool], int32(i))
	}
	for i, m := range miners {
		if m.Pool != HonestPool {
			p.selfishMembers = append(p.selfishMembers, int32(i))
		}
	}
	return p, nil
}

// Equal builds the paper's simulation population: n miners with identical
// block-generation rates, the first selfishCount of them forming one
// selfish pool (Sec. V: n = 1000, selfishCount <= 450). Miner IDs are
// 1..n; ID 0 is reserved for the genesis block.
func Equal(n, selfishCount int) (*Population, error) {
	if n <= 0 {
		return nil, ErrNoMiners
	}
	if selfishCount < 0 || selfishCount > n {
		return nil, fmt.Errorf("mining: selfish count %d out of [0, %d]", selfishCount, n)
	}
	return EqualPools(n, selfishCount)
}

// EqualPools builds n equal-rate miners partitioned into len(poolSizes)
// colluding pools: the first poolSizes[0] miners form pool 1, the next
// poolSizes[1] form pool 2, and so on; the remainder is honest. Miner IDs
// are 1..n.
func EqualPools(n int, poolSizes ...int) (*Population, error) {
	if n <= 0 {
		return nil, ErrNoMiners
	}
	assigned := 0
	for p, size := range poolSizes {
		if size < 0 {
			return nil, fmt.Errorf("mining: pool %d size %d negative: %w", p+1, size, ErrBadPool)
		}
		assigned += size
	}
	if assigned > n {
		return nil, fmt.Errorf("mining: pool sizes total %d exceed population %d: %w",
			assigned, n, ErrBadPool)
	}
	miners := make([]Miner, n)
	pool, used := PoolID(1), 0
	for i := range miners {
		for int(pool) <= len(poolSizes) && used == poolSizes[pool-1] {
			pool++
			used = 0
		}
		label := HonestPool
		if int(pool) <= len(poolSizes) {
			label = pool
			used++
		}
		miners[i] = Miner{
			ID:    chain.MinerID(i + 1),
			Power: 1,
			Pool:  label,
		}
	}
	return NewPopulation(miners)
}

// TwoAgent builds the aggregate two-miner population used by the analysis:
// one selfish pool with power alpha and one honest aggregate with power
// 1-alpha. alpha must lie in (0, 1).
func TwoAgent(alpha float64) (*Population, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("mining: alpha %v out of (0, 1)", alpha)
	}
	return MultiAgent(alpha)
}

// MultiAgent builds the aggregate (K+1)-miner population for K competing
// pools: pool i (1-based) is one agent with power alphas[i-1], and the
// honest crowd is one agent with the remaining power. Each alpha must be
// positive and the total must stay below 1. Miner IDs are 1..K for the
// pools and K+1 for the honest aggregate.
func MultiAgent(alphas ...float64) (*Population, error) {
	if len(alphas) == 0 {
		return nil, ErrNoMiners
	}
	var total float64
	miners := make([]Miner, 0, len(alphas)+1)
	for i, alpha := range alphas {
		if !(alpha > 0) {
			return nil, fmt.Errorf("mining: pool %d alpha %v not positive: %w", i+1, alpha, ErrBadPower)
		}
		total += alpha
		miners = append(miners, Miner{
			ID:    chain.MinerID(i + 1),
			Power: alpha,
			Pool:  PoolID(i + 1),
		})
	}
	if !(total < 1) {
		return nil, fmt.Errorf("mining: pool alphas total %v must stay below 1: %w", total, ErrBadPower)
	}
	miners = append(miners, Miner{ID: chain.MinerID(len(alphas) + 1), Power: 1 - total})
	return NewPopulation(miners)
}

// Len returns the number of miners.
func (p *Population) Len() int { return len(p.miners) }

// Alpha returns the total selfish hash-power fraction (all pools >= 1).
func (p *Population) Alpha() float64 { return p.alpha }

// NumPools returns the largest pool label in the population — the K of the
// K-pool race. Zero means everyone is honest.
func (p *Population) NumPools() int { return len(p.poolPower) - 1 }

// PoolPower returns pool's total normalized hash power (pool 0: the honest
// crowd). Labels beyond the population's largest have zero power.
func (p *Population) PoolPower(pool PoolID) float64 {
	if pool < 0 || int(pool) >= len(p.poolPower) {
		return 0
	}
	return p.poolPower[pool]
}

// PoolOf returns the pool label of the miner with the given ID. Unknown IDs
// (including the reserved genesis ID) are honest. It is an O(1) index
// lookup, safe for per-block use.
func (p *Population) PoolOf(id chain.MinerID) PoolID {
	if id < 0 || int(id) >= len(p.poolByID) {
		return HonestPool
	}
	return p.poolByID[id]
}

// PoolMiners returns pool's members with normalized powers, in input order.
func (p *Population) PoolMiners(pool PoolID) []Miner {
	if pool < 0 || int(pool) >= len(p.poolMembers) {
		return nil
	}
	out := make([]Miner, 0, len(p.poolMembers[pool]))
	for _, i := range p.poolMembers[pool] {
		out = append(out, p.Miner(int(i)))
	}
	return out
}

// Miner returns the i-th miner (0-based) with its normalized power.
func (p *Population) Miner(i int) Miner {
	m := p.miners[i]
	m.Power = p.weights[i]
	return m
}

// Miners returns all miners with normalized powers.
func (p *Population) Miners() []Miner {
	out := make([]Miner, p.Len())
	for i := range out {
		out[i] = p.Miner(i)
	}
	return out
}

// IsSelfish reports whether the miner with the given ID belongs to any
// colluding pool. Unknown IDs are honest.
func (p *Population) IsSelfish(id chain.MinerID) bool {
	return p.PoolOf(id) != HonestPool
}

// Sample draws the producer of the next block, weighted by hash power. The
// draw uses the alias table: O(1) per event independent of the population
// size, consuming exactly two generator outputs.
func (p *Population) Sample(r *rng.Source) Miner {
	return p.miners[p.samplers().alias.Draw(r)]
}

// SampleMember draws a member of the given pool, weighted by hash power
// within the pool — the per-pool alias path for pool-conditional sampling
// (e.g. attributing a pool's block to one of its members). It consumes
// exactly two generator outputs and panics if the pool has no members,
// which indicates a configuration error.
func (p *Population) SampleMember(pool PoolID, r *rng.Source) Miner {
	s := p.samplers()
	if pool < 0 || int(pool) >= len(s.poolAlias) || s.poolAlias[pool] == nil {
		panic(fmt.Sprintf("mining: SampleMember of empty pool %d", pool))
	}
	return p.miners[p.poolMembers[pool][s.poolAlias[pool].Draw(r)]]
}

// SampleSelfish draws the producer of the next block conditioned on the
// producer being selfish (any pool >= 1), weighted by hash power across all
// selfish pools. Fast-forward mode uses it to resume at the first
// interesting find after skipping a geometric stretch of honest blocks. It
// consumes exactly two generator outputs and panics if the population has no
// selfish power, which indicates a configuration error.
func (p *Population) SampleSelfish(r *rng.Source) Miner {
	s := p.samplers()
	if s.selfishAlias == nil {
		panic("mining: SampleSelfish on a population with no selfish miners")
	}
	return p.miners[p.selfishMembers[s.selfishAlias.Draw(r)]]
}

// SoleMember returns the pool's only member if the pool has exactly one, in
// which case pool-conditional attribution needs no draw at all — the bulk
// block-append fast path. The second return is false for empty and
// multi-member pools.
func (p *Population) SoleMember(pool PoolID) (Miner, bool) {
	if pool < 0 || int(pool) >= len(p.poolMembers) || len(p.poolMembers[pool]) != 1 {
		return Miner{}, false
	}
	return p.Miner(int(p.poolMembers[pool][0])), true
}

// NextEvent draws the next block event under a Poisson race at the given
// total rate: the winning miner and the exponentially distributed waiting
// time since the previous event.
func (p *Population) NextEvent(r *rng.Source, totalRate float64) (Miner, float64) {
	return p.Sample(r), r.Exp(totalRate)
}

// BernoulliDelay simulates the un-approximated mining model: repeated
// Bernoulli trials with per-trial success probability prob, returning the
// number of trials until the first success (geometric, support 1,2,...).
// As prob -> 0 with trials per unit time 1/prob, the normalized delay
// converges to Exp(1) — the Poisson approximation the paper invokes.
func BernoulliDelay(r *rng.Source, prob float64) int {
	if prob <= 0 || prob > 1 {
		panic(fmt.Sprintf("mining: Bernoulli probability %v out of (0, 1]", prob))
	}
	trials := 1
	for !r.Bernoulli(prob) {
		trials++
	}
	return trials
}

// PoolShare is one entry of the 2018 Ethereum mining-pool snapshot.
type PoolShare struct {
	Name  string
	Share float64 // fraction of total hash power
}

// Ethereum2018Pools returns the top-5 pool hash-power distribution of
// Fig. 6 (etherscan snapshot, September 2018).
func Ethereum2018Pools() []PoolShare {
	return []PoolShare{
		{Name: "Ethermine", Share: 0.2634},
		{Name: "SparkPool", Share: 0.2246},
		{Name: "F2Pool", Share: 0.1337},
		{Name: "Nanopool", Share: 0.1033},
		{Name: "MiningPoolHub", Share: 0.0878},
		{Name: "Others", Share: 0.1872},
	}
}
