package table

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tab := New("Demo", "alpha", "revenue")
	if err := tab.AddRow("0.10", "0.0834"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("0.45", "0.7012"); err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "alpha") || !strings.Contains(lines[1], "revenue") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("rule line = %q", lines[2])
	}
	// Columns align: "revenue" starts at the same offset in all rows.
	idx := strings.Index(lines[1], "revenue")
	if got := strings.Index(lines[3], "0.0834"); got != idx {
		t.Errorf("row value at offset %d, header at %d\n%s", got, idx, out)
	}
}

func TestAddRowShapeError(t *testing.T) {
	tab := New("", "a", "b")
	if err := tab.AddRow("only one"); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestAddNumericRow(t *testing.T) {
	tab := New("", "gamma", "threshold")
	if err := tab.AddNumericRow("0.5", 3, 0.25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "0.250") {
		t.Errorf("numeric row missing formatted value:\n%s", tab.String())
	}
	if err := tab.AddNumericRow("x", 2, 1.0, 2.0); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	if tab.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", tab.NumRows())
	}
}

func TestRenderCSV(t *testing.T) {
	tab := New("ignored in CSV", "name", "value")
	if err := tab.AddRow("plain", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow(`with "quotes", and comma`, "2"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"with \"\"quotes\"\", and comma\",2\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tab := New("", "x")
	if err := tab.AddRow("1"); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title should not produce a leading blank line")
	}
	if tab.Title() != "" {
		t.Error("Title should be empty")
	}
}
