// Package table renders experiment results as aligned text tables and CSV,
// the two formats the command-line harness emits.
package table

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrShape is returned when a row's length does not match the header.
var ErrShape = errors.New("table: row length does not match header")

// Table is a simple rectangular table with a title and column headers.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: append([]string(nil), headers...)}
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("%w: got %d cells, want %d", ErrShape, len(cells), len(t.headers))
	}
	t.rows = append(t.rows, append([]string(nil), cells...))
	return nil
}

// AddNumericRow appends a row whose first cell is a label and whose
// remaining cells are numbers formatted with the given precision.
func (t *Table) AddNumericRow(label string, precision int, values ...float64) error {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, strconv.FormatFloat(v, 'f', precision, 64))
	}
	return t.AddRow(cells...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, cell := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	var rule []string
	for i := range t.headers {
		rule = append(rule, strings.Repeat("-", widths[i]))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-style CSV (quoting cells that
// contain commas, quotes, or newlines).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (text format).
func (t *Table) String() string {
	var b strings.Builder
	// Render to a strings.Builder never fails.
	_ = t.Render(&b)
	return b.String()
}

func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}
