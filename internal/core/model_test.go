package core

import (
	"errors"
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/markov"
)

const testMaxLead = 80

func newTestModel(t *testing.T, alpha, gamma float64) *Model {
	t.Helper()
	m, err := New(Params{Alpha: alpha, Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestNumeric(t *testing.T, alpha, gamma float64) *NumericModel {
	t.Helper()
	m, err := NewNumeric(Params{Alpha: alpha, Gamma: gamma, MaxLead: testMaxLead})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStateValid(t *testing.T) {
	tests := []struct {
		s    State
		want bool
	}{
		{State{0, 0}, true},
		{State{1, 0}, true},
		{State{1, 1}, true},
		{State{2, 0}, true},
		{State{3, 1}, true},
		{State{5, 3}, true},
		{State{2, 1}, false}, // lead 1 with S > 1
		{State{3, 2}, false},
		{State{0, 1}, false},
		{State{-1, 0}, false},
		{State{1, 2}, false},
		{State{2, 2}, false},
	}
	for _, tt := range tests {
		if got := tt.s.Valid(); got != tt.want {
			t.Errorf("%v.Valid() = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestParamValidation(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		wantErr error
	}{
		{"alpha 0", Params{Alpha: 0, Gamma: 0.5}, ErrBadAlpha},
		{"alpha 0.5", Params{Alpha: 0.5, Gamma: 0.5}, ErrBadAlpha},
		{"alpha negative", Params{Alpha: -0.1, Gamma: 0.5}, ErrBadAlpha},
		{"alpha NaN", Params{Alpha: math.NaN(), Gamma: 0.5}, ErrBadAlpha},
		{"gamma negative", Params{Alpha: 0.3, Gamma: -0.01}, ErrBadGamma},
		{"gamma above 1", Params{Alpha: 0.3, Gamma: 1.01}, ErrBadGamma},
		{"gamma NaN", Params{Alpha: 0.3, Gamma: math.NaN()}, ErrBadGamma},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.params); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestModelDefaults(t *testing.T) {
	m, err := New(Params{Alpha: 0.2, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Params().Schedule.Name(); got != "ethereum" {
		t.Errorf("default schedule = %q, want ethereum", got)
	}
	if got := m.Params().MaxLead; got != DefaultMaxLead {
		t.Errorf("default MaxLead = %d, want %d", got, DefaultMaxLead)
	}
	n, err := NewNumeric(Params{Alpha: 0.2, Gamma: 0.5, MaxLead: 40})
	if err != nil {
		t.Fatal(err)
	}
	if n.MaxLead() != 40 {
		t.Errorf("MaxLead = %d, want 40", n.MaxLead())
	}
}

func TestStationarySumsToOne(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.25, 0.4, 0.45} {
		m := newTestNumeric(t, alpha, 0.5)
		var sum float64
		for _, p := range m.Stationary() {
			if p < 0 {
				t.Fatalf("alpha=%v: negative probability", alpha)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: total mass %v, want 1", alpha, sum)
		}
	}
}

func TestStationaryMatchesClosedFormJ0(t *testing.T) {
	// pi(0,0), pi(i,0) and pi(1,1) have simple closed forms (Sec. IV-C);
	// the numerical solution must agree to within the truncation error,
	// which decays like (alpha/beta)^MaxLead (~1e-7 at alpha = 0.45,
	// MaxLead = 80). Gamma 0 is excluded here: its stationary mass has a
	// heavy diagonal tail on top of that (see
	// TestNumericTruncationBiasAtGammaZero).
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		for _, gamma := range []float64{0.25, 0.5, 1} {
			m := newTestNumeric(t, alpha, gamma)
			if got, want := m.Pi(State{}), Pi00(alpha); math.Abs(got-want) > 1e-6 {
				t.Errorf("a=%v g=%v: pi(0,0) = %v, want %v", alpha, gamma, got, want)
			}
			if got, want := m.Pi(State{S: 1, H: 1}), Pi11(alpha); math.Abs(got-want) > 1e-6 {
				t.Errorf("a=%v g=%v: pi(1,1) = %v, want %v", alpha, gamma, got, want)
			}
			for i := 1; i <= 12; i++ {
				got := m.Pi(State{S: i})
				want := PiI0(alpha, i)
				if math.Abs(got-want) > 1e-6 {
					t.Errorf("a=%v g=%v: pi(%d,0) = %v, want %v",
						alpha, gamma, i, got, want)
				}
			}
		}
	}
}

func TestStationaryMatchesClosedFormIJ(t *testing.T) {
	// The general closed form (Eq. 2 with the multi-sum helper) against
	// the numerical solution, for a grid of small states.
	for _, alpha := range []float64{0.2, 0.35, 0.45} {
		for _, gamma := range []float64{0.25, 0.5, 0.9} {
			m := newTestNumeric(t, alpha, gamma)
			for i := 3; i <= 10; i++ {
				for j := 1; j <= i-2; j++ {
					got := m.Pi(State{S: i, H: j})
					want := PiIJ(alpha, gamma, i, j)
					if math.Abs(got-want) > 1e-6 {
						t.Errorf("a=%v g=%v: pi(%d,%d) = %.12g, closed form %.12g",
							alpha, gamma, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestPi00Monotone(t *testing.T) {
	// Remark 2: pi(0,0) decreases in alpha and lies in (0, 1).
	prev := 1.0
	for alpha := 0.05; alpha < 0.5; alpha += 0.05 {
		p := Pi00(alpha)
		if p <= 0 || p >= 1 {
			t.Errorf("pi00(%v) = %v out of (0,1)", alpha, p)
		}
		if p >= prev {
			t.Errorf("pi00(%v) = %v did not decrease (prev %v)", alpha, p, prev)
		}
		prev = p
	}
}

func TestRemark3GeometricDecay(t *testing.T) {
	// Remark 3: pi(i,0) < 1e-6 for i >= 15 at alpha = 0.4.
	if p := PiI0(0.4, 15); p >= 1e-6 {
		t.Errorf("pi(15,0) = %v, want < 1e-6", p)
	}
	if p := PiI0(0.4, 14); p <= PiI0(0.4, 15) {
		t.Error("pi(i,0) should decay geometrically")
	}
}

func TestMultiSumExamples(t *testing.T) {
	// Appendix A: f(x,y,1) = x-y-1 and f(x,y,2) = (x-y-1)(x-y+2)/2.
	tests := []struct {
		x, y, z int
		want    float64
	}{
		{5, 1, 1, 3},
		{10, 3, 1, 6},
		{5, 1, 2, 9},   // (5-1-1)(5-1+2)/2 = 3*6/2
		{10, 3, 2, 27}, // (10-3-1)(10-3+2)/2 = 6*9/2
		{3, 1, 1, 1},
		{2, 1, 1, 0}, // x < y+2
		{5, 1, 0, 0}, // z < 1
		{4, 2, 2, 2}, // (4-2-1)(4-2+2)/2 = 1*4/2... check by enumeration below
	}
	for _, tt := range tests {
		if got := MultiSum(tt.x, tt.y, tt.z); got != tt.want {
			t.Errorf("MultiSum(%d,%d,%d) = %v, want %v", tt.x, tt.y, tt.z, got, tt.want)
		}
	}
}

func TestMultiSumMatchesBruteForce(t *testing.T) {
	// Independent brute-force evaluation of the nested sums for z <= 3.
	brute := func(x, y, z int) int64 {
		if z < 1 || x < y+2 {
			return 0
		}
		lb := func(k int) int { return y - z + k + 2 }
		var count int64
		switch z {
		case 1:
			for s1 := lb(1); s1 <= x; s1++ {
				count++
			}
		case 2:
			for s2 := lb(2); s2 <= x; s2++ {
				for s1 := lb(1); s1 <= s2; s1++ {
					count++
				}
			}
		case 3:
			for s3 := lb(3); s3 <= x; s3++ {
				for s2 := lb(2); s2 <= s3; s2++ {
					for s1 := lb(1); s1 <= s2; s1++ {
						count++
					}
				}
			}
		}
		return count
	}
	for z := 1; z <= 3; z++ {
		for y := 0; y <= 5; y++ {
			for x := y + 2; x <= y+8; x++ {
				if got, want := MultiSum(x, y, z), float64(brute(x, y, z)); got != want {
					t.Errorf("MultiSum(%d,%d,%d) = %v, brute force %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestNumericTruncationInsensitiveAtModerateGamma(t *testing.T) {
	// Doubling the truncation must not change pi(0,0) or the revenue
	// beyond the lead-tail error (alpha/beta)^80 ~ 1e-7 at alpha = 0.45.
	small, err := NewNumeric(Params{Alpha: 0.45, Gamma: 0.5, MaxLead: 80})
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewNumeric(Params{Alpha: 0.45, Gamma: 0.5, MaxLead: 160})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := small.Pi(State{}), large.Pi(State{}); math.Abs(a-b) > 1e-6 {
		t.Errorf("pi00 truncation-sensitive: %v vs %v", a, b)
	}
	ra, rb := small.Revenue(), large.Revenue()
	if math.Abs(ra.PoolTotal()-rb.PoolTotal()) > 1e-6 {
		t.Errorf("pool revenue truncation-sensitive: %v vs %v", ra.PoolTotal(), rb.PoolTotal())
	}
}

func TestNumericTruncationBiasAtGammaZero(t *testing.T) {
	// At gamma = 0 the stationary mass wanders far along the (i,j)
	// diagonal: excursions only end when the public branch catches up,
	// so the per-diagonal mass decays like (4*a*b)^i, which is 0.96 at
	// a = 0.4. The truncated chain therefore shows a visible bias that
	// shrinks as the truncation grows; the closed form is exact.
	coarse, err := NewNumeric(Params{Alpha: 0.4, Gamma: 0, MaxLead: 40})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewNumeric(Params{Alpha: 0.4, Gamma: 0, MaxLead: 160})
	if err != nil {
		t.Fatal(err)
	}
	exact := Pi00(0.4)
	coarseErr := math.Abs(coarse.Pi(State{}) - exact)
	fineErr := math.Abs(fine.Pi(State{}) - exact)
	if coarseErr < 1e-9 {
		t.Skip("coarse truncation unexpectedly exact; nothing to compare")
	}
	if fineErr >= coarseErr {
		t.Errorf("refining the truncation did not shrink the bias: %v -> %v",
			coarseErr, fineErr)
	}
}

func TestLeadProbAggregatesStates(t *testing.T) {
	// piL(l) must equal the sum of pi(l+j, j) over j, and the lead
	// probabilities must sum to one.
	m := newTestNumeric(t, 0.35, 0.5)
	for lead := 2; lead <= 8; lead++ {
		var sum float64
		for j := 0; j <= testMaxLead-lead; j++ {
			sum += m.Pi(State{S: lead + j, H: j})
		}
		want := LeadProb(0.35, lead)
		if math.Abs(sum-want) > 1e-7 {
			t.Errorf("lead %d: aggregated %v, closed form %v", lead, sum, want)
		}
	}
	var total float64
	for lead := 0; lead < 4000; lead++ {
		total += LeadProb(0.45, lead)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("lead probabilities sum to %v, want 1", total)
	}
}

func TestForkMassIdentity(t *testing.T) {
	// G(l) = piL(l) - pi(l,0) and non-negative. G need not be monotone
	// near lead 2 (lead-2 forks reset immediately), but the geometric
	// lead law forces eventual decay.
	for _, alpha := range []float64{0.2, 0.45} {
		for lead := 2; lead <= 10; lead++ {
			g := ForkMass(alpha, lead)
			if g < 0 {
				t.Fatalf("ForkMass(%v, %d) = %v negative", alpha, lead, g)
			}
			want := LeadProb(alpha, lead) - PiI0(alpha, lead)
			if math.Abs(g-want) > 1e-15 {
				t.Errorf("ForkMass identity violated at lead %d", lead)
			}
		}
		if ForkMass(alpha, 30) >= ForkMass(alpha, 10) {
			t.Errorf("alpha=%v: fork mass did not decay between leads 10 and 30", alpha)
		}
	}
	if ForkMass(0.3, 1) != 0 || ForkMass(0.3, 0) != 0 {
		t.Error("ForkMass below lead 2 should be 0")
	}
}

func TestKacReturnTimeMatchesPi00(t *testing.T) {
	// The expected number of block events between consecutive visits to
	// (0,0) must equal 1/pi(0,0) (Kac's formula); the hitting-time solver
	// computes it by first-step analysis, independent of the stationary
	// solver and of the closed form.
	for _, alpha := range []float64{0.2, 0.4} {
		chain := BuildChain(alpha, 0.5, 60)
		ret, err := chain.ExpectedReturnTime(start, markov.Options{SkipChecks: true})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / Pi00(alpha)
		if math.Abs(ret-want) > 1e-5 {
			t.Errorf("alpha=%v: return time %v, 1/pi00 = %v", alpha, ret, want)
		}
	}
}
