package core

import (
	"math"

	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/stats"
)

// maxTrackedDistance bounds the uncle-distance histogram the model reports.
// Distances beyond it still contribute to rewards (for unbounded schedules)
// but are not individually tabulated.
const maxTrackedDistance = 32

// tailCutoff stops the closed-form lead sums once per-lead event rates fall
// below this; the rates decay geometrically with ratio alpha/beta < 1.
const tailCutoff = 1e-18

// Revenue holds the long-run average reward rates of Sec. IV-E, in units of
// the static reward per unit time (total block rate 1).
type Revenue struct {
	// PoolStatic is r_b^s, the pool's static-reward rate (Eq. 3).
	PoolStatic float64

	// HonestStatic is r_b^h, the honest static-reward rate (Eq. 4).
	HonestStatic float64

	// PoolUncle is r_u^s, the pool's uncle-reward rate (Eq. 5).
	PoolUncle float64

	// HonestUncle is r_u^h, the honest uncle-reward rate (Eq. 6).
	HonestUncle float64

	// PoolNephew is r_n^s, the pool's nephew-reward rate (Eq. 8).
	PoolNephew float64

	// HonestNephew is r_n^h, the honest nephew-reward rate (Eq. 9).
	HonestNephew float64

	// RegularRate is the creation rate of regular (main-chain) blocks.
	// With Ks = 1 it equals PoolStatic + HonestStatic.
	RegularRate float64

	// UncleRate is the creation rate of referenced uncle blocks
	// (PoolUncleRate + HonestUncleRate).
	UncleRate float64

	// PoolUncleRate and HonestUncleRate split UncleRate by the uncle's
	// miner.
	PoolUncleRate   float64
	HonestUncleRate float64

	// HonestUncleDistances[d-1] is the creation rate of honest uncles
	// that will be referenced at distance d (d = 1..maxTrackedDistance).
	// Normalizing gives the Table II distribution.
	HonestUncleDistances []float64
}

// Scenario selects the difficulty-adjustment normalization of Sec. IV-E2.
type Scenario int

// The two normalizations studied by the paper.
const (
	// Scenario1 rescales time so regular blocks appear at rate 1
	// (difficulty ignores uncles, as in Ethereum before EIP100 and in
	// Bitcoin).
	Scenario1 Scenario = iota + 1

	// Scenario2 rescales time so regular plus referenced-uncle blocks
	// appear at rate 1 (EIP100-style difficulty).
	Scenario2
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Scenario1:
		return "scenario1"
	case Scenario2:
		return "scenario2"
	default:
		return "scenario?"
	}
}

// PoolTotal returns the pool's total reward rate.
func (r Revenue) PoolTotal() float64 {
	return r.PoolStatic + r.PoolUncle + r.PoolNephew
}

// HonestTotal returns the honest miners' total reward rate.
func (r Revenue) HonestTotal() float64 {
	return r.HonestStatic + r.HonestUncle + r.HonestNephew
}

// Total returns r_total of Eq. (10).
func (r Revenue) Total() float64 { return r.PoolTotal() + r.HonestTotal() }

// PoolShare returns R_s, the pool's relative share of all rewards.
func (r Revenue) PoolShare() float64 {
	total := r.Total()
	if total == 0 {
		return 0
	}
	return r.PoolTotal() / total
}

// normalizer returns the block rate that the scenario pins to 1.
func (r Revenue) normalizer(s Scenario) float64 {
	if s == Scenario2 {
		return r.RegularRate + r.UncleRate
	}
	return r.RegularRate
}

// PoolAbsolute returns U_s, the pool's long-run absolute revenue per unit of
// rescaled time (Eq. 11 for Scenario1 and its Scenario2 analogue).
func (r Revenue) PoolAbsolute(s Scenario) float64 {
	return r.PoolTotal() / r.normalizer(s)
}

// HonestAbsolute returns U_h (Eq. 12 and its Scenario2 analogue).
func (r Revenue) HonestAbsolute(s Scenario) float64 {
	return r.HonestTotal() / r.normalizer(s)
}

// TotalAbsolute returns the total reward rate per unit of rescaled time;
// Fig. 9 plots this soaring above 1 under scenario-1 difficulty.
func (r Revenue) TotalAbsolute(s Scenario) float64 {
	return r.Total() / r.normalizer(s)
}

// HonestUncleDistribution returns the Table II distribution: the probability
// that an honest uncle is referenced at distance d, conditioned on distances
// 1..max.
func (r Revenue) HonestUncleDistribution(max int) stats.Distribution {
	if max > len(r.HonestUncleDistances) {
		max = len(r.HonestUncleDistances)
	}
	d := stats.Distribution{P: make([]float64, max)}
	copy(d.P, r.HonestUncleDistances[:max])
	return d.Normalize()
}

// revenueTally accumulates the Appendix B per-transition expected rewards.
// Both the closed-form and the numerical revenue computations feed it the
// same event classes; they differ only in how the event rates are obtained.
type revenueTally struct {
	Revenue

	alpha, gamma float64
	schedule     rewards.Schedule
	literalEq8   bool
}

func newRevenueTally(p Params) *revenueTally {
	return &revenueTally{
		Revenue:    Revenue{HonestUncleDistances: make([]float64, maxTrackedDistance)},
		alpha:      p.Alpha,
		gamma:      p.Gamma,
		schedule:   p.Schedule,
		literalEq8: p.LiteralEq8,
	}
}

// honestNephewProb is the probability that the nephew reward of an uncle
// created with the given lead goes to honest miners:
// beta^(lead-1) * (1 + alpha*beta*(1-gamma)) (Appendix B, Case 7).
func (rt *revenueTally) honestNephewProb(lead int) float64 {
	a, b, g := rt.alpha, 1-rt.alpha, rt.gamma
	return math.Pow(b, float64(lead-1)) * (1 + a*b*(1-g))
}

// consensusEvents books the transitions out of (0,0) weighted by mass pi00
// (Cases 1 and 2).
func (rt *revenueTally) consensusEvents(pi00 float64) {
	a, b, g := rt.alpha, 1-rt.alpha, rt.gamma
	// Case 1: honest block is immediately regular.
	rt.HonestStatic += b * pi00
	rt.RegularRate += b * pi00
	// Case 2: the pool's first private block is regular w.p.
	// a + a*b + b^2*g, else an uncle at distance 1 whose nephew reward
	// goes to honest miners.
	pRegular := a + a*b + b*b*g
	rt.PoolStatic += a * pi00 * pRegular
	rt.RegularRate += a * pi00 * pRegular
	pUncle := b * b * (1 - g)
	if rt.schedule.Referenceable(1) {
		rt.PoolUncle += a * pi00 * pUncle * rt.schedule.Uncle(1)
		rt.HonestNephew += a * pi00 * pUncle * rt.schedule.Nephew(1)
		rt.UncleRate += a * pi00 * pUncle
		rt.PoolUncleRate += a * pi00 * pUncle
	}
}

// leadOneEvents books the transitions out of (1,0) weighted by mass pi10
// (Cases 3 and 4).
func (rt *revenueTally) leadOneEvents(pi10 float64) {
	a, b, g := rt.alpha, 1-rt.alpha, rt.gamma
	// Case 3: the pool's second block wins w.p. 1.
	rt.PoolStatic += a * pi10
	rt.RegularRate += a * pi10
	// Case 4: the honest block that levels the race is regular w.p.
	// b*(1-g); otherwise an uncle at distance 1. The nephew reward goes
	// to the pool w.p. a and to honest miners w.p. b*g.
	rt.HonestStatic += b * pi10 * b * (1 - g)
	rt.RegularRate += b * pi10 * b * (1 - g)
	pUncle := a + b*g
	if rt.schedule.Referenceable(1) {
		rt.HonestUncle += b * pi10 * pUncle * rt.schedule.Uncle(1)
		rt.UncleRate += b * pi10 * pUncle
		rt.HonestUncleRate += b * pi10 * pUncle
		rt.HonestUncleDistances[0] += b * pi10 * pUncle
		rt.PoolNephew += b * pi10 * a * rt.schedule.Nephew(1)
		rt.HonestNephew += b * pi10 * b * g * rt.schedule.Nephew(1)
	}
}

// tieEvents books the transition out of (1,1) weighted by mass pi11
// (Case 5).
func (rt *revenueTally) tieEvents(pi11 float64) {
	a, b := rt.alpha, 1-rt.alpha
	rt.PoolStatic += a * pi11
	rt.HonestStatic += b * pi11
	rt.RegularRate += pi11
}

// poolExtendEvents books the pool-side transitions out of all lead >= 2
// states with the given total mass (Case 6: every private-branch extension
// eventually becomes regular).
func (rt *revenueTally) poolExtendEvents(mass float64) {
	rt.PoolStatic += rt.alpha * mass
	rt.RegularRate += rt.alpha * mass
}

// honestUncleEvent books an honest-mined block that becomes an uncle with
// certainty, created at the given event rate from a state with the given
// lead (Cases 7-10). fromJ0 marks events out of (i,0) states (Cases 9-10)
// as opposed to (i,j), j >= 1 (Cases 7-8).
func (rt *revenueTally) honestUncleEvent(rate float64, lead int, fromJ0 bool) {
	if rate == 0 || !rt.schedule.Referenceable(lead) {
		return // too deep: a plain stale block
	}
	a, b, g := rt.alpha, 1-rt.alpha, rt.gamma
	rt.HonestUncle += rate * rt.schedule.Uncle(lead)
	rt.UncleRate += rate
	rt.HonestUncleRate += rate
	if lead <= maxTrackedDistance {
		rt.HonestUncleDistances[lead-1] += rate
	}
	h := rt.honestNephewProb(lead)
	rt.HonestNephew += rate * h * rt.schedule.Nephew(lead)
	if rt.literalEq8 {
		// The paper's printed Eq. (8): the double sum adds
		// beta^(L-1)*gamma*(alpha - alpha*beta^2*(1-gamma)) * Kn(L)
		// * pi per (i, j>=1) state and has no term at all for the
		// (i,0) states of Cases 9-10. With rate = beta*gamma*pi,
		// the per-state factor equals
		// rate/beta * beta^(L-1) * (a - a*b^2*(1-g)).
		if !fromJ0 {
			rt.PoolNephew += rate / b * math.Pow(b, float64(lead-1)) *
				(a - a*b*b*(1-g)) * rt.schedule.Nephew(lead)
		}
		return
	}
	// Conservation-consistent attribution: every referenced uncle grants
	// exactly one nephew reward, so the pool receives whatever honest
	// miners do not.
	rt.PoolNephew += rate * (1 - h) * rt.schedule.Nephew(lead)
}

// Revenue evaluates the reward rates exactly from the closed-form aggregate
// distribution: pi00, pi10, pi11, pi(l,0) = a^l pi00 and the fork mass
// G(l). The lead sums decay geometrically (ratio a/(1-a)) and are summed to
// numerical exhaustion, so the result carries no truncation error.
func (m *Model) Revenue() Revenue {
	var (
		a  = m.params.Alpha
		b  = 1 - a
		g  = m.params.Gamma
		rt = newRevenueTally(m.params)
	)
	pi00 := Pi00(a)
	rt.consensusEvents(pi00)
	rt.leadOneEvents(PiI0(a, 1))
	rt.tieEvents(Pi11(a))
	// Total mass at lead >= 2 is 1 - pi00 - pi10 - pi11.
	rt.poolExtendEvents(1 - pi00 - PiI0(a, 1) - Pi11(a))

	// Honest uncle-creating events per lead: rate b from the (l,0) state
	// plus rate b*g from the forked states G(l).
	for lead := 2; ; lead++ {
		rateJ0 := b * PiI0(a, lead)
		rateFork := b * g * ForkMass(a, lead)
		if rateJ0+rateFork < tailCutoff {
			break
		}
		rt.honestUncleEvent(rateJ0, lead, true)
		rt.honestUncleEvent(rateFork, lead, false)
	}
	return rt.Revenue
}

// Revenue attributes expected rewards over the truncated numerical
// stationary distribution, state by state. It inherits the truncation bias
// of the numerical solution (see DefaultMaxLead).
func (n *NumericModel) Revenue() Revenue {
	var (
		b  = 1 - n.params.Alpha
		g  = n.params.Gamma
		rt = newRevenueTally(n.params)
	)
	for s, pi := range n.pi {
		if pi == 0 {
			continue
		}
		switch {
		case s == start:
			rt.consensusEvents(pi)
		case s == State{S: 1}:
			rt.leadOneEvents(pi)
		case s == State{S: 1, H: 1}:
			rt.tieEvents(pi)
		case s.H == 0:
			rt.poolExtendEvents(pi)
			rt.honestUncleEvent(b*pi, s.S, true)
		default:
			rt.poolExtendEvents(pi)
			rt.honestUncleEvent(b*g*pi, s.Lead(), false)
		}
	}
	return rt.Revenue
}
