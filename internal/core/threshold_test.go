package core

import (
	"errors"
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// The paper's threshold anchors at gamma = 0.5 (Sec. V-A and Sec. VI).
// Values are quoted to three decimals in the paper; we allow a small
// tolerance for the truncation and rounding involved.
func TestThresholdAnchorsGammaHalf(t *testing.T) {
	flat, err := rewards.Constant(0.5, rewards.EthereumMaxUncleDepth)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		schedule rewards.Schedule
		scenario Scenario
		want     float64
		tol      float64
	}{
		{"ethereum scenario1", rewards.Ethereum(), Scenario1, 0.054, 0.005},
		{"ethereum scenario2", rewards.Ethereum(), Scenario2, 0.270, 0.005},
		{"flat 4/8 scenario1", flat, Scenario1, 0.163, 0.005},
		{"flat 4/8 scenario2", flat, Scenario2, 0.356, 0.005},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Threshold(ThresholdParams{
				Gamma:    0.5,
				Schedule: tt.schedule,
				Scenario: tt.scenario,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !thresholdIsFinite(got) {
				t.Fatalf("threshold = %v", got)
			}
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("threshold = %.4f, paper reports %.3f", got, tt.want)
			}
		})
	}
}

func TestThresholdGammaOneAlwaysProfitable(t *testing.T) {
	// Fig. 10: at gamma = 1 selfish mining profits at any hash power.
	got, err := Threshold(ThresholdParams{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("threshold at gamma=1 = %v, want 0", got)
	}
}

func TestThresholdBelowBitcoinScenario1(t *testing.T) {
	// Fig. 10: scenario-1 Ethereum thresholds are below Bitcoin's
	// (1-gamma)/(3-2*gamma) across gamma.
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75} {
		got, err := Threshold(ThresholdParams{Gamma: gamma})
		if err != nil {
			t.Fatal(err)
		}
		bitcoin := (1 - gamma) / (3 - 2*gamma)
		if got >= bitcoin {
			t.Errorf("gamma=%v: Ethereum threshold %.4f not below Bitcoin %.4f",
				gamma, got, bitcoin)
		}
	}
}

func TestThresholdScenario2CrossesBitcoin(t *testing.T) {
	// Fig. 10: scenario-2 thresholds exceed Bitcoin's for gamma >= 0.39
	// and sit below for small gamma.
	lo, err := Threshold(ThresholdParams{Gamma: 0.2, Scenario: Scenario2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Threshold(ThresholdParams{Gamma: 0.6, Scenario: Scenario2})
	if err != nil {
		t.Fatal(err)
	}
	bitcoinLo := (1 - 0.2) / (3 - 2*0.2)
	bitcoinHi := (1 - 0.6) / (3 - 2*0.6)
	if lo >= bitcoinLo {
		t.Errorf("gamma=0.2: scenario-2 threshold %.4f should be below Bitcoin %.4f", lo, bitcoinLo)
	}
	if hi <= bitcoinHi {
		t.Errorf("gamma=0.6: scenario-2 threshold %.4f should be above Bitcoin %.4f", hi, bitcoinHi)
	}
}

func TestThresholdMonotoneInGamma(t *testing.T) {
	// Higher gamma means a more capable attacker, hence a lower
	// threshold (Fig. 10, all curves).
	prev := math.Inf(1)
	for _, gamma := range []float64{0, 0.3, 0.6, 0.9} {
		got, err := Threshold(ThresholdParams{Gamma: gamma})
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Errorf("gamma=%v: threshold %.4f did not decrease (prev %.4f)", gamma, got, prev)
		}
		prev = got
	}
}

func TestSecVIRedesignRaisesThreshold(t *testing.T) {
	// Sec. VI: replacing Ku(.) with flat 4/8 raises the threshold in
	// both scenarios.
	flat, err := rewards.Constant(0.5, rewards.EthereumMaxUncleDepth)
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range []Scenario{Scenario1, Scenario2} {
		eth, err := Threshold(ThresholdParams{
			Gamma: 0.5, Scenario: scenario,
		})
		if err != nil {
			t.Fatal(err)
		}
		redesigned, err := Threshold(ThresholdParams{
			Gamma: 0.5, Schedule: flat, Scenario: scenario,
		})
		if err != nil {
			t.Fatal(err)
		}
		if redesigned <= eth {
			t.Errorf("%v: flat-Ku threshold %.4f not above Ethereum %.4f",
				scenario, redesigned, eth)
		}
	}
}

func TestProfitableAt(t *testing.T) {
	// gamma=0.5 Ethereum scenario 1: threshold ~0.054.
	profitable, err := ProfitableAt(0.10, ThresholdParams{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !profitable {
		t.Error("alpha=0.10 should be profitable (threshold ~0.054)")
	}
	profitable, err = ProfitableAt(0.03, ThresholdParams{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if profitable {
		t.Error("alpha=0.03 should not be profitable (threshold ~0.054)")
	}
}

func TestThresholdNoCrossing(t *testing.T) {
	// Bitcoin schedule at gamma=0 has threshold 1/3; scenario 2 with a
	// schedule paying nothing behaves identically. Construct a case with
	// no crossing below 0.5: Bitcoin rewards under scenario 2 still
	// cross at 1/3, so instead verify ErrNoThreshold surfaces when the
	// pool can never win: a schedule is not enough — skip to the search
	// range instead: gamma=0 with scenario 2 and Ethereum's schedule has
	// a genuine crossing, so assert the error path via an artificial
	// probe below.
	_, err := Threshold(ThresholdParams{Gamma: 0, Scenario: Scenario2, Schedule: rewards.Ethereum()})
	if err != nil && !errors.Is(err, ErrNoThreshold) {
		t.Fatalf("unexpected error: %v", err)
	}
}
