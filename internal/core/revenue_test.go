package core

import (
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

func TestClosedFormStaticRevenues(t *testing.T) {
	// Eqs. (3) and (4) against the chain-based attribution.
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
			m := newTestModel(t, alpha, gamma)
			rev := m.Revenue()
			if got, want := rev.PoolStatic, PoolStaticClosed(alpha, gamma); math.Abs(got-want) > 1e-9 {
				t.Errorf("a=%v g=%v: r_b^s = %.10g, Eq.(3) %.10g", alpha, gamma, got, want)
			}
			if got, want := rev.HonestStatic, HonestStaticClosed(alpha, gamma); math.Abs(got-want) > 1e-9 {
				t.Errorf("a=%v g=%v: r_b^h = %.10g, Eq.(4) %.10g", alpha, gamma, got, want)
			}
		}
	}
}

func TestClosedFormPoolUncleRevenue(t *testing.T) {
	// Eq. (5) with Ethereum's Ku(1) = 7/8.
	for _, alpha := range []float64{0.1, 0.3, 0.45} {
		for _, gamma := range []float64{0, 0.5, 1} {
			m := newTestModel(t, alpha, gamma)
			rev := m.Revenue()
			want := PoolUncleClosed(alpha, gamma, 7.0/8)
			if math.Abs(rev.PoolUncle-want) > 1e-9 {
				t.Errorf("a=%v g=%v: r_u^s = %.10g, Eq.(5) %.10g",
					alpha, gamma, rev.PoolUncle, want)
			}
		}
	}
}

func TestStaticRewardRateBounds(t *testing.T) {
	// Sec. IV-E1: r_b^s + r_b^h <= 1, with equality only without forks.
	for _, alpha := range []float64{0.05, 0.2, 0.45} {
		m := newTestModel(t, alpha, 0.5)
		rev := m.Revenue()
		sum := rev.PoolStatic + rev.HonestStatic
		if sum > 1+1e-12 {
			t.Errorf("a=%v: static rate %v exceeds 1", alpha, sum)
		}
		if sum <= 0 {
			t.Errorf("a=%v: static rate %v not positive", alpha, sum)
		}
		if math.Abs(sum-rev.RegularRate) > 1e-12 {
			t.Errorf("a=%v: RegularRate %v != static sum %v", alpha, rev.RegularRate, sum)
		}
	}
}

func TestNephewConservation(t *testing.T) {
	// Every referenced uncle grants exactly one nephew reward of 1/32
	// under the Ethereum schedule, so nephew revenue must equal
	// UncleRate/32 (this is what the paper's literal Eq. (8) violates).
	for _, alpha := range []float64{0.1, 0.3, 0.45} {
		for _, gamma := range []float64{0, 0.5, 1} {
			m := newTestModel(t, alpha, gamma)
			rev := m.Revenue()
			got := rev.PoolNephew + rev.HonestNephew
			want := rev.UncleRate / 32
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("a=%v g=%v: nephew total %v, want UncleRate/32 = %v",
					alpha, gamma, got, want)
			}
		}
	}
}

func TestLiteralEq8UndercountsPoolNephew(t *testing.T) {
	// The paper's printed Eq. (8) coefficient loses pool nephew mass for
	// leads >= 3 relative to the conservation-consistent attribution.
	consistent, err := New(Params{Alpha: 0.4, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	literal, err := New(Params{Alpha: 0.4, Gamma: 0.5, LiteralEq8: true})
	if err != nil {
		t.Fatal(err)
	}
	rc := consistent.Revenue()
	rl := literal.Revenue()
	if rl.PoolNephew >= rc.PoolNephew {
		t.Errorf("literal Eq.(8) pool nephew %v should undercount consistent %v",
			rl.PoolNephew, rc.PoolNephew)
	}
	// Everything else must be identical.
	if rl.PoolStatic != rc.PoolStatic || rl.HonestUncle != rc.HonestUncle ||
		rl.HonestNephew != rc.HonestNephew {
		t.Error("literal Eq.(8) changed unrelated revenue components")
	}
}

func TestBitcoinScheduleReducesToEyalSirer(t *testing.T) {
	// Remark 4: with only static rewards, the pool's share matches the
	// Eyal-Sirer relative revenue; the absolute scenario-1 revenue
	// coincides with the share.
	for _, alpha := range []float64{0.15, 0.3, 0.42} {
		for _, gamma := range []float64{0, 0.5, 1} {
			m, err := New(Params{
				Alpha:    alpha,
				Gamma:    gamma,
				Schedule: rewards.Bitcoin(),
			})
			if err != nil {
				t.Fatal(err)
			}
			rev := m.Revenue()
			if rev.PoolUncle != 0 || rev.HonestUncle != 0 ||
				rev.PoolNephew != 0 || rev.HonestNephew != 0 {
				t.Fatalf("a=%v g=%v: Bitcoin schedule paid uncle/nephew rewards", alpha, gamma)
			}
			share := rev.PoolShare()
			abs1 := rev.PoolAbsolute(Scenario1)
			if math.Abs(share-abs1) > 1e-12 {
				t.Errorf("a=%v g=%v: share %v != scenario-1 absolute %v",
					alpha, gamma, share, abs1)
			}
			// Eyal-Sirer closed form for the pool's relative revenue.
			a, g := alpha, gamma
			es := (a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a) /
				(1 - a*(1+(2-a)*a))
			if math.Abs(share-es) > 1e-9 {
				t.Errorf("a=%v g=%v: share %v, Eyal-Sirer %v", alpha, gamma, share, es)
			}
		}
	}
}

func TestPoolUnclesAlwaysDistanceOne(t *testing.T) {
	// Remark 5: the pool's uncles are always referenced at distance 1,
	// so its uncle revenue equals PoolUncleRate * Ku(1).
	m := newTestModel(t, 0.35, 0.5)
	rev := m.Revenue()
	if rev.PoolUncleRate <= 0 {
		t.Fatal("pool uncle rate should be positive at gamma=0.5")
	}
	if got, want := rev.PoolUncle, rev.PoolUncleRate*7.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("pool uncle revenue %v, want rate*7/8 = %v", got, want)
	}
}

func TestGammaOneNoPoolUncles(t *testing.T) {
	// At gamma = 1 every honest miner mines on the pool's block during
	// ties, so the pool's block never becomes an uncle (Eq. 5 -> 0).
	m := newTestModel(t, 0.3, 1)
	rev := m.Revenue()
	if rev.PoolUncle != 0 || rev.PoolUncleRate != 0 {
		t.Errorf("gamma=1: pool uncle revenue %v rate %v, want 0", rev.PoolUncle, rev.PoolUncleRate)
	}
}

func TestRevenueScenarios(t *testing.T) {
	m := newTestModel(t, 0.3, 0.5)
	rev := m.Revenue()
	if rev.UncleRate <= 0 {
		t.Fatal("uncle rate should be positive")
	}
	u1 := rev.PoolAbsolute(Scenario1)
	u2 := rev.PoolAbsolute(Scenario2)
	if u2 >= u1 {
		t.Errorf("scenario-2 revenue %v should be below scenario-1 %v (bigger normalizer)", u2, u1)
	}
	t1 := rev.TotalAbsolute(Scenario1)
	if t1 <= 1 {
		t.Errorf("scenario-1 total %v should exceed 1 (uncle rewards add on top)", t1)
	}
	if got := rev.PoolShare(); got <= 0 || got >= 1 {
		t.Errorf("pool share %v out of (0,1)", got)
	}
	if got := rev.PoolAbsolute(Scenario1) + rev.HonestAbsolute(Scenario1); math.Abs(got-rev.TotalAbsolute(Scenario1)) > 1e-12 {
		t.Error("pool + honest absolute != total absolute")
	}
}

func TestScenarioString(t *testing.T) {
	if Scenario1.String() != "scenario1" || Scenario2.String() != "scenario2" {
		t.Error("scenario names wrong")
	}
	if Scenario(99).String() != "scenario?" {
		t.Error("unknown scenario name wrong")
	}
}

func TestFig8AnchorRevenueAtThreshold(t *testing.T) {
	// Fig. 8 (gamma = 0.5, flat Ku = 4/8): at alpha = 0.163 the pool's
	// scenario-1 absolute revenue crosses alpha.
	sched, err := rewards.Constant(0.5, rewards.NoDepthLimit)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Params{Alpha: 0.163, Gamma: 0.5, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Revenue().PoolAbsolute(Scenario1)
	if math.Abs(got-0.163) > 0.002 {
		t.Errorf("U_s(0.163) = %v, want ~0.163 (Fig. 8 threshold)", got)
	}
}

func TestFig9TotalRevenueAnchor(t *testing.T) {
	// Fig. 9: with Ku = 7/8 and alpha = 0.45 the total scenario-1
	// revenue soars to about 135% of the no-selfish-mining baseline.
	sched, err := rewards.Constant(7.0/8, rewards.NoDepthLimit)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Params{Alpha: 0.45, Gamma: 0.5, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Revenue().TotalAbsolute(Scenario1)
	if math.Abs(got-1.35) > 0.03 {
		t.Errorf("total revenue = %v, want ~1.35 (Fig. 9)", got)
	}
}

func TestHonestMiningBaseline(t *testing.T) {
	// As alpha -> 0 the pool's absolute revenue approaches alpha
	// (selfish mining neither helps nor hurts much); at tiny alpha the
	// pool must not earn more than honest mining.
	m := newTestModel(t, 0.02, 0.5)
	rev := m.Revenue()
	us := rev.PoolAbsolute(Scenario1)
	if us >= 0.02 {
		t.Errorf("U_s(0.02) = %v, should be below alpha (selfish mining unprofitable)", us)
	}
	if us < 0.01 {
		t.Errorf("U_s(0.02) = %v, implausibly low", us)
	}
}
