package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/markov"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

// DefaultMaxLead is the default truncation of the numerical chain solution:
// states with private branch length above this bound fold their pool
// transition into themselves. The paper truncates at 200 (footnote 3). Note
// that at small gamma the stationary mass wanders far along the (i,j)
// diagonal even though the lead distribution stays geometric, so the
// numerical solution carries a visible truncation bias for gamma close to 0
// with alpha close to 0.5; the closed-form Model has no truncation at all.
const DefaultMaxLead = 160

// Errors returned by the model constructors.
var (
	// ErrBadAlpha is returned when alpha is outside (0, 0.5). At and
	// above 0.5 the private branch grows without bound and the chain has
	// no stationary distribution (the pool simply 51%-attacks).
	ErrBadAlpha = errors.New("core: alpha must lie in (0, 0.5)")

	// ErrBadGamma is returned when gamma is outside [0, 1].
	ErrBadGamma = errors.New("core: gamma must lie in [0, 1]")
)

// Params configures the analytic model.
type Params struct {
	// Alpha is the selfish pool's fraction of total hash power.
	Alpha float64

	// Gamma is the fraction of honest hash power that mines on the
	// pool's branch during a tie (Sec. IV-A).
	Gamma float64

	// Schedule gives the uncle and nephew reward functions. The zero
	// value means the Ethereum Byzantium schedule.
	Schedule rewards.Schedule

	// MaxLead truncates the state space of the numerical solution
	// (NewNumeric); zero means DefaultMaxLead. The closed-form Model
	// ignores it except as the bound for Stationary dumps.
	MaxLead int

	// LiteralEq8 reproduces the paper's Eq. (8) pool-nephew coefficient
	// verbatim instead of the conservation-consistent attribution
	// derived in Appendix B. The two agree for lead 2 but differ for
	// lead >= 3; the simulator confirms the conservation-consistent
	// form. See DESIGN.md ("paper erratum").
	LiteralEq8 bool
}

func (p Params) withDefaults() Params {
	if p.MaxLead == 0 {
		p.MaxLead = DefaultMaxLead
	}
	if p.Schedule.MaxDepth() == 0 {
		// The zero-value Schedule: fall back to Ethereum's.
		p.Schedule = rewards.Ethereum()
	}
	return p
}

func (p Params) validate() error {
	if math.IsNaN(p.Alpha) || !(p.Alpha > 0 && p.Alpha < 0.5) {
		return fmt.Errorf("alpha %v: %w", p.Alpha, ErrBadAlpha)
	}
	if math.IsNaN(p.Gamma) || p.Gamma < 0 || p.Gamma > 1 {
		return fmt.Errorf("gamma %v: %w", p.Gamma, ErrBadGamma)
	}
	if p.MaxLead < 4 {
		return fmt.Errorf("core: MaxLead %d too small (need >= 4)", p.MaxLead)
	}
	return nil
}

// Model is the exact closed-form analysis for one (alpha, gamma, schedule)
// configuration. It is immutable and safe for concurrent use.
type Model struct {
	params Params
}

// New validates the parameters and returns the closed-form model.
func New(params Params) (*Model, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &Model{params: params}, nil
}

// Params returns the model's configuration (with defaults applied).
func (m *Model) Params() Params { return m.params }

// Pi returns the exact stationary probability of state s from the closed
// forms of Sec. IV-C (zero for invalid states).
func (m *Model) Pi(s State) float64 {
	if !s.Valid() {
		return 0
	}
	switch {
	case s == start:
		return Pi00(m.params.Alpha)
	case s == State{S: 1, H: 1}:
		return Pi11(m.params.Alpha)
	case s.H == 0:
		return PiI0(m.params.Alpha, s.S)
	default:
		return PiIJ(m.params.Alpha, m.params.Gamma, s.S, s.H)
	}
}

// LeadProb returns the total stationary probability of all states with the
// given lead Ls - Lh (lead 0 aggregates (0,0) and (1,1)).
func (m *Model) LeadProb(lead int) float64 {
	return LeadProb(m.params.Alpha, lead)
}

// ForkMass returns G(lead) = sum_{j>=1} pi(lead+j, j).
func (m *Model) ForkMass(lead int) float64 {
	return ForkMass(m.params.Alpha, lead)
}

// NumericModel is the truncated numerical solution of the same chain
// (the computation the paper describes in footnote 3). It exists to
// cross-validate the closed forms and to expose the full per-state
// distribution.
type NumericModel struct {
	params Params
	pi     map[State]float64
}

// NewNumeric builds the Markov chain of Fig. 7 truncated at
// params.MaxLead, solves its stationary distribution, and returns the
// model.
func NewNumeric(params Params) (*NumericModel, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	chain := BuildChain(params.Alpha, params.Gamma, params.MaxLead)
	pi, err := chain.Stationary(markov.Options{
		Method: markov.Iterative,
		// The chain is stochastic and irreducible by construction;
		// validation would cost more than the solve for large
		// truncations.
		SkipChecks: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: solving stationary distribution: %w", err)
	}
	return &NumericModel{params: params, pi: pi}, nil
}

// BuildChain constructs the transition matrix of Sec. IV-C. States with
// S == maxLead absorb their own pool transition (truncation). It is
// exported for the Fig. 7 experiment, which dumps the chain structure.
func BuildChain(alpha, gamma float64, maxLead int) *markov.Chain[State] {
	var (
		a = alpha
		b = 1 - alpha
		g = gamma
	)
	c := markov.New[State]()

	// (0,0): honest block keeps consensus; pool block starts a private
	// branch.
	c.AddTransition(start, start, b)
	c.AddTransition(start, State{S: 1}, a)

	// (1,0): pool extends its lead; honest block forces the pool to
	// publish, creating the tie state (1,1).
	c.AddTransition(State{S: 1}, State{S: 2}, a)
	c.AddTransition(State{S: 1}, State{S: 1, H: 1}, b)

	// (1,1): whoever mines next resolves the tie and consensus resets.
	c.AddTransition(State{S: 1, H: 1}, start, 1)

	for i := 2; i <= maxLead; i++ {
		for j := 0; j <= i-2; j++ {
			s := State{S: i, H: j}
			// Pool block: lead grows (folded at the truncation
			// boundary).
			if i < maxLead {
				c.AddTransition(s, State{S: i + 1, H: j}, a)
			} else {
				c.AddTransition(s, s, a)
			}
			switch {
			case i-j == 2:
				// Honest block at lead 2: the pool publishes
				// everything and consensus resets (Cases 8, 9,
				// 12).
				c.AddTransition(s, start, b)
			case j == 0:
				// Honest block on the consensus tip, which is a
				// prefix of the private branch (Case 10).
				c.AddTransition(s, State{S: i, H: 1}, b)
			default:
				// Honest block either on a published prefix of
				// the private branch (Case 7) or on a public
				// branch off the private chain (Case 11).
				c.AddTransition(s, State{S: i - j, H: 1}, b*g)
				c.AddTransition(s, State{S: i, H: j + 1}, b*(1-g))
			}
		}
	}
	return c
}

// Params returns the numerical model's configuration.
func (n *NumericModel) Params() Params { return n.params }

// Pi returns the numerically solved stationary probability of state s (zero
// for states outside the truncated space).
func (n *NumericModel) Pi(s State) float64 { return n.pi[s] }

// Stationary returns a copy of the full truncated stationary distribution.
func (n *NumericModel) Stationary() map[State]float64 {
	out := make(map[State]float64, len(n.pi))
	for s, p := range n.pi {
		out[s] = p
	}
	return out
}

// MaxLead returns the truncation bound used by the numerical model.
func (n *NumericModel) MaxLead() int { return n.params.MaxLead }
