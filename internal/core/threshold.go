package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// Threshold-search parameters. The search brackets the profitability
// crossing on a coarse grid and then bisects; gains below profitEpsilon are
// treated as break-even to keep the search robust to truncation noise.
const (
	thresholdGridStep = 0.005
	thresholdMinAlpha = 0.005
	thresholdMaxAlpha = 0.495
	thresholdBisects  = 40
	profitEpsilon     = 1e-12
)

// ErrNoThreshold is returned when selfish mining is unprofitable across the
// whole alpha range (no crossing below 0.5).
var ErrNoThreshold = errors.New("core: selfish mining never profitable for alpha < 0.5")

// ThresholdParams configures the profitability-threshold search.
type ThresholdParams struct {
	// Gamma is the network-capability parameter.
	Gamma float64

	// Schedule is the reward schedule (zero value: Ethereum).
	Schedule rewards.Schedule

	// Scenario selects the difficulty normalization (zero value:
	// Scenario1).
	Scenario Scenario
}

// Threshold returns alpha*, the smallest hash-power fraction at which the
// pool's absolute revenue U_s(alpha) is at least alpha (Sec. IV-E3). When
// selfish mining is profitable at arbitrarily small alpha (e.g. gamma = 1)
// it returns 0. It returns ErrNoThreshold when no alpha below 0.5 profits.
func Threshold(p ThresholdParams) (float64, error) {
	if p.Scenario == 0 {
		p.Scenario = Scenario1
	}
	gain := func(alpha float64) (float64, error) {
		m, err := New(Params{
			Alpha:    alpha,
			Gamma:    p.Gamma,
			Schedule: p.Schedule,
		})
		if err != nil {
			return 0, err
		}
		return m.Revenue().PoolAbsolute(p.Scenario) - alpha, nil
	}

	// Bracket the first sign change on a coarse grid. The gain is not
	// guaranteed monotone a priori, so scanning from the left finds the
	// smallest crossing.
	lo := thresholdMinAlpha
	gLo, err := gain(lo)
	if err != nil {
		return 0, err
	}
	if gLo >= -profitEpsilon {
		// Profitable immediately: threshold is effectively zero.
		return 0, nil
	}
	var (
		hi    float64
		found bool
	)
	for alpha := lo + thresholdGridStep; alpha <= thresholdMaxAlpha+1e-9; alpha += thresholdGridStep {
		gHi, err := gain(alpha)
		if err != nil {
			return 0, err
		}
		if gHi >= -profitEpsilon {
			hi = alpha
			found = true
			break
		}
		lo = alpha
	}
	if !found {
		return 0, fmt.Errorf("gamma=%v %v: %w", p.Gamma, p.Scenario, ErrNoThreshold)
	}

	for i := 0; i < thresholdBisects; i++ {
		mid := (lo + hi) / 2
		gMid, err := gain(mid)
		if err != nil {
			return 0, err
		}
		if gMid >= -profitEpsilon {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return hi, nil
}

// ProfitableAt reports whether selfish mining strictly beats honest mining
// at the given parameters.
func ProfitableAt(alpha float64, p ThresholdParams) (bool, error) {
	if p.Scenario == 0 {
		p.Scenario = Scenario1
	}
	m, err := New(Params{
		Alpha:    alpha,
		Gamma:    p.Gamma,
		Schedule: p.Schedule,
	})
	if err != nil {
		return false, err
	}
	return m.Revenue().PoolAbsolute(p.Scenario) > alpha, nil
}

// thresholdIsFinite is a tiny helper used in tests.
func thresholdIsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
