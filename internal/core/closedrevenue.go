package core

// Closed-form revenue expressions from Sec. IV-E1. They depend only on
// alpha and gamma (plus Ku(1) for the pool's uncles) and cross-validate the
// general chain-based attribution in Revenue.

// PoolStaticClosed returns Eq. (3):
//
//	r_b^s = (a(1-a)^2 (4a + g(1-2a)) - a^3) / (2a^3 - 4a^2 + 1).
func PoolStaticClosed(alpha, gamma float64) float64 {
	a, g := alpha, gamma
	return (a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a) / denom(a)
}

// HonestStaticClosed returns Eq. (4):
//
//	r_b^h = (1-2a)(1-a)(a(1-a)(2-g) + 1) / (2a^3 - 4a^2 + 1).
func HonestStaticClosed(alpha, gamma float64) float64 {
	a, g := alpha, gamma
	return (1 - 2*a) * (1 - a) * (a*(1-a)*(2-g) + 1) / denom(a)
}

// PoolUncleClosed returns Eq. (5):
//
//	r_u^s = (1-2a)(1-a)^2 a (1-g) / (2a^3 - 4a^2 + 1) * Ku(1).
func PoolUncleClosed(alpha, gamma, ku1 float64) float64 {
	a, g := alpha, gamma
	return (1 - 2*a) * (1 - a) * (1 - a) * a * (1 - g) / denom(a) * ku1
}
