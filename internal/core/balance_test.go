package core

import (
	"math"
	"testing"
	"testing/quick"
)

// These tests check the paper's global balance equations (Eq. 1) directly
// against the closed-form stationary distribution, independently of the
// generic chain solver. Each equation is evaluated symbolically from
// Pi00/PiI0/Pi11/PiIJ with the infinite sums truncated once terms vanish.

// balanceSumDepth bounds the truncated infinite sums. The summands decay
// like (4*alpha*beta*(1-gamma))^j <= 0.8^j over the tested grid, so 120
// terms push the truncation error below 1e-10; PiIJ evaluation cost grows
// quadratically with depth, which keeps this bound deliberate.
const balanceSumDepth = 120

func TestBalanceEquationPi00(t *testing.T) {
	// alpha*pi(0,0) = pi(1,1) + beta * sum_j pi(2+j, j).
	for _, alpha := range []float64{0.15, 0.3, 0.45} {
		for _, gamma := range []float64{0, 0.3, 0.7, 1} {
			beta := 1 - alpha
			lhs := alpha * Pi00(alpha)
			rhs := Pi11(alpha)
			// Lead-2 states: (2,0) plus the fork mass G(2).
			rhs += beta * (PiI0(alpha, 2) + ForkMass(alpha, 2))
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Errorf("a=%v g=%v: alpha*pi00 = %.15g, inflow %.15g", alpha, gamma, lhs, rhs)
			}
		}
	}
}

func TestBalanceEquationPi11(t *testing.T) {
	// pi(1,1) = beta * pi(1,0).
	for _, alpha := range []float64{0.1, 0.25, 0.49} {
		lhs := Pi11(alpha)
		rhs := (1 - alpha) * PiI0(alpha, 1)
		if math.Abs(lhs-rhs) > 1e-15 {
			t.Errorf("a=%v: pi11 = %v, beta*pi10 = %v", alpha, lhs, rhs)
		}
	}
}

func TestBalanceEquationPiI0(t *testing.T) {
	// pi(i,0) = alpha * pi(i-1,0) for i >= 1.
	for _, alpha := range []float64{0.2, 0.4} {
		for i := 1; i <= 20; i++ {
			lhs := PiI0(alpha, i)
			rhs := alpha * PiI0(alpha, i-1)
			if math.Abs(lhs-rhs) > 1e-15 {
				t.Errorf("a=%v i=%d: pi(i,0) = %v, alpha*pi(i-1,0) = %v", alpha, i, lhs, rhs)
			}
		}
	}
}

func TestBalanceEquationPi31(t *testing.T) {
	// pi(3,1) = beta*pi(3,0) + sum_j beta*gamma*pi(3+j, j).
	for _, alpha := range []float64{0.2, 0.35, 0.45} {
		for _, gamma := range []float64{0, 0.5, 1} {
			beta := 1 - alpha
			lhs := PiIJ(alpha, gamma, 3, 1)
			rhs := beta * PiI0(alpha, 3)
			for j := 1; j <= balanceSumDepth; j++ {
				rhs += beta * gamma * PiIJ(alpha, gamma, 3+j, j)
			}
			if math.Abs(lhs-rhs) > 1e-9 {
				t.Errorf("a=%v g=%v: pi31 = %.12g, inflow %.12g", alpha, gamma, lhs, rhs)
			}
		}
	}
}

func TestBalanceEquationPiI1(t *testing.T) {
	// pi(i,1) = beta*pi(i,0) + alpha*pi(i-1,1) + sum_j beta*gamma*pi(i+j,j)
	// for i >= 4.
	for _, alpha := range []float64{0.25, 0.45} {
		for _, gamma := range []float64{0.2, 0.8} {
			beta := 1 - alpha
			for i := 4; i <= 7; i++ {
				lhs := PiIJ(alpha, gamma, i, 1)
				rhs := beta*PiI0(alpha, i) + alpha*PiIJ(alpha, gamma, i-1, 1)
				for j := 1; j <= balanceSumDepth; j++ {
					rhs += beta * gamma * PiIJ(alpha, gamma, i+j, j)
				}
				if math.Abs(lhs-rhs) > 1e-9 {
					t.Errorf("a=%v g=%v i=%d: pi(i,1) = %.12g, inflow %.12g",
						alpha, gamma, i, lhs, rhs)
				}
			}
		}
	}
}

func TestBalanceEquationInterior(t *testing.T) {
	// pi(i,j) = alpha*pi(i-1,j) + beta*(1-gamma)*pi(i,j-1) for j >= 2,
	// with the alpha term present only when (i-1,j) is a valid state.
	for _, alpha := range []float64{0.3, 0.45} {
		for _, gamma := range []float64{0.1, 0.6} {
			beta := 1 - alpha
			for i := 4; i <= 12; i++ {
				for j := 2; j <= i-2; j++ {
					lhs := PiIJ(alpha, gamma, i, j)
					rhs := beta * (1 - gamma) * PiIJ(alpha, gamma, i, j-1)
					if i-1-j >= 2 {
						rhs += alpha * PiIJ(alpha, gamma, i-1, j)
					}
					if math.Abs(lhs-rhs) > 1e-12 {
						t.Errorf("a=%v g=%v (%d,%d): pi = %.12g, inflow %.12g",
							alpha, gamma, i, j, lhs, rhs)
					}
				}
			}
		}
	}
}

func TestClosedFormTotalMassIsOne(t *testing.T) {
	// The lead-aggregated closed form must normalize exactly:
	// pi00*(1 + a + a*b + a^2/(1-2a)) = 1.
	f := func(rawAlpha float64) bool {
		alpha := 0.01 + math.Mod(math.Abs(rawAlpha), 0.48)
		total := Pi00(alpha) + PiI0(alpha, 1) + Pi11(alpha)
		for lead := 2; lead <= 4000; lead++ {
			total += LeadProb(alpha, lead)
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRevenueConservationProperty(t *testing.T) {
	// For random (alpha, gamma): static rates stay within [0,1], nephew
	// conservation holds, and scenario revenues are consistent.
	f := func(rawAlpha, rawGamma float64) bool {
		alpha := 0.01 + math.Mod(math.Abs(rawAlpha), 0.48)
		gamma := math.Mod(math.Abs(rawGamma), 1)
		m, err := New(Params{Alpha: alpha, Gamma: gamma})
		if err != nil {
			return false
		}
		rev := m.Revenue()
		if rev.RegularRate <= 0 || rev.RegularRate > 1+1e-12 {
			return false
		}
		if math.Abs(rev.PoolStatic+rev.HonestStatic-rev.RegularRate) > 1e-12 {
			return false
		}
		if math.Abs(rev.PoolNephew+rev.HonestNephew-rev.UncleRate/32) > 1e-12 {
			return false
		}
		if math.Abs(rev.UncleRate-(rev.PoolUncleRate+rev.HonestUncleRate)) > 1e-12 {
			return false
		}
		// Regular + uncle blocks can never outnumber all blocks.
		if rev.RegularRate+rev.UncleRate > 1+1e-12 {
			return false
		}
		return rev.PoolAbsolute(Scenario2) <= rev.PoolAbsolute(Scenario1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNumericAndClosedRevenueAgree(t *testing.T) {
	// The truncated chain attribution must match the exact closed-form
	// aggregation at parameters where the truncation tail is negligible.
	for _, alpha := range []float64{0.15, 0.3, 0.42} {
		for _, gamma := range []float64{0.3, 0.6, 1} {
			closed, err := New(Params{Alpha: alpha, Gamma: gamma})
			if err != nil {
				t.Fatal(err)
			}
			numeric, err := NewNumeric(Params{Alpha: alpha, Gamma: gamma, MaxLead: testMaxLead})
			if err != nil {
				t.Fatal(err)
			}
			cr := closed.Revenue()
			nr := numeric.Revenue()
			pairs := []struct {
				name           string
				closedV, numcV float64
			}{
				{"pool static", cr.PoolStatic, nr.PoolStatic},
				{"honest static", cr.HonestStatic, nr.HonestStatic},
				{"pool uncle", cr.PoolUncle, nr.PoolUncle},
				{"honest uncle", cr.HonestUncle, nr.HonestUncle},
				{"pool nephew", cr.PoolNephew, nr.PoolNephew},
				{"honest nephew", cr.HonestNephew, nr.HonestNephew},
				{"uncle rate", cr.UncleRate, nr.UncleRate},
			}
			for _, p := range pairs {
				if math.Abs(p.closedV-p.numcV) > 1e-6 {
					t.Errorf("a=%v g=%v %s: closed %.10g vs numeric %.10g",
						alpha, gamma, p.name, p.closedV, p.numcV)
				}
			}
		}
	}
}
