// Package core implements the paper's primary contribution: the 2-D Markov
// analysis of selfish mining in Ethereum (Niu & Feng, ICDCS 2019).
//
// The system state is the pair (Ls, Lh): the length of the selfish pool's
// private branch and the common length of the public branches (Sec. IV-B).
// Block-creation events drive a discrete-time Markov chain over this state
// space (total event rate is normalized to 1, so the embedded chain's
// stationary distribution equals time-average occupancy). Expected static,
// uncle, and nephew rewards are attributed to each block at its creation
// transition, following the probabilistic tracking of Appendix B.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// State is one state (Ls, Lh) of the selfish-mining Markov process.
type State struct {
	// S is Ls, the private branch length seen by the selfish pool.
	S int

	// H is Lh, the public branch length seen by honest miners.
	H int
}

// Lead returns the pool's advantage Ls - Lh.
func (s State) Lead() int { return s.S - s.H }

// Valid reports whether s belongs to the paper's state space: (0,0), (1,0),
// (1,1), or (i,j) with i-j >= 2 and j >= 0 (Sec. IV-B).
func (s State) Valid() bool {
	switch {
	case s.S < 0 || s.H < 0:
		return false
	case s == State{}:
		return true
	case s.S == 1 && (s.H == 0 || s.H == 1):
		return true
	default:
		return s.Lead() >= 2
	}
}

// String implements fmt.Stringer.
func (s State) String() string { return fmt.Sprintf("(%d,%d)", s.S, s.H) }

// MarshalText encodes the state as "s,h", making State usable as a JSON map
// key (occupancy maps are serialized by the experiments checkpoint
// journal).
func (s State) MarshalText() ([]byte, error) {
	return []byte(strconv.Itoa(s.S) + "," + strconv.Itoa(s.H)), nil
}

// UnmarshalText decodes the "s,h" form produced by MarshalText.
func (s *State) UnmarshalText(text []byte) error {
	a, b, ok := strings.Cut(string(text), ",")
	if !ok {
		return fmt.Errorf("core: state %q is not of the form s,h", text)
	}
	sv, err := strconv.Atoi(a)
	if err != nil {
		return fmt.Errorf("core: state %q: %w", text, err)
	}
	hv, err := strconv.Atoi(b)
	if err != nil {
		return fmt.Errorf("core: state %q: %w", text, err)
	}
	s.S, s.H = sv, hv
	return nil
}

// start is the consensus state (0,0).
var start = State{}
