package core

import "math"

// This file implements the closed-form stationary distribution of Sec. IV-C
// (Eq. 2) including the multiple-summation helper f(x,y,z) from Appendix A,
// plus two aggregate identities that make the revenue analysis exact without
// any state-space truncation:
//
// The lead process L(t) = Ls(t) - Lh(t) is a lumping of the 2-D chain. From
// any state with lead l >= 3, a pool block moves the lead to l+1 (rate a)
// and an honest block to l-1 (rate b), regardless of j; from lead 2 an
// honest block resets to (0,0). The lumped chain is therefore a birth-death
// chain, and cut balance gives the exact geometric law
//
//	piL(l) = a^l / b^(l-1) * pi00,   l >= 2,
//
// with piL(l) the total stationary mass at lead l. Combining with
// pi(i,0) = a^i pi00 yields the off-consensus fork mass
//
//	G(l) = sum_{j>=1} pi(l+j, j) = piL(l) - pi(l,0).
//
// Summing piL over l >= 2 reproduces the paper's normalization constant
// exactly: pi00 * (1 + a + ab + a^2/(1-2a)) = 1 gives
// pi00 = (1-2a)/(2a^3 - 4a^2 + 1).

// Pi00 returns the closed-form stationary probability of state (0,0):
//
//	pi(0,0) = (1-2a) / (2a^3 - 4a^2 + 1).
func Pi00(alpha float64) float64 {
	return (1 - 2*alpha) / denom(alpha)
}

// PiI0 returns the closed-form stationary probability of state (i,0):
// pi(i,0) = a^i * pi(0,0) for i >= 1.
func PiI0(alpha float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return math.Pow(alpha, float64(i)) * Pi00(alpha)
}

// Pi11 returns the closed-form stationary probability of state (1,1):
// pi(1,1) = (a - a^2) * pi(0,0).
func Pi11(alpha float64) float64 {
	return alpha * (1 - alpha) * Pi00(alpha)
}

// LeadProb returns piL(l), the total stationary probability of all states
// with lead l = Ls - Lh. Leads 0 and 1 are special: lead 0 aggregates (0,0)
// and (1,1); lead 1 is state (1,0).
func LeadProb(alpha float64, lead int) float64 {
	switch {
	case lead < 0:
		return 0
	case lead == 0:
		return Pi00(alpha) + Pi11(alpha)
	case lead == 1:
		return PiI0(alpha, 1)
	default:
		// a^l / b^(l-1) computed as a*(a/b)^(l-1): the separate powers
		// would both underflow to 0 (giving NaN) for very large leads,
		// while the ratio form underflows gracefully.
		a, b := alpha, 1-alpha
		return a * math.Pow(a/b, float64(lead-1)) * Pi00(alpha)
	}
}

// ForkMass returns G(l) = sum_{j>=1} pi(l+j, j), the stationary mass of
// lead-l states that carry a live public fork (j >= 1), for l >= 2.
func ForkMass(alpha float64, lead int) float64 {
	if lead < 2 {
		return 0
	}
	return LeadProb(alpha, lead) - PiI0(alpha, lead)
}

// PiIJ returns the closed-form stationary probability of state (i,j) for
// i >= j+2, j >= 1 (the general entry of Eq. 2):
//
//	pi(i,j) = a^i (1-a)^j (1-g)^j f(i,j,j) pi00
//	        + a^(i-j) g (1-g)^(j-1) (1/(1-a)^(i-j-1) - 1) pi00
//	        - g (1-g)^(j-1) sum_{k=1..j} a^(i-k) (1-a)^(j-k) f(i,j,j-k) pi00.
func PiIJ(alpha, gamma float64, i, j int) float64 {
	if j < 1 || i < j+2 {
		return 0
	}
	var (
		a    = alpha
		b    = 1 - alpha
		g    = gamma
		pi00 = Pi00(alpha)
	)
	term1 := math.Pow(a, float64(i)) * math.Pow(b, float64(j)) *
		math.Pow(1-g, float64(j)) * MultiSum(i, j, j)
	term2 := math.Pow(a, float64(i-j)) * g * math.Pow(1-g, float64(j-1)) *
		(1/math.Pow(b, float64(i-j-1)) - 1)
	var term3 float64
	for k := 1; k <= j; k++ {
		term3 += math.Pow(a, float64(i-k)) * math.Pow(b, float64(j-k)) *
			MultiSum(i, j, j-k)
	}
	term3 *= g * math.Pow(1-g, float64(j-1))
	return (term1 + term2 - term3) * pi00
}

// MultiSum evaluates the nested-summation counting function f(x,y,z) of
// Appendix A:
//
//	f(x,y,z) = sum_{s_z=y+2}^{x} sum_{s_{z-1}=y+1}^{s_z} ...
//	           sum_{s_1=y-z+3}^{s_2} 1        for z >= 1 and x >= y+2,
//	f(x,y,z) = 0                               otherwise.
//
// The k-th index (k = 1..z) has lower bound y-z+k+2 and upper bound s_{k+1}
// (with s_{z+1} = x). The count is evaluated by dynamic programming in
// float64: the counts grow combinatorially and would overflow int64 for
// moderately large arguments, while float64 keeps ~16 significant digits,
// ample for comparing stationary probabilities.
func MultiSum(x, y, z int) float64 {
	if z < 1 || x < y+2 {
		return 0
	}
	// count[v] = number of valid tuples (s_1..s_k) with s_k = v.
	// Level k has lower bound lb(k) = y - z + k + 2.
	lb := func(k int) int { return y - z + k + 2 }

	// Values range over [lb(1), x]; use an offset array.
	lo := lb(1)
	size := x - lo + 1
	if size <= 0 {
		return 0
	}
	count := make([]float64, size)
	for v := lb(1); v <= x; v++ {
		count[v-lo] = 1
	}
	for k := 2; k <= z; k++ {
		// prefix at v = number of tuples with s_{k-1} <= v.
		next := make([]float64, size)
		var prefix float64
		for v := lo; v <= x; v++ {
			prefix += count[v-lo]
			if v >= lb(k) {
				next[v-lo] = prefix
			}
		}
		count = next
	}
	var total float64
	for _, c := range count {
		total += c
	}
	return total
}

// denom is the common denominator 2a^3 - 4a^2 + 1 of the closed forms.
func denom(alpha float64) float64 {
	return 2*alpha*alpha*alpha - 4*alpha*alpha + 1
}
