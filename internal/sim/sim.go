// Package sim implements the paper's event-driven selfish-mining simulator
// (Sec. V) on top of a real block tree, generalized from the paper's single
// selfish pool to K competing pools.
//
// Block-creation events arrive one at a time; each event's producer is drawn
// from the miner population by hash power. Each colluding pool (label 1..K)
// mines a private branch and runs its own Strategy (the default is the
// paper's Algorithm 1); honest miners (pool 0) follow the protocol: mine on
// the longest public branch, break ties with total probability gamma toward
// whichever published pool branches tie for the lead (split evenly among
// them), and reference every eligible uncle they can see. Rewards are
// settled over the final tree, so the simulator validates the analytic
// model end to end: state occupancy, uncle distances, and revenue all
// emerge from the tree rather than from the model's formulas. The paper's
// setting is the K = 1 special case and is bit-compatible with the
// pre-generalization engine.
//
// For long runs the simulator can audit itself: Config.Audit enables a
// runtime invariant auditor (reward conservation, timestamp and
// consensus-floor monotonicity, and the incremental uncle-candidate set
// checked against a brute-force rescan) that never changes results; see
// AuditConfig. Batch entry points come in context-aware variants
// (RunManyCtx) whose cancellation semantics — in-flight runs finish,
// completed results are bit-identical to an uninterrupted batch — come
// from the internal/parallel pool.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// genesisMiner is the reserved miner ID for the genesis block.
const genesisMiner chain.MinerID = 0

// maxReferenceWindow caps how far back the simulator scans for uncle
// candidates when the schedule has no depth limit. Races longer than this
// occur with probability below (alpha/beta)^64 < 1e-5 at alpha <= 0.45, far
// beneath simulation resolution.
const maxReferenceWindow = 64

// occDim is the side length of the dense (Ls x Lh) occupancy grid. Branch
// lengths reach it only in races longer than the reference window, which
// the rare-overflow map absorbs; everything else is a single array
// increment per event instead of a map insertion.
const occDim = 64

// windowBlock is one entry of the uncle-candidate window: a block ID with
// its height denormalized next to it, so window maintenance stays within
// one cache-friendly array instead of chasing tree records.
type windowBlock struct {
	id     chain.BlockID
	height int
}

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config describes one simulation.
type Config struct {
	// Population supplies miners, hash powers, and pool labels. Required.
	Population *mining.Population

	// Gamma is the honest tie-breaking parameter (Sec. IV-A): the total
	// fraction of honest power that mines on a published pool branch
	// during a tie, split evenly across however many pool branches tie
	// for the lead.
	Gamma float64

	// Schedule is the reward schedule (zero value: Ethereum).
	Schedule rewards.Schedule

	// Blocks is the number of block-creation events to simulate.
	Blocks int

	// Seed makes the run reproducible.
	Seed uint64

	// MaxUnclesPerBlock caps uncle references per block. Zero means
	// unlimited (the paper's model); Ethereum uses 2.
	MaxUnclesPerBlock int

	// Strategy selects the behavior every pool runs when Strategies is
	// not set. Nil means Algorithm1 (the paper's strategy).
	Strategy Strategy

	// Strategies assigns one strategy per pool, indexed by PoolID-1
	// (pool 1 first). When set, its length must equal the population's
	// pool count and every entry must be non-nil; it overrides Strategy.
	Strategies []Strategy

	// PoolOmitsUncleRefs stops the pools from referencing uncles in
	// their own blocks, isolating the nephew-income component of the
	// attack.
	PoolOmitsUncleRefs bool

	// NoDecisionTables keeps every pool on the live Strategy interface
	// path instead of the compiled decision tables eligible strategies
	// normally run on (see DecisionTable). Tables never change results —
	// they are validated snapshots of the same reactions — so this is a
	// diagnostic knob: equivalence tests flip it to compare the paths,
	// and -notables exposes it on the CLI.
	NoDecisionTables bool

	// Time configures the continuous-time axis: exponential inter-arrival
	// times paced by difficulty, per-block timestamps, and an optional
	// engine-driven difficulty controller. The zero value keeps the
	// timeless block-count engine, bit-identical to the pre-time path.
	Time TimeConfig

	// FastForward enables analytic skipping of uneventful stretches: while
	// every pool's private branch is empty (the race origin), the engine
	// samples the number of consecutive honest blocks before the next
	// selfish find in one geometric draw, bulk-appends them, and resumes
	// event-by-event at the interesting event. Results agree with the
	// plain loop in distribution (pinned by the model-agreement suite) but
	// not bit-for-bit: skipping consumes the random stream differently, so
	// golden fingerprints apply per mode. Fast-forward runs are themselves
	// bit-deterministic and parallel-safe (invariant 3 holds within the
	// mode). It is silently ignored when a pool's strategy does not adopt
	// at the (0, 1, 0) frame (the stretch would not be memoryless) or when
	// the honest crowd has no hash power; it is rejected when combined
	// with a feedback difficulty controller (inter-arrival times are then
	// sequentially dependent, so stretches cannot be bulk-sampled).
	// Strategies must be stateless functions of their frame, which the
	// Strategy contract already requires.
	FastForward bool

	// Streaming settles the chain incrementally as the consensus floor
	// advances and evicts settled records from the block tree, keeping
	// resident memory O(active race window) instead of O(run length) —
	// the mode multi-million-block horizons require (see stream.go).
	// Results are bit-identical to the default one-shot settlement except
	// Result.Steady, whose start snaps to a cumulative snapshot boundary
	// (within 1/2048 of the run; exact for runs short enough that the
	// snapshot interval is still one block). The final tree is partial, so
	// RunTrace rejects the mode.
	Streaming bool

	// Antithetic runs the simulation on the antithetic mirror of the
	// seed's random streams: every uniform draw u is reflected to
	// (1 - 2^-53) - u (see rng.Source.SetAntithetic). A (seed, plain) /
	// (seed, antithetic) pair of runs is negatively correlated, so the
	// pair's mean estimates the same quantities at reduced variance — the
	// antithetic variance-reduction estimator in internal/experiments.
	Antithetic bool

	// Parallelism bounds the worker goroutines RunMany fans independent
	// runs across. Zero means runtime.GOMAXPROCS(0); one forces
	// sequential execution. The setting never changes results: per-run
	// seeds are derived from Seed alone (see DeriveSeed) and the run
	// order of the returned Series is preserved.
	Parallelism int

	// Audit enables the runtime invariant auditor (see AuditConfig): the
	// engine adversarially checks its own bookkeeping — reward
	// conservation, timestamp and consensus-floor monotonicity, and the
	// incremental fork-child set against a brute-force rescan — while the
	// run executes. The zero value disables it; auditing never changes
	// results, it can only fail the run with ErrAudit.
	Audit AuditConfig
}

func (c Config) withDefaults() Config {
	if c.Schedule.MaxDepth() == 0 {
		c.Schedule = rewards.Ethereum()
	}
	if c.Strategy == nil {
		c.Strategy = Algorithm1{}
	}
	if c.Time.Enabled {
		c.Time.Difficulty = c.Time.Difficulty.WithDefaults()
	}
	return c
}

func (c Config) validate() error {
	if c.Population == nil {
		return fmt.Errorf("%w: population is required", ErrBadConfig)
	}
	if math.IsNaN(c.Gamma) || c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("%w: gamma %v out of [0,1]", ErrBadConfig, c.Gamma)
	}
	if c.Blocks <= 0 {
		return fmt.Errorf("%w: blocks %d must be positive", ErrBadConfig, c.Blocks)
	}
	if c.MaxUnclesPerBlock < 0 {
		return fmt.Errorf("%w: negative uncle limit", ErrBadConfig)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism", ErrBadConfig)
	}
	if c.Time.Enabled {
		if err := c.Time.Difficulty.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if c.FastForward && c.Time.Enabled && c.Time.Difficulty.Rule != difficulty.Static {
		return fmt.Errorf("%w: fast-forward requires a static difficulty rule "+
			"(a feedback controller makes inter-arrival times sequentially dependent)", ErrBadConfig)
	}
	if err := c.Audit.validate(); err != nil {
		return err
	}
	if c.Strategies != nil {
		if got, want := len(c.Strategies), c.Population.NumPools(); got != want {
			return fmt.Errorf("%w: %d strategies for %d pools", ErrBadConfig, got, want)
		}
		for i, s := range c.Strategies {
			if s == nil {
				return fmt.Errorf("%w: nil strategy for pool %d", ErrBadConfig, i+1)
			}
		}
	}
	return nil
}

// strategyFor resolves the strategy pool p (1-based) runs. Defaults must
// already be applied.
func (c Config) strategyFor(p int) Strategy {
	if c.Strategies != nil {
		return c.Strategies[p-1]
	}
	return c.Strategy
}

// poolState is one pool's view of the race: a private branch of blocks
// mined on top of root, the first published of them announced. root is the
// block the pool last rejoined the network at (its fork point as of its
// last adopt, rebase, or commit); a rival's later rebase can move the
// public chain off it, leaving the true divergence deeper. The pool's
// frame numbers are measured against root (see frame) — both Ls and Lh
// shift by the same amount in that case, so length comparisons, and hence
// strategy decisions, stay exact.
type poolState struct {
	strat Strategy

	// table is strat compiled into dense reaction grids (nil when the
	// strategy is ineligible or tables are disabled): the per-event
	// decision is then a table load with no interface dispatch and no
	// per-event validation (see DecisionTable).
	table *DecisionTable

	// root is the block the pool's branch builds on; rootHeight is its
	// height, denormalized so frame computations never touch the tree.
	root       chain.BlockID
	rootHeight int

	// blocks is the pool's private branch above root, oldest first; the
	// first published of them are visible to honest miners.
	blocks    []chain.BlockID
	published int
}

// tip returns the top of the pool's branch (root when the branch is empty).
func (p *poolState) tip() chain.BlockID {
	if len(p.blocks) == 0 {
		return p.root
	}
	return p.blocks[len(p.blocks)-1]
}

// publishedTip returns the top of the pool's announced prefix.
func (p *poolState) publishedTip() chain.BlockID {
	if p.published == 0 {
		return p.root
	}
	return p.blocks[p.published-1]
}

// simulator holds the evolving race state. The race bookkeeping generalizes
// Algorithm 1 to K pools: pubTip is the tip of the public chain honest
// miners extend; each pool holds a private branch forking at its own root.
// A pool's race frame is the (Ls, Lh, published) triple of Algorithm 1
// measured from its root: Ls = len(blocks), Lh = pubHeight - rootHeight,
// so Ls > Lh exactly when the pool's private chain is strictly longer than
// the public one. With a single pool this reduces to the paper's
// (ls, lh, published) race state bit for bit.
//
// A zero simulator is reusable: init prepares it for a run and retains all
// storage from previous runs, so one simulator per worker amortizes the
// ~100k-block tree and scratch allocations across a whole batch.
type simulator struct {
	cfg    Config
	random *rng.Source
	tree   *chain.Tree

	// Continuous-time state (see time.go). timing mirrors
	// cfg.Time.Enabled; clock is the simulation time, advanced by one
	// exponential draw from the dedicated timeRandom stream per event so
	// the event/race stream is identical with time on or off. ctrl is the
	// engine-driven difficulty controller (nil when disabled or static;
	// staticDifficulty paces the clock then), observedTo the deepest
	// settled block already fed to it, and obsScratch the reusable
	// settled-segment buffer.
	timing           bool
	clock            float64
	staticDifficulty float64
	timeRandom       *rng.Source
	ctrl             *difficulty.Controller
	observedTo       chain.BlockID
	obsScratch       []chain.BlockID

	// published[id - idBase] reports whether honest miners can see the
	// block. Unpublished blocks are additionally visible to the pool that
	// mined them. idBase tracks the tree's eviction base under streaming
	// (always zero otherwise), so both per-block arrays stay as dense ID
	// indexes while the settled prefix is evicted out from under them.
	published []bool
	idBase    int

	// str is the streaming-settlement overlay (see stream.go); nil unless
	// cfg.Streaming, so the non-streaming hot path pays one nil check per
	// event.
	str *streamState

	// recent is a sliding window of blocks used as uncle candidates;
	// entries carry their height so trimming and filtering never touch
	// the tree. inRecent[id] tracks membership (blocks leave only by
	// trimming). The live window is recent[recentHead:]: trimming
	// advances the head cursor instead of compacting, and the rare
	// compaction (once the dead prefix reaches recentCompactHead) keeps
	// the backing array bounded — one amortized entry move per trim
	// instead of a whole-window memmove per event.
	recent     []windowBlock
	recentHead int
	inRecent   []bool

	// forkChildren lists the blocks in recent whose parent has at least
	// two children, sorted by ID (= creation order, the order recent
	// holds them). Only such blocks can ever be referenced as uncles: an
	// eligible uncle is off the referencing chain while its parent is on
	// it, so the parent has a second, on-chain child. eligibleUncles
	// scans this set — almost always empty or a handful — instead of the
	// whole candidate window, making the per-event uncle scan O(forks)
	// rather than O(window). The set is shared by all pools; visibility
	// is filtered per viewer at scan time.
	forkChildren []windowBlock

	// referencedInWindow counts the forkChildren entries some block has
	// referenced. While it is zero, no candidate can be rejected by the
	// already-referenced rule, so the chain walk skips gathering
	// ancestor references entirely.
	referencedInWindow int

	// pools holds the per-pool race state; pools[i] is PoolID i+1.
	pools []poolState

	// pubTip is the tip of the public chain honest miners currently
	// extend; pubHeight is its height.
	pubTip    chain.BlockID
	pubHeight int

	// floor is the last computed consensus floor: the deepest block every
	// future block must descend from (the common ancestor of the public
	// tip and all pool branches). It advances at race resolutions and
	// gates candidate purging.
	floor chain.BlockID

	// floorDirty marks that the race topology changed this event (an
	// adopt, a commit, or a rebase — the only operations that can move the
	// consensus floor), deferring the floor recompute and candidate purge
	// to one flushFloor call at the end of the event instead of once per
	// reaction inside the fixed-point loop. Between events the flushed
	// floor always equals consensusFloor(), which is what lets the
	// per-event settled-floor observation read it instead of recomputing.
	floorDirty bool

	// occ is the pool-indexed set of dense (Ls x Lh) occupancy grids
	// (grid p-1 records pool p's frame; a poolless population keeps one
	// grid pinned to (0,0)), each indexed Ls*occDim+Lh. occOverflow
	// absorbs the rare states beyond a grid (races longer than the
	// reference window) and is allocated only when needed.
	occ         [][]int64
	occOverflow []map[core.State]int64
	window      int

	// leaderScratch is reused by honest fork choice to collect the pool
	// indices whose published branches tie for the public lead.
	leaderScratch []int

	// Scratch buffers reused by eligibleUncles so the per-event hot path
	// stays allocation-free after warm-up. chainScratch maps window
	// heights to chain ancestors (indexed by height offset), refScratch
	// collects uncles those ancestors already reference, candScratch
	// holds filter survivors, and uncleScratch backs the returned
	// candidate list (safe to reuse: chain.Tree.Extend copies the uncle
	// list it is given).
	chainScratch []chain.BlockID
	refScratch   []chain.BlockID
	uncleScratch []chain.BlockID
	candScratch  []windowBlock
	purgeScratch []chain.BlockID

	// aud is the runtime invariant auditor (see audit.go); nil unless
	// cfg.Audit.Enabled, so the hot path pays one nil check per event.
	aud *auditor

	// Fast-forward state (see fastforward.go). ffwd reports that
	// cfg.FastForward is on and every pool's strategy passed the
	// adopt-at-origin probe; ffwdMiner is the honest crowd's sole member
	// (bulk runs need no attribution draws then), or -1 when honest power
	// is spread over several miners. ffwdLogQ caches the geometric draw's
	// denominator -Log1p(-alpha), hoisting the logarithm out of every
	// stretch.
	ffwd      bool
	ffwdMiner chain.MinerID
	ffwdLogQ  float64

	// originFast enables the plain loop's race-origin fast path: when
	// every pool is tabled and its table plainly adopts at (0, 1, 0), an
	// honest block found with every pool parked at the origin has a fully
	// determined outcome (extend the tip, every pool re-adopts, the floor
	// rides up one), so the event skips the leader scan, the reaction
	// loop, and the floor recompute while consuming identical draws.
	// Mutually exclusive with ffwd, which skips those events wholesale.
	originFast bool

	// events counts block-creation events by producing pool (entry 0: the
	// honest crowd), feeding Result.EventsByPool. The selfish share of
	// events is the control-variate statistic with exactly known mean
	// alpha.
	events []int64
}

// init prepares the simulator for one run of cfg, reusing any storage left
// over from previous runs. cfg must already have defaults applied and be
// validated.
func (s *simulator) init(cfg Config) {
	window := cfg.Schedule.MaxDepth()
	if window > maxReferenceWindow {
		window = maxReferenceWindow
	}
	// One block per event: size the tree (and the per-block arrays below)
	// up front so they never reallocate mid-run. Under streaming the
	// resident set is a window over the run, so the hint drops to a few
	// flush batches — this is the O(blocks) -> O(window) memory change.
	blocksHint := cfg.Blocks
	if cfg.Streaming {
		if h := 4 * (window + 1 + streamFlushBatch); h < blocksHint {
			blocksHint = h
		}
	}
	treeCfg := chain.Config{
		// The tree enforces the protocol's reference-depth rule so a
		// buggy strategy cannot slip an ineligible uncle through.
		MaxUncleDepth:     window,
		MaxUnclesPerBlock: cfg.MaxUnclesPerBlock,
		BlocksHint:        blocksHint,
	}
	s.cfg = cfg
	s.window = window
	if s.tree == nil {
		s.tree = chain.NewTree(treeCfg, genesisMiner)
	} else {
		s.tree.Reset(treeCfg, genesisMiner)
	}
	if s.random == nil {
		s.random = rng.New(cfg.Seed)
	} else {
		s.random.Reseed(cfg.Seed)
	}
	s.random.SetAntithetic(cfg.Antithetic)
	if cap(s.published) < blocksHint+1 {
		s.published = make([]bool, 1, blocksHint+1)
		s.inRecent = make([]bool, 1, blocksHint+1)
	} else {
		s.published = s.published[:1]
		s.inRecent = s.inRecent[:1]
	}
	s.published[0] = true // genesis
	s.inRecent[0] = false
	s.recent = s.recent[:0]
	s.recentHead = 0
	s.forkChildren = s.forkChildren[:0]
	s.referencedInWindow = 0

	numPools := cfg.Population.NumPools()
	if cap(s.pools) < numPools {
		s.pools = make([]poolState, numPools)
	} else {
		s.pools = s.pools[:numPools]
	}
	genesis := s.tree.Genesis()
	for i := range s.pools {
		p := &s.pools[i]
		p.strat = cfg.strategyFor(i + 1)
		p.table = nil
		if !cfg.NoDecisionTables {
			p.table = tableFor(p.strat)
		}
		p.root = genesis
		p.rootHeight = 0
		p.blocks = p.blocks[:0]
		p.published = 0
	}
	s.pubTip = genesis
	s.pubHeight = 0
	s.floor = genesis
	s.floorDirty = false

	grids := numPools
	if grids == 0 {
		grids = 1
	}
	if cap(s.occ) < grids {
		s.occ = make([][]int64, grids)
		s.occOverflow = make([]map[core.State]int64, grids)
	} else {
		s.occ = s.occ[:grids]
		s.occOverflow = s.occOverflow[:grids]
	}
	for i := range s.occ {
		if s.occ[i] == nil {
			s.occ[i] = make([]int64, occDim*occDim)
		} else {
			clear(s.occ[i])
		}
		s.occOverflow[i] = nil
	}
	if cap(s.chainScratch) < window+2 {
		s.chainScratch = make([]chain.BlockID, 0, window+2)
	}
	if cap(s.events) < numPools+1 {
		s.events = make([]int64, numPools+1)
	} else {
		s.events = s.events[:numPools+1]
		clear(s.events)
	}
	s.initTime(cfg)
	s.initStream(cfg)
	s.initFastForward(cfg)
	s.initOriginFast()
	s.initAudit(cfg)
}

// initOriginFast decides whether the plain loop may take the race-origin
// fast path. The probe is table-only — a pool without a compiled table
// keeps the plain path rather than having its strategy called at init —
// and requires at least one pool (the poolless engine's floor never
// advances, which the fast path could not mirror). Under ffwd the origin
// events are skipped wholesale instead, so the fast path stands down.
func (s *simulator) initOriginFast() {
	s.originFast = false
	if s.ffwd || len(s.pools) == 0 {
		return
	}
	for i := range s.pools {
		t := s.pools[i].table
		if t == nil || !t.AdoptsAtOrigin() {
			return
		}
	}
	s.originFast = true
}

// frame returns pool index i's race frame: the (Ls, Lh, published) triple
// of Algorithm 1 measured from the pool's root.
func (s *simulator) frame(i int) (ls, lh, published int) {
	p := &s.pools[i]
	return len(p.blocks), s.pubHeight - p.rootHeight, p.published
}

// recordState tallies every pool's frame observed just before an event.
func (s *simulator) recordState() {
	if len(s.pools) == 0 {
		s.occ[0][0]++ // the all-honest network idles at (0, 0)
		return
	}
	for i := range s.pools {
		ls, lh, _ := s.frame(i)
		if ls < occDim && lh >= 0 && lh < occDim {
			s.occ[i][ls*occDim+lh]++
			continue
		}
		if s.occOverflow[i] == nil {
			s.occOverflow[i] = make(map[core.State]int64)
		}
		s.occOverflow[i][core.State{S: ls, H: lh}]++
	}
}

// occupancyMap materializes pool index i's per-state event counts (the
// Result view).
func (s *simulator) occupancyMap(i int) map[core.State]int64 {
	out := make(map[core.State]int64)
	for idx, n := range s.occ[i] {
		if n != 0 {
			out[core.State{S: idx / occDim, H: idx % occDim}] = n
		}
	}
	for state, n := range s.occOverflow[i] {
		out[state] = n
	}
	return out
}

// poolOf returns the pool label of the miner that produced a block.
func (s *simulator) poolOf(id chain.BlockID) mining.PoolID {
	return s.cfg.Population.PoolOf(s.tree.MinerOf(id))
}

// addForkChild inserts b into the ID-sorted fork-child set. Blocks enter at
// most once: newborns on arrival, a previously only child exactly at its
// parent's one-to-two transition.
func (s *simulator) addForkChild(b windowBlock) {
	fc := append(s.forkChildren, b)
	i := len(fc) - 1
	for i > 0 && fc[i-1].id > b.id {
		fc[i] = fc[i-1]
		i--
	}
	fc[i] = b
	s.forkChildren = fc
}

// removeForkChild drops b from the fork-child set, reporting whether it was
// present, and keeps the referenced-candidate count in step.
func (s *simulator) removeForkChild(b chain.BlockID) bool {
	for i, x := range s.forkChildren {
		if x.id == b {
			s.forkChildren = append(s.forkChildren[:i], s.forkChildren[i+1:]...)
			if s.tree.ReferencedBy(b) != chain.NoBlock {
				s.referencedInWindow--
			}
			return true
		}
	}
	return false
}

// extend creates a block, records it in the candidate window, and returns
// its ID.
func (s *simulator) extend(parent chain.BlockID, miner chain.MinerID, uncles []chain.BlockID, visible bool) (chain.BlockID, error) {
	// Fork-child bookkeeping feeds eligibleUncles: the new block becomes
	// a fork child if its parent already had a child, and a previously
	// only child becomes one alongside it (unless the window already
	// trimmed it — a trimmed block can never be referenced again).
	firstSibling := s.tree.FirstChildOf(parent)
	// Count first-time references among the new block's uncles before the
	// tree overwrites their referenced-by links. Every referenced uncle
	// is necessarily a current fork child (it just passed eligibility).
	for _, u := range uncles {
		if s.tree.ReferencedBy(u) == chain.NoBlock {
			s.referencedInWindow++
		}
	}
	id, err := s.tree.ExtendAt(parent, miner, uncles, s.clock)
	if err != nil {
		// Roll the count back: the tree rejected the block.
		for _, u := range uncles {
			if s.tree.ReferencedBy(u) == chain.NoBlock {
				s.referencedInWindow--
			}
		}
		return chain.NoBlock, fmt.Errorf("sim: extending chain: %w", err)
	}
	height := s.tree.HeightOf(id)
	if firstSibling != chain.NoBlock {
		if s.tree.NextSiblingOf(firstSibling) == id && s.inRecent[int(firstSibling)-s.idBase] {
			// Siblings share a height, so the denormalized height
			// of the promoted first child equals the newborn's.
			s.addForkChild(windowBlock{id: firstSibling, height: height})
		}
		// The newborn has the largest ID: appending stays sorted.
		s.forkChildren = append(s.forkChildren, windowBlock{id: id, height: height})
	}
	s.published = append(s.published, visible)
	s.inRecent = append(s.inRecent, true)
	s.recent = append(s.recent, windowBlock{id: id, height: height})
	// Trim the candidate window: drop blocks too old to ever be
	// referenced again.
	s.trimRecent(height - s.window - 1)
	return id, nil
}

// recentCompactHead is the dead-prefix length at which trimRecent compacts
// the candidate window's backing array. Until then trims only advance the
// head cursor, so the steady state pays one amortized entry move per trim
// and the array stays within a couple of windows of its live size.
const recentCompactHead = 64

// trimRecent drops candidate-window entries below minHeight (they can never
// be referenced again) by advancing the head cursor, compacting the backing
// array only when the dead prefix has grown to recentCompactHead entries.
func (s *simulator) trimRecent(minHeight int) {
	head := s.recentHead
	for head < len(s.recent) && s.recent[head].height < minHeight {
		old := s.recent[head].id
		s.inRecent[int(old)-s.idBase] = false
		// Scanning the tiny fork-child set directly is cheaper than
		// asking the tree whether old is a fork child first.
		if len(s.forkChildren) > 0 {
			s.removeForkChild(old)
		}
		head++
	}
	if head >= recentCompactHead {
		n := copy(s.recent, s.recent[head:])
		s.recent = s.recent[:n]
		head = 0
	}
	s.recentHead = head
}

// publishPool marks the first n blocks of pool p's branch as visible to
// honest miners.
func (s *simulator) publishPool(p *poolState, n int) {
	for i := p.published; i < n && i < len(p.blocks); i++ {
		s.published[int(p.blocks[i])-s.idBase] = true
	}
	if n > p.published {
		p.published = n
	}
}

// consensusFloor returns the deepest block every future block must descend
// from: the common ancestor of the public tip and every pool's branch (its
// private tip, or its root while the branch is empty — the pool's next
// block forks there).
func (s *simulator) consensusFloor() chain.BlockID {
	floor := s.pubTip
	for i := range s.pools {
		if tip := s.pools[i].tip(); tip != floor {
			floor = s.tree.CommonAncestor(floor, tip)
		}
	}
	return floor
}

// resolve recomputes the consensus floor after a pool committed or adopted
// and, when the floor advanced, purges uncle candidates the new floor
// decides for good. With a single pool the floor is exactly the paper's
// race base, and resolve fires at the same points the two-party engine's
// race reset did. The only error it can return is an ErrAudit from the
// floor-monotonicity check; with auditing off it always succeeds.
func (s *simulator) resolve() error {
	floor := s.consensusFloor()
	if floor == s.floor {
		return nil
	}
	if s.aud != nil {
		// Every floor advance is audited, regardless of the sampling
		// interval: the floor must only ever move down the settled chain.
		if err := s.aud.auditFloor(s, s.floor, floor); err != nil {
			return err
		}
	}
	s.floor = floor
	if len(s.forkChildren) > 0 {
		s.purgeForkChildren(floor)
	}
	return nil
}

// purgeForkChildren drops candidates the consensus floor makes permanently
// ineligible. Every future block descends from floor, so a candidate can be
// discarded for good when the settled chain through floor decides its fate:
// it is referenced by a block on that chain (always rejected by the
// already-referenced rule), it is on that chain itself (an ancestor of every
// future block), or its parent sits at or below the floor yet off that
// chain (never attachable again). Candidates attached above the floor stay:
// they may yet be referenced from a live private branch. Purging here keeps
// the fork-child set down to genuine open candidates, so eligibleUncles'
// fast path fires instead of re-rejecting dead candidates every event
// until the window trims them.
func (s *simulator) purgeForkChildren(floor chain.BlockID) {
	t := s.tree
	floorHeight := t.HeightOf(floor)
	// One walk down floor's chain covers every check below; it spans
	// from the lowest candidate's parent height (clamped to floor) up
	// to floor.
	base := floorHeight
	for _, cand := range s.forkChildren {
		if cand.height-1 < base {
			base = cand.height - 1
		}
	}
	if base < 0 {
		base = 0
	}
	span := floorHeight - base + 1
	if cap(s.purgeScratch) < span {
		s.purgeScratch = make([]chain.BlockID, span)
	}
	onChain := s.purgeScratch[:span]
	for i := range onChain {
		onChain[i] = chain.NoBlock
	}
	cursor := floor
	for {
		up, h := t.ParentAndHeight(cursor)
		onChain[h-base] = cursor
		if h <= base || cursor == t.Genesis() {
			break
		}
		cursor = up
	}
	isOn := func(b chain.BlockID, h int) bool {
		return h >= base && h <= floorHeight && onChain[h-base] == b
	}

	kept := s.forkChildren[:0]
	for _, cand := range s.forkChildren {
		c := cand.id
		referencer := t.ReferencedBy(c)
		remove := false
		switch {
		case referencer != chain.NoBlock && isOn(referencer, t.HeightOf(referencer)):
			remove = true // referenced on the consensus chain
		case isOn(c, cand.height):
			remove = true // on the consensus chain itself
		case cand.height-1 <= floorHeight && !isOn(t.ParentOf(c), cand.height-1):
			remove = true // parent off every future chain
		}
		if remove {
			if referencer != chain.NoBlock {
				s.referencedInWindow--
			}
			continue
		}
		kept = append(kept, cand)
	}
	s.forkChildren = kept
}

// eligibleUncles returns the uncle references a block mined on parent may
// include: blocks within the reference window that the viewer can see,
// whose parent lies on the new block's chain, that are not on that chain
// themselves, and that no chain ancestor already references. The viewer is
// a pool label: honest miners (0) see only published blocks; a pool
// additionally sees its own unpublished blocks (visibility is per-camp —
// referencing an own stale private block reveals it in the nephew's
// header).
//
// The returned slice aliases a scratch buffer owned by the simulator; it is
// only valid until the next eligibleUncles call. Callers hand it straight to
// the tree, which copies it.
func (s *simulator) eligibleUncles(parent chain.BlockID, viewer mining.PoolID) []chain.BlockID {
	// Fast path: an eligible uncle is off the new block's chain while
	// its parent is on it, so its parent has a second child — only the
	// incrementally maintained fork-child set needs scanning, and it is
	// empty in long honest stretches.
	if len(s.forkChildren) == 0 {
		return nil
	}
	tree := s.tree
	newHeight := tree.HeightOf(parent) + 1
	lowest := newHeight - s.window
	if lowest < 1 {
		lowest = 1
	}

	// Cheap per-candidate filters first (height window, visibility); the
	// chain walk below is only paid when something survives them, and
	// only down to the lowest surviving height.
	cands := s.candScratch[:0]
	minH := newHeight
	for _, cand := range s.forkChildren {
		if cand.height < lowest || cand.height >= newHeight {
			continue
		}
		if !s.published[int(cand.id)-s.idBase] &&
			(viewer == mining.HonestPool || s.poolOf(cand.id) != viewer) {
			continue // invisible to this viewer
		}
		if cand.height < minH {
			minH = cand.height
		}
		cands = append(cands, cand)
	}
	s.candScratch = cands
	if len(cands) == 0 {
		return nil
	}
	// Only a referenced-somewhere candidate can be rejected by the
	// already-referenced rule; while the window holds none, the walk
	// skips gathering ancestor references. (The rejection must scan the
	// ancestors' own reference lists: the tree's reverse index keeps one
	// referencer per block, but competing private branches can each
	// reference the same published candidate, so per-chain rejection
	// cannot trust it.)
	needRefs := s.referencedInWindow > 0

	// Map each height from the lowest surviving candidate up to the new
	// block's to its chain ancestor, and collect uncles those ancestors
	// already reference. base is the deepest height mapped (the parent
	// height of the lowest candidate); chainScratch[h-base] holds the
	// ancestor at height h. Ancestors below base only reference uncles
	// deeper than any candidate, so the shortened walk loses nothing —
	// and only ancestors above minH can reference a candidate at all, so
	// the reference gathering stops a step earlier than the mapping.
	base := minH - 1
	span := newHeight - base
	if cap(s.chainScratch) < span {
		s.chainScratch = make([]chain.BlockID, span)
	}
	chainAt := s.chainScratch[:span]
	for i := range chainAt {
		chainAt[i] = chain.NoBlock
	}
	referenced := s.refScratch[:0]
	cursor := parent
	if needRefs {
		for {
			up, h, uncles := tree.BlockInfo(cursor)
			chainAt[h-base] = cursor
			referenced = append(referenced, uncles...)
			if h <= base || cursor == tree.Genesis() {
				break
			}
			cursor = up
		}
	} else {
		for {
			up, h := tree.ParentAndHeight(cursor)
			chainAt[h-base] = cursor
			if h <= base || cursor == tree.Genesis() {
				break
			}
			cursor = up
		}
	}
	s.refScratch = referenced

	// Full eligibility on the survivors. cands is sorted by ID, i.e.
	// creation order — the order the candidate window used to yield.
	out := s.uncleScratch[:0]
	for _, cand := range cands {
		if chainAt[cand.height-base] == cand.id {
			continue // on the new block's own chain
		}
		if chainAt[cand.height-1-base] != tree.ParentOf(cand.id) {
			continue // not attached to the new block's chain
		}
		if containsBlock(referenced, cand.id) {
			continue
		}
		out = append(out, cand.id)
	}
	s.uncleScratch = out
	if limit := s.cfg.MaxUnclesPerBlock; limit > 0 && len(out) > limit {
		// Keep the most recent (closest, highest-reward) candidates,
		// as a profit-maximizing miner would.
		out = out[len(out)-limit:]
	}
	return out
}

// containsBlock reports whether id occurs in ids. The lists scanned here
// hold at most two uncles per window height, so a linear scan beats a map
// both in time and in allocations.
func containsBlock(ids []chain.BlockID, id chain.BlockID) bool {
	for _, other := range ids {
		if other == id {
			return true
		}
	}
	return false
}

// poolEvent handles a block mined by pool index pi (Algorithm 1, lines 1-7,
// with the decision delegated to the pool's strategy). A block mined in
// private is invisible to everyone else, so only the mining pool is
// consulted — unless its reaction advances the public chain (a commit), in
// which case every other pool reacts to the new public state.
func (s *simulator) poolEvent(pi int, miner chain.MinerID) error {
	p := &s.pools[pi]
	var uncles []chain.BlockID
	if !s.cfg.PoolOmitsUncleRefs {
		uncles = s.eligibleUncles(p.tip(), mining.PoolID(pi+1))
	}
	id, err := s.extend(p.tip(), miner, uncles, false)
	if err != nil {
		return err
	}
	p.blocks = append(p.blocks, id)

	before := s.pubHeight
	if err := s.reactPool(pi); err != nil {
		return err
	}
	if s.pubHeight != before {
		return s.reactOthers(pi)
	}
	return nil
}

// reactOthers consults every pool except skip about an advanced public
// chain, in pool order with fresh frames, and repeats the pass (now
// including skip) until the public chain quiesces: a commit mid-pass
// advances the chain for pools consulted before it, and every pool must
// have seen the final public state before the next event. The loop
// terminates because only commits re-trigger it and each commit strictly
// raises the public height, bounded by the pools' finite private branches.
func (s *simulator) reactOthers(skip int) error {
	for {
		before := s.pubHeight
		for i := range s.pools {
			if i == skip {
				continue
			}
			if err := s.reactHonest(i); err != nil {
				return err
			}
		}
		if s.pubHeight == before {
			return nil
		}
		skip = -1
	}
}

// reactPool consults pool pi about its own fresh block and applies the
// decision: a pre-validated table load for tabled strategies, the live
// interface call (with per-event validation) otherwise. Overflow frames and
// frames whose compiled reaction was invalid fall back to the live path, so
// errors surface at the same event with the same message either way.
func (s *simulator) reactPool(pi int) error {
	p := &s.pools[pi]
	ls, lh, published := len(p.blocks), s.pubHeight-p.rootHeight, p.published
	if t := p.table; t != nil {
		if e, ok := entryAt(t.pool, ls, lh, published); ok && e != tableInvalid {
			return s.applyEntry(pi, e)
		}
	}
	return s.applyReaction(pi, p.strat.ReactToPool(ls, lh, published))
}

// reactHonest consults pool pi about an advanced public chain and applies
// the decision, with the same table-first dispatch as reactPool.
func (s *simulator) reactHonest(pi int) error {
	p := &s.pools[pi]
	ls, lh, published := len(p.blocks), s.pubHeight-p.rootHeight, p.published
	if t := p.table; t != nil {
		if e, ok := entryAt(t.honest, ls, lh, published); ok && e != tableInvalid {
			return s.applyEntry(pi, e)
		}
	}
	return s.applyReaction(pi, p.strat.ReactToHonest(ls, lh, published))
}

// applyEntry executes a compiled (already validated) table entry for pool
// pi. The keep entry returns without touching any state, which is the
// common case across long stretches of a race.
func (s *simulator) applyEntry(pi int, e int8) error {
	switch {
	case e == tableKeep:
		return nil
	case e > 0:
		s.publishPool(&s.pools[pi], int(e))
		return nil
	case e == tableAdopt:
		return s.adopt(pi)
	default:
		return s.commit(pi)
	}
}

// applyReaction validates and executes pool index pi's live strategy
// decision.
func (s *simulator) applyReaction(pi int, r Reaction) error {
	p := &s.pools[pi]
	ls, lh, published := s.frame(pi)
	if err := validateReaction(r, ls, lh, published); err != nil {
		return fmt.Errorf("%s (pool %d): at (%d,%d): %w", p.strat.Name(), pi+1, ls, lh, err)
	}
	switch {
	case r.Adopt:
		return s.adopt(pi)
	case r.Commit:
		return s.commit(pi)
	default:
		s.publishPool(p, r.PublishTo)
	}
	return nil
}

// adopt abandons pool pi's private branch and rejoins the public chain. The
// floor recompute is deferred to the end-of-event flushFloor.
func (s *simulator) adopt(pi int) error {
	p := &s.pools[pi]
	p.blocks = p.blocks[:0]
	p.published = 0
	p.root = s.pubTip
	p.rootHeight = s.pubHeight
	s.floorDirty = true
	return nil
}

// commit publishes pool pi's whole branch; strictly longest, it becomes the
// public chain (validation — per-event or at table compile — guarantees
// ls > lh, so the branch is non-empty). The floor recompute is deferred to
// the end-of-event flushFloor.
func (s *simulator) commit(pi int) error {
	p := &s.pools[pi]
	ls := len(p.blocks)
	s.publishPool(p, ls)
	tip := p.blocks[ls-1]
	s.pubTip = tip
	s.pubHeight = p.rootHeight + ls
	p.blocks = p.blocks[:0]
	p.published = 0
	p.root = tip
	p.rootHeight = s.pubHeight
	s.floorDirty = true
	return nil
}

// flushFloor recomputes the consensus floor once per event, after every
// reaction has been applied. Deferring the recompute out of the fixed-point
// reaction loop is result-identical: nothing reads the floor mid-event, a
// batched advance composes the per-reaction advances (ancestry is
// transitive, so floor monotonicity audits the same invariant), and the
// candidate purge is monotone in the floor — candidates an intermediate
// floor would have purged are purged by the final one, and eligibleUncles'
// own filters independently reject them meanwhile.
func (s *simulator) flushFloor() error {
	if !s.floorDirty {
		return nil
	}
	s.floorDirty = false
	return s.resolve()
}

// clampIndex maps a unit-interval fraction to an index in [0, n), guarding
// the u == 1-epsilon rounding edge.
func clampIndex(fraction float64, n int) int {
	idx := int(fraction * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// pickLeader chooses uniformly among the tied leading pools, consuming a
// draw only when there is an actual choice.
func (s *simulator) pickLeader(leaders []int) int {
	if len(leaders) == 1 {
		return leaders[0]
	}
	return leaders[clampIndex(s.random.Float64(), len(leaders))]
}

// honestEvent handles a block mined by an honest miner (Algorithm 1,
// lines 8-20, including every pool's reaction).
func (s *simulator) honestEvent(miner chain.MinerID) error {
	// Fork choice: longest public branch. The candidates are the honest
	// public tip and every pool's published prefix; a strictly highest
	// branch wins outright, and when branches tie for the lead the
	// honest miner splits gamma across the tied pool branches (a
	// strategy that over-publishes makes its public branch strictly
	// longer, in which case every honest miner follows it).
	bestHeight := s.pubHeight
	leaders := s.leaderScratch[:0]
	for i := range s.pools {
		p := &s.pools[i]
		if p.published == 0 {
			continue
		}
		h := p.rootHeight + p.published
		switch {
		case h > bestHeight:
			bestHeight = h
			leaders = append(leaders[:0], i)
		case h == bestHeight:
			leaders = append(leaders, i)
		}
	}
	s.leaderScratch = leaders

	targetPool := -1
	switch {
	case len(leaders) == 0:
		// The honest tip leads alone.
	case bestHeight > s.pubHeight:
		// Pool branches strictly lead: honest miners must follow one;
		// several tie only among themselves (uniform pick).
		targetPool = s.pickLeader(leaders)
	default:
		// Tie with the honest tip: total probability gamma goes to the
		// pool branches, split evenly; one uniform draw decides both
		// questions. With one tied pool this is exactly
		// Bernoulli(gamma), the paper's tie rule — including consuming
		// no randomness at the degenerate gamma values.
		gamma := s.cfg.Gamma
		switch {
		case gamma <= 0:
			// The honest tip always wins the tie.
		case gamma >= 1:
			targetPool = s.pickLeader(leaders)
		default:
			if u := s.random.Float64(); u < gamma {
				targetPool = leaders[clampIndex(u/gamma, len(leaders))]
			}
		}
	}

	target := s.pubTip
	if targetPool >= 0 {
		target = s.pools[targetPool].publishedTip()
	}
	uncles := s.eligibleUncles(target, mining.HonestPool)
	id, err := s.extend(target, miner, uncles, true)
	if err != nil {
		return err
	}

	if targetPool >= 0 {
		// The new block extends a pool's published prefix: that prefix
		// becomes public history (a rebase). The pool keeps only its
		// blocks above the old published tip — which moves the pool's fork
		// point, so the consensus floor may advance even if every pool
		// then keeps.
		p := &s.pools[targetPool]
		p.root = target
		p.rootHeight += p.published
		n := copy(p.blocks, p.blocks[p.published:])
		p.blocks = p.blocks[:n]
		p.published = 0
		s.floorDirty = true
	}
	s.pubTip = id
	s.pubHeight = bestHeight + 1

	// Every pool's reaction (Algorithm 1 lines 10-20, or a variant), in
	// pool order with fresh frames.
	return s.reactOthers(-1)
}

// run executes the configured number of block events and returns the
// resulting tree state. The races still in flight when the run ends are
// excluded from settlement (the chain is settled at the consensus floor).
func (s *simulator) run() error {
	pop := s.cfg.Population
	for i := 0; i < s.cfg.Blocks; i++ {
		if s.ffwd && s.atRaceOrigin() {
			skipped, err := s.fastForward(s.cfg.Blocks - i)
			if err != nil {
				return err
			}
			i += skipped
			if i >= s.cfg.Blocks {
				return nil
			}
			// The stretch ended because the next producer is selfish:
			// run that event now, drawn conditionally on being selfish.
			s.recordState()
			if s.timing {
				s.advanceClock()
			}
			miner := pop.SampleSelfish(s.random)
			s.events[miner.Pool]++
			if err := s.poolEvent(int(miner.Pool)-1, miner.ID); err != nil {
				return err
			}
			if err := s.flushFloor(); err != nil {
				return err
			}
			if err := s.flushStream(); err != nil {
				return err
			}
			if s.aud != nil {
				if err := s.auditEvent(i); err != nil {
					return err
				}
			}
			continue
		}
		// Race-origin fast path: with every pool parked at the origin and
		// the tip childless, an honest find has a fully determined outcome
		// — extend the tip, every pool re-adopts to it (the compiled
		// tables say so), the floor rides up one, nothing forks. Play
		// exactly that, consuming exactly the draws the general path would
		// (the winner sample; no leader or gamma draw exists at the
		// origin), and skip the leader scan, the reaction loop, and the
		// floor recompute. A selfish find drops to the general path below.
		if s.originFast && len(s.forkChildren) == 0 && s.atRaceOrigin() {
			for pi := range s.pools {
				s.occ[pi][0]++ // recordState: every pool sits at (0, 0)
			}
			if s.timing {
				s.advanceClock()
			}
			miner := pop.Sample(s.random)
			s.events[miner.Pool]++
			if miner.Pool == mining.HonestPool {
				// The tip is childless at the origin, so the append is a
				// pure leaf extension: AppendLeaf mutates exactly as
				// extend would (no siblings, no uncles, no fork children),
				// and the window bookkeeping below mirrors extend's for a
				// block at height pubHeight+1. Fall back to the general
				// path if the childless assumption ever fails.
				id, leaf := s.tree.AppendLeaf(s.pubTip, miner.ID, s.clock)
				if leaf {
					s.published = append(s.published, true)
					s.inRecent = append(s.inRecent, true)
					s.recent = append(s.recent, windowBlock{id: id, height: s.pubHeight + 1})
					s.trimRecent(s.pubHeight - s.window)
				} else {
					var err error
					id, err = s.extend(s.pubTip, miner.ID, nil, true)
					if err != nil {
						return err
					}
				}
				s.pubTip = id
				s.pubHeight++
				for pi := range s.pools {
					p := &s.pools[pi]
					p.root = id
					p.rootHeight = s.pubHeight
				}
				// The floor rides the tip: every pool just re-adopted.
				if s.aud != nil {
					if err := s.aud.auditFloor(s, s.floor, id); err != nil {
						return err
					}
				}
				s.floor = id
			} else {
				if err := s.poolEvent(int(miner.Pool)-1, miner.ID); err != nil {
					return err
				}
				if err := s.flushFloor(); err != nil {
					return err
				}
			}
			if s.ctrl != nil {
				s.observeSettled()
			}
			if err := s.flushStream(); err != nil {
				return err
			}
			if s.aud != nil {
				if err := s.auditEvent(i); err != nil {
					return err
				}
			}
			continue
		}
		s.recordState()
		if s.timing {
			s.advanceClock()
		}
		miner := pop.Sample(s.random)
		s.events[miner.Pool]++
		var err error
		if miner.Pool != mining.HonestPool {
			err = s.poolEvent(int(miner.Pool)-1, miner.ID)
		} else {
			err = s.honestEvent(miner.ID)
		}
		if err != nil {
			return err
		}
		if err := s.flushFloor(); err != nil {
			return err
		}
		if s.ctrl != nil {
			s.observeSettled()
		}
		if err := s.flushStream(); err != nil {
			return err
		}
		if s.aud != nil {
			if err := s.auditEvent(i); err != nil {
				return err
			}
		}
	}
	return nil
}
