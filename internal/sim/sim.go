// Package sim implements the paper's event-driven selfish-mining simulator
// (Sec. V) on top of a real block tree.
//
// Block-creation events arrive one at a time; each event's producer is drawn
// from the miner population by hash power. Selfish miners act as one pool
// running Algorithm 1 (withhold, publish strategically, reference uncles);
// honest miners follow the protocol: mine on the longest public branch,
// break ties toward the pool's branch with probability gamma, and reference
// every eligible uncle they can see. Rewards are settled over the final
// tree, so the simulator validates the analytic model end to end: state
// occupancy, uncle distances, and revenue all emerge from the tree rather
// than from the model's formulas.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// genesisMiner is the reserved miner ID for the genesis block.
const genesisMiner chain.MinerID = 0

// maxReferenceWindow caps how far back the simulator scans for uncle
// candidates when the schedule has no depth limit. Races longer than this
// occur with probability below (alpha/beta)^64 < 1e-5 at alpha <= 0.45, far
// beneath simulation resolution.
const maxReferenceWindow = 64

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config describes one simulation.
type Config struct {
	// Population supplies miners and hash powers. Required.
	Population *mining.Population

	// Gamma is the honest tie-breaking parameter (Sec. IV-A).
	Gamma float64

	// Schedule is the reward schedule (zero value: Ethereum).
	Schedule rewards.Schedule

	// Blocks is the number of block-creation events to simulate.
	Blocks int

	// Seed makes the run reproducible.
	Seed uint64

	// MaxUnclesPerBlock caps uncle references per block. Zero means
	// unlimited (the paper's model); Ethereum uses 2.
	MaxUnclesPerBlock int

	// Strategy selects the pool's behavior. Nil means Algorithm1 (the
	// paper's strategy).
	Strategy Strategy

	// PoolOmitsUncleRefs stops the pool from referencing uncles in its
	// own blocks, isolating the nephew-income component of the attack.
	PoolOmitsUncleRefs bool

	// Parallelism bounds the worker goroutines RunMany fans independent
	// runs across. Zero means runtime.GOMAXPROCS(0); one forces
	// sequential execution. The setting never changes results: per-run
	// seeds are derived from Seed alone (see DeriveSeed) and the run
	// order of the returned Series is preserved.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Schedule.MaxDepth() == 0 {
		c.Schedule = rewards.Ethereum()
	}
	if c.Strategy == nil {
		c.Strategy = Algorithm1{}
	}
	return c
}

func (c Config) validate() error {
	if c.Population == nil {
		return fmt.Errorf("%w: population is required", ErrBadConfig)
	}
	if math.IsNaN(c.Gamma) || c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("%w: gamma %v out of [0,1]", ErrBadConfig, c.Gamma)
	}
	if c.Blocks <= 0 {
		return fmt.Errorf("%w: blocks %d must be positive", ErrBadConfig, c.Blocks)
	}
	if c.MaxUnclesPerBlock < 0 {
		return fmt.Errorf("%w: negative uncle limit", ErrBadConfig)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism", ErrBadConfig)
	}
	return nil
}

// simulator holds the evolving race state. The race bookkeeping mirrors
// Algorithm 1: base is the last consensus block; poolBlocks is the pool's
// private branch above base (the first publishedCount of them announced);
// honestBranch is the public branch honest miners are extending.
type simulator struct {
	cfg    Config
	random *rng.Source
	tree   *chain.Tree

	// published[id] reports whether honest miners can see the block.
	published []bool

	// recent is a sliding window of block IDs used as uncle candidates.
	recent []chain.BlockID

	base           chain.BlockID
	poolBlocks     []chain.BlockID
	publishedCount int
	honestBranch   []chain.BlockID

	occupancy map[core.State]int64
	window    int

	// Scratch buffers reused by eligibleUncles so the per-event hot path
	// stays allocation-free after warm-up. chainScratch maps window
	// heights to chain ancestors (indexed by height offset), refScratch
	// collects uncles those ancestors already reference, and
	// uncleScratch backs the returned candidate list (safe to reuse:
	// chain.Tree.Extend copies the uncle list it is given).
	chainScratch []chain.BlockID
	refScratch   []chain.BlockID
	uncleScratch []chain.BlockID
}

func newSimulator(cfg Config) *simulator {
	window := cfg.Schedule.MaxDepth()
	if window > maxReferenceWindow {
		window = maxReferenceWindow
	}
	tree := chain.NewTree(chain.Config{
		// The tree enforces the protocol's reference-depth rule so a
		// buggy strategy cannot slip an ineligible uncle through.
		MaxUncleDepth:     window,
		MaxUnclesPerBlock: cfg.MaxUnclesPerBlock,
		// One block per event: size the tree up front so it never
		// reallocates mid-run.
		BlocksHint: cfg.Blocks,
	}, genesisMiner)
	published := make([]bool, 1, cfg.Blocks+1)
	published[0] = true // genesis
	return &simulator{
		cfg:          cfg,
		random:       rng.New(cfg.Seed),
		tree:         tree,
		published:    published,
		base:         tree.Genesis(),
		occupancy:    make(map[core.State]int64),
		window:       window,
		chainScratch: make([]chain.BlockID, 0, window+2),
	}
}

// state returns the current (Ls, Lh) pair of Algorithm 1.
func (s *simulator) state() core.State {
	return core.State{S: len(s.poolBlocks), H: len(s.honestBranch)}
}

func (s *simulator) poolTip() chain.BlockID {
	if len(s.poolBlocks) == 0 {
		return s.base
	}
	return s.poolBlocks[len(s.poolBlocks)-1]
}

func (s *simulator) honestTip() chain.BlockID {
	if len(s.honestBranch) == 0 {
		return s.base
	}
	return s.honestBranch[len(s.honestBranch)-1]
}

func (s *simulator) publishedPoolTip() chain.BlockID {
	if s.publishedCount == 0 {
		return s.base
	}
	return s.poolBlocks[s.publishedCount-1]
}

// extend creates a block, records it in the candidate window, and returns
// its ID.
func (s *simulator) extend(parent chain.BlockID, miner chain.MinerID, uncles []chain.BlockID, visible bool) (chain.BlockID, error) {
	id, err := s.tree.Extend(parent, miner, uncles)
	if err != nil {
		return chain.NoBlock, fmt.Errorf("sim: extending chain: %w", err)
	}
	s.published = append(s.published, visible)
	s.recent = append(s.recent, id)
	// Trim the candidate window: drop blocks too old to ever be
	// referenced again. Compacting in place (rather than reslicing the
	// tail) keeps the backing array stable, so the window never forces a
	// reallocation once it has reached steady-state size.
	minHeight := s.tree.Height(id) - s.window - 1
	trim := 0
	for trim < len(s.recent) && s.tree.Height(s.recent[trim]) < minHeight {
		trim++
	}
	if trim > 0 {
		n := copy(s.recent, s.recent[trim:])
		s.recent = s.recent[:n]
	}
	return id, nil
}

// publish marks the first n pool blocks as visible to honest miners.
func (s *simulator) publish(n int) {
	for i := s.publishedCount; i < n && i < len(s.poolBlocks); i++ {
		s.published[s.poolBlocks[i]] = true
	}
	if n > s.publishedCount {
		s.publishedCount = n
	}
}

// reset commits a finished race: winner becomes the new consensus base.
func (s *simulator) reset(winner chain.BlockID) {
	s.base = winner
	s.poolBlocks = s.poolBlocks[:0]
	s.publishedCount = 0
	s.honestBranch = s.honestBranch[:0]
}

// eligibleUncles returns the uncle references a block mined on parent may
// include: visible blocks within the reference window whose parent lies on
// the new block's chain, that are not on that chain themselves, and that no
// chain ancestor already references. poolView additionally lets the pool see
// its own unpublished blocks (it never references them — they are on its
// chain — but visibility is per-miner).
//
// The returned slice aliases a scratch buffer owned by the simulator; it is
// only valid until the next eligibleUncles call. Callers hand it straight to
// the tree, which copies it.
func (s *simulator) eligibleUncles(parent chain.BlockID, poolView bool) []chain.BlockID {
	newHeight := s.tree.Height(parent) + 1
	lowest := newHeight - s.window
	if lowest < 1 {
		lowest = 1
	}
	if len(s.recent) == 0 {
		return nil
	}

	// Map each window height to the new block's chain ancestor, and
	// collect uncles already referenced by those ancestors. base is the
	// deepest height mapped (the parent of the lowest referenceable
	// uncle); chainScratch[h-base] holds the ancestor at height h.
	base := lowest - 1
	span := newHeight - base
	if cap(s.chainScratch) < span {
		s.chainScratch = make([]chain.BlockID, span)
	}
	chainAt := s.chainScratch[:span]
	for i := range chainAt {
		chainAt[i] = chain.NoBlock
	}
	referenced := s.refScratch[:0]
	cursor := parent
	for {
		b := s.tree.Block(cursor)
		chainAt[b.Height-base] = cursor
		referenced = append(referenced, b.Uncles...)
		if b.Height <= base || cursor == s.tree.Genesis() {
			break
		}
		cursor = b.Parent
	}
	s.refScratch = referenced

	out := s.uncleScratch[:0]
	for _, cand := range s.recent {
		b := s.tree.Block(cand)
		if b.Height < lowest || b.Height >= newHeight {
			continue
		}
		if !s.published[cand] && !poolView {
			continue // invisible to honest miners
		}
		if chainAt[b.Height-base] == cand {
			continue // on the new block's own chain
		}
		if chainAt[b.Height-1-base] != b.Parent {
			continue // not attached to the new block's chain
		}
		if containsBlock(referenced, cand) {
			continue
		}
		out = append(out, cand)
	}
	s.uncleScratch = out
	if limit := s.cfg.MaxUnclesPerBlock; limit > 0 && len(out) > limit {
		// Keep the most recent (closest, highest-reward) candidates,
		// as a profit-maximizing miner would.
		out = out[len(out)-limit:]
	}
	return out
}

// containsBlock reports whether id occurs in ids. The lists scanned here
// hold at most two uncles per window height, so a linear scan beats a map
// both in time and in allocations.
func containsBlock(ids []chain.BlockID, id chain.BlockID) bool {
	for _, other := range ids {
		if other == id {
			return true
		}
	}
	return false
}

// poolEvent handles a block mined by the selfish pool (Algorithm 1,
// lines 1-7, with the decision delegated to the configured strategy).
func (s *simulator) poolEvent(miner chain.MinerID) error {
	var uncles []chain.BlockID
	if !s.cfg.PoolOmitsUncleRefs {
		uncles = s.eligibleUncles(s.poolTip(), true)
	}
	id, err := s.extend(s.poolTip(), miner, uncles, false)
	if err != nil {
		return err
	}
	s.poolBlocks = append(s.poolBlocks, id)

	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	return s.applyReaction(s.cfg.Strategy.ReactToPool(ls, lh, s.publishedCount))
}

// applyReaction executes a strategy decision.
func (s *simulator) applyReaction(r Reaction) error {
	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	if err := validateReaction(r, ls, lh, s.publishedCount); err != nil {
		return fmt.Errorf("%s: at (%d,%d): %w", s.cfg.Strategy.Name(), ls, lh, err)
	}
	switch {
	case r.Adopt:
		s.reset(s.honestTip())
	case r.Commit:
		s.publish(ls)
		s.reset(s.poolTip())
	default:
		s.publish(r.PublishTo)
	}
	return nil
}

// honestEvent handles a block mined by an honest miner (Algorithm 1,
// lines 8-20, including the pool's reaction).
func (s *simulator) honestEvent(miner chain.MinerID) error {
	// Fork choice: longest public branch; gamma tie-break between the
	// pool's published prefix and the honest branch. (A strategy that
	// over-publishes makes the pool's public branch strictly longer, in
	// which case every honest miner follows it.)
	lh := len(s.honestBranch)
	target := s.honestTip()
	onPoolBranch := false
	switch {
	case s.publishedCount > lh:
		target = s.publishedPoolTip()
		onPoolBranch = true
	case s.publishedCount >= 1 && s.publishedCount == lh:
		if s.random.Bernoulli(s.cfg.Gamma) {
			target = s.publishedPoolTip()
			onPoolBranch = true
		}
	}

	uncles := s.eligibleUncles(target, false)
	id, err := s.extend(target, miner, uncles, true)
	if err != nil {
		return err
	}

	if onPoolBranch {
		// The new block extends the pool's published prefix: that
		// prefix becomes common history (a rebase). The pool keeps
		// only its blocks above the old published tip.
		s.base = s.publishedPoolTip()
		remaining := len(s.poolBlocks) - s.publishedCount
		copy(s.poolBlocks, s.poolBlocks[s.publishedCount:])
		s.poolBlocks = s.poolBlocks[:remaining]
		s.publishedCount = 0
		s.honestBranch = s.honestBranch[:0]
	}
	s.honestBranch = append(s.honestBranch, id)

	// The pool's reaction (Algorithm 1 lines 10-20, or a variant).
	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	return s.applyReaction(s.cfg.Strategy.ReactToHonest(ls, lh, s.publishedCount))
}

// run executes the configured number of block events and returns the
// resulting tree state. The unfinished final race is excluded from
// settlement (the chain is settled at the last consensus base).
func (s *simulator) run() error {
	for i := 0; i < s.cfg.Blocks; i++ {
		s.occupancy[s.state()]++
		miner := s.cfg.Population.Sample(s.random)
		var err error
		if miner.Selfish {
			err = s.poolEvent(miner.ID)
		} else {
			err = s.honestEvent(miner.ID)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
