// Package sim implements the paper's event-driven selfish-mining simulator
// (Sec. V) on top of a real block tree.
//
// Block-creation events arrive one at a time; each event's producer is drawn
// from the miner population by hash power. Selfish miners act as one pool
// running Algorithm 1 (withhold, publish strategically, reference uncles);
// honest miners follow the protocol: mine on the longest public branch,
// break ties toward the pool's branch with probability gamma, and reference
// every eligible uncle they can see. Rewards are settled over the final
// tree, so the simulator validates the analytic model end to end: state
// occupancy, uncle distances, and revenue all emerge from the tree rather
// than from the model's formulas.
package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// genesisMiner is the reserved miner ID for the genesis block.
const genesisMiner chain.MinerID = 0

// maxReferenceWindow caps how far back the simulator scans for uncle
// candidates when the schedule has no depth limit. Races longer than this
// occur with probability below (alpha/beta)^64 < 1e-5 at alpha <= 0.45, far
// beneath simulation resolution.
const maxReferenceWindow = 64

// occDim is the side length of the dense (Ls x Lh) occupancy grid. Branch
// lengths reach it only in races longer than the reference window, which
// the rare-overflow map absorbs; everything else is a single array
// increment per event instead of a map insertion.
const occDim = 64

// windowBlock is one entry of the uncle-candidate window: a block ID with
// its height denormalized next to it, so window maintenance stays within
// one cache-friendly array instead of chasing tree records.
type windowBlock struct {
	id     chain.BlockID
	height int
}

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config describes one simulation.
type Config struct {
	// Population supplies miners and hash powers. Required.
	Population *mining.Population

	// Gamma is the honest tie-breaking parameter (Sec. IV-A).
	Gamma float64

	// Schedule is the reward schedule (zero value: Ethereum).
	Schedule rewards.Schedule

	// Blocks is the number of block-creation events to simulate.
	Blocks int

	// Seed makes the run reproducible.
	Seed uint64

	// MaxUnclesPerBlock caps uncle references per block. Zero means
	// unlimited (the paper's model); Ethereum uses 2.
	MaxUnclesPerBlock int

	// Strategy selects the pool's behavior. Nil means Algorithm1 (the
	// paper's strategy).
	Strategy Strategy

	// PoolOmitsUncleRefs stops the pool from referencing uncles in its
	// own blocks, isolating the nephew-income component of the attack.
	PoolOmitsUncleRefs bool

	// Parallelism bounds the worker goroutines RunMany fans independent
	// runs across. Zero means runtime.GOMAXPROCS(0); one forces
	// sequential execution. The setting never changes results: per-run
	// seeds are derived from Seed alone (see DeriveSeed) and the run
	// order of the returned Series is preserved.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Schedule.MaxDepth() == 0 {
		c.Schedule = rewards.Ethereum()
	}
	if c.Strategy == nil {
		c.Strategy = Algorithm1{}
	}
	return c
}

func (c Config) validate() error {
	if c.Population == nil {
		return fmt.Errorf("%w: population is required", ErrBadConfig)
	}
	if math.IsNaN(c.Gamma) || c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("%w: gamma %v out of [0,1]", ErrBadConfig, c.Gamma)
	}
	if c.Blocks <= 0 {
		return fmt.Errorf("%w: blocks %d must be positive", ErrBadConfig, c.Blocks)
	}
	if c.MaxUnclesPerBlock < 0 {
		return fmt.Errorf("%w: negative uncle limit", ErrBadConfig)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism", ErrBadConfig)
	}
	return nil
}

// simulator holds the evolving race state. The race bookkeeping mirrors
// Algorithm 1: base is the last consensus block; poolBlocks is the pool's
// private branch above base (the first publishedCount of them announced);
// honestBranch is the public branch honest miners are extending.
//
// A zero simulator is reusable: init prepares it for a run and retains all
// storage from previous runs, so one simulator per worker amortizes the
// ~100k-block tree and scratch allocations across a whole batch.
type simulator struct {
	cfg    Config
	random *rng.Source
	tree   *chain.Tree

	// published[id] reports whether honest miners can see the block.
	published []bool

	// recent is a sliding window of blocks used as uncle candidates;
	// entries carry their height so trimming and filtering never touch
	// the tree. inRecent[id] tracks membership (blocks leave only by
	// trimming).
	recent   []windowBlock
	inRecent []bool

	// forkChildren lists the blocks in recent whose parent has at least
	// two children, sorted by ID (= creation order, the order recent
	// holds them). Only such blocks can ever be referenced as uncles: an
	// eligible uncle is off the referencing chain while its parent is on
	// it, so the parent has a second, on-chain child. eligibleUncles
	// scans this set — almost always empty or a handful — instead of the
	// whole candidate window, making the per-event uncle scan O(forks)
	// rather than O(window).
	forkChildren []windowBlock

	// referencedInWindow counts the forkChildren entries some block has
	// referenced. While it is zero, no candidate can be rejected by the
	// already-referenced rule, so the chain walk skips gathering
	// ancestor references entirely.
	referencedInWindow int

	base           chain.BlockID
	poolBlocks     []chain.BlockID
	publishedCount int
	honestBranch   []chain.BlockID

	// occ is the dense (Ls x Lh) occupancy grid, indexed Ls*occDim+Lh;
	// occOverflow absorbs the rare states beyond the grid (races longer
	// than the reference window) and is allocated only when needed.
	occ         []int64
	occOverflow map[core.State]int64
	window      int

	// Scratch buffers reused by eligibleUncles so the per-event hot path
	// stays allocation-free after warm-up. chainScratch maps window
	// heights to chain ancestors (indexed by height offset), refScratch
	// collects uncles those ancestors already reference, candScratch
	// holds filter survivors, and uncleScratch backs the returned
	// candidate list (safe to reuse: chain.Tree.Extend copies the uncle
	// list it is given).
	chainScratch []chain.BlockID
	refScratch   []chain.BlockID
	uncleScratch []chain.BlockID
	candScratch  []windowBlock
	purgeScratch []chain.BlockID
}

// init prepares the simulator for one run of cfg, reusing any storage left
// over from previous runs. cfg must already have defaults applied and be
// validated.
func (s *simulator) init(cfg Config) {
	window := cfg.Schedule.MaxDepth()
	if window > maxReferenceWindow {
		window = maxReferenceWindow
	}
	treeCfg := chain.Config{
		// The tree enforces the protocol's reference-depth rule so a
		// buggy strategy cannot slip an ineligible uncle through.
		MaxUncleDepth:     window,
		MaxUnclesPerBlock: cfg.MaxUnclesPerBlock,
		// One block per event: size the tree up front so it never
		// reallocates mid-run.
		BlocksHint: cfg.Blocks,
	}
	s.cfg = cfg
	s.window = window
	if s.tree == nil {
		s.tree = chain.NewTree(treeCfg, genesisMiner)
	} else {
		s.tree.Reset(treeCfg, genesisMiner)
	}
	if s.random == nil {
		s.random = rng.New(cfg.Seed)
	} else {
		s.random.Reseed(cfg.Seed)
	}
	if cap(s.published) < cfg.Blocks+1 {
		s.published = make([]bool, 1, cfg.Blocks+1)
		s.inRecent = make([]bool, 1, cfg.Blocks+1)
	} else {
		s.published = s.published[:1]
		s.inRecent = s.inRecent[:1]
	}
	s.published[0] = true // genesis
	s.inRecent[0] = false
	s.recent = s.recent[:0]
	s.forkChildren = s.forkChildren[:0]
	s.referencedInWindow = 0
	s.base = s.tree.Genesis()
	s.poolBlocks = s.poolBlocks[:0]
	s.publishedCount = 0
	s.honestBranch = s.honestBranch[:0]
	if s.occ == nil {
		s.occ = make([]int64, occDim*occDim)
	} else {
		clear(s.occ)
	}
	s.occOverflow = nil
	if cap(s.chainScratch) < window+2 {
		s.chainScratch = make([]chain.BlockID, 0, window+2)
	}
}

// recordState tallies the (Ls, Lh) state observed just before an event.
func (s *simulator) recordState() {
	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	if ls < occDim && lh < occDim {
		s.occ[ls*occDim+lh]++
		return
	}
	if s.occOverflow == nil {
		s.occOverflow = make(map[core.State]int64)
	}
	s.occOverflow[core.State{S: ls, H: lh}]++
}

// occupancyMap materializes the per-state event counts (the Result view).
func (s *simulator) occupancyMap() map[core.State]int64 {
	out := make(map[core.State]int64)
	for i, n := range s.occ {
		if n != 0 {
			out[core.State{S: i / occDim, H: i % occDim}] = n
		}
	}
	for state, n := range s.occOverflow {
		out[state] = n
	}
	return out
}

// state returns the current (Ls, Lh) pair of Algorithm 1.
func (s *simulator) state() core.State {
	return core.State{S: len(s.poolBlocks), H: len(s.honestBranch)}
}

func (s *simulator) poolTip() chain.BlockID {
	if len(s.poolBlocks) == 0 {
		return s.base
	}
	return s.poolBlocks[len(s.poolBlocks)-1]
}

func (s *simulator) honestTip() chain.BlockID {
	if len(s.honestBranch) == 0 {
		return s.base
	}
	return s.honestBranch[len(s.honestBranch)-1]
}

func (s *simulator) publishedPoolTip() chain.BlockID {
	if s.publishedCount == 0 {
		return s.base
	}
	return s.poolBlocks[s.publishedCount-1]
}

// addForkChild inserts b into the ID-sorted fork-child set. Blocks enter at
// most once: newborns on arrival, a previously only child exactly at its
// parent's one-to-two transition.
func (s *simulator) addForkChild(b windowBlock) {
	fc := append(s.forkChildren, b)
	i := len(fc) - 1
	for i > 0 && fc[i-1].id > b.id {
		fc[i] = fc[i-1]
		i--
	}
	fc[i] = b
	s.forkChildren = fc
}

// removeForkChild drops b from the fork-child set, reporting whether it was
// present, and keeps the referenced-candidate count in step.
func (s *simulator) removeForkChild(b chain.BlockID) bool {
	for i, x := range s.forkChildren {
		if x.id == b {
			s.forkChildren = append(s.forkChildren[:i], s.forkChildren[i+1:]...)
			if s.tree.ReferencedBy(b) != chain.NoBlock {
				s.referencedInWindow--
			}
			return true
		}
	}
	return false
}

// extend creates a block, records it in the candidate window, and returns
// its ID.
func (s *simulator) extend(parent chain.BlockID, miner chain.MinerID, uncles []chain.BlockID, visible bool) (chain.BlockID, error) {
	// Fork-child bookkeeping feeds eligibleUncles: the new block becomes
	// a fork child if its parent already had a child, and a previously
	// only child becomes one alongside it (unless the window already
	// trimmed it — a trimmed block can never be referenced again).
	firstSibling := s.tree.FirstChildOf(parent)
	// Count first-time references among the new block's uncles before the
	// tree overwrites their referenced-by links. Every referenced uncle
	// is necessarily a current fork child (it just passed eligibility).
	for _, u := range uncles {
		if s.tree.ReferencedBy(u) == chain.NoBlock {
			s.referencedInWindow++
		}
	}
	id, err := s.tree.Extend(parent, miner, uncles)
	if err != nil {
		// Roll the count back: the tree rejected the block.
		for _, u := range uncles {
			if s.tree.ReferencedBy(u) == chain.NoBlock {
				s.referencedInWindow--
			}
		}
		return chain.NoBlock, fmt.Errorf("sim: extending chain: %w", err)
	}
	height := s.tree.HeightOf(id)
	if firstSibling != chain.NoBlock {
		if s.tree.NextSiblingOf(firstSibling) == id && s.inRecent[firstSibling] {
			// Siblings share a height, so the denormalized height
			// of the promoted first child equals the newborn's.
			s.addForkChild(windowBlock{id: firstSibling, height: height})
		}
		// The newborn has the largest ID: appending stays sorted.
		s.forkChildren = append(s.forkChildren, windowBlock{id: id, height: height})
	}
	s.published = append(s.published, visible)
	s.inRecent = append(s.inRecent, true)
	s.recent = append(s.recent, windowBlock{id: id, height: height})
	// Trim the candidate window: drop blocks too old to ever be
	// referenced again. Compacting in place (rather than reslicing the
	// tail) keeps the backing array stable, so the window never forces a
	// reallocation once it has reached steady-state size.
	minHeight := height - s.window - 1
	trim := 0
	for trim < len(s.recent) && s.recent[trim].height < minHeight {
		old := s.recent[trim].id
		s.inRecent[old] = false
		// Scanning the tiny fork-child set directly is cheaper than
		// asking the tree whether old is a fork child first.
		s.removeForkChild(old)
		trim++
	}
	if trim > 0 {
		n := copy(s.recent, s.recent[trim:])
		s.recent = s.recent[:n]
	}
	return id, nil
}

// publish marks the first n pool blocks as visible to honest miners.
func (s *simulator) publish(n int) {
	for i := s.publishedCount; i < n && i < len(s.poolBlocks); i++ {
		s.published[s.poolBlocks[i]] = true
	}
	if n > s.publishedCount {
		s.publishedCount = n
	}
}

// reset commits a finished race: winner becomes the new consensus base.
func (s *simulator) reset(winner chain.BlockID) {
	s.base = winner
	s.poolBlocks = s.poolBlocks[:0]
	s.publishedCount = 0
	s.honestBranch = s.honestBranch[:0]
	if len(s.forkChildren) > 0 {
		s.purgeForkChildren(winner)
	}
}

// purgeForkChildren drops candidates a finished race made permanently
// ineligible. Every future block descends from winner, so a candidate can
// be discarded for good when the settled chain through winner decides its
// fate: it is referenced by a block on that chain (always rejected by the
// already-referenced rule), it is on that chain itself, or its parent is
// off that chain (never attachable again). Purging here keeps the
// fork-child set down to genuine open candidates, so eligibleUncles'
// fast path fires instead of re-rejecting dead candidates every event
// until the window trims them.
func (s *simulator) purgeForkChildren(winner chain.BlockID) {
	t := s.tree
	winnerHeight := t.HeightOf(winner)
	// One walk down winner's chain covers every check below; it spans
	// from the lowest candidate's parent height (clamped to winner) up
	// to winner.
	base := winnerHeight
	for _, cand := range s.forkChildren {
		if cand.height-1 < base {
			base = cand.height - 1
		}
	}
	if base < 0 {
		base = 0
	}
	span := winnerHeight - base + 1
	if cap(s.purgeScratch) < span {
		s.purgeScratch = make([]chain.BlockID, span)
	}
	onChain := s.purgeScratch[:span]
	for i := range onChain {
		onChain[i] = chain.NoBlock
	}
	cursor := winner
	for {
		up, h := t.ParentAndHeight(cursor)
		onChain[h-base] = cursor
		if h <= base || cursor == t.Genesis() {
			break
		}
		cursor = up
	}
	isOn := func(b chain.BlockID, h int) bool {
		return h >= base && h <= winnerHeight && onChain[h-base] == b
	}

	kept := s.forkChildren[:0]
	for _, cand := range s.forkChildren {
		c := cand.id
		referencer := t.ReferencedBy(c)
		remove := false
		switch {
		case referencer != chain.NoBlock && isOn(referencer, t.HeightOf(referencer)):
			remove = true // referenced on the consensus chain
		case isOn(c, cand.height):
			remove = true // on the consensus chain itself
		case !isOn(t.ParentOf(c), cand.height-1):
			remove = true // parent off every future chain
		}
		if remove {
			if referencer != chain.NoBlock {
				s.referencedInWindow--
			}
			continue
		}
		kept = append(kept, cand)
	}
	s.forkChildren = kept
}

// eligibleUncles returns the uncle references a block mined on parent may
// include: visible blocks within the reference window whose parent lies on
// the new block's chain, that are not on that chain themselves, and that no
// chain ancestor already references. poolView additionally lets the pool see
// its own unpublished blocks (it never references them — they are on its
// chain — but visibility is per-miner).
//
// The returned slice aliases a scratch buffer owned by the simulator; it is
// only valid until the next eligibleUncles call. Callers hand it straight to
// the tree, which copies it.
func (s *simulator) eligibleUncles(parent chain.BlockID, poolView bool) []chain.BlockID {
	// Fast path: an eligible uncle is off the new block's chain while
	// its parent is on it, so its parent has a second child — only the
	// incrementally maintained fork-child set needs scanning, and it is
	// empty in long honest stretches.
	if len(s.forkChildren) == 0 {
		return nil
	}
	tree := s.tree
	newHeight := tree.HeightOf(parent) + 1
	lowest := newHeight - s.window
	if lowest < 1 {
		lowest = 1
	}

	// Cheap per-candidate filters first (height window, visibility); the
	// chain walk below is only paid when something survives them, and
	// only down to the lowest surviving height.
	cands := s.candScratch[:0]
	minH := newHeight
	for _, cand := range s.forkChildren {
		if cand.height < lowest || cand.height >= newHeight {
			continue
		}
		if !s.published[cand.id] && !poolView {
			continue // invisible to honest miners
		}
		if cand.height < minH {
			minH = cand.height
		}
		cands = append(cands, cand)
	}
	s.candScratch = cands
	if len(cands) == 0 {
		return nil
	}
	// Only a referenced-somewhere candidate can be rejected by the
	// already-referenced rule; while the window holds none, the walk
	// skips gathering ancestor references.
	needRefs := s.referencedInWindow > 0

	// Map each height from the lowest surviving candidate up to the new
	// block's to its chain ancestor, and collect uncles those ancestors
	// already reference. base is the deepest height mapped (the parent
	// height of the lowest candidate); chainScratch[h-base] holds the
	// ancestor at height h. Ancestors below base only reference uncles
	// deeper than any candidate, so the shortened walk loses nothing.
	base := minH - 1
	span := newHeight - base
	if cap(s.chainScratch) < span {
		s.chainScratch = make([]chain.BlockID, span)
	}
	chainAt := s.chainScratch[:span]
	for i := range chainAt {
		chainAt[i] = chain.NoBlock
	}
	referenced := s.refScratch[:0]
	cursor := parent
	if needRefs {
		for {
			up, h, uncles := tree.BlockInfo(cursor)
			chainAt[h-base] = cursor
			referenced = append(referenced, uncles...)
			if h <= base || cursor == tree.Genesis() {
				break
			}
			cursor = up
		}
	} else {
		for {
			up, h := tree.ParentAndHeight(cursor)
			chainAt[h-base] = cursor
			if h <= base || cursor == tree.Genesis() {
				break
			}
			cursor = up
		}
	}
	s.refScratch = referenced

	// Full eligibility on the survivors. cands is sorted by ID, i.e.
	// creation order — the order the candidate window used to yield.
	out := s.uncleScratch[:0]
	for _, cand := range cands {
		if chainAt[cand.height-base] == cand.id {
			continue // on the new block's own chain
		}
		if chainAt[cand.height-1-base] != tree.ParentOf(cand.id) {
			continue // not attached to the new block's chain
		}
		if containsBlock(referenced, cand.id) {
			continue
		}
		out = append(out, cand.id)
	}
	s.uncleScratch = out
	if limit := s.cfg.MaxUnclesPerBlock; limit > 0 && len(out) > limit {
		// Keep the most recent (closest, highest-reward) candidates,
		// as a profit-maximizing miner would.
		out = out[len(out)-limit:]
	}
	return out
}

// containsBlock reports whether id occurs in ids. The lists scanned here
// hold at most two uncles per window height, so a linear scan beats a map
// both in time and in allocations.
func containsBlock(ids []chain.BlockID, id chain.BlockID) bool {
	for _, other := range ids {
		if other == id {
			return true
		}
	}
	return false
}

// poolEvent handles a block mined by the selfish pool (Algorithm 1,
// lines 1-7, with the decision delegated to the configured strategy).
func (s *simulator) poolEvent(miner chain.MinerID) error {
	var uncles []chain.BlockID
	if !s.cfg.PoolOmitsUncleRefs {
		uncles = s.eligibleUncles(s.poolTip(), true)
	}
	id, err := s.extend(s.poolTip(), miner, uncles, false)
	if err != nil {
		return err
	}
	s.poolBlocks = append(s.poolBlocks, id)

	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	return s.applyReaction(s.cfg.Strategy.ReactToPool(ls, lh, s.publishedCount))
}

// applyReaction executes a strategy decision.
func (s *simulator) applyReaction(r Reaction) error {
	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	if err := validateReaction(r, ls, lh, s.publishedCount); err != nil {
		return fmt.Errorf("%s: at (%d,%d): %w", s.cfg.Strategy.Name(), ls, lh, err)
	}
	switch {
	case r.Adopt:
		s.reset(s.honestTip())
	case r.Commit:
		s.publish(ls)
		s.reset(s.poolTip())
	default:
		s.publish(r.PublishTo)
	}
	return nil
}

// honestEvent handles a block mined by an honest miner (Algorithm 1,
// lines 8-20, including the pool's reaction).
func (s *simulator) honestEvent(miner chain.MinerID) error {
	// Fork choice: longest public branch; gamma tie-break between the
	// pool's published prefix and the honest branch. (A strategy that
	// over-publishes makes the pool's public branch strictly longer, in
	// which case every honest miner follows it.)
	lh := len(s.honestBranch)
	target := s.honestTip()
	onPoolBranch := false
	switch {
	case s.publishedCount > lh:
		target = s.publishedPoolTip()
		onPoolBranch = true
	case s.publishedCount >= 1 && s.publishedCount == lh:
		if s.random.Bernoulli(s.cfg.Gamma) {
			target = s.publishedPoolTip()
			onPoolBranch = true
		}
	}

	uncles := s.eligibleUncles(target, false)
	id, err := s.extend(target, miner, uncles, true)
	if err != nil {
		return err
	}

	if onPoolBranch {
		// The new block extends the pool's published prefix: that
		// prefix becomes common history (a rebase). The pool keeps
		// only its blocks above the old published tip.
		s.base = s.publishedPoolTip()
		remaining := len(s.poolBlocks) - s.publishedCount
		copy(s.poolBlocks, s.poolBlocks[s.publishedCount:])
		s.poolBlocks = s.poolBlocks[:remaining]
		s.publishedCount = 0
		s.honestBranch = s.honestBranch[:0]
	}
	s.honestBranch = append(s.honestBranch, id)

	// The pool's reaction (Algorithm 1 lines 10-20, or a variant).
	ls, lh := len(s.poolBlocks), len(s.honestBranch)
	return s.applyReaction(s.cfg.Strategy.ReactToHonest(ls, lh, s.publishedCount))
}

// run executes the configured number of block events and returns the
// resulting tree state. The unfinished final race is excluded from
// settlement (the chain is settled at the last consensus base).
func (s *simulator) run() error {
	for i := 0; i < s.cfg.Blocks; i++ {
		s.recordState()
		miner := s.cfg.Population.Sample(s.random)
		var err error
		if miner.Selfish {
			err = s.poolEvent(miner.ID)
		} else {
			err = s.honestEvent(miner.ID)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
