package sim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// resultSchemas pins the exported field set of Result — recursively, so a
// field added to an embedded struct (Window, chain.Reward, stats.Counter)
// trips it too — against ResultSchemaVersion. Changing Result without
// bumping the version fails TestResultSchemaPinned; bumping the version
// without recording the new shape here fails it the other way. Together
// with the version stamp in the row stores' headers, this makes "same
// schema version" mean "bit-for-bit the same row layout".
var resultSchemas = map[int]string{
	1: "sim.Result{Alpha:float64;Blocks:int;ByPool:[]chain.Reward{Nephew:float64;Static:float64;Uncle:float64};" +
		"Early:sim.Window{ByPool:[]chain.Reward{Nephew:float64;Static:float64;Uncle:float64};End:float64;Regular:int;Start:float64;Uncles:int};" +
		"Elapsed:float64;EventsByPool:[]int64;FinalDifficulty:float64;" +
		"Honest:chain.Reward{Nephew:float64;Static:float64;Uncle:float64};HonestUncleDistances:stats.Counter{};InitialDifficulty:float64;" +
		"MinerRewards:[]chain.Reward{Nephew:float64;Static:float64;Uncle:float64};MinerSeen:[]bool;Occupancy:map[core.State{H:int;S:int}]int64;" +
		"OccupancyByPool:[]map[core.State{H:int;S:int}]int64;Pool:chain.Reward{Nephew:float64;Static:float64;Uncle:float64};PoolUncleDistances:stats.Counter{};" +
		"RegularCount:int;Retargets:int;SettledTime:float64;StaleCount:int;" +
		"Steady:sim.Window{ByPool:[]chain.Reward{Nephew:float64;Static:float64;Uncle:float64};End:float64;Regular:int;Start:float64;Uncles:int};UncleCount:int}",
}

// describeType renders a type's exported structure canonically: struct
// fields sorted by name and every struct expanded in place (a recursive
// type would collapse to {...}, though no row type is recursive), so the
// description is finite and stable.
func describeType(t reflect.Type, seen map[reflect.Type]bool) string {
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Array:
		prefix := "[]"
		if t.Kind() == reflect.Ptr {
			prefix = "*"
		}
		return prefix + describeType(t.Elem(), seen)
	case reflect.Map:
		return fmt.Sprintf("map[%s]%s", describeType(t.Key(), seen), describeType(t.Elem(), seen))
	case reflect.Struct:
		name := t.String()
		if seen[t] {
			return name + "{...}"
		}
		seen[t] = true
		var fields []string
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fields = append(fields, f.Name+":"+describeType(f.Type, seen))
		}
		delete(seen, t)
		sort.Strings(fields)
		return name + "{" + strings.Join(fields, ";") + "}"
	default:
		return t.String()
	}
}

func TestResultSchemaPinned(t *testing.T) {
	want, ok := resultSchemas[ResultSchemaVersion]
	if !ok {
		t.Fatalf("ResultSchemaVersion = %d has no recorded shape; add it to resultSchemas", ResultSchemaVersion)
	}
	got := describeType(reflect.TypeOf(Result{}), make(map[reflect.Type]bool))
	if got != want {
		t.Errorf("Result's shape changed without a schema bump.\nBump sim.ResultSchemaVersion and record the new shape in resultSchemas.\ngot:  %s\nwant: %s", got, want)
	}
}
