package sim

import (
	"errors"
	"fmt"
)

// The paper's conclusion leaves "the design of new mining strategies" as
// future work and cites stubborn mining (Nayak et al.) as the natural
// direction. This file generalizes the pool's behavior into a Strategy so
// variants can be simulated on the same substrate: the default is exactly
// Algorithm 1; the variants below explore the neighboring design space.

// Reaction is the pool's decision at one of its two decision points. The
// zero value means "keep mining" (no publication, no reset).
type Reaction struct {
	// PublishTo publishes the pool's private blocks up to this count
	// (ignored when not above the already-published count).
	PublishTo int

	// Commit publishes the entire private branch and declares it the new
	// consensus. Only legal when the private branch is strictly longer
	// than the public one.
	Commit bool

	// Adopt abandons the private branch and accepts the public one.
	Adopt bool
}

// Strategy decides one pool's reactions. Each pool in a K-pool race runs
// its own Strategy instance and is consulted only on its own race frame:
// ls is its private branch length, lh the public chain's length over the
// pool's fork point, and published its announced prefix. Implementations
// must be deterministic functions of that frame: the simulator owns all
// randomness.
type Strategy interface {
	// Name identifies the strategy in results.
	Name() string

	// ReactToPool is consulted after the pool mines a block, with the
	// updated private length ls.
	ReactToPool(ls, lh, published int) Reaction

	// ReactToHonest is consulted whenever the public chain advances
	// without the pool's doing — an honest block (after any rebase onto
	// the pool's published prefix), or a rival pool committing a longer
	// branch — with the updated public length lh.
	ReactToHonest(ls, lh, published int) Reaction
}

// ErrBadReaction reports a strategy decision that violates the protocol
// invariants (committing without a longer branch, publishing blocks that do
// not exist, or un-publishing already-announced blocks).
var ErrBadReaction = errors.New("sim: strategy returned an invalid reaction")

// validateReaction checks a strategy's decision against the race state.
func validateReaction(r Reaction, ls, lh, published int) error {
	if r.Commit && r.Adopt {
		return fmt.Errorf("%w: both commit and adopt", ErrBadReaction)
	}
	if r.Commit && ls <= lh {
		return fmt.Errorf("%w: commit with ls=%d <= lh=%d", ErrBadReaction, ls, lh)
	}
	if r.PublishTo > ls {
		return fmt.Errorf("%w: publish %d of %d blocks", ErrBadReaction, r.PublishTo, ls)
	}
	// PublishTo == 0 is the zero-value no-op; any other value below the
	// announced count would retract blocks honest miners already saw.
	if r.PublishTo != 0 && r.PublishTo < published {
		return fmt.Errorf("%w: un-publish to %d of %d announced blocks",
			ErrBadReaction, r.PublishTo, published)
	}
	return nil
}

// Algorithm1 is the paper's selfish-mining strategy (Sec. III-C).
type Algorithm1 struct{}

var _ Strategy = Algorithm1{}

// Name implements Strategy.
func (Algorithm1) Name() string { return "algorithm1" }

// ReactToPool implements Strategy: commit when winning a tie race (the
// (Ls, Lh) = (2, 1) rule of lines 3-5, generalized to any tie the pool
// breaks with a fresh block).
func (Algorithm1) ReactToPool(ls, lh, published int) Reaction {
	if lh >= 1 && ls == lh+1 && published == lh {
		return Reaction{Commit: true}
	}
	return Reaction{}
}

// ReactToHonest implements Strategy (lines 10-20).
func (Algorithm1) ReactToHonest(ls, lh, published int) Reaction {
	switch {
	case ls < lh:
		return Reaction{Adopt: true}
	case ls == lh:
		return Reaction{PublishTo: ls} // race the tie
	case ls == lh+1:
		return Reaction{Commit: true} // take the sure win
	default:
		return Reaction{PublishTo: published + 1}
	}
}

// HonestStrategy makes the pool follow the protocol: every block is
// published and committed immediately. It is the control arm — its revenue
// must equal alpha.
type HonestStrategy struct{}

var _ Strategy = HonestStrategy{}

// Name implements Strategy.
func (HonestStrategy) Name() string { return "honest" }

// ReactToPool implements Strategy.
func (HonestStrategy) ReactToPool(ls, lh, published int) Reaction {
	return Reaction{Commit: true}
}

// ReactToHonest implements Strategy: with no private branch the pool always
// adopts.
func (HonestStrategy) ReactToHonest(ls, lh, published int) Reaction {
	return Reaction{Adopt: true}
}

// EagerPublish commits its branch as soon as its lead reaches Lead,
// trading the long-race upside of Algorithm 1 for guaranteed wins. Lead
// must be at least 2; Lead = 2 commits at the first safe opportunity.
type EagerPublish struct {
	// Lead is the commit trigger.
	Lead int
}

var _ Strategy = EagerPublish{}

// Name implements Strategy.
func (s EagerPublish) Name() string { return fmt.Sprintf("eager-publish-%d", s.Lead) }

// ReactToPool implements Strategy.
func (s EagerPublish) ReactToPool(ls, lh, published int) Reaction {
	if lh >= 1 && ls == lh+1 && published == lh {
		return Reaction{Commit: true} // tie won
	}
	if ls-lh >= s.Lead {
		return Reaction{Commit: true}
	}
	return Reaction{}
}

// ReactToHonest implements Strategy: identical to Algorithm 1 (the eager
// commits happen on the pool's own blocks).
func (s EagerPublish) ReactToHonest(ls, lh, published int) Reaction {
	return Algorithm1{}.ReactToHonest(ls, lh, published)
}

// TrailStubborn keeps one block private where Algorithm 1 would take the
// sure win (Ls = Lh + 1 after an honest block), racing on for a bigger
// payoff — a trail-stubborn variant in the sense of Nayak et al.
type TrailStubborn struct{}

var _ Strategy = TrailStubborn{}

// Name implements Strategy.
func (TrailStubborn) Name() string { return "trail-stubborn" }

// ReactToPool implements Strategy: same tie-winning rule as Algorithm 1.
func (TrailStubborn) ReactToPool(ls, lh, published int) Reaction {
	return Algorithm1{}.ReactToPool(ls, lh, published)
}

// ReactToHonest implements Strategy: at Ls = Lh + 1 publish only up to the
// public length, keeping the last block private and the race alive.
func (TrailStubborn) ReactToHonest(ls, lh, published int) Reaction {
	if ls == lh+1 && lh >= 1 {
		return Reaction{PublishTo: lh}
	}
	return Algorithm1{}.ReactToHonest(ls, lh, published)
}
