package sim

import (
	"errors"
	"fmt"
)

// The paper's conclusion leaves "the design of new mining strategies" as
// future work and cites stubborn mining (Nayak et al.) as the natural
// direction. This file generalizes the pool's behavior into a Strategy so
// variants can be simulated on the same substrate: the default is exactly
// Algorithm 1; the parametric Stubborn family and the EagerPublish variant
// below explore the neighboring design space, and spec.go names every
// point of it ("stubborn:lead=1,trail=2") through a registry.

// Reaction is the pool's decision at one of its two decision points. The
// zero value means "keep mining" (no publication, no reset).
type Reaction struct {
	// PublishTo publishes the pool's private blocks up to this count
	// (ignored when not above the already-published count).
	PublishTo int

	// Commit publishes the entire private branch and declares it the new
	// consensus. Only legal when the private branch is strictly longer
	// than the public one.
	Commit bool

	// Adopt abandons the private branch and accepts the public one.
	Adopt bool
}

// Strategy decides one pool's reactions. Each pool in a K-pool race runs
// its own Strategy instance and is consulted only on its own race frame:
// ls is its private branch length, lh the public chain's length over the
// pool's fork point, and published its announced prefix. Implementations
// must be deterministic functions of that frame: the simulator owns all
// randomness.
type Strategy interface {
	// Name identifies the strategy in results.
	Name() string

	// ReactToPool is consulted after the pool mines a block, with the
	// updated private length ls.
	ReactToPool(ls, lh, published int) Reaction

	// ReactToHonest is consulted whenever the public chain advances
	// without the pool's doing — an honest block (after any rebase onto
	// the pool's published prefix), or a rival pool committing a longer
	// branch — with the updated public length lh.
	ReactToHonest(ls, lh, published int) Reaction
}

// ErrBadReaction reports a strategy decision that violates the protocol
// invariants (committing without a longer branch, publishing blocks that do
// not exist, or un-publishing already-announced blocks).
var ErrBadReaction = errors.New("sim: strategy returned an invalid reaction")

// reactionAllowed reports whether a strategy's decision is legal at the
// given race state: the allocation-free twin of validateReaction, used by
// decision-table compilation, which validates every frame of the window up
// front and must not build a quarter-million error values doing so.
// FuzzValidateReaction pins the two against each other.
func reactionAllowed(r Reaction, ls, lh, published int) bool {
	if r.Commit && (r.Adopt || ls <= lh) {
		return false
	}
	if r.PublishTo > ls {
		return false
	}
	return r.PublishTo == 0 || r.PublishTo >= published
}

// validateReaction checks a strategy's decision against the race state.
func validateReaction(r Reaction, ls, lh, published int) error {
	if r.Commit && r.Adopt {
		return fmt.Errorf("%w: both commit and adopt", ErrBadReaction)
	}
	if r.Commit && ls <= lh {
		return fmt.Errorf("%w: commit with ls=%d <= lh=%d", ErrBadReaction, ls, lh)
	}
	if r.PublishTo > ls {
		return fmt.Errorf("%w: publish %d of %d blocks", ErrBadReaction, r.PublishTo, ls)
	}
	// PublishTo == 0 is the zero-value no-op; any other value below the
	// announced count would retract blocks honest miners already saw.
	if r.PublishTo != 0 && r.PublishTo < published {
		return fmt.Errorf("%w: un-publish to %d of %d announced blocks",
			ErrBadReaction, r.PublishTo, published)
	}
	return nil
}

// Algorithm1 is the paper's selfish-mining strategy (Sec. III-C).
type Algorithm1 struct{}

var _ Strategy = Algorithm1{}

// Name implements Strategy.
func (Algorithm1) Name() string { return "algorithm1" }

// ReactToPool implements Strategy: commit when winning a tie race (the
// (Ls, Lh) = (2, 1) rule of lines 3-5, generalized to any tie the pool
// breaks with a fresh block).
func (Algorithm1) ReactToPool(ls, lh, published int) Reaction {
	if lh >= 1 && ls == lh+1 && published == lh {
		return Reaction{Commit: true}
	}
	return Reaction{}
}

// ReactToHonest implements Strategy (lines 10-20).
func (Algorithm1) ReactToHonest(ls, lh, published int) Reaction {
	switch {
	case ls < lh:
		return Reaction{Adopt: true}
	case ls == lh:
		return Reaction{PublishTo: ls} // race the tie
	case ls == lh+1:
		return Reaction{Commit: true} // take the sure win
	default:
		return Reaction{PublishTo: published + 1}
	}
}

// HonestStrategy makes the pool follow the protocol: every block is
// published and committed immediately. It is the control arm — its revenue
// must equal alpha.
type HonestStrategy struct{}

var _ Strategy = HonestStrategy{}

// Name implements Strategy.
func (HonestStrategy) Name() string { return "honest" }

// ReactToPool implements Strategy.
func (HonestStrategy) ReactToPool(ls, lh, published int) Reaction {
	return Reaction{Commit: true}
}

// ReactToHonest implements Strategy: with no private branch the pool always
// adopts.
func (HonestStrategy) ReactToHonest(ls, lh, published int) Reaction {
	return Reaction{Adopt: true}
}

// EagerPublish commits its branch as soon as its lead reaches Lead,
// trading the long-race upside of Algorithm 1 for guaranteed wins. Lead
// must be at least 2; Lead = 2 commits at the first safe opportunity.
type EagerPublish struct {
	// Lead is the commit trigger.
	Lead int
}

var _ Strategy = EagerPublish{}

// Name implements Strategy: the canonical spec string, parseable by
// ParseStrategy.
func (s EagerPublish) Name() string { return fmt.Sprintf("eager-publish:lead=%d", s.Lead) }

// ReactToPool implements Strategy.
func (s EagerPublish) ReactToPool(ls, lh, published int) Reaction {
	if lh >= 1 && ls == lh+1 && published == lh {
		return Reaction{Commit: true} // tie won
	}
	if ls-lh >= s.Lead {
		return Reaction{Commit: true}
	}
	return Reaction{}
}

// ReactToHonest implements Strategy: identical to Algorithm 1 (the eager
// commits happen on the pool's own blocks).
func (s EagerPublish) ReactToHonest(ls, lh, published int) Reaction {
	return Algorithm1{}.ReactToHonest(ls, lh, published)
}

// Stubborn is the parametric stubborn-mining family (Nayak et al., "Stubborn
// Mining", EuroS&P 2016), generalizing Algorithm 1 along three independent
// axes. The zero value makes exactly Algorithm 1's decisions in every state
// Algorithm 1 can reach.
//
//   - Lead (lead-stubborn): at Ls = Lh + 1 after the public chain advances,
//     Algorithm 1 commits — the sure win. A lead-stubborn pool publishes
//     only up to Lh, keeping its newest block private and the race alive
//     for a bigger payoff.
//   - EqualFork (equal-fork-stubborn): when the pool mines the tie-breaking
//     block of a level race (Ls = Lh + 1 with published = Lh), Algorithm 1
//     commits; an equal-fork-stubborn pool keeps the fresh block private
//     and keeps racing.
//   - Trail (trail-stubborn depth): when the pool falls behind a nonempty
//     private branch, Algorithm 1 adopts immediately; a trail-stubborn pool
//     keeps mining while Lh - Ls <= Trail, adopting only when it falls
//     further behind — and levels the race by publishing if it catches
//     back up.
//
// The registry name for the family is "stubborn" (spec parameters lead,
// fork, trail); the legacy name "trail-stubborn" maps to stubborn:lead=1,
// the lead-stubborn point this codebase historically shipped under that
// name.
type Stubborn struct {
	// Lead declines the sure win at Ls = Lh + 1, racing on instead.
	Lead bool

	// EqualFork keeps the tie-breaking block private instead of
	// committing it.
	EqualFork bool

	// Trail is how many blocks behind the pool tolerates before
	// abandoning its private branch.
	Trail int
}

var _ Strategy = Stubborn{}

// Name implements Strategy: the canonical spec string ("stubborn" with the
// non-default parameters in sorted key order), parseable by ParseStrategy.
func (s Stubborn) Name() string {
	spec := StrategySpec{Name: "stubborn"}
	if s.Lead || s.EqualFork || s.Trail != 0 {
		spec.Params = make(map[string]int)
		if s.EqualFork {
			spec.Params["fork"] = 1
		}
		if s.Lead {
			spec.Params["lead"] = 1
		}
		if s.Trail != 0 {
			spec.Params["trail"] = s.Trail
		}
	}
	return spec.String()
}

// ReactToPool implements Strategy. The tie-win rule is Algorithm 1's unless
// equal-fork-stubbornness withholds the fresh block; the catch-up rule
// (publish a level race after trailing) only triggers on states trail-
// stubbornness makes reachable.
func (s Stubborn) ReactToPool(ls, lh, published int) Reaction {
	if lh >= 1 && ls == lh+1 && published == lh {
		if s.EqualFork {
			return Reaction{}
		}
		return Reaction{Commit: true}
	}
	if lh >= 1 && ls == lh && published < ls {
		// Caught back up from behind: level the race so honest miners
		// can tie-break onto the recovered branch.
		return Reaction{PublishTo: ls}
	}
	return Reaction{}
}

// ReactToHonest implements Strategy.
func (s Stubborn) ReactToHonest(ls, lh, published int) Reaction {
	switch {
	case ls < lh:
		if ls > 0 && lh-ls <= s.Trail {
			return Reaction{} // trail-stubborn: keep the branch alive
		}
		return Reaction{Adopt: true}
	case ls == lh:
		return Reaction{PublishTo: ls} // race the tie
	case ls == lh+1:
		if s.Lead && lh >= 1 {
			return Reaction{PublishTo: lh} // decline the sure win
		}
		return Reaction{Commit: true}
	default:
		return Reaction{PublishTo: published + 1}
	}
}
