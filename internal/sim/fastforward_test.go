package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
)

// The fast-forward mode changes how the random stream is consumed, so it is
// pinned in distribution, not bit-for-bit: revenue within the combined
// confidence band of the plain loop, occupancy by a two-sample chi-squared
// homogeneity test, exact reward conservation via the auditor, and
// bit-determinism plus parallel ≡ sequential within the mode.

func ffConfig(t *testing.T, alpha float64, blocks int, seed uint64) Config {
	t.Helper()
	return Config{
		Population: twoAgent(t, alpha),
		Gamma:      0.5,
		Blocks:     blocks,
		Seed:       seed,
	}
}

// meanAndStdErr accumulates the metric over runs of cfg at derived seeds.
func meanAndStdErr(t *testing.T, cfg Config, runs int, metric func(Result) float64) (mean, se float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < runs; i++ {
		runCfg := cfg
		runCfg.Seed = DeriveSeed(cfg.Seed, i)
		res, err := Run(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		y := metric(res)
		sum += y
		sumSq += y * y
	}
	n := float64(runs)
	mean = sum / n
	variance := (sumSq - n*mean*mean) / (n - 1)
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / n)
}

// TestFastForwardRevenueAgreement pins the headline metric — the pool's
// absolute revenue — across modes: the fast-forward mean must sit within the
// combined 5-sigma band of the plain mean at the same alpha.
func TestFastForwardRevenueAgreement(t *testing.T) {
	for _, alpha := range []float64{0.15, 1.0 / 3.0} {
		cfg := ffConfig(t, alpha, 20000, 909)
		const runs = 24
		metric := func(r Result) float64 { return r.PoolAbsolute(core.Scenario1) }
		plainMean, plainSE := meanAndStdErr(t, cfg, runs, metric)
		ffCfg := cfg
		ffCfg.FastForward = true
		ffMean, ffSE := meanAndStdErr(t, ffCfg, runs, metric)
		band := 5 * math.Sqrt(plainSE*plainSE+ffSE*ffSE)
		if math.Abs(plainMean-ffMean) > band {
			t.Errorf("alpha %v: plain revenue %v vs fast-forward %v differ beyond %v",
				alpha, plainMean, ffMean, band)
		}
	}
}

// TestFastForwardOccupancyAgreement runs a two-sample chi-squared
// homogeneity test over the (Ls, Lh) occupancy distributions of the two
// modes, with thin states pooled into one tail bin.
func TestFastForwardOccupancyAgreement(t *testing.T) {
	cfg := ffConfig(t, 0.3, 20000, 1213)
	const runs = 12
	gather := func(cfg Config) (map[core.State]int64, int64) {
		counts := make(map[core.State]int64)
		var total int64
		for i := 0; i < runs; i++ {
			runCfg := cfg
			runCfg.Seed = DeriveSeed(cfg.Seed, i)
			res, err := Run(runCfg)
			if err != nil {
				t.Fatal(err)
			}
			for s, n := range res.Occupancy {
				counts[s] += n
				total += n
			}
		}
		return counts, total
	}
	plain, n1 := gather(cfg)
	ffCfg := cfg
	ffCfg.FastForward = true
	ff, n2 := gather(ffCfg)

	// Pool the two samples per state; states whose pooled expectation is
	// thin go into a shared tail bin.
	states := make(map[core.State]bool)
	for s := range plain {
		states[s] = true
	}
	for s := range ff {
		states[s] = true
	}
	var stat float64
	df := -1
	var tail1, tail2 int64
	for s := range states {
		c1, c2 := plain[s], ff[s]
		if c1+c2 < 50 {
			tail1 += c1
			tail2 += c2
			continue
		}
		stat += homogeneityTerm(c1, c2, n1, n2)
		df++
	}
	if tail1+tail2 > 0 {
		stat += homogeneityTerm(tail1, tail2, n1, n2)
		df++
	}
	if df < 1 {
		t.Fatal("degenerate occupancy: nothing to test")
	}
	// Wilson–Hilferty upper 0.001 quantile, as in the rng suite.
	z := 3.09
	d := float64(df)
	wh := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	if crit := d * wh * wh * wh; stat > crit {
		t.Errorf("occupancy chi-squared %.2f exceeds critical %.2f (df %d)", stat, crit, df)
	}
}

// homogeneityTerm is one bin's contribution to the two-sample chi-squared
// statistic under the pooled-proportion null.
func homogeneityTerm(c1, c2, n1, n2 int64) float64 {
	p := float64(c1+c2) / float64(n1+n2)
	e1 := p * float64(n1)
	e2 := p * float64(n2)
	d1 := float64(c1) - e1
	d2 := float64(c2) - e2
	return d1*d1/e1 + d2*d2/e2
}

// TestFastForwardConservationAudit drives the full runtime auditor (reward
// conservation, timestamp monotonicity, floor monotonicity, fork-child
// rescans) through fast-forward runs, timeless and timed.
func TestFastForwardConservationAudit(t *testing.T) {
	for _, timed := range []bool{false, true} {
		cfg := ffConfig(t, 0.3, 30000, 1717)
		cfg.FastForward = true
		cfg.Audit = AuditConfig{Enabled: true, SampleEvery: 64}
		cfg.Time.Enabled = timed
		if _, err := Run(cfg); err != nil {
			t.Errorf("timed=%v: audited fast-forward run failed: %v", timed, err)
		}
	}
}

// TestFastForwardAntitheticAudit runs the auditor over the antithetic mirror
// stream, in both modes.
func TestFastForwardAntitheticAudit(t *testing.T) {
	for _, ffwd := range []bool{false, true} {
		cfg := ffConfig(t, 0.3, 20000, 2121)
		cfg.FastForward = ffwd
		cfg.Antithetic = true
		cfg.Audit = AuditConfig{Enabled: true, SampleEvery: 64}
		cfg.Time.Enabled = true
		if _, err := Run(cfg); err != nil {
			t.Errorf("fastforward=%v: audited antithetic run failed: %v", ffwd, err)
		}
	}
}

// TestFastForwardDeterminism pins invariant 3 within the mode: identical
// seeds give identical results, runner reuse included, and RunMany is
// bit-identical across parallelism levels.
func TestFastForwardDeterminism(t *testing.T) {
	cfg := ffConfig(t, 0.25, 20000, 3131)
	cfg.FastForward = true
	cfg.Time.Enabled = true

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner()
	if _, err := rn.Run(ffConfig(t, 0.4, 5000, 77)); err != nil { // dirty the runner
		t.Fatal(err)
	}
	b, err := rn.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("fast-forward run is not bit-deterministic across runner reuse")
	}

	seq := cfg
	seq.Parallelism = 1
	par := cfg
	par.Parallelism = 4
	sres, err := RunMany(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := RunMany(par, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres, pres) {
		t.Error("fast-forward RunMany differs between sequential and parallel execution")
	}

	anti := cfg
	anti.Antithetic = true
	x, err := Run(anti)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Run(anti)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, y) {
		t.Error("antithetic run is not bit-deterministic")
	}
	if reflect.DeepEqual(a.ByPool, x.ByPool) {
		t.Error("antithetic stream produced the same rewards as the plain stream")
	}
}

// TestFastForwardEventCounts checks the new event tally in both modes: the
// per-pool counts must sum to Blocks and the selfish share must sit near
// alpha (its exact mean).
func TestFastForwardEventCounts(t *testing.T) {
	const alpha = 0.3
	for _, ffwd := range []bool{false, true} {
		cfg := ffConfig(t, alpha, 50000, 4141)
		cfg.FastForward = ffwd
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, n := range res.EventsByPool {
			total += n
		}
		if total != int64(cfg.Blocks) {
			t.Errorf("fastforward=%v: events sum to %d, want %d", ffwd, total, cfg.Blocks)
		}
		share := res.SelfishEventShare()
		sigma := math.Sqrt(alpha * (1 - alpha) / float64(cfg.Blocks))
		if math.Abs(share-alpha) > 5*sigma {
			t.Errorf("fastforward=%v: selfish event share %v deviates more than 5 sigma from %v",
				ffwd, share, alpha)
		}
	}
}

// TestFastForwardTimedAxis checks the bulk Gamma clock: elapsed time must
// scale with the block count at unit difficulty, and the settled range must
// be stamped within it.
func TestFastForwardTimedAxis(t *testing.T) {
	cfg := ffConfig(t, 0.3, 50000, 5151)
	cfg.FastForward = true
	cfg.Time.Enabled = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Elapsed / float64(cfg.Blocks)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("mean inter-arrival %v, want ~1 (unit static difficulty)", mean)
	}
	if res.SettledTime <= 0 || res.SettledTime > res.Elapsed {
		t.Errorf("settled time %v outside (0, %v]", res.SettledTime, res.Elapsed)
	}
	if res.Early.Duration() <= 0 || res.Steady.Duration() <= 0 {
		t.Errorf("degenerate windows: early %v, steady %v", res.Early.Duration(), res.Steady.Duration())
	}
}

// TestFastForwardRejectsFeedbackDifficulty pins the validation rule: bulk
// stretch sampling is only sound when inter-arrivals are i.i.d., which a
// feedback controller breaks.
func TestFastForwardRejectsFeedbackDifficulty(t *testing.T) {
	cfg := ffConfig(t, 0.3, 1000, 1)
	cfg.FastForward = true
	cfg.Time.Enabled = true
	cfg.Time.Difficulty = difficulty.Params{Rule: difficulty.EIP100}
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
	// The static rule stays allowed.
	cfg.Time.Difficulty = difficulty.Params{Rule: difficulty.Static}
	if _, err := Run(cfg); err != nil {
		t.Errorf("static rule rejected: %v", err)
	}
}

// inertStrategy never adopts, so fast-forward must quietly stand down: the
// run takes the plain path and is bit-identical with the flag on or off.
type inertStrategy struct{}

func (inertStrategy) Name() string                                 { return "inert" }
func (inertStrategy) ReactToPool(ls, lh, published int) Reaction   { return Reaction{} }
func (inertStrategy) ReactToHonest(ls, lh, published int) Reaction { return Reaction{} }

func TestFastForwardDisabledForNonAdoptiveStrategy(t *testing.T) {
	cfg := ffConfig(t, 0.3, 5000, 6161)
	cfg.Strategy = inertStrategy{}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FastForward = true
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ff) {
		t.Error("fast-forward engaged for a non-adoptive strategy (results differ from plain)")
	}
}

// TestFastForwardAllHonest covers the alpha = 0 degenerate case: the whole
// run is one stretch.
func TestFastForwardAllHonest(t *testing.T) {
	pop, err := mining.Equal(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population:  pop,
		Blocks:      10000,
		Seed:        7171,
		FastForward: true,
		Audit:       AuditConfig{Enabled: true, SampleEvery: 256},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegularCount != cfg.Blocks || res.StaleCount != 0 || res.UncleCount != 0 {
		t.Errorf("all-honest chain settled as %d regular / %d uncle / %d stale, want %d/0/0",
			res.RegularCount, res.UncleCount, res.StaleCount, cfg.Blocks)
	}
	if got := res.Occupancy[core.State{S: 0, H: 0}]; got != int64(cfg.Blocks) {
		t.Errorf("origin occupancy %d, want %d", got, cfg.Blocks)
	}
	if got := res.EventsByPool[0]; got != int64(cfg.Blocks) {
		t.Errorf("honest events %d, want %d", got, cfg.Blocks)
	}
}

// TestFastForwardMultiMemberHonestPool exercises the per-block attribution
// path (no sole honest member): rewards must still conserve under audit and
// all miners must appear.
func TestFastForwardMultiMemberHonestPool(t *testing.T) {
	pop, err := mining.Equal(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population:  pop,
		Gamma:       0.5,
		Blocks:      20000,
		Seed:        8181,
		FastForward: true,
		Audit:       AuditConfig{Enabled: true, SampleEvery: 128},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := 0
	for id, seen := range res.MinerSeen {
		if seen && !pop.IsSelfish(chain.MinerID(id)) {
			honest++
		}
	}
	if honest != 7 {
		t.Errorf("%d honest miners earned rewards, want all 7", honest)
	}
}
