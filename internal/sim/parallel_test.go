package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
)

// TestRunManyParallelDeterminism is the engine's core contract: fanning
// runs across workers must produce run-for-run identical Results to the
// sequential execution, in the same order.
func TestRunManyParallelDeterminism(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population: pop,
		Gamma:      0.5,
		Blocks:     5000,
		Seed:       42,
	}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}

	if len(sequential.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d sequential vs %d parallel",
			len(sequential.Runs), len(parallel.Runs))
	}
	for i := range sequential.Runs {
		if !reflect.DeepEqual(sequential.Runs[i], parallel.Runs[i]) {
			t.Errorf("run %d: parallel result differs from sequential", i)
		}
	}
}

// TestRunManyDefaultParallelism checks the GOMAXPROCS default also matches
// the sequential stream (it exercises the workers>1 path on multi-core
// machines and the workers==1 shortcut on single-core ones).
func TestRunManyDefaultParallelism(t *testing.T) {
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Population: pop, Gamma: 0.5, Blocks: 2000, Seed: 7}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 0
	defaulted, err := RunMany(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential.Runs, defaulted.Runs) {
		t.Error("default parallelism produced different results than sequential")
	}
}

func TestRunManyRejectsNegativeParallelism(t *testing.T) {
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Population: pop, Gamma: 0.5, Blocks: 100, Parallelism: -1}
	if _, err := RunMany(cfg, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative parallelism: got %v, want ErrBadConfig", err)
	}
}

// TestRunManyParallelError verifies an invalid configuration fails the
// whole batch even when runs execute concurrently.
func TestRunManyParallelError(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population:        pop,
		Gamma:             0.5,
		Blocks:            100,
		MaxUnclesPerBlock: -1, // rejected by validate inside each run
		Parallelism:       4,
	}
	if _, err := RunMany(cfg, 8); !errors.Is(err, ErrBadConfig) {
		t.Errorf("got %v, want ErrBadConfig", err)
	}
}

// TestRunnerReuseMatchesFreshRuns pins the simulator-reuse contract: one
// Runner executing a heterogeneous sequence of configurations (different
// populations, block counts, schedules, seeds) must produce results
// bit-identical to fresh Run calls — i.e. init fully resets every piece of
// run state it reuses.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	two, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	thousand, err := mining.Equal(1000, 350)
	if err != nil {
		t.Fatal(err)
	}
	twoPools, err := mining.MultiAgent(0.3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	threePools, err := mining.EqualPools(100, 25, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{Population: thousand, Gamma: 0.5, Blocks: 8000, Seed: 1},
		{Population: two, Gamma: 0.5, Blocks: 3000, Seed: 2},
		// Multi-pool runs interleave with single-pool ones, so the
		// reused per-pool branches, occupancy grids, and roots must
		// all re-shape cleanly between runs.
		{Population: twoPools, Gamma: 0.5, Blocks: 6000, Seed: 4},
		{Population: two, Gamma: 0, Blocks: 5000, Seed: 1, MaxUnclesPerBlock: 2},
		{Population: threePools, Gamma: 0.5, Blocks: 4000, Seed: 5,
			Strategies: []Strategy{Algorithm1{}, HonestStrategy{}, Stubborn{Lead: true}}},
		{Population: thousand, Gamma: 1, Blocks: 2000, Seed: 3},
		{Population: twoPools, Gamma: 1, Blocks: 3000, Seed: 6, MaxUnclesPerBlock: 2},
		// Repeat the first configuration: the runner's storage has been
		// through smaller and differently shaped runs in between.
		{Population: thousand, Gamma: 0.5, Blocks: 8000, Seed: 1},
	}
	runner := NewRunner()
	for i, cfg := range configs {
		reused, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Errorf("config %d: reused runner result differs from fresh run", i)
		}
	}
}

// TestRunManyParallelDeterminismTwoPools extends the engine contract to
// the K-pool race: fanned-out multi-pool runs (heterogeneous strategies
// included) must be run-for-run identical to sequential execution.
func TestRunManyParallelDeterminismTwoPools(t *testing.T) {
	pop, err := mining.MultiAgent(0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population: pop,
		Gamma:      0.5,
		Blocks:     5000,
		Seed:       42,
		Strategies: []Strategy{Algorithm1{}, HonestStrategy{}},
	}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sequential.Runs {
		if !reflect.DeepEqual(sequential.Runs[i], parallel.Runs[i]) {
			t.Errorf("run %d: parallel two-pool result differs from sequential", i)
		}
	}
}

func TestDeriveSeedSpreadsRuns(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at run %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("distinct bases should derive distinct seeds")
	}
}
