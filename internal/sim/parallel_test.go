package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
)

// TestRunManyParallelDeterminism is the engine's core contract: fanning
// runs across workers must produce run-for-run identical Results to the
// sequential execution, in the same order.
func TestRunManyParallelDeterminism(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population: pop,
		Gamma:      0.5,
		Blocks:     5000,
		Seed:       42,
	}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}

	if len(sequential.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d sequential vs %d parallel",
			len(sequential.Runs), len(parallel.Runs))
	}
	for i := range sequential.Runs {
		if !reflect.DeepEqual(sequential.Runs[i], parallel.Runs[i]) {
			t.Errorf("run %d: parallel result differs from sequential", i)
		}
	}
}

// TestRunManyDefaultParallelism checks the GOMAXPROCS default also matches
// the sequential stream (it exercises the workers>1 path on multi-core
// machines and the workers==1 shortcut on single-core ones).
func TestRunManyDefaultParallelism(t *testing.T) {
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Population: pop, Gamma: 0.5, Blocks: 2000, Seed: 7}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 0
	defaulted, err := RunMany(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential.Runs, defaulted.Runs) {
		t.Error("default parallelism produced different results than sequential")
	}
}

func TestRunManyRejectsNegativeParallelism(t *testing.T) {
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Population: pop, Gamma: 0.5, Blocks: 100, Parallelism: -1}
	if _, err := RunMany(cfg, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative parallelism: got %v, want ErrBadConfig", err)
	}
}

// TestRunManyParallelError verifies an invalid configuration fails the
// whole batch even when runs execute concurrently.
func TestRunManyParallelError(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population:        pop,
		Gamma:             0.5,
		Blocks:            100,
		MaxUnclesPerBlock: -1, // rejected by validate inside each run
		Parallelism:       4,
	}
	if _, err := RunMany(cfg, 8); !errors.Is(err, ErrBadConfig) {
		t.Errorf("got %v, want ErrBadConfig", err)
	}
}

// TestRunnerReuseMatchesFreshRuns pins the simulator-reuse contract: one
// Runner executing a heterogeneous sequence of configurations (different
// populations, block counts, schedules, seeds) must produce results
// bit-identical to fresh Run calls — i.e. init fully resets every piece of
// run state it reuses.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	two, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	thousand, err := mining.Equal(1000, 350)
	if err != nil {
		t.Fatal(err)
	}
	twoPools, err := mining.MultiAgent(0.3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	threePools, err := mining.EqualPools(100, 25, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{Population: thousand, Gamma: 0.5, Blocks: 8000, Seed: 1},
		{Population: two, Gamma: 0.5, Blocks: 3000, Seed: 2},
		// Multi-pool runs interleave with single-pool ones, so the
		// reused per-pool branches, occupancy grids, and roots must
		// all re-shape cleanly between runs.
		{Population: twoPools, Gamma: 0.5, Blocks: 6000, Seed: 4},
		{Population: two, Gamma: 0, Blocks: 5000, Seed: 1, MaxUnclesPerBlock: 2},
		{Population: threePools, Gamma: 0.5, Blocks: 4000, Seed: 5,
			Strategies: []Strategy{Algorithm1{}, HonestStrategy{}, Stubborn{Lead: true}}},
		{Population: thousand, Gamma: 1, Blocks: 2000, Seed: 3},
		{Population: twoPools, Gamma: 1, Blocks: 3000, Seed: 6, MaxUnclesPerBlock: 2},
		// Repeat the first configuration: the runner's storage has been
		// through smaller and differently shaped runs in between.
		{Population: thousand, Gamma: 0.5, Blocks: 8000, Seed: 1},
	}
	runner := NewRunner()
	for i, cfg := range configs {
		reused, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Errorf("config %d: reused runner result differs from fresh run", i)
		}
	}
}

// TestRunManyParallelDeterminismTwoPools extends the engine contract to
// the K-pool race: fanned-out multi-pool runs (heterogeneous strategies
// included) must be run-for-run identical to sequential execution.
func TestRunManyParallelDeterminismTwoPools(t *testing.T) {
	pop, err := mining.MultiAgent(0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population: pop,
		Gamma:      0.5,
		Blocks:     5000,
		Seed:       42,
		Strategies: []Strategy{Algorithm1{}, HonestStrategy{}},
	}

	cfg.Parallelism = 1
	sequential, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sequential.Runs {
		if !reflect.DeepEqual(sequential.Runs[i], parallel.Runs[i]) {
			t.Errorf("run %d: parallel two-pool result differs from sequential", i)
		}
	}
}

// TestRunManyCtx pins the batch-cancellation contract: a nil or live
// context behaves exactly like RunMany, and a cancelled context returns
// context.Canceled with a done mask whose completed runs are bit-identical
// to the uninterrupted batch.
func TestRunManyCtx(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Population: pop, Gamma: 0.5, Blocks: 3000, Seed: 42, Parallelism: 4}
	want, err := RunMany(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}

	got, done, err := RunManyCtx(context.Background(), cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range done {
		if !ok {
			t.Fatalf("run %d not done under a live context", i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("RunManyCtx with a live context differs from RunMany")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, done, err := RunManyCtx(ctx, cfg, 6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, ok := range done {
		if !ok {
			continue
		}
		if !reflect.DeepEqual(partial.Runs[i], want.Runs[i]) {
			t.Errorf("run %d: partial result differs from the uninterrupted batch", i)
		}
	}
}

// TestRunnerResetAfterFailure: a Runner whose run failed partway (here on a
// strategy's invalid reaction) must produce bit-identical clean runs
// afterwards, with or without an explicit Reset in between.
func TestRunnerResetAfterFailure(t *testing.T) {
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		t.Fatal(err)
	}
	clean := Config{Population: pop, Gamma: 0.5, Blocks: 2000, Seed: 7}
	want, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	// conflictStrategy fails mid-run once the pool holds a private lead.
	bad := clean
	bad.Strategy = conflictStrategy{}

	for _, reset := range []bool{false, true} {
		rn := NewRunner()
		if _, err := rn.Run(bad); !errors.Is(err, ErrBadReaction) {
			t.Fatalf("reset=%v: err = %v, want ErrBadReaction", reset, err)
		}
		if reset {
			rn.Reset()
		}
		got, err := rn.Run(clean)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reset=%v: rerun after a failed run differs from a fresh run", reset)
		}
	}
}

// conflictStrategy emits a Commit+Adopt reaction — always invalid — as soon
// as the pool has any private blocks to commit.
type conflictStrategy struct{}

func (conflictStrategy) Name() string { return "test-conflict" }

func (conflictStrategy) ReactToPool(ls, lh, published int) Reaction {
	if ls > lh {
		return Reaction{Commit: true, Adopt: true}
	}
	return Algorithm1{}.ReactToPool(ls, lh, published)
}

func (conflictStrategy) ReactToHonest(ls, lh, published int) Reaction {
	return Algorithm1{}.ReactToHonest(ls, lh, published)
}

func TestDeriveSeedSpreadsRuns(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at run %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("distinct bases should derive distinct seeds")
	}
}
