package sim

import (
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/mining"
)

// This file is the analytic fast-forward of uneventful stretches. At the
// race origin — every pool's private branch empty, the public tip childless
// — the simulator is a memoryless coin-flip loop: each event is honest with
// probability 1-alpha, and an honest event at the origin deterministically
// extends the public tip (no gamma draw, every pool re-adopts right back to
// the origin; any uncle references the opening blocks owe are themselves
// deterministic). The number of honest blocks before the next selfish find
// is therefore Geometric(alpha), so the engine can sample the whole stretch
// in one draw, play the reference-owing prefix through the bookkept
// single-block path, bulk-append the rest, bulk-credit occupancy and (on
// the timed axis) bulk-sample the stretch's total duration as a Gamma(k)
// variate, then resume event-by-event at the first interesting find. At
// paper alphas the origin holds pi(0,0) ~ 53-90% of events, of which the
// honest (1-alpha) fraction skips.
//
// Skipping consumes the random stream differently from the plain loop, so
// fast-forward results agree with plain results in distribution, not
// bit-for-bit; fastforward_test.go pins that agreement (occupancy
// chi-squared, revenue within combined CI, conservation under the auditor)
// while determinism and parallel ≡ sequential are preserved within the mode.

// initFastForward decides whether fast-forward may engage for this run and
// precomputes the sole-honest-member fast path. cfg.FastForward is demoted
// (not rejected) when a precondition fails, because the plain loop is always
// correct: a strategy that does not adopt at (0, 1, 0) simply keeps the
// event-by-event path, and any error it would raise there still surfaces.
func (s *simulator) initFastForward(cfg Config) {
	s.ffwd = false
	s.ffwdMiner = chain.MinerID(-1)
	s.ffwdLogQ = 0
	if !cfg.FastForward {
		return
	}
	if m, ok := cfg.Population.SoleMember(mining.HonestPool); ok {
		s.ffwdMiner = m.ID
	}
	// With no honest power the stretch length is always zero; the plain
	// loop is strictly cheaper.
	if cfg.Population.PoolPower(mining.HonestPool) <= 0 {
		return
	}
	// Every pool must plainly adopt at the (0, 1, 0) frame — the only
	// frame consulted during a stretch (each honest block advances the
	// public chain by exactly one over the pool's root, and the adopt
	// moves the root right back). A publish, a commit, a hold, or an
	// invalid reaction would make stretches non-memoryless, so the probe
	// failing keeps the plain loop, where that behavior (or its error)
	// plays out event by event. For tabled strategies the probe is a
	// compile-time table property (the (0, 1, 0) entry is a plain adopt
	// exactly when it validated as one); only untabled pools are probed
	// live.
	for i := range s.pools {
		if !s.pools[i].adoptsAtOrigin() {
			return
		}
	}
	if alpha := cfg.Population.Alpha(); alpha > 0 {
		s.ffwdLogQ = -math.Log1p(-alpha)
	}
	s.ffwd = true
}

// adoptsAtOrigin reports the fast-forward engagement condition for one
// pool: a plain, valid adopt at the (0, 1, 0) frame. Tabled pools answer
// from the compiled table property; untabled ones are probed live. At that
// frame ls = 0 forces any valid PublishTo to zero, so the table's adopt
// entry is necessarily the plain adopt the live probe insists on.
func (p *poolState) adoptsAtOrigin() bool {
	if p.table != nil {
		return p.table.AdoptsAtOrigin()
	}
	r := p.strat.ReactToHonest(0, 1, 0)
	return r.Adopt && !r.Commit && r.PublishTo == 0 &&
		validateReaction(r, 0, 1, 0) == nil
}

// atRaceOrigin reports whether the next event may be fast-forwarded: every
// pool is parked at the origin frame (empty private branch rooted at the
// public tip) and the public tip is childless (so stretch blocks cannot
// create fork children). Uncle candidates left over from a finished race do
// not block the skip: the ones an honest block at the tip would reference
// are folded into the stretch's opening blocks by fastForward's draining
// prefix, and the rest stay untouchable for the whole stretch — the height
// window only moves up past candidates, and visibility and chain attachment
// never change while no pool acts.
func (s *simulator) atRaceOrigin() bool {
	for i := range s.pools {
		p := &s.pools[i]
		if len(p.blocks) != 0 || p.root != s.pubTip {
			return false
		}
	}
	return s.tree.FirstChildOf(s.pubTip) == chain.NoBlock
}

// fastForward samples one uneventful stretch (capped at remaining events),
// applies it in bulk, and returns the number of events skipped. After a
// return of skipped < remaining, the next event's producer is selfish by
// construction; the caller runs it with a conditional draw. The occupancy
// grid, event counts, candidate window, published set, timestamps, clock,
// consensus floor, and audit hooks all see exactly the state the plain loop
// would have produced — only the random draws consumed differ.
func (s *simulator) fastForward(remaining int) (int, error) {
	var k int
	if s.ffwdLogQ == 0 {
		// No pool can ever interrupt the stretch (alpha is zero): the rest
		// of the run is one skip, with no geometric draw to consume.
		k = remaining
	} else {
		k = s.random.GeometricLog(s.ffwdLogQ)
		if k > remaining {
			k = remaining
		}
	}
	if k == 0 {
		return 0, nil
	}

	// Each skipped event observed every pool at the origin frame.
	for i := range s.occ {
		s.occ[i][0] += int64(k)
	}
	s.events[mining.HonestPool] += int64(k)

	// Timed axis: the k unit-exponential inter-arrivals at static
	// difficulty d sum to d * Gamma(k) — one bulk draw. Individual stamps
	// inside the stretch are interpolated at the conditional mean spacing;
	// they stay strictly monotone and at most the final clock, which is
	// what every consumer of intra-stretch stamps (settlement windows, the
	// timestamp audit) requires.
	start := s.clock
	var step float64
	if s.timing {
		total := s.timeRandom.GammaInt(k) * s.currentDifficulty()
		step = total / float64(k)
	}

	// Reference-draining prefix: the stretch may open while uncle candidates
	// from the last race are still referenceable at the tip. The plain loop
	// would fold their references into the next honest blocks' headers, so
	// the stretch does the same through the fully bookkept single-block path
	// before bulk-appending the reference-free remainder. Eligibility only
	// shrinks as the prefix references candidates and the height window
	// climbs, so the prefix spans at most a few blocks.
	parent := s.pubTip
	at := start
	drained := 0
	if len(s.forkChildren) > 0 {
		// The counter gate is O(1) and usually closes after one drained
		// block (its references cover the open candidates), sparing the
		// chain walk a second look.
		for drained < k && s.referencedInWindow < len(s.forkChildren) {
			uncles := s.eligibleUncles(parent, mining.HonestPool)
			if len(uncles) == 0 {
				break
			}
			at += step
			s.clock = at
			m := s.ffwdMiner
			if m < 0 {
				m = s.cfg.Population.SampleMember(mining.HonestPool, s.random).ID
			}
			id, err := s.extend(parent, m, uncles, true)
			if err != nil {
				return 0, err
			}
			parent = id
			drained++
		}
	}

	tip := parent
	bulk := k - drained
	if bulk > 0 {
		var err error
		if s.ffwdMiner >= 0 {
			tip, err = s.tree.ExtendRun(parent, s.ffwdMiner, bulk, at, step)
		} else {
			// Honest power is spread over several miners: attribution needs
			// a per-block conditional draw, but the blocks still need no
			// uncle or fork bookkeeping.
			for j := 0; j < bulk; j++ {
				at += step
				m := s.cfg.Population.SampleMember(mining.HonestPool, s.random)
				tip, err = s.tree.ExtendAt(parent, m.ID, nil, at)
				if err != nil {
					break
				}
				parent = tip
			}
		}
		if err != nil {
			return 0, fmt.Errorf("sim: fast-forwarding %d blocks: %w", k, err)
		}
	}
	if s.timing {
		s.clock = s.tree.TimeOf(tip)
	}

	// Candidate-window upkeep for the bulk remainder (the prefix blocks went
	// through extend's own upkeep): first trim entries the final height
	// pushes out — dropping any that were fork children, just as the
	// per-event trim would — then enter the stretch's tail.
	finalHeight := s.pubHeight + k
	minHeight := finalHeight - s.window - 1
	s.trimRecent(minHeight)
	firstID := tip - chain.BlockID(bulk) + 1
	for j := 0; j < bulk; j++ {
		id := firstID + chain.BlockID(j)
		h := s.pubHeight + drained + 1 + j
		in := h >= minHeight
		s.published = append(s.published, true)
		s.inRecent = append(s.inRecent, in)
		if in {
			s.recent = append(s.recent, windowBlock{id: id, height: h})
		}
	}

	s.pubTip = tip
	s.pubHeight = finalHeight
	for i := range s.pools {
		p := &s.pools[i]
		p.root = tip
		p.rootHeight = finalHeight
	}
	// Every pool re-adopted at every skipped block, so the consensus floor
	// rode the tip through the whole stretch; audit the one batched
	// advance. (The poolless engine never advances its floor — resolve is
	// pool-triggered — so mirror that.)
	if len(s.pools) > 0 {
		if s.aud != nil {
			if err := s.aud.auditFloor(s, s.floor, tip); err != nil {
				return 0, err
			}
		}
		s.floor = tip
		// Mirror resolve: a floor advance settles lingering candidates'
		// fates, so purge the ones it decided for good.
		if len(s.forkChildren) > 0 {
			s.purgeForkChildren(tip)
		}
	}
	return k, nil
}
