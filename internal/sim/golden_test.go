package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

// The timeless (no time axis, no difficulty controller) path of the engine
// must stay bit-identical across refactors: testdata/golden_timeless.json
// pins exact reward tallies, block classifications, and occupancy checksums
// produced by the engine before the continuous-time refactor, across
// gamma in {0, 0.5, 1}, both reward schedules, uncle caps, and one- and
// two-pool populations. Regenerate with
//
//	go test ./internal/sim -run TestGoldenTimeless -update
//
// only when a deliberate, documented stream change is made (none so far
// since the alias-table sampler landed).
var updateGolden = flag.Bool("update", false, "regenerate golden timeless fingerprints")

const goldenPath = "testdata/golden_timeless.json"

// goldenReward is one reward tally with every component in exact hex
// float64 notation, so a single ULP of drift fails the comparison.
type goldenReward struct {
	Static string `json:"static"`
	Uncle  string `json:"uncle"`
	Nephew string `json:"nephew"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func toGoldenReward(r chain.Reward) goldenReward {
	return goldenReward{Static: hexFloat(r.Static), Uncle: hexFloat(r.Uncle), Nephew: hexFloat(r.Nephew)}
}

// goldenFingerprint summarizes one run exactly: per-pool tallies, block
// classes, and an order-independent occupancy checksum per pool.
type goldenFingerprint struct {
	ByPool       []goldenReward `json:"byPool"`
	Regular      int            `json:"regular"`
	Uncles       int            `json:"uncles"`
	Stale        int            `json:"stale"`
	OccChecksums []int64        `json:"occChecksums"`
}

func fingerprint(r Result) goldenFingerprint {
	fp := goldenFingerprint{
		Regular: r.RegularCount,
		Uncles:  r.UncleCount,
		Stale:   r.StaleCount,
	}
	for _, reward := range r.ByPool {
		fp.ByPool = append(fp.ByPool, toGoldenReward(reward))
	}
	for _, occ := range r.OccupancyByPool {
		var sum int64
		for state, n := range occ {
			sum += (int64(state.S)*131 + int64(state.H) + 1) * n
		}
		fp.OccChecksums = append(fp.OccChecksums, sum)
	}
	return fp
}

// goldenCase is one pinned configuration. Populations and schedules are
// rebuilt from the parameters so the file stays readable.
type goldenCase struct {
	name     string
	gamma    float64
	schedule rewards.Schedule
	pools    []float64 // pool hash powers (MultiAgent); nil = TwoAgent(0.35)
	uncleCap int
	miners   int // >0: Equal(miners, selfish) population instead
	selfish  int
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	schedules := []struct {
		name string
		s    rewards.Schedule
	}{
		{"ethereum", rewards.Ethereum()},
		{"bitcoin", rewards.Bitcoin()},
	}
	for _, sched := range schedules {
		for _, gamma := range []float64{0, 0.5, 1} {
			cases = append(cases,
				goldenCase{
					name:     "1pool-" + sched.name + "-gamma" + strconv.FormatFloat(gamma, 'g', -1, 64),
					gamma:    gamma,
					schedule: sched.s,
				},
				goldenCase{
					name:     "2pool-" + sched.name + "-gamma" + strconv.FormatFloat(gamma, 'g', -1, 64),
					gamma:    gamma,
					schedule: sched.s,
					pools:    []float64{0.25, 0.2},
				},
			)
		}
	}
	cases = append(cases,
		goldenCase{name: "1pool-ethereum-unclecap2", gamma: 0.5, schedule: rewards.Ethereum(), uncleCap: 2},
		goldenCase{name: "2pool-ethereum-unclecap2", gamma: 0.5, schedule: rewards.Ethereum(), uncleCap: 2, pools: []float64{0.25, 0.2}},
		goldenCase{name: "1000miners-ethereum-gamma0.5", gamma: 0.5, schedule: rewards.Ethereum(), miners: 1000, selfish: 350},
	)
	return cases
}

func (c goldenCase) run(t *testing.T) Result {
	t.Helper()
	var (
		pop *mining.Population
		err error
	)
	switch {
	case c.miners > 0:
		pop, err = mining.Equal(c.miners, c.selfish)
	case c.pools != nil:
		pop, err = mining.MultiAgent(c.pools...)
	default:
		pop, err = mining.TwoAgent(0.35)
	}
	if err != nil {
		t.Fatal(err)
	}
	result, err := Run(Config{
		Population:        pop,
		Gamma:             c.gamma,
		Schedule:          c.schedule,
		Blocks:            20000,
		Seed:              7,
		MaxUnclesPerBlock: c.uncleCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// TestGoldenTimeless pins the timeless path bit for bit against the
// pre-continuous-time engine.
func TestGoldenTimeless(t *testing.T) {
	fingerprints := make(map[string]goldenFingerprint)
	for _, c := range goldenCases() {
		fingerprints[c.name] = fingerprint(c.run(t))
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(fingerprints, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(fingerprints), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want map[string]goldenFingerprint
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(fingerprints) {
		t.Errorf("golden file has %d fingerprints, test produced %d", len(want), len(fingerprints))
	}
	for name, got := range fingerprints {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (regenerate with -update)", name)
			continue
		}
		if len(got.ByPool) != len(w.ByPool) {
			t.Errorf("%s: %d pools, golden has %d", name, len(got.ByPool), len(w.ByPool))
			continue
		}
		for i := range got.ByPool {
			if got.ByPool[i] != w.ByPool[i] {
				t.Errorf("%s: pool %d tally %+v, golden %+v", name, i, got.ByPool[i], w.ByPool[i])
			}
		}
		if got.Regular != w.Regular || got.Uncles != w.Uncles || got.Stale != w.Stale {
			t.Errorf("%s: classes (r=%d u=%d s=%d), golden (r=%d u=%d s=%d)",
				name, got.Regular, got.Uncles, got.Stale, w.Regular, w.Uncles, w.Stale)
		}
		for i := range got.OccChecksums {
			if i < len(w.OccChecksums) && got.OccChecksums[i] != w.OccChecksums[i] {
				t.Errorf("%s: occupancy checksum %d = %d, golden %d",
					name, i, got.OccChecksums[i], w.OccChecksums[i])
			}
		}
	}
}
