package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
)

func multiAgent(t *testing.T, alphas ...float64) *mining.Population {
	t.Helper()
	p, err := mining.MultiAgent(alphas...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSinglePoolEquivalenceSweep pins the K=1 special case of the K-pool
// engine: across an alpha sweep, a single pool configured through the
// per-pool Strategies list, through the legacy Strategy field, and through
// the MultiAgent constructor must produce bit-identical results. Together
// with the distribution and model-agreement tests (which pin the absolute
// semantics against the paper's closed forms), this fixes the single-pool
// path to the pre-refactor engine.
func TestSinglePoolEquivalenceSweep(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		for _, strat := range []Strategy{nil, Stubborn{Lead: true}, EagerPublish{Lead: 3}} {
			cfg := Config{
				Population: twoAgent(t, alpha),
				Gamma:      0.5,
				Blocks:     20000,
				Seed:       uint64(1000 * alpha),
				Strategy:   strat,
			}
			legacy := run(t, cfg)

			perPool := cfg
			perPool.Strategy = nil
			if strat == nil {
				perPool.Strategies = []Strategy{Algorithm1{}}
			} else {
				perPool.Strategies = []Strategy{strat}
			}
			viaList := run(t, perPool)
			if !reflect.DeepEqual(legacy, viaList) {
				t.Errorf("alpha=%v strategy=%v: Strategies list result differs from Strategy field", alpha, strat)
			}

			viaMulti := cfg
			viaMulti.Population = multiAgent(t, alpha)
			if got := run(t, viaMulti); !reflect.DeepEqual(legacy, got) {
				t.Errorf("alpha=%v strategy=%v: MultiAgent population result differs from TwoAgent", alpha, strat)
			}
		}
	}
}

func TestStrategiesValidation(t *testing.T) {
	pop := multiAgent(t, 0.2, 0.2)
	tests := []struct {
		name       string
		strategies []Strategy
	}{
		{"wrong length", []Strategy{Algorithm1{}}},
		{"nil entry", []Strategy{Algorithm1{}, nil}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(Config{
				Population: pop,
				Gamma:      0.5,
				Blocks:     100,
				Strategies: tt.strategies,
			})
			if !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

// unpublishStrategy un-publishes announced blocks once the race is on —
// an invalid reaction the simulator must reject.
type unpublishStrategy struct{}

func (unpublishStrategy) Name() string { return "unpublish" }
func (unpublishStrategy) ReactToPool(ls, lh, published int) Reaction {
	return Reaction{}
}
func (unpublishStrategy) ReactToHonest(ls, lh, published int) Reaction {
	if published >= 2 {
		return Reaction{PublishTo: 1}
	}
	return Algorithm1{}.ReactToHonest(ls, lh, published)
}

// commitBehindStrategy commits without a longer branch.
type commitBehindStrategy struct{}

func (commitBehindStrategy) Name() string { return "commit-behind" }
func (commitBehindStrategy) ReactToPool(ls, lh, published int) Reaction {
	return Reaction{}
}
func (commitBehindStrategy) ReactToHonest(ls, lh, published int) Reaction {
	return Reaction{Commit: true}
}

// TestErrBadReactionSurfacesFromRun covers the validation path end to end:
// an invalid strategy decision must fail the run with ErrBadReaction.
func TestErrBadReactionSurfacesFromRun(t *testing.T) {
	for _, strat := range []Strategy{unpublishStrategy{}, commitBehindStrategy{}} {
		_, err := Run(Config{
			Population: twoAgent(t, 0.4),
			Gamma:      0.5,
			Blocks:     20000,
			Seed:       3,
			Strategy:   strat,
		})
		if !errors.Is(err, ErrBadReaction) {
			t.Errorf("%s: err = %v, want ErrBadReaction", strat.Name(), err)
		}
	}
	// The same surfaces through RunMany's worker pool.
	_, err := RunMany(Config{
		Population: twoAgent(t, 0.4),
		Gamma:      0.5,
		Blocks:     20000,
		Seed:       3,
		Strategy:   commitBehindStrategy{},
	}, 4)
	if !errors.Is(err, ErrBadReaction) {
		t.Errorf("RunMany: err = %v, want ErrBadReaction", err)
	}
}

// TestHonestControlPoolsEarnAlpha is the K-pool control arm: pools that
// follow the protocol fork nothing and each earn exactly their hash share.
func TestHonestControlPoolsEarnAlpha(t *testing.T) {
	alphas := []float64{0.25, 0.2}
	r := run(t, Config{
		Population: multiAgent(t, alphas...),
		Gamma:      0.5,
		Blocks:     50000,
		Seed:       201,
		Strategies: []Strategy{HonestStrategy{}, HonestStrategy{}},
	})
	if r.UncleCount != 0 || r.StaleCount != 0 {
		t.Errorf("honest pools produced %d uncles, %d stale blocks", r.UncleCount, r.StaleCount)
	}
	for i, alpha := range alphas {
		got := r.AbsoluteOf(mining.PoolID(i+1), core.Scenario1)
		if math.Abs(got-alpha) > 0.01 {
			t.Errorf("honest pool %d revenue %v, want ~%v", i+1, got, alpha)
		}
	}
	if got := r.AbsoluteOf(mining.HonestPool, core.Scenario1); math.Abs(got-0.55) > 0.01 {
		t.Errorf("honest crowd revenue %v, want ~0.55", got)
	}
}

// TestTwoPoolRaceConsistency runs two Algorithm-1 pools against each other
// and checks the global invariants survive competing private branches:
// reward conservation, block accounting, per-pool tallies summing to the
// camp aggregates, and per-pool occupancy counting every event.
func TestTwoPoolRaceConsistency(t *testing.T) {
	r := run(t, Config{
		Population: multiAgent(t, 0.3, 0.25),
		Gamma:      0.5,
		Blocks:     100000,
		Seed:       211,
	})
	if got := r.Pool.Static + r.Honest.Static; math.Abs(got-float64(r.RegularCount)) > 1e-9 {
		t.Errorf("static rewards %v != regular blocks %d", got, r.RegularCount)
	}
	gotNephew := r.Pool.Nephew + r.Honest.Nephew
	if math.Abs(gotNephew-float64(r.UncleCount)/32) > 1e-9 {
		t.Errorf("nephew rewards %v != UncleCount/32", gotNephew)
	}
	settled := r.RegularCount + r.UncleCount + r.StaleCount
	if settled > r.Blocks {
		t.Errorf("settled %d blocks out of %d events", settled, r.Blocks)
	}
	if r.Blocks-settled > 300 {
		t.Errorf("settlement dropped %d blocks; races should be short", r.Blocks-settled)
	}
	if len(r.ByPool) != 3 {
		t.Fatalf("ByPool has %d entries, want 3", len(r.ByPool))
	}
	if got := r.ByPool[1].Add(r.ByPool[2]); got != r.Pool {
		t.Errorf("pool tallies %v + %v != aggregate %v", r.ByPool[1], r.ByPool[2], r.Pool)
	}
	if r.ByPool[0] != r.Honest {
		t.Errorf("ByPool[0] %v != Honest %v", r.ByPool[0], r.Honest)
	}
	if len(r.OccupancyByPool) != 2 {
		t.Fatalf("OccupancyByPool has %d entries, want 2", len(r.OccupancyByPool))
	}
	for p, occ := range r.OccupancyByPool {
		var total int64
		for _, n := range occ {
			total += n
		}
		if total != int64(r.Blocks) {
			t.Errorf("pool %d occupancy counts sum to %d, want %d", p+1, total, r.Blocks)
		}
	}
	if r.ByPool[1].Total() <= 0 || r.ByPool[2].Total() <= 0 {
		t.Errorf("both pools should earn rewards, got %v and %v", r.ByPool[1], r.ByPool[2])
	}
	// Determinism across identical seeds.
	again := run(t, Config{
		Population: multiAgent(t, 0.3, 0.25),
		Gamma:      0.5,
		Blocks:     100000,
		Seed:       211,
	})
	if !reflect.DeepEqual(r, again) {
		t.Error("identical two-pool runs differ")
	}
}

// TestRivalPoolEffectByScenario checks the headline pool-wars effect and
// its dependence on the difficulty rule. Two 0.30 pools racing each other
// stale an order of magnitude more blocks than one attacker does. Under
// uncle-blind difficulty (scenario 1) that staling lowers difficulty and
// *raises* each attacker's absolute revenue — compounding the attack the
// paper quantifies. Under EIP100 (scenario 2), which counts uncles in the
// difficulty signal, the same rivalry lowers the attacker's revenue below
// its single-attacker value: the emendation the paper's conclusion
// endorses also blunts multi-pool races.
func TestRivalPoolEffectByScenario(t *testing.T) {
	const blocks = 150000
	alone, err := RunMany(Config{
		Population: multiAgent(t, 0.3),
		Gamma:      0.5,
		Blocks:     blocks,
		Seed:       77,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	contested, err := RunMany(Config{
		Population: multiAgent(t, 0.3, 0.3),
		Gamma:      0.5,
		Blocks:     blocks,
		Seed:       78,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sole1 := alone.AbsoluteOf(1, core.Scenario1).Mean()
	rival1 := contested.AbsoluteOf(1, core.Scenario1).Mean()
	if rival1 <= sole1 {
		t.Errorf("scenario 1: pool 1 earns %v against a rival, %v alone; staling should lower difficulty and raise revenue",
			rival1, sole1)
	}
	sole2 := alone.AbsoluteOf(1, core.Scenario2).Mean()
	rival2 := contested.AbsoluteOf(1, core.Scenario2).Mean()
	if rival2 >= sole2 {
		t.Errorf("scenario 2 (EIP100): pool 1 earns %v against a rival, %v alone; counting uncles should blunt the rivalry",
			rival2, sole2)
	}
	staleFraction := func(s Series) float64 {
		var stale, total float64
		for i := range s.Runs {
			r := &s.Runs[i]
			stale += float64(r.StaleCount)
			total += float64(r.RegularCount + r.UncleCount + r.StaleCount)
		}
		return stale / total
	}
	if lone, dueling := staleFraction(alone), staleFraction(contested); dueling < 5*lone {
		t.Errorf("stale fraction %v with a rival vs %v alone; dueling pools should waste far more blocks",
			dueling, lone)
	}
}

// TestHeterogeneousStrategiesRun pins the mixed-strategy configuration:
// one Algorithm-1 attacker against one honest-control pool; the control
// pool behaves like the honest crowd (its revenue tracks the crowd's
// per-power rate, below its alpha because the attacker steals time share).
func TestHeterogeneousStrategiesRun(t *testing.T) {
	r := run(t, Config{
		Population: multiAgent(t, 0.3, 0.2),
		Gamma:      0.5,
		Blocks:     100000,
		Seed:       221,
		Strategies: []Strategy{Algorithm1{}, HonestStrategy{}},
	})
	attacker := r.AbsoluteOf(1, core.Scenario1)
	control := r.AbsoluteOf(2, core.Scenario1)
	crowd := r.AbsoluteOf(mining.HonestPool, core.Scenario1)
	// Pool 2 mines honestly with 0.2 power over a crowd of 0.5: its
	// revenue per unit power must match the crowd's (within noise).
	if math.Abs(control/0.2-crowd/0.5) > 0.05 {
		t.Errorf("control pool rate %v differs from crowd rate %v", control/0.2, crowd/0.5)
	}
	if attacker <= 0 || control <= 0 {
		t.Errorf("degenerate revenues: attacker %v, control %v", attacker, control)
	}
	// At alpha = 0.3, gamma = 0.5 Algorithm 1 is profitable (Fig. 8):
	// the attacker clears its alpha even with a control pool present.
	if attacker <= 0.3 {
		t.Errorf("attacker revenue %v should exceed its alpha 0.3", attacker)
	}
}

// TestGammaSplitsAcrossTiedPools exercises the multi-branch tie rule.
// Unlike the single-pool setting — where gamma = 1 eliminates pool uncles
// entirely — two competing pools stale each other's blocks in pool-vs-pool
// ties no matter how honest miners break them, so pool uncles persist at
// every gamma; raising gamma must still shrink their number, because the
// pool-vs-honest ties are resolved toward the pools.
func TestGammaSplitsAcrossTiedPools(t *testing.T) {
	uncles := func(gamma float64, seed uint64) int64 {
		series, err := RunMany(Config{
			Population: multiAgent(t, 0.25, 0.25),
			Gamma:      gamma,
			Blocks:     50000,
			Seed:       seed,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := range series.Runs {
			total += series.Runs[i].PoolUncleDistances.Total()
		}
		return total
	}
	favored := uncles(1, 231)
	spurned := uncles(0, 233)
	if favored == 0 {
		t.Error("gamma=1: expected pool-vs-pool ties to still stale pool blocks")
	}
	if favored >= spurned {
		t.Errorf("gamma=1 produced %d pool uncles, gamma=0 %d; higher gamma should shed fewer",
			favored, spurned)
	}
}
