package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

// The streaming overlay promises bit-identity with the one-shot settlement
// for every Result field except Steady, whose start rounds down to a
// cumulative snapshot; while the snapshot interval is still one block (runs
// short enough that the settled chain fits the ring) even Steady is exact.
// These tests pin that promise across every engine mode the overlay touches:
// timeless and timed, both difficulty rules, fast-forward, uncle caps,
// multi-pool and 1000-miner populations, and the Bitcoin window=1 boundary.

// streamEquivCase is one pinned configuration; exact marks runs short enough
// that the Steady snapshot interval stays at one block, making the whole
// Result (Steady included) bit-identical.
type streamEquivCase struct {
	name  string
	cfg   Config
	exact bool
}

func streamEquivCases(t *testing.T) []streamEquivCase {
	t.Helper()
	multi, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := mining.Equal(1000, 350)
	if err != nil {
		t.Fatal(err)
	}
	timed := func(rule difficulty.Rule, blocks int) Config {
		cfg := timedConfig(t, 0.35, blocks, rule)
		return cfg
	}
	return []streamEquivCase{
		{
			name:  "timeless-1pool",
			cfg:   Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 20000, Seed: 7},
			exact: true,
		},
		{
			name:  "timeless-2pool",
			cfg:   Config{Population: multi, Gamma: 0.5, Blocks: 20000, Seed: 7},
			exact: true,
		},
		{
			name:  "timeless-unclecap",
			cfg:   Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 20000, Seed: 7, MaxUnclesPerBlock: 2},
			exact: true,
		},
		{
			name:  "timeless-1000miners",
			cfg:   Config{Population: equal, Gamma: 0.5, Blocks: 20000, Seed: 7},
			exact: true,
		},
		{
			name:  "timeless-bitcoin-window1",
			cfg:   Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 20000, Seed: 7, Schedule: rewards.Bitcoin()},
			exact: true,
		},
		{name: "timed-eip100", cfg: timed(difficulty.EIP100, 2000), exact: true},
		{name: "timed-bitcoinstyle", cfg: timed(difficulty.BitcoinStyle, 2000), exact: true},
		{name: "timed-eip100-long", cfg: timed(difficulty.EIP100, 30000), exact: false},
		{
			name:  "fastforward",
			cfg:   Config{Population: twoAgent(t, 0.15), Gamma: 0.5, Blocks: 20000, Seed: 909, FastForward: true},
			exact: true,
		},
		{
			name: "fastforward-timed-static",
			cfg: Config{
				Population:  twoAgent(t, 0.15),
				Gamma:       0.5,
				Blocks:      2000,
				Seed:        909,
				FastForward: true,
				Time: TimeConfig{
					Enabled:    true,
					Difficulty: difficulty.Params{Rule: difficulty.Static},
				},
			},
			exact: true,
		},
	}
}

// diffResults reports every Result field where got diverges from want,
// field by field so a failure names the broken invariant directly.
func diffResults(t *testing.T, want, got Result) {
	t.Helper()
	wv, gv := reflect.ValueOf(want), reflect.ValueOf(got)
	typ := reflect.TypeOf(want)
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("field %s diverges:\n one-shot: %+v\nstreaming: %+v",
				typ.Field(i).Name, wv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
}

// TestStreamingEquivalence pins the streaming overlay bit for bit against
// the one-shot settlement at the same seed, and again with the runtime
// auditor enabled (exercising the streaming conservation and clamped
// timestamp audits along the way).
func TestStreamingEquivalence(t *testing.T) {
	for _, c := range streamEquivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			base, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}

			streamCfg := c.cfg
			streamCfg.Streaming = true
			stream, err := Run(streamCfg)
			if err != nil {
				t.Fatal(err)
			}

			auditCfg := streamCfg
			auditCfg.Audit = AuditConfig{Enabled: true, SampleEvery: 512}
			audited, err := Run(auditCfg)
			if err != nil {
				t.Fatal(err)
			}

			want := base
			if !c.exact {
				// Long timed runs overflow the snapshot ring: Steady's
				// start rounds down to a coarser snapshot, so it is
				// compared by rate below instead of bit for bit.
				want.Steady = Window{}
				stream.Steady, audited.Steady = Window{}, Window{}
			}
			if !reflect.DeepEqual(want, stream) {
				diffResults(t, want, stream)
			}
			if !reflect.DeepEqual(want, audited) {
				t.Error("audited streaming run diverges from unaudited:")
				diffResults(t, want, audited)
			}
		})
	}
}

// TestStreamingSteadyApproximation bounds the only intentional divergence:
// on a run long enough to coarsen the snapshot ring, the streaming Steady
// window must still start at or below the one-shot midpoint, stay within a
// ring-granularity margin of it, and report reward rates within a fraction
// of a percent of the exact window's.
func TestStreamingSteadyApproximation(t *testing.T) {
	cfg := timedConfig(t, 0.35, 30000, difficulty.EIP100)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Streaming = true
	stream, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	bs, ss := base.Steady, stream.Steady
	if ss.End != bs.End {
		t.Errorf("steady end %v, one-shot %v", ss.End, bs.End)
	}
	if ss.Start > bs.Start {
		t.Errorf("steady start %v after one-shot midpoint %v (must round down)", ss.Start, bs.Start)
	}
	if ss.Regular < bs.Regular {
		t.Errorf("steady window regulars %d, one-shot %d: rounding down must only widen", ss.Regular, bs.Regular)
	}
	// The ring keeps at least maxStreamSnaps/2 snapshots, so the start can
	// overshoot the midpoint by at most ~2/maxStreamSnaps of the chain.
	margin := 4*base.RegularCount/maxStreamSnaps + 1
	if ss.Regular > bs.Regular+margin {
		t.Errorf("steady window regulars %d exceed one-shot %d by more than the ring margin %d",
			ss.Regular, bs.Regular, margin)
	}
	for pool := range bs.ByPool {
		got, want := ss.RateOf(mining.PoolID(pool)), bs.RateOf(mining.PoolID(pool))
		if math.Abs(got-want) > 0.01*math.Max(want, 1e-9) {
			t.Errorf("pool %d steady rate %v, one-shot %v (tolerance 1%%)", pool, got, want)
		}
	}
}

// allocDelta measures the heap bytes allocated while f runs. TotalAlloc is
// monotone and GC-independent, so the measurement is stable.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamingMemoryIsWindowBounded pins the tentpole property: on a
// warmed Runner a streaming run's allocations are bounded by the race
// window and the Result size, not the run length — quadrupling the block
// count must not even double the allocated bytes. (The one-shot path grows
// its tree arrays with the run and fails this bound by design.)
func TestStreamingMemoryIsWindowBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon memory measurement")
	}
	cfg := func(blocks int) Config {
		return Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: blocks, Seed: 3, Streaming: true}
	}
	var runner Runner
	if _, err := runner.Run(cfg(50000)); err != nil { // warm all reusable storage
		t.Fatal(err)
	}
	measure := func(blocks int) uint64 {
		return allocDelta(func() {
			if _, err := runner.Run(cfg(blocks)); err != nil {
				t.Fatal(err)
			}
		})
	}
	d100 := measure(100000)
	d400 := measure(400000)
	// Generous slack for occupancy maps and Result copies; the point is
	// the asymptote, not the constant.
	if d400 > 2*d100+1<<20 {
		t.Errorf("4x blocks allocated %d bytes vs %d at 1x: memory grows with the run, not the window", d400, d100)
	}
}

// TestStreamingRejectsTrace pins the RunTrace guard: tracing needs the full
// block tree, which streaming evicts.
func TestStreamingRejectsTrace(t *testing.T) {
	cfg := Config{Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 100, Seed: 1, Streaming: true}
	if _, _, err := RunTrace(cfg); err == nil {
		t.Fatal("RunTrace accepted a streaming config")
	}
}

// TestStreamingRunnerReuse pins Runner reuse across mode flips: a Runner
// must produce identical results switching streaming on, off, and on again
// (stale overlay state from a previous run must never leak).
func TestStreamingRunnerReuse(t *testing.T) {
	plain := Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 5000, Seed: 21}
	streaming := plain
	streaming.Streaming = true

	var runner Runner
	first, err := runner.Run(streaming)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := runner.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	again, err := runner.Run(streaming)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(first, again) {
		t.Error("streaming runs on a reused Runner diverge:")
		diffResults(t, first, again)
	}
	if !reflect.DeepEqual(first, mid) {
		t.Error("one-shot run sandwiched between streaming runs diverges:")
		diffResults(t, mid, first)
	}
}
