package sim

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/parallel"
	"github.com/ethselfish/ethselfish/internal/stats"
)

// Result summarizes one simulation run. Counts refer to the settled chain:
// the race still in flight when the run ends is excluded.
type Result struct {
	// Alpha is the population's selfish hash-power fraction.
	Alpha float64

	// Blocks is the number of simulated block events.
	Blocks int

	// Pool and Honest aggregate rewards by camp.
	Pool   chain.Reward
	Honest chain.Reward

	// PerMiner holds each miner's reward tally.
	PerMiner map[chain.MinerID]chain.Reward

	// RegularCount, UncleCount and StaleCount classify settled blocks.
	RegularCount int
	UncleCount   int
	StaleCount   int

	// PoolUncleDistances and HonestUncleDistances count realized
	// reference distances by the uncle's camp.
	PoolUncleDistances   stats.Counter
	HonestUncleDistances stats.Counter

	// Occupancy counts block events by the (Ls, Lh) state observed just
	// before the event; normalizing estimates the stationary
	// distribution.
	Occupancy map[core.State]int64
}

// normalizer returns the scenario's block count (regular, or regular plus
// referenced uncles).
func (r Result) normalizer(s core.Scenario) float64 {
	n := float64(r.RegularCount)
	if s == core.Scenario2 {
		n += float64(r.UncleCount)
	}
	return n
}

// PoolAbsolute returns the pool's absolute revenue per rescaled time unit,
// the quantity plotted in Fig. 8 (scenario 1 divides by regular blocks,
// scenario 2 by regular plus uncle blocks).
func (r Result) PoolAbsolute(s core.Scenario) float64 {
	n := r.normalizer(s)
	if n == 0 {
		return 0
	}
	return r.Pool.Total() / n
}

// HonestAbsolute returns the honest miners' absolute revenue per rescaled
// time unit.
func (r Result) HonestAbsolute(s core.Scenario) float64 {
	n := r.normalizer(s)
	if n == 0 {
		return 0
	}
	return r.Honest.Total() / n
}

// TotalAbsolute returns the system-wide absolute revenue per rescaled time
// unit (the "Total" series of Fig. 9).
func (r Result) TotalAbsolute(s core.Scenario) float64 {
	return r.PoolAbsolute(s) + r.HonestAbsolute(s)
}

// PoolShare returns the pool's relative share of all rewards.
func (r Result) PoolShare() float64 {
	total := r.Pool.Total() + r.Honest.Total()
	if total == 0 {
		return 0
	}
	return r.Pool.Total() / total
}

// StateProbability estimates the stationary probability of state s from the
// occupancy counts.
func (r Result) StateProbability(s core.State) float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.Occupancy[s]) / float64(r.Blocks)
}

// Run executes one simulation and settles it.
func Run(cfg Config) (Result, error) {
	result, _, err := RunTrace(cfg)
	return result, err
}

// RunTrace executes one simulation and additionally returns the full block
// tree, for trace export and post-hoc analysis. The tree retains every
// block including losers of resolved races and the pool's never-published
// blocks.
func RunTrace(cfg Config) (Result, *chain.Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, nil, err
	}
	s := newSimulator(cfg)
	if err := s.run(); err != nil {
		return Result{}, nil, err
	}

	settlement, err := s.tree.Settle(s.base, cfg.Schedule)
	if err != nil {
		return Result{}, nil, fmt.Errorf("sim: settling: %w", err)
	}

	selfish := make(map[chain.MinerID]bool, cfg.Population.Len())
	for _, m := range cfg.Population.Miners() {
		selfish[m.ID] = m.Selfish
	}

	result := Result{
		Alpha:        cfg.Population.Alpha(),
		Blocks:       cfg.Blocks,
		PerMiner:     settlement.PerMiner,
		RegularCount: settlement.RegularCount,
		UncleCount:   settlement.UncleCount,
		StaleCount:   settlement.StaleCount,
		Occupancy:    s.occupancy,
	}
	for id, reward := range settlement.PerMiner {
		if selfish[id] {
			result.Pool = result.Pool.Add(reward)
		} else {
			result.Honest = result.Honest.Add(reward)
		}
	}
	for _, ref := range settlement.Refs {
		if !cfg.Schedule.Referenceable(ref.Distance) {
			continue
		}
		uncleMiner := s.tree.Block(ref.Uncle).Miner
		if selfish[uncleMiner] {
			result.PoolUncleDistances.Observe(ref.Distance)
		} else {
			result.HonestUncleDistances.Observe(ref.Distance)
		}
	}
	return result, s.tree, nil
}

// Series summarizes repeated runs of one configuration: per-metric
// accumulators over independent seeds.
type Series struct {
	// Runs holds the individual results.
	Runs []Result
}

// DeriveSeed returns the seed of run i in a batch rooted at base. Runs
// within a batch get consecutive seeds — independent streams, because
// rng.New expands every seed through splitmix64 — while the golden-ratio
// multiplier spreads different bases apart so nearby base seeds cannot
// produce overlapping batches. It is exported so external schedulers (the
// experiments grid runner) can reproduce RunMany's per-run streams exactly.
func DeriveSeed(base uint64, i int) uint64 {
	return base*0x9E3779B97F4A7C15 + uint64(i)
}

// RunMany executes runs independent simulations with seeds derived from
// cfg.Seed. Runs are fanned out across cfg.Parallelism worker goroutines
// (default GOMAXPROCS); because every run is seeded independently via
// DeriveSeed and results are collected by run index, the returned Series is
// bit-identical to a sequential execution.
func RunMany(cfg Config, runs int) (Series, error) {
	if runs <= 0 {
		return Series{}, fmt.Errorf("%w: runs %d must be positive", ErrBadConfig, runs)
	}
	results, err := parallel.Map(cfg.Parallelism, runs, func(i int) (Result, error) {
		runCfg := cfg
		runCfg.Seed = DeriveSeed(cfg.Seed, i)
		return Run(runCfg)
	})
	if err != nil {
		return Series{}, err
	}
	return Series{Runs: results}, nil
}

// Mean aggregates a metric over the runs and returns its accumulator.
func (s Series) Mean(metric func(Result) float64) stats.Accumulator {
	var acc stats.Accumulator
	for _, r := range s.Runs {
		acc.Add(metric(r))
	}
	return acc
}

// PoolAbsolute returns mean and std-error statistics of the pool's absolute
// revenue across runs.
func (s Series) PoolAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r Result) float64 { return r.PoolAbsolute(scenario) })
}

// HonestAbsolute returns statistics of the honest absolute revenue.
func (s Series) HonestAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r Result) float64 { return r.HonestAbsolute(scenario) })
}

// TotalAbsolute returns statistics of the total absolute revenue.
func (s Series) TotalAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r Result) float64 { return r.TotalAbsolute(scenario) })
}

// HonestUncleDistribution merges the honest uncle-distance counters of all
// runs and returns the distribution over distances 1..max.
func (s Series) HonestUncleDistribution(max int) stats.Distribution {
	var merged stats.Counter
	for i := range s.Runs {
		merged.Merge(&s.Runs[i].HonestUncleDistances)
	}
	return merged.Distribution(max)
}
