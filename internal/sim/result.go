package sim

import (
	"context"
	"fmt"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/parallel"
	"github.com/ethselfish/ethselfish/internal/stats"
)

// ResultSchemaVersion identifies the serialized Result row schema. Stores
// that persist Result rows (the experiments checkpoint journal, the
// resultcache disk journal) stamp it into their headers and refuse files
// written under any other version, so a schema change can never make an
// old row decode into a subtly different new Result. Bump it whenever the
// field set of Result (or of anything it embeds) changes; the schema pin
// test in schema_test.go fails until the change is acknowledged there.
const ResultSchemaVersion = 1

// Result summarizes one simulation run. Counts refer to the settled chain:
// races still in flight when the run ends are excluded.
type Result struct {
	// Alpha is the population's total selfish hash-power fraction (all
	// pools combined).
	Alpha float64

	// Blocks is the number of simulated block events.
	Blocks int

	// Pool and Honest aggregate rewards by camp: Pool sums every
	// colluding pool, Honest is the protocol-following crowd.
	Pool   chain.Reward
	Honest chain.Reward

	// ByPool is the per-pool reward tally, indexed by PoolID (entry 0 is
	// the honest crowd, so ByPool[0] == Honest and the remaining entries
	// sum to Pool).
	ByPool []chain.Reward

	// MinerRewards is the dense per-miner tally, indexed by MinerID
	// (IDs at or beyond its length earned nothing); MinerSeen marks the
	// IDs that appeared in the settlement. PerMiner is the map view.
	MinerRewards []chain.Reward
	MinerSeen    []bool

	// RegularCount, UncleCount and StaleCount classify settled blocks.
	RegularCount int
	UncleCount   int
	StaleCount   int

	// PoolUncleDistances and HonestUncleDistances count realized
	// reference distances by the uncle's camp (all pools combined).
	PoolUncleDistances   stats.Counter
	HonestUncleDistances stats.Counter

	// EventsByPool counts block-creation events by producing pool (entry 0
	// is the honest crowd); the entries sum to Blocks. Unlike the reward
	// tallies it is a pre-settlement count, so the selfish share of events
	// (see SelfishEventShare) is an average of Blocks i.i.d. indicators
	// with exactly known mean Alpha — the control-variate statistic the
	// variance-reduced estimators in internal/experiments regress against.
	EventsByPool []int64

	// OccupancyByPool counts block events by the (Ls, Lh) race frame
	// each pool observed just before the event, indexed by PoolID-1;
	// normalizing estimates the pool's stationary distribution. For a
	// poolless population it holds one entry pinned to state (0, 0).
	// It is materialized once per run from the simulator's pool-indexed
	// dense occupancy grids.
	OccupancyByPool []map[core.State]int64

	// Occupancy is the first pool's frame occupancy — the paper's
	// (Ls, Lh) state counts in the single-pool setting. It aliases
	// OccupancyByPool[0]. Serialization skips it for exactly that reason:
	// decoders rebuild the alias from OccupancyByPool (see
	// RestoreAliases) instead of materializing a second copy.
	Occupancy map[core.State]int64 `json:"-"`

	// The remaining fields exist only when the run's TimeConfig was
	// enabled; a timeless run leaves them zero.

	// Elapsed is the total simulated time: the clock after the last
	// block event.
	Elapsed float64

	// SettledTime is the timestamp of the consensus floor — the time
	// span the settled rewards accrued over (races still in flight at
	// the end of the run are excluded from both).
	SettledTime float64

	// InitialDifficulty and FinalDifficulty bracket the difficulty
	// trajectory; Retargets counts the adjustments applied (epoch
	// boundaries for the Bitcoin-style rule, observed blocks for EIP100,
	// zero for the static regime).
	InitialDifficulty float64
	FinalDifficulty   float64
	Retargets         int

	// Early and Steady are the before/after-adjustment windows of the
	// settled chain: Early covers its first min(epoch, settled) regular
	// blocks — the difficulty regime before the first Bitcoin-style
	// retarget (and, for EIP100, at most one epoch of 1/epoch-gain
	// steps) — and Steady covers its trailing half, where the controller
	// has converged. The profitability question "does selfish mining
	// actually pay?" is RateOf compared across these two windows.
	Early, Steady Window
}

// RestoreAliases rebuilds the intra-Result aliases a serialized Result
// drops (Occupancy aliasing OccupancyByPool[0]). Decoders must call it
// after unmarshaling for the Result to be indistinguishable from a freshly
// computed one.
func (r *Result) RestoreAliases() {
	if len(r.OccupancyByPool) > 0 {
		r.Occupancy = r.OccupancyByPool[0]
	} else {
		r.Occupancy = nil
	}
}

// MinerReward returns one miner's settled tally (zero if it earned
// nothing).
func (r *Result) MinerReward(id chain.MinerID) chain.Reward {
	return chain.MinerRewardAt(r.MinerRewards, id)
}

// PerMiner returns the map view of the per-miner tallies: every miner that
// appeared in the settlement, keyed by ID. It is built on demand;
// iteration-heavy callers should use the dense MinerRewards directly.
func (r *Result) PerMiner() map[chain.MinerID]chain.Reward {
	return chain.PerMinerView(r.MinerRewards, r.MinerSeen)
}

// SelfishEventShare returns the fraction of block-creation events produced
// by any colluding pool. Its exact expectation is Alpha (each event's
// producer is an independent hash-power draw), which makes it the natural
// control variate for any per-run metric: the regression residual removes
// the sampling noise that the event draw sequence and the metric share.
func (r *Result) SelfishEventShare() float64 {
	if r.Blocks == 0 || len(r.EventsByPool) == 0 {
		return 0
	}
	var selfish int64
	for _, n := range r.EventsByPool[1:] {
		selfish += n
	}
	return float64(selfish) / float64(r.Blocks)
}

// normalizer returns the scenario's block count (regular, or regular plus
// referenced uncles).
func (r *Result) normalizer(s core.Scenario) float64 {
	n := float64(r.RegularCount)
	if s == core.Scenario2 {
		n += float64(r.UncleCount)
	}
	return n
}

// PoolAbsolute returns the pool's absolute revenue per rescaled time unit,
// the quantity plotted in Fig. 8 (scenario 1 divides by regular blocks,
// scenario 2 by regular plus uncle blocks).
func (r *Result) PoolAbsolute(s core.Scenario) float64 {
	n := r.normalizer(s)
	if n == 0 {
		return 0
	}
	return r.Pool.Total() / n
}

// HonestAbsolute returns the honest miners' absolute revenue per rescaled
// time unit.
func (r *Result) HonestAbsolute(s core.Scenario) float64 {
	n := r.normalizer(s)
	if n == 0 {
		return 0
	}
	return r.Honest.Total() / n
}

// TotalAbsolute returns the system-wide absolute revenue per rescaled time
// unit (the "Total" series of Fig. 9).
func (r *Result) TotalAbsolute(s core.Scenario) float64 {
	return r.PoolAbsolute(s) + r.HonestAbsolute(s)
}

// PoolShare returns the pools' combined relative share of all rewards.
func (r *Result) PoolShare() float64 {
	total := r.Pool.Total() + r.Honest.Total()
	if total == 0 {
		return 0
	}
	return r.Pool.Total() / total
}

// RewardOf returns one pool's settled reward tally (pool 0: the honest
// crowd; labels beyond the population earned nothing).
func (r *Result) RewardOf(pool mining.PoolID) chain.Reward {
	if pool < 0 || int(pool) >= len(r.ByPool) {
		return chain.Reward{}
	}
	return r.ByPool[pool]
}

// AbsoluteOf returns one pool's absolute revenue per rescaled time unit
// under the given scenario — the per-pool counterpart of PoolAbsolute.
func (r *Result) AbsoluteOf(pool mining.PoolID, s core.Scenario) float64 {
	n := r.normalizer(s)
	if n == 0 {
		return 0
	}
	return r.RewardOf(pool).Total() / n
}

// ShareOf returns one pool's relative share of all rewards.
func (r *Result) ShareOf(pool mining.PoolID) float64 {
	total := r.Pool.Total() + r.Honest.Total()
	if total == 0 {
		return 0
	}
	return r.RewardOf(pool).Total() / total
}

// RateOf returns one pool's time-averaged absolute reward rate (reward per
// unit time) over the whole settled chain: the time-domain counterpart of
// AbsoluteOf, and zero in timeless runs. Pool 0 is the honest crowd.
func (r *Result) RateOf(pool mining.PoolID) float64 {
	return safeRate(r.RewardOf(pool).Total(), r.SettledTime)
}

// TotalRate returns the system-wide absolute reward rate over the settled
// chain (zero in timeless runs) — the issuance rate a difficulty rule is
// supposed to keep bounded.
func (r *Result) TotalRate() float64 {
	return safeRate(r.Pool.Total()+r.Honest.Total(), r.SettledTime)
}

// StateProbability estimates the stationary probability of state s from the
// occupancy counts.
func (r *Result) StateProbability(s core.State) float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.Occupancy[s]) / float64(r.Blocks)
}

// Runner executes simulations while reusing one simulator's storage — the
// block tree, uncle arena, candidate window, occupancy grid, and scratch
// buffers — across runs. Batch drivers hold one Runner per worker so run
// restarts stop re-allocating (and re-zeroing) ~100k-block storage; results
// are bit-identical to fresh Run calls because init resets all run state
// and reseeds the generator. A Runner is not safe for concurrent use.
type Runner struct {
	s simulator
}

// NewRunner returns an empty Runner; the first Run sizes its storage.
func NewRunner() *Runner {
	return &Runner{}
}

// Run executes one simulation, reusing the Runner's storage, and settles
// it. The returned Result owns all of its data (nothing aliases the reused
// buffers).
func (rn *Runner) Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	rn.s.init(cfg)
	return settleRun(&rn.s)
}

// Reset clears every trace of the previous run — including one that failed
// partway, e.g. on a strategy's invalid reaction — while keeping the
// allocated storage for reuse. Run resets implicitly (init rewinds all run
// state before every run, which is what makes reuse after a failure safe);
// Reset exists so long-lived holders can drop a failed run's state
// eagerly instead of carrying it until the next Run.
func (rn *Runner) Reset() {
	s := &rn.s
	s.recent = s.recent[:0]
	s.recentHead = 0
	s.forkChildren = s.forkChildren[:0]
	s.referencedInWindow = 0
	for i := range s.pools {
		s.pools[i].blocks = s.pools[i].blocks[:0]
		s.pools[i].published = 0
	}
	s.pools = s.pools[:0]
	if s.published != nil {
		s.published = s.published[:0]
		s.inRecent = s.inRecent[:0]
	}
	s.cfg = Config{}
	s.aud = nil
	s.ctrl = nil
	s.str = nil
	s.idBase = 0
}

// Run executes one simulation and settles it.
func Run(cfg Config) (Result, error) {
	return NewRunner().Run(cfg)
}

// RunTrace executes one simulation and additionally returns the full block
// tree, for trace export and post-hoc analysis. The tree retains every
// block including losers of resolved races and the pool's never-published
// blocks — which is why streaming runs (whose tree is evicted as it
// settles) are rejected.
func RunTrace(cfg Config) (Result, *chain.Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, nil, err
	}
	if cfg.Streaming {
		return Result{}, nil, fmt.Errorf(
			"%w: RunTrace needs the full block tree; disable Streaming", ErrBadConfig)
	}
	var s simulator
	s.init(cfg)
	result, err := settleRun(&s)
	if err != nil {
		return Result{}, nil, err
	}
	return result, s.tree, nil
}

// settleRun drives an initialized simulator through its run and settles the
// final tree into a self-contained Result. The chain is settled at the
// consensus floor, so every race still in flight is excluded.
func settleRun(s *simulator) (Result, error) {
	if err := s.run(); err != nil {
		return Result{}, err
	}
	// A sparse audit sample still checks the exact state being settled.
	if err := s.auditFinal(); err != nil {
		return Result{}, err
	}
	if s.str != nil {
		return settleStream(s)
	}
	cfg := s.cfg
	settlement, err := s.tree.Settle(s.consensusFloor(), cfg.Schedule)
	if err != nil {
		return Result{}, fmt.Errorf("sim: settling: %w", err)
	}

	pop := cfg.Population
	result := Result{
		Alpha:           pop.Alpha(),
		Blocks:          cfg.Blocks,
		ByPool:          make([]chain.Reward, pop.NumPools()+1),
		MinerRewards:    settlement.MinerRewards,
		MinerSeen:       settlement.MinerSeen,
		RegularCount:    settlement.RegularCount,
		UncleCount:      settlement.UncleCount,
		StaleCount:      settlement.StaleCount,
		EventsByPool:    append([]int64(nil), s.events...),
		OccupancyByPool: make([]map[core.State]int64, len(s.occ)),
	}
	for i := range s.occ {
		result.OccupancyByPool[i] = s.occupancyMap(i)
	}
	result.Occupancy = result.OccupancyByPool[0]
	// Summing the dense tallies in ID order keeps the float accumulation
	// order deterministic (the map view has no stable order).
	for id, reward := range settlement.MinerRewards {
		pool := pop.PoolOf(chain.MinerID(id))
		result.ByPool[pool] = result.ByPool[pool].Add(reward)
		if pool != mining.HonestPool {
			result.Pool = result.Pool.Add(reward)
		} else {
			result.Honest = result.Honest.Add(reward)
		}
	}
	for _, ref := range settlement.Refs {
		if !cfg.Schedule.Referenceable(ref.Distance) {
			continue
		}
		if pop.IsSelfish(s.tree.MinerOf(ref.Uncle)) {
			result.PoolUncleDistances.Observe(ref.Distance)
		} else {
			result.HonestUncleDistances.Observe(ref.Distance)
		}
	}
	if s.timing {
		result.Elapsed = s.clock
		result.SettledTime = s.tree.TimeOf(settlement.Tip)
		result.InitialDifficulty = cfg.Time.Difficulty.Initial
		result.FinalDifficulty = s.currentDifficulty()
		if s.ctrl != nil {
			result.Retargets = s.ctrl.Retargets()
		}
		s.timeWindows(&result, settlement.Tip)
	}
	return result, nil
}

// Series summarizes repeated runs of one configuration: per-metric
// accumulators over independent seeds.
type Series struct {
	// Runs holds the individual results.
	Runs []Result
}

// DeriveSeed returns the seed of run i in a batch rooted at base. Runs
// within a batch get consecutive seeds — independent streams, because
// rng.New expands every seed through splitmix64 — while the golden-ratio
// multiplier spreads different bases apart so nearby base seeds cannot
// produce overlapping batches. It is exported so external schedulers (the
// experiments grid runner) can reproduce RunMany's per-run streams exactly.
func DeriveSeed(base uint64, i int) uint64 {
	return base*0x9E3779B97F4A7C15 + uint64(i)
}

// RunMany executes runs independent simulations with seeds derived from
// cfg.Seed. Runs are fanned out across cfg.Parallelism worker goroutines
// (default GOMAXPROCS), each reusing one Runner for all the runs it
// executes; because every run is seeded independently via DeriveSeed,
// Runner reuse resets all run state, and results are collected by run
// index, the returned Series is bit-identical to a sequential execution
// with fresh simulators.
func RunMany(cfg Config, runs int) (Series, error) {
	if runs <= 0 {
		return Series{}, fmt.Errorf("%w: runs %d must be positive", ErrBadConfig, runs)
	}
	results, err := parallel.MapWith(cfg.Parallelism, runs, NewRunner,
		func(rn *Runner, i int) (Result, error) {
			runCfg := cfg
			runCfg.Seed = DeriveSeed(cfg.Seed, i)
			return rn.Run(runCfg)
		})
	if err != nil {
		return Series{}, err
	}
	return Series{Runs: results}, nil
}

// RunManyCtx is RunMany under a context: cancellation (or an expired
// deadline) stops dispatching pending runs while in-flight runs finish.
// Unlike RunMany it returns the partial Series alongside a non-nil error —
// done[i] reports whether run i completed, and every completed run's Result
// is bit-identical to what an uninterrupted batch would have produced (runs
// are independently seeded via DeriveSeed).
func RunManyCtx(ctx context.Context, cfg Config, runs int) (Series, []bool, error) {
	if runs <= 0 {
		return Series{}, nil, fmt.Errorf("%w: runs %d must be positive", ErrBadConfig, runs)
	}
	results, done, err := parallel.MapWithCtx(ctx, cfg.Parallelism, runs, NewRunner,
		func(rn *Runner, i int) (Result, error) {
			runCfg := cfg
			runCfg.Seed = DeriveSeed(cfg.Seed, i)
			return rn.Run(runCfg)
		})
	return Series{Runs: results}, done, err
}

// Mean aggregates a metric over the runs and returns its accumulator. The
// metric receives each run in place — Results carry dense tallies and
// occupancy maps, so aggregation never copies them.
func (s Series) Mean(metric func(*Result) float64) stats.Accumulator {
	var acc stats.Accumulator
	for i := range s.Runs {
		acc.Add(metric(&s.Runs[i]))
	}
	return acc
}

// PoolAbsolute returns mean and std-error statistics of the pool's absolute
// revenue across runs.
func (s Series) PoolAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.PoolAbsolute(scenario) })
}

// HonestAbsolute returns statistics of the honest absolute revenue.
func (s Series) HonestAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.HonestAbsolute(scenario) })
}

// TotalAbsolute returns statistics of the total absolute revenue.
func (s Series) TotalAbsolute(scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.TotalAbsolute(scenario) })
}

// AbsoluteOf returns statistics of one pool's absolute revenue across runs
// (pool 0: the honest crowd).
func (s Series) AbsoluteOf(pool mining.PoolID, scenario core.Scenario) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.AbsoluteOf(pool, scenario) })
}

// RateOf returns statistics of one pool's time-averaged absolute reward
// rate across runs (pool 0: the honest crowd). Only meaningful for timed
// configurations.
func (s Series) RateOf(pool mining.PoolID) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.RateOf(pool) })
}

// TotalRate returns statistics of the system-wide absolute reward rate.
func (s Series) TotalRate() stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.TotalRate() })
}

// EarlyRateOf and SteadyRateOf return statistics of one pool's absolute
// reward rate inside the before- and after-adjustment windows.
func (s Series) EarlyRateOf(pool mining.PoolID) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.Early.RateOf(pool) })
}

// SteadyRateOf returns statistics of one pool's steady-window reward rate.
func (s Series) SteadyRateOf(pool mining.PoolID) stats.Accumulator {
	return s.Mean(func(r *Result) float64 { return r.Steady.RateOf(pool) })
}

// HonestUncleDistribution merges the honest uncle-distance counters of all
// runs and returns the distribution over distances 1..max.
func (s Series) HonestUncleDistribution(max int) stats.Distribution {
	var merged stats.Counter
	for i := range s.Runs {
		merged.Merge(&s.Runs[i].HonestUncleDistances)
	}
	return merged.Distribution(max)
}
