package sim

import (
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// This file is the decision-table equivalence suite: the proof obligation
// behind the hot path's table loads is that a compiled DecisionTable is
// extensionally equal to the strategy it was compiled from — at every frame
// of the dense window, at overflow frames beyond it (where the table falls
// back to the live call), and across whole runs (tables on vs. off must be
// bit-identical, which is also why Config.NoDecisionTables is excluded from
// content addresses).

// sampleSpecs enumerates a covering sample of a definition's parameter
// space: for each parameter its minimum, default, midpoint, and maximum,
// crossed over all parameters. Registry families have at most three small
// parameters, so the product stays tiny.
func sampleSpecs(def StrategyDef) []StrategySpec {
	specs := []StrategySpec{{Name: def.Name}}
	for _, p := range def.Params {
		values := []int{p.Min, p.Default, p.Min + (p.Max-p.Min)/2, p.Max}
		seen := make(map[int]bool)
		var next []StrategySpec
		for _, v := range values {
			if seen[v] {
				continue
			}
			seen[v] = true
			for _, base := range specs {
				spec := StrategySpec{Name: def.Name, Params: map[string]int{p.Key: v}}
				for k, bv := range base.Params {
					spec.Params[k] = bv
				}
				next = append(next, spec)
			}
		}
		specs = next
	}
	return specs
}

// TestDecisionTableEquivalence compiles every registered strategy family
// across a covering sample of its parameter space and checks the table
// against the live strategy at every frame of the dense window plus a spray
// of overflow frames. Strategies are pure frame functions, so any
// discrepancy is a compilation bug, not nondeterminism.
func TestDecisionTableEquivalence(t *testing.T) {
	r := rng.New(7)
	for _, def := range StrategyDefs() {
		for _, spec := range sampleSpecs(def) {
			st, err := NewStrategy(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			table := CompileDecisionTable(st)
			check := func(ls, lh, published int) {
				if got, want := table.ReactToPool(ls, lh, published), st.ReactToPool(ls, lh, published); got != want {
					t.Fatalf("%s: ReactToPool(%d, %d, %d) = %+v via table, %+v live",
						spec, ls, lh, published, got, want)
				}
				if got, want := table.ReactToHonest(ls, lh, published), st.ReactToHonest(ls, lh, published); got != want {
					t.Fatalf("%s: ReactToHonest(%d, %d, %d) = %+v via table, %+v live",
						spec, ls, lh, published, got, want)
				}
			}
			// The full dense window, including the unreachable published >
			// ls corner the grid encodes anyway.
			for ls := 0; ls < tableDim; ls++ {
				for lh := 0; lh < tableDim; lh++ {
					for published := 0; published < tableDim; published++ {
						check(ls, lh, published)
					}
				}
			}
			// Overflow frames: at least one coordinate beyond the window,
			// where the table must route to the live strategy.
			for i := 0; i < 256; i++ {
				ls, lh := r.Intn(4*tableDim), r.Intn(4*tableDim)
				if ls < tableDim && lh < tableDim {
					ls += tableDim
				}
				check(ls, lh, r.Intn(ls+1))
			}
			// The precomputed engagement probe matches the live reaction at
			// the fast-forward origin frame.
			origin := st.ReactToHonest(0, 1, 0)
			want := reactionAllowed(origin, 0, 1, 0) && origin.Adopt && !origin.Commit
			if got := table.AdoptsAtOrigin(); got != want {
				t.Fatalf("%s: AdoptsAtOrigin() = %v, live origin reaction %+v", spec, got, origin)
			}
		}
	}
}

// TestDecisionTableRunBitIdentity pins the claim Config.NoDecisionTables
// documents (and the jobkey exclusion relies on): a full run with compiled
// tables is bit-identical to the same run on the live interface path, for
// every registered family and across the engine's modes (timeless, timed,
// fast-forwarded).
func TestDecisionTableRunBitIdentity(t *testing.T) {
	pop, err := mining.MultiAgent(0.25, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var fields [][]StrategySpec
	for _, def := range StrategyDefs() {
		specs := sampleSpecs(def)
		// Pair the family's default point and its most-parameterized sample
		// against an Algorithm-1 rival.
		fields = append(fields,
			[]StrategySpec{specs[0], MustStrategySpec("algorithm1")},
			[]StrategySpec{specs[len(specs)-1], MustStrategySpec("algorithm1")})
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		{"timeless", Config{}},
		{"timed", Config{Time: TimeConfig{Enabled: true}}},
		{"fastforward", Config{FastForward: true}},
	}
	for _, field := range fields {
		strategies, err := NewStrategies(field)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			cfg := mode.cfg
			cfg.Population = pop
			cfg.Strategies = strategies
			cfg.Gamma = 0.5
			cfg.Blocks = 4000
			cfg.Seed = 11
			tables, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%s (tables): %v", field, mode.name, err)
			}
			cfg.NoDecisionTables = true
			live, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%s (live): %v", field, mode.name, err)
			}
			if !reflect.DeepEqual(tables, live) {
				t.Fatalf("%v/%s: table and interface paths diverged", field, mode.name)
			}
		}
	}
}

// fuzzReactor is a deliberately hostile — but pure — strategy for compile
// fuzzing: its reaction is a deterministic hash of the frame, so it hits
// every reaction shape including illegal ones (commit while behind, publish
// past the branch, retract announced blocks, commit-and-adopt).
type fuzzReactor struct {
	a, b uint64
}

func (m fuzzReactor) Name() string { return "fuzz-reactor" }

func (m fuzzReactor) ReactToPool(ls, lh, published int) Reaction {
	return m.react(0x517CC1B727220A95, ls, lh, published)
}

func (m fuzzReactor) ReactToHonest(ls, lh, published int) Reaction {
	return m.react(0x2545F4914F6CDD1D, ls, lh, published)
}

func (m fuzzReactor) react(salt uint64, ls, lh, published int) Reaction {
	x := m.a ^ salt ^ uint64(ls)*0x9E3779B97F4A7C15 ^
		uint64(lh)*0xBF58476D1CE4E5B9 ^ uint64(published)*0x94D049BB133111EB
	x ^= x >> 31
	x *= m.b | 1
	x ^= x >> 29
	var r Reaction
	switch x % 6 {
	case 0:
		// keep mining
	case 1:
		r.Adopt = true
	case 2:
		r.Commit = true
	case 3:
		r.PublishTo = int((x >> 8) % (2 * tableDim))
	case 4:
		r.Adopt = true
		r.Commit = x&(1<<16) != 0
	case 5:
		r.Commit = true
		r.PublishTo = int((x >> 8) % tableDim)
	}
	return r
}

// canonicalReaction reduces a legal reaction to the single move
// applyReaction's precedence resolves it to.
func canonicalReaction(r Reaction) Reaction {
	switch {
	case r.Adopt:
		return Reaction{Adopt: true}
	case r.Commit:
		return Reaction{Commit: true}
	default:
		return Reaction{PublishTo: r.PublishTo}
	}
}

// FuzzDecisionTableCompile pins the compile-time validation gate:
// CompileDecisionTable never panics, and whatever the strategy returns, the
// table never stores a reaction validateReaction would reject — illegal
// reactions compile to the invalid marker, whose frames replay the live
// call. Fuzzed over both a hash-hostile reactor and the registry families.
func FuzzDecisionTableCompile(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint64(1), uint64(99), uint8(1), uint8(7))
	f.Add(uint64(0xDEADBEEF), uint64(0xFEEDFACE), uint8(3), uint8(255))
	f.Fuzz(func(t *testing.T, a, b uint64, family, param uint8) {
		var st Strategy = fuzzReactor{a: a, b: b}
		if family%4 != 0 {
			defs := StrategyDefs()
			def := defs[int(family)%len(defs)]
			spec := StrategySpec{Name: def.Name}
			if len(def.Params) > 0 {
				p := def.Params[int(param)%len(def.Params)]
				spec.Params = map[string]int{p.Key: p.Min + int(param)%(p.Max-p.Min+1)}
			}
			var err error
			if st, err = NewStrategy(spec); err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
		}
		table := CompileDecisionTable(st)
		grids := []struct {
			name string
			grid []int8
			live func(ls, lh, published int) Reaction
		}{
			{"pool", table.pool, st.ReactToPool},
			{"honest", table.honest, st.ReactToHonest},
		}
		for _, g := range grids {
			for ls := 0; ls < tableDim; ls++ {
				for lh := 0; lh < tableDim; lh++ {
					for published := 0; published < tableDim; published++ {
						e, ok := entryAt(g.grid, ls, lh, published)
						if !ok {
							t.Fatalf("%s: window frame (%d, %d, %d) not in table", g.name, ls, lh, published)
						}
						live := g.live(ls, lh, published)
						if e == tableInvalid {
							if validateReaction(live, ls, lh, published) == nil {
								t.Fatalf("%s(%d, %d, %d): legal reaction %+v stored as invalid",
									g.name, ls, lh, published, live)
							}
							continue
						}
						r := decodeReaction(e)
						if err := validateReaction(r, ls, lh, published); err != nil {
							t.Fatalf("%s(%d, %d, %d): table stored rejected reaction %+v: %v",
								g.name, ls, lh, published, r, err)
						}
						// The entry encodes the reaction's *effect* under
						// applyReaction's precedence (adopt, then commit,
						// then publish), so compare canonical forms: a
						// legal commit-plus-publish compiles to the plain
						// commit it acts as.
						if r != canonicalReaction(live) {
							t.Fatalf("%s(%d, %d, %d): table %+v, live %+v",
								g.name, ls, lh, published, r, live)
						}
					}
				}
			}
		}
	})
}
