package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The paper leaves "the design of new mining strategies" as future work.
// This file turns the strategy subsystem from a handful of concrete types
// into a parameterized strategy space: a StrategySpec names a point in that
// space ("algorithm1", "stubborn:lead=1,trail=2"), and a registry of
// StrategyDefs constructs Strategy instances from specs. Everything built
// from a spec still goes through the same validateReaction gate as the
// hand-written strategies, so a mis-parameterized variant fails loudly
// instead of corrupting a race.

// ErrBadSpec reports a strategy spec that does not parse or does not match
// any registered strategy definition.
var ErrBadSpec = fmt.Errorf("sim: invalid strategy spec")

// StrategySpec is a parsed point in the strategy space: a registered
// strategy name plus the integer parameters explicitly set for it. Specs
// round-trip: ParseStrategySpec(s.String()) reproduces s, and String()
// emits parameters in sorted key order so equal specs format identically.
type StrategySpec struct {
	// Name is the registered strategy name (e.g. "algorithm1",
	// "stubborn").
	Name string

	// Params holds the explicitly set parameters; keys the spec omits
	// take the definition's defaults at construction time. A nil map is
	// a parameterless spec.
	Params map[string]int
}

// String formats the spec in the canonical grammar: the name alone, or
// name:key=value,... with keys sorted.
func (s StrategySpec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.Params[k])
	}
	return b.String()
}

// ParseStrategySpec parses the spec grammar
//
//	name
//	name:key=value,key=value,...
//
// with integer values, e.g. "algorithm1" or "stubborn:lead=1,trail=2".
// Two legacy aliases predating the grammar are still accepted and
// normalized: "trail-stubborn" (= stubborn:lead=1, the pre-registry
// variant of that name) and "eager-publish-<k>" (= eager-publish:lead=k).
// Parsing checks only the grammar; names, keys, and ranges are validated
// against the registry when the strategy is constructed.
func ParseStrategySpec(s string) (StrategySpec, error) {
	if normalized, ok := legacyAlias(s); ok {
		return normalized, nil
	}
	name, rest, hasParams := strings.Cut(s, ":")
	if !validSpecName(name) {
		return StrategySpec{}, fmt.Errorf("%w: bad name in %q", ErrBadSpec, s)
	}
	spec := StrategySpec{Name: name}
	if !hasParams {
		return spec, nil
	}
	spec.Params = make(map[string]int)
	for _, assign := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(assign, "=")
		if !ok || !validSpecName(key) {
			return StrategySpec{}, fmt.Errorf("%w: bad parameter %q in %q", ErrBadSpec, assign, s)
		}
		n, err := strconv.Atoi(value)
		if err != nil {
			return StrategySpec{}, fmt.Errorf("%w: parameter %s in %q: %v", ErrBadSpec, key, s, err)
		}
		if _, dup := spec.Params[key]; dup {
			return StrategySpec{}, fmt.Errorf("%w: duplicate parameter %s in %q", ErrBadSpec, key, s)
		}
		spec.Params[key] = n
	}
	return spec, nil
}

// MustStrategySpec parses a spec literal and panics on error; for
// compile-time-constant specs in drivers and tests.
func MustStrategySpec(s string) StrategySpec {
	spec, err := ParseStrategySpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// legacyAlias resolves the two pre-registry strategy names.
func legacyAlias(s string) (StrategySpec, bool) {
	if s == "trail-stubborn" {
		return StrategySpec{Name: "stubborn", Params: map[string]int{"lead": 1}}, true
	}
	if rest, ok := strings.CutPrefix(s, "eager-publish-"); ok {
		if k, err := strconv.Atoi(rest); err == nil {
			return StrategySpec{Name: "eager-publish", Params: map[string]int{"lead": k}}, true
		}
	}
	return StrategySpec{}, false
}

// validSpecName reports whether s is a well-formed name or parameter key:
// nonempty lowercase letters, digits, and interior dashes.
func validSpecName(s string) bool {
	if s == "" || s[0] == '-' || s[len(s)-1] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// ParamDef describes one integer parameter of a strategy definition.
type ParamDef struct {
	// Key is the parameter name in the spec grammar.
	Key string

	// Min and Max bound the accepted values (inclusive).
	Min, Max int

	// Default is the value used when the spec omits the parameter.
	Default int

	// Doc is a one-line description for listings.
	Doc string
}

// StrategyDef registers one strategy family: a name, its parameter space,
// and a constructor. New receives a complete parameter map (defaults
// filled, every value range-checked) and must return a Strategy that is a
// pure function of its race frame, safe for concurrent use by independent
// simulators.
type StrategyDef struct {
	// Name is the spec name the definition answers to.
	Name string

	// Doc is a one-line description for listings.
	Doc string

	// Params declares the accepted parameters in display order.
	Params []ParamDef

	// New constructs the strategy from a fully defaulted parameter map.
	New func(params map[string]int) Strategy
}

// Usage renders the definition's spec shape with parameter ranges, e.g.
// "stubborn[:lead=0..1,fork=0..1,trail=0..16]".
func (d StrategyDef) Usage() string {
	if len(d.Params) == 0 {
		return d.Name
	}
	parts := make([]string, len(d.Params))
	for i, p := range d.Params {
		parts[i] = fmt.Sprintf("%s=%d..%d", p.Key, p.Min, p.Max)
	}
	return d.Name + "[:" + strings.Join(parts, ",") + "]"
}

// registry holds the registered strategy definitions by name.
var registry = make(map[string]StrategyDef)

// RegisterStrategy adds a strategy definition to the registry. It panics on
// a duplicate or malformed definition — registration is an init-time,
// programmer-error surface.
func RegisterStrategy(def StrategyDef) {
	if !validSpecName(def.Name) {
		panic(fmt.Sprintf("sim: RegisterStrategy: bad name %q", def.Name))
	}
	if def.New == nil {
		panic(fmt.Sprintf("sim: RegisterStrategy(%s): nil constructor", def.Name))
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("sim: RegisterStrategy: duplicate %q", def.Name))
	}
	seen := make(map[string]bool, len(def.Params))
	for _, p := range def.Params {
		if !validSpecName(p.Key) || p.Min > p.Max || p.Default < p.Min || p.Default > p.Max {
			panic(fmt.Sprintf("sim: RegisterStrategy(%s): bad parameter %+v", def.Name, p))
		}
		if seen[p.Key] {
			panic(fmt.Sprintf("sim: RegisterStrategy(%s): duplicate parameter %s", def.Name, p.Key))
		}
		seen[p.Key] = true
	}
	registry[def.Name] = def
}

// StrategyDefs returns the registered definitions sorted by name.
func StrategyDefs() []StrategyDef {
	out := make([]StrategyDef, 0, len(registry))
	for _, def := range registry {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// strategyCache memoizes constructed strategies by canonical spec string.
// Sharing one instance per distinct spec is safe because strategies are
// pure frame functions (the contract Config.Strategies documents for
// sharing an instance across a sweep's workers); only successfully
// validated specs are ever stored, so a hit needs no re-validation.
var strategyCache sync.Map

// NewStrategy constructs the Strategy a spec describes: the named
// definition with the spec's parameters over the definition's defaults.
// Unknown names, unknown keys, and out-of-range values are errors. Specs
// describing the same strategy return one shared instance — construction
// sits on sweep hot paths, where every grid point resolves its pools.
func NewStrategy(spec StrategySpec) (Strategy, error) {
	canon := spec.String()
	if s, ok := strategyCache.Load(canon); ok {
		return s.(Strategy), nil
	}
	def, ok := registry[spec.Name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown strategy %q (registered: %s)",
			ErrBadSpec, spec.Name, strings.Join(registeredNames(), ", "))
	}
	params := make(map[string]int, len(def.Params))
	for _, p := range def.Params {
		params[p.Key] = p.Default
	}
	for key, value := range spec.Params {
		p, ok := paramDef(def, key)
		if !ok {
			return nil, fmt.Errorf("%w: %s has no parameter %q (want %s)",
				ErrBadSpec, spec.Name, key, def.Usage())
		}
		if value < p.Min || value > p.Max {
			return nil, fmt.Errorf("%w: %s:%s=%d out of [%d, %d]",
				ErrBadSpec, spec.Name, key, value, p.Min, p.Max)
		}
		params[key] = value
	}
	s := def.New(params)
	strategyCache.Store(canon, s)
	return s, nil
}

// NewStrategies constructs one Strategy per spec, for Config.Strategies.
func NewStrategies(specs []StrategySpec) ([]Strategy, error) {
	out := make([]Strategy, len(specs))
	for i, spec := range specs {
		s, err := NewStrategy(spec)
		if err != nil {
			return nil, fmt.Errorf("pool %d: %w", i+1, err)
		}
		out[i] = s
	}
	return out, nil
}

// ParseStrategy parses a spec string and constructs the strategy in one
// step — the command-line entry point into the strategy space.
func ParseStrategy(s string) (Strategy, error) {
	spec, err := ParseStrategySpec(s)
	if err != nil {
		return nil, err
	}
	return NewStrategy(spec)
}

func paramDef(def StrategyDef, key string) (ParamDef, bool) {
	for _, p := range def.Params {
		if p.Key == key {
			return p, true
		}
	}
	return ParamDef{}, false
}

func registeredNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The built-in strategy space. External packages in this module can extend
// it with RegisterStrategy from their own init functions.
func init() {
	RegisterStrategy(StrategyDef{
		Name: "algorithm1",
		Doc:  "the paper's selfish-mining strategy (Sec. III-C)",
		New:  func(map[string]int) Strategy { return Algorithm1{} },
	})
	RegisterStrategy(StrategyDef{
		Name: "honest",
		Doc:  "protocol-following control: publish and commit every block",
		New:  func(map[string]int) Strategy { return HonestStrategy{} },
	})
	RegisterStrategy(StrategyDef{
		Name: "eager-publish",
		Doc:  "commit the private branch as soon as its lead reaches the trigger",
		Params: []ParamDef{
			// No meaningful upper bound: leads beyond the reference
			// window just degenerate toward never-committing-early,
			// and the pre-registry API accepted any k >= 2.
			{Key: "lead", Min: 2, Max: 1 << 20, Default: 2, Doc: "commit trigger (private lead)"},
		},
		New: func(p map[string]int) Strategy { return EagerPublish{Lead: p["lead"]} },
	})
	RegisterStrategy(StrategyDef{
		Name: "stubborn",
		Doc:  "the stubborn-mining family (Nayak et al.): lead-, equal-fork-, and trail-stubborn axes over Algorithm 1",
		Params: []ParamDef{
			{Key: "lead", Min: 0, Max: 1, Default: 0,
				Doc: "lead-stubborn: decline the sure win at Ls=Lh+1, keep one block private and race on"},
			{Key: "fork", Min: 0, Max: 1, Default: 0,
				Doc: "equal-fork-stubborn: keep the tie-breaking block private instead of committing"},
			{Key: "trail", Min: 0, Max: 16, Default: 0,
				Doc: "trail-stubborn depth: keep racing while behind by at most this many blocks"},
		},
		New: func(p map[string]int) Strategy {
			return Stubborn{Lead: p["lead"] == 1, EqualFork: p["fork"] == 1, Trail: p["trail"]}
		},
	})
}
