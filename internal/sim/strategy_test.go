package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/core"
)

func TestAlgorithm1ReactionsMatchPaper(t *testing.T) {
	var s Algorithm1
	tests := []struct {
		name              string
		ls, lh, published int
		honest            bool // consult ReactToHonest instead of ReactToPool
		want              Reaction
	}{
		{"pool extends lead", 3, 0, 0, false, Reaction{}},
		{"pool wins tie (2,1)", 2, 1, 1, false, Reaction{Commit: true}},
		{"pool block mid-race", 5, 1, 1, false, Reaction{}},
		{"honest at consensus", 0, 1, 0, true, Reaction{Adopt: true}},
		{"honest levels race", 1, 1, 0, true, Reaction{PublishTo: 1}},
		{"honest wins tie", 1, 2, 1, true, Reaction{Adopt: true}},
		{"honest at lead 2", 2, 1, 0, true, Reaction{Commit: true}},
		{"honest at big lead", 5, 1, 0, true, Reaction{PublishTo: 1}},
		{"honest pushes deep race", 5, 2, 1, true, Reaction{PublishTo: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var got Reaction
			if tt.honest {
				got = s.ReactToHonest(tt.ls, tt.lh, tt.published)
			} else {
				got = s.ReactToPool(tt.ls, tt.lh, tt.published)
			}
			if got != tt.want {
				t.Errorf("reaction = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestValidateReaction(t *testing.T) {
	tests := []struct {
		name      string
		reaction  Reaction
		ls, lh    int
		published int
		wantErr   bool
	}{
		{"noop", Reaction{}, 3, 1, 0, false},
		{"publish in range", Reaction{PublishTo: 2}, 3, 1, 0, false},
		{"publish too many", Reaction{PublishTo: 4}, 3, 1, 0, true},
		{"commit ahead", Reaction{Commit: true}, 3, 1, 0, false},
		{"commit behind", Reaction{Commit: true}, 1, 1, 0, true},
		{"commit and adopt", Reaction{Commit: true, Adopt: true}, 3, 1, 0, true},
		{"adopt", Reaction{Adopt: true}, 1, 2, 0, false},
		{"noop with announced blocks", Reaction{}, 3, 1, 2, false},
		{"republish announced count", Reaction{PublishTo: 2}, 3, 1, 2, false},
		{"extend announced prefix", Reaction{PublishTo: 3}, 3, 2, 2, false},
		{"un-publish announced blocks", Reaction{PublishTo: 1}, 3, 1, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateReaction(tt.reaction, tt.ls, tt.lh, tt.published)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadReaction) {
				t.Errorf("err = %v, want ErrBadReaction", err)
			}
		})
	}
}

func TestHonestStrategyEarnsAlpha(t *testing.T) {
	// The control arm: a pool that behaves honestly earns exactly its
	// hash share and produces no forks at all.
	r := run(t, Config{
		Population: twoAgent(t, 0.3),
		Gamma:      0.5,
		Blocks:     50000,
		Seed:       101,
		Strategy:   HonestStrategy{},
	})
	if r.UncleCount != 0 || r.StaleCount != 0 {
		t.Errorf("honest pool produced %d uncles, %d stale blocks", r.UncleCount, r.StaleCount)
	}
	got := r.PoolAbsolute(core.Scenario1)
	// Exactly alpha in expectation; binomial noise over 50k blocks.
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("honest pool revenue %v, want ~0.3", got)
	}
}

func TestEagerPublishNeverRacesDeep(t *testing.T) {
	// EagerPublish(2) commits at lead 2, so states with lead > 2 never
	// occur at event time.
	r := run(t, Config{
		Population: twoAgent(t, 0.4),
		Gamma:      0.5,
		Blocks:     50000,
		Seed:       103,
		Strategy:   EagerPublish{Lead: 2},
	})
	for state, count := range r.Occupancy {
		if state.Lead() > 2 && count > 0 {
			t.Errorf("state %v occurred %d times; eager publishing should prevent it", state, count)
		}
	}
	if r.UncleCount == 0 {
		t.Error("ties still produce uncles under eager publishing")
	}
}

func TestEagerPublishBeatsHonestButTrailsAlgorithm1(t *testing.T) {
	// At high alpha the deep races Algorithm 1 wins are where the profit
	// is; committing early gives most of it up.
	const alpha = 0.4
	cfg := Config{Population: twoAgent(t, alpha), Gamma: 0.5, Blocks: 100000, Seed: 107}

	algorithm1 := run(t, cfg)
	eagerCfg := cfg
	eagerCfg.Strategy = EagerPublish{Lead: 2}
	eager := run(t, eagerCfg)

	a1 := algorithm1.PoolAbsolute(core.Scenario1)
	eg := eager.PoolAbsolute(core.Scenario1)
	if eg >= a1 {
		t.Errorf("eager publishing (%v) should trail Algorithm 1 (%v) at alpha=%v", eg, a1, alpha)
	}
	if eg <= alpha {
		t.Errorf("eager publishing (%v) should still beat honest mining at alpha=%v", eg, alpha)
	}
}

func TestLeadStubbornRuns(t *testing.T) {
	// The lead-stubborn variant explores states outside the paper's
	// space (it declines the sure win); the simulation must stay
	// consistent: rewards conserved and blocks accounted for.
	r := run(t, Config{
		Population: twoAgent(t, 0.4),
		Gamma:      0.5,
		Blocks:     100000,
		Seed:       109,
		Strategy:   Stubborn{Lead: true},
	})
	if got := r.Pool.Static + r.Honest.Static; math.Abs(got-float64(r.RegularCount)) > 1e-9 {
		t.Errorf("static rewards %v != regular blocks %d", got, r.RegularCount)
	}
	gotNephew := r.Pool.Nephew + r.Honest.Nephew
	if math.Abs(gotNephew-float64(r.UncleCount)/32) > 1e-9 {
		t.Errorf("nephew rewards %v != UncleCount/32", gotNephew)
	}
	if r.RegularCount+r.UncleCount+r.StaleCount > r.Blocks {
		t.Error("settled more blocks than events")
	}
}

func TestLeadStubbornDiffersFromAlgorithm1(t *testing.T) {
	cfg := Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 50000, Seed: 113}
	a1 := run(t, cfg)
	stubbornCfg := cfg
	stubbornCfg.Strategy = Stubborn{Lead: true}
	stubborn := run(t, stubbornCfg)
	if a1.Pool == stubborn.Pool {
		t.Error("lead-stubborn produced identical rewards to Algorithm 1")
	}
}

func TestStubbornZeroValueMatchesAlgorithm1(t *testing.T) {
	// Stubborn{} makes Algorithm 1's decision in every reachable state,
	// so whole runs must be bit-identical.
	for _, alpha := range []float64{0.2, 0.4} {
		cfg := Config{Population: twoAgent(t, alpha), Gamma: 0.5, Blocks: 20000, Seed: 131}
		a1 := run(t, cfg)
		zero := cfg
		zero.Strategy = Stubborn{}
		if got := run(t, zero); !reflect.DeepEqual(a1, got) {
			t.Errorf("alpha=%v: Stubborn{} run differs from Algorithm1", alpha)
		}
	}
}

func TestStubbornBeatsAlgorithm1AtHighAlphaAndGamma(t *testing.T) {
	// Pins a dominance region of the parametric family: at alpha = 0.45,
	// gamma = 0.5, the lead+equal-fork stubborn variant strictly beats
	// Algorithm 1 (Nayak et al.'s headline result, reproduced on this
	// simulator; at gamma = 0 the ordering flips and Algorithm 1 wins).
	const alpha, gamma = 0.45, 0.5
	cfg := Config{Population: twoAgent(t, alpha), Gamma: gamma, Blocks: 50000, Seed: 12345}
	runMean := func(s Strategy) float64 {
		c := cfg
		c.Strategy = s
		series, err := RunMany(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		return series.PoolAbsolute(core.Scenario1).Mean()
	}
	a1 := runMean(Algorithm1{})
	stubborn := runMean(Stubborn{Lead: true, EqualFork: true})
	if stubborn <= a1+0.03 {
		t.Errorf("stubborn:fork=1,lead=1 revenue %.4f should beat algorithm1's %.4f by a clear margin at alpha=%v gamma=%v",
			stubborn, a1, alpha, gamma)
	}

	// And the flip side: with no network capability, stubbornness loses.
	zeroGamma := cfg
	zeroGamma.Gamma = 0
	zeroCfg := func(s Strategy) float64 {
		c := zeroGamma
		c.Strategy = s
		series, err := RunMany(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		return series.PoolAbsolute(core.Scenario1).Mean()
	}
	if a1Zero, stubbornZero := zeroCfg(Algorithm1{}), zeroCfg(Stubborn{Lead: true, EqualFork: true}); stubbornZero >= a1Zero {
		t.Errorf("at gamma=0 stubbornness (%.4f) should lose to algorithm1 (%.4f)", stubbornZero, a1Zero)
	}
}

func TestStubbornReactionTable(t *testing.T) {
	tests := []struct {
		name              string
		s                 Stubborn
		ls, lh, published int
		honest            bool
		want              Reaction
	}{
		// Lead axis.
		{"lead declines sure win", Stubborn{Lead: true}, 2, 1, 1, true, Reaction{PublishTo: 1}},
		{"lead at big lead reveals one", Stubborn{Lead: true}, 5, 2, 1, true, Reaction{PublishTo: 2}},
		{"lead still wins ties", Stubborn{Lead: true}, 2, 1, 1, false, Reaction{Commit: true}},
		// EqualFork axis.
		{"fork withholds tie-breaker", Stubborn{EqualFork: true}, 2, 1, 1, false, Reaction{}},
		{"fork commits sure win", Stubborn{EqualFork: true}, 2, 1, 1, true, Reaction{Commit: true}},
		// Trail axis.
		{"trail tolerates gap 1", Stubborn{Trail: 1}, 1, 2, 1, true, Reaction{}},
		{"trail adopts past depth", Stubborn{Trail: 1}, 1, 3, 1, true, Reaction{Adopt: true}},
		{"trail adopts empty branch", Stubborn{Trail: 3}, 0, 1, 0, true, Reaction{Adopt: true}},
		{"trail levels on catch-up", Stubborn{Trail: 1}, 2, 2, 1, false, Reaction{PublishTo: 2}},
		// Zero value = Algorithm 1.
		{"zero adopts behind", Stubborn{}, 1, 2, 1, true, Reaction{Adopt: true}},
		{"zero takes sure win", Stubborn{}, 2, 1, 1, true, Reaction{Commit: true}},
		{"zero races the tie", Stubborn{}, 1, 1, 0, true, Reaction{PublishTo: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var got Reaction
			if tt.honest {
				got = tt.s.ReactToHonest(tt.ls, tt.lh, tt.published)
			} else {
				got = tt.s.ReactToPool(tt.ls, tt.lh, tt.published)
			}
			if got != tt.want {
				t.Errorf("reaction = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestPoolOmitsUncleRefsLosesNephewIncome(t *testing.T) {
	cfg := Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 100000, Seed: 127}
	full := run(t, cfg)
	noRefsCfg := cfg
	noRefsCfg.PoolOmitsUncleRefs = true
	noRefs := run(t, noRefsCfg)

	if noRefs.Pool.Nephew >= full.Pool.Nephew {
		t.Errorf("pool nephew income without refs (%v) should drop (with: %v)",
			noRefs.Pool.Nephew, full.Pool.Nephew)
	}
	// Honest miners pick up the unreferenced uncles instead.
	if noRefs.Honest.Nephew <= full.Honest.Nephew {
		t.Errorf("honest nephew income (%v) should rise when the pool abstains (with: %v)",
			noRefs.Honest.Nephew, full.Honest.Nephew)
	}
}

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		strategy Strategy
		want     string
	}{
		{Algorithm1{}, "algorithm1"},
		{HonestStrategy{}, "honest"},
		{EagerPublish{Lead: 3}, "eager-publish:lead=3"},
		{Stubborn{}, "stubborn"},
		{Stubborn{Lead: true}, "stubborn:lead=1"},
		{Stubborn{Lead: true, EqualFork: true, Trail: 2}, "stubborn:fork=1,lead=1,trail=2"},
	}
	for _, tt := range tests {
		if got := tt.strategy.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
		// Every Name() is a canonical spec: parsing it reconstructs an
		// identical strategy.
		rebuilt, err := ParseStrategy(tt.want)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", tt.want, err)
		} else if rebuilt != tt.strategy {
			t.Errorf("ParseStrategy(%q) = %#v, want %#v", tt.want, rebuilt, tt.strategy)
		}
	}
}
