package sim

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/stats"
)

// This file is the streaming-settlement overlay (Config.Streaming): instead
// of retaining the whole run and settling it in one end-of-run walk, the
// engine settles the decided prefix incrementally as the consensus floor
// advances and evicts settled records from the tree, keeping resident memory
// O(active race window) instead of O(run length).
//
// The contract, layer by layer:
//
//   - Settle boundary. When the floor reaches height fH, the chain prefix up
//     to sH = fH - (window+1) is settled (it was final the moment the floor
//     decided it; settling lags the floor by a window only to keep eviction
//     simple — see below). window = min(schedule.MaxDepth(), 64), the same
//     reference window the candidate bookkeeping uses.
//   - Eviction boundary. Records below sH - window - 1 are evicted
//     (chain.Tree.CompactBelow). No future block can reference anything
//     that deep (a future block's height exceeds fH, putting the evicted
//     prefix beyond the uncle depth limit), and no hot-path walk reads it:
//     the candidate window, the uncle-eligibility chain walk, and the
//     difficulty observation cursor all operate at heights above the bound,
//     and the floor purge's walk bottoms out at the lowest candidate's
//     parent, which the pre-eviction sweep (sweepDeadRecent) pins at or
//     above sH - window - 1 for every window >= 1.
//   - Bit-identity. The incremental tallies equal the one-shot Settle walk
//     bit for bit (see chain.StreamSettler); Result assembly then sums them
//     in the same miner-ID order. The only intentionally weaker field is
//     Steady, whose start rounds down to a cumulative snapshot (below).
//
// Flushes are batched (streamFlushBatch settled heights at a time) so the
// amortized cost per block is a handful of moves, mirroring the candidate
// window's trim batching.

// streamFlushBatch is the settled-height backlog at which the overlay
// settles and evicts. Larger batches amortize the compaction copy-down
// further at the cost of a proportionally larger resident suffix; 256 keeps
// both far below cache sizes.
const streamFlushBatch = 256

// maxStreamSnaps bounds the cumulative-snapshot ring for the Steady window:
// when the ring fills, every other snapshot is dropped and the snapshot
// interval doubles, so a run of any length keeps between half and a full
// ring of snapshots at granularity finalHeight/maxStreamSnaps or finer.
const maxStreamSnaps = 2048

// streamSnap is one cumulative time-window snapshot: the whole settled
// chain's window tallies through the block at height h, stamped with that
// block's time.
type streamSnap struct {
	height  int
	time    float64
	regular int
	uncles  int
	byPool  []chain.Reward
}

// streamState holds the streaming-settlement overlay's per-run state.
type streamState struct {
	settler *chain.StreamSettler

	// hooks is the settler callback pair, built once per run so flushes
	// allocate nothing.
	hooks chain.SettleHooks

	// poolDist and honestDist accumulate realized reference distances by
	// the uncle's camp — the streaming counterpart of settleRun's pass
	// over Settlement.Refs.
	poolDist, honestDist stats.Counter

	// Time-window accumulation (timed runs only; windows gates it).
	windows bool
	epoch   int
	early   Window // heights <= epoch; End stamped when height epoch settles
	cum     Window // cumulative over the whole settled chain

	// snaps, snapInterval, and the pending pair implement the Steady
	// window's cumulative snapshots. A snapshot of height h must include
	// block h's own references, which arrive after its OnBlock; so a due
	// snapshot is held pending and committed when the next block opens
	// (or at final assembly).
	snaps         []streamSnap
	snapInterval  int
	pendingHeight int
	pendingTime   float64
}

// initStream prepares the streaming overlay for one run (or disables it).
func (s *simulator) initStream(cfg Config) {
	s.idBase = 0
	if !cfg.Streaming {
		s.str = nil
		return
	}
	if s.str == nil {
		s.str = &streamState{}
	}
	st := s.str
	if st.settler == nil {
		st.settler = chain.NewStreamSettler(cfg.Schedule)
	} else {
		st.settler.Reset(cfg.Schedule)
	}
	st.hooks = chain.SettleHooks{OnBlock: s.streamBlock, OnRef: s.streamRef}
	st.poolDist = stats.Counter{}
	st.honestDist = stats.Counter{}
	st.windows = cfg.Time.Enabled
	st.snaps = st.snaps[:0]
	st.snapInterval = 1
	st.pendingHeight = -1
	if st.windows {
		st.epoch = cfg.Time.Difficulty.Epoch
		nPools := cfg.Population.NumPools() + 1
		st.early = Window{ByPool: make([]chain.Reward, nPools)}
		st.cum = Window{ByPool: make([]chain.Reward, nPools)}
	}
}

// streamBlock is the settler's per-block hook: window accumulation and
// snapshot bookkeeping. Reward-tally work lives in the settler itself.
func (s *simulator) streamBlock(id chain.BlockID, height int) {
	st := s.str
	if !st.windows {
		return
	}
	st.commitSnap()
	at := s.tree.TimeOf(id)
	minerPool := s.poolOf(id)
	st.cum.Regular++
	st.cum.ByPool[minerPool].Static++
	if height <= st.epoch {
		st.early.Regular++
		st.early.ByPool[minerPool].Static++
		if height == st.epoch {
			st.early.End = at
		}
	}
	if height%st.snapInterval == 0 {
		st.pendingHeight = height
		st.pendingTime = at
	}
}

// streamRef is the settler's per-reference hook: distance counters (the
// Result's uncle-distance distributions) and window uncle/nephew tallies.
func (s *simulator) streamRef(ref chain.UncleRef) {
	if !s.cfg.Schedule.Referenceable(ref.Distance) {
		return
	}
	st := s.str
	if s.cfg.Population.IsSelfish(s.tree.MinerOf(ref.Uncle)) {
		st.poolDist.Observe(ref.Distance)
	} else {
		st.honestDist.Observe(ref.Distance)
	}
	if !st.windows {
		return
	}
	nephewPool := s.poolOf(ref.Nephew)
	unclePool := s.poolOf(ref.Uncle)
	nv := s.cfg.Schedule.Nephew(ref.Distance)
	uv := s.cfg.Schedule.Uncle(ref.Distance)
	st.cum.Uncles++
	st.cum.ByPool[nephewPool].Nephew += nv
	st.cum.ByPool[unclePool].Uncle += uv
	if s.tree.HeightOf(ref.Nephew) <= st.epoch {
		st.early.Uncles++
		st.early.ByPool[nephewPool].Nephew += nv
		st.early.ByPool[unclePool].Uncle += uv
	}
}

// commitSnap records the pending cumulative snapshot, now that every
// reference of its block has been folded into cum, and compacts the ring
// when it fills.
func (st *streamState) commitSnap() {
	if st.pendingHeight < 0 {
		return
	}
	st.snaps = append(st.snaps, streamSnap{
		height:  st.pendingHeight,
		time:    st.pendingTime,
		regular: st.cum.Regular,
		uncles:  st.cum.Uncles,
		byPool:  append([]chain.Reward(nil), st.cum.ByPool...),
	})
	st.pendingHeight = -1
	if len(st.snaps) < maxStreamSnaps {
		return
	}
	st.snapInterval *= 2
	kept := st.snaps[:0]
	for _, sn := range st.snaps {
		if sn.height%st.snapInterval == 0 {
			kept = append(kept, sn)
		}
	}
	st.snaps = kept
}

// streamFloor returns the floor the overlay settles against: the maintained
// consensus floor, or the public tip for a poolless population (whose floor
// never advances — resolve is pool-triggered), mirroring observeSettled.
func (s *simulator) streamFloor() chain.BlockID {
	if len(s.pools) == 0 {
		return s.pubTip
	}
	return s.floor
}

// flushStream settles the newly decided prefix and evicts what the settle
// boundary releases. Called once per event after the floor flush (and after
// the difficulty observation, whose cursor must stay ahead of eviction); the
// batching gate makes the common case one subtraction.
func (s *simulator) flushStream() error {
	st := s.str
	if st == nil {
		return nil
	}
	floor := s.streamFloor()
	sH := s.tree.HeightOf(floor) - (s.window + 1)
	if sH-st.settler.SettledHeight() < streamFlushBatch {
		return nil
	}
	target := s.tree.AncestorAt(floor, sH)
	if err := st.settler.Advance(s.tree, target, st.hooks); err != nil {
		return fmt.Errorf("sim: streaming settle: %w", err)
	}
	s.evictSettled()
	return nil
}

// evictSettled drops tree records the settle boundary has released and
// rebases the published/inRecent arrays to the tree's new ID base.
//
// Before compacting it force-sweeps the candidate window below the keep
// bound: the amortized trim scans in ID order and stops at the first tall
// entry, so a deep fork block can linger in the window (and in the
// fork-child set) long after its height makes it unreferenceable. Those
// stragglers are semantically dead — every future nephew sits more than an
// uncle window above them — but the floor purge and the window audit walk
// the chain down to the lowest candidate's parent, so nothing the window
// still tracks may be evicted. The sweep removes them first, and the
// compaction keeps one extra height below the keep bound so that lowest
// parent is always resident.
func (s *simulator) evictSettled() {
	minKeep := s.str.settler.SettledHeight() - s.window
	s.sweepDeadRecent(minKeep)
	if s.tree.CompactBelow(minKeep-1) == 0 {
		return
	}
	base := int(s.tree.Base())
	shift := base - s.idBase
	n := copy(s.published, s.published[shift:])
	s.published = s.published[:n]
	n = copy(s.inRecent, s.inRecent[shift:])
	s.inRecent = s.inRecent[:n]
	s.idBase = base
}

// sweepDeadRecent removes every candidate-window entry below minHeight,
// regardless of position — the exhaustive counterpart of trimRecent's
// early-exit scan. Entries this deep cannot change any future event (the
// reference depth limit rejects them), so removing them preserves
// bit-identity; the brute-force window audit recomputes its expected set
// from the swept window and stays consistent.
func (s *simulator) sweepDeadRecent(minHeight int) {
	live := s.recent[s.recentHead:]
	kept := live[:0]
	for _, wb := range live {
		if wb.height < minHeight {
			s.inRecent[int(wb.id)-s.idBase] = false
			if len(s.forkChildren) > 0 {
				s.removeForkChild(wb.id)
			}
			continue
		}
		kept = append(kept, wb)
	}
	s.recent = s.recent[:s.recentHead+len(kept)]
}

// settleStream assembles the Result of a streaming run: advance the settler
// over the still-unsettled suffix up to the final consensus floor, then read
// the Result fields off the accumulated tallies. Every field except Steady
// is bit-identical to the one-shot settleRun; Steady's start rounds down to
// the nearest cumulative snapshot (exact while the run is short enough that
// the snapshot interval is still one block).
func settleStream(s *simulator) (Result, error) {
	cfg := s.cfg
	st := s.str
	floor := s.consensusFloor()
	if err := st.settler.Advance(s.tree, floor, st.hooks); err != nil {
		return Result{}, fmt.Errorf("sim: streaming settle: %w", err)
	}
	st.commitSnap()

	pop := cfg.Population
	regular := st.settler.RegularCount()
	uncles := st.settler.UncleCount()
	result := Result{
		Alpha:  pop.Alpha(),
		Blocks: cfg.Blocks,
		ByPool: make([]chain.Reward, pop.NumPools()+1),
		// The settler's buffers are reused across a Runner's runs; the
		// Result owns copies.
		MinerRewards:    append([]chain.Reward(nil), st.settler.MinerRewards()...),
		MinerSeen:       append([]bool(nil), st.settler.MinerSeen()...),
		RegularCount:    regular,
		UncleCount:      uncles,
		StaleCount:      s.tree.Len() - 1 - regular - uncles,
		EventsByPool:    append([]int64(nil), s.events...),
		OccupancyByPool: make([]map[core.State]int64, len(s.occ)),
	}
	for i := range s.occ {
		result.OccupancyByPool[i] = s.occupancyMap(i)
	}
	result.Occupancy = result.OccupancyByPool[0]
	for id, reward := range result.MinerRewards {
		pool := pop.PoolOf(chain.MinerID(id))
		result.ByPool[pool] = result.ByPool[pool].Add(reward)
		if pool != mining.HonestPool {
			result.Pool = result.Pool.Add(reward)
		} else {
			result.Honest = result.Honest.Add(reward)
		}
	}
	result.PoolUncleDistances.Merge(&st.poolDist)
	result.HonestUncleDistances.Merge(&st.honestDist)
	if s.timing {
		result.Elapsed = s.clock
		result.SettledTime = s.tree.TimeOf(floor)
		result.InitialDifficulty = cfg.Time.Difficulty.Initial
		result.FinalDifficulty = s.currentDifficulty()
		if s.ctrl != nil {
			result.Retargets = s.ctrl.Retargets()
		}
		st.assembleWindows(&result)
	}
	return result, nil
}

// assembleWindows finalizes the Early window and derives Steady from the
// cumulative snapshots.
func (st *streamState) assembleWindows(result *Result) {
	early := st.early
	if result.RegularCount < st.epoch {
		// The settled chain never reached the epoch boundary: the early
		// window is the whole settled chain, ending at the floor's stamp —
		// exactly where the one-shot walk stamps height min(epoch, regular).
		early.End = result.SettledTime
	}
	early.ByPool = append([]chain.Reward(nil), early.ByPool...)
	result.Early = early

	// Steady covers the trailing half: subtract the deepest cumulative
	// snapshot at or below regular/2 from the full-chain cumulatives. With
	// no snapshot that deep (short runs, or regular/2 == 0) the zero
	// snapshot applies and Steady spans the whole settled chain from t=0.
	steadyStart := result.RegularCount / 2
	var base streamSnap
	for i := len(st.snaps) - 1; i >= 0; i-- {
		if st.snaps[i].height <= steadyStart {
			base = st.snaps[i]
			break
		}
	}
	steady := Window{
		Start:   base.time,
		End:     result.SettledTime,
		Regular: st.cum.Regular - base.regular,
		Uncles:  st.cum.Uncles - base.uncles,
		ByPool:  make([]chain.Reward, len(st.cum.ByPool)),
	}
	for i, c := range st.cum.ByPool {
		var b chain.Reward
		if i < len(base.byPool) {
			b = base.byPool[i]
		}
		steady.ByPool[i] = chain.Reward{
			Static: c.Static - b.Static,
			Uncle:  c.Uncle - b.Uncle,
			Nephew: c.Nephew - b.Nephew,
		}
	}
	result.Steady = steady
}
