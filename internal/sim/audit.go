package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/chain"
)

// This file is the simulator's runtime invariant auditor: an opt-in
// adversarial check of the engine's own bookkeeping, run while the
// simulation executes rather than after the fact. The audited invariants
// are the ones the rest of the codebase silently relies on:
//
//   - Reward conservation: settling the chain-so-far classifies every
//     non-genesis block as exactly one of regular, uncle, or stale, and the
//     settled rewards equal what the schedule mints for those blocks and
//     references (the uncle/nephew bookkeeping of Niu-Feng's schedule).
//   - Timestamp monotonicity: on the continuous-time axis, every block's
//     timestamp is at or after its parent's, on every branch.
//   - Consensus-floor monotonicity: the floor only ever advances along the
//     settled chain — each new floor descends from the previous one.
//   - Fork-child candidate set: the incrementally maintained uncle
//     candidate set matches a brute-force rescan of the candidate window
//     (same blocks, same heights, same order), with the floor-purge rules
//     applied from scratch.
//
// With Audit disabled (the zero Config) none of this code runs and the hot
// path is untouched. The sampled mode (SampleEvery > 1) keeps the audit
// cheap enough for CI race runs over full-size workloads.

// ErrAudit is returned when a runtime invariant audit fails. Any such error
// means the engine's internal state is inconsistent — a bug, not a bad
// configuration.
var ErrAudit = errors.New("sim: invariant audit failed")

// AuditConfig configures the runtime invariant auditor. The zero value
// disables it.
type AuditConfig struct {
	// Enabled turns the auditor on.
	Enabled bool

	// SampleEvery audits every Nth block event (and the final state).
	// Zero or one audits every event — exhaustive but O(chain) per event
	// for the conservation check; CI-scale runs use a sparse sample
	// (e.g. 1024).
	SampleEvery int
}

func (a AuditConfig) validate() error {
	if a.SampleEvery < 0 {
		return fmt.Errorf("%w: negative audit sample interval", ErrBadConfig)
	}
	return nil
}

// auditor holds the auditor's cursor state for one run.
type auditor struct {
	// every is the sampling interval (>= 1).
	every int

	// event is the index of the block event being audited.
	event int

	// timeChecked is the highest block ID whose timestamp has been
	// verified against its parent; the incremental sweep covers every
	// block exactly once regardless of the sampling interval (under
	// streaming: every block still resident when a sample fires — a
	// block settled and evicted between sparse samples is vouched for by
	// the settler equivalence suite instead).
	timeChecked chain.BlockID

	// scratch backs the brute-force fork-child rescan.
	scratch []windowBlock

	// streamScratch is the throwaway settler copy the streaming
	// conservation check advances to the consensus floor.
	streamScratch chain.StreamSettler
}

// initAudit prepares the auditor for one run (or disables it).
func (s *simulator) initAudit(cfg Config) {
	if !cfg.Audit.Enabled {
		s.aud = nil
		return
	}
	if s.aud == nil {
		s.aud = &auditor{}
	}
	a := s.aud
	a.every = cfg.Audit.SampleEvery
	if a.every < 1 {
		a.every = 1
	}
	a.event = 0
	a.timeChecked = s.tree.Genesis()
}

// afterEvent runs the sampled audits after block event i has been fully
// applied (including every pool's reaction).
func (s *simulator) auditEvent(i int) error {
	a := s.aud
	a.event = i
	if (i+1)%a.every != 0 {
		return nil
	}
	return a.check(s)
}

// auditFinal audits the end-of-run state exactly once, so even a sparse
// sample always checks the state the settlement will read.
func (s *simulator) auditFinal() error {
	if s.aud == nil {
		return nil
	}
	return s.aud.check(s)
}

// check runs every invariant audit against the simulator's current state.
func (a *auditor) check(s *simulator) error {
	if err := a.checkTimestamps(s); err != nil {
		return err
	}
	if err := a.checkForkChildren(s); err != nil {
		return err
	}
	if err := a.checkFastForward(s); err != nil {
		return err
	}
	return a.checkConservation(s)
}

// checkFastForward re-proves the fast-forward engagement condition while
// the mode is live: every pool must still plainly adopt at the (0, 1, 0)
// frame, or the bulk stretches the engine skipped were not memoryless. For
// tabled pools the re-probe reads the compiled table property, so a table
// that drifted from its strategy (an impossible-by-construction state this
// audit exists to catch) fails here rather than corrupting results
// silently.
func (a *auditor) checkFastForward(s *simulator) error {
	if !s.ffwd {
		return nil
	}
	for i := range s.pools {
		if !s.pools[i].adoptsAtOrigin() {
			return a.violation("fast-forward engaged but pool %d does not plainly adopt at (0,1,0)", i+1)
		}
	}
	return nil
}

// violation formats one audit failure with its event coordinate.
func (a *auditor) violation(format string, args ...any) error {
	return fmt.Errorf("%w: at event %d: %s", ErrAudit, a.event, fmt.Sprintf(format, args...))
}

// checkTimestamps verifies per-branch timestamp monotonicity incrementally:
// every block created since the last audit must be stamped at or after its
// parent, which covers every branch of the tree exactly once per run. A
// timeless run stamps every block zero and passes trivially.
func (a *auditor) checkTimestamps(s *simulator) error {
	t := s.tree
	start := a.timeChecked + 1
	if base := t.Base(); start < base {
		// Streaming eviction outran the sweep: resume at the resident
		// base (the evicted blocks' stamps are gone either way).
		start = base
	}
	for id := start; int(id) < t.Len(); id++ {
		parent := t.ParentOf(id)
		if parent < t.Base() {
			// The parent's record is evicted; only the comparison is
			// lost, the block's own stamp is still clock-bounded below.
			a.timeChecked = id
			continue
		}
		if t.TimeOf(id) < t.TimeOf(parent) {
			return a.violation("timestamp regression: block %d at %v before parent %d at %v",
				id, t.TimeOf(id), parent, t.TimeOf(parent))
		}
		if s.timing && t.TimeOf(id) > s.clock {
			return a.violation("timestamp ahead of clock: block %d at %v, clock %v",
				id, t.TimeOf(id), s.clock)
		}
		a.timeChecked = id
	}
	return nil
}

// auditFloor verifies consensus-floor monotonicity at a floor advance: the
// new floor must descend from the previous one (the floor only ever moves
// down the settled chain). Called from resolve, so every advance is
// checked regardless of the sampling interval.
func (a *auditor) auditFloor(s *simulator, from, to chain.BlockID) error {
	if to != from && !s.tree.IsAncestor(from, to) {
		return a.violation("consensus floor moved off its own chain: %d (height %d) -> %d (height %d)",
			from, s.tree.HeightOf(from), to, s.tree.HeightOf(to))
	}
	return nil
}

// onSettledChain reports whether b lies on the settled chain through the
// floor (genesis..floor inclusive).
func onSettledChain(t *chain.Tree, b, floor chain.BlockID) bool {
	return b == floor || t.IsAncestor(b, floor)
}

// checkForkChildren rebuilds the uncle-candidate set by brute force — a
// full rescan of the recent window with the floor-purge rules applied from
// scratch — and requires the incrementally maintained set to match block
// for block, height for height, in the same (creation) order.
func (a *auditor) checkForkChildren(s *simulator) error {
	t := s.tree
	floor := s.floor
	floorHeight := t.HeightOf(floor)
	expected := a.scratch[:0]
	for _, wb := range s.recent[s.recentHead:] {
		parent := t.ParentOf(wb.id)
		if t.NextSiblingOf(t.FirstChildOf(parent)) == chain.NoBlock {
			continue // only child: can never be an uncle
		}
		// The floor-purge rules, evaluated from scratch: a candidate is
		// dead once the settled chain through the floor decides it.
		if ref := t.ReferencedBy(wb.id); ref != chain.NoBlock && onSettledChain(t, ref, floor) {
			continue // referenced on the consensus chain
		}
		if onSettledChain(t, wb.id, floor) {
			continue // on the consensus chain itself
		}
		if wb.height-1 <= floorHeight && !onSettledChain(t, parent, floor) {
			continue // parent off every future chain
		}
		expected = append(expected, wb)
	}
	a.scratch = expected

	got := s.forkChildren
	if len(got) != len(expected) {
		return a.violation("fork-child set has %d candidates, brute-force rescan finds %d (%v vs %v)",
			len(got), len(expected), got, expected)
	}
	for i := range got {
		if got[i] != expected[i] {
			return a.violation("fork-child set diverges at entry %d: %+v, brute-force rescan finds %+v",
				i, got[i], expected[i])
		}
	}
	return nil
}

// conservationTolerance bounds the relative float drift allowed between two
// summation orders of the same reward total.
const conservationTolerance = 1e-9

// checkConservation settles the chain-so-far at the consensus floor and
// verifies reward conservation: every non-genesis block is classified as
// exactly one of regular, uncle, or stale (regular + uncle + stale = total
// blocks minted), static rewards equal the regular-block count, and the
// uncle/nephew payouts equal the schedule's mint over the realized
// references. This is the expensive audit (O(chain)); the sampling interval
// bounds its amortized cost.
func (a *auditor) checkConservation(s *simulator) error {
	floor := s.consensusFloor()
	if s.str != nil {
		return a.checkStreamConservation(s, floor)
	}
	settlement, err := s.tree.Settle(floor, s.cfg.Schedule)
	if err != nil {
		return a.violation("settling at floor %d: %v", floor, err)
	}
	minted := s.tree.Len() - 1 // every block event mints one block; genesis is free
	if got := settlement.RegularCount + settlement.UncleCount + settlement.StaleCount; got != minted {
		return a.violation("block conservation: regular %d + uncle %d + stale %d = %d, minted %d",
			settlement.RegularCount, settlement.UncleCount, settlement.StaleCount, got, minted)
	}
	total := settlement.TotalReward()
	if total.Static != float64(settlement.RegularCount) {
		return a.violation("static rewards %v, want one per %d regular blocks",
			total.Static, settlement.RegularCount)
	}
	// Re-derive the uncle and nephew mint from the realized references —
	// an accumulation independent of Settle's per-miner tallies.
	var wantUncle, wantNephew float64
	refs := 0
	for _, ref := range settlement.Refs {
		if !s.cfg.Schedule.Referenceable(ref.Distance) {
			continue
		}
		refs++
		wantUncle += s.cfg.Schedule.Uncle(ref.Distance)
		wantNephew += s.cfg.Schedule.Nephew(ref.Distance)
	}
	if refs != settlement.UncleCount {
		return a.violation("uncle count %d, but %d referenceable references realized",
			settlement.UncleCount, refs)
	}
	if !closeEnough(total.Uncle, wantUncle) || !closeEnough(total.Nephew, wantNephew) {
		return a.violation("reward conservation: settled uncle %v nephew %v, schedule mints uncle %v nephew %v",
			total.Uncle, total.Nephew, wantUncle, wantNephew)
	}
	return nil
}

// checkStreamConservation is the conservation audit for streaming runs,
// where the settled prefix may already be evicted and the one-shot Settle
// walk cannot run. It advances a throwaway copy of the live settler to the
// consensus floor (the exact walk final assembly will take) and re-proves
// the same invariants from the extended tallies: the settled chain length
// matches the floor height, static rewards pay one per regular block, the
// per-miner uncle/nephew tallies sum to the schedule's accumulated mint,
// and the implied stale count is sane.
func (a *auditor) checkStreamConservation(s *simulator, floor chain.BlockID) error {
	clone := &a.streamScratch
	s.str.settler.CloneInto(clone)
	if err := clone.Advance(s.tree, floor, chain.SettleHooks{}); err != nil {
		return a.violation("streaming settle to floor %d: %v", floor, err)
	}
	if clone.RegularCount() != s.tree.HeightOf(floor) {
		return a.violation("settled chain length %d, floor height %d",
			clone.RegularCount(), s.tree.HeightOf(floor))
	}
	minted := s.tree.Len() - 1 // logical length counts evicted blocks
	stale := minted - clone.RegularCount() - clone.UncleCount()
	if stale < 0 {
		return a.violation("block conservation: regular %d + uncle %d exceeds minted %d",
			clone.RegularCount(), clone.UncleCount(), minted)
	}
	var total chain.Reward
	for _, r := range clone.MinerRewards() {
		total.Static += r.Static
		total.Uncle += r.Uncle
		total.Nephew += r.Nephew
	}
	if total.Static != float64(clone.RegularCount()) {
		return a.violation("static rewards %v, want one per %d regular blocks",
			total.Static, clone.RegularCount())
	}
	if !closeEnough(total.Uncle, clone.MintedUncle()) || !closeEnough(total.Nephew, clone.MintedNephew()) {
		return a.violation("reward conservation: tallied uncle %v nephew %v, schedule minted uncle %v nephew %v",
			total.Uncle, total.Nephew, clone.MintedUncle(), clone.MintedNephew())
	}
	return nil
}

// closeEnough compares two float totals up to summation-order drift.
func closeEnough(got, want float64) bool {
	scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
	return math.Abs(got-want) <= conservationTolerance*scale
}
