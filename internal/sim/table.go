package sim

import (
	"reflect"
	"sync"
)

// The paper's strategies — Algorithm 1 and the stubborn family around it —
// are pure functions of the race frame (Ls, Lh, published). The simulator
// exploits that by compiling each registered strategy into a DecisionTable:
// a dense reaction grid over the bounded frame window, validated once at
// compile time, so the per-event decision becomes a single table load with
// no interface dispatch and no per-event validateReaction call. The grid
// mirrors the occupancy grid's shape (a tableDim x tableDim dense core with
// the astronomically rare frames beyond it handled out of band — here by
// falling back to the live interface path rather than an overflow map).
//
// Compilation snapshots the strategy's decisions, so it is only sound for
// strategies that honor the Strategy contract's determinism requirement.
// The simulator therefore tables only strategies carrying the frameTabled
// marker — the registry families, which are pure by construction — and
// consults adversarial or stateful test strategies live, exactly as before.

// tableDim is the side length of each decision grid, mirroring occDim:
// frames with ls or lh at or beyond it occur only in races longer than the
// reference window and take the interface path instead.
const tableDim = occDim

// Table entries encode a validated Reaction in one signed byte: positive
// values are PublishTo counts (at most tableDim-1, so they fit), zero is
// the keep-mining no-op, and the negative values are the singular moves. An
// entry the compile-time validation rejected is stored as tableInvalid and
// the event that reaches it replays the live strategy call, so a misbehaving
// strategy still fails at the same event with the same error it always
// produced.
const (
	tableKeep    = 0
	tableAdopt   = -1
	tableCommit  = -2
	tableInvalid = -3
)

// DecisionTable is a strategy compiled into dense per-frame reaction grids.
// It is immutable after compilation and safe for concurrent use by any
// number of simulation workers; the simulator shares one table per distinct
// strategy value through a process-wide cache.
type DecisionTable struct {
	strat Strategy

	// pool and honest hold the encoded reactions of the two decision
	// points, indexed (ls*tableDim + lh)*tableDim + published.
	pool   []int8
	honest []int8

	// adoptsAtOrigin records whether the honest reaction at the (0, 1, 0)
	// frame is a plain, valid adopt — the fast-forward engagement probe,
	// precomputed so engagement checks (and the auditor's re-probe) read a
	// table property instead of calling the strategy live.
	adoptsAtOrigin bool
}

// Compile-time proof that a DecisionTable can stand in for its strategy.
var _ Strategy = (*DecisionTable)(nil)

// frameTabled marks a Strategy as a pure function of its race frame,
// eligible for decision-table compilation. It is deliberately unexported:
// every registry family is pure by construction and carries the marker;
// ad-hoc strategies (the chaos suite's adversarial reactors, stateful test
// doubles) cannot, so they keep the live interface path their semantics
// depend on.
type frameTabled interface{ frameTabled() }

func (Algorithm1) frameTabled()     {}
func (HonestStrategy) frameTabled() {}
func (EagerPublish) frameTabled()   {}
func (Stubborn) frameTabled()       {}

// tableCache shares compiled tables across runs and workers, keyed by the
// strategy value itself. Registry strategies are small comparable structs,
// so two pools running stubborn:trail=2 — in the same run or in parallel
// workers — resolve to the same table, and a strategy's ~0.5 MiB grid pair
// is compiled once per process rather than once per run.
var tableCache sync.Map

// tableFor returns the shared compiled table for st, or nil when st is not
// eligible (no purity marker, or a dynamic type that cannot serve as a
// cache key).
func tableFor(st Strategy) *DecisionTable {
	if _, ok := st.(frameTabled); !ok {
		return nil
	}
	if !reflect.TypeOf(st).Comparable() {
		// Cannot key the cache (and equality is how sharing works);
		// compiling per call would cost more than it saves.
		return nil
	}
	if t, ok := tableCache.Load(st); ok {
		return t.(*DecisionTable)
	}
	t := CompileDecisionTable(st)
	// Two workers may race to compile the same strategy; both produce
	// identical tables, and LoadOrStore keeps exactly one.
	actual, _ := tableCache.LoadOrStore(st, t)
	return actual.(*DecisionTable)
}

// WarmDecisionTables compiles (and caches) the decision tables for every
// eligible strategy in the list. The experiment engine calls it once per
// job before fanning runs across workers, so no worker pays the one-time
// compile inside its timed hot loop and racing duplicate compiles are
// avoided. Nil and ineligible entries are skipped.
func WarmDecisionTables(strategies []Strategy) {
	for _, st := range strategies {
		if st != nil {
			tableFor(st)
		}
	}
}

// CompileDecisionTable compiles st into a DecisionTable by consulting it
// once at every frame of the bounded window and validating every reaction
// with the same rules validateReaction enforces. Reactions the rules reject
// are stored as an invalid marker that routes the frame back to the live
// strategy call, so compilation itself never fails — errors keep surfacing
// at the event that reaches the offending frame. The caller is responsible
// for only compiling strategies that are deterministic functions of their
// frame, as the Strategy contract requires.
func CompileDecisionTable(st Strategy) *DecisionTable {
	t := &DecisionTable{
		strat:  st,
		pool:   make([]int8, tableDim*tableDim*tableDim),
		honest: make([]int8, tableDim*tableDim*tableDim),
	}
	for ls := 0; ls < tableDim; ls++ {
		for lh := 0; lh < tableDim; lh++ {
			base := (ls*tableDim + lh) * tableDim
			// Frames with published > ls are unreachable (a pool can
			// only announce blocks it has), but the grid is dense, so
			// encode them too: encodeReaction stores the invalid marker
			// wherever validation fails.
			for published := 0; published < tableDim; published++ {
				t.pool[base+published] = encodeReaction(
					st.ReactToPool(ls, lh, published), ls, lh, published)
				t.honest[base+published] = encodeReaction(
					st.ReactToHonest(ls, lh, published), ls, lh, published)
			}
		}
	}
	t.adoptsAtOrigin = t.honest[(0*tableDim+1)*tableDim+0] == tableAdopt
	return t
}

// encodeReaction maps a validated reaction to its table entry, or to
// tableInvalid when validation rejects it. The decode precedence (adopt,
// then commit, then publish) matches applyReaction's, so the encoded entry
// reproduces exactly the state change the live reaction would have caused.
func encodeReaction(r Reaction, ls, lh, published int) int8 {
	if !reactionAllowed(r, ls, lh, published) {
		return tableInvalid
	}
	switch {
	case r.Adopt:
		return tableAdopt
	case r.Commit:
		return tableCommit
	default:
		// PublishTo <= ls < tableDim, so the count always fits the
		// entry byte.
		return int8(r.PublishTo)
	}
}

// entryAt looks up the encoded reaction for a frame in the given grid,
// reporting ok=false for frames outside the dense window (the caller falls
// back to the live strategy). The unsigned casts reject negative lh (which
// the race invariants rule out anyway) together with the overflow check.
func entryAt(grid []int8, ls, lh, published int) (int8, bool) {
	if uint(ls) >= tableDim || uint(lh) >= tableDim {
		return 0, false
	}
	// published <= ls holds for every reachable frame (validateReaction
	// rejects announcing more blocks than exist), so the index is in
	// range; guard anyway so a hand-built frame cannot read out of
	// bounds.
	if uint(published) >= tableDim {
		return 0, false
	}
	return grid[(ls*tableDim+lh)*tableDim+published], true
}

// decodeReaction expands a valid table entry back into the Reaction it
// encodes.
func decodeReaction(e int8) Reaction {
	switch e {
	case tableAdopt:
		return Reaction{Adopt: true}
	case tableCommit:
		return Reaction{Commit: true}
	default:
		return Reaction{PublishTo: int(e)}
	}
}

// Name implements Strategy.
func (t *DecisionTable) Name() string { return t.strat.Name() }

// Strategy returns the strategy the table was compiled from.
func (t *DecisionTable) Strategy() Strategy { return t.strat }

// AdoptsAtOrigin reports whether the compiled strategy plainly adopts at
// the (0, 1, 0) frame — the fast-forward engagement condition, as a table
// property.
func (t *DecisionTable) AdoptsAtOrigin() bool { return t.adoptsAtOrigin }

// ReactToPool implements Strategy: a table load inside the window, the live
// strategy beyond it or at frames whose compiled reaction was invalid.
func (t *DecisionTable) ReactToPool(ls, lh, published int) Reaction {
	if e, ok := entryAt(t.pool, ls, lh, published); ok && e != tableInvalid {
		return decodeReaction(e)
	}
	return t.strat.ReactToPool(ls, lh, published)
}

// ReactToHonest implements Strategy: a table load inside the window, the
// live strategy beyond it or at frames whose compiled reaction was invalid.
func (t *DecisionTable) ReactToHonest(ls, lh, published int) Reaction {
	if e, ok := entryAt(t.honest, ls, lh, published); ok && e != tableInvalid {
		return decodeReaction(e)
	}
	return t.strat.ReactToHonest(ls, lh, published)
}
