package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

// audited returns cfg with the full (every-event) invariant audit enabled.
func audited(cfg Config) Config {
	cfg.Audit = AuditConfig{Enabled: true, SampleEvery: 1}
	return cfg
}

// TestAuditValidation: a negative sampling interval is a configuration
// error.
func TestAuditValidation(t *testing.T) {
	cfg := Config{
		Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 10,
		Audit: AuditConfig{Enabled: true, SampleEvery: -1},
	}
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

// TestAuditCleanRuns: the full audit passes on healthy configurations
// across the engine's feature matrix — single and multiple pools, mixed
// strategies, both gamma extremes, capped uncles, the Bitcoin schedule,
// and the continuous-time path.
func TestAuditCleanRuns(t *testing.T) {
	multi, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := mining.Equal(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single pool", Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 4000, Seed: 1}},
		{"gamma zero", Config{Population: twoAgent(t, 0.4), Gamma: 0, Blocks: 3000, Seed: 2}},
		{"gamma one", Config{Population: twoAgent(t, 0.3), Gamma: 1, Blocks: 3000, Seed: 3}},
		{"two pools mixed strategies", Config{
			Population: multi, Gamma: 0.5, Blocks: 4000, Seed: 4,
			Strategies: []Strategy{Algorithm1{}, Stubborn{Lead: true}},
		}},
		{"honest only", Config{Population: honest, Gamma: 0.5, Blocks: 2000, Seed: 5}},
		{"capped uncles", Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 3000, Seed: 6, MaxUnclesPerBlock: 2}},
		{"bitcoin schedule", Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 3000, Seed: 7, Schedule: rewards.Bitcoin()}},
		{"no pool uncle refs", Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 3000, Seed: 8, PoolOmitsUncleRefs: true}},
		{"timed", Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 3000, Seed: 9, Time: TimeConfig{Enabled: true}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(audited(tt.cfg)); err != nil {
				t.Errorf("full audit failed a clean run: %v", err)
			}
		})
	}
}

// TestAuditDoesNotChangeResults: auditing observes; the audited Result must
// be bit-identical to the unaudited one, at every sampling interval.
func TestAuditDoesNotChangeResults(t *testing.T) {
	cfg := Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 5000, Seed: 11, Time: TimeConfig{Enabled: true}}
	want := run(t, cfg)
	for _, every := range []int{1, 7, 1024} {
		cfg.Audit = AuditConfig{Enabled: true, SampleEvery: every}
		got := run(t, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SampleEvery=%d: audited result differs from unaudited", every)
		}
	}
}

// TestAuditRunnerReuse: one Runner alternating audited and unaudited runs
// keeps both bit-identical to fresh executions — the auditor's cursor state
// resets with the rest of the simulator.
func TestAuditRunnerReuse(t *testing.T) {
	plain := Config{Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 3000, Seed: 21}
	wantPlain := run(t, plain)
	rn := NewRunner()
	for i := 0; i < 2; i++ {
		if _, err := rn.Run(audited(plain)); err != nil {
			t.Fatalf("audited run %d: %v", i, err)
		}
		got, err := rn.Run(plain)
		if err != nil {
			t.Fatalf("plain run %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, wantPlain) {
			t.Fatalf("round %d: reused Runner diverged from a fresh run", i)
		}
	}
}

// TestAuditSampledSkipsEvents: a sparse sample still audits the final state
// (regression guard: a run shorter than the interval must not escape the
// conservation check entirely).
func TestAuditSampledSkipsEvents(t *testing.T) {
	cfg := Config{
		Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 100, Seed: 31,
		Audit: AuditConfig{Enabled: true, SampleEvery: 1 << 20},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("sampled audit failed: %v", err)
	}
}

// TestAuditCatchesCorruptedForkChildren: corrupt the incremental candidate
// set behind the engine's back and the next audit must report ErrAudit —
// the auditor genuinely compares against a brute-force rescan.
func TestAuditCatchesCorruptedForkChildren(t *testing.T) {
	cfg := audited(Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 400, Seed: 41}).withDefaults()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	var s simulator
	s.init(cfg)
	// Run a prefix of events by hand, then inject a phantom candidate.
	pop := cfg.Population
	for i := 0; i < 50; i++ {
		s.recordState()
		miner := pop.Sample(s.random)
		var err error
		if miner.Pool != mining.HonestPool {
			err = s.poolEvent(int(miner.Pool)-1, miner.ID)
		} else {
			err = s.honestEvent(miner.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	phantom := windowBlock{id: s.tree.Genesis(), height: 0}
	s.forkChildren = append(s.forkChildren, phantom)
	if err := s.auditEvent(50); !errors.Is(err, ErrAudit) {
		t.Errorf("err = %v, want ErrAudit after corrupting the fork-child set", err)
	}
}
