package sim

import (
	"errors"
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

func twoAgent(t *testing.T, alpha float64) *mining.Population {
	t.Helper()
	p, err := mining.TwoAgent(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	pop := twoAgent(t, 0.3)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no population", Config{Gamma: 0.5, Blocks: 10}},
		{"bad gamma", Config{Population: pop, Gamma: 1.5, Blocks: 10}},
		{"NaN gamma", Config{Population: pop, Gamma: math.NaN(), Blocks: 10}},
		{"no blocks", Config{Population: pop, Gamma: 0.5}},
		{"negative uncle cap", Config{Population: pop, Gamma: 0.5, Blocks: 10, MaxUnclesPerBlock: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 5000, Seed: 42}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Pool != b.Pool || a.Honest != b.Honest || a.RegularCount != b.RegularCount {
		t.Error("identical seeds produced different results")
	}
	cfg.Seed = 43
	c := run(t, cfg)
	if a.Pool == c.Pool && a.RegularCount == c.RegularCount && a.UncleCount == c.UncleCount {
		t.Error("different seeds produced identical results")
	}
}

func TestBlockAccounting(t *testing.T) {
	r := run(t, Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 20000, Seed: 1})
	settled := r.RegularCount + r.UncleCount + r.StaleCount
	if settled > r.Blocks {
		t.Errorf("settled %d blocks out of %d events", settled, r.Blocks)
	}
	// The unfinished final race is excluded, so the difference is at
	// most a short race, not a macroscopic fraction.
	if r.Blocks-settled > 200 {
		t.Errorf("settlement dropped %d blocks; races should be short", r.Blocks-settled)
	}
	if r.RegularCount == 0 || r.UncleCount == 0 {
		t.Error("expected regular and uncle blocks at alpha=0.35")
	}
}

func TestHonestOnlyPopulation(t *testing.T) {
	// With no selfish miners every block is regular and every miner
	// earns exactly its blocks.
	pop, err := mining.Equal(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, Config{Population: pop, Gamma: 0.5, Blocks: 5000, Seed: 7})
	if r.UncleCount != 0 || r.StaleCount != 0 {
		t.Errorf("honest-only run produced %d uncles, %d stale", r.UncleCount, r.StaleCount)
	}
	if r.Pool.Total() != 0 {
		t.Errorf("pool rewards %v without selfish miners", r.Pool.Total())
	}
	if got := r.HonestAbsolute(core.Scenario1); math.Abs(got-1) > 1e-9 {
		t.Errorf("honest absolute revenue %v, want 1", got)
	}
}

func TestStateOccupancyMatchesStationaryDistribution(t *testing.T) {
	// The fraction of block events seen in each (Ls, Lh) state must
	// match the analytic stationary distribution.
	const blocks = 400000
	alpha, gamma := 0.35, 0.5
	r := run(t, Config{Population: twoAgent(t, alpha), Gamma: gamma, Blocks: blocks, Seed: 11})
	m, err := core.New(core.Params{Alpha: alpha, Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	states := []core.State{
		{S: 0, H: 0}, {S: 1, H: 0}, {S: 1, H: 1},
		{S: 2, H: 0}, {S: 3, H: 0}, {S: 3, H: 1}, {S: 4, H: 1}, {S: 4, H: 2},
	}
	for _, s := range states {
		got := r.StateProbability(s)
		want := m.Pi(s)
		// Tolerance ~ 4 sigma of a binomial proportion.
		tol := 4*math.Sqrt(want*(1-want)/blocks) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("state %v: occupancy %.5f, analytic %.5f (tol %.5f)", s, got, want, tol)
		}
	}
}

func TestRevenueMatchesAnalyticModel(t *testing.T) {
	// End-to-end: simulated absolute revenues against the closed-form
	// model, both scenarios, at the paper's gamma = 0.5.
	for _, alpha := range []float64{0.2, 0.35, 0.45} {
		series, err := RunMany(Config{
			Population: twoAgent(t, alpha),
			Gamma:      0.5,
			Blocks:     150000,
			Seed:       1234,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.New(core.Params{Alpha: alpha, Gamma: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		rev := m.Revenue()
		for _, scenario := range []core.Scenario{core.Scenario1, core.Scenario2} {
			acc := series.PoolAbsolute(scenario)
			want := rev.PoolAbsolute(scenario)
			if math.Abs(acc.Mean()-want) > 0.01 {
				t.Errorf("alpha=%v %v: simulated pool revenue %.4f, analytic %.4f",
					alpha, scenario, acc.Mean(), want)
			}
			accH := series.HonestAbsolute(scenario)
			wantH := rev.HonestAbsolute(scenario)
			if math.Abs(accH.Mean()-wantH) > 0.01 {
				t.Errorf("alpha=%v %v: simulated honest revenue %.4f, analytic %.4f",
					alpha, scenario, accH.Mean(), wantH)
			}
		}
	}
}

func TestPoolUnclesAllDistanceOne(t *testing.T) {
	// Remark 5: the pool's uncles are always referenced at distance 1.
	r := run(t, Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 100000, Seed: 3})
	if r.PoolUncleDistances.Total() == 0 {
		t.Fatal("expected pool uncles at gamma = 0.5")
	}
	for _, d := range r.PoolUncleDistances.Outcomes() {
		if d != 1 {
			t.Errorf("pool uncle referenced at distance %d (count %d), want only 1",
				d, r.PoolUncleDistances.Count(d))
		}
	}
}

func TestHonestUncleDistancesMatchTable2(t *testing.T) {
	// Table II: the distribution of honest uncle reference distances at
	// gamma = 0.5 for alpha in {0.3, 0.45}.
	table := map[float64]struct {
		dist []float64
		mean float64
	}{
		0.30: {[]float64{0.527, 0.295, 0.111, 0.043, 0.017, 0.007}, 1.75},
		0.45: {[]float64{0.284, 0.249, 0.171, 0.125, 0.096, 0.075}, 2.72},
	}
	for alpha, want := range table {
		series, err := RunMany(Config{
			Population: twoAgent(t, alpha),
			Gamma:      0.5,
			Blocks:     200000,
			Seed:       99,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := series.HonestUncleDistribution(6)
		for d := 1; d <= 6; d++ {
			if math.Abs(got.P[d-1]-want.dist[d-1]) > 0.02 {
				t.Errorf("alpha=%v distance %d: simulated %.3f, Table II %.3f",
					alpha, d, got.P[d-1], want.dist[d-1])
			}
		}
		if math.Abs(got.Mean()-want.mean) > 0.06 {
			t.Errorf("alpha=%v: simulated expectation %.3f, Table II %.2f",
				alpha, got.Mean(), want.mean)
		}
	}
}

func TestEqualPopulationMatchesTwoAgent(t *testing.T) {
	// The paper simulates n = 1000 equal miners with 300 selfish; the
	// aggregate statistics must match the two-agent abstraction.
	pop, err := mining.Equal(1000, 300)
	if err != nil {
		t.Fatal(err)
	}
	many := run(t, Config{Population: pop, Gamma: 0.5, Blocks: 150000, Seed: 5})
	m, err := core.New(core.Params{Alpha: 0.3, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Revenue().PoolAbsolute(core.Scenario1)
	if got := many.PoolAbsolute(core.Scenario1); math.Abs(got-want) > 0.015 {
		t.Errorf("1000-miner pool revenue %.4f, analytic %.4f", got, want)
	}
	// Individual selfish miners split the pool's revenue; spot-check
	// that rewards were attributed to many distinct miners.
	if len(many.PerMiner()) < 500 {
		t.Errorf("only %d miners earned rewards; expected most of 1000", len(many.PerMiner()))
	}
}

func TestNephewRewardConservation(t *testing.T) {
	// Every counted uncle grants exactly one 1/32 nephew reward.
	r := run(t, Config{Population: twoAgent(t, 0.4), Gamma: 0.5, Blocks: 50000, Seed: 13})
	gotNephew := r.Pool.Nephew + r.Honest.Nephew
	wantNephew := float64(r.UncleCount) / 32
	if math.Abs(gotNephew-wantNephew) > 1e-9 {
		t.Errorf("nephew total %v, want UncleCount/32 = %v", gotNephew, wantNephew)
	}
	gotUncle := r.Pool.Uncle + r.Honest.Uncle
	if gotUncle <= 0 {
		t.Error("expected positive uncle rewards")
	}
	// Static rewards equal the regular block count (Ks = 1).
	if got := r.Pool.Static + r.Honest.Static; math.Abs(got-float64(r.RegularCount)) > 1e-9 {
		t.Errorf("static total %v, want RegularCount %d", got, r.RegularCount)
	}
}

func TestGammaOneNoPoolUncles(t *testing.T) {
	r := run(t, Config{Population: twoAgent(t, 0.3), Gamma: 1, Blocks: 100000, Seed: 17})
	if n := r.PoolUncleDistances.Total(); n != 0 {
		t.Errorf("gamma=1: %d pool uncles, want 0", n)
	}
}

func TestGammaZeroMorePoolUncles(t *testing.T) {
	// At gamma = 0 the pool loses every tie it does not resolve itself,
	// so pool uncles appear; at gamma = 1 they never do.
	r0 := run(t, Config{Population: twoAgent(t, 0.3), Gamma: 0, Blocks: 100000, Seed: 19})
	if n := r0.PoolUncleDistances.Total(); n == 0 {
		t.Error("gamma=0: expected pool uncles")
	}
}

func TestMaxUnclesPerBlockLimit(t *testing.T) {
	// With Ethereum's limit of 2 uncles per block the run must still
	// settle cleanly and produce no block with more than 2 references.
	r := run(t, Config{
		Population:        twoAgent(t, 0.4),
		Gamma:             0.5,
		Blocks:            50000,
		Seed:              23,
		MaxUnclesPerBlock: 2,
	})
	if r.UncleCount == 0 {
		t.Error("expected uncles")
	}
}

func TestOccupancyOverflowBeyondDenseGrid(t *testing.T) {
	// At alpha = 0.95 the pool's lead grows past the dense occupancy
	// grid, exercising the rare-overflow map. Every event must still be
	// counted exactly once.
	r := run(t, Config{Population: twoAgent(t, 0.95), Gamma: 0.5, Blocks: 2000, Seed: 41})
	var total int64
	deep := false
	for state, n := range r.Occupancy {
		total += n
		if state.S >= 64 {
			deep = true
		}
	}
	if total != int64(r.Blocks) {
		t.Errorf("occupancy counts sum to %d, want %d", total, r.Blocks)
	}
	if !deep {
		t.Error("expected states beyond the dense grid at alpha=0.95")
	}
}

func TestResultPerMinerViewMatchesDense(t *testing.T) {
	r := run(t, Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 20000, Seed: 43})
	view := r.PerMiner()
	if len(view) == 0 {
		t.Fatal("no miners in map view")
	}
	for id, reward := range view {
		if got := r.MinerReward(id); got != reward {
			t.Errorf("miner %d: dense %v, map view %v", id, got, reward)
		}
	}
	if got := r.MinerReward(-1); got.Total() != 0 {
		t.Errorf("negative ID returned %v", got)
	}
}

func TestRunManySeedsDiffer(t *testing.T) {
	series, err := RunMany(Config{
		Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 2000, Seed: 1,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(series.Runs))
	}
	if series.Runs[0].Pool == series.Runs[1].Pool &&
		series.Runs[1].Pool == series.Runs[2].Pool {
		t.Error("runs look identical; seeds not varied")
	}
	if _, err := RunMany(Config{Population: twoAgent(t, 0.3), Gamma: 0.5, Blocks: 10}, 0); err == nil {
		t.Error("RunMany with zero runs should fail")
	}
}

func TestSmallAlphaLosesOnlySlightly(t *testing.T) {
	// Fig. 8: below the threshold the pool loses revenue, but "just a
	// small amount" thanks to uncle rewards. At alpha = 0.02 (well below
	// the 0.054 threshold) the simulated revenue must track the analytic
	// value, which sits slightly below alpha.
	const alpha = 0.02
	series, err := RunMany(Config{
		Population: twoAgent(t, alpha), Gamma: 0.5, Blocks: 100000, Seed: 31,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Params{Alpha: alpha, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Revenue().PoolAbsolute(core.Scenario1)
	if want >= alpha {
		t.Fatalf("analytic revenue %v not below alpha; threshold assumption broken", want)
	}
	got := series.PoolAbsolute(core.Scenario1).Mean()
	if math.Abs(got-want) > 0.003 {
		t.Errorf("pool revenue %.4f, analytic %.4f", got, want)
	}
	// The cushion: the loss is small (under 20% of alpha), unlike
	// Bitcoin where the same strategy forfeits far more.
	if want < alpha*0.8 {
		t.Errorf("analytic revenue %v implausibly low; uncle rewards should cushion the loss", want)
	}
}

func TestBitcoinScheduleMatchesEyalSirer(t *testing.T) {
	// Zero uncle rewards: the pool's share must match the Eyal-Sirer
	// relative revenue (Remark 4).
	alpha, gamma := 0.35, 0.5
	series, err := RunMany(Config{
		Population: twoAgent(t, alpha),
		Gamma:      gamma,
		Schedule:   rewards.Bitcoin(),
		Blocks:     150000,
		Seed:       37,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, g := alpha, gamma
	want := (a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a) / (1 - a*(1+(2-a)*a))
	acc := series.Mean(func(r *Result) float64 { return r.PoolShare() })
	got := acc.Mean()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("simulated share %.4f, Eyal-Sirer %.4f", got, want)
	}
}
