package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
)

func timedConfig(t *testing.T, alpha float64, blocks int, rule difficulty.Rule) Config {
	t.Helper()
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Population: pop,
		Gamma:      0.5,
		Blocks:     blocks,
		Seed:       11,
		Time: TimeConfig{
			Enabled:    true,
			Difficulty: difficulty.Params{Rule: rule},
		},
	}
}

// TestTimeOverlayPreservesRace pins the overlay property: enabling the time
// axis (any difficulty rule) consumes randomness only from the dedicated
// time stream, so the block tree, rewards, and occupancy of a timed run are
// identical to the timeless run at the same seed.
func TestTimeOverlayPreservesRace(t *testing.T) {
	for _, rule := range difficulty.Rules() {
		timeless := timedConfig(t, 0.35, 20000, rule)
		timeless.Time = TimeConfig{}
		base, err := Run(timeless)
		if err != nil {
			t.Fatal(err)
		}
		timed, err := Run(timedConfig(t, 0.35, 20000, rule))
		if err != nil {
			t.Fatal(err)
		}
		if timed.Elapsed <= 0 || timed.SettledTime <= 0 {
			t.Fatalf("%v: timed run has elapsed %v, settled time %v", rule, timed.Elapsed, timed.SettledTime)
		}
		if base.Elapsed != 0 || base.SettledTime != 0 {
			t.Fatal("timeless run reported nonzero time")
		}
		// Strip the time-only fields; the race outcome must be identical.
		stripped := timed
		stripped.Elapsed, stripped.SettledTime = 0, 0
		stripped.InitialDifficulty, stripped.FinalDifficulty = 0, 0
		stripped.Retargets = 0
		stripped.Early, stripped.Steady = Window{}, Window{}
		if !reflect.DeepEqual(base, stripped) {
			t.Errorf("%v: timed run's race outcome differs from the timeless run", rule)
		}
	}
}

// TestTimedTimestampsMonotone checks the tree invariant: along every
// branch, timestamps never decrease, and every non-genesis block of a timed
// run is stamped after genesis.
func TestTimedTimestampsMonotone(t *testing.T) {
	cfg := timedConfig(t, 0.4, 5000, difficulty.EIP100)
	_, tree, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id < tree.Len(); id++ {
		b := chain.BlockID(id)
		if tree.TimeOf(b) < tree.TimeOf(tree.ParentOf(b)) {
			t.Fatalf("block %d at %v is earlier than its parent at %v",
				id, tree.TimeOf(b), tree.TimeOf(tree.ParentOf(b)))
		}
		if tree.TimeOf(b) <= 0 {
			t.Fatalf("block %d has non-positive timestamp %v", id, tree.TimeOf(b))
		}
	}
}

// TestStaticDifficultyPacesClock: with static difficulty d and unit hash
// power, events arrive at rate 1/d, so the elapsed time of n events
// concentrates around n*d.
func TestStaticDifficultyPacesClock(t *testing.T) {
	cfg := timedConfig(t, 0.3, 20000, difficulty.Static)
	cfg.Time.Difficulty.Initial = 2.5
	result, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5 * float64(cfg.Blocks)
	if math.Abs(result.Elapsed-want)/want > 0.05 {
		t.Errorf("elapsed %v, want ~%v", result.Elapsed, want)
	}
	if result.FinalDifficulty != 2.5 || result.Retargets != 0 {
		t.Errorf("static run ended at difficulty %v after %d retargets",
			result.FinalDifficulty, result.Retargets)
	}
}

// TestControllerConvergesInEngine closes the loop end to end: under the
// Bitcoin-style rule the steady-state settled regular rate converges to
// the target; under EIP100 the regular-plus-uncle rate does.
func TestControllerConvergesInEngine(t *testing.T) {
	btc, err := Run(timedConfig(t, 0.35, 60000, difficulty.BitcoinStyle))
	if err != nil {
		t.Fatal(err)
	}
	if rate := btc.Steady.RegularRate(); math.Abs(rate-1) > 0.05 {
		t.Errorf("bitcoin-style steady regular rate %v, want ~1", rate)
	}
	if btc.Retargets == 0 {
		t.Error("bitcoin-style run never retargeted")
	}

	eip, err := Run(timedConfig(t, 0.35, 60000, difficulty.EIP100))
	if err != nil {
		t.Fatal(err)
	}
	if rate := eip.Steady.RegularRate() + eip.Steady.UncleRate(); math.Abs(rate-1) > 0.05 {
		t.Errorf("eip100 steady regular+uncle rate %v, want ~1", rate)
	}
	// Selfish mining orphans pool blocks into uncles: pinning the regular
	// rate alone (Bitcoin-style) pays the uncles on top, so issuance
	// inflates past the uncle-counting rule's.
	if btc.Steady.TotalRate() <= eip.Steady.TotalRate() {
		t.Errorf("bitcoin-style steady reward rate %v should exceed eip100's %v",
			btc.Steady.TotalRate(), eip.Steady.TotalRate())
	}
}

// TestWindowsPartitionSettledChain: the early window covers the first
// epoch of settled blocks and the steady window the trailing half; their
// tallies must be consistent with the whole-run settlement.
func TestWindowsPartitionSettledChain(t *testing.T) {
	cfg := timedConfig(t, 0.35, 20000, difficulty.BitcoinStyle)
	result, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := cfg.Time.Difficulty.WithDefaults().Epoch
	if result.Early.Regular != epoch {
		t.Errorf("early window has %d regular blocks, want the epoch %d", result.Early.Regular, epoch)
	}
	if want := result.RegularCount - result.RegularCount/2; result.Steady.Regular != want {
		t.Errorf("steady window has %d regular blocks, want the trailing half %d",
			result.Steady.Regular, want)
	}
	if result.Early.End <= result.Early.Start || result.Steady.End <= result.Steady.Start {
		t.Error("window time bounds are degenerate")
	}
	if result.Steady.End != result.SettledTime {
		t.Errorf("steady window ends at %v, settled time is %v", result.Steady.End, result.SettledTime)
	}
	// Window tallies never exceed the full settlement's.
	for pool, reward := range result.Steady.ByPool {
		if reward.Total() > result.ByPool[pool].Total()+1e-9 {
			t.Errorf("pool %d steady window reward %v exceeds run total %v",
				pool, reward.Total(), result.ByPool[pool].Total())
		}
	}
	// Rates are finite and positive on a converged run.
	if result.Steady.RateOf(1) <= 0 || result.TotalRate() <= 0 {
		t.Error("degenerate steady rates")
	}
}

// TestTimedRunnerReuse extends the Runner-reuse contract to timed
// configurations: reusing one Runner across heterogeneous timed and
// timeless runs is bit-identical to fresh simulators.
func TestTimedRunnerReuse(t *testing.T) {
	configs := []Config{
		timedConfig(t, 0.35, 3000, difficulty.EIP100),
		timedConfig(t, 0.25, 3000, difficulty.Static),
		func() Config { c := timedConfig(t, 0.3, 3000, difficulty.BitcoinStyle); c.Seed = 99; return c }(),
		func() Config {
			c := timedConfig(t, 0.3, 3000, difficulty.BitcoinStyle)
			c.Time = TimeConfig{}
			return c
		}(),
		timedConfig(t, 0.35, 3000, difficulty.EIP100), // repeat: controller Reset path
	}
	reused := NewRunner()
	for i, cfg := range configs {
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reused.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, got) {
			t.Errorf("config %d: reused Runner diverged from fresh run", i)
		}
	}
}

// TestTimedConfigValidation rejects unusable difficulty parameters through
// the simulator's own validation.
func TestTimedConfigValidation(t *testing.T) {
	cfg := timedConfig(t, 0.3, 100, difficulty.BitcoinStyle)
	cfg.Time.Difficulty.TargetRate = -1
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative target rate: err = %v, want ErrBadConfig", err)
	}
	cfg = timedConfig(t, 0.3, 100, difficulty.Rule(42))
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown rule: err = %v, want ErrBadConfig", err)
	}
}
