package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// FuzzValidateReaction pins the protocol gate every strategy decision
// passes through: for any representable race frame, validateReaction must
// accept exactly the legal reactions, and an accepted reaction must never
// commit a non-leading branch, publish blocks that do not exist, or retract
// announced ones.
func FuzzValidateReaction(f *testing.F) {
	f.Add(0, false, false, 3, 1, 0)
	f.Add(2, true, false, 2, 1, 1)
	f.Add(1, false, true, 1, 2, 0)
	f.Add(3, false, false, 3, 2, 2)
	f.Add(1, false, false, 3, 1, 2) // un-publish attempt
	f.Add(4, false, false, 3, 1, 0) // publish beyond the branch
	f.Add(0, true, true, 3, 1, 0)   // commit and adopt
	f.Fuzz(func(t *testing.T, publishTo int, commit, adopt bool, ls, lh, published int) {
		if ls < 0 || lh < 0 || published < 0 || published > ls {
			t.Skip("not a representable race frame")
		}
		r := Reaction{PublishTo: publishTo, Commit: commit, Adopt: adopt}
		err := validateReaction(r, ls, lh, published)
		legal := !(commit && adopt) &&
			!(commit && ls <= lh) &&
			publishTo <= ls &&
			(publishTo == 0 || publishTo >= published)
		if (err == nil) != legal {
			t.Fatalf("validateReaction(%+v, ls=%d, lh=%d, published=%d) err=%v, legality=%v",
				r, ls, lh, published, err, legal)
		}
		// The allocation-free twin used by decision-table compilation must
		// agree with the error-reporting gate exactly.
		if got := reactionAllowed(r, ls, lh, published); got != (err == nil) {
			t.Fatalf("reactionAllowed(%+v, ls=%d, lh=%d, published=%d) = %v, validateReaction err=%v",
				r, ls, lh, published, got, err)
		}
		if err != nil && !errors.Is(err, ErrBadReaction) {
			t.Fatalf("error %v does not wrap ErrBadReaction", err)
		}
		if err == nil && commit && ls <= lh {
			t.Fatal("accepted commit of a non-leading branch")
		}
	})
}

// randomReactor is a strategy that draws a uniformly random *legal*
// reaction at every decision point. It deliberately breaks the
// "deterministic function of the frame" contract (it owns a generator), so
// it lives in tests only: the point is to push the simulator through race
// trajectories no designed strategy visits.
type randomReactor struct {
	r *rng.Source
}

func (s *randomReactor) Name() string { return "random-legal" }

func (s *randomReactor) ReactToPool(ls, lh, published int) Reaction {
	return s.react(ls, lh, published)
}

func (s *randomReactor) ReactToHonest(ls, lh, published int) Reaction {
	return s.react(ls, lh, published)
}

func (s *randomReactor) react(ls, lh, published int) Reaction {
	switch s.r.Intn(4) {
	case 0:
		return Reaction{}
	case 1:
		return Reaction{Adopt: true}
	case 2:
		if ls > lh {
			return Reaction{Commit: true}
		}
		return Reaction{}
	default:
		if ls == published {
			return Reaction{}
		}
		// Any prefix from the announced count up to the whole branch.
		return Reaction{PublishTo: published + s.r.Intn(ls-published+1)}
	}
}

// FuzzRandomLegalStrategySimulation is the randomized-strategy property
// test: a simulator driven by arbitrary legal reactions (any pool count,
// alpha, gamma, difficulty regime) must never error, must settle exactly at
// the consensus floor (never past it), must conserve blocks — every minted
// block is settled as regular, uncle, or stale — and, when the time axis is
// on, must keep timestamps monotone along every branch and elapsed time
// positive, with the same conservation laws holding under retargeting.
func FuzzRandomLegalStrategySimulation(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(30), uint8(128), uint8(1), uint16(2000), uint8(0))
	f.Add(uint64(7), uint64(11), uint8(45), uint8(0), uint8(2), uint16(1500), uint8(1))
	f.Add(uint64(42), uint64(43), uint8(60), uint8(255), uint8(3), uint16(900), uint8(2))
	f.Add(uint64(99), uint64(5), uint8(10), uint8(64), uint8(2), uint16(400), uint8(3))
	f.Fuzz(func(t *testing.T, seed, strategySeed uint64, alphaByte, gammaByte, poolsByte uint8, blocksWord uint16, timeByte uint8) {
		pools := 1 + int(poolsByte)%3
		totalAlpha := 0.10 + float64(alphaByte%50)/100 // 0.10 .. 0.59
		alphas := make([]float64, pools)
		for i := range alphas {
			alphas[i] = totalAlpha / float64(pools)
		}
		pop, err := mining.MultiAgent(alphas...)
		if err != nil {
			t.Fatal(err)
		}
		strategies := make([]Strategy, pools)
		for i := range strategies {
			strategies[i] = &randomReactor{r: rng.New(strategySeed + uint64(i))}
		}
		cfg := Config{
			Population: pop,
			Gamma:      float64(gammaByte) / 255,
			Blocks:     200 + int(blocksWord)%4000,
			Seed:       seed,
			Strategies: strategies,
			Time:       fuzzTimeConfig(timeByte),
		}.withDefaults()
		if err := cfg.validate(); err != nil {
			t.Fatal(err)
		}

		var s simulator
		s.init(cfg)
		result, err := settleRun(&s)
		if err != nil {
			t.Fatalf("random legal reactions errored: %v", err)
		}

		// Settlement happens exactly at the consensus floor: the floor is
		// an ancestor of the public tip and of every live pool branch, and
		// the regular chain is precisely the chain down from the floor.
		floor := s.consensusFloor()
		onChainOf := func(tip chain.BlockID) bool {
			return tip == floor || s.tree.IsAncestor(floor, tip)
		}
		if !onChainOf(s.pubTip) {
			t.Error("consensus floor is not on the public tip's chain")
		}
		for i := range s.pools {
			if !onChainOf(s.pools[i].tip()) {
				t.Errorf("consensus floor is not on pool %d's branch", i+1)
			}
		}
		if got, want := result.RegularCount, s.tree.HeightOf(floor); got != want {
			t.Errorf("settled %d regular blocks, want the floor height %d", got, want)
		}

		// Block conservation: regular + uncle + stale = minted. One block
		// is minted per event, plus genesis (which is never settled).
		minted := s.tree.Len() - 1
		if minted != cfg.Blocks {
			t.Errorf("minted %d blocks over %d events", minted, cfg.Blocks)
		}
		if got := result.RegularCount + result.UncleCount + result.StaleCount; got != minted {
			t.Errorf("settled classes sum to %d, want %d (r=%d u=%d s=%d)",
				got, minted, result.RegularCount, result.UncleCount, result.StaleCount)
		}

		// Occupancy conservation: every pool observes its frame once per
		// event.
		for i, occ := range result.OccupancyByPool {
			var total int64
			for _, n := range occ {
				total += n
			}
			if total != int64(cfg.Blocks) {
				t.Errorf("pool %d occupancy sums to %d over %d events", i+1, total, cfg.Blocks)
			}
		}

		// Reward conservation: regular blocks each pay exactly one static
		// reward, whatever the difficulty regime — retargeting may change
		// *when* blocks arrive, never what they pay.
		var static float64
		for _, reward := range result.ByPool {
			static += reward.Static
		}
		if int(static) != result.RegularCount {
			t.Errorf("settled static rewards %v, want one per regular block (%d)",
				static, result.RegularCount)
		}

		// Time invariants, when the axis is on: strictly positive elapsed
		// time bounding the settled span, positive difficulty, and
		// timestamps monotone along every branch.
		if cfg.Time.Enabled {
			if result.Elapsed <= 0 {
				t.Errorf("elapsed time %v, want positive", result.Elapsed)
			}
			if result.SettledTime < 0 || result.SettledTime > result.Elapsed {
				t.Errorf("settled time %v outside [0, %v]", result.SettledTime, result.Elapsed)
			}
			if result.FinalDifficulty <= 0 {
				t.Errorf("final difficulty %v, want positive", result.FinalDifficulty)
			}
			for id := 1; id < s.tree.Len(); id++ {
				b := chain.BlockID(id)
				if s.tree.TimeOf(b) < s.tree.TimeOf(s.tree.ParentOf(b)) {
					t.Fatalf("block %d predates its parent", id)
				}
			}
		} else if result.Elapsed != 0 || result.SettledTime != 0 {
			t.Errorf("timeless run reported elapsed %v, settled %v",
				result.Elapsed, result.SettledTime)
		}

		// Streaming equivalence: the same trajectory settled incrementally
		// (with the runtime auditor verifying conservation at every sampled
		// event along the way) must reproduce the one-shot Result bit for
		// bit. Fresh reactors at the same seeds replay the same decisions.
		streamCfg := cfg
		streamCfg.Streaming = true
		streamCfg.Audit = AuditConfig{Enabled: true, SampleEvery: 64}
		streamStrategies := make([]Strategy, pools)
		for i := range streamStrategies {
			streamStrategies[i] = &randomReactor{r: rng.New(strategySeed + uint64(i))}
		}
		streamCfg.Strategies = streamStrategies
		var ss simulator
		ss.init(streamCfg)
		streamResult, err := settleRun(&ss)
		if err != nil {
			t.Fatalf("streaming replay errored: %v", err)
		}
		want := result
		if want.RegularCount >= maxStreamSnaps {
			// The snapshot ring coarsened: Steady is approximate by
			// contract, every other field stays exact.
			want.Steady = Window{}
			streamResult.Steady = Window{}
		}
		if !reflect.DeepEqual(want, streamResult) {
			diffResults(t, want, streamResult)
		}
	})
}

// fuzzTimeConfig maps one fuzz byte onto the time-axis configuration space:
// off, or on under each difficulty rule with a fuzz-scaled epoch.
func fuzzTimeConfig(b uint8) TimeConfig {
	switch b % 4 {
	case 1:
		return TimeConfig{Enabled: true} // static difficulty
	case 2:
		return TimeConfig{Enabled: true, Difficulty: difficulty.Params{
			Rule:  difficulty.BitcoinStyle,
			Epoch: 16 + int(b),
		}}
	case 3:
		return TimeConfig{Enabled: true, Difficulty: difficulty.Params{
			Rule:  difficulty.EIP100,
			Epoch: 16 + int(b),
		}}
	default:
		return TimeConfig{}
	}
}
