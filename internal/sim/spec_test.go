package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseStrategySpecRoundTrip(t *testing.T) {
	tests := []struct {
		in        string
		canonical string
	}{
		{"algorithm1", "algorithm1"},
		{"honest", "honest"},
		{"stubborn", "stubborn"},
		{"stubborn:lead=1", "stubborn:lead=1"},
		{"stubborn:trail=2,lead=1", "stubborn:lead=1,trail=2"},
		{"stubborn:fork=1,lead=0,trail=3", "stubborn:fork=1,lead=0,trail=3"},
		{"eager-publish:lead=4", "eager-publish:lead=4"},
		// Legacy aliases normalize into the grammar.
		{"trail-stubborn", "stubborn:lead=1"},
		{"eager-publish-3", "eager-publish:lead=3"},
	}
	for _, tt := range tests {
		spec, err := ParseStrategySpec(tt.in)
		if err != nil {
			t.Errorf("ParseStrategySpec(%q): %v", tt.in, err)
			continue
		}
		if got := spec.String(); got != tt.canonical {
			t.Errorf("ParseStrategySpec(%q).String() = %q, want %q", tt.in, got, tt.canonical)
		}
		// Round trip: parsing the canonical form reproduces the spec.
		again, err := ParseStrategySpec(spec.String())
		if err != nil {
			t.Errorf("reparse %q: %v", spec.String(), err)
		} else if !reflect.DeepEqual(spec, again) {
			t.Errorf("round trip of %q: %+v != %+v", tt.in, spec, again)
		}
	}
}

func TestParseStrategySpecErrors(t *testing.T) {
	for _, in := range []string{
		"", ":", "Stubborn", "stubborn:", "stubborn:lead", "stubborn:lead=",
		"stubborn:lead=x", "stubborn:lead=1,lead=2", "stubborn:LEAD=1",
		"stubborn:lead=1,", "-stubborn", "stubborn-",
	} {
		if _, err := ParseStrategySpec(in); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseStrategySpec(%q) err = %v, want ErrBadSpec", in, err)
		}
	}
}

func TestNewStrategyFromSpec(t *testing.T) {
	tests := []struct {
		in   string
		want Strategy
	}{
		{"algorithm1", Algorithm1{}},
		{"honest", HonestStrategy{}},
		{"eager-publish", EagerPublish{Lead: 2}}, // default fills in
		{"eager-publish:lead=5", EagerPublish{Lead: 5}},
		// The pre-registry API accepted any k >= 2; large leads must
		// keep parsing.
		{"eager-publish-100", EagerPublish{Lead: 100}},
		{"stubborn", Stubborn{}},
		{"stubborn:lead=1,trail=2", Stubborn{Lead: true, Trail: 2}},
		{"stubborn:fork=1", Stubborn{EqualFork: true}},
		{"trail-stubborn", Stubborn{Lead: true}},
	}
	for _, tt := range tests {
		got, err := ParseStrategy(tt.in)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseStrategy(%q) = %#v, want %#v", tt.in, got, tt.want)
		}
	}
}

func TestNewStrategyRejectsBadSpecs(t *testing.T) {
	for _, in := range []string{
		"nonsense",             // unknown name
		"stubborn:depth=1",     // unknown parameter
		"stubborn:lead=2",      // out of range
		"stubborn:trail=99",    // out of range
		"eager-publish:lead=1", // below the minimum trigger
		"eager-publish-1",      // same, via the legacy alias
		"algorithm1:lead=1",    // parameterless strategy given a parameter
	} {
		if _, err := ParseStrategy(in); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseStrategy(%q) err = %v, want ErrBadSpec", in, err)
		}
	}
}

func TestStrategyDefsListing(t *testing.T) {
	defs := StrategyDefs()
	names := make([]string, len(defs))
	for i, def := range defs {
		names[i] = def.Name
	}
	for _, want := range []string{"algorithm1", "eager-publish", "honest", "stubborn"} {
		found := false
		for _, name := range names {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("StrategyDefs not sorted: %v", names)
	}
	// Usage strings advertise the parameter ranges for -list consumers.
	for _, def := range defs {
		if def.Name == "stubborn" {
			usage := def.Usage()
			for _, frag := range []string{"lead=0..1", "fork=0..1", "trail=0..16"} {
				if !strings.Contains(usage, frag) {
					t.Errorf("stubborn usage %q missing %q", usage, frag)
				}
			}
		}
	}
}

func TestNewStrategiesForPools(t *testing.T) {
	specs := []StrategySpec{
		MustStrategySpec("algorithm1"),
		MustStrategySpec("stubborn:trail=1"),
	}
	strategies, err := NewStrategies(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(strategies) != 2 || strategies[0] != (Algorithm1{}) || strategies[1] != (Stubborn{Trail: 1}) {
		t.Errorf("NewStrategies = %#v", strategies)
	}
	if _, err := NewStrategies([]StrategySpec{{Name: "nope"}}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
}

func TestRegisterStrategyPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterStrategy(StrategyDef{Name: "algorithm1", New: func(map[string]int) Strategy { return Algorithm1{} }})
}

// TestSpecRunMatchesDirectConstruction pins the registry path against the
// hand-constructed strategies: a run configured through specs is
// bit-identical to one configured through the concrete types.
func TestSpecRunMatchesDirectConstruction(t *testing.T) {
	for _, tt := range []struct {
		spec   string
		direct Strategy
	}{
		{"algorithm1", Algorithm1{}},
		{"honest", HonestStrategy{}},
		{"stubborn:lead=1", Stubborn{Lead: true}},
		{"stubborn:trail=2", Stubborn{Trail: 2}},
		{"eager-publish:lead=3", EagerPublish{Lead: 3}},
	} {
		parsed, err := ParseStrategy(tt.spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Population: twoAgent(t, 0.35), Gamma: 0.5, Blocks: 10000, Seed: 7}
		cfg.Strategy = tt.direct
		want := run(t, cfg)
		cfg.Strategy = parsed
		if got := run(t, cfg); !reflect.DeepEqual(want, got) {
			t.Errorf("%s: spec-built run differs from direct construction", tt.spec)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}
