package sim

import (
	"github.com/ethselfish/ethselfish/internal/chain"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rng"
)

// This file is the simulator's continuous-time axis. The timeless engine
// measures everything in block events; enabling TimeConfig adds physical
// time on top: block events arrive with exponential inter-arrival times at
// rate 1/difficulty (the population's hash power is normalized to 1), every
// block is stamped with the simulation clock, and an optional
// difficulty.Controller closes the feedback loop — the engine feeds it each
// block as the consensus floor settles it, with its real timestamp and its
// actually referenced uncles counted off the tree, and the controller's
// difficulty paces the next inter-arrival draw.
//
// The time axis is an overlay: its randomness comes from a dedicated
// second stream (timeRandom), so the event/race stream consumes exactly the
// same draws whether time is enabled or not, and the block tree produced by
// a timed run is bit-identical to the timeless run at the same seed. The
// timeless path is in turn bit-identical to the pre-time engine (pinned by
// TestGoldenTimeless).

// timeStreamSalt derives the time stream's seed from the run seed. Any
// fixed non-zero constant works: rng.New expands the seed through
// splitmix64, so the salted stream is statistically independent of the
// event stream, and the salt is far outside the consecutive-seed window
// DeriveSeed uses within a batch.
const timeStreamSalt = 0xD1B54A32D192ED03

// TimeConfig configures the continuous-time axis. The zero value disables
// it: the simulator stays the timeless block-count engine, consuming no
// extra randomness and producing bit-identical results to the pre-time
// engine.
type TimeConfig struct {
	// Enabled turns the time axis on.
	Enabled bool

	// Difficulty configures the difficulty regime (defaults applied by
	// the simulator: rule Static, target rate 1, epoch
	// difficulty.DefaultEpoch, initial difficulty 1). Rule Static keeps
	// difficulty constant; BitcoinStyle and EIP100 close the feedback
	// loop through an engine-driven difficulty.Controller.
	Difficulty difficulty.Params
}

// currentDifficulty returns the difficulty pacing the next inter-arrival
// draw: the controller's when the feedback loop is closed, the static
// initial value otherwise.
func (s *simulator) currentDifficulty() float64 {
	if s.ctrl != nil {
		return s.ctrl.Difficulty()
	}
	return s.staticDifficulty
}

// advanceClock samples one exponential inter-arrival and moves the
// simulation clock: mean spacing equals the current difficulty (unit total
// hash power), one draw from the dedicated time stream per event.
func (s *simulator) advanceClock() {
	s.clock += s.timeRandom.ExpUnit() * s.currentDifficulty()
}

// observeSettled feeds the difficulty controller every block the consensus
// floor has newly settled, in chain order. The floor only ever advances
// along the settled chain (every live branch descends from it), so the walk
// from the new floor down to the last observed block is exactly the newly
// settled segment. Uncle counts are read off the tree — only references the
// schedule can realize count, matching the settlement's UncleCount — so the
// controller sees the protocol's actual uncle production, not a model
// approximation.
func (s *simulator) observeSettled() {
	// The end-of-event flushFloor guarantees s.floor equals
	// consensusFloor() here, so the observation reads the maintained floor
	// instead of re-walking common ancestors every event. The poolless
	// engine never resolves (the floor is pool-triggered); its consensus
	// floor is simply the public tip.
	floor := s.floor
	if len(s.pools) == 0 {
		floor = s.pubTip
	}
	if floor == s.observedTo {
		return
	}
	seg := s.obsScratch[:0]
	for b := floor; b != s.observedTo; {
		seg = append(seg, b)
		b = s.tree.ParentOf(b)
	}
	tree := s.tree
	for i := len(seg) - 1; i >= 0; i-- {
		b := seg[i]
		_, height, uncles := tree.BlockInfo(b)
		counted := 0
		for _, u := range uncles {
			if s.cfg.Schedule.Referenceable(height - tree.HeightOf(u)) {
				counted++
			}
		}
		s.ctrl.ObserveBlock(tree.TimeOf(b), counted)
	}
	s.obsScratch = seg
	s.observedTo = floor
}

// Window is one time slice of the settled chain: its time bounds, its block
// production, and the rewards settled inside it (attributed to the slice
// containing the rewarding regular block's timestamp; an uncle's reward
// lands in its nephew's slice, when the nephew is paid).
type Window struct {
	// Start and End bound the slice in simulation time.
	Start, End float64

	// Regular and Uncles count the settled regular blocks inside the
	// slice and the uncles they reference.
	Regular, Uncles int

	// ByPool is the per-pool reward tally settled inside the slice,
	// indexed like Result.ByPool (entry 0: the honest crowd).
	ByPool []chain.Reward
}

// Duration returns the slice's length in simulation time.
func (w Window) Duration() float64 { return w.End - w.Start }

// RateOf returns one pool's absolute reward rate (reward per unit time)
// inside the slice.
func (w Window) RateOf(pool mining.PoolID) float64 {
	if pool < 0 || int(pool) >= len(w.ByPool) {
		return 0
	}
	return safeRate(w.ByPool[pool].Total(), w.Duration())
}

// TotalRate returns the system-wide absolute reward rate inside the slice.
func (w Window) TotalRate() float64 {
	var total float64
	for _, r := range w.ByPool {
		total += r.Total()
	}
	return safeRate(total, w.Duration())
}

// RegularRate returns the settled regular-block rate inside the slice.
func (w Window) RegularRate() float64 { return safeRate(float64(w.Regular), w.Duration()) }

// UncleRate returns the realized uncle rate inside the slice.
func (w Window) UncleRate() float64 { return safeRate(float64(w.Uncles), w.Duration()) }

// safeRate divides, mapping an empty time span to zero.
func safeRate(amount, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return amount / duration
}

// timeWindows splits the settled chain into the Result's two windows and
// fills the Result's time fields. The early window covers the first
// min(epoch, settled) regular blocks — the pre-adjustment difficulty
// regime: under the Bitcoin-style rule it ends exactly at the first
// retarget, and under EIP100 the controller has applied at most an epoch of
// 1/epoch-gain steps there. The steady window covers the trailing half of
// the settled chain, where the controller has converged. Each window's
// rewards are attributed by the rewarding regular block's position on the
// chain.
func (s *simulator) timeWindows(result *Result, floor chain.BlockID) {
	tree := s.tree
	pop := s.cfg.Population
	regular := result.RegularCount
	epoch := s.cfg.Time.Difficulty.Epoch
	earlyEnd := epoch
	if earlyEnd > regular {
		earlyEnd = regular
	}
	steadyStart := regular / 2

	nPools := len(result.ByPool)
	early := Window{ByPool: make([]chain.Reward, nPools)}
	steady := Window{ByPool: make([]chain.Reward, nPools), End: tree.TimeOf(floor)}
	for id := floor; id != tree.Genesis(); id = tree.ParentOf(id) {
		_, height, uncles := tree.BlockInfo(id)
		at := tree.TimeOf(id)
		if height == earlyEnd {
			early.End = at
		}
		if height == steadyStart {
			steady.Start = at
		}
		inEarly := height <= earlyEnd
		inSteady := height > steadyStart
		if !inEarly && !inSteady {
			continue
		}
		minerPool := pop.PoolOf(tree.MinerOf(id))
		if inEarly {
			s.tallyWindowBlock(&early, minerPool, height, uncles)
		}
		if inSteady {
			s.tallyWindowBlock(&steady, minerPool, height, uncles)
		}
	}
	result.Early = early
	result.Steady = steady
}

// tallyWindowBlock attributes one settled regular block's rewards — its
// static reward, its nephew bonuses, and its referenced uncles' rewards —
// to a window.
func (s *simulator) tallyWindowBlock(w *Window, minerPool mining.PoolID, height int, uncles []chain.BlockID) {
	w.Regular++
	w.ByPool[minerPool].Static++
	for _, u := range uncles {
		d := height - s.tree.HeightOf(u)
		if !s.cfg.Schedule.Referenceable(d) {
			continue
		}
		w.Uncles++
		w.ByPool[minerPool].Nephew += s.cfg.Schedule.Nephew(d)
		w.ByPool[s.poolOf(u)].Uncle += s.cfg.Schedule.Uncle(d)
	}
}

// timeSeed derives the dedicated time-stream seed for a run.
func timeSeed(seed uint64) uint64 { return seed ^ timeStreamSalt }

// initTime prepares the simulator's time axis for one run (cfg defaults
// already applied): reseed or create the dedicated time stream, reset or
// rebuild the difficulty controller, and rewind the clock and the settled
// observation cursor.
func (s *simulator) initTime(cfg Config) {
	s.clock = 0
	s.timing = cfg.Time.Enabled
	if !s.timing {
		s.ctrl = nil
		return
	}
	if s.timeRandom == nil {
		s.timeRandom = rng.New(timeSeed(cfg.Seed))
	} else {
		s.timeRandom.Reseed(timeSeed(cfg.Seed))
	}
	s.timeRandom.SetAntithetic(cfg.Antithetic)
	p := cfg.Time.Difficulty
	s.staticDifficulty = p.Initial
	if p.Rule == difficulty.Static {
		// Static difficulty needs no feedback: skip controller stepping
		// (and the per-event floor computation it requires) entirely.
		s.ctrl = nil
		return
	}
	if s.ctrl == nil || s.ctrl.Params() != p {
		// The params were validated with the config; rebuilding cannot
		// fail.
		ctrl, err := difficulty.NewController(p)
		if err != nil {
			panic("sim: validated difficulty params rejected: " + err.Error())
		}
		s.ctrl = ctrl
	} else {
		s.ctrl.Reset()
	}
	s.observedTo = s.tree.Genesis()
}
