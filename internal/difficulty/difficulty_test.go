package difficulty

import (
	"errors"
	"math"
	"testing"
)

func TestControllerValidation(t *testing.T) {
	tests := []struct {
		name            string
		rule            Rule
		target, initial float64
	}{
		{"unknown rule", Rule(0), 1, 1},
		{"zero target", BitcoinStyle, 0, 1},
		{"negative target", BitcoinStyle, -1, 1},
		{"zero difficulty", EIP100, 1, 0},
		{"NaN target", EIP100, math.NaN(), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewController(tt.rule, tt.target, tt.initial); !errors.Is(err, ErrBadController) {
				t.Errorf("err = %v, want ErrBadController", err)
			}
		})
	}
}

func TestControllerRetargetDirection(t *testing.T) {
	c, err := NewController(BitcoinStyle, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks arriving twice as fast as the target double the difficulty.
	c.Retarget(200, 100)
	if math.Abs(c.Difficulty()-200) > 1e-9 {
		t.Errorf("difficulty = %v, want 200", c.Difficulty())
	}
	// Blocks arriving at half the target rate halve it again.
	c.Retarget(50, 100)
	if math.Abs(c.Difficulty()-100) > 1e-9 {
		t.Errorf("difficulty = %v, want 100", c.Difficulty())
	}
}

func TestControllerRetargetClamped(t *testing.T) {
	c, err := NewController(BitcoinStyle, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	c.Retarget(1000000, 1) // observed rate 1e6: clamp to 4x
	if math.Abs(c.Difficulty()-400) > 1e-9 {
		t.Errorf("difficulty = %v, want clamped 400", c.Difficulty())
	}
	c.Retarget(0, 1000000) // observed ~0: clamp to /4
	if math.Abs(c.Difficulty()-100) > 1e-9 {
		t.Errorf("difficulty = %v, want clamped 100", c.Difficulty())
	}
	c.Retarget(5, 0) // zero elapsed: ignored
	if math.Abs(c.Difficulty()-100) > 1e-9 {
		t.Errorf("difficulty = %v, want unchanged 100", c.Difficulty())
	}
}

func TestCountedPerRule(t *testing.T) {
	btc, err := NewController(BitcoinStyle, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eip, err := NewController(EIP100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := btc.Counted(100, 7); got != 100 {
		t.Errorf("BitcoinStyle counted = %d, want 100", got)
	}
	if got := eip.Counted(100, 7); got != 107 {
		t.Errorf("EIP100 counted = %d, want 107", got)
	}
	if BitcoinStyle.String() != "bitcoin-style" || EIP100.String() != "eip100" {
		t.Error("rule names wrong")
	}
}

func TestSimulateConvergesToTargets(t *testing.T) {
	// Under each rule, the counted rate must converge to the target.
	base := SimConfig{
		Alpha:          0.35,
		Gamma:          0.5,
		TargetRate:     1,
		Epochs:         30,
		BlocksPerEpoch: 20000,
		Seed:           7,
	}
	btcCfg := base
	btcCfg.Rule = BitcoinStyle
	btc, err := Simulate(btcCfg)
	if err != nil {
		t.Fatal(err)
	}
	eipCfg := base
	eipCfg.Rule = EIP100
	eip, err := Simulate(eipCfg)
	if err != nil {
		t.Fatal(err)
	}

	btcSteady := SteadyState(btc)
	eipSteady := SteadyState(eip)
	if math.Abs(btcSteady.RegularRate-1) > 0.05 {
		t.Errorf("bitcoin-style regular rate %v, want ~1", btcSteady.RegularRate)
	}
	if got := eipSteady.RegularRate + eipSteady.UncleRate; math.Abs(got-1) > 0.05 {
		t.Errorf("eip100 regular+uncle rate %v, want ~1", got)
	}
	// The paper's point: uncle-blind difficulty lets selfish mining
	// inflate issuance; EIP100 keeps it lower.
	if btcSteady.RewardRate <= eipSteady.RewardRate {
		t.Errorf("bitcoin-style reward rate %v should exceed eip100's %v",
			btcSteady.RewardRate, eipSteady.RewardRate)
	}
	// Quantitative check against the analytic prediction.
	for _, tc := range []struct {
		cfg    SimConfig
		steady EpochStats
	}{
		{btcCfg, btcSteady},
		{eipCfg, eipSteady},
	} {
		want, err := PredictedRewardRate(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tc.steady.RewardRate-want) > 0.05*want {
			t.Errorf("%v: reward rate %v, analytic %v", tc.cfg.Rule, tc.steady.RewardRate, want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{Rule: EIP100, TargetRate: 1}); err == nil {
		t.Error("zero epochs should fail")
	}
	if _, err := Simulate(SimConfig{
		Rule: EIP100, TargetRate: 1, Epochs: 1, BlocksPerEpoch: 10, Alpha: 0.7,
	}); err == nil {
		t.Error("alpha out of range should fail")
	}
}

func TestSteadyStateEmpty(t *testing.T) {
	if got := SteadyState(nil); got != (EpochStats{}) {
		t.Errorf("SteadyState(nil) = %+v, want zero", got)
	}
}
