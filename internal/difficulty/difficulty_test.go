package difficulty

import (
	"errors"
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{"unknown rule", Params{Rule: Rule(99)}},
		{"negative target", Params{Rule: BitcoinStyle, TargetRate: -1}},
		{"NaN target", Params{Rule: EIP100, TargetRate: math.NaN()}},
		{"inf target", Params{Rule: EIP100, TargetRate: math.Inf(1)}},
		{"negative epoch", Params{Rule: BitcoinStyle, Epoch: -3}},
		{"negative initial", Params{Rule: EIP100, Initial: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewController(tt.p); !errors.Is(err, ErrBadController) {
				t.Errorf("err = %v, want ErrBadController", err)
			}
		})
	}
}

func TestParamsDefaults(t *testing.T) {
	c, err := NewController(Params{})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params()
	if p.Rule != Static || p.TargetRate != 1 || p.Epoch != DefaultEpoch || p.Initial != 1 {
		t.Errorf("defaults = %+v", p)
	}
	if c.Difficulty() != 1 {
		t.Errorf("initial difficulty = %v, want 1", c.Difficulty())
	}
}

func TestStaticNeverAdjusts(t *testing.T) {
	c, err := NewController(Params{Rule: Static, Initial: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		c.ObserveBlock(float64(i)*0.01, 2) // blocks 100x too fast
	}
	if c.Difficulty() != 3 || c.Retargets() != 0 {
		t.Errorf("static difficulty %v after %d retargets, want 3 after 0",
			c.Difficulty(), c.Retargets())
	}
}

// feedRegular feeds n settled blocks at fixed spacing with the given uncle
// count each, continuing from the controller's last timestamp.
func feedRegular(c *Controller, start float64, n int, spacing float64, uncles int) float64 {
	at := start
	for i := 0; i < n; i++ {
		at += spacing
		c.ObserveBlock(at, uncles)
	}
	return at
}

func TestBitcoinStyleEpochRetarget(t *testing.T) {
	c, err := NewController(Params{Rule: BitcoinStyle, TargetRate: 1, Epoch: 100, Initial: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 99 blocks: no retarget yet.
	at := feedRegular(c, 0, 99, 0.5, 7)
	if c.Retargets() != 0 || c.Difficulty() != 100 {
		t.Fatalf("retargeted before the epoch boundary: %d at difficulty %v",
			c.Retargets(), c.Difficulty())
	}
	// The 100th closes the epoch: 100 blocks over 50 time units is rate 2,
	// twice the target, so difficulty doubles. Uncle counts must be
	// ignored by the uncle-blind rule.
	feedRegular(c, at, 1, 0.5, 7)
	if c.Retargets() != 1 {
		t.Fatalf("retargets = %d, want 1", c.Retargets())
	}
	if math.Abs(c.Difficulty()-200) > 1e-9 {
		t.Errorf("difficulty = %v, want 200", c.Difficulty())
	}
	// A slow epoch (rate 1/2) halves it back.
	feedRegular(c, at+0.5, 100, 2, 0)
	if math.Abs(c.Difficulty()-100) > 1e-9 {
		t.Errorf("difficulty = %v, want 100", c.Difficulty())
	}
}

func TestBitcoinStyleRetargetClamped(t *testing.T) {
	c, err := NewController(Params{Rule: BitcoinStyle, TargetRate: 1, Epoch: 10, Initial: 100})
	if err != nil {
		t.Fatal(err)
	}
	feedRegular(c, 0, 10, 1e-6, 0) // ~1e6x too fast: clamped to 4x
	if math.Abs(c.Difficulty()-400) > 1e-9 {
		t.Errorf("difficulty = %v, want clamped 400", c.Difficulty())
	}
	feedRegular(c, 1e-5, 10, 1e6, 0) // ~1e-6x too slow: clamped to /4
	if math.Abs(c.Difficulty()-100) > 1e-9 {
		t.Errorf("difficulty = %v, want clamped 100", c.Difficulty())
	}
}

func TestEIP100PerBlockDirectionAndEquilibrium(t *testing.T) {
	c, err := NewController(Params{Rule: EIP100, TargetRate: 1, Epoch: 64, Initial: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Blocks at twice the target counted rate push difficulty up,
	// one adjustment per block.
	feedRegular(c, 0, 64, 0.5, 0)
	if c.Retargets() != 64 {
		t.Fatalf("retargets = %d, want 64 (one per block)", c.Retargets())
	}
	if c.Difficulty() <= 1 {
		t.Errorf("difficulty %v did not rise under too-fast blocks", c.Difficulty())
	}
	// At exactly the target rate (counting uncles: 2 counted per 2 time
	// units) the error term is zero and difficulty freezes.
	before := c.Difficulty()
	feedRegular(c, 32, 100, 2, 1)
	if got := c.Difficulty(); got != before {
		t.Errorf("difficulty moved from %v to %v at the exact target rate", before, got)
	}
	// Too-slow blocks push it down.
	feedRegular(c, 250, 64, 4, 0)
	if c.Difficulty() >= before {
		t.Errorf("difficulty %v did not fall under too-slow blocks", c.Difficulty())
	}
}

func TestEIP100StepClamped(t *testing.T) {
	c, err := NewController(Params{Rule: EIP100, TargetRate: 1, Epoch: 1, Initial: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 makes the raw step 1 + err; a huge negative error (a very
	// late block) must clamp to halving rather than going negative.
	c.ObserveBlock(1000, 0)
	if math.Abs(c.Difficulty()-0.5) > 1e-12 {
		t.Errorf("difficulty = %v, want clamped 0.5", c.Difficulty())
	}
	// A huge positive error clamps to doubling.
	c.ObserveBlock(1000, 100)
	if math.Abs(c.Difficulty()-1) > 1e-12 {
		t.Errorf("difficulty = %v, want clamped back to 1", c.Difficulty())
	}
}

func TestControllerReset(t *testing.T) {
	c, err := NewController(Params{Rule: EIP100, TargetRate: 1, Epoch: 8, Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	feedRegular(c, 0, 50, 0.1, 1)
	if c.Difficulty() == 2 {
		t.Fatal("difficulty did not move; test is vacuous")
	}
	c.Reset()
	if c.Difficulty() != 2 || c.Retargets() != 0 {
		t.Errorf("after Reset: difficulty %v, retargets %d; want 2, 0",
			c.Difficulty(), c.Retargets())
	}
	// A reset controller reproduces the original trajectory exactly.
	fresh, err := NewController(Params{Rule: EIP100, TargetRate: 1, Epoch: 8, Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	feedRegular(c, 0, 50, 0.1, 1)
	feedRegular(fresh, 0, 50, 0.1, 1)
	if c.Difficulty() != fresh.Difficulty() {
		t.Errorf("reset trajectory %v, fresh %v", c.Difficulty(), fresh.Difficulty())
	}
}

func TestRuleNamesAndParse(t *testing.T) {
	if Static.String() != "static" || BitcoinStyle.String() != "bitcoin-style" || EIP100.String() != "eip100" {
		t.Error("rule names wrong")
	}
	for _, tc := range []struct {
		in   string
		want Rule
	}{
		{"static", Static}, {"bitcoin", BitcoinStyle}, {"bitcoin-style", BitcoinStyle}, {"eip100", EIP100},
	} {
		got, err := ParseRule(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRule(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseRule("bogus"); !errors.Is(err, ErrBadController) {
		t.Error("ParseRule accepted a bogus rule")
	}
	if got := Rules(); len(got) != 3 || got[0] != Static || got[1] != BitcoinStyle || got[2] != EIP100 {
		t.Errorf("Rules() = %v", got)
	}
}

func TestObserveBlockAllocationFree(t *testing.T) {
	for _, rule := range []Rule{Static, BitcoinStyle, EIP100} {
		c, err := NewController(Params{Rule: rule})
		if err != nil {
			t.Fatal(err)
		}
		at := 0.0
		if allocs := testing.AllocsPerRun(1000, func() {
			at++
			c.ObserveBlock(at, 1)
		}); allocs != 0 {
			t.Errorf("%v: ObserveBlock allocates %v per call, want 0", rule, allocs)
		}
	}
}

func TestPredictedRewardRate(t *testing.T) {
	schedule := rewards.Ethereum()
	btc, err := PredictedRewardRate(BitcoinStyle, 1, 0.35, 0.5, schedule)
	if err != nil {
		t.Fatal(err)
	}
	eip, err := PredictedRewardRate(EIP100, 1, 0.35, 0.5, schedule)
	if err != nil {
		t.Fatal(err)
	}
	// Scenario 1 pays uncle rewards on top of a pinned regular rate, so
	// issuance inflates past the all-honest rate; scenario 2 folds uncles
	// into the counted rate and stays at or below scenario 1.
	if btc <= 1 {
		t.Errorf("bitcoin-style predicted rate %v, want > 1 (inflated issuance)", btc)
	}
	if eip >= btc {
		t.Errorf("eip100 predicted rate %v should be below bitcoin-style's %v", eip, btc)
	}
	// The target rate scales the prediction linearly.
	double, err := PredictedRewardRate(BitcoinStyle, 2, 0.35, 0.5, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(double-2*btc) > 1e-12 {
		t.Errorf("rate at target 2 = %v, want %v", double, 2*btc)
	}
	if _, err := PredictedRewardRate(Static, 1, 0.35, 0.5, schedule); !errors.Is(err, ErrBadController) {
		t.Error("Static must have no closed-form prediction")
	}
}
