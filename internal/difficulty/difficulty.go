// Package difficulty models the difficulty-adjustment rules whose contrast
// motivates the paper's two revenue scenarios (Sec. II-C, IV-E2):
//
//   - Pre-Byzantium (and Bitcoin): difficulty targets the growth rate of the
//     main chain only. Under selfish mining, uncle and nephew rewards are
//     paid on top of a fixed regular-block rate, so total issuance inflates
//     (scenario 1).
//   - EIP100 (Byzantium): difficulty targets the regular-plus-uncle rate, so
//     extra uncles slow the chain and issuance stays bounded (scenario 2).
//
// The package provides a retargeting controller and an epoch-driven
// simulation coupling the controller to the selfish-mining simulator, which
// demonstrates that the paper's scenario normalizations emerge from the
// difficulty rules rather than being assumed.
package difficulty

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/rng"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Rule selects which block production the controller counts.
type Rule int

// The two difficulty rules studied.
const (
	// BitcoinStyle counts only main-chain (regular) blocks, like
	// Bitcoin's retarget and Ethereum before EIP100.
	BitcoinStyle Rule = iota + 1

	// EIP100 counts regular plus referenced uncle blocks, like
	// Byzantium's adjustment.
	EIP100
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case BitcoinStyle:
		return "bitcoin-style"
	case EIP100:
		return "eip100"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// maxRetargetFactor bounds a single retarget step, as Bitcoin's consensus
// rules do (factor 4).
const maxRetargetFactor = 4.0

// ErrBadController is returned for invalid controller parameters.
var ErrBadController = errors.New("difficulty: invalid controller parameters")

// Controller is a multiplicative retargeting controller: after each epoch it
// scales difficulty by observedRate/targetRate, clamped to the maximum
// retarget factor.
type Controller struct {
	rule       Rule
	targetRate float64
	difficulty float64
}

// NewController returns a controller with the given rule, target counted-
// block rate (blocks per unit time) and initial difficulty.
func NewController(rule Rule, targetRate, initial float64) (*Controller, error) {
	if rule != BitcoinStyle && rule != EIP100 {
		return nil, fmt.Errorf("%w: unknown rule %d", ErrBadController, rule)
	}
	if !(targetRate > 0) || math.IsInf(targetRate, 0) {
		return nil, fmt.Errorf("%w: target rate %v", ErrBadController, targetRate)
	}
	if !(initial > 0) || math.IsInf(initial, 0) {
		return nil, fmt.Errorf("%w: initial difficulty %v", ErrBadController, initial)
	}
	return &Controller{rule: rule, targetRate: targetRate, difficulty: initial}, nil
}

// Rule returns the controller's counting rule.
func (c *Controller) Rule() Rule { return c.rule }

// Difficulty returns the current difficulty.
func (c *Controller) Difficulty() float64 { return c.difficulty }

// Counted returns the block count the rule pays attention to.
func (c *Controller) Counted(regular, uncles int) int {
	if c.rule == EIP100 {
		return regular + uncles
	}
	return regular
}

// Retarget updates the difficulty after observing counted blocks over the
// given elapsed time. The clamp bounds every step to the maximum retarget
// factor in either direction, so even a zero observation only divides the
// difficulty by that factor.
func (c *Controller) Retarget(counted int, elapsed float64) {
	if elapsed <= 0 {
		return
	}
	observed := float64(counted) / elapsed
	factor := observed / c.targetRate
	if factor > maxRetargetFactor {
		factor = maxRetargetFactor
	}
	if factor < 1/maxRetargetFactor {
		factor = 1 / maxRetargetFactor
	}
	c.difficulty *= factor
}

// SimConfig couples a controller to the selfish-mining simulator.
type SimConfig struct {
	// Alpha and Gamma parameterize the attack.
	Alpha, Gamma float64

	// Schedule is the reward schedule (zero value: Ethereum).
	Schedule rewards.Schedule

	// Rule selects the difficulty rule.
	Rule Rule

	// TargetRate is the desired counted-block rate per unit time.
	TargetRate float64

	// Epochs and BlocksPerEpoch control the retargeting horizon.
	Epochs, BlocksPerEpoch int

	// Seed makes the run reproducible.
	Seed uint64
}

// EpochStats records one epoch of the coupled simulation.
type EpochStats struct {
	// Difficulty in force during the epoch.
	Difficulty float64

	// Elapsed physical time of the epoch.
	Elapsed float64

	// RegularRate and UncleRate are realized block rates per unit time.
	RegularRate, UncleRate float64

	// RewardRate is total issued rewards (static + uncle + nephew) per
	// unit time — the quantity a difficulty rule is supposed to keep
	// bounded.
	RewardRate float64
}

// Simulate runs the coupled difficulty/selfish-mining simulation. Each epoch
// mines BlocksPerEpoch events at the current difficulty (hash power 1, so
// the event rate is 1/difficulty), settles rewards, then retargets.
func Simulate(cfg SimConfig) ([]EpochStats, error) {
	if cfg.Epochs <= 0 || cfg.BlocksPerEpoch <= 0 {
		return nil, fmt.Errorf("%w: epochs and blocks per epoch must be positive", ErrBadController)
	}
	if math.IsNaN(cfg.Alpha) || !(cfg.Alpha > 0 && cfg.Alpha < 0.5) {
		// At alpha >= 0.5 the private branch never loses its lead and
		// races never resolve; the retargeting loop would be
		// meaningless.
		return nil, fmt.Errorf("%w: alpha %v out of (0, 0.5)", ErrBadController, cfg.Alpha)
	}
	ctrl, err := NewController(cfg.Rule, cfg.TargetRate, 1)
	if err != nil {
		return nil, err
	}
	pop, err := mining.TwoAgent(cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("difficulty: %w", err)
	}
	random := rng.New(cfg.Seed)

	epochs := make([]EpochStats, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      cfg.Gamma,
			Schedule:   cfg.Schedule,
			Blocks:     cfg.BlocksPerEpoch,
			Seed:       random.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		// Physical time: block events arrive at rate 1/difficulty.
		var elapsed float64
		rate := 1 / ctrl.Difficulty()
		for i := 0; i < cfg.BlocksPerEpoch; i++ {
			elapsed += random.Exp(rate)
		}
		totalReward := result.Pool.Total() + result.Honest.Total()
		epochs = append(epochs, EpochStats{
			Difficulty:  ctrl.Difficulty(),
			Elapsed:     elapsed,
			RegularRate: float64(result.RegularCount) / elapsed,
			UncleRate:   float64(result.UncleCount) / elapsed,
			RewardRate:  totalReward / elapsed,
		})
		ctrl.Retarget(ctrl.Counted(result.RegularCount, result.UncleCount), elapsed)
	}
	return epochs, nil
}

// SteadyState averages the trailing half of the epochs, where the controller
// has converged.
func SteadyState(epochs []EpochStats) EpochStats {
	if len(epochs) == 0 {
		return EpochStats{}
	}
	tail := epochs[len(epochs)/2:]
	var out EpochStats
	for _, e := range tail {
		out.Difficulty += e.Difficulty
		out.Elapsed += e.Elapsed
		out.RegularRate += e.RegularRate
		out.UncleRate += e.UncleRate
		out.RewardRate += e.RewardRate
	}
	n := float64(len(tail))
	out.Difficulty /= n
	out.Elapsed /= n
	out.RegularRate /= n
	out.UncleRate /= n
	out.RewardRate /= n
	return out
}

// PredictedRewardRate returns the analytic steady-state reward rate for a
// difficulty rule: target * TotalAbsolute(scenario), with scenario 1 for
// BitcoinStyle and scenario 2 for EIP100.
func PredictedRewardRate(cfg SimConfig) (float64, error) {
	m, err := core.New(core.Params{Alpha: cfg.Alpha, Gamma: cfg.Gamma, Schedule: cfg.Schedule})
	if err != nil {
		return 0, err
	}
	scenario := core.Scenario1
	if cfg.Rule == EIP100 {
		scenario = core.Scenario2
	}
	return cfg.TargetRate * m.Revenue().TotalAbsolute(scenario), nil
}
