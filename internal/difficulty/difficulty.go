// Package difficulty models the difficulty-adjustment rules whose contrast
// motivates the paper's two revenue scenarios (Sec. II-C, IV-E2):
//
//   - Pre-Byzantium (and Bitcoin): difficulty targets the growth rate of the
//     main chain only. Under selfish mining, uncle and nephew rewards are
//     paid on top of a fixed regular-block rate, so total issuance inflates
//     (scenario 1).
//   - EIP100 (Byzantium): difficulty targets the regular-plus-uncle rate, so
//     extra uncles slow the chain and issuance stays bounded (scenario 2).
//
// The package provides an engine-driven retargeting Controller: the
// continuous-time simulator (internal/sim) feeds it every block as it
// settles — with its real timestamp and its actually referenced uncles,
// read off the block tree rather than approximated in closed form — and
// reads back the difficulty that paces the next exponential inter-arrival
// draw. PredictedRewardRate is the closed-form steady-state oracle the
// engine-integrated loop is cross-validated against.
package difficulty

import (
	"errors"
	"fmt"
	"math"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/rewards"
)

// Rule selects which block production difficulty adjustment counts.
type Rule int

// The difficulty rules studied.
const (
	// Static applies no adjustment: difficulty stays at its initial
	// value, the "before the protocol reacts" baseline.
	Static Rule = iota

	// BitcoinStyle counts only main-chain (regular) blocks and retargets
	// on epoch boundaries, like Bitcoin's retarget and Ethereum before
	// EIP100.
	BitcoinStyle

	// EIP100 counts regular plus referenced uncle blocks and adjusts
	// every block, like Byzantium's per-block rule.
	EIP100
)

// Rules lists every rule in declaration order (the profitability grid's
// rule axis).
func Rules() []Rule { return []Rule{Static, BitcoinStyle, EIP100} }

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case Static:
		return "static"
	case BitcoinStyle:
		return "bitcoin-style"
	case EIP100:
		return "eip100"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// ParseRule resolves a rule name ("static", "bitcoin", "bitcoin-style",
// "eip100").
func ParseRule(s string) (Rule, error) {
	switch s {
	case "static":
		return Static, nil
	case "bitcoin", "bitcoin-style":
		return BitcoinStyle, nil
	case "eip100":
		return EIP100, nil
	default:
		return 0, fmt.Errorf("%w: unknown rule %q", ErrBadController, s)
	}
}

// DefaultEpoch is the default adjustment window in settled regular blocks:
// the retarget period of the Bitcoin-style rule and the smoothing gain
// (1/epoch per block) of the EIP100 rule. Small enough that quick 20k-block
// runs converge well before their steady-state window, large enough that a
// single epoch's observation has low relative noise.
const DefaultEpoch = 128

// maxRetargetFactor bounds a single Bitcoin-style retarget step, as
// Bitcoin's consensus rules do (factor 4).
const maxRetargetFactor = 4.0

// maxPerBlockFactor bounds a single EIP100 per-block step. The steady-state
// step is 1 +/- O(1/epoch); the clamp only matters while the controller is
// far from equilibrium.
const maxPerBlockFactor = 2.0

// ErrBadController is returned for invalid controller parameters.
var ErrBadController = errors.New("difficulty: invalid controller parameters")

// Params configures an engine-driven controller.
type Params struct {
	// Rule selects the counting rule. The zero value is Static.
	Rule Rule

	// TargetRate is the desired counted-block rate per unit time
	// (zero: 1).
	TargetRate float64

	// Epoch is the adjustment window in settled regular blocks
	// (zero: DefaultEpoch). BitcoinStyle retargets once per epoch;
	// EIP100 adjusts every block with gain 1/epoch.
	Epoch int

	// Initial is the starting difficulty (zero: 1). With the population's
	// hash power normalized to 1, block events arrive at rate
	// 1/difficulty.
	Initial float64
}

// WithDefaults fills the zero-value fields.
func (p Params) WithDefaults() Params {
	if p.TargetRate == 0 {
		p.TargetRate = 1
	}
	if p.Epoch == 0 {
		p.Epoch = DefaultEpoch
	}
	if p.Initial == 0 {
		p.Initial = 1
	}
	return p
}

// Validate rejects unusable parameters. Call it on the defaulted value.
func (p Params) Validate() error {
	if p.Rule != Static && p.Rule != BitcoinStyle && p.Rule != EIP100 {
		return fmt.Errorf("%w: unknown rule %d", ErrBadController, p.Rule)
	}
	if !(p.TargetRate > 0) || math.IsInf(p.TargetRate, 0) {
		return fmt.Errorf("%w: target rate %v", ErrBadController, p.TargetRate)
	}
	if p.Epoch < 1 {
		return fmt.Errorf("%w: epoch %d must be positive", ErrBadController, p.Epoch)
	}
	if !(p.Initial > 0) || math.IsInf(p.Initial, 0) {
		return fmt.Errorf("%w: initial difficulty %v", ErrBadController, p.Initial)
	}
	return nil
}

// Controller is an engine-driven difficulty controller. The simulator calls
// ObserveBlock for every block the consensus floor settles, in chain order
// with the block's timestamp and its referenced-uncle count, and reads
// Difficulty to pace inter-arrival sampling. A Controller is single-run
// state; Reset reuses it across runs (the simulator Runner's reuse
// contract). It is not safe for concurrent use.
type Controller struct {
	p Params

	difficulty float64

	// lastTime is the timestamp of the last observed settled block (the
	// EIP100 spacing base); epochStart is the timestamp of the last
	// Bitcoin-style retarget.
	lastTime   float64
	epochStart float64

	// counted and blocks accumulate the current Bitcoin-style epoch:
	// counted is what the rule counts, blocks the epoch progress.
	counted int
	blocks  int

	retargets int
}

// NewController returns a controller for the given parameters (defaults
// applied first).
func NewController(p Params) (*Controller, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{p: p}
	c.Reset()
	return c, nil
}

// Reset restores the controller to its initial state, so one instance can
// be reused across independently seeded runs.
func (c *Controller) Reset() {
	c.difficulty = c.p.Initial
	c.lastTime = 0
	c.epochStart = 0
	c.counted = 0
	c.blocks = 0
	c.retargets = 0
}

// Rule returns the controller's counting rule.
func (c *Controller) Rule() Rule { return c.p.Rule }

// Params returns the controller's (defaulted) parameters.
func (c *Controller) Params() Params { return c.p }

// Difficulty returns the current difficulty.
func (c *Controller) Difficulty() float64 { return c.difficulty }

// Retargets returns the number of adjustments applied so far: epoch
// boundaries crossed for BitcoinStyle, blocks observed for EIP100, zero
// always for Static.
func (c *Controller) Retargets() int { return c.retargets }

// ObserveBlock feeds one newly settled regular block: its timestamp and the
// number of uncles it references (as counted on the settled tree). Blocks
// must be observed in chain order with non-decreasing timestamps.
func (c *Controller) ObserveBlock(timestamp float64, uncles int) {
	switch c.p.Rule {
	case BitcoinStyle:
		// Epoch retarget on main-chain rate alone: uncles are invisible
		// to the pre-Byzantium rule.
		c.counted++
		c.blocks++
		if c.blocks < c.p.Epoch {
			break
		}
		if elapsed := timestamp - c.epochStart; elapsed > 0 {
			factor := float64(c.counted) / elapsed / c.p.TargetRate
			c.difficulty *= clampFactor(factor, maxRetargetFactor)
			c.retargets++
		}
		c.counted = 0
		c.blocks = 0
		c.epochStart = timestamp

	case EIP100:
		// Per-block adjustment on the regular-plus-uncle rate. The
		// error term compares the blocks this step actually counted
		// (the regular block plus its referenced uncles) against what
		// the target rate expects over the observed spacing; gain
		// 1/epoch makes the equilibrium E[counted] = target*E[spacing],
		// i.e. a counted rate equal to the target, with convergence in
		// O(epoch) blocks and per-block noise O(1/epoch).
		counted := 1 + uncles
		spacing := timestamp - c.lastTime
		err := float64(counted) - spacing*c.p.TargetRate
		factor := 1 + err/float64(c.p.Epoch)
		c.difficulty *= clampFactor(factor, maxPerBlockFactor)
		c.retargets++
	}
	c.lastTime = timestamp
}

// clampFactor bounds a multiplicative step to [1/limit, limit].
func clampFactor(factor, limit float64) float64 {
	if factor > limit {
		return limit
	}
	if factor < 1/limit {
		return 1 / limit
	}
	return factor
}

// PredictedRewardRate returns the analytic steady-state total reward rate
// (all miners, rewards per unit time) for an adjusting difficulty rule at
// the given attack parameters: targetRate * TotalAbsolute(scenario), with
// scenario 1 for BitcoinStyle and scenario 2 for EIP100. It is the
// closed-form oracle the engine-integrated controller is cross-validated
// against; the Static rule has no scenario normalization (its issuance
// depends on the initial difficulty, not the target) and is rejected.
func PredictedRewardRate(rule Rule, targetRate, alpha, gamma float64, schedule rewards.Schedule) (float64, error) {
	var scenario core.Scenario
	switch rule {
	case BitcoinStyle:
		scenario = core.Scenario1
	case EIP100:
		scenario = core.Scenario2
	default:
		return 0, fmt.Errorf("%w: no closed-form rate for rule %v", ErrBadController, rule)
	}
	m, err := core.New(core.Params{Alpha: alpha, Gamma: gamma, Schedule: schedule})
	if err != nil {
		return 0, err
	}
	return targetRate * m.Revenue().TotalAbsolute(scenario), nil
}
