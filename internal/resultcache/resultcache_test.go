package resultcache

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/jobkey"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// testRow is one (address, seed, expected result) triple; the expectation
// comes from a real simulation so every Get can be checked against
// recomputation.
type testRow struct {
	key    string
	seed   uint64
	result sim.Result
}

// makeRows simulates n distinct rows across two configs (timeless and
// timed, so both Result shapes are exercised).
func makeRows(t testing.TB, n int) []testRow {
	t.Helper()
	pop, err := mining.TwoAgent(0.3)
	if err != nil {
		t.Fatal(err)
	}
	pop2, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	configs := []sim.Config{
		{Population: pop, Gamma: 0.5, Blocks: 500},
		{Population: pop2, Gamma: 0.3, Blocks: 800, Time: sim.TimeConfig{Enabled: true}},
	}
	rows := make([]testRow, 0, n)
	for i := 0; len(rows) < n; i++ {
		cfg := configs[i%len(configs)]
		cfg.Seed = uint64(1000 + i)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		key := jobkey.ForConfig(cfg).Row(cfg.Seed).String()
		rows = append(rows, testRow{key: key, seed: cfg.Seed, result: res})
	}
	return rows
}

func TestMemoryPutGet(t *testing.T) {
	rows := makeRows(t, 3)
	c := NewMemory(8)
	if _, ok, err := c.Get(rows[0].key, rows[0].seed); err != nil || ok {
		t.Fatalf("Get on empty cache = (%v, %v), want miss", ok, err)
	}
	for _, r := range rows {
		if err := c.Put(r.key, r.seed, r.result); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		got, ok, err := c.Get(r.key, r.seed)
		if err != nil || !ok {
			t.Fatalf("Get(%0.12s) = (%v, %v), want hit", r.key, ok, err)
		}
		if !reflect.DeepEqual(got, r.result) {
			t.Errorf("row %.12s differs from the stored result", r.key)
		}
	}
	// Duplicate Put of a cached key is a no-op, not a second store.
	if err := c.Put(rows[0].key, rows[0].seed, rows[0].result); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Stores != 3 || s.MemoryHits != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 stores, 3 memory hits, 1 miss", s)
	}
	// A seed disagreeing with the content address fails closed.
	if _, _, err := c.Get(rows[0].key, rows[0].seed+1); !errors.Is(err, ErrCache) {
		t.Errorf("seed-mismatch Get err = %v, want ErrCache", err)
	}
}

func TestMemoryEviction(t *testing.T) {
	rows := makeRows(t, 4)
	c := NewMemory(2)
	for _, r := range rows {
		if err := c.Put(r.key, r.seed, r.result); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// The oldest rows are gone (memory-only: a miss, not an error); the
	// newest survive.
	if _, ok, _ := c.Get(rows[0].key, rows[0].seed); ok {
		t.Error("evicted row still served")
	}
	if _, ok, _ := c.Get(rows[3].key, rows[3].seed); !ok {
		t.Error("fresh row evicted out of order")
	}
}

func TestDiskReloadServesRows(t *testing.T) {
	rows := makeRows(t, 3)
	dir := t.TempDir()
	c, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := c.Put(r.key, r.seed, r.result); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != len(rows) {
		t.Fatalf("reloaded Len = %d, want %d", c2.Len(), len(rows))
	}
	for _, r := range rows {
		got, ok, err := c2.Get(r.key, r.seed)
		if err != nil || !ok {
			t.Fatalf("reloaded Get(%.12s) = (%v, %v), want hit", r.key, ok, err)
		}
		if !reflect.DeepEqual(got, r.result) {
			t.Errorf("reloaded row %.12s differs from the computed result", r.key)
		}
	}
	s := c2.Stats()
	if s.DiskHits != uint64(len(rows)) {
		t.Errorf("disk hits = %d, want %d", s.DiskHits, len(rows))
	}
	// The promoted rows now serve from memory.
	if _, ok, _ := c2.Get(rows[0].key, rows[0].seed); !ok {
		t.Fatal("promoted row missed")
	}
	if s := c2.Stats(); s.MemoryHits != 1 {
		t.Errorf("memory hits after promotion = %d, want 1", s.MemoryHits)
	}
}

// TestDiskEvictionKeepsRowsReachable: the memory tier evicting a
// disk-backed row must not lose it — the next Get is a disk hit.
func TestDiskEvictionKeepsRowsReachable(t *testing.T) {
	rows := makeRows(t, 4)
	c, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, r := range rows {
		if err := c.Put(r.key, r.seed, r.result); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		got, ok, err := c.Get(r.key, r.seed)
		if err != nil || !ok {
			t.Fatalf("Get(%.12s) after eviction = (%v, %v), want disk hit", r.key, ok, err)
		}
		if !reflect.DeepEqual(got, r.result) {
			t.Errorf("row %.12s served from disk differs", r.key)
		}
	}
}

func TestCacheFailsClosed(t *testing.T) {
	rows := makeRows(t, 1)
	dir := t.TempDir()
	c, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(rows[0].key, rows[0].seed, rows[0].result); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, 4); !errors.Is(err, ErrCache) {
			t.Errorf("%s: Open err = %v, want ErrCache", name, err)
		}
	}
	corrupt("truncated tail", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("tampered row", func(b []byte) []byte {
		return []byte(strings.Replace(string(b), `"result":{`, `"result":{"bogus":1,`, 1))
	})
	corrupt("version skew", func(b []byte) []byte {
		return []byte(strings.Replace(string(b), `{"version":1,`, `{"version":2,`, 1))
	})
	corrupt("schema skew", func(b []byte) []byte {
		return []byte(strings.Replace(string(b), fmt.Sprintf(`"schema":%d}`, sim.ResultSchemaVersion), `"schema":999}`, 1))
	})
	corrupt("duplicated row", func(b []byte) []byte {
		lines := strings.SplitAfter(string(b), "\n")
		return []byte(string(b) + lines[1])
	})
}

// TestCachePropertySequence is the satellite property test: any sequence
// of Put / Get / evict (via a tiny capacity) / reload yields rows
// DeepEqual to recomputation — the cache can serve stale nothing, because
// its only failure mode is a miss.
func TestCachePropertySequence(t *testing.T) {
	rows := makeRows(t, 6)
	for _, disk := range []bool{false, true} {
		name := "memory"
		if disk {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			open := func() *Cache {
				if !disk {
					return NewMemory(3) // tiny: forces constant eviction
				}
				c, err := Open(dir, 3)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			c := open()
			defer func() { c.Close() }()

			rng := rand.New(rand.NewSource(42))
			put := make(map[string]bool)
			for step := 0; step < 400; step++ {
				r := rows[rng.Intn(len(rows))]
				switch op := rng.Intn(10); {
				case op < 4:
					if err := c.Put(r.key, r.seed, r.result); err != nil {
						t.Fatal(err)
					}
					put[r.key] = true
				case op < 9:
					got, ok, err := c.Get(r.key, r.seed)
					if err != nil {
						t.Fatal(err)
					}
					if ok && !reflect.DeepEqual(got, r.result) {
						t.Fatalf("step %d: row %.12s differs from recomputation", step, r.key)
					}
					if !ok && disk && put[r.key] {
						t.Fatalf("step %d: disk-backed row %.12s lost", step, r.key)
					}
				case disk:
					// Reload: close, reopen, and continue the sequence.
					if err := c.Close(); err != nil {
						t.Fatal(err)
					}
					c = open()
				}
			}
			// Every row ever Put into a disk-backed cache is still exact.
			if disk {
				for _, r := range rows {
					if !put[r.key] {
						continue
					}
					got, ok, err := c.Get(r.key, r.seed)
					if err != nil || !ok {
						t.Fatalf("final Get(%.12s) = (%v, %v), want hit", r.key, ok, err)
					}
					if !reflect.DeepEqual(got, r.result) {
						t.Errorf("final row %.12s differs from recomputation", r.key)
					}
				}
			}
		})
	}
}

// FuzzCacheDecode mirrors the checkpoint journal's FuzzJournalDecode: the
// strict decoder never panics, never accepts a truncated tail, and only
// ever fails with ErrCache.
func FuzzCacheDecode(f *testing.F) {
	header := fmt.Sprintf(`{"version":1,"schema":%d}`, sim.ResultSchemaVersion)
	key := strings.Repeat("ab", 32)
	row := `{"key":"` + key + `","seed":7,"result":{"Alpha":0.3,"Blocks":500}}`
	valid := header + "\n" + row + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)-1]))
	f.Add([]byte(header + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(header + "\n" + row + "\n" + row + "\n"))
	f.Add([]byte(`{"version":1,"schema":999}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		index, err := decodeJournal(data)
		if err != nil {
			if !errors.Is(err, ErrCache) {
				t.Errorf("error %v does not wrap ErrCache", err)
			}
			return
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			t.Error("journal without a final newline accepted")
		}
		for k, pos := range index {
			if len(k) != 64 || !isHex(k) {
				t.Errorf("accepted malformed key %q", k)
			}
			if pos.off < 0 || pos.off+int64(pos.len) > int64(len(data)) {
				t.Errorf("row %q indexed outside the journal", k)
			}
		}
	})
}
