// Package resultcache is the content-addressed result store behind the
// experiments engine: a two-tier cache (in-memory LRU over an append-only
// disk journal) of simulation rows keyed by their canonical jobkey row
// address. Because every row is a pure function of its address
// (determinism invariant 3, with the address covering config, run length,
// statistical mode, and exact seed), a hit is not an approximation — it is
// bit-for-bit the row a fresh simulation would produce, so cached sweeps
// remain subject to every statistical cross-check that recomputed ones
// are. The store is the serving-layer foundation the ROADMAP's ethserved
// item lifts behind HTTP/WS unchanged.
//
// Disk layout: one file, results.jsonl, in the cache directory. The first
// line is {"version":1,"schema":S} where S is sim.ResultSchemaVersion;
// every following line is one row {"key":"<64 hex>","seed":N,
// "result":{...}}. The decoder is strict in exactly the checkpoint
// journal's sense: a malformed line, a duplicated key, a version or schema
// skew, or a truncated tail (a final line missing its newline — the mark
// of a crash mid-write) rejects the whole file with ErrCache rather than
// silently serving corrupt rows. Wipe the directory (or repair the file to
// a line boundary) to recover; the cache then simply refills.
//
// The memory tier holds decoded rows under an LRU bound; the disk tier is
// scanned once at Open into a key -> byte-offset index, so a disk hit is
// one ReadAt plus one strict decode, promoted into memory. Writes append
// under a lock through a single handle; the cache is safe for concurrent
// use by the engine's workers but assumes a single writing process per
// directory.
package resultcache

import (
	"bytes"
	"container/list"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"github.com/ethselfish/ethselfish/internal/sim"
)

// ErrCache is returned when a cache journal is malformed, truncated, or
// written under a different row schema.
var ErrCache = errors.New("resultcache: invalid cache journal")

// journalVersion identifies the cache journal's container format; the row
// payload schema is versioned separately by sim.ResultSchemaVersion.
const journalVersion = 1

// journalName is the journal's filename inside the cache directory.
const journalName = "results.jsonl"

// AddrSize is the length of a raw row address in bytes (a sha256 digest;
// string-keyed entry points take its 2*AddrSize-char hex form).
const AddrSize = 32

// DefaultMemoryEntries bounds the memory tier when the caller passes a
// non-positive capacity. At roughly 2-6 KB per decoded row this keeps the
// default cache in the tens of megabytes.
const DefaultMemoryEntries = 8192

// journalHeader is the journal's first line.
type journalHeader struct {
	Version int `json:"version"`
	Schema  int `json:"schema"`
}

// journalRow is one cached row on disk.
type journalRow struct {
	Key    string     `json:"key"`
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// diskPos locates one row's line inside the journal.
type diskPos struct {
	off  int64
	len  int
	seed uint64
}

// entry is one decoded row in the memory tier.
type entry struct {
	key    string
	seed   uint64
	result sim.Result
}

// Stats counts the cache's traffic. Hits split by serving tier; Stores
// counts rows newly added (duplicates of an already-cached key are
// ignored, not counted); Evictions counts memory-tier drops (disk-backed
// rows remain reachable after eviction, memory-only rows do not).
type Stats struct {
	MemoryHits uint64
	DiskHits   uint64
	Misses     uint64
	Stores     uint64
	Evictions  uint64
}

// Hits returns the total hit count across both tiers.
func (s Stats) Hits() uint64 { return s.MemoryHits + s.DiskHits }

// Cache is a two-tier content-addressed result store. Construct with
// NewMemory (memory tier only) or Open (memory over a disk journal); it is
// safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *entry, most recent first
	mem   map[string]*list.Element
	file  *os.File // nil: memory-only
	size  int64    // journal length; the offset the next append lands at
	index map[string]diskPos
	stats Stats
}

// NewMemory returns a memory-only cache bounded to capacity entries
// (non-positive: DefaultMemoryEntries). Evicted rows are recomputed on
// next use; nothing persists across processes.
func NewMemory(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultMemoryEntries
	}
	return &Cache{
		cap: capacity,
		lru: list.New(),
		mem: make(map[string]*list.Element),
	}
}

// Open opens (creating if needed) the disk-backed cache in dir, strictly
// validating any existing journal, and layers a memory LRU of the given
// capacity (non-positive: DefaultMemoryEntries) over it. A corrupt,
// truncated, or schema-skewed journal is rejected with ErrCache — it is
// never silently served from.
func Open(dir string, capacity int) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: creating cache dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("resultcache: reading cache journal: %w", err)
	}
	index, err := decodeJournal(data)
	if err != nil {
		return nil, fmt.Errorf("%w (wipe %s to start over)", err, dir)
	}
	file, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultcache: opening cache journal: %w", err)
	}
	c := NewMemory(capacity)
	c.file = file
	c.size = int64(len(data))
	c.index = index
	if len(data) == 0 {
		if err := c.writeLine(journalHeader{Version: journalVersion, Schema: sim.ResultSchemaVersion}); err != nil {
			file.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close releases the disk journal's handle (a no-op for memory-only
// caches). The cache must not be used after Close.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	return c.file.Close()
}

// Len returns the number of reachable rows: every disk-indexed row plus
// any memory-only rows not yet evicted.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.index)
	for key := range c.mem {
		if _, onDisk := c.index[key]; !onDisk {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the cache's traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the cached row at key, checking memory then disk. The seed
// is a redundancy check: the address already commits to it, so a stored
// row under a different seed means hash collision or tampering and fails
// closed with ErrCache. A disk hit is promoted into the memory tier.
func (c *Cache) Get(key string, seed uint64) (sim.Result, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.mem[key]; ok {
		e := el.Value.(*entry)
		if e.seed != seed {
			return sim.Result{}, false, fmt.Errorf(
				"%w: row %.12s cached under seed %d, derived %d", ErrCache, key, e.seed, seed)
		}
		c.lru.MoveToFront(el)
		c.stats.MemoryHits++
		return e.result, true, nil
	}
	return c.getDiskLocked(key, seed)
}

// GetRaw is Get for a raw content address: the hex encoding lives on the
// stack and the memory probe converts it in place, so a memory hit — the
// steady state of a warmed sweep — allocates nothing. The two entry points
// address identical rows: GetRaw(k) ≡ Get(hex(k)).
func (c *Cache) GetRaw(key [AddrSize]byte, seed uint64) (sim.Result, bool, error) {
	var buf [2 * AddrSize]byte
	hex.Encode(buf[:], key[:])
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.mem[string(buf[:])]; ok {
		e := el.Value.(*entry)
		if e.seed != seed {
			return sim.Result{}, false, fmt.Errorf(
				"%w: row %.12s cached under seed %d, derived %d", ErrCache, e.key, e.seed, seed)
		}
		c.lru.MoveToFront(el)
		c.stats.MemoryHits++
		return e.result, true, nil
	}
	return c.getDiskLocked(string(buf[:]), seed)
}

// PutRaw is Put for a raw content address (see GetRaw).
func (c *Cache) PutRaw(key [AddrSize]byte, seed uint64, result sim.Result) error {
	var buf [2 * AddrSize]byte
	hex.Encode(buf[:], key[:])
	c.mu.Lock()
	defer c.mu.Unlock()
	// Alloc-free duplicate probes first: by content addressing a present
	// row is already the offered one, so the hot no-op path stays cheap.
	if _, ok := c.mem[string(buf[:])]; ok {
		return nil
	}
	if _, ok := c.index[string(buf[:])]; ok {
		return nil
	}
	return c.putLocked(string(buf[:]), seed, result)
}

// getDiskLocked serves a Get that missed the memory tier. Must be called
// with the lock held.
func (c *Cache) getDiskLocked(key string, seed uint64) (sim.Result, bool, error) {
	pos, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return sim.Result{}, false, nil
	}
	if pos.seed != seed {
		return sim.Result{}, false, fmt.Errorf(
			"%w: row %.12s journaled under seed %d, derived %d", ErrCache, key, pos.seed, seed)
	}
	buf := make([]byte, pos.len)
	if _, err := c.file.ReadAt(buf, pos.off); err != nil {
		return sim.Result{}, false, fmt.Errorf("resultcache: reading row %.12s: %w", key, err)
	}
	var row journalRow
	if err := strictUnmarshal(buf, &row); err != nil || row.Key != key || row.Seed != seed {
		return sim.Result{}, false, fmt.Errorf(
			"%w: row %.12s changed on disk after open (%v)", ErrCache, key, err)
	}
	row.Result.RestoreAliases()
	c.insert(key, seed, row.Result)
	c.stats.DiskHits++
	return row.Result, true, nil
}

// Put stores one computed row under its address. A key already cached (in
// either tier) is left untouched — by content addressing the stored row is
// already the one being offered.
func (c *Cache) Put(key string, seed uint64, result sim.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[key]; ok {
		return nil
	}
	if _, ok := c.index[key]; ok {
		return nil
	}
	return c.putLocked(key, seed, result)
}

// putLocked journals and inserts a row known to be absent from both tiers.
// Must be called with the lock held.
func (c *Cache) putLocked(key string, seed uint64, result sim.Result) error {
	if c.file != nil {
		line, err := json.Marshal(journalRow{Key: key, Seed: seed, Result: result})
		if err != nil {
			return fmt.Errorf("resultcache: encoding row: %w", err)
		}
		pos := diskPos{off: c.size, len: len(line), seed: seed}
		line = append(line, '\n')
		if _, err := c.file.Write(line); err != nil {
			return fmt.Errorf("resultcache: writing row: %w", err)
		}
		c.size += int64(len(line))
		c.index[key] = pos
	}
	c.insert(key, seed, result)
	c.stats.Stores++
	return nil
}

// insert adds a row to the memory tier, evicting from the LRU tail past
// capacity. Must be called with the lock held.
func (c *Cache) insert(key string, seed uint64, result sim.Result) {
	c.mem[key] = c.lru.PushFront(&entry{key: key, seed: seed, result: result})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.mem, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// writeLine appends one JSON line to the journal. Must be called with the
// lock held (or before the cache is shared).
func (c *Cache) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resultcache: encoding journal line: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.file.Write(line); err != nil {
		return fmt.Errorf("resultcache: writing journal: %w", err)
	}
	c.size += int64(len(line))
	return nil
}

// decodeJournal strictly parses a journal's bytes into the key -> position
// index, validating every row (including its Result payload) without
// retaining the decoded rows — the memory tier fills on demand. Empty
// input is a fresh journal.
func decodeJournal(data []byte) (map[string]diskPos, error) {
	index := make(map[string]diskPos)
	if len(data) == 0 {
		return index, nil
	}
	if data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("%w: truncated final line", ErrCache)
	}
	lines := bytes.Split(data[:len(data)-1], []byte("\n"))
	var header journalHeader
	if err := strictUnmarshal(lines[0], &header); err != nil {
		return nil, fmt.Errorf("%w: line 1: %v", ErrCache, err)
	}
	if header.Version != journalVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCache, header.Version)
	}
	if header.Schema != sim.ResultSchemaVersion {
		return nil, fmt.Errorf("%w: rows written under result schema %d, this build uses %d",
			ErrCache, header.Schema, sim.ResultSchemaVersion)
	}
	offset := int64(len(lines[0]) + 1)
	for i, raw := range lines[1:] {
		lineNo := i + 2
		var row journalRow
		if err := strictUnmarshal(raw, &row); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCache, lineNo, err)
		}
		if len(row.Key) != 64 || !isHex(row.Key) {
			return nil, fmt.Errorf("%w: line %d: malformed row key", ErrCache, lineNo)
		}
		if _, dup := index[row.Key]; dup {
			return nil, fmt.Errorf("%w: line %d: row %.12s duplicated", ErrCache, lineNo, row.Key)
		}
		index[row.Key] = diskPos{off: offset, len: len(raw), seed: row.Seed}
		offset += int64(len(raw) + 1)
	}
	return index, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// isHex reports whether s is entirely lowercase hex.
func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
