package chain

import (
	"errors"
	"testing"
)

const (
	minerGenesis MinerID = 0
	minerHonest  MinerID = 1
	minerPool    MinerID = 2
)

func mustExtend(t *testing.T, tree *Tree, parent BlockID, miner MinerID, uncles ...BlockID) BlockID {
	t.Helper()
	id, err := tree.Extend(parent, miner, uncles)
	if err != nil {
		t.Fatalf("Extend(parent=%d): %v", parent, err)
	}
	return id
}

func TestNewTreeGenesis(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if tree.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tree.Len())
	}
	g := tree.Block(tree.Genesis())
	if g.Height != 0 || g.Parent != NoBlock || g.ID != 0 {
		t.Errorf("genesis = %+v", g)
	}
	if got := tree.Tips(); len(got) != 1 || got[0] != tree.Genesis() {
		t.Errorf("Tips = %v, want [genesis]", got)
	}
}

func TestExtendLinearChain(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	prev := tree.Genesis()
	for h := 1; h <= 5; h++ {
		prev = mustExtend(t, tree, prev, minerHonest)
		if got := tree.Height(prev); got != h {
			t.Fatalf("height = %d, want %d", got, h)
		}
	}
	path := tree.PathTo(prev)
	if len(path) != 6 {
		t.Fatalf("path length %d, want 6", len(path))
	}
	for i, id := range path {
		if tree.Height(id) != i {
			t.Errorf("path[%d] has height %d", i, tree.Height(id))
		}
	}
}

func TestExtendUnknownParent(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if _, err := tree.Extend(99, minerHonest, nil); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
	if _, err := tree.Extend(NoBlock, minerHonest, nil); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
}

// fork builds genesis -> a1 -> a2 and a sibling b1 of a2 (child of a1).
func fork(t *testing.T) (tree *Tree, a1, a2, b1 BlockID) {
	t.Helper()
	tree = NewTree(Config{}, minerGenesis)
	a1 = mustExtend(t, tree, tree.Genesis(), minerPool)
	a2 = mustExtend(t, tree, a1, minerPool)
	b1 = mustExtend(t, tree, a1, minerHonest)
	return tree, a1, a2, b1
}

func TestUncleReferenceValid(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	// a3 on top of a2 references b1 (a sibling of a2, distance 2).
	a3, err := tree.Extend(a2, minerPool, []BlockID{b1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.ReferencedBy(b1); got != a3 {
		t.Errorf("ReferencedBy(b1) = %d, want %d", got, a3)
	}
	if got := tree.Block(a3).Uncles; len(got) != 1 || got[0] != b1 {
		t.Errorf("Uncles = %v, want [b1]", got)
	}
}

func TestUncleCannotBeAncestor(t *testing.T) {
	tree, a1, a2, _ := fork(t)
	if _, err := tree.Extend(a2, minerPool, []BlockID{a1}); !errors.Is(err, ErrUncleIsAncestor) {
		t.Errorf("err = %v, want ErrUncleIsAncestor", err)
	}
	// The direct parent is also an ancestor (distance 1, but on-chain).
	if _, err := tree.Extend(a2, minerPool, []BlockID{a2}); !errors.Is(err, ErrUncleIsAncestor) {
		t.Errorf("parent-reference err = %v, want ErrUncleIsAncestor", err)
	}
}

func TestUncleMustAttachToChain(t *testing.T) {
	// Build two separate forks from genesis:
	//   genesis -> a1 -> a2
	//   genesis -> c1 -> c2
	// c2 is NOT a valid uncle for a3 (its parent c1 is not an ancestor
	// of a3), but c1 is (its parent genesis is).
	tree := NewTree(Config{}, minerGenesis)
	a1 := mustExtend(t, tree, tree.Genesis(), minerPool)
	a2 := mustExtend(t, tree, a1, minerPool)
	c1 := mustExtend(t, tree, tree.Genesis(), minerHonest)
	c2 := mustExtend(t, tree, c1, minerHonest)

	if _, err := tree.Extend(a2, minerPool, []BlockID{c2}); !errors.Is(err, ErrUncleNotAttached) {
		t.Errorf("c2 err = %v, want ErrUncleNotAttached", err)
	}
	if _, err := tree.Extend(a2, minerPool, []BlockID{c1}); err != nil {
		t.Errorf("c1 should be a valid uncle: %v", err)
	}
}

func TestUncleDepthLimit(t *testing.T) {
	tree := NewTree(Config{MaxUncleDepth: 6}, minerGenesis)
	// Sibling fork at height 1.
	u := mustExtend(t, tree, tree.Genesis(), minerHonest)
	prev := mustExtend(t, tree, tree.Genesis(), minerPool)
	// Extend main chain to height 6; referencing u from height 6 has
	// distance 5 — fine. From height 7 the distance is 7-1+1... the
	// distance from a block at height h is h - 1.
	for h := 2; h <= 6; h++ {
		prev = mustExtend(t, tree, prev, minerPool)
	}
	// prev is at height 6; a child is at height 7, distance 7-1 = 6: ok.
	child, err := tree.Extend(prev, minerPool, []BlockID{u})
	if err != nil {
		t.Fatalf("distance-6 reference should be valid: %v", err)
	}
	// Rebuild the scenario one level deeper on a fresh branch.
	tree2 := NewTree(Config{MaxUncleDepth: 6}, minerGenesis)
	u2 := mustExtend(t, tree2, tree2.Genesis(), minerHonest)
	prev2 := mustExtend(t, tree2, tree2.Genesis(), minerPool)
	for h := 2; h <= 7; h++ {
		prev2 = mustExtend(t, tree2, prev2, minerPool)
	}
	// prev2 at height 7; child at height 8, distance 7: too deep.
	if _, err := tree2.Extend(prev2, minerPool, []BlockID{u2}); !errors.Is(err, ErrUncleTooDeep) {
		t.Errorf("err = %v, want ErrUncleTooDeep", err)
	}
	_ = child
}

func TestUncleDepthUnlimitedByDefault(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	u := mustExtend(t, tree, tree.Genesis(), minerHonest)
	prev := mustExtend(t, tree, tree.Genesis(), minerPool)
	for h := 2; h <= 30; h++ {
		prev = mustExtend(t, tree, prev, minerPool)
	}
	if _, err := tree.Extend(prev, minerPool, []BlockID{u}); err != nil {
		t.Errorf("unlimited depth tree rejected deep uncle: %v", err)
	}
}

func TestUncleDoubleReferenceRejected(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	a3 := mustExtend(t, tree, a2, minerPool, b1)
	if _, err := tree.Extend(a3, minerPool, []BlockID{b1}); !errors.Is(err, ErrUncleAlreadyReferenced) {
		t.Errorf("err = %v, want ErrUncleAlreadyReferenced", err)
	}
}

func TestUncleReferenceOnCompetingChainAllowed(t *testing.T) {
	// A reference on chain A does not block a reference on chain B:
	// only ancestors of the new block matter.
	tree, a1, a2, b1 := fork(t)
	mustExtend(t, tree, a2, minerPool, b1) // chain A references b1
	// Chain B: b2 extends b1's sibling... build genesis->a1->c2->c3
	c2 := mustExtend(t, tree, a1, minerHonest)
	if _, err := tree.Extend(c2, minerHonest, []BlockID{b1}); err != nil {
		t.Errorf("cross-chain second reference should be allowed: %v", err)
	}
}

func TestDuplicateUncleInOneBlock(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	if _, err := tree.Extend(a2, minerPool, []BlockID{b1, b1}); !errors.Is(err, ErrDuplicateUncle) {
		t.Errorf("err = %v, want ErrDuplicateUncle", err)
	}
}

func TestMaxUnclesPerBlock(t *testing.T) {
	tree := NewTree(Config{MaxUnclesPerBlock: 2}, minerGenesis)
	a1 := mustExtend(t, tree, tree.Genesis(), minerPool)
	u1 := mustExtend(t, tree, tree.Genesis(), minerHonest)
	u2 := mustExtend(t, tree, tree.Genesis(), minerHonest)
	u3 := mustExtend(t, tree, tree.Genesis(), minerHonest)
	if _, err := tree.Extend(a1, minerPool, []BlockID{u1, u2, u3}); !errors.Is(err, ErrTooManyUncles) {
		t.Errorf("err = %v, want ErrTooManyUncles", err)
	}
	if _, err := tree.Extend(a1, minerPool, []BlockID{u1, u2}); err != nil {
		t.Errorf("two uncles should be allowed: %v", err)
	}
}

func TestIsAncestor(t *testing.T) {
	tree, a1, a2, b1 := fork(t)
	g := tree.Genesis()
	tests := []struct {
		a, b BlockID
		want bool
	}{
		{g, a1, true},
		{g, a2, true},
		{g, b1, true},
		{a1, a2, true},
		{a1, b1, true},
		{a2, b1, false},
		{b1, a2, false},
		{a2, a2, false}, // strict
		{a2, g, false},
	}
	for _, tt := range tests {
		if got := tree.IsAncestor(tt.a, tt.b); got != tt.want {
			t.Errorf("IsAncestor(%d, %d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAncestorAtAndCommonAncestor(t *testing.T) {
	tree, a1, a2, b1 := fork(t)
	if got := tree.AncestorAt(a2, 1); got != a1 {
		t.Errorf("AncestorAt(a2, 1) = %d, want %d", got, a1)
	}
	if got := tree.AncestorAt(a2, 2); got != a2 {
		t.Errorf("AncestorAt(a2, 2) = %d, want a2 itself", got)
	}
	if got := tree.CommonAncestor(a2, b1); got != a1 {
		t.Errorf("CommonAncestor(a2, b1) = %d, want %d", got, a1)
	}
	if got := tree.CommonAncestor(a2, a2); got != a2 {
		t.Errorf("CommonAncestor(a2, a2) = %d, want a2", got)
	}
	if got := tree.CommonAncestor(tree.Genesis(), b1); got != tree.Genesis() {
		t.Errorf("CommonAncestor(g, b1) = %d, want genesis", got)
	}
}

func TestAncestorAtPanicsOutOfRange(t *testing.T) {
	tree, _, a2, _ := fork(t)
	defer func() {
		if recover() == nil {
			t.Error("AncestorAt above block height should panic")
		}
	}()
	tree.AncestorAt(a2, 3)
}

func TestChildrenAndTips(t *testing.T) {
	tree, a1, a2, b1 := fork(t)
	kids := tree.Children(a1)
	if len(kids) != 2 || kids[0] != a2 || kids[1] != b1 {
		t.Errorf("Children(a1) = %v, want [a2 b1]", kids)
	}
	tips := tree.Tips()
	if len(tips) != 2 {
		t.Errorf("Tips = %v, want two tips", tips)
	}
	// Mutating the returned slice must not affect the tree.
	kids[0] = 999
	if tree.Children(a1)[0] != a2 {
		t.Error("Children returned internal storage")
	}
}

func TestBlockPanicsOnInvalidID(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	defer func() {
		if recover() == nil {
			t.Error("Block(99) should panic")
		}
	}()
	tree.Block(99)
}

func TestExtendRejectsNegativeMinerID(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if _, err := tree.Extend(tree.Genesis(), -1, nil); !errors.Is(err, ErrBadMinerID) {
		t.Errorf("negative miner: err = %v, want ErrBadMinerID", err)
	}
}

func TestResetRestoresGenesisState(t *testing.T) {
	tree := NewTree(Config{MaxUncleDepth: 6, BlocksHint: 16}, minerGenesis)
	p1 := mustExtend(t, tree, tree.Genesis(), minerPool)
	u := mustExtend(t, tree, tree.Genesis(), minerHonest)
	mustExtend(t, tree, p1, minerPool, u)

	tree.Reset(Config{MaxUncleDepth: 6, BlocksHint: 16}, minerGenesis)
	if tree.Len() != 1 {
		t.Fatalf("Len after Reset = %d, want 1", tree.Len())
	}
	if tree.TotalUncleRefs() != 0 {
		t.Errorf("TotalUncleRefs after Reset = %d, want 0", tree.TotalUncleRefs())
	}
	if tree.HasChildren(tree.Genesis()) {
		t.Error("genesis has children after Reset")
	}

	// The reused tree must behave exactly like a fresh one: rebuild the
	// same structure and compare the full encoded form.
	p1 = mustExtend(t, tree, tree.Genesis(), minerPool)
	u = mustExtend(t, tree, tree.Genesis(), minerHonest)
	p2 := mustExtend(t, tree, p1, minerPool, u)
	if got := tree.ReferencedBy(u); got != p2 {
		t.Errorf("ReferencedBy(u) = %d, want %d", got, p2)
	}
	if got := tree.Height(p2); got != 2 {
		t.Errorf("Height(p2) = %d, want 2", got)
	}
	if kids := tree.Children(tree.Genesis()); len(kids) != 2 {
		t.Errorf("genesis children = %v, want two", kids)
	}
}

func TestBlockInfoAccessorsAgree(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	a3 := mustExtend(t, tree, a2, minerPool, b1)
	for _, id := range []BlockID{tree.Genesis(), a2, b1, a3} {
		b := tree.Block(id)
		parent, height, uncles := tree.BlockInfo(id)
		p2, h2 := tree.ParentAndHeight(id)
		if parent != b.Parent || height != b.Height || len(uncles) != len(b.Uncles) {
			t.Errorf("BlockInfo(%d) = (%d,%d,%v), Block = %+v", id, parent, height, uncles, b)
		}
		if p2 != b.Parent || h2 != b.Height {
			t.Errorf("ParentAndHeight(%d) = (%d,%d), Block = %+v", id, p2, h2, b)
		}
		if tree.MinerOf(id) != b.Miner || tree.HeightOf(id) != b.Height {
			t.Errorf("accessors disagree with Block(%d)", id)
		}
	}
	if !tree.IsForkChild(b1) {
		t.Error("b1 shares a parent with a2; IsForkChild should be true")
	}
	if tree.IsForkChild(a3) || tree.IsForkChild(tree.Genesis()) {
		t.Error("only child and genesis must not be fork children")
	}
}

func TestExtendAtRecordsTimestamps(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if got := tree.TimeOf(tree.Genesis()); got != 0 {
		t.Fatalf("genesis time = %v, want 0", got)
	}
	a, err := tree.ExtendAt(tree.Genesis(), minerHonest, nil, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.ExtendAt(a, minerPool, nil, 2.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.TimeOf(a); got != 1.5 {
		t.Errorf("TimeOf(a) = %v, want 1.5", got)
	}
	if got := tree.Block(b).Time; got != 2.25 {
		t.Errorf("Block(b).Time = %v, want 2.25", got)
	}
	// The plain Extend path stamps zero, the timeless convention.
	c := mustExtend(t, tree, b, minerHonest)
	if got := tree.TimeOf(c); got != 0 {
		t.Errorf("TimeOf(c) = %v, want 0 from Extend", got)
	}
}

func TestResetClearsTimestamps(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if _, err := tree.ExtendAt(tree.Genesis(), minerHonest, nil, 42); err != nil {
		t.Fatal(err)
	}
	tree.Reset(Config{}, minerGenesis)
	a := mustExtend(t, tree, tree.Genesis(), minerHonest)
	if got := tree.TimeOf(a); got != 0 {
		t.Errorf("after Reset, TimeOf = %v, want 0", got)
	}
	if got := tree.TimeOf(tree.Genesis()); got != 0 {
		t.Errorf("after Reset, genesis time = %v, want 0", got)
	}
}

// TestExtendRunMatchesExtendAt pins the bulk append against the per-block
// path: the same linear run built either way must produce identical records,
// links, heights, timestamps, and tip.
func TestExtendRunMatchesExtendAt(t *testing.T) {
	bulk := NewTree(Config{MaxUncleDepth: 6, MaxUnclesPerBlock: 2}, minerGenesis)
	single := NewTree(Config{MaxUncleDepth: 6, MaxUnclesPerBlock: 2}, minerGenesis)

	// Start both trees from a non-trivial prefix: genesis -> a -> fork(b, c),
	// extend the run on b.
	for _, tree := range []*Tree{bulk, single} {
		a := mustExtend(t, tree, tree.Genesis(), minerHonest)
		mustExtend(t, tree, a, minerPool) // c: the fork child left behind
		mustExtend(t, tree, a, minerHonest)
	}
	parent := BlockID(3)

	const (
		count = 17
		start = 10.0
		step  = 0.5
	)
	tip, err := bulk.ExtendRun(parent, minerHonest, count, start, step)
	if err != nil {
		t.Fatal(err)
	}
	prev := parent
	at := start
	var want BlockID
	for j := 0; j < count; j++ {
		at += step
		id, err := single.ExtendAt(prev, minerHonest, nil, at)
		if err != nil {
			t.Fatal(err)
		}
		prev = id
		want = id
	}
	if tip != want {
		t.Fatalf("ExtendRun tip %d, want %d", tip, want)
	}
	if bulk.Len() != single.Len() {
		t.Fatalf("Len = %d, want %d", bulk.Len(), single.Len())
	}
	for id := BlockID(0); int(id) < bulk.Len(); id++ {
		bb, sb := bulk.Block(id), single.Block(id)
		if bb.Parent != sb.Parent || bb.Height != sb.Height || bb.Miner != sb.Miner ||
			len(bb.Uncles) != len(sb.Uncles) {
			t.Errorf("block %d: bulk %+v, single %+v", id, bb, sb)
		}
		if bulk.TimeOf(id) != single.TimeOf(id) {
			t.Errorf("block %d: time %v, want %v", id, bulk.TimeOf(id), single.TimeOf(id))
		}
		if bulk.FirstChildOf(id) != single.FirstChildOf(id) || bulk.NextSiblingOf(id) != single.NextSiblingOf(id) {
			t.Errorf("block %d: link mismatch", id)
		}
	}
	// The run introduces no forks: every run block is the sole child.
	for id := tip - count + 1; id <= tip; id++ {
		if bulk.IsForkChild(id) {
			t.Errorf("run block %d is a fork child", id)
		}
	}
}

func TestExtendRunErrors(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if _, err := tree.ExtendRun(99, minerHonest, 3, 0, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown parent: err = %v, want ErrUnknownBlock", err)
	}
	if _, err := tree.ExtendRun(tree.Genesis(), -1, 3, 0, 0); !errors.Is(err, ErrBadMinerID) {
		t.Errorf("bad miner: err = %v, want ErrBadMinerID", err)
	}
	if _, err := tree.ExtendRun(tree.Genesis(), minerHonest, 0, 0, 0); err == nil {
		t.Error("count 0: want error")
	}
}
