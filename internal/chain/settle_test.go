package chain

import (
	"math"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// fig3 reconstructs the example tree of Fig. 3 in the paper:
//
//	heights:   1    2    3    4    5    6    7    8
//	main:      A -> B2 -> C1 -> D1 -> E1 -> F1 -> G1 -> H1
//	stale:     B1, B3 (children of A);  C2 (child of B2);  D2 (child of C1)
//	refs:      C1 references B3 (distance 1)
//	           F1 references D2 (distance 2)
//	           B1 is an uncle in the figure; we let E1 reference it
//	           (distance 4), making uncles {B1, B3, D2} and nephews
//	           {C1, F1, E1}. The figure shows only C1 and F1 as nephews
//	           because B1's reference link is left implicit; the test
//	           body checks both variants.
func fig3(t *testing.T, referenceB1 bool) (tree *Tree, ids map[string]BlockID) {
	t.Helper()
	tree = NewTree(Config{MaxUncleDepth: 6}, minerGenesis)
	ids = make(map[string]BlockID)
	add := func(name string, parent BlockID, miner MinerID, uncles ...BlockID) BlockID {
		id := mustExtend(t, tree, parent, miner, uncles...)
		ids[name] = id
		return id
	}
	a := add("A", tree.Genesis(), minerHonest)
	b1 := add("B1", a, minerHonest)
	b2 := add("B2", a, minerHonest)
	add("B3", a, minerHonest)
	add("C2", b2, minerHonest)
	c1 := add("C1", b2, minerHonest, ids["B3"])
	d1 := add("D1", c1, minerHonest)
	add("D2", c1, minerHonest)
	var e1 BlockID
	if referenceB1 {
		e1 = add("E1", d1, minerHonest, b1)
	} else {
		e1 = add("E1", d1, minerHonest)
	}
	f1 := add("F1", e1, minerHonest, ids["D2"])
	g1 := add("G1", f1, minerHonest)
	add("H1", g1, minerHonest)
	return tree, ids
}

func TestFig3Classification(t *testing.T) {
	tree, ids := fig3(t, false)
	class := tree.Classify(ids["H1"])

	regular := []string{"A", "B2", "C1", "D1", "E1", "F1", "G1", "H1"}
	for _, name := range regular {
		if class[ids[name]] != Regular {
			t.Errorf("%s classified %v, want regular", name, class[ids[name]])
		}
	}
	for _, name := range []string{"B3", "D2"} {
		if class[ids[name]] != Uncle {
			t.Errorf("%s classified %v, want uncle", name, class[ids[name]])
		}
	}
	// Without an explicit reference, B1 and C2 are plain stale blocks.
	for _, name := range []string{"B1", "C2"} {
		if class[ids[name]] != Stale {
			t.Errorf("%s classified %v, want stale", name, class[ids[name]])
		}
	}
}

func TestFig3ReferenceDistances(t *testing.T) {
	tree, ids := fig3(t, true)
	s, err := tree.Settle(ids["H1"], rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	wantDistance := map[BlockID]int{
		ids["B3"]: 1, // referenced by C1 (Fig. 3: distance one)
		ids["D2"]: 2, // referenced by F1 (Fig. 3: distance two)
		ids["B1"]: 3, // referenced by E1 (height 5) in this reconstruction
	}
	if len(s.Refs) != len(wantDistance) {
		t.Fatalf("got %d refs, want %d", len(s.Refs), len(wantDistance))
	}
	for _, ref := range s.Refs {
		if want := wantDistance[ref.Uncle]; ref.Distance != want {
			t.Errorf("uncle %d referenced at distance %d, want %d",
				ref.Uncle, ref.Distance, want)
		}
	}
	if s.RegularCount != 8 {
		t.Errorf("RegularCount = %d, want 8", s.RegularCount)
	}
	if s.UncleCount != 3 {
		t.Errorf("UncleCount = %d, want 3", s.UncleCount)
	}
	if s.StaleCount != 1 { // C2 remains stale
		t.Errorf("StaleCount = %d, want 1", s.StaleCount)
	}
}

func TestSettleRewardValues(t *testing.T) {
	// pool mines a1<-a2, honest mines sibling b1; pool's a2... use
	// distinct miners to check attribution:
	//   genesis -> p1(pool) -> p2(pool, references h1) -> p3(pool)
	//   h1(honest) is a child of genesis.
	tree := NewTree(Config{MaxUncleDepth: 6}, minerGenesis)
	p1 := mustExtend(t, tree, tree.Genesis(), minerPool)
	h1 := mustExtend(t, tree, tree.Genesis(), minerHonest)
	p2 := mustExtend(t, tree, p1, minerPool, h1)
	p3 := mustExtend(t, tree, p2, minerPool)

	s, err := tree.Settle(p3, rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	pool := s.MinerReward(minerPool)
	honest := s.MinerReward(minerHonest)

	// The map view must agree with the dense tallies.
	if view := s.PerMiner(); view[minerPool] != pool || view[minerHonest] != honest {
		t.Errorf("PerMiner map view %v disagrees with dense tallies", view)
	}

	if pool.Static != 3 {
		t.Errorf("pool static = %v, want 3", pool.Static)
	}
	// h1 referenced by p2 at distance 2-1 = 1: uncle reward 7/8 to
	// honest, nephew 1/32 to pool.
	if got, want := honest.Uncle, 7.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("honest uncle = %v, want %v", got, want)
	}
	if got, want := pool.Nephew, 1.0/32; math.Abs(got-want) > 1e-12 {
		t.Errorf("pool nephew = %v, want %v", got, want)
	}
	if honest.Static != 0 || honest.Nephew != 0 || pool.Uncle != 0 {
		t.Errorf("unexpected components: pool=%+v honest=%+v", pool, honest)
	}
	total := s.TotalReward()
	if got, want := total.Total(), 3+7.0/8+1.0/32; math.Abs(got-want) > 1e-12 {
		t.Errorf("total = %v, want %v", got, want)
	}
}

func TestSettleSelfReferenceSameMiner(t *testing.T) {
	// A miner referencing its own uncle earns both uncle and nephew
	// rewards; the single-miner bookkeeping path must not drop either.
	tree := NewTree(Config{MaxUncleDepth: 6}, minerGenesis)
	p1 := mustExtend(t, tree, tree.Genesis(), minerPool)
	u := mustExtend(t, tree, tree.Genesis(), minerPool)
	p2 := mustExtend(t, tree, p1, minerPool, u)

	s, err := tree.Settle(p2, rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	pool := s.MinerReward(minerPool)
	if pool.Static != 2 {
		t.Errorf("static = %v, want 2", pool.Static)
	}
	// u (height 1) referenced by p2 (height 2): distance 1, Ku = 7/8.
	if got, want := pool.Uncle, 7.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("uncle = %v, want %v (distance 1)", got, want)
	}
	if got, want := pool.Nephew, 1.0/32; math.Abs(got-want) > 1e-12 {
		t.Errorf("nephew = %v, want %v", got, want)
	}
}

func TestSettleZeroSchedule(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	a3 := mustExtend(t, tree, a2, minerPool, b1)
	s, err := tree.Settle(a3, rewards.Bitcoin())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MinerReward(minerHonest).Total(); got != 0 {
		t.Errorf("honest total = %v, want 0 under Bitcoin schedule", got)
	}
	if got := s.MinerReward(minerPool).Static; got != 3 {
		t.Errorf("pool static = %v, want 3", got)
	}
}

func TestSettleInvalidTip(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	if _, err := tree.Settle(42, rewards.Ethereum()); err == nil {
		t.Error("Settle on unknown tip should fail")
	}
}

func TestSettleGenesisOnly(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	s, err := tree.Settle(tree.Genesis(), rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	if s.RegularCount != 0 || s.UncleCount != 0 || s.StaleCount != 0 {
		t.Errorf("counts = %d/%d/%d, want all zero", s.RegularCount, s.UncleCount, s.StaleCount)
	}
	if view := s.PerMiner(); len(view) != 0 {
		t.Errorf("PerMiner = %v, want empty", view)
	}
}

func TestSettleCountsPartitionBlocks(t *testing.T) {
	// regular + uncle + stale must equal all non-genesis blocks when the
	// schedule's depth limit matches the tree's.
	tree, ids := fig3(t, true)
	s, err := tree.Settle(ids["H1"], rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.RegularCount+s.UncleCount+s.StaleCount, tree.Len()-1; got != want {
		t.Errorf("partition = %d, want %d", got, want)
	}
}

func TestLongestTips(t *testing.T) {
	tree, _, a2, b1 := fork(t)
	tips := tree.LongestTips()
	if len(tips) != 2 || tips[0] != a2 || tips[1] != b1 {
		t.Errorf("LongestTips = %v, want [a2 b1]", tips)
	}
	a3 := mustExtend(t, tree, a2, minerPool)
	tips = tree.LongestTips()
	if len(tips) != 1 || tips[0] != a3 {
		t.Errorf("LongestTips = %v, want [a3]", tips)
	}
}

func TestHeaviestTipPrefersBiggerSubtree(t *testing.T) {
	// genesis -> x (subtree size 2: x, x1)
	//         -> y (subtree size 3: y, y1, y2) but same max height
	tree := NewTree(Config{}, minerGenesis)
	x := mustExtend(t, tree, tree.Genesis(), minerPool)
	mustExtend(t, tree, x, minerPool)
	y := mustExtend(t, tree, tree.Genesis(), minerHonest)
	y1 := mustExtend(t, tree, y, minerHonest)
	y2 := mustExtend(t, tree, y, minerHonest)

	got := tree.HeaviestTip()
	if got != y1 && got != y2 {
		t.Errorf("HeaviestTip = %d, want a leaf under y", got)
	}
	// GHOST picks y's subtree even though both branches have height 2;
	// the longest rule would consider x1 equally good.
	weights := tree.SubtreeWeights()
	if weights[tree.Genesis()] != tree.Len() {
		t.Errorf("genesis weight = %d, want %d", weights[tree.Genesis()], tree.Len())
	}
	if weights[y] != 3 || weights[x] != 2 {
		t.Errorf("weights: x=%d y=%d, want 2 and 3", weights[x], weights[y])
	}
}

func TestHeaviestTipLinearChain(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	prev := tree.Genesis()
	for i := 0; i < 4; i++ {
		prev = mustExtend(t, tree, prev, minerHonest)
	}
	if got := tree.HeaviestTip(); got != prev {
		t.Errorf("HeaviestTip = %d, want %d", got, prev)
	}
}

func TestRewardAddAndTotal(t *testing.T) {
	a := Reward{Static: 1, Uncle: 0.5, Nephew: 0.25}
	b := Reward{Static: 2, Uncle: 0.5, Nephew: 0.75}
	sum := a.Add(b)
	if sum.Static != 3 || sum.Uncle != 1 || sum.Nephew != 1 {
		t.Errorf("Add = %+v", sum)
	}
	if got := sum.Total(); got != 5 {
		t.Errorf("Total = %v, want 5", got)
	}
}

func TestClassificationString(t *testing.T) {
	tests := []struct {
		give Classification
		want string
	}{
		{Regular, "regular"},
		{Uncle, "uncle"},
		{Stale, "stale"},
		{Classification(0), "classification(0)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}
