package chain

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file serializes block trees so simulation traces can be exported,
// archived, and replayed by external tooling (or golden-tested). The format
// is a stable JSON document; blocks appear in creation order, which is also
// a valid insertion order for reconstruction.

// ErrDecode is returned when a serialized tree is malformed.
var ErrDecode = errors.New("chain: invalid serialized tree")

// treeJSON is the on-disk representation.
type treeJSON struct {
	Version int         `json:"version"`
	Config  configJSON  `json:"config"`
	Blocks  []blockJSON `json:"blocks"`
}

type configJSON struct {
	MaxUncleDepth     int `json:"maxUncleDepth"`
	MaxUnclesPerBlock int `json:"maxUnclesPerBlock"`
}

type blockJSON struct {
	ID     BlockID   `json:"id"`
	Parent BlockID   `json:"parent"`
	Height int       `json:"height"`
	Miner  MinerID   `json:"miner"`
	Time   float64   `json:"time,omitempty"`
	Uncles []BlockID `json:"uncles,omitempty"`
}

// encodeVersion identifies the trace format.
const encodeVersion = 1

// Encode writes the tree as JSON.
func (t *Tree) Encode(w io.Writer) error {
	doc := treeJSON{
		Version: encodeVersion,
		Config: configJSON{
			MaxUncleDepth:     t.cfg.MaxUncleDepth,
			MaxUnclesPerBlock: t.cfg.MaxUnclesPerBlock,
		},
		Blocks: make([]blockJSON, 0, t.Len()),
	}
	for id := 0; id < t.Len(); id++ {
		b := t.Block(BlockID(id))
		doc.Blocks = append(doc.Blocks, blockJSON{
			ID:     b.ID,
			Parent: b.Parent,
			Height: b.Height,
			Miner:  b.Miner,
			Time:   b.Time,
			Uncles: b.Uncles,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode reconstructs a tree from its JSON form, re-validating every block
// and uncle reference through the normal Extend path, so a tampered trace
// cannot produce an inconsistent tree.
func Decode(r io.Reader) (*Tree, error) {
	var doc treeJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if doc.Version != encodeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDecode, doc.Version)
	}
	if len(doc.Blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks", ErrDecode)
	}
	genesis := doc.Blocks[0]
	if genesis.ID != 0 || genesis.Parent != NoBlock || genesis.Height != 0 {
		return nil, fmt.Errorf("%w: first block is not a genesis block", ErrDecode)
	}
	tree := NewTree(Config{
		MaxUncleDepth:     doc.Config.MaxUncleDepth,
		MaxUnclesPerBlock: doc.Config.MaxUnclesPerBlock,
	}, genesis.Miner)
	for i, b := range doc.Blocks[1:] {
		wantID := BlockID(i + 1)
		if b.ID != wantID {
			return nil, fmt.Errorf("%w: block %d out of order (id %d)", ErrDecode, i+1, b.ID)
		}
		id, err := tree.ExtendAt(b.Parent, b.Miner, b.Uncles, b.Time)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrDecode, i+1, err)
		}
		if tree.Block(id).Height != b.Height {
			return nil, fmt.Errorf("%w: block %d height %d, recomputed %d",
				ErrDecode, i+1, b.Height, tree.Block(id).Height)
		}
	}
	return tree, nil
}
