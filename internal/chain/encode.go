package chain

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file serializes block trees so simulation traces can be exported,
// archived, and replayed by external tooling (or golden-tested). The format
// is a stable JSON document; blocks appear in creation order, which is also
// a valid insertion order for reconstruction.

// ErrDecode is returned when a serialized tree is malformed.
var ErrDecode = errors.New("chain: invalid serialized tree")

// treeJSON is the on-disk representation. Base is present (version 2) only
// for compacted trees: it is the lowest resident block ID, and Blocks then
// starts there instead of at genesis. A full tree's document (version 1,
// base omitted) is byte-identical to the pre-compaction format.
type treeJSON struct {
	Version int         `json:"version"`
	Config  configJSON  `json:"config"`
	Base    int         `json:"base,omitempty"`
	Blocks  []blockJSON `json:"blocks"`
}

type configJSON struct {
	MaxUncleDepth     int `json:"maxUncleDepth"`
	MaxUnclesPerBlock int `json:"maxUnclesPerBlock"`
}

type blockJSON struct {
	ID     BlockID   `json:"id"`
	Parent BlockID   `json:"parent"`
	Height int       `json:"height"`
	Miner  MinerID   `json:"miner"`
	Time   float64   `json:"time,omitempty"`
	Uncles []BlockID `json:"uncles,omitempty"`
}

// encodeVersion identifies the trace format for full trees;
// encodeVersionCompacted marks documents that begin at a nonzero base.
const (
	encodeVersion          = 1
	encodeVersionCompacted = 2
)

// Encode writes the tree as JSON. A compacted tree writes its resident
// suffix [Base(), Len()) as a version-2 document; an uncompacted tree's
// output is unchanged from the version-1 format.
func (t *Tree) Encode(w io.Writer) error {
	version := encodeVersion
	if t.base != 0 {
		version = encodeVersionCompacted
	}
	doc := treeJSON{
		Version: version,
		Config: configJSON{
			MaxUncleDepth:     t.cfg.MaxUncleDepth,
			MaxUnclesPerBlock: t.cfg.MaxUnclesPerBlock,
		},
		Base:   int(t.base),
		Blocks: make([]blockJSON, 0, len(t.recs)),
	}
	for id := int(t.base); id < t.Len(); id++ {
		b := t.Block(BlockID(id))
		doc.Blocks = append(doc.Blocks, blockJSON{
			ID:     b.ID,
			Parent: b.Parent,
			Height: b.Height,
			Miner:  b.Miner,
			Time:   b.Time,
			Uncles: b.Uncles,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode reconstructs a tree from its JSON form. Version-1 documents are
// re-validated block by block through the normal Extend path, so a tampered
// trace cannot produce an inconsistent tree. Version-2 (compacted) documents
// carry dangling backward edges into the evicted prefix, which Extend cannot
// replay; their records are rebuilt directly under the same structural
// checks minus the ones that would dereference evicted blocks.
func Decode(r io.Reader) (*Tree, error) {
	var doc treeJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	switch doc.Version {
	case encodeVersion:
	case encodeVersionCompacted:
		return decodeCompacted(doc)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDecode, doc.Version)
	}
	if doc.Base != 0 {
		return nil, fmt.Errorf("%w: version 1 with nonzero base %d", ErrDecode, doc.Base)
	}
	if len(doc.Blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks", ErrDecode)
	}
	genesis := doc.Blocks[0]
	if genesis.ID != 0 || genesis.Parent != NoBlock || genesis.Height != 0 {
		return nil, fmt.Errorf("%w: first block is not a genesis block", ErrDecode)
	}
	tree := NewTree(Config{
		MaxUncleDepth:     doc.Config.MaxUncleDepth,
		MaxUnclesPerBlock: doc.Config.MaxUnclesPerBlock,
	}, genesis.Miner)
	for i, b := range doc.Blocks[1:] {
		wantID := BlockID(i + 1)
		if b.ID != wantID {
			return nil, fmt.Errorf("%w: block %d out of order (id %d)", ErrDecode, i+1, b.ID)
		}
		id, err := tree.ExtendAt(b.Parent, b.Miner, b.Uncles, b.Time)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrDecode, i+1, err)
		}
		if tree.Block(id).Height != b.Height {
			return nil, fmt.Errorf("%w: block %d height %d, recomputed %d",
				ErrDecode, i+1, b.Height, tree.Block(id).Height)
		}
	}
	return tree, nil
}

// decodeCompacted rebuilds a compacted tree's resident suffix. Structural
// checks that stay within the document are enforced (contiguous IDs,
// backward parents and uncles, parent/child height agreement, uncle depth
// and count limits, single reference per resident uncle); edges into the
// evicted prefix are recorded as-is, exactly as CompactBelow leaves them.
func decodeCompacted(doc treeJSON) (*Tree, error) {
	if doc.Base <= 0 {
		return nil, fmt.Errorf("%w: compacted document with base %d", ErrDecode, doc.Base)
	}
	if len(doc.Blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks", ErrDecode)
	}
	t := &Tree{
		cfg: Config{
			MaxUncleDepth:     doc.Config.MaxUncleDepth,
			MaxUnclesPerBlock: doc.Config.MaxUnclesPerBlock,
		},
		base: int32(doc.Base),
	}
	t.recs = make([]rec, 0, len(doc.Blocks))
	t.links = make([]links, 0, len(doc.Blocks))
	storeTimes := false
	for _, b := range doc.Blocks {
		if b.Time != 0 {
			storeTimes = true
			break
		}
	}
	for i, b := range doc.Blocks {
		wantID := BlockID(doc.Base + i)
		if b.ID != wantID {
			return nil, fmt.Errorf("%w: block %d out of order (id %d)", ErrDecode, int(wantID), b.ID)
		}
		if b.Parent == NoBlock || b.Parent < 0 || b.Parent >= b.ID || b.Height < 1 || b.Miner < 0 {
			return nil, fmt.Errorf("%w: block %d has invalid parent/height/miner", ErrDecode, b.ID)
		}
		if t.Contains(b.Parent) && t.HeightOf(b.Parent)+1 != b.Height {
			return nil, fmt.Errorf("%w: block %d height %d, parent height %d",
				ErrDecode, b.ID, b.Height, t.HeightOf(b.Parent))
		}
		if t.cfg.MaxUnclesPerBlock > 0 && len(b.Uncles) > t.cfg.MaxUnclesPerBlock {
			return nil, fmt.Errorf("%w: block %d: %v", ErrDecode, b.ID, ErrTooManyUncles)
		}
		start := int32(len(t.uncleArena))
		for j, u := range b.Uncles {
			if u < 0 || u >= b.ID {
				return nil, fmt.Errorf("%w: block %d uncle %d: %v", ErrDecode, b.ID, u, ErrUnknownBlock)
			}
			for _, prev := range b.Uncles[:j] {
				if prev == u {
					return nil, fmt.Errorf("%w: block %d uncle %d: %v", ErrDecode, b.ID, u, ErrDuplicateUncle)
				}
			}
			if t.Contains(u) {
				d := b.Height - t.HeightOf(u)
				if d < 1 {
					return nil, fmt.Errorf("%w: block %d uncle %d: %v", ErrDecode, b.ID, u, ErrUncleNotAttached)
				}
				if t.cfg.MaxUncleDepth > 0 && d > t.cfg.MaxUncleDepth {
					return nil, fmt.Errorf("%w: block %d uncle %d: %v", ErrDecode, b.ID, u, ErrUncleTooDeep)
				}
				if t.links[int32(u)-t.base].referencedBy != noBlock32 {
					return nil, fmt.Errorf("%w: block %d uncle %d: %v", ErrDecode, b.ID, u, ErrUncleAlreadyReferenced)
				}
			}
		}
		t.uncleArena = append(t.uncleArena, b.Uncles...)
		t.recs = append(t.recs, rec{
			parent:     int32(b.Parent),
			height:     int32(b.Height),
			miner:      int32(b.Miner),
			uncleStart: start,
			uncleEnd:   int32(len(t.uncleArena)),
		})
		t.links = append(t.links, noLinks)
		if storeTimes {
			t.times = append(t.times, b.Time)
		}
		id32 := int32(b.ID)
		if t.Contains(b.Parent) {
			lp := &t.links[int32(b.Parent)-t.base]
			if lp.firstChild == noBlock32 {
				lp.firstChild = id32
			} else {
				t.links[lp.lastChild-t.base].nextSibling = id32
			}
			lp.lastChild = id32
		}
		for _, u := range b.Uncles {
			if t.Contains(u) {
				t.links[int32(u)-t.base].referencedBy = id32
			}
		}
	}
	return t, nil
}
