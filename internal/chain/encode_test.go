package chain

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tree, ids := fig3(t, true)
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != tree.Len() {
		t.Fatalf("decoded %d blocks, want %d", decoded.Len(), tree.Len())
	}
	for id := BlockID(0); int(id) < tree.Len(); id++ {
		a, b := tree.Block(id), decoded.Block(id)
		if a.Parent != b.Parent || a.Height != b.Height || a.Miner != b.Miner {
			t.Errorf("block %d differs: %+v vs %+v", id, a, b)
		}
		if len(a.Uncles) != len(b.Uncles) {
			t.Errorf("block %d uncle count differs", id)
		}
	}
	// Classifications survive the round trip.
	orig := tree.Classify(ids["H1"])
	redecoded := decoded.Classify(ids["H1"])
	for i := range orig {
		if orig[i] != redecoded[i] {
			t.Errorf("block %d classification differs after round trip", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"not json", "not json at all"},
		{"empty blocks", `{"version":1,"config":{},"blocks":[]}`},
		{"bad version", `{"version":99,"config":{},"blocks":[{"id":0,"parent":-1,"height":0,"miner":0}]}`},
		{"bad genesis", `{"version":1,"config":{},"blocks":[{"id":5,"parent":-1,"height":0,"miner":0}]}`},
		{"out of order", `{"version":1,"config":{},"blocks":[
			{"id":0,"parent":-1,"height":0,"miner":0},
			{"id":7,"parent":0,"height":1,"miner":1}]}`},
		{"dangling parent", `{"version":1,"config":{},"blocks":[
			{"id":0,"parent":-1,"height":0,"miner":0},
			{"id":1,"parent":42,"height":1,"miner":1}]}`},
		{"height mismatch", `{"version":1,"config":{},"blocks":[
			{"id":0,"parent":-1,"height":0,"miner":0},
			{"id":1,"parent":0,"height":9,"miner":1}]}`},
		{"invalid uncle", `{"version":1,"config":{},"blocks":[
			{"id":0,"parent":-1,"height":0,"miner":0},
			{"id":1,"parent":0,"height":1,"miner":1,"uncles":[0]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tt.give)); !errors.Is(err, ErrDecode) {
				t.Errorf("err = %v, want ErrDecode", err)
			}
		})
	}
}

func TestDecodePreservesConfig(t *testing.T) {
	tree := NewTree(Config{MaxUncleDepth: 6, MaxUnclesPerBlock: 2}, minerGenesis)
	mustExtend(t, tree, tree.Genesis(), minerPool)
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored config must enforce the same limits: a too-deep uncle
	// must still be rejected.
	if decoded.cfg.MaxUncleDepth != 6 || decoded.cfg.MaxUnclesPerBlock != 2 {
		t.Errorf("config lost in round trip: %+v", decoded.cfg)
	}
}

func TestEncodeStableOutput(t *testing.T) {
	tree, _, _, b1 := fork(t)
	mustExtend(t, tree, b1, minerHonest)
	var a, b bytes.Buffer
	if err := tree.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := tree.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Encode is not deterministic")
	}
	if !strings.Contains(a.String(), `"version": 1`) {
		t.Error("missing version field")
	}
}

func TestEncodeDecodeRoundTripTimestamps(t *testing.T) {
	tree := NewTree(Config{MaxUncleDepth: 6}, 0)
	a, err := tree.ExtendAt(tree.Genesis(), 1, nil, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ExtendAt(a, 2, nil, 1.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < tree.Len(); id++ {
		if got, want := decoded.TimeOf(BlockID(id)), tree.TimeOf(BlockID(id)); got != want {
			t.Errorf("block %d: decoded time %v, want %v", id, got, want)
		}
	}
}
