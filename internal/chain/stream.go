package chain

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// StreamSettler settles the decided prefix of a chain incrementally, so a
// long-horizon run never needs the one-shot descending Settle walk (which
// requires the full history) and the tree can evict everything already
// settled.
//
// The settler consumes the chain ascending: each Advance call extends the
// settled prefix from the previous settled tip to a descendant of it, adding
// every newly decided block's static reward and realized uncle references
// into the same dense per-miner tallies Settle produces. The two orders sum
// the same multiset of reward values, and every value in a reward schedule
// is a dyadic rational with totals far below 2^53 (Ethereum's (8-d)/8 and
// 1/32, Bitcoin's and the tests' constants), so each float addition is exact
// and the accumulated tallies are bit-identical to the one-shot walk — the
// property the golden-equivalence and fuzz suites pin.
//
// Counts follow the same rules as Settle: RegularCount is the settled chain
// length, UncleCount counts schedule-referenceable references only, and the
// stale count is left to the caller (minted − regular − uncles at assembly
// time, using the tree's logical Len which includes evicted records).
type StreamSettler struct {
	schedule rewards.Schedule

	// tip and height are the last settled chain block and its height; the
	// next Advance must target a descendant of tip.
	tip    BlockID
	height int

	minerRewards []Reward
	minerSeen    []bool
	regularCount int
	uncleCount   int

	// mintedUncle and mintedNephew accumulate the total uncle and nephew
	// rewards granted, giving the streaming conservation audit its
	// expected totals without a Refs list.
	mintedUncle  float64
	mintedNephew float64

	// scratch reverses each Advance's descending walk into ascending
	// settle order; its length is bounded by the advance stride, not the
	// run.
	scratch []BlockID
}

// NewStreamSettler returns a settler whose settled prefix is just the
// genesis block (which earns no reward).
func NewStreamSettler(schedule rewards.Schedule) *StreamSettler {
	ss := &StreamSettler{}
	ss.Reset(schedule)
	return ss
}

// Reset re-initializes the settler in place for a fresh run, retaining tally
// storage (Runner reuse).
func (ss *StreamSettler) Reset(schedule rewards.Schedule) {
	ss.schedule = schedule
	ss.tip = 0
	ss.height = 0
	for i := range ss.minerRewards {
		ss.minerRewards[i] = Reward{}
		ss.minerSeen[i] = false
	}
	ss.minerRewards = ss.minerRewards[:0]
	ss.minerSeen = ss.minerSeen[:0]
	ss.regularCount = 0
	ss.uncleCount = 0
	ss.mintedUncle = 0
	ss.mintedNephew = 0
}

// SettledTip returns the last settled chain block (genesis before the first
// Advance).
func (ss *StreamSettler) SettledTip() BlockID { return ss.tip }

// SettledHeight returns the settled prefix's height.
func (ss *StreamSettler) SettledHeight() int { return ss.height }

// RegularCount returns the number of settled reward-earning chain blocks;
// it always equals SettledHeight.
func (ss *StreamSettler) RegularCount() int { return ss.regularCount }

// UncleCount returns the number of schedule-referenceable uncle references
// settled so far.
func (ss *StreamSettler) UncleCount() int { return ss.uncleCount }

// MintedUncle returns the total uncle reward granted so far.
func (ss *StreamSettler) MintedUncle() float64 { return ss.mintedUncle }

// MintedNephew returns the total nephew reward granted so far.
func (ss *StreamSettler) MintedNephew() float64 { return ss.mintedNephew }

// MinerRewards returns the dense per-miner tallies of the settled prefix,
// indexed by MinerID. The slice is owned by the settler; callers copy before
// mutating.
func (ss *StreamSettler) MinerRewards() []Reward { return ss.minerRewards }

// MinerSeen marks the miner IDs that have appeared in the settled prefix,
// parallel to MinerRewards.
func (ss *StreamSettler) MinerSeen() []bool { return ss.minerSeen }

// CloneInto deep-copies the settler's state into dst (reusing dst's
// storage), so an audit can advance a throwaway copy to the consensus floor
// without disturbing the live settled prefix.
func (ss *StreamSettler) CloneInto(dst *StreamSettler) {
	dst.schedule = ss.schedule
	dst.tip = ss.tip
	dst.height = ss.height
	dst.minerRewards = append(dst.minerRewards[:0], ss.minerRewards...)
	dst.minerSeen = append(dst.minerSeen[:0], ss.minerSeen...)
	dst.regularCount = ss.regularCount
	dst.uncleCount = ss.uncleCount
	dst.mintedUncle = ss.mintedUncle
	dst.mintedNephew = ss.mintedNephew
}

// see grows the dense tallies to cover id and marks it seen.
func (ss *StreamSettler) see(id int32) int {
	for int(id) >= len(ss.minerRewards) {
		ss.minerRewards = append(ss.minerRewards, Reward{})
		ss.minerSeen = append(ss.minerSeen, false)
	}
	ss.minerSeen[id] = true
	return int(id)
}

// SettleHooks are optional observation callbacks for StreamSettler.Advance.
// Either may be nil; neither may mutate the tree or the settler.
type SettleHooks struct {
	// OnBlock fires once per newly settled chain block, in ascending
	// order, before the block's references.
	OnBlock func(id BlockID, height int)

	// OnRef fires for every realized uncle reference
	// (schedule-referenceable or not — exactly the entries Settle would
	// append to Refs), in ascending block order with each block's stored
	// reference order.
	OnRef func(UncleRef)
}

// Advance settles the chain blocks strictly above the current settled tip up
// to and including "to", which must be a descendant of the settled tip (or
// the settled tip itself, a no-op). Every block on that span and every uncle
// it references must still be resident in t — the streaming simulator
// guarantees this by settling before evicting and by the uncle-window bound.
// Advance never retains t.
func (ss *StreamSettler) Advance(t *Tree, to BlockID, hooks SettleHooks) error {
	if to == ss.tip {
		return nil
	}
	if !t.Contains(to) {
		return fmt.Errorf("settle target %d: %w", to, ErrUnknownBlock)
	}
	// Collect the new span tip-down, then settle it in reverse (ascending)
	// order. The walk also proves the descendant precondition: it must
	// land exactly on the settled tip.
	span := ss.scratch[:0]
	cursor := to
	for cursor != ss.tip {
		if int(cursor) < int(t.Base()) || t.HeightOf(cursor) <= ss.height {
			return fmt.Errorf("chain: settle target %d does not descend from settled tip %d", to, ss.tip)
		}
		span = append(span, cursor)
		cursor = t.ParentOf(cursor)
	}
	ss.scratch = span
	for i := len(span) - 1; i >= 0; i-- {
		id := span[i]
		_, height, uncles := t.BlockInfo(id)
		if hooks.OnBlock != nil {
			hooks.OnBlock(id, height)
		}
		ss.regularCount++
		m := ss.see(int32(t.MinerOf(id)))
		ss.minerRewards[m].Static++
		for _, u := range uncles {
			d := height - t.HeightOf(u)
			if hooks.OnRef != nil {
				hooks.OnRef(UncleRef{Uncle: u, Nephew: id, Distance: d})
			}
			if !ss.schedule.Referenceable(d) {
				continue
			}
			ss.uncleCount++
			nv := ss.schedule.Nephew(d)
			ss.minerRewards[m].Nephew += nv
			ss.mintedNephew += nv
			uv := ss.schedule.Uncle(d)
			um := ss.see(int32(t.MinerOf(u)))
			ss.minerRewards[um].Uncle += uv
			ss.mintedUncle += uv
		}
	}
	ss.tip = to
	ss.height = t.HeightOf(to)
	return nil
}
