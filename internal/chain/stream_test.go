package chain

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// buildUncledChain grows a chain of the given height where every third
// height forks (the stale sibling is referenced two blocks later), giving
// settlement a steady supply of uncles at distance 2.
func buildUncledChain(t *testing.T, tree *Tree, height int) (tip BlockID) {
	t.Helper()
	tip = tree.Genesis()
	var pendingUncle BlockID = NoBlock
	for h := 1; h <= height; h++ {
		var uncles []BlockID
		if pendingUncle != NoBlock && h%3 == 2 {
			uncles = []BlockID{pendingUncle}
			pendingUncle = NoBlock
		}
		next := mustExtend(t, tree, tip, minerHonest, uncles...)
		if h%3 == 0 {
			pendingUncle = mustExtend(t, tree, tip, minerPool)
		}
		tip = next
	}
	return tip
}

// TestStreamSettlerMatchesSettle pins the settler's core promise: advancing
// in arbitrary strides accumulates tallies bit-identical to the one-shot
// descending walk over the same chain.
func TestStreamSettlerMatchesSettle(t *testing.T) {
	sched := rewards.Ethereum()
	tree := NewTree(Config{}, minerGenesis)
	tip := buildUncledChain(t, tree, 60)

	want, err := tree.Settle(tip, sched)
	if err != nil {
		t.Fatal(err)
	}

	ss := NewStreamSettler(sched)
	var blocks, refs int
	hooks := SettleHooks{
		OnBlock: func(BlockID, int) { blocks++ },
		OnRef:   func(UncleRef) { refs++ },
	}
	// Uneven strides cover single-step, batched, and no-op advances.
	for _, h := range []int{1, 2, 10, 11, 37, 37, 60} {
		if err := ss.Advance(tree, tree.AncestorAt(tip, h), hooks); err != nil {
			t.Fatalf("advance to height %d: %v", h, err)
		}
	}

	if ss.SettledTip() != tip || ss.SettledHeight() != 60 {
		t.Fatalf("settled to %d (height %d), want %d (60)", ss.SettledTip(), ss.SettledHeight(), ss.SettledHeight())
	}
	if ss.RegularCount() != want.RegularCount || ss.UncleCount() != want.UncleCount {
		t.Errorf("counts regular=%d uncles=%d, one-shot regular=%d uncles=%d",
			ss.RegularCount(), ss.UncleCount(), want.RegularCount, want.UncleCount)
	}
	if blocks != want.RegularCount || refs != len(want.Refs) {
		t.Errorf("hooks saw %d blocks, %d refs; one-shot settled %d blocks, %d refs",
			blocks, refs, want.RegularCount, len(want.Refs))
	}
	if len(ss.MinerRewards()) != len(want.MinerRewards) {
		t.Fatalf("miner tallies cover %d IDs, one-shot %d", len(ss.MinerRewards()), len(want.MinerRewards))
	}
	for id, got := range ss.MinerRewards() {
		if got != want.MinerRewards[id] {
			t.Errorf("miner %d: streaming %+v, one-shot %+v", id, got, want.MinerRewards[id])
		}
		if ss.MinerSeen()[id] != want.MinerSeen[id] {
			t.Errorf("miner %d: seen=%v, one-shot %v", id, ss.MinerSeen()[id], want.MinerSeen[id])
		}
	}
}

// TestStreamSettlerRejectsNonDescendant pins the descent precondition: a
// target off the settled tip's chain (or behind it) errors without
// corrupting the settler.
func TestStreamSettlerRejectsNonDescendant(t *testing.T) {
	tree, a1, a2, b1 := fork(t)
	ss := NewStreamSettler(rewards.Ethereum())
	if err := ss.Advance(tree, a2, SettleHooks{}); err != nil {
		t.Fatal(err)
	}
	if err := ss.Advance(tree, b1, SettleHooks{}); err == nil {
		t.Error("advance to a sibling branch succeeded")
	}
	if err := ss.Advance(tree, a1, SettleHooks{}); err == nil {
		t.Error("advance backwards succeeded")
	}
	if ss.SettledTip() != a2 || ss.RegularCount() != 2 {
		t.Errorf("failed advances disturbed the settler: tip %d, regular %d", ss.SettledTip(), ss.RegularCount())
	}
}

// TestCompactBelowBoundaryAtUnclesParent pins the eviction edge case the
// simulator's sweep relies on: compacting right at an open uncle
// candidate's parent keeps the candidate and its parent resident and the
// candidate referenceable, while the evicted grandparent stays visible only
// as a dangling parent ID.
func TestCompactBelowBoundaryAtUnclesParent(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	c1 := mustExtend(t, tree, tree.Genesis(), minerHonest) // height 1
	c2 := mustExtend(t, tree, c1, minerHonest)             // height 2: the candidate's parent
	c3 := mustExtend(t, tree, c2, minerHonest)             // height 3
	cand := mustExtend(t, tree, c2, minerPool)             // height 3: open fork child
	c4 := mustExtend(t, tree, c3, minerHonest)             // height 4

	// Evict heights 0..1; the boundary lands exactly at the candidate's
	// parent c2.
	if got := tree.CompactBelow(2); got != 2 {
		t.Fatalf("evicted %d records, want 2", got)
	}
	if tree.Base() != c2 || tree.Evicted() != 2 || tree.Len() != 6 {
		t.Fatalf("base %d evicted %d len %d, want %d 2 6", tree.Base(), tree.Evicted(), tree.Len(), c2)
	}
	if tree.Contains(c1) || !tree.Contains(c2) || !tree.Contains(cand) {
		t.Fatal("residency flips on the wrong side of the boundary")
	}
	// The resident boundary record still names its evicted parent by ID.
	if tree.ParentOf(c2) != c1 || tree.HeightOf(c2) != 2 {
		t.Errorf("boundary record: parent %d height %d, want %d 2", tree.ParentOf(c2), tree.HeightOf(c2), c1)
	}
	// The candidate's sibling links survive the copy-down.
	if !tree.IsForkChild(cand) || tree.ParentOf(cand) != c2 {
		t.Error("fork-child structure lost across compaction")
	}
	// The candidate is still referenceable: a block on the main chain can
	// take it as an uncle at distance 2, and the reference lands in the
	// rebased arena.
	c5, err := tree.Extend(c4, minerHonest, []BlockID{cand})
	if err != nil {
		t.Fatalf("referencing a resident candidate after compaction: %v", err)
	}
	if got := tree.UnclesOf(c5); len(got) != 1 || got[0] != cand {
		t.Errorf("UnclesOf = %v, want [%d]", got, cand)
	}
	if tree.ReferencedBy(cand) != c5 {
		t.Errorf("ReferencedBy(%d) = %d, want %d", cand, tree.ReferencedBy(cand), c5)
	}
	// An evicted block is gone for good: not containable, not extendable.
	if _, err := tree.Extend(c1, minerHonest, nil); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("extending an evicted block: err = %v, want ErrUnknownBlock", err)
	}
}

// TestCompactBelowStopsAtFirstTallRecord pins the prefix semantics: the
// scan stops at the first record at or above the bound, so a later record
// below the bound (a stale fork block minted late) survives.
func TestCompactBelowStopsAtFirstTallRecord(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	c1 := mustExtend(t, tree, tree.Genesis(), minerHonest) // height 1
	c2 := mustExtend(t, tree, c1, minerHonest)             // height 2
	late := mustExtend(t, tree, c1, minerPool)             // height 2, but minted after c2
	c3 := mustExtend(t, tree, c2, minerHonest)             // height 3

	if got := tree.CompactBelow(2); got != 2 {
		t.Fatalf("evicted %d records, want 2 (genesis and c1)", got)
	}
	if !tree.Contains(late) || !tree.Contains(c2) || !tree.Contains(c3) {
		t.Fatal("prefix eviction removed a record past the first tall one")
	}
	// A second compaction at the same bound is a no-op: the prefix already
	// starts at or above it.
	if got := tree.CompactBelow(2); got != 0 {
		t.Fatalf("re-compacting evicted %d records, want 0", got)
	}
}

// TestResetAfterCompaction pins Runner reuse: Reset on a partially
// compacted tree restores the pristine genesis state, and the reused tree
// grows and settles normally from ID zero.
func TestResetAfterCompaction(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	tip := buildUncledChain(t, tree, 30)
	if tree.CompactBelow(20) == 0 {
		t.Fatal("compaction evicted nothing")
	}
	_ = tip

	tree.Reset(Config{}, minerGenesis)
	if tree.Len() != 1 || tree.Base() != 0 || tree.Evicted() != 0 || tree.TotalUncleRefs() != 0 {
		t.Fatalf("reset left len=%d base=%d evicted=%d refs=%d", tree.Len(), tree.Base(), tree.Evicted(), tree.TotalUncleRefs())
	}
	tip = buildUncledChain(t, tree, 15)
	settlement, err := tree.Settle(tip, rewards.Ethereum())
	if err != nil {
		t.Fatal(err)
	}
	if settlement.RegularCount != 15 {
		t.Fatalf("reused tree settled %d regular blocks, want 15", settlement.RegularCount)
	}
}

// TestCompactedEncodeDecodeRoundTrip pins the v2 wire format: a compacted
// tree round-trips through Encode/Decode preserving the ID base, residency,
// dangling parent IDs, uncle references, and re-encodes byte-identically.
func TestCompactedEncodeDecodeRoundTrip(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	tip := buildUncledChain(t, tree, 40)
	if tree.CompactBelow(25) == 0 {
		t.Fatal("compaction evicted nothing")
	}

	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if decoded.Len() != tree.Len() || decoded.Base() != tree.Base() {
		t.Fatalf("decoded len=%d base=%d, want %d %d", decoded.Len(), decoded.Base(), tree.Len(), tree.Base())
	}
	for id := int(tree.Base()); id < tree.Len(); id++ {
		b := BlockID(id)
		wp, wh, wu := tree.BlockInfo(b)
		gp, gh, gu := decoded.BlockInfo(b)
		if wp != gp || wh != gh || len(wu) != len(gu) {
			t.Fatalf("block %d: decoded (%d, %d, %v), want (%d, %d, %v)", id, gp, gh, gu, wp, wh, wu)
		}
		for i := range wu {
			if wu[i] != gu[i] {
				t.Fatalf("block %d uncle %d: decoded %d, want %d", id, i, gu[i], wu[i])
			}
		}
		if tree.ReferencedBy(b) != decoded.ReferencedBy(b) {
			t.Errorf("block %d: decoded referencedBy %d, want %d", id, decoded.ReferencedBy(b), tree.ReferencedBy(b))
		}
	}
	if decoded.Contains(tree.Base() - 1) {
		t.Error("decoded tree claims an evicted block is resident")
	}

	// The decoded tree keeps growing from where the original left off.
	if _, err := decoded.Extend(tip, minerHonest, nil); err != nil {
		t.Fatalf("extending a decoded compacted tree: %v", err)
	}

	var again bytes.Buffer
	if err := tree.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Error("re-encoding a compacted tree is not byte-identical")
	}
}

// TestCompactedDecodeRejectsForwardDangles pins v2 validation: a compacted
// document whose resident records point at out-of-range structure is
// rejected rather than rebuilt.
func TestCompactedDecodeRejectsForwardDangles(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	buildUncledChain(t, tree, 12)
	tree.CompactBelow(6)
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// A v1 document must never carry a nonzero base.
	bad := bytes.Replace(buf.Bytes(), []byte(`"version": 2`), []byte(`"version": 1`), 1)
	if bytes.Equal(bad, buf.Bytes()) {
		t.Fatal("version marker not found in encoded document")
	}
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a v1 document with a nonzero base")
	}
}

// TestSubtreeWeightsPanicsCompacted pins the full-tree-only guard on the
// weight aggregation (its recursion crosses the evicted prefix).
func TestSubtreeWeightsPanicsCompacted(t *testing.T) {
	tree := NewTree(Config{}, minerGenesis)
	buildUncledChain(t, tree, 12)
	tree.CompactBelow(6)
	defer func() {
		if recover() == nil {
			t.Error("SubtreeWeights on a compacted tree did not panic")
		}
	}()
	tree.SubtreeWeights()
}