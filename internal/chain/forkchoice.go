package chain

// LongestTips returns the block(s) of maximum height, in creation order.
// With a single element the fork choice is unambiguous; with several, the
// caller applies its tie-breaking rule (the paper's gamma parameter).
func (t *Tree) LongestTips() []BlockID {
	best := -1
	var tips []BlockID
	for id := range t.recs {
		if t.links[id].firstChild != noBlock32 {
			continue
		}
		h := int(t.recs[id].height)
		switch {
		case h > best:
			best = h
			tips = tips[:0]
			tips = append(tips, BlockID(id))
		case h == best:
			tips = append(tips, BlockID(id))
		}
	}
	return tips
}

// HeaviestTip implements the GHOST fork-choice rule: starting from genesis,
// repeatedly descend into the child whose subtree contains the most blocks,
// breaking ties by lowest sequence number (first seen). Ethereum's
// documentation describes GHOST while its implementation follows the longest
// chain (see footnote 2 of the paper); both are provided so the difference
// can be measured.
func (t *Tree) HeaviestTip() BlockID {
	weights := t.SubtreeWeights()
	cursor := t.Genesis()
	for {
		first := t.links[cursor].firstChild
		if first == noBlock32 {
			return cursor
		}
		best := first
		for kid := t.links[first].nextSibling; kid != noBlock32; kid = t.links[kid].nextSibling {
			if weights[kid] > weights[best] {
				best = kid
			}
		}
		cursor = BlockID(best)
	}
}

// SubtreeWeights returns, for every block, the number of blocks in its
// subtree (itself included). Blocks are indexed by BlockID.
func (t *Tree) SubtreeWeights() []int {
	weights := make([]int, len(t.recs))
	// Children always have larger IDs than parents (append-only tree),
	// so a single reverse sweep accumulates subtree sizes bottom-up.
	for id := len(t.recs) - 1; id >= 0; id-- {
		weights[id]++
		if p := t.recs[id].parent; p != noBlock32 {
			weights[p] += weights[id]
		}
	}
	return weights
}
