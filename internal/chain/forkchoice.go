package chain

// LongestTips returns the resident block(s) of maximum height, in creation
// order. With a single element the fork choice is unambiguous; with several,
// the caller applies its tie-breaking rule (the paper's gamma parameter).
// On a compacted tree the scan covers [Base(), Len()), which always contains
// every leaf (evicted prefixes are decided history below all tips).
func (t *Tree) LongestTips() []BlockID {
	best := -1
	var tips []BlockID
	for i := range t.recs {
		if t.links[i].firstChild == noBlock32 {
			h := int(t.recs[i].height)
			switch {
			case h > best:
				best = h
				tips = tips[:0]
				tips = append(tips, BlockID(t.base+int32(i)))
			case h == best:
				tips = append(tips, BlockID(t.base+int32(i)))
			}
		}
	}
	return tips
}

// HeaviestTip implements the GHOST fork-choice rule: starting from genesis,
// repeatedly descend into the child whose subtree contains the most blocks,
// breaking ties by lowest sequence number (first seen). Ethereum's
// documentation describes GHOST while its implementation follows the longest
// chain (see footnote 2 of the paper); both are provided so the difference
// can be measured. It requires the full history (the walk starts at genesis)
// and panics on a compacted tree.
func (t *Tree) HeaviestTip() BlockID {
	weights := t.SubtreeWeights()
	cursor := t.Genesis()
	for {
		first := t.links[t.mustIndex(cursor)].firstChild
		if first == noBlock32 {
			return cursor
		}
		best := first
		for kid := t.links[first-t.base].nextSibling; kid != noBlock32; kid = t.links[kid-t.base].nextSibling {
			if weights[kid] > weights[best] {
				best = kid
			}
		}
		cursor = BlockID(best)
	}
}

// SubtreeWeights returns, for every block, the number of blocks in its
// subtree (itself included). Blocks are indexed by BlockID, so it requires
// the full history (a compacted tree has no records for IDs below Base()).
func (t *Tree) SubtreeWeights() []int {
	if t.base != 0 {
		panic("chain: SubtreeWeights requires an uncompacted tree")
	}
	weights := make([]int, len(t.recs))
	// Children always have larger IDs than parents (append-only tree),
	// so a single reverse sweep accumulates subtree sizes bottom-up.
	for id := len(t.recs) - 1; id >= 0; id-- {
		weights[id]++
		if p := t.recs[id].parent; p != noBlock32 {
			weights[p] += weights[id]
		}
	}
	return weights
}
