// Package chain implements the Ethereum-style block-tree substrate used by
// the simulator: blocks linked by parent hashes, fork choice, uncle
// (ommer) reference validation, and reward settlement over a finished tree.
//
// The package is deliberately protocol-faithful where the paper depends on
// protocol behavior (uncle eligibility, reference distances, one reference
// per uncle) and configurable where the paper abstracts it away (maximum
// uncle depth, uncles per block).
package chain

import (
	"errors"
	"fmt"
)

// MinerID identifies the miner that produced a block. The simulator assigns
// IDs; the tree only records them. IDs must be non-negative: they index the
// dense per-miner reward tallies computed by settlement (genesis is
// conventionally the reserved ID 0, populations use 1..n).
type MinerID int

// BlockID is a dense handle for a block within one Tree.
type BlockID int

// NoBlock is the null block handle (parent of the genesis block).
const NoBlock BlockID = -1

// Block is a node of the block tree. Fields are immutable once added.
type Block struct {
	// ID is the block's handle in the tree.
	ID BlockID

	// Parent is the block this one extends, or NoBlock for genesis.
	Parent BlockID

	// Height is the distance from genesis (genesis is 0).
	Height int

	// Miner produced the block.
	Miner MinerID

	// Seq is the global creation sequence number (genesis is 0); it
	// stands in for the timestamp in timeless runs.
	Seq int

	// Time is the block's timestamp: the simulation clock at its creation
	// event. Timeless runs leave it zero for every block.
	Time float64

	// Uncles lists the stale blocks this block references.
	Uncles []BlockID
}

// Classification of a block relative to a chosen main chain.
type Classification int

// Block classifications (Sec. III-B of the paper).
const (
	// Regular blocks are on the main chain.
	Regular Classification = iota + 1

	// Uncle blocks are stale blocks referenced by a main-chain block.
	Uncle

	// Stale blocks are off-chain and unreferenced.
	Stale
)

// String implements fmt.Stringer.
func (c Classification) String() string {
	switch c {
	case Regular:
		return "regular"
	case Uncle:
		return "uncle"
	case Stale:
		return "stale"
	default:
		return fmt.Sprintf("classification(%d)", int(c))
	}
}

// Validation errors returned by Tree.Extend.
var (
	// ErrUnknownBlock is returned when a referenced block does not exist.
	ErrUnknownBlock = errors.New("chain: unknown block")

	// ErrUncleIsAncestor is returned when a block tries to reference one
	// of its own ancestors as an uncle.
	ErrUncleIsAncestor = errors.New("chain: uncle is an ancestor of the referencing block")

	// ErrUncleNotAttached is returned when an uncle's parent is not an
	// ancestor of the referencing block.
	ErrUncleNotAttached = errors.New("chain: uncle's parent is not an ancestor of the referencing block")

	// ErrUncleTooDeep is returned when the uncle is older than the
	// tree's maximum reference depth.
	ErrUncleTooDeep = errors.New("chain: uncle exceeds the maximum reference depth")

	// ErrUncleAlreadyReferenced is returned when an ancestor of the new
	// block already references the same uncle.
	ErrUncleAlreadyReferenced = errors.New("chain: uncle already referenced on this chain")

	// ErrTooManyUncles is returned when a block references more uncles
	// than the tree allows.
	ErrTooManyUncles = errors.New("chain: too many uncles in one block")

	// ErrDuplicateUncle is returned when the same uncle appears twice in
	// one block.
	ErrDuplicateUncle = errors.New("chain: duplicate uncle reference in one block")

	// ErrBadMinerID is returned when a block's miner ID is negative.
	ErrBadMinerID = errors.New("chain: miner ID must be non-negative")
)
