package chain

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// Reward is a per-miner reward tally, in units of the static block reward.
type Reward struct {
	// Static is the total static (regular block) reward.
	Static float64

	// Uncle is the total uncle reward.
	Uncle float64

	// Nephew is the total nephew reward.
	Nephew float64
}

// Total returns the sum of all reward components.
func (r Reward) Total() float64 { return r.Static + r.Uncle + r.Nephew }

// Add returns the component-wise sum of two reward tallies.
func (r Reward) Add(other Reward) Reward {
	return Reward{
		Static: r.Static + other.Static,
		Uncle:  r.Uncle + other.Uncle,
		Nephew: r.Nephew + other.Nephew,
	}
}

// UncleRef describes one realized uncle reference.
type UncleRef struct {
	// Uncle is the referenced stale block.
	Uncle BlockID

	// Nephew is the regular block referencing it.
	Nephew BlockID

	// Distance is Nephew.Height - Uncle.Height.
	Distance int
}

// Settlement is the outcome of settling rewards over a finished tree with
// respect to a chosen main-chain tip.
type Settlement struct {
	// Tip is the main-chain tip the settlement was computed against.
	Tip BlockID

	// PerMiner maps each miner to its reward tally. Miners that earned
	// nothing do not appear. The genesis block earns no reward.
	PerMiner map[MinerID]Reward

	// RegularCount is the number of reward-earning main-chain blocks
	// (genesis excluded).
	RegularCount int

	// UncleCount is the number of stale blocks referenced by main-chain
	// blocks.
	UncleCount int

	// StaleCount is the number of off-chain blocks that were never
	// referenced.
	StaleCount int

	// Refs lists every realized uncle reference.
	Refs []UncleRef
}

// Classify returns each block's classification with respect to the
// settlement's main chain, indexed by BlockID.
func (t *Tree) Classify(tip BlockID) []Classification {
	out := make([]Classification, len(t.blocks))
	for i := range out {
		out[i] = Stale
	}
	for _, id := range t.PathTo(tip) {
		out[id] = Regular
	}
	for _, id := range t.PathTo(tip) {
		for _, u := range t.blocks[id].Uncles {
			if out[u] == Regular {
				// A main-chain block cannot be an uncle; Extend
				// prevents referencing ancestors, so this would
				// mean the reference crossed chains.
				continue
			}
			out[u] = Uncle
		}
	}
	return out
}

// Settle computes rewards for the main chain ending at tip under the given
// schedule. Uncle references at distances the schedule cannot reference
// (possible when the tree was built with a laxer depth limit than the
// schedule) earn nothing but still count as uncles for rate accounting if
// and only if the schedule allows the distance; they are reported in Refs
// either way. It returns an error only for an invalid tip.
func (t *Tree) Settle(tip BlockID, schedule rewards.Schedule) (Settlement, error) {
	if !t.Contains(tip) {
		return Settlement{}, fmt.Errorf("tip %d: %w", tip, ErrUnknownBlock)
	}
	s := Settlement{
		Tip:      tip,
		PerMiner: make(map[MinerID]Reward),
	}
	path := t.PathTo(tip)
	onChain := make([]bool, len(t.blocks))
	for _, id := range path {
		onChain[id] = true
	}

	referenced := make([]bool, len(t.blocks))
	for _, id := range path {
		if id == t.Genesis() {
			continue
		}
		b := t.blocks[id]
		s.RegularCount++
		tally := s.PerMiner[b.Miner]
		tally.Static++
		for _, u := range b.Uncles {
			d := b.Height - t.blocks[u].Height
			s.Refs = append(s.Refs, UncleRef{Uncle: u, Nephew: id, Distance: d})
			if !schedule.Referenceable(d) {
				// Too deep for this schedule: the block stays a
				// stale block for accounting purposes.
				continue
			}
			referenced[u] = true
			s.UncleCount++
			tally.Nephew += schedule.Nephew(d)
			uncleMiner := t.blocks[u].Miner
			if uncleMiner == b.Miner {
				tally.Uncle += schedule.Uncle(d)
				continue
			}
			uncleTally := s.PerMiner[uncleMiner]
			uncleTally.Uncle += schedule.Uncle(d)
			s.PerMiner[uncleMiner] = uncleTally
		}
		s.PerMiner[b.Miner] = tally
	}
	for id := range t.blocks {
		if BlockID(id) == t.Genesis() || onChain[id] || referenced[id] {
			continue
		}
		s.StaleCount++
	}
	return s, nil
}

// TotalReward returns the sum of all miners' rewards in the settlement.
func (s Settlement) TotalReward() Reward {
	var total Reward
	for _, r := range s.PerMiner {
		total = total.Add(r)
	}
	return total
}
