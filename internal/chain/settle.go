package chain

import (
	"fmt"

	"github.com/ethselfish/ethselfish/internal/rewards"
)

// Reward is a per-miner reward tally, in units of the static block reward.
type Reward struct {
	// Static is the total static (regular block) reward.
	Static float64

	// Uncle is the total uncle reward.
	Uncle float64

	// Nephew is the total nephew reward.
	Nephew float64
}

// Total returns the sum of all reward components.
func (r Reward) Total() float64 { return r.Static + r.Uncle + r.Nephew }

// IsZero reports whether every component is zero.
func (r Reward) IsZero() bool { return r == Reward{} }

// Add returns the component-wise sum of two reward tallies.
func (r Reward) Add(other Reward) Reward {
	return Reward{
		Static: r.Static + other.Static,
		Uncle:  r.Uncle + other.Uncle,
		Nephew: r.Nephew + other.Nephew,
	}
}

// UncleRef describes one realized uncle reference.
type UncleRef struct {
	// Uncle is the referenced stale block.
	Uncle BlockID

	// Nephew is the regular block referencing it.
	Nephew BlockID

	// Distance is Nephew.Height - Uncle.Height.
	Distance int
}

// Settlement is the outcome of settling rewards over a finished tree with
// respect to a chosen main-chain tip. Per-miner tallies are stored densely,
// indexed by MinerID, so settling never hashes; the PerMiner map is
// available as a compatibility view.
type Settlement struct {
	// Tip is the main-chain tip the settlement was computed against.
	Tip BlockID

	// MinerRewards is the dense per-miner tally, indexed by MinerID.
	// IDs at or beyond its length earned nothing. The genesis block
	// earns no reward.
	MinerRewards []Reward

	// MinerSeen marks the IDs that appeared in the settlement (mined a
	// regular block or were referenced as an uncle), mirroring which
	// miners the map view contains — an uncle referenced at a
	// zero-paying distance appears with a zero tally.
	MinerSeen []bool

	// RegularCount is the number of reward-earning main-chain blocks
	// (genesis excluded).
	RegularCount int

	// UncleCount is the number of stale blocks referenced by main-chain
	// blocks.
	UncleCount int

	// StaleCount is the number of off-chain blocks that were never
	// referenced.
	StaleCount int

	// Refs lists every realized uncle reference.
	Refs []UncleRef
}

// MinerRewardAt indexes a dense per-miner tally, returning zero for IDs
// outside it. Shared by every dense-tally holder (Settlement, sim.Result).
func MinerRewardAt(rewards []Reward, id MinerID) Reward {
	if id < 0 || int(id) >= len(rewards) {
		return Reward{}
	}
	return rewards[id]
}

// PerMinerView builds the map view of a dense per-miner tally: every miner
// marked in seen, keyed by ID.
func PerMinerView(rewards []Reward, seen []bool) map[MinerID]Reward {
	out := make(map[MinerID]Reward)
	for id, ok := range seen {
		if ok {
			out[MinerID(id)] = rewards[id]
		}
	}
	return out
}

// MinerReward returns the tally of one miner (zero if it earned nothing).
func (s Settlement) MinerReward(id MinerID) Reward {
	return MinerRewardAt(s.MinerRewards, id)
}

// PerMiner returns the map view of the per-miner tallies: every miner that
// appeared in the settlement, keyed by ID. It is built on demand; iteration-
// heavy callers should use the dense MinerRewards directly.
func (s Settlement) PerMiner() map[MinerID]Reward {
	return PerMinerView(s.MinerRewards, s.MinerSeen)
}

// see marks a miner as appearing in the settlement, growing the dense
// tallies as needed, and returns the ID as a valid index.
func (s *Settlement) see(id MinerID) int {
	for int(id) >= len(s.MinerRewards) {
		s.MinerRewards = append(s.MinerRewards, Reward{})
		s.MinerSeen = append(s.MinerSeen, false)
	}
	s.MinerSeen[id] = true
	return int(id)
}

// Classify returns each block's classification with respect to the
// settlement's main chain, indexed by BlockID.
func (t *Tree) Classify(tip BlockID) []Classification {
	out := make([]Classification, len(t.recs))
	for i := range out {
		out[i] = Stale
	}
	for _, id := range t.PathTo(tip) {
		out[id] = Regular
	}
	for _, id := range t.PathTo(tip) {
		for _, u := range t.UnclesOf(id) {
			if out[u] == Regular {
				// A main-chain block cannot be an uncle; Extend
				// prevents referencing ancestors, so this would
				// mean the reference crossed chains.
				continue
			}
			out[u] = Uncle
		}
	}
	return out
}

// Settle computes rewards for the main chain ending at tip under the given
// schedule. Uncle references at distances the schedule cannot reference
// (possible when the tree was built with a laxer depth limit than the
// schedule) earn nothing but still count as uncles for rate accounting if
// and only if the schedule allows the distance; they are reported in Refs
// either way. It returns an error only for an invalid tip.
//
// Settle requires the full history (the walk descends to genesis) and
// panics once it crosses Base() of a compacted tree; streaming runs use a
// StreamSettler instead, whose incremental tallies are bit-identical.
func (t *Tree) Settle(tip BlockID, schedule rewards.Schedule) (Settlement, error) {
	if !t.Contains(tip) {
		return Settlement{}, fmt.Errorf("tip %d: %w", tip, ErrUnknownBlock)
	}
	s := Settlement{
		Tip:  tip,
		Refs: make([]UncleRef, 0, t.TotalUncleRefs()),
	}
	// One descending walk from the tip settles everything: per-block
	// tallies commute, and the stale count follows by conservation. The
	// chain is the length of almost every run, so the loop body stays
	// lean: the dense tallies are grown through see only when a new miner
	// ID appears, and uncle-free blocks (the vast majority) skip the
	// reference branch on the arena bounds alone.
	gen := t.Genesis()
	for id := tip; id != gen; id = BlockID(t.recs[t.mustIndex(id)].parent) {
		r := t.recs[int32(id)-t.base]
		s.RegularCount++
		m := int(r.miner)
		if m >= len(s.MinerRewards) {
			s.see(MinerID(m))
		}
		s.MinerSeen[m] = true
		s.MinerRewards[m].Static++
		if r.uncleStart == r.uncleEnd {
			continue
		}
		// Iterate uncles in reverse: the whole-slice reversal below
		// then restores both the ascending block order and each
		// block's stored reference order.
		blockUncles := t.uncles(r)
		for i := len(blockUncles) - 1; i >= 0; i-- {
			u := blockUncles[i]
			ur := t.recs[int32(u)-t.base]
			d := int(r.height - ur.height)
			s.Refs = append(s.Refs, UncleRef{Uncle: u, Nephew: id, Distance: d})
			if !schedule.Referenceable(d) {
				// Too deep for this schedule: the block stays a
				// stale block for accounting purposes.
				continue
			}
			s.UncleCount++
			s.MinerRewards[m].Nephew += schedule.Nephew(d)
			uncleMiner := s.see(MinerID(ur.miner))
			s.MinerRewards[uncleMiner].Uncle += schedule.Uncle(d)
		}
	}
	// The walk visited blocks tip-first with reversed per-block uncles;
	// one reversal yields genesis-to-tip order with stored uncle order —
	// exactly what the old one-pass-per-path formulation produced.
	for i, j := 0, len(s.Refs)-1; i < j; i, j = i+1, j-1 {
		s.Refs[i], s.Refs[j] = s.Refs[j], s.Refs[i]
	}
	// Every non-genesis block is exactly one of regular, uncle, or stale,
	// and a settled uncle is counted exactly once — validateUncle forbids
	// referencing a block twice on one chain — so the stale count follows
	// from the other two without marking and rescanning the whole tree.
	s.StaleCount = t.Len() - 1 - s.RegularCount - s.UncleCount
	return s, nil
}

// TotalReward returns the sum of all miners' rewards in the settlement.
func (s Settlement) TotalReward() Reward {
	var total Reward
	for _, r := range s.MinerRewards {
		total = total.Add(r)
	}
	return total
}
