package chain

import (
	"fmt"
	"slices"
)

// Config controls protocol limits enforced by a Tree.
type Config struct {
	// MaxUncleDepth is the largest allowed distance (in heights) between
	// a nephew and the uncles it references. Ethereum uses 6. Zero or
	// negative means unlimited, matching the paper's abstract model.
	MaxUncleDepth int

	// MaxUnclesPerBlock bounds the uncle references in one block.
	// Ethereum uses 2. Zero or negative means unlimited (the paper's
	// honest miners reference "as many as possible").
	MaxUnclesPerBlock int

	// BlocksHint pre-sizes the tree's internal storage for roughly this
	// many blocks (genesis excluded), so long simulations never pay for
	// incremental growth reallocations. Zero or negative means no
	// pre-allocation. The hint is advisory: the tree grows past it
	// normally.
	BlocksHint int
}

// rec is the tree's internal per-block record. It is deliberately compact
// and pointer-free: 20 bytes per block instead of a 64-byte Block with a
// slice header, so appends copy less, chain walks stay cache-dense, and the
// garbage collector never scans block storage. ID and Seq are implicit (a
// record's ID is its index plus the eviction base); uncle references live in
// the shared arena, addressed by [uncleStart, uncleEnd). The public Block
// view is synthesized on demand.
type rec struct {
	parent     int32
	height     int32
	miner      int32
	uncleStart int32
	uncleEnd   int32
}

// links holds the per-block structural indexes: the intrusive child list
// and the reverse uncle index, in the same compact int32 form as rec.
type links struct {
	// firstChild and lastChild bound the block's child list; nextSibling
	// threads it in creation order. This intrusive layout removes the
	// per-block slice allocation a [][]BlockID layout pays the first time
	// any block gains a child — the simulator's dominant steady-state
	// allocation.
	firstChild  int32
	lastChild   int32
	nextSibling int32

	// referencedBy is the block referencing this one as an uncle, or
	// NoBlock. The protocol guarantees at most one referencing block per
	// chain; across competing chains a block could in principle be
	// referenced twice, which the simulator never does because losers of
	// a fork stop being extended. Extend enforces per-chain uniqueness
	// exactly; this index additionally gives O(1) "is referenced"
	// queries for the single evolving chain.
	referencedBy int32
}

// noBlock32 is NoBlock in the internal int32 representation.
const noBlock32 = int32(NoBlock)

// noLinks is the link record of a freshly added block.
var noLinks = links{
	firstChild:   noBlock32,
	lastChild:    noBlock32,
	nextSibling:  noBlock32,
	referencedBy: noBlock32,
}

// Tree is an append-only block tree rooted at a genesis block. It is not
// safe for concurrent use.
//
// Long-horizon runs stream-settle and evict decided history through
// CompactBelow: record storage is then a window over IDs [Base(), Len()),
// kept in the same flat arrays by a batched copy-down, while BlockIDs stay
// stable (every ID ever issued keeps naming the same block). All structural
// indexes of resident blocks point forward (children, siblings, and
// referencers always have larger IDs than the block itself), so eviction
// can only leave two kinds of dangling backward edges: a resident block's
// parent ID and a resident nephew's uncle IDs may name evicted blocks.
// Callers that compact guarantee no accessor dereferences below Base();
// dangling IDs are only ever compared.
type Tree struct {
	cfg   Config
	recs  []rec
	links []links

	// base is the ID of recs[0]: zero until CompactBelow evicts a decided
	// prefix, after which record index = ID - base. It only ever grows.
	base int32

	// arenaOff is the pre-eviction arena length: uncle ranges in recs are
	// stored as absolute positions, so arena index = position - arenaOff.
	arenaOff int32

	// times holds each block's timestamp, parallel to recs — but only
	// once a nonzero stamp has been recorded. A timeless run stamps every
	// block zero, so the slice stays empty and TimeOf answers zero without
	// storing anything: appending 8 unread bytes per block is a measurable
	// share of the block-event hot path. The first nonzero stamp
	// materializes the zero prefix, after which the slice tracks recs
	// one-to-one. The continuous-time engine stamps each block with the
	// simulation clock at its creation event, so timestamps are monotone
	// non-decreasing along every branch. Kept as a separate SoA slice so
	// the 20-byte rec stays cache-dense for chain walks that never touch
	// time.
	times []float64

	// uncleArena backs every block's Uncles slice. Extend appends the
	// validated references here and hands out capacity-clamped
	// subslices, so uncle storage amortizes to zero allocations instead
	// of one copy per referencing block.
	uncleArena []BlockID
}

// NewTree returns a tree containing only the genesis block, which is
// attributed to the given miner (conventionally the neutral reserved ID 0;
// it must be non-negative like every MinerID).
func NewTree(cfg Config, genesisMiner MinerID) *Tree {
	t := &Tree{}
	t.Reset(cfg, genesisMiner)
	return t
}

// Reset re-initializes the tree in place to the state NewTree would return,
// retaining the storage of previous runs. Batch runners reset one tree per
// worker instead of re-allocating (and zeroing) ~100k-block storage for
// every run.
func (t *Tree) Reset(cfg Config, genesisMiner MinerID) {
	t.cfg = cfg
	if hint := cfg.BlocksHint; hint > 0 && cap(t.recs) < hint+1 {
		n := hint + 1 // plus genesis
		t.recs = make([]rec, 0, n)
		t.links = make([]links, 0, n)
		t.times = make([]float64, 0, n)
	} else {
		t.recs = t.recs[:0]
		t.links = t.links[:0]
		t.times = t.times[:0]
	}
	t.uncleArena = t.uncleArena[:0]
	t.base = 0
	t.arenaOff = 0
	t.recs = append(t.recs, rec{parent: noBlock32, miner: int32(genesisMiner)})
	t.links = append(t.links, noLinks)
}

// Genesis returns the genesis block's ID (always 0, whether or not the
// genesis record itself has been evicted).
func (t *Tree) Genesis() BlockID { return 0 }

// Len returns the number of blocks ever added, including genesis and any
// records CompactBelow has evicted: IDs are issued contiguously, so Len is
// also the next ID.
func (t *Tree) Len() int { return int(t.base) + len(t.recs) }

// Base returns the lowest resident block ID. It is zero (genesis) until
// CompactBelow evicts a prefix; accessors must not be asked about blocks
// below it.
func (t *Tree) Base() BlockID { return BlockID(t.base) }

// Evicted returns the number of records CompactBelow has evicted so far.
func (t *Tree) Evicted() int { return int(t.base) }

// CompactBelow evicts the longest prefix of records whose height is below
// minHeight, compacting the backing arrays in place (one copy-down of the
// resident suffix, so freed capacity is reused by future appends), and
// returns the number of records evicted. The scan stops at the first record
// at or above minHeight, which makes the contract monotone in height: after
// the call, every block below Base() has height < minHeight, and every block
// at height >= minHeight is resident.
//
// The caller owns the safety argument: minHeight must be low enough that no
// future accessor dereferences an evicted block. The streaming simulator
// passes settledHeight - uncleWindow, under which evicted blocks are
// topologically decided, already settled, and too deep ever to be referenced
// (or have their record read) again.
func (t *Tree) CompactBelow(minHeight int) int {
	n := 0
	for n < len(t.recs) && int(t.recs[n].height) < minHeight {
		n++
	}
	if n == 0 {
		return 0
	}
	// The evicted records own exactly the arena prefix before the first
	// survivor's range (uncleStart is monotone across records in creation
	// order).
	cutArena := t.arenaOff + int32(len(t.uncleArena))
	if n < len(t.recs) {
		cutArena = t.recs[n].uncleStart
	}
	k := copy(t.recs, t.recs[n:])
	t.recs = t.recs[:k]
	kl := copy(t.links, t.links[n:])
	t.links = t.links[:kl]
	if len(t.times) > 0 {
		kt := copy(t.times, t.times[n:])
		t.times = t.times[:kt]
	}
	a := int(cutArena - t.arenaOff)
	m := copy(t.uncleArena, t.uncleArena[a:])
	t.uncleArena = t.uncleArena[:m]
	t.arenaOff = cutArena
	t.base += int32(n)
	return n
}

// uncles returns the arena-backed uncle list of a record (nil when empty).
func (t *Tree) uncles(r rec) []BlockID {
	if r.uncleStart == r.uncleEnd {
		return nil
	}
	s, e := r.uncleStart-t.arenaOff, r.uncleEnd-t.arenaOff
	return t.uncleArena[s:e:e]
}

// Block returns the block with the given ID, synthesized from the compact
// internal record. It panics on an invalid (or evicted) ID, which indicates
// a programming error (IDs are only produced by this tree). Hot paths should
// prefer the single-field accessors (ParentOf, HeightOf, MinerOf,
// UnclesOf), which avoid materializing the record.
func (t *Tree) Block(id BlockID) Block {
	r := t.recs[t.mustIndex(id)]
	return Block{
		ID:     id,
		Parent: BlockID(r.parent),
		Height: int(r.height),
		Miner:  MinerID(r.miner),
		Seq:    int(id),
		Time:   t.TimeOf(id),
		Uncles: t.uncles(r),
	}
}

// ParentOf returns the block's parent (NoBlock for genesis).
func (t *Tree) ParentOf(id BlockID) BlockID { return BlockID(t.recs[int32(id)-t.base].parent) }

// HeightOf returns the block's height without materializing the record.
func (t *Tree) HeightOf(id BlockID) int { return int(t.recs[int32(id)-t.base].height) }

// MinerOf returns the block's producer.
func (t *Tree) MinerOf(id BlockID) MinerID { return MinerID(t.recs[int32(id)-t.base].miner) }

// UnclesOf returns the block's uncle references. The slice is owned by the
// tree and must not be modified.
func (t *Tree) UnclesOf(id BlockID) []BlockID { return t.uncles(t.recs[int32(id)-t.base]) }

// TimeOf returns the block's timestamp (zero for every block of a timeless
// run, and for genesis). Blocks beyond the stored stamps — all of them, in
// a run that never recorded a nonzero stamp — are zero by representation.
func (t *Tree) TimeOf(id BlockID) float64 {
	if ts := t.times; int(int32(id)-t.base) < len(ts) {
		return ts[int32(id)-t.base]
	}
	return 0
}

// BlockInfo returns the parent, height, and uncle references of a block in
// one record load — the chain-walking accessor for hot paths.
func (t *Tree) BlockInfo(id BlockID) (parent BlockID, height int, uncles []BlockID) {
	r := t.recs[int32(id)-t.base]
	return BlockID(r.parent), int(r.height), t.uncles(r)
}

// ParentAndHeight returns the parent and height in one record load, without
// touching the uncle arena — for chain walks that do not need references.
func (t *Tree) ParentAndHeight(id BlockID) (parent BlockID, height int) {
	r := t.recs[int32(id)-t.base]
	return BlockID(r.parent), int(r.height)
}

// FirstChildOf returns the block's first child in creation order, or
// NoBlock.
func (t *Tree) FirstChildOf(id BlockID) BlockID {
	return BlockID(t.links[int32(id)-t.base].firstChild)
}

// NextSiblingOf returns the next child of id's parent in creation order, or
// NoBlock.
func (t *Tree) NextSiblingOf(id BlockID) BlockID {
	return BlockID(t.links[int32(id)-t.base].nextSibling)
}

// IsForkChild reports whether the block's parent has more than one child,
// i.e. whether the block sits at a fork. Only such blocks can ever become
// uncles: an eligible uncle is off the referencing chain while its parent is
// on it, so the parent necessarily has a second, on-chain child.
func (t *Tree) IsForkChild(id BlockID) bool {
	parent := t.recs[int32(id)-t.base].parent
	if parent == noBlock32 {
		return false
	}
	lp := &t.links[parent-t.base]
	return lp.firstChild != lp.lastChild
}

// Children returns the direct children of a block in creation order. The
// returned slice is freshly allocated; hot paths should use VisitChildren.
func (t *Tree) Children(id BlockID) []BlockID {
	var out []BlockID
	t.VisitChildren(id, func(kid BlockID) bool {
		out = append(out, kid)
		return true
	})
	return out
}

// VisitChildren calls fn for each direct child of id in creation order,
// stopping early if fn returns false. It is the no-copy counterpart of
// Children for allocation-sensitive traversals.
func (t *Tree) VisitChildren(id BlockID, fn func(BlockID) bool) {
	for kid := t.links[t.mustIndex(id)].firstChild; kid != noBlock32; kid = t.links[kid-t.base].nextSibling {
		if !fn(BlockID(kid)) {
			return
		}
	}
}

// HasChildren reports whether the block has at least one child.
func (t *Tree) HasChildren(id BlockID) bool {
	return t.links[t.mustIndex(id)].firstChild != noBlock32
}

// Height returns the block's height.
func (t *Tree) Height(id BlockID) int { return int(t.recs[t.mustIndex(id)].height) }

// Contains reports whether id names a resident block of this tree (evicted
// IDs once named blocks, but their records are gone).
func (t *Tree) Contains(id BlockID) bool {
	return int32(id) >= t.base && int(id) < t.Len()
}

// ReferencedBy returns the block referencing id as an uncle, or NoBlock.
func (t *Tree) ReferencedBy(id BlockID) BlockID {
	return BlockID(t.links[t.mustIndex(id)].referencedBy)
}

// TotalUncleRefs returns the number of uncle references recorded across all
// blocks ever added (on every branch, including evicted ones). Settlement
// uses it to presize its realized-reference list.
func (t *Tree) TotalUncleRefs() int { return int(t.arenaOff) + len(t.uncleArena) }

// Extend appends a new block on the given parent, referencing the given
// uncles, and returns its ID. The uncle list is validated against the
// protocol rules; the slice is copied, so the caller may reuse it. The
// miner ID must be non-negative (IDs index dense settlement tallies). The
// block's timestamp is zero; timed simulations use ExtendAt.
func (t *Tree) Extend(parent BlockID, miner MinerID, uncles []BlockID) (BlockID, error) {
	return t.ExtendAt(parent, miner, uncles, 0)
}

// ExtendAt is Extend with an explicit timestamp: the continuous-time
// simulator stamps each block with its creation event's clock. The tree
// records the value without interpreting it (monotonicity along branches is
// the caller's invariant; the simulator's globally increasing clock supplies
// it for free).
func (t *Tree) ExtendAt(parent BlockID, miner MinerID, uncles []BlockID, at float64) (BlockID, error) {
	if !t.Contains(parent) {
		return NoBlock, fmt.Errorf("parent %d: %w", parent, ErrUnknownBlock)
	}
	if miner < 0 {
		return NoBlock, fmt.Errorf("miner %d: %w", miner, ErrBadMinerID)
	}
	if t.cfg.MaxUnclesPerBlock > 0 && len(uncles) > t.cfg.MaxUnclesPerBlock {
		return NoBlock, fmt.Errorf("%d uncles (limit %d): %w",
			len(uncles), t.cfg.MaxUnclesPerBlock, ErrTooManyUncles)
	}
	newHeight := t.recs[int32(parent)-t.base].height + 1
	for i, u := range uncles {
		for _, prev := range uncles[:i] {
			if prev == u {
				return NoBlock, fmt.Errorf("uncle %d: %w", u, ErrDuplicateUncle)
			}
		}
		if err := t.validateUncle(parent, int(newHeight), u); err != nil {
			return NoBlock, err
		}
	}

	start := t.arenaOff + int32(len(t.uncleArena))
	if len(uncles) > 0 {
		t.uncleArena = append(t.uncleArena, uncles...)
	}
	id := BlockID(t.Len())
	t.recs = append(t.recs, rec{
		parent:     int32(parent),
		height:     newHeight,
		miner:      int32(miner),
		uncleStart: start,
		uncleEnd:   t.arenaOff + int32(len(t.uncleArena)),
	})
	t.links = append(t.links, noLinks)
	if at != 0 || len(t.times) != 0 {
		t.stamp(at)
	}
	id32 := int32(id)
	lp := &t.links[int32(parent)-t.base]
	if lp.firstChild == noBlock32 {
		lp.firstChild = id32
	} else {
		t.links[lp.lastChild-t.base].nextSibling = id32
	}
	lp.lastChild = id32
	for _, u := range uncles {
		t.links[int32(u)-t.base].referencedBy = id32
	}
	return id, nil
}

// stamp records the newest block's timestamp, materializing the zero
// prefix for any blocks created before timestamps became nonzero. Out of
// the ExtendAt hot path so the timeless common case stays a single branch.
func (t *Tree) stamp(at float64) {
	for len(t.times) < len(t.recs)-1 {
		t.times = append(t.times, 0)
	}
	t.times = append(t.times, at)
}

// AppendLeaf appends a block on a childless parent, referencing no uncles —
// the race-origin fast path's append, where the public tip is known to be
// childless and the honest block deterministically extends it. It performs
// exactly the mutations ExtendAt(parent, miner, nil, at) would, skipping the
// uncle validation and fork bookkeeping a childless parent makes vacuous.
// ok=false (and no mutation) when the parent is unknown, the miner invalid,
// or the parent already has a child; the caller falls back to ExtendAt,
// which reports the precise error.
func (t *Tree) AppendLeaf(parent BlockID, miner MinerID, at float64) (id BlockID, ok bool) {
	if !t.Contains(parent) || miner < 0 || t.links[int32(parent)-t.base].firstChild != noBlock32 {
		return NoBlock, false
	}
	ue := t.arenaOff + int32(len(t.uncleArena))
	id = BlockID(t.Len())
	t.recs = append(t.recs, rec{
		parent:     int32(parent),
		height:     t.recs[int32(parent)-t.base].height + 1,
		miner:      int32(miner),
		uncleStart: ue,
		uncleEnd:   ue,
	})
	t.links = append(t.links, noLinks)
	if at != 0 || len(t.times) != 0 {
		t.stamp(at)
	}
	// Re-index after the appends: they may have moved the backing array.
	lp := &t.links[int32(parent)-t.base]
	lp.firstChild, lp.lastChild = int32(id), int32(id)
	return id, true
}

// ExtendRun appends a linear run of count blocks on parent — every block
// mined by the same miner, referencing no uncles, each the sole child of its
// predecessor — and returns the ID of the run's tip. Block j (1-based) is
// stamped start + j*step; timeless callers pass zeros. IDs are assigned
// contiguously from the pre-call Len(), so the caller can enumerate the run
// as tip-count+1 .. tip.
//
// This is the fast-forward bulk-append: one bounds check up front, then a
// tight loop of record appends with none of the per-block uncle validation
// Extend pays, because a run by construction can neither reference nor
// create an eligible uncle (no forks are introduced anywhere along it).
func (t *Tree) ExtendRun(parent BlockID, miner MinerID, count int, start, step float64) (BlockID, error) {
	if !t.Contains(parent) {
		return NoBlock, fmt.Errorf("parent %d: %w", parent, ErrUnknownBlock)
	}
	if miner < 0 {
		return NoBlock, fmt.Errorf("miner %d: %w", miner, ErrBadMinerID)
	}
	if count <= 0 {
		return NoBlock, fmt.Errorf("chain: ExtendRun count %d must be positive", count)
	}
	p32 := int32(parent)
	h := t.recs[p32-t.base].height
	m32 := int32(miner)
	ue := t.arenaOff + int32(len(t.uncleArena))
	at := start
	// Grow all three arenas once up front, then fill by index: the loop
	// body runs without append's per-element capacity checks, which is
	// where a naive per-block loop spends most of its time.
	n := len(t.recs)
	t.recs = slices.Grow(t.recs, count)[:n+count]
	t.links = slices.Grow(t.links, count)[:n+count]
	// Timestamps are stored only once one is nonzero (see the times field):
	// a timeless run's bulk append skips the third arena entirely.
	storeTimes := len(t.times) != 0 || start != 0 || step != 0
	if storeTimes {
		for len(t.times) < n {
			t.times = append(t.times, 0)
		}
		t.times = slices.Grow(t.times, count)[:n+count]
	}
	// Attach the run's head to the pre-existing parent through the normal
	// sibling chain; every interior block then has exactly one child — the
	// next block of the run — so its link record is written once, fully
	// formed, instead of initialized empty and patched back by the next
	// iteration.
	head := t.base + int32(n)
	lp := &t.links[p32-t.base]
	if lp.firstChild == noBlock32 {
		lp.firstChild = head
	} else {
		t.links[lp.lastChild-t.base].nextSibling = head
	}
	lp.lastChild = head
	for j := 0; j < count; j++ {
		h++
		at += step
		idx := n + j
		id32 := t.base + int32(idx)
		t.recs[idx] = rec{
			parent:     p32,
			height:     h,
			miner:      m32,
			uncleStart: ue,
			uncleEnd:   ue,
		}
		if storeTimes {
			t.times[idx] = at
		}
		if j < count-1 {
			next := id32 + 1
			t.links[idx] = links{
				firstChild:   next,
				lastChild:    next,
				nextSibling:  noBlock32,
				referencedBy: noBlock32,
			}
		} else {
			t.links[idx] = noLinks
		}
		p32 = id32
	}
	return BlockID(p32), nil
}

// validateUncle checks the Ethereum uncle rules for referencing uncle u from
// a new block whose parent is parent and whose height is newHeight:
// the uncle must exist, must not be an ancestor of the new block, its parent
// must be an ancestor of the new block (i.e. it is a "direct child of the
// main chain" from the new block's point of view), it must be within the
// depth limit, and it must not already be referenced on this chain.
func (t *Tree) validateUncle(parent BlockID, newHeight int, u BlockID) error {
	if !t.Contains(u) {
		return fmt.Errorf("uncle %d: %w", u, ErrUnknownBlock)
	}
	uncleHeight := int(t.recs[int32(u)-t.base].height)
	distance := newHeight - uncleHeight
	if distance < 1 {
		// The uncle is at or above the new block's height; it cannot
		// attach below the new block.
		return fmt.Errorf("uncle %d at height %d vs new height %d: %w",
			u, uncleHeight, newHeight, ErrUncleNotAttached)
	}
	if t.cfg.MaxUncleDepth > 0 && distance > t.cfg.MaxUncleDepth {
		return fmt.Errorf("uncle %d at distance %d (limit %d): %w",
			u, distance, t.cfg.MaxUncleDepth, ErrUncleTooDeep)
	}

	// Walk up from parent to the uncle's height, checking attachment,
	// ancestry, and prior references along the way.
	cursor := int32(parent)
	for t.recs[cursor-t.base].height > int32(uncleHeight) {
		for _, ref := range t.uncles(t.recs[cursor-t.base]) {
			if ref == u {
				return fmt.Errorf("uncle %d referenced by ancestor %d: %w",
					u, cursor, ErrUncleAlreadyReferenced)
			}
		}
		cursor = t.recs[cursor-t.base].parent
	}
	if BlockID(cursor) == u {
		return fmt.Errorf("uncle %d: %w", u, ErrUncleIsAncestor)
	}
	// cursor is the new block's ancestor at the uncle's height. The uncle
	// attaches iff its parent is an ancestor of the new block; since
	// uncle.Parent sits one height below, the only ancestor it can equal
	// is cursor's parent, so the attachment check is exactly that
	// equality.
	if t.recs[int32(u)-t.base].parent != t.recs[cursor-t.base].parent {
		return fmt.Errorf("uncle %d: %w", u, ErrUncleNotAttached)
	}
	return nil
}

// IsAncestor reports whether a is a strict ancestor of b.
func (t *Tree) IsAncestor(a, b BlockID) bool {
	ai, bi := t.mustIndex(a), t.mustIndex(b)
	if t.recs[ai].height >= t.recs[bi].height {
		return false
	}
	cursor := int32(b)
	for t.recs[cursor-t.base].height > t.recs[ai].height {
		cursor = t.recs[cursor-t.base].parent
	}
	return BlockID(cursor) == a
}

// AncestorAt returns b's ancestor at the given height (or b itself when
// height equals b's height). It panics if height is negative or exceeds b's
// height.
func (t *Tree) AncestorAt(b BlockID, height int) BlockID {
	bi := t.mustIndex(b)
	if height < 0 || height > int(t.recs[bi].height) {
		panic(fmt.Sprintf("chain: AncestorAt height %d out of range for block at height %d",
			height, t.recs[bi].height))
	}
	cursor := int32(b)
	for int(t.recs[cursor-t.base].height) > height {
		cursor = t.recs[cursor-t.base].parent
	}
	return BlockID(cursor)
}

// CommonAncestor returns the deepest common ancestor of a and b.
func (t *Tree) CommonAncestor(a, b BlockID) BlockID {
	t.mustIndex(a)
	t.mustIndex(b)
	ha, hb := t.HeightOf(a), t.HeightOf(b)
	if ha > hb {
		a = t.AncestorAt(a, hb)
	} else if hb > ha {
		b = t.AncestorAt(b, ha)
	}
	for a != b {
		a = t.ParentOf(a)
		b = t.ParentOf(b)
	}
	return a
}

// PathTo returns the chain from genesis to tip, inclusive. It requires the
// full history: a compacted tree panics once the walk crosses Base().
func (t *Tree) PathTo(tip BlockID) []BlockID {
	ti := t.mustIndex(tip)
	path := make([]BlockID, t.recs[ti].height+1)
	cursor := tip
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cursor
		cursor = BlockID(t.recs[t.mustIndex(cursor)].parent)
	}
	return path
}

// Tips returns all resident leaves (blocks without children) in creation
// order. Evicted blocks are never leaves: eviction requires every record
// below the cut to be decided, and a decided block on the settled chain has
// a child by construction while an off-chain one can no longer be extended —
// but even a childless evicted record is simply no longer reported.
func (t *Tree) Tips() []BlockID {
	var tips []BlockID
	for i := range t.recs {
		if t.links[i].firstChild == noBlock32 {
			tips = append(tips, BlockID(t.base+int32(i)))
		}
	}
	return tips
}

func (t *Tree) mustIndex(id BlockID) int {
	if !t.Contains(id) {
		panic(fmt.Sprintf("chain: invalid block ID %d (tree holds %d..%d)", id, t.base, t.Len()-1))
	}
	return int(int32(id) - t.base)
}
