package chain

import "fmt"

// Config controls protocol limits enforced by a Tree.
type Config struct {
	// MaxUncleDepth is the largest allowed distance (in heights) between
	// a nephew and the uncles it references. Ethereum uses 6. Zero or
	// negative means unlimited, matching the paper's abstract model.
	MaxUncleDepth int

	// MaxUnclesPerBlock bounds the uncle references in one block.
	// Ethereum uses 2. Zero or negative means unlimited (the paper's
	// honest miners reference "as many as possible").
	MaxUnclesPerBlock int

	// BlocksHint pre-sizes the tree's internal storage for roughly this
	// many blocks (genesis excluded), so long simulations never pay for
	// incremental growth reallocations. Zero or negative means no
	// pre-allocation. The hint is advisory: the tree grows past it
	// normally.
	BlocksHint int
}

// Tree is an append-only block tree rooted at a genesis block. It is not
// safe for concurrent use.
type Tree struct {
	cfg    Config
	blocks []Block

	// Children are stored as intrusive sibling lists instead of one
	// slice per block: firstChild/lastChild give each block's child list
	// ends and nextSibling threads the list in creation order. This
	// removes the per-block slice allocation a [][]BlockID layout pays
	// the first time any block gains a child — the simulator's dominant
	// steady-state allocation.
	firstChild  []BlockID
	lastChild   []BlockID
	nextSibling []BlockID

	// uncleArena backs every block's Uncles slice. Extend appends the
	// validated references here and hands out a capacity-clamped
	// subslice, so uncle storage amortizes to zero allocations instead
	// of one copy per referencing block. Arena growth may relocate the
	// backing array; previously handed-out slices keep pointing at the
	// old one, which is safe because uncle lists are immutable.
	uncleArena []BlockID

	// referencedBy[b] is the block that references b as an uncle, or
	// NoBlock. The protocol guarantees at most one referencing block per
	// chain; across competing chains a block could in principle be
	// referenced twice, which the simulator never does because losers of
	// a fork stop being extended. Extend enforces per-chain uniqueness
	// exactly; this index additionally gives O(1) "is referenced"
	// queries for the single evolving chain.
	referencedBy []BlockID
}

// NewTree returns a tree containing only the genesis block, which is
// attributed to the given miner (conventionally a neutral ID).
func NewTree(cfg Config, genesisMiner MinerID) *Tree {
	t := &Tree{cfg: cfg}
	if hint := cfg.BlocksHint; hint > 0 {
		n := hint + 1 // plus genesis
		t.blocks = make([]Block, 0, n)
		t.firstChild = make([]BlockID, 0, n)
		t.lastChild = make([]BlockID, 0, n)
		t.nextSibling = make([]BlockID, 0, n)
		t.referencedBy = make([]BlockID, 0, n)
	}
	t.blocks = append(t.blocks, Block{
		ID:     0,
		Parent: NoBlock,
		Height: 0,
		Miner:  genesisMiner,
		Seq:    0,
	})
	t.firstChild = append(t.firstChild, NoBlock)
	t.lastChild = append(t.lastChild, NoBlock)
	t.nextSibling = append(t.nextSibling, NoBlock)
	t.referencedBy = append(t.referencedBy, NoBlock)
	return t
}

// Genesis returns the genesis block's ID (always 0).
func (t *Tree) Genesis() BlockID { return 0 }

// Len returns the number of blocks including genesis.
func (t *Tree) Len() int { return len(t.blocks) }

// Block returns the block with the given ID. It panics on an invalid ID,
// which indicates a programming error (IDs are only produced by this tree).
func (t *Tree) Block(id BlockID) Block {
	return t.blocks[t.mustIndex(id)]
}

// Children returns the direct children of a block in creation order. The
// returned slice is freshly allocated; hot paths should use VisitChildren.
func (t *Tree) Children(id BlockID) []BlockID {
	var out []BlockID
	t.VisitChildren(id, func(kid BlockID) bool {
		out = append(out, kid)
		return true
	})
	return out
}

// VisitChildren calls fn for each direct child of id in creation order,
// stopping early if fn returns false. It is the no-copy counterpart of
// Children for allocation-sensitive traversals.
func (t *Tree) VisitChildren(id BlockID, fn func(BlockID) bool) {
	for kid := t.firstChild[t.mustIndex(id)]; kid != NoBlock; kid = t.nextSibling[kid] {
		if !fn(kid) {
			return
		}
	}
}

// HasChildren reports whether the block has at least one child.
func (t *Tree) HasChildren(id BlockID) bool {
	return t.firstChild[t.mustIndex(id)] != NoBlock
}

// Height returns the block's height.
func (t *Tree) Height(id BlockID) int { return t.Block(id).Height }

// Contains reports whether id names a block of this tree.
func (t *Tree) Contains(id BlockID) bool {
	return id >= 0 && int(id) < len(t.blocks)
}

// ReferencedBy returns the block referencing id as an uncle, or NoBlock.
func (t *Tree) ReferencedBy(id BlockID) BlockID {
	return t.referencedBy[t.mustIndex(id)]
}

// Extend appends a new block on the given parent, referencing the given
// uncles, and returns its ID. The uncle list is validated against the
// protocol rules; the slice is copied, so the caller may reuse it.
func (t *Tree) Extend(parent BlockID, miner MinerID, uncles []BlockID) (BlockID, error) {
	if !t.Contains(parent) {
		return NoBlock, fmt.Errorf("parent %d: %w", parent, ErrUnknownBlock)
	}
	if t.cfg.MaxUnclesPerBlock > 0 && len(uncles) > t.cfg.MaxUnclesPerBlock {
		return NoBlock, fmt.Errorf("%d uncles (limit %d): %w",
			len(uncles), t.cfg.MaxUnclesPerBlock, ErrTooManyUncles)
	}
	newHeight := t.blocks[parent].Height + 1
	for i, u := range uncles {
		for _, prev := range uncles[:i] {
			if prev == u {
				return NoBlock, fmt.Errorf("uncle %d: %w", u, ErrDuplicateUncle)
			}
		}
		if err := t.validateUncle(parent, newHeight, u); err != nil {
			return NoBlock, err
		}
	}

	var uncleCopy []BlockID
	if len(uncles) > 0 {
		start := len(t.uncleArena)
		t.uncleArena = append(t.uncleArena, uncles...)
		uncleCopy = t.uncleArena[start:len(t.uncleArena):len(t.uncleArena)]
	}
	id := BlockID(len(t.blocks))
	t.blocks = append(t.blocks, Block{
		ID:     id,
		Parent: parent,
		Height: newHeight,
		Miner:  miner,
		Seq:    int(id),
		Uncles: uncleCopy,
	})
	t.firstChild = append(t.firstChild, NoBlock)
	t.lastChild = append(t.lastChild, NoBlock)
	t.nextSibling = append(t.nextSibling, NoBlock)
	t.referencedBy = append(t.referencedBy, NoBlock)
	if t.firstChild[parent] == NoBlock {
		t.firstChild[parent] = id
	} else {
		t.nextSibling[t.lastChild[parent]] = id
	}
	t.lastChild[parent] = id
	for _, u := range uncles {
		t.referencedBy[u] = id
	}
	return id, nil
}

// validateUncle checks the Ethereum uncle rules for referencing uncle u from
// a new block whose parent is parent and whose height is newHeight:
// the uncle must exist, must not be an ancestor of the new block, its parent
// must be an ancestor of the new block (i.e. it is a "direct child of the
// main chain" from the new block's point of view), it must be within the
// depth limit, and it must not already be referenced on this chain.
func (t *Tree) validateUncle(parent BlockID, newHeight int, u BlockID) error {
	if !t.Contains(u) {
		return fmt.Errorf("uncle %d: %w", u, ErrUnknownBlock)
	}
	uncle := t.blocks[u]
	distance := newHeight - uncle.Height
	if distance < 1 {
		// The uncle is at or above the new block's height; it cannot
		// attach below the new block.
		return fmt.Errorf("uncle %d at height %d vs new height %d: %w",
			u, uncle.Height, newHeight, ErrUncleNotAttached)
	}
	if t.cfg.MaxUncleDepth > 0 && distance > t.cfg.MaxUncleDepth {
		return fmt.Errorf("uncle %d at distance %d (limit %d): %w",
			u, distance, t.cfg.MaxUncleDepth, ErrUncleTooDeep)
	}

	// Walk up from parent to the uncle's height, checking attachment,
	// ancestry, and prior references along the way.
	cursor := parent
	for t.blocks[cursor].Height > uncle.Height {
		for _, ref := range t.blocks[cursor].Uncles {
			if ref == u {
				return fmt.Errorf("uncle %d referenced by ancestor %d: %w",
					u, cursor, ErrUncleAlreadyReferenced)
			}
		}
		cursor = t.blocks[cursor].Parent
	}
	if cursor == u {
		return fmt.Errorf("uncle %d: %w", u, ErrUncleIsAncestor)
	}
	// cursor is the new block's ancestor at the uncle's height. The uncle
	// attaches iff its parent is an ancestor of the new block; since
	// uncle.Parent sits one height below, the only ancestor it can equal
	// is cursor's parent, so the attachment check is exactly that
	// equality.
	if uncle.Parent != t.blocks[cursor].Parent {
		return fmt.Errorf("uncle %d: %w", u, ErrUncleNotAttached)
	}
	return nil
}

// IsAncestor reports whether a is a strict ancestor of b.
func (t *Tree) IsAncestor(a, b BlockID) bool {
	ai, bi := t.mustIndex(a), t.mustIndex(b)
	if t.blocks[ai].Height >= t.blocks[bi].Height {
		return false
	}
	cursor := b
	for t.blocks[cursor].Height > t.blocks[ai].Height {
		cursor = t.blocks[cursor].Parent
	}
	return cursor == a
}

// AncestorAt returns b's ancestor at the given height (or b itself when
// height equals b's height). It panics if height is negative or exceeds b's
// height.
func (t *Tree) AncestorAt(b BlockID, height int) BlockID {
	bi := t.mustIndex(b)
	if height < 0 || height > t.blocks[bi].Height {
		panic(fmt.Sprintf("chain: AncestorAt height %d out of range for block at height %d",
			height, t.blocks[bi].Height))
	}
	cursor := b
	for t.blocks[cursor].Height > height {
		cursor = t.blocks[cursor].Parent
	}
	return cursor
}

// CommonAncestor returns the deepest common ancestor of a and b.
func (t *Tree) CommonAncestor(a, b BlockID) BlockID {
	t.mustIndex(a)
	t.mustIndex(b)
	if t.blocks[a].Height > t.blocks[b].Height {
		a = t.AncestorAt(a, t.blocks[b].Height)
	} else if t.blocks[b].Height > t.blocks[a].Height {
		b = t.AncestorAt(b, t.blocks[a].Height)
	}
	for a != b {
		a = t.blocks[a].Parent
		b = t.blocks[b].Parent
	}
	return a
}

// PathTo returns the chain from genesis to tip, inclusive.
func (t *Tree) PathTo(tip BlockID) []BlockID {
	ti := t.mustIndex(tip)
	path := make([]BlockID, t.blocks[ti].Height+1)
	cursor := tip
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cursor
		cursor = t.blocks[cursor].Parent
	}
	return path
}

// Tips returns all leaves (blocks without children) in creation order.
func (t *Tree) Tips() []BlockID {
	var tips []BlockID
	for id := range t.blocks {
		if t.firstChild[id] == NoBlock {
			tips = append(tips, BlockID(id))
		}
	}
	return tips
}

func (t *Tree) mustIndex(id BlockID) int {
	if !t.Contains(id) {
		panic(fmt.Sprintf("chain: invalid block ID %d (tree has %d blocks)", id, len(t.blocks)))
	}
	return int(id)
}
