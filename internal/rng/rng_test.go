package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("seed 0 produced the forbidden all-zero state")
	}
	if a, b := r.Uint64(), r.Uint64(); a == b {
		t.Errorf("consecutive draws equal: %d", a)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child1 := parent.Split()
	child2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if child1.Uint64() == child2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children produced %d identical draws out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d: Float64() = %v out of [0,1)", i, f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want 0.5 +/- 0.005", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want 1/12 +/- 0.005", variance)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const (
		buckets = 10
		n       = 100000
	)
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates more than 5 sigma from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) fired")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) did not fire")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 5*sigma {
			t.Errorf("Bernoulli(%v): frequency %v deviates more than 5 sigma", p, got)
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(19)
	for _, rate := range []float64{0.5, 1, 2, 10} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Exp(rate)
			if x < 0 {
				t.Fatalf("Exp(%v) returned negative %v", rate, x)
			}
			sum += x
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want) > 0.02*want {
			t.Errorf("Exp(%v): mean %v, want %v +/- 2%%", rate, mean, want)
		}
	}
}

func TestExpUnitMoments(t *testing.T) {
	// ExpUnit is the time axis's inter-arrival sampler: unit mean, unit
	// variance, never negative, always finite.
	r := New(43)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.ExpUnit()
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: ExpUnit() = %v", i, x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want 1 +/- 0.02", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want 1 +/- 0.05", variance)
	}
}

func TestExpUnitConsumesOneDraw(t *testing.T) {
	// ExpUnit must consume exactly one generator output per call, so the
	// simulator's time axis (which draws from its own stream) has a fixed,
	// predictable consumption pattern.
	a := New(47)
	b := New(47)
	for i := 0; i < 100; i++ {
		a.ExpUnit()
		b.Uint64()
	}
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("after 100 ExpUnit draws, stream diverged from 100 Uint64 draws: %d != %d", got, want)
	}
}

func TestExpUnitAllocationFree(t *testing.T) {
	r := New(53)
	if allocs := testing.AllocsPerRun(1000, func() { _ = r.ExpUnit() }); allocs != 0 {
		t.Errorf("ExpUnit allocates %v per draw, want 0", allocs)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(23)
	weights := []float64{1, 2, 0, 3, 4}
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[2])
	}
	total := 10.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %v, want %v +/- 0.01", i, got, want)
		}
	}
}

func TestCategoricalNegativeWeightsIgnored(t *testing.T) {
	r := New(29)
	weights := []float64{-1, 1, -5}
	for i := 0; i < 1000; i++ {
		if got := r.Categorical(weights); got != 1 {
			t.Fatalf("Categorical drew index %d with weight %v", got, weights[got])
		}
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Categorical with zero total weight did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

// chiSquared returns the chi-squared statistic of observed counts against
// expected probabilities over n draws, skipping zero-probability bins, and
// the degrees of freedom used.
func chiSquared(counts []int, probs []float64, n int) (stat float64, df int) {
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		expect := p * float64(n)
		d := float64(counts[i]) - expect
		stat += d * d / expect
		df++
	}
	return stat, df - 1
}

// chiSquaredCritical approximates the upper 0.001 quantile of the
// chi-squared distribution via the Wilson-Hilferty cube transform, ample
// for a deterministic-seed sanity band.
func chiSquaredCritical(df int) float64 {
	const z = 3.09 // standard normal upper 0.001 quantile
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// TestAliasTableMatchesCategoricalOracle is the distribution property pin
// for the O(1) sampler: across skewed, uniform, and zero-weight populations
// the alias table's draws must follow the same distribution as the linear
// Categorical oracle. Both samplers are chi-squared against the exact
// probabilities, and zero-weight categories must never be drawn by either.
func TestAliasTableMatchesCategoricalOracle(t *testing.T) {
	const n = 200000
	uniform1000 := make([]float64, 1000)
	for i := range uniform1000 {
		uniform1000[i] = 1
	}
	cases := []struct {
		name    string
		weights []float64
	}{
		{"uniform", []float64{1, 1, 1, 1, 1, 1, 1, 1}},
		{"skewed", []float64{1000, 1, 5, 0.01, 200, 3}},
		{"zero-weights", []float64{0, 3, 0, 1, 2, 0}},
		{"negative-as-zero", []float64{-2, 3, -1, 1}},
		{"single", []float64{7}},
		{"uniform-1000", uniform1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var total float64
			for _, w := range tc.weights {
				if w > 0 {
					total += w
				}
			}
			probs := make([]float64, len(tc.weights))
			for i, w := range tc.weights {
				if w > 0 {
					probs[i] = w / total
				}
			}

			table := NewAliasTable(tc.weights)
			if table.Len() != len(tc.weights) {
				t.Fatalf("Len = %d, want %d", table.Len(), len(tc.weights))
			}
			r := New(4242)
			aliasCounts := make([]int, len(tc.weights))
			for i := 0; i < n; i++ {
				aliasCounts[table.Draw(r)]++
			}
			oracleCounts := make([]int, len(tc.weights))
			for i := 0; i < n; i++ {
				oracleCounts[r.Categorical(tc.weights)]++
			}

			for i, p := range probs {
				if p == 0 && aliasCounts[i] != 0 {
					t.Errorf("alias drew zero-weight index %d %d times", i, aliasCounts[i])
				}
				if p == 0 && oracleCounts[i] != 0 {
					t.Errorf("oracle drew zero-weight index %d %d times", i, oracleCounts[i])
				}
			}
			for name, counts := range map[string][]int{"alias": aliasCounts, "oracle": oracleCounts} {
				stat, df := chiSquared(counts, probs, n)
				if df == 0 {
					continue // single category: nothing to test
				}
				if crit := chiSquaredCritical(df); stat > crit {
					t.Errorf("%s chi-squared %.2f exceeds critical %.2f (df %d)", name, stat, crit, df)
				}
			}
		})
	}
}

func TestAliasTablePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAliasTable with zero total weight did not panic")
		}
	}()
	NewAliasTable([]float64{0, -1, 0})
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(99)
	r.Uint64() // advance away from the initial state
	r.Reseed(7)
	fresh := New(7)
	for i := 0; i < 16; i++ {
		if got, want := r.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d: Reseed stream %d, New stream %d", i, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	r := New(37)
	identity := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		p := r.Perm(5)
		isIdentity := true
		for j, v := range p {
			if v != j {
				isIdentity = false
				break
			}
		}
		if isIdentity {
			identity++
		}
	}
	// P(identity) = 1/120; expect ~8 of 1000. 40 is > 10 sigma away.
	if identity > 40 {
		t.Errorf("identity permutation occurred %d/%d times; shuffle is biased", identity, trials)
	}
}

func TestSplitmix64Avalanche(t *testing.T) {
	// The splitmix64 finalizer is a strong mixer: flipping a single input
	// bit should flip close to half of the 64 output bits on average.
	var totalFlips, samples int
	for seed := uint64(1); seed < 1000; seed++ {
		base := splitmix64(seed)
		for bit := 0; bit < 64; bit += 7 {
			flipped := splitmix64(seed ^ 1<<bit)
			totalFlips += popcount(base ^ flipped)
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %v flipped bits, want close to 32", avg)
	}
}

func TestSplitmix64Injective(t *testing.T) {
	// splitmix64 is a bijection on uint64; no collisions may occur.
	seen := make(map[uint64]uint64, 10000)
	for x := uint64(0); x < 10000; x++ {
		y := splitmix64(x)
		if prev, dup := seen[y]; dup {
			t.Fatalf("collision: splitmix64(%d) == splitmix64(%d) == %#x", x, prev, y)
		}
		seen[y] = x
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestBoundedUint64Property(t *testing.T) {
	r := New(41)
	f := func(bound uint64) bool {
		if bound == 0 {
			return true
		}
		return r.boundedUint64(bound) < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}

func BenchmarkExpUnit(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpUnit()
	}
}
