// Package rng provides a small, deterministic pseudo-random number generator
// suite used throughout the simulator.
//
// Reproducibility is a first-class requirement for the experiments in this
// repository: a simulation run is fully determined by its seed, independent
// of Go version or platform. The package therefore implements its own
// generator (xoshiro256** seeded via splitmix64) instead of relying on
// math/rand, whose stream is not guaranteed stable across releases.
package rng

import (
	"math"
	"math/bits"
)

const (
	// goldenGamma is the splitmix64 increment (2^64 / phi, rounded to odd).
	goldenGamma = 0x9E3779B97F4A7C15

	// float64Unit converts a 53-bit integer into a float64 in [0, 1).
	float64Unit = 1.0 / (1 << 53)
)

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; create one Source per goroutine (see Split).
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, as recommended by the
// xoshiro authors. Distinct seeds give statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += goldenGamma
		src.s[i] = splitmix64(sm)
	}
	// xoshiro256** must not be seeded with the all-zero state; splitmix64
	// cannot produce four zero outputs from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = goldenGamma
	}
	return &src
}

// Split derives an independent child generator from the current state. The
// parent advances, so successive Split calls return distinct streams.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)

	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * float64Unit
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0; this mirrors
// math/rand and signals a programming error rather than a runtime condition.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *Source) boundedUint64(bound uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// Bernoulli reports true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 never fires and p >= 1 always fires.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	// Use 1 - Float64() so the argument to Log is in (0, 1]; Log(0) would
	// return -Inf.
	return -math.Log(1-r.Float64()) / rate
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. It panics
// if the total weight is not positive, which indicates a configuration error.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical called with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point round-off can leave x barely above zero after the
	// loop; return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// splitmix64 is the finalizer of the splitmix64 generator; it is a strong
// 64-bit mixer used for seeding.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func rotl(x uint64, k int) uint64 {
	return bits.RotateLeft64(x, k)
}
