// Package rng provides a small, deterministic pseudo-random number generator
// suite used throughout the simulator.
//
// Reproducibility is a first-class requirement for the experiments in this
// repository: a simulation run is fully determined by its seed, independent
// of Go version or platform. The package therefore implements its own
// generator (xoshiro256** seeded via splitmix64) instead of relying on
// math/rand, whose stream is not guaranteed stable across releases.
package rng

import (
	"math"
	"math/bits"
)

const (
	// goldenGamma is the splitmix64 increment (2^64 / phi, rounded to odd).
	goldenGamma = 0x9E3779B97F4A7C15

	// float64Unit converts a 53-bit integer into a float64 in [0, 1).
	float64Unit = 1.0 / (1 << 53)
)

// bufSize is the number of outputs generated per block refill. Each refill
// keeps the xoshiro state in registers for the whole block, so the
// per-output cost of the non-inlinable generator body is paid once per
// bufSize draws instead of once per draw. 128 outputs (1 KB) amortizes
// the call overhead to noise while keeping a Reseed's discarded remainder
// cheap relative to the runs (100k+ events) batch runners reseed between.
const bufSize = 128

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; create one Source per goroutine (see Split).
//
// Outputs are produced in blocks: the generator refills buf with the next
// bufSize values of the sequence at once and Uint64 pops them in order, so
// every consumer — uniform, exponential, alias-table — sees exactly the
// same stream, in exactly the same order, as the unbuffered generator
// produced. Buffering is invisible to everything but the clock.
type Source struct {
	s [4]uint64

	// anti is XORed into every Uint64 output. It is zero for a normal
	// stream and ^0 for an antithetic stream (see SetAntithetic); keeping
	// it a mask makes the antithetic transform free on the hot path. It is
	// applied at refill time (and SetAntithetic re-mirrors any unpopped
	// buffered outputs), so the pop path is a bare load.
	anti uint64

	// buf holds already-masked outputs of the sequence in reverse: the
	// next output to pop is buf[pos-1], the last buf[0]. pos == 0 means
	// empty — which is also the zero value and what Reseed leaves behind,
	// so the first pop after either refills from the fresh state. The
	// countdown form keeps the pop path (and Float64 on top of it) within
	// the compiler's inlining budget.
	buf [bufSize]uint64
	pos int
}

// New returns a Source seeded from seed via splitmix64, as recommended by the
// xoshiro authors. Distinct seeds give statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Split derives an independent child generator from the current state. The
// parent advances, so successive Split calls return distinct streams.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// SetAntithetic switches the Source between its normal stream and the
// antithetic mirror of that stream. The antithetic stream complements every
// Uint64 output bitwise, so each uniform Float64 draw u becomes exactly
// (1 - 2^-53) - u: the reflection of u about 1/2 on the 53-bit lattice.
// Paired runs over (seed, normal) and (seed, antithetic) therefore see
// perfectly negatively correlated uniforms, the basis of the antithetic
// variance-reduction estimator. The flag survives Reseed so a paired worker
// can be configured once and reseeded per run like any other Source.
func (r *Source) SetAntithetic(on bool) {
	var want uint64
	if on {
		want = ^uint64(0)
	}
	// Buffered outputs were masked with the old flag at refill time;
	// re-mirror the unpopped ones so a mid-stream toggle affects exactly
	// the outputs it would have affected on the unbuffered generator.
	if delta := want ^ r.anti; delta != 0 {
		for i := 0; i < r.pos; i++ {
			r.buf[i] ^= delta
		}
		r.anti = want
	}
}

// Antithetic reports whether the Source is producing the antithetic stream.
func (r *Source) Antithetic() bool { return r.anti != 0 }

// Reseed resets the generator in place to the state New(seed) produces,
// without allocating. Batch runners use it to reuse one Source per worker
// across many independently seeded runs. The antithetic flag is preserved.
// Any buffered outputs of the previous seed's sequence are discarded.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += goldenGamma
		r.s[i] = splitmix64(sm)
	}
	// xoshiro256** must not be seeded with the all-zero state; splitmix64
	// cannot produce four zero outputs from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = goldenGamma
	}
	r.pos = 0
}

// Uint64 returns the next value of the xoshiro256** sequence. It inlines
// into callers — a buffered pop on the fast path — and the block refill
// underneath is the only call into the generator body every bufSize draws.
func (r *Source) Uint64() uint64 {
	if r.pos == 0 {
		r.refill()
	}
	r.pos--
	return r.buf[r.pos]
}

// refill writes the next bufSize values of the sequence into buf, highest
// index first so countdown pops return them in sequence order. The state
// words live in locals for the whole block, which is where the batching
// wins: one load/store of the state per block instead of per draw.
func (r *Source) refill() {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	anti := r.anti
	for i := bufSize - 1; i >= 0; i-- {
		r.buf[i] = rotl(s1*5, 7)*9 ^ anti

		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	r.pos = bufSize
}

// Float64 returns a uniform value in [0, 1) with 53 random bits. It is
// Uint64's pop with the [0, 1) conversion fused in — written out rather
// than composed so that Float64, like Uint64, inlines into callers.
func (r *Source) Float64() float64 {
	if r.pos == 0 {
		r.refill()
	}
	r.pos--
	return float64(r.buf[r.pos]>>11) * float64Unit
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0; this mirrors
// math/rand and signals a programming error rather than a runtime condition.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *Source) boundedUint64(bound uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// Bernoulli reports true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 never fires and p >= 1 always fires.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return r.ExpUnit() / rate
}

// ExpUnit returns a unit-mean exponentially distributed value. It is the
// simulator's inter-arrival sampler: allocation-free, and it consumes
// exactly one generator output per draw (a fixed consumption pattern, like
// AliasTable.Draw), so enabling the time axis never perturbs how much
// randomness any other consumer of the same stream sees. Callers scale by
// the desired mean (the current difficulty) instead of dividing by a rate,
// keeping the per-event cost to one draw, one log, and one multiply.
func (r *Source) ExpUnit() float64 {
	// 1 - Float64() is in (0, 1], so Log never sees zero and the result is
	// always finite and non-negative.
	return -math.Log(1 - r.Float64())
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence: a geometrically distributed integer on {0, 1, 2, ...}
// with P(X = k) = (1-p)^k * p. It is the fast-forward sampler for the length
// of an uneventful stretch, and like ExpUnit it consumes exactly one
// generator output per draw, so enabling stretch skipping perturbs no other
// consumer's view of the stream. It panics if p is not in (0, 1].
//
// The draw inverts the CDF through the exponential representation
// X = floor(E / -ln(1-p)) with E ~ Exp(1): one draw, one log, one divide.
// For p == 1 the divisor is +Inf and the result is always 0, as required.
func (r *Source) Geometric(p float64) int {
	if !(p > 0 && p <= 1) { // negated form also rejects NaN
		panic("rng: Geometric called with p outside (0, 1]")
	}
	return r.GeometricLog(-math.Log1p(-p))
}

// GeometricLog is Geometric with the denominator -Log1p(-p) precomputed by
// the caller: hot loops drawing at a fixed p hoist the logarithm out of
// every draw. It consumes exactly one generator output.
func (r *Source) GeometricLog(negLogQ float64) int {
	k := r.ExpUnit() / negLogQ
	// Guard the conversion: for tiny p the ratio can exceed what an int
	// holds (and Inf/Inf above is impossible because ExpUnit is finite).
	if k >= maxGeometric {
		return maxGeometric
	}
	return int(k)
}

// maxGeometric caps Geometric's return value so the float-to-int conversion
// is always defined. 2^62 failures is beyond any simulable horizon; callers
// clamp to their remaining budget anyway.
const maxGeometric = 1 << 62

// Normal returns a standard normal value via the Box–Muller transform. It
// consumes exactly two generator outputs per draw. The polar (Marsaglia)
// variant would be faster on average but consumes a variable number of
// outputs, which would make consumers' stream consumption data-dependent.
func (r *Source) Normal() float64 {
	// ExpUnit is -ln(1-u1) with 1-u1 in (0, 1], so the sqrt argument is
	// finite and non-negative; u2 spins the angle.
	rad := math.Sqrt(2 * r.ExpUnit())
	return rad * math.Cos(2*math.Pi*r.Float64())
}

// GammaInt returns a Gamma(k, 1) value for integer shape k >= 0: the sum of k
// independent unit-mean exponentials. The fast-forward path uses it to bulk
// the total duration of a skipped stretch in O(1) instead of k ExpUnit draws.
// GammaInt(0) is exactly 0 (an empty sum) and consumes no generator output.
// Unlike ExpUnit and Geometric, large shapes consume a variable number of
// outputs (Marsaglia–Tsang rejection), so GammaInt belongs on streams whose
// consumption pattern is already mode-specific, like the fast-forward time
// axis. It panics if k < 0.
func (r *Source) GammaInt(k int) float64 {
	if k < 0 {
		panic("rng: GammaInt called with negative shape")
	}
	// For small shapes the direct sum is both cheapest and exact in
	// distribution; rejection only wins once k is large enough that a
	// handful of squeeze iterations beat k log calls.
	if k <= smallGammaShape {
		var sum float64
		for i := 0; i < k; i++ {
			sum += r.ExpUnit()
		}
		return sum
	}
	// Marsaglia–Tsang (2000) squeeze for shape a >= 1: draw x ~ N(0,1),
	// v = (1 + c*x)^3, accept v*d with probability squeezed against
	// ln(u); acceptance is ~99.8% for large shapes.
	d := float64(k) - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := r.Normal()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		// math.Log(0) is -Inf, which correctly always accepts.
		if math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// smallGammaShape is the largest shape GammaInt samples by direct summation.
// Each summed term costs a logarithm, while a Marsaglia–Tsang draw costs
// roughly three log-equivalents (a Normal plus the squeeze) regardless of
// shape, so rejection wins from shape ~5 up; fast-forward stretch lengths at
// paper alphas have mean 2–10, right in the band this cutoff decides.
const smallGammaShape = 4

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. It panics
// if the total weight is not positive, which indicates a configuration error.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical called with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point round-off can leave x barely above zero after the
	// loop; return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}

// AliasTable draws from a fixed categorical distribution in O(1) per draw
// using Walker's alias method: column i is selected uniformly, then either
// accepted (probability prob[i]) or redirected to alias[i]. Construction is
// O(n); afterwards every draw costs exactly one Uint64 and one Float64
// regardless of the number of categories, whereas Categorical re-walks the
// whole weight vector on every call. The linear Categorical remains the
// distribution oracle the alias table is tested against.
//
// An AliasTable is immutable after construction and therefore safe for
// concurrent use by multiple Sources.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds the alias table for the given weights, with the same
// weight semantics as Categorical: negative weights are treated as zero, and
// it panics if the total weight is not positive. len(weights) must fit in an
// int32 (over two billion categories would exceed memory long before).
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: NewAliasTable called with non-positive total weight")
	}

	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale weights so the average column holds exactly 1; split columns
	// into under- and over-full work lists, then repeatedly top up an
	// under-full column from an over-full one (Vose's stable variant).
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are full columns up to floating-point round-off; a
	// zero-weight column can never be left over because its deficit is
	// always paid for by some over-full column.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Len returns the number of categories.
func (t *AliasTable) Len() int { return len(t.prob) }

// Draw returns an index distributed according to the table's weights. It
// consumes exactly two generator outputs: the column is chosen by a
// multiply-shift reduction of one Uint64 (bias below n/2^64, astronomically
// under simulation resolution, in exchange for a fixed consumption pattern),
// and the accept-or-alias coin is one Float64.
func (t *AliasTable) Draw(r *Source) int {
	hi, _ := bits.Mul64(r.Uint64(), uint64(len(t.prob)))
	i := int(hi)
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// splitmix64 is the finalizer of the splitmix64 generator; it is a strong
// 64-bit mixer used for seeding.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func rotl(x uint64, k int) uint64 {
	return bits.RotateLeft64(x, k)
}
