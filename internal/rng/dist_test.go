package rng

import (
	"math"
	"sort"
	"testing"
)

// invExpCDF is the inverse CDF of the unit-mean exponential, the oracle the
// ExpUnit sampler is pinned against.
func invExpCDF(u float64) float64 { return -math.Log(1 - u) }

// TestExpUnitMatchesInverseCDFOracle bins ExpUnit draws into equiprobable
// cells whose edges come from the inverse-CDF oracle and chi-squares the
// occupancy, then runs a one-sample Kolmogorov–Smirnov test against the
// exact CDF. Together these pin the full shape of the distribution, not
// just its first two moments.
func TestExpUnitMatchesInverseCDFOracle(t *testing.T) {
	const (
		n       = 200000
		buckets = 50
	)
	edges := make([]float64, buckets-1)
	for i := range edges {
		edges[i] = invExpCDF(float64(i+1) / buckets)
	}
	probs := make([]float64, buckets)
	for i := range probs {
		probs[i] = 1.0 / buckets
	}

	r := New(61)
	counts := make([]int, buckets)
	draws := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.ExpUnit()
		draws[i] = x
		b := sort.SearchFloat64s(edges, x)
		counts[b]++
	}

	stat, df := chiSquared(counts, probs, n)
	if crit := chiSquaredCritical(df); stat > crit {
		t.Errorf("chi-squared %.2f exceeds critical %.2f (df %d)", stat, crit, df)
	}

	// One-sample KS against F(x) = 1 - e^-x. The 0.001 critical value of
	// the Kolmogorov distribution is ~1.95/sqrt(n).
	sort.Float64s(draws)
	var ks float64
	for i, x := range draws {
		f := 1 - math.Exp(-x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > ks {
			ks = lo
		}
		if hi > ks {
			ks = hi
		}
	}
	if crit := 1.95 / math.Sqrt(n); ks > crit {
		t.Errorf("KS statistic %.5f exceeds critical %.5f", ks, crit)
	}
}

// TestGeometricDistribution chi-squares Geometric(p) draws against the exact
// pmf P(X = k) = (1-p)^k p, with the tail collapsed into one bin.
func TestGeometricDistribution(t *testing.T) {
	const n = 200000
	for _, p := range []float64{0.1, 1.0 / 3.0, 0.65, 0.9} {
		// Cut the support where the tail probability drops below ~40
		// expected draws so every bin is chi-squared-sized.
		tail := int(math.Ceil(math.Log(40.0/n) / math.Log(1-p)))
		probs := make([]float64, tail+1)
		q := p
		for k := 0; k < tail; k++ {
			probs[k] = q
			q *= 1 - p
		}
		probs[tail] = math.Pow(1-p, float64(tail)) // P(X >= tail)

		r := New(67)
		counts := make([]int, tail+1)
		for i := 0; i < n; i++ {
			k := r.Geometric(p)
			if k < 0 {
				t.Fatalf("Geometric(%v) = %d < 0", p, k)
			}
			if k > tail {
				k = tail
			}
			counts[k]++
		}
		stat, df := chiSquared(counts, probs, n)
		if crit := chiSquaredCritical(df); stat > crit {
			t.Errorf("p=%v: chi-squared %.2f exceeds critical %.2f (df %d)", p, stat, crit, df)
		}
	}
}

// TestGeometricConsumesOneDraw pins the fixed consumption pattern: like
// ExpUnit, each Geometric call must advance the stream by exactly one
// generator output, so fast-forward mode's draws are stream-predictable.
func TestGeometricConsumesOneDraw(t *testing.T) {
	a := New(71)
	b := New(71)
	for i := 0; i < 100; i++ {
		a.Geometric(0.3)
		b.Uint64()
	}
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("after 100 Geometric draws, stream diverged from 100 Uint64 draws: %d != %d", got, want)
	}
}

func TestGeometricCertainSuccessIsZero(t *testing.T) {
	r := New(73)
	for i := 0; i < 1000; i++ {
		if k := r.Geometric(1); k != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", k)
		}
	}
}

func TestGeometricPanicsOutsideUnitInterval(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.0000001, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestGeometricAllocationFree(t *testing.T) {
	r := New(79)
	if allocs := testing.AllocsPerRun(1000, func() { _ = r.Geometric(0.3) }); allocs != 0 {
		t.Errorf("Geometric allocates %v per draw, want 0", allocs)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(83)
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		if math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: Normal() = %v", i, x)
		}
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want 0 +/- 0.01", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want 1 +/- 0.02", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("third moment = %v, want 0 +/- 0.05", skew)
	}
}

func TestNormalConsumesTwoDraws(t *testing.T) {
	a := New(89)
	b := New(89)
	for i := 0; i < 100; i++ {
		a.Normal()
		b.Uint64()
		b.Uint64()
	}
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("after 100 Normal draws, stream diverged from 200 Uint64 draws: %d != %d", got, want)
	}
}

// TestGammaIntMoments checks mean k and variance k across both sampling
// regimes (direct exponential sums and Marsaglia–Tsang rejection).
func TestGammaIntMoments(t *testing.T) {
	r := New(97)
	for _, k := range []int{1, 3, smallGammaShape, smallGammaShape + 1, 40, 400} {
		const n = 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.GammaInt(k)
			if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				t.Fatalf("GammaInt(%d) = %v", k, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		kf := float64(k)
		// StdErr of the mean is sqrt(k/n); 5 sigma band.
		if tol := 5 * math.Sqrt(kf/n); math.Abs(mean-kf) > tol {
			t.Errorf("GammaInt(%d): mean %v, want %v +/- %v", k, mean, kf, tol)
		}
		// Variance of the sample variance is ~(kurtosis-adjusted) 2k^2/n +
		// higher-order terms; a 10% relative band is comfortably > 5 sigma.
		if math.Abs(variance-kf) > 0.1*kf+0.1 {
			t.Errorf("GammaInt(%d): variance %v, want %v", k, variance, kf)
		}
	}
}

func TestGammaIntZeroShape(t *testing.T) {
	a := New(101)
	b := New(101)
	if x := a.GammaInt(0); x != 0 {
		t.Fatalf("GammaInt(0) = %v, want 0", x)
	}
	// And it must consume no generator output.
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatal("GammaInt(0) consumed generator output")
	}
}

func TestGammaIntPanicsOnNegativeShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GammaInt(-1) did not panic")
		}
	}()
	New(1).GammaInt(-1)
}

// TestGammaIntMatchesExpSum is a two-sample KS test: above the small-shape
// cutoff GammaInt switches to Marsaglia–Tsang rejection, which must agree in
// distribution with the explicit sum of k unit exponentials it replaces.
func TestGammaIntMatchesExpSum(t *testing.T) {
	const (
		k = 40
		n = 20000
	)
	r1 := New(103)
	r2 := New(107)
	rejection := make([]float64, n)
	direct := make([]float64, n)
	for i := 0; i < n; i++ {
		rejection[i] = r1.GammaInt(k)
		var sum float64
		for j := 0; j < k; j++ {
			sum += r2.ExpUnit()
		}
		direct[i] = sum
	}
	sort.Float64s(rejection)
	sort.Float64s(direct)
	// Two-sample KS statistic via merge walk.
	var ks float64
	i, j := 0, 0
	for i < n && j < n {
		if rejection[i] <= direct[j] {
			i++
		} else {
			j++
		}
		if d := math.Abs(float64(i)-float64(j)) / n; d > ks {
			ks = d
		}
	}
	// 0.001-level critical value: c(a)*sqrt(2/n) with c(0.001) ~ 1.95.
	if crit := 1.95 * math.Sqrt(2.0/n); ks > crit {
		t.Errorf("two-sample KS %.5f exceeds critical %.5f", ks, crit)
	}
}

// TestAntitheticExactComplement pins the antithetic transform exactly: the
// mirrored stream's Uint64 is the bitwise complement, and its Float64 is the
// reflection (1 - 2^-53) - u on the 53-bit lattice. No tolerance — paired
// estimators rely on this being exact.
func TestAntitheticExactComplement(t *testing.T) {
	a := New(109)
	b := New(109)
	b.SetAntithetic(true)
	if !b.Antithetic() || a.Antithetic() {
		t.Fatal("Antithetic flag not reported correctly")
	}
	const lattice = 1 - float64Unit // largest Float64 value: (2^53-1)/2^53
	for i := 0; i < 1000; i++ {
		if got, want := b.Uint64(), ^a.Uint64(); got != want {
			t.Fatalf("draw %d: antithetic Uint64 %d, want complement %d", i, got, want)
		}
		u, v := a.Float64(), b.Float64()
		if v != lattice-u {
			t.Fatalf("draw %d: antithetic Float64 %v, want %v", i, v, lattice-u)
		}
	}
}

func TestAntitheticSurvivesReseed(t *testing.T) {
	r := New(113)
	r.SetAntithetic(true)
	r.Reseed(127)
	plain := New(127)
	if got, want := r.Uint64(), ^plain.Uint64(); got != want {
		t.Fatal("antithetic flag lost across Reseed")
	}
	r.SetAntithetic(false)
	r.Reseed(127)
	plain.Reseed(127)
	if got, want := r.Uint64(), plain.Uint64(); got != want {
		t.Fatal("SetAntithetic(false) did not restore the plain stream")
	}
}

func BenchmarkGeometric(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Geometric(1.0 / 3.0)
	}
}

func BenchmarkGammaInt100(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.GammaInt(100)
	}
}
