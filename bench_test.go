package ethselfish

import (
	"testing"

	"github.com/ethselfish/ethselfish/internal/core"
	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// One benchmark per paper artifact. Each regenerates the table or figure at
// reduced simulation effort (experiments.Quick), so `go test -bench=.`
// exercises every experiment end to end; the cmd/ethselfish harness runs
// them at paper scale.

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Fig8(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if threshold := result.Threshold(); threshold < 0.1 || threshold > 0.2 {
			b.Fatalf("threshold %v out of expected band", threshold)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Fig9(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if result.MaxTotal() < 1.3 {
			b.Fatalf("max total %v below the paper's ~1.35", result.MaxTotal())
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Fig10(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Rows) != 21 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Table2(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Columns) != 2 {
			b.Fatal("unexpected column count")
		}
	}
}

func BenchmarkSecVIThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SecVI(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ChainDump(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(0.3, 0.5, 8, experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDifficultyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DiffAblation(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Strategies(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Micro-benchmarks for the building blocks.

func BenchmarkClosedFormRevenue(b *testing.B) {
	b.ReportAllocs()
	m, err := core.New(core.Params{Alpha: 0.35, Gamma: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := m.Revenue()
		if rev.PoolStatic <= 0 {
			b.Fatal("degenerate revenue")
		}
	}
}

func BenchmarkStationaryDistributionNumeric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewNumeric(core.Params{Alpha: 0.35, Gamma: 0.5, MaxLead: 80}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThresholdSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Threshold(core.ThresholdParams{Gamma: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator100kBlocks(b *testing.B) {
	// Streaming settlement is the production configuration for long
	// horizons: the settled prefix is folded into dense tallies as the
	// consensus floor advances and evicted from the tree, so bytes/op is
	// bounded by the uncle window, not the run length.
	b.ReportAllocs()
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
			Streaming:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkSimulator1MBlocksStreaming(b *testing.B) {
	// The long-horizon workload: a million blocks through one reused
	// Runner with streaming settlement — flat O(window) memory for the
	// whole run.
	b.ReportAllocs()
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		b.Fatal(err)
	}
	rn := sim.NewRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := rn.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     1000000,
			Seed:       uint64(i),
			Streaming:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(1000000, "blocks/op")
}

func BenchmarkSimulator100kBlocks1000Miners(b *testing.B) {
	// The paper's actual Sec. V population: 1000 equal miners, 350 selfish.
	// Per-event cost must stay independent of the population size (alias-
	// table sampling), so this tracks within a small factor of the
	// two-agent 100k bench rather than ~500x slower.
	b.ReportAllocs()
	pop, err := mining.Equal(1000, 350)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkSimulator100kBlocks2Pools(b *testing.B) {
	// The K-pool race: two Algorithm-1 pools competing over the same
	// chain. Per-event cost is O(1) in the population and O(K) in the
	// pool count, so this must track within a small factor of the
	// single-pool 100k benchmarks, and the steady state stays
	// allocation-free.
	b.ReportAllocs()
	pop, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkSimulator100kBlocks2PoolsStubborn(b *testing.B) {
	// The 2-pool tournament workload: two parametric stubborn pools from
	// the registry racing over the same chain. All three performance
	// invariants must hold with parametric strategies in play — O(1) per
	// event in the population, O(K) in the pool count, and an
	// allocation-free steady state.
	b.ReportAllocs()
	pop, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	strategies, err := sim.NewStrategies([]sim.StrategySpec{
		sim.MustStrategySpec("stubborn:fork=1,lead=1"),
		sim.MustStrategySpec("stubborn:trail=2"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
			Strategies: strategies,
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkSimulator100kBlocks2PoolsTable(b *testing.B) {
	// The decision-table showcase: two deep-racing parametric pools whose
	// reactions all resolve inside the compiled table window, so the
	// per-event strategy cost is a table load. Tables are warmed before
	// timing (as the experiment engine does), and the steady state must
	// stay allocation-free.
	b.ReportAllocs()
	pop, err := mining.MultiAgent(0.25, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	strategies, err := sim.NewStrategies([]sim.StrategySpec{
		sim.MustStrategySpec("eager-publish:lead=3"),
		sim.MustStrategySpec("stubborn:lead=1,trail=2"),
	})
	if err != nil {
		b.Fatal(err)
	}
	sim.WarmDecisionTables(strategies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
			Strategies: strategies,
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 {
			b.Fatal("no settled blocks")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkSimulator100kBlocksEIP100(b *testing.B) {
	// The continuous-time engine with the EIP100 difficulty feedback loop
	// closed: one extra exponential draw per event (dedicated stream), a
	// per-event settled-floor observation, and per-block controller
	// stepping. All three performance invariants must survive the time
	// axis — O(1) per event, allocation-free steady state, and the
	// timeless path untouched (pinned separately by TestGoldenTimeless).
	b.ReportAllocs()
	pop, err := mining.TwoAgent(0.35)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     100000,
			Seed:       uint64(i),
			Time: sim.TimeConfig{
				Enabled:    true,
				Difficulty: difficulty.Params{Rule: difficulty.EIP100},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if result.RegularCount == 0 || result.Elapsed <= 0 {
			b.Fatal("degenerate timed run")
		}
	}
	b.ReportMetric(100000, "blocks/op")
}

func BenchmarkProfitability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Profitability(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTournament(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.Tournament(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Matches) == 0 {
			b.Fatal("no matches played")
		}
	}
}

func BenchmarkBestResponse(b *testing.B) {
	// One run per point keeps the full (gamma x alpha x candidate) grid
	// affordable as a tracked workload.
	opts := experiments.Quick()
	opts.Runs = 1
	opts.Blocks = 4000
	for i := 0; i < b.N; i++ {
		result, err := experiments.BestResponse(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkPoolWars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		result, err := experiments.PoolWars(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(result.Rows) != 12 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkPoolWarsCacheCold(b *testing.B) {
	// A fresh result cache every op: the sweep's full address/miss/store
	// overhead with zero hits, bounding what caching costs when it cannot
	// help.
	for i := 0; i < b.N; i++ {
		opts := experiments.Quick()
		opts.Cache = resultcache.NewMemory(0)
		if _, err := experiments.PoolWars(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolWarsCacheWarm(b *testing.B) {
	// One prewarmed cache serves every op: ns/op is a fully cached sweep.
	opts := experiments.Quick()
	opts.Cache = resultcache.NewMemory(0)
	if _, err := experiments.PoolWars(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PoolWars(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator1000Miners(b *testing.B) {
	b.ReportAllocs()
	pop, err := mining.Equal(1000, 350)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Population: pop,
			Gamma:      0.5,
			Blocks:     20000,
			Seed:       uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeFacade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := Analyze(0.3, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if a.Revenue().Pool(Scenario1) <= 0 {
			b.Fatal("degenerate")
		}
	}
}
