# Development targets. `make check` is tier-1 plus the race suite in one
# command.

GO ?= go

# Baseline file consumed by bench-compare; create it with bench-baseline.
BENCH_BASELINE ?= bench-baseline.json

# Dated benchmark history appended to by bench-record (committed, so the
# repo carries its own performance trajectory).
BENCH_HISTORY ?= BENCH_HISTORY.json

# The workloads gated against a same-machine baseline: the K-pool races,
# the tournament engine, the continuous-time workloads, the fast-forward
# speedup pair, the result-cache cold/warm pair (cold bounds the cache's
# miss-path overhead; warm pins the fully cached sweep), and the
# long-horizon streaming workload (1m guards the O(window) memory claim
# through the bytes/op gate). bench-gate and the CI workflow both read
# this list, so the two cannot drift.
BENCH_GATE_FILTERS := 2pools tournament eip100 profitability alpha05 fastforward cache 1m

.PHONY: check build vet test race agreement staticcheck chaos-smoke cache-smoke fuzz-smoke bench bench-json bench-baseline bench-compare bench-gate bench-record bench-smoke

# How long each fuzz target runs in fuzz-smoke; CI uses the default.
FUZZTIME ?= 10s

check: vet staticcheck test race agreement

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skipped with a notice when the binary is not
# on PATH (the tool is not vendored; CI installs it), so `make check` works
# on a bare toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test: build
	$(GO) test ./...

# The parallel engine's determinism tests double as its data-race check,
# and its cancellation tests verify prompt return, deterministic partial
# results, and no goroutine leaks under the detector. -short skips the full
# best-response grid search, which the plain test target already covers;
# everything else (including the tournament's parallel-vs-sequential check
# over parametric strategies and the chaos fault-injection suite) runs
# under the detector.
race:
	$(GO) test -race -short ./internal/parallel ./internal/sim ./internal/experiments ./internal/resultcache ./internal/chaos

# The cross-mode agreement suite by name: fast-forward vs plain
# distribution agreement, the paired/antithetic estimators against their
# closed-form oracles, and the RNG's distributional pins. Everything here
# also runs inside `test`; the explicit pass keeps the statistical gates
# visible (and runnable alone) when modes diverge.
agreement:
	$(GO) test -run 'FastForward|Antithetic|Precision|Paired|Geometric|GammaInt|ExpUnit' \
		./internal/rng ./internal/stats ./internal/sim ./internal/experiments

# The chaos suite alone (adversarial strategies, injected worker
# panics/errors, and corrupted trace decoding must all fail closed with
# typed errors and leave Runners reusable), plus one sampled-audit
# experiment end to end through the CLI.
chaos-smoke:
	$(GO) test -race ./internal/chaos
	$(GO) run ./cmd/ethselfish -quick -runs 1 -blocks 20000 -audit -audit-every 256 table2 >/dev/null

# The result cache end to end through the CLI: a cold run populates a disk
# journal, a warm rerun must serve at least one hit and reproduce the
# figure bit for bit (invariant 3 makes hits exact, so cmp — not a fuzzy
# diff — is the right check).
cache-smoke:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/ethselfish -quick -cachedir "$$dir/cache" fig8 \
		> "$$dir/cold.out" 2> "$$dir/cold.err"; \
	$(GO) run ./cmd/ethselfish -quick -cachedir "$$dir/cache" fig8 \
		> "$$dir/warm.out" 2> "$$dir/warm.err"; \
	cmp "$$dir/cold.out" "$$dir/warm.out"; \
	grep -Eq 'cache: [1-9][0-9]* hits' "$$dir/warm.err"; \
	echo "cache-smoke: warm rerun bit-identical and served from cache"

# Short randomized passes over the simulator's fuzz targets (the strategy
# gate and the random-legal-reaction property), the checkpoint-journal
# decoder, and the result-cache journal decoder; Go allows one -fuzz
# target per invocation, hence the separate runs.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzValidateReaction -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=NONE -fuzz=FuzzDecisionTableCompile -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=NONE -fuzz=FuzzRandomLegalStrategySimulation -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=NONE -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME) ./internal/experiments
	$(GO) test -run=NONE -fuzz=FuzzCacheDecode -fuzztime=$(FUZZTIME) ./internal/resultcache

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Machine-readable benchmark results (the BENCH_*.json trajectory).
bench-json:
	$(GO) run ./cmd/ethbench

# Record the current benchmark numbers as the comparison baseline.
bench-baseline:
	$(GO) run ./cmd/ethbench > $(BENCH_BASELINE)

# Compare against the recorded baseline; exits non-zero on a >20%
# regression in ns/op, bytes/op, or allocs/op of any shared benchmark.
bench-compare:
	$(GO) run ./cmd/ethbench -baseline $(BENCH_BASELINE)

# Record-and-compare each gated workload back to back on the same machine,
# so only a real blow-up trips ethbench's >20% regression limit. CI runs
# this as its final step.
bench-gate:
	@set -e; for f in $(BENCH_GATE_FILTERS); do \
		echo "bench-gate: $$f"; \
		$(GO) run ./cmd/ethbench -filter $$f > ci-bench-$$f.json; \
		$(GO) run ./cmd/ethbench -filter $$f -baseline ci-bench-$$f.json; \
	done

# Append the current benchmark numbers as a dated entry to the committed
# history file (satisfying curiosity about the performance trajectory
# without digging through git history of baselines).
bench-record:
	$(GO) run ./cmd/ethbench -record $(BENCH_HISTORY)

# One-iteration pass over every benchmark so bench code cannot rot; used by
# CI, where full benchmark timings would be noise anyway.
# Where bench-smoke leaves its CPU/heap profiles (uploaded as CI
# artifacts, so a slow CI run can be diagnosed without reproducing it).
BENCH_PROFILE_DIR ?= bench-profiles

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	mkdir -p $(BENCH_PROFILE_DIR)
	$(GO) test -run=NONE -bench=. -benchtime=1x \
		-cpuprofile=$(BENCH_PROFILE_DIR)/cpu.pprof \
		-memprofile=$(BENCH_PROFILE_DIR)/mem.pprof \
		-o $(BENCH_PROFILE_DIR)/bench.test .
	$(GO) test -run=NONE -bench=Simulator1MBlocksStreaming -benchtime=1x \
		-memprofile=$(BENCH_PROFILE_DIR)/longhorizon-heap.pprof \
		-o $(BENCH_PROFILE_DIR)/longhorizon.test .
