# Development targets. `make check` is tier-1 plus the race suite in one
# command.

GO ?= go

# Baseline file consumed by bench-compare; create it with bench-baseline.
BENCH_BASELINE ?= bench-baseline.json

.PHONY: check build vet test race chaos-smoke fuzz-smoke bench bench-json bench-baseline bench-compare bench-smoke

# How long each fuzz target runs in fuzz-smoke; CI uses the default.
FUZZTIME ?= 10s

check: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The parallel engine's determinism tests double as its data-race check,
# and its cancellation tests verify prompt return, deterministic partial
# results, and no goroutine leaks under the detector. -short skips the full
# best-response grid search, which the plain test target already covers;
# everything else (including the tournament's parallel-vs-sequential check
# over parametric strategies and the chaos fault-injection suite) runs
# under the detector.
race:
	$(GO) test -race -short ./internal/parallel ./internal/sim ./internal/experiments ./internal/chaos

# The chaos suite alone (adversarial strategies, injected worker
# panics/errors, and corrupted trace decoding must all fail closed with
# typed errors and leave Runners reusable), plus one sampled-audit
# experiment end to end through the CLI.
chaos-smoke:
	$(GO) test -race ./internal/chaos
	$(GO) run ./cmd/ethselfish -quick -runs 1 -blocks 20000 -audit -audit-every 256 table2 >/dev/null

# Short randomized passes over the simulator's fuzz targets (the strategy
# gate and the random-legal-reaction property) and the checkpoint-journal
# decoder; Go allows one -fuzz target per invocation, hence the separate
# runs.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzValidateReaction -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=NONE -fuzz=FuzzRandomLegalStrategySimulation -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=NONE -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME) ./internal/experiments

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Machine-readable benchmark results (the BENCH_*.json trajectory).
bench-json:
	$(GO) run ./cmd/ethbench

# Record the current benchmark numbers as the comparison baseline.
bench-baseline:
	$(GO) run ./cmd/ethbench > $(BENCH_BASELINE)

# Compare against the recorded baseline; exits non-zero on a >20%
# regression in ns/op or allocs/op of any shared benchmark.
bench-compare:
	$(GO) run ./cmd/ethbench -baseline $(BENCH_BASELINE)

# One-iteration pass over every benchmark so bench code cannot rot; used by
# CI, where full benchmark timings would be noise anyway.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
